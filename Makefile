# Standard checks for the Whale reproduction. `make check` is what CI (and
# reviewers) run: vet, whalevet (the project-specific analyzers), build, the
# full test suite, a full-repo race pass (slow simulation tests skip under
# -short, keeping the race gate to a few minutes), and the seeded chaos soak.

GO ?= go

.PHONY: check vet whalevet vet-baseline build test race chaos fmt bench perfgate cover cover-gate

check: vet whalevet vet-baseline build test race chaos

vet:
	$(GO) vet ./...

whalevet:
	$(GO) run ./cmd/whalevet ./...

# Analyzer-coverage gate against the committed VET_BASELINE.txt: fails if
# the registered analyzer count drops below the baseline (an analyzer was
# lost or stopped registering) or the full-repo run is no longer clean.
# Raise the baseline in VET_BASELINE.txt when a new analyzer lands.
vet-baseline:
	@want=$$(awk '$$1=="analyzers"{print $$2}' VET_BASELINE.txt); \
	got=$$($(GO) run ./cmd/whalevet -list | wc -l); \
	if [ "$$got" -lt "$$want" ]; then \
	  echo "vet-baseline: $$got analyzers registered, baseline requires >= $$want" >&2; \
	  exit 1; \
	fi; \
	if ! $(GO) run ./cmd/whalevet ./...; then \
	  echo "vet-baseline: full-repo whalevet pass is no longer clean (baseline: $$(awk '$$1=="findings"{print $$2}' VET_BASELINE.txt) findings)" >&2; \
	  exit 1; \
	fi; \
	echo "vet-baseline: ok ($$got analyzers, clean full-repo pass)"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Seeded fault-injection soak: drop/delay/duplication noise, a transient
# partition, and an interior-relay crash over all-grouping traffic, run
# twice under the same seed to check the outcome is deterministic.
chaos:
	$(GO) test -race -short -count=1 ./internal/chaos/...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark-regression gate: re-measure the curated microbenchmarks
# (including the engine_pipeline_ckpt_off/1s checkpoint-overhead rows) and
# quick-mode DES experiments, compare against the committed BENCH_9.json
# baseline, and fail on regressions beyond the thresholds (10% micro, 25%
# DES). Refresh the baseline after an intentional perf change with:
#   $(GO) run ./cmd/whaleperf -quick -out BENCH_9.json
# On hosts whose throughput swings between runs (shared/virtualized CPUs),
# fold the worst observed median per row from a few extra gate runs into the
# baseline (max ns/op, min tuples/sec, max dispersion) so the gate anchors at
# the slow mode; real regressions still trip the 10-20% headroom above it.
# Set PERFGATE_SUMMARY=<file> to also append the before/after comparison as
# a markdown table (the bench-gate job points it at $GITHUB_STEP_SUMMARY).
perfgate:
	$(GO) run ./cmd/whaleperf -quick -runs 5 -baseline BENCH_9.json -out BENCH_9.new.json $(if $(PERFGATE_SUMMARY),-summary "$(PERFGATE_SUMMARY)")

# Statement coverage over the tier-1 sweep (the same `go test ./...` the
# test job runs), written to coverage.out.
cover:
	$(GO) test -coverprofile=coverage.out ./...

# Coverage floor gate against the committed COVERAGE_FLOOR.txt: fails when
# the total statement coverage drops below the floor. Raise the floor when
# coverage durably improves; never lower it to admit a regression.
cover-gate: cover
	@floor=$$(awk '$$1=="total"{print $$2}' COVERAGE_FLOOR.txt); \
	total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/{sub(/%/,"",$$3); print $$3}'); \
	if [ -z "$$total" ]; then \
	  echo "cover-gate: could not read total coverage from coverage.out" >&2; \
	  exit 1; \
	fi; \
	if awk -v t="$$total" -v f="$$floor" 'BEGIN{exit !(t < f)}'; then \
	  echo "cover-gate: total coverage $$total% is below the committed floor $$floor%" >&2; \
	  exit 1; \
	fi; \
	echo "cover-gate: ok ($$total% >= floor $$floor%)"
