# Standard checks for the Whale reproduction. `make check` is what CI (and
# reviewers) run: vet, whalevet (the project-specific analyzers), build, the
# full test suite, a full-repo race pass (slow simulation tests skip under
# -short, keeping the race gate to a few minutes), and the seeded chaos soak.

GO ?= go

.PHONY: check vet whalevet build test race chaos fmt bench perfgate

check: vet whalevet build test race chaos

vet:
	$(GO) vet ./...

whalevet:
	$(GO) run ./cmd/whalevet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Seeded fault-injection soak: drop/delay/duplication noise, a transient
# partition, and an interior-relay crash over all-grouping traffic, run
# twice under the same seed to check the outcome is deterministic.
chaos:
	$(GO) test -race -short -count=1 ./internal/chaos/...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark-regression gate: re-measure the curated microbenchmarks
# (including the trace_record_off/on tracing-overhead rows) and quick-mode
# DES experiments, compare against the committed BENCH_6.json baseline, and
# fail on regressions beyond the thresholds (10% micro, 25% DES). Refresh
# the baseline after an intentional perf change with:
#   $(GO) run ./cmd/whaleperf -quick -out BENCH_6.json
perfgate:
	$(GO) run ./cmd/whaleperf -quick -runs 5 -baseline BENCH_6.json -out BENCH_6.new.json
