# Standard checks for the Whale reproduction. `make check` is what CI (and
# reviewers) run: vet, whalevet (the project-specific analyzers), build, the
# full test suite, and a full-repo race pass (slow simulation tests skip
# under -short, keeping the race gate to a few minutes).

GO ?= go

.PHONY: check vet whalevet build test race fmt bench

check: vet whalevet build test race

vet:
	$(GO) vet ./...

whalevet:
	$(GO) run ./cmd/whalevet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem ./...
