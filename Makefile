# Standard checks for the Whale reproduction. `make check` is what CI (and
# reviewers) run: vet, build, the full test suite, and a race pass over the
# concurrency-heavy observability and metrics packages.

GO ?= go

.PHONY: check vet build test race fmt bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/metrics/...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem ./...
