package dsps

import (
	"math/rand"
	"time"

	"whale/internal/tuple"
)

// Reliability (acking) layer: the Storm-style XOR ack tracking the paper's
// base system provides. Every reliably-emitted spout tuple opens a
// reliability tree identified by a random RootID; each tuple in the tree
// carries a random AckVal. Executors report, per processed input, the XOR
// of the input's AckVal and the AckVals of all tuples emitted while
// processing it. The acker task XORs everything per root: the register
// reaches zero exactly when every tuple in the tree has been processed,
// at which point the spout's Ack callback fires. A timeout fails the root.

// Internal operator and stream names of the acking plane.
const (
	ackerOperatorID = "__acker"
	streamAckInit   = "__ack_init" // [rootID, ackVal, spoutTask]
	streamAck       = "__ack"      // [rootID, xor]
	streamAckFail   = "__ack_fail" // [rootID]
	streamAckEvent  = "__ack_ev"   // acker -> spout: [rootID, ok]
	streamAckTick   = "__ack_tick" // engine -> acker timeout sweep
)

// ReliableSpout is a Spout that wants completion callbacks for tuples
// emitted with Collector.EmitReliable. Ack and Fail run on the spout's
// executor goroutine, between Next calls.
type ReliableSpout interface {
	Spout
	// Ack reports that the tuple emitted with msgID was fully processed.
	Ack(msgID int64)
	// Fail reports that the tuple's reliability tree timed out or was
	// explicitly failed by a bolt.
	Fail(msgID int64)
}

// ackEntry tracks one reliability tree at the acker.
type ackEntry struct {
	xor       int64
	spoutTask int32
	hasInit   bool
	deadline  int64 // engine-clock ns
	emitNS    int64
}

// ackerBolt is the internal acker operator.
type ackerBolt struct {
	eng     *Engine
	timeout time.Duration
	pending map[int64]*ackEntry
}

// Prepare implements Bolt.
func (a *ackerBolt) Prepare(*TaskContext) { a.pending = map[int64]*ackEntry{} }

// Execute implements Bolt.
func (a *ackerBolt) Execute(tp *tuple.Tuple, c *Collector) {
	switch tp.Stream {
	case streamAckInit:
		root := tp.Int(0)
		e := a.entry(root)
		e.xor ^= tp.Int(1)
		e.spoutTask = int32(tp.Int(2))
		e.hasInit = true
		e.emitNS = tp.RootEmitNS
		e.deadline = time.Now().UnixNano() + a.timeout.Nanoseconds()
		a.settle(root, e, c)
	case streamAck:
		root := tp.Int(0)
		e := a.entry(root)
		e.xor ^= tp.Int(1)
		a.settle(root, e, c)
	case streamAckFail:
		root := tp.Int(0)
		if e, ok := a.pending[root]; ok && e.hasInit {
			a.finish(root, e, false, c)
		} else {
			delete(a.pending, root)
		}
	case streamAckTick:
		now := time.Now().UnixNano()
		for root, e := range a.pending {
			if e.deadline > 0 && now > e.deadline {
				if e.hasInit {
					a.finish(root, e, false, c)
				} else {
					delete(a.pending, root)
				}
			} else if e.deadline == 0 {
				// An ack arrived before its init (reordering across
				// workers): expire it on the next sweep if the init never
				// shows up.
				e.deadline = now + a.timeout.Nanoseconds()
			}
		}
	}
}

func (a *ackerBolt) entry(root int64) *ackEntry {
	e, ok := a.pending[root]
	if !ok {
		e = &ackEntry{}
		a.pending[root] = e
	}
	return e
}

func (a *ackerBolt) settle(root int64, e *ackEntry, c *Collector) {
	if e.hasInit && e.xor == 0 {
		a.finish(root, e, true, c)
	}
}

// finish notifies the owning spout task and drops the entry.
func (a *ackerBolt) finish(root int64, e *ackEntry, ok bool, c *Collector) {
	delete(a.pending, root)
	if ok {
		a.eng.metrics.TuplesAcked.Inc()
		if e.emitNS > 0 {
			a.eng.metrics.CompleteLatency.Observe(time.Now().UnixNano() - e.emitNS)
		}
	} else {
		a.eng.metrics.TuplesFailed.Inc()
	}
	okVal := int64(0)
	if ok {
		okVal = 1
	}
	c.ex.sendDirect(e.spoutTask, &tuple.Tuple{
		Stream: streamAckEvent,
		Values: []tuple.Value{root, okVal},
	})
}

// Cleanup implements Bolt.
func (a *ackerBolt) Cleanup() {}

// withAcking returns a copy of the topology with the acker operator wired
// to every user operator's ack streams.
func withAcking(t *Topology, eng *Engine, ackers int, timeout time.Duration) *Topology {
	spec := &OperatorSpec{
		ID:          ackerOperatorID,
		Parallelism: ackers,
		BoltFn:      func() Bolt { return &ackerBolt{eng: eng, timeout: timeout} },
	}
	for _, id := range t.Order {
		op := t.Operators[id]
		if op.IsSpout {
			spec.Subs = append(spec.Subs, Subscription{SrcOperator: id, Stream: streamAckInit, Type: FieldsGrouping})
		}
		spec.Subs = append(spec.Subs,
			Subscription{SrcOperator: id, Stream: streamAck, Type: FieldsGrouping},
			Subscription{SrcOperator: id, Stream: streamAckFail, Type: FieldsGrouping},
		)
	}
	ops := make(map[string]*OperatorSpec, len(t.Operators)+1)
	for k, v := range t.Operators {
		ops[k] = v
	}
	ops[ackerOperatorID] = spec
	return &Topology{
		Operators: ops,
		Order:     append(append([]string(nil), t.Order...), ackerOperatorID),
	}
}

// ack-plane helpers on the executor ----------------------------------------

// sendDirect routes a tuple to one explicit task, bypassing groupings
// (used by the acker to reach the owning spout task).
func (ex *executor) sendDirect(dst int32, tp *tuple.Tuple) {
	dw := ex.w.eng.tv().assign.WorkerOf[dst]
	if dw == ex.w.id {
		ex.w.enqueueLocal(dst, tp)
		return
	}
	ex.w.enqueueSend(sendJob{kind: jobPointToPoint, tp: tp, dstTask: dst, dstWorker: dw})
}

// ackContrib mixes an edge's AckVal with one destination task id into that
// destination's ack contribution (splitmix64 finalizer). Sender and
// receiver compute it independently: the sender XORs one contribution per
// destination into the tree's register, the receiver cancels its own when
// it processes the tuple. Mixing the task id in makes one-to-many edges
// sound — N receivers of the same AckVal contribute N distinct values
// instead of cancelling pairwise. Never returns 0 (the XOR identity).
// Called from the route hot path: pure arithmetic, no allocation.
func ackContrib(ackVal int64, task int32) int64 {
	x := uint64(ackVal) ^ (uint64(uint32(task))*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return int64(x)
}

// nonzeroRand draws a non-zero random int64 (zero is the "untracked"
// sentinel for RootID and the identity for XOR).
func nonzeroRand(r *rand.Rand) int64 {
	for {
		if v := r.Int63(); v != 0 {
			return v
		}
	}
}

// drainSpoutEvents processes queued ack events without blocking; when
// block is set it waits for at least one event (or engine shutdown).
func (ex *executor) drainSpoutEvents(block bool) {
	for {
		if block {
			select {
			case at := <-ex.in:
				ex.handleSpoutEvent(at.Data)
				block = false
				continue
			case <-ex.w.eng.stopSpouts:
				return
			case <-ex.w.done:
				return
			}
		}
		select {
		case at := <-ex.in:
			ex.handleSpoutEvent(at.Data)
		default:
			return
		}
	}
}

func (ex *executor) handleSpoutEvent(tp *tuple.Tuple) {
	switch tp.Stream {
	case streamCkptTrigger:
		ex.onTrigger(tp)
		return
	case streamCkptRestore:
		ex.onRestore(tp)
		return
	case streamAckEvent:
	default:
		return
	}
	root := tp.Int(0)
	msgID, ok := ex.pendingRoots[root]
	if !ok {
		return
	}
	delete(ex.pendingRoots, root)
	rs, isReliable := ex.spout.(ReliableSpout)
	if !isReliable {
		return
	}
	if tp.Int(1) == 1 {
		rs.Ack(msgID)
	} else {
		rs.Fail(msgID)
	}
}
