package dsps

import (
	"fmt"
	"sort"
	"time"

	"whale/internal/obs"
	"whale/internal/tuple"
)

// Elastic membership: graceful worker join/leave as the inverse of failure
// handling, plus the live-rescale entry point (see checkpoint.go for the
// epoch-aligned apply). Workers Workers..MaxWorkers-1 start dormant; a join
// admits one through the monitor with a CtrlJoin/CtrlWelcome handshake that
// is idempotent under duplicated or reordered frames: every CtrlJoin
// re-replies CtrlWelcome, but admission is gated on the joiner still
// awaiting its welcome — a stale retry processed after the handshake
// completed (and possibly after an intervening LeaveWorker) must not
// re-admit the worker.

// joinAttempts bounds the CtrlJoin retries before JoinWorker gives up.
const joinAttempts = 10

// joinedWorker reports whether w is part of the live membership.
func (e *Engine) joinedWorker(w int32) bool {
	return w >= 0 && int(w) < len(e.joined) && e.joined[w].Load()
}

// startHeartbeat launches one worker's beacon loop with a per-join stop
// channel so a graceful leave can silence it without touching the engine's
// global shutdown plumbing. Caller must not hold e.mu.
func (e *Engine) startHeartbeat(w *worker) {
	stop := make(chan struct{})
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return
	}
	e.hbStops[w.id] = stop
	e.auxWG.Add(1)
	go e.heartbeatLoop(w, stop)
}

// stopHeartbeat silences a worker's beacon loop if one is running.
func (e *Engine) stopHeartbeat(id int32) {
	e.mu.Lock()
	stop, ok := e.hbStops[id]
	delete(e.hbStops, id)
	e.mu.Unlock()
	if ok {
		close(stop)
	}
}

// JoinWorker admits dormant worker id into the live membership through the
// monitor: CtrlJoin frames (Version carries the attempt number) retried
// under bounded backoff until a CtrlWelcome lands. Without a failure
// detector there is no monitor to coordinate with, so admission is local.
// Joining is idempotent at the monitor; a confirmed-dead worker can never
// rejoin (confirmation is terminal — its id stays fenced).
func (e *Engine) JoinWorker(id int32) error {
	if id < 0 || int(id) >= e.cfg.MaxWorkers {
		return fmt.Errorf("dsps: join of unknown worker %d (MaxWorkers %d)", id, e.cfg.MaxWorkers)
	}
	if e.workerDead(id) {
		return fmt.Errorf("dsps: worker %d is confirmed dead and cannot rejoin", id)
	}
	if e.joinedWorker(id) {
		return fmt.Errorf("dsps: worker %d already joined", id)
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return fmt.Errorf("dsps: engine stopped")
	}
	e.mu.Unlock()
	if e.detector == nil {
		e.admitWorker(id)
		return nil
	}

	w := e.workers[id]
	e.mu.Lock()
	welcome, ok := e.welcomes[id]
	if !ok {
		welcome = make(chan struct{})
		e.welcomes[id] = welcome
	}
	e.mu.Unlock()

	enc := tuple.NewEncoder()
	backoff := e.cfg.HeartbeatInterval
	if backoff <= 0 {
		backoff = 5 * time.Millisecond
	}
	for attempt := int32(1); attempt <= joinAttempts; attempt++ {
		cm := tuple.ControlMessage{Type: tuple.CtrlJoin, Node: id, Version: attempt}
		// Like heartbeats, the handshake bypasses the transfer queue: the
		// joiner hosts no tasks yet, but a send-thread stall elsewhere must
		// not be able to delay admission.
		_ = w.tr.Send(e.detector.monitor, enc.EncodeControlEnvelope(&cm))
		select {
		case <-welcome:
			e.startHeartbeat(w)
			return nil
		case <-e.stopping:
			return fmt.Errorf("dsps: engine stopping during join of worker %d", id)
		case <-time.After(backoff):
		}
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
	return fmt.Errorf("dsps: worker %d join timed out after %d attempts", id, joinAttempts)
}

// admitWorker performs the monitor-side admission. Idempotent: the first
// call flips the membership bit and logs the event; every call refreshes
// the liveness clock so the sweep cannot suspect a worker between its
// admission and its first heartbeat.
func (e *Engine) admitWorker(id int32) {
	if id < 0 || int(id) >= len(e.joined) || e.workerDead(id) {
		return
	}
	if fd := e.detector; fd != nil {
		fd.lastSeen[id].Store(time.Now().UnixNano())
		fd.state[id].Store(wsAlive)
	}
	if e.joined[id].CompareAndSwap(false, true) {
		e.obs.Events.Append(obs.Event{
			Kind: obs.EventWorkerJoined, Worker: id,
			Detail: "admitted by monitor; membership grown",
		})
	}
}

// admitPendingWorker admits id only while a JoinWorker call still awaits
// its CtrlWelcome. The check and the admission run atomically with
// completeJoin's resolution of that wait (both under e.mu), so once the
// handshake has completed not a single stale CtrlJoin retry can re-admit
// the worker — in particular not after an intervening LeaveWorker, whose
// heartbeats are stopped and whose re-admission the sweep would therefore
// confirm dead.
func (e *Engine) admitPendingWorker(id int32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.welcomes[id]; !ok {
		return
	}
	e.admitWorker(id)
}

// completeJoin resolves the joiner-side wait when its CtrlWelcome arrives.
// Duplicate welcomes (the monitor re-replies per CtrlJoin) are no-ops.
func (e *Engine) completeJoin(id int32) {
	// Resolve only once the admission is visible: the monitor admits before
	// it replies, so a welcome observed while the worker is still unjoined
	// is a stale frame from an earlier handshake (this join's own CtrlJoin
	// has not been processed yet) — resolving on it would delete the wait
	// entry admitPendingWorker gates on and strand the join unadmitted.
	if !e.joinedWorker(id) {
		return
	}
	e.mu.Lock()
	welcome, ok := e.welcomes[id]
	if ok {
		delete(e.welcomes, id)
	}
	e.mu.Unlock()
	if ok {
		close(welcome)
	}
}

// LeaveWorker removes worker id from the live membership gracefully. Only a
// worker hosting no live tasks may leave (rescale it empty first), the
// monitor never leaves, and a dead worker has nothing to leave. Unlike
// failure confirmation, leaving is not terminal: the worker keeps its
// transport and loops running and may JoinWorker again later.
func (e *Engine) LeaveWorker(id int32) error {
	if !e.joinedWorker(id) {
		return fmt.Errorf("dsps: worker %d is not joined", id)
	}
	if e.workerDead(id) {
		return fmt.Errorf("dsps: worker %d is confirmed dead", id)
	}
	if e.detector != nil && id == e.detector.monitor {
		return fmt.Errorf("dsps: worker %d is the monitor and cannot leave", id)
	}
	if id == 0 {
		return fmt.Errorf("dsps: worker 0 hosts the coordinator and cannot leave")
	}
	if tasks := e.tv().assign.LocalTasks(id); len(tasks) > 0 {
		return fmt.Errorf("dsps: worker %d still hosts %d tasks", id, len(tasks))
	}
	if e.ckpt != nil && e.ckpt.planTargets(id) {
		return fmt.Errorf("dsps: worker %d is a placement target of a pending rescale", id)
	}
	e.stopHeartbeat(id)
	e.joined[id].Store(false)
	if fd := e.detector; fd != nil {
		// Reset the liveness state so a later rejoin starts clean instead of
		// inheriting pre-leave silence.
		fd.state[id].Store(wsAlive)
		fd.lastSeen[id].Store(time.Now().UnixNano())
	}
	e.obs.Events.Append(obs.Event{
		Kind: obs.EventWorkerLeft, Worker: id,
		Detail: "graceful leave; worker may rejoin",
	})
	return nil
}

// WorkerStatus is one worker's row in the membership report.
type WorkerStatus struct {
	ID       int32   `json:"id"`
	Joined   bool    `json:"joined"`
	State    string  `json:"state"` // alive | suspect | dead | dormant
	Degraded bool    `json:"degraded,omitempty"`
	Tasks    []int32 `json:"tasks,omitempty"`
}

// GroupStatus is one multicast group's row in the membership report.
type GroupStatus struct {
	Group         int32   `json:"group"`
	Operator      string  `json:"operator"`
	Stream        string  `json:"stream"`
	SourceWorker  int32   `json:"source_worker"`
	ActiveVersion int32   `json:"active_version"`
	Members       []int32 `json:"members"`
	SwitchPending bool    `json:"switch_pending"`
}

// OperatorPlacement is one operator's row in the membership report.
type OperatorPlacement struct {
	Operator    string  `json:"operator"`
	Parallelism int     `json:"parallelism"`
	Tasks       []int32 `json:"tasks"`
	Workers     []int32 `json:"workers"`
}

// MembershipReport is the full elastic-membership dump served on
// /debug/membership and by `whaled -membership`.
type MembershipReport struct {
	MaxWorkers     int                 `json:"max_workers"`
	Workers        []WorkerStatus      `json:"workers"`
	Groups         []GroupStatus       `json:"groups,omitempty"`
	Operators      []OperatorPlacement `json:"operators"`
	RescalePending bool                `json:"rescale_pending"`
}

// Membership snapshots the cluster's elastic state: per-worker liveness as
// the detector sees it, each multicast group's live membership and active
// tree version, and the current (possibly rescaled) operator placement.
func (e *Engine) Membership() MembershipReport {
	tv := e.tv()
	rep := MembershipReport{MaxWorkers: e.cfg.MaxWorkers}
	for id := int32(0); int(id) < e.cfg.MaxWorkers; id++ {
		ws := WorkerStatus{ID: id, Joined: e.joinedWorker(id), Tasks: tv.assign.LocalTasks(id)}
		switch {
		case e.workerDead(id):
			ws.State = "dead"
		case !ws.Joined:
			ws.State = "dormant"
		case e.detector != nil && e.detector.state[id].Load() == wsSuspect:
			ws.State = "suspect"
		default:
			ws.State = "alive"
		}
		if e.detector != nil {
			ws.Degraded = e.detector.degraded[id].Load()
		}
		rep.Workers = append(rep.Workers, ws)
	}
	gids := make([]int32, 0, len(e.managers))
	for gid := range e.managers {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		m := e.managers[gid]
		m.mu.Lock()
		members := append([]int32(nil), m.members...)
		pending := m.pendingVersion != 0
		m.mu.Unlock()
		gs := e.workers[m.desc.key.worker].groups[gid]
		rep.Groups = append(rep.Groups, GroupStatus{
			Group: gid, Operator: m.desc.key.op, Stream: m.desc.key.stream,
			SourceWorker: m.desc.key.worker, ActiveVersion: gs.activeVersion(),
			Members: members, SwitchPending: pending,
		})
	}
	for _, op := range e.topo.Order {
		if op == ackerOperatorID {
			continue
		}
		tids := tv.assign.TasksOf[op]
		rep.Operators = append(rep.Operators, OperatorPlacement{
			Operator: op, Parallelism: len(tids),
			Tasks:   append([]int32(nil), tids...),
			Workers: tv.assign.WorkersOf(op),
		})
	}
	if e.ckpt != nil {
		rep.RescalePending = e.ckpt.rescalePending()
	}
	return rep
}

// Rescale changes operator op's parallelism to newPar, live: the request
// arms at the next checkpoint epoch, the epoch's commit is the rescale-
// aligned cut, and the apply (new executors, swapped placement view, tree
// membership, state split/merge, source rewind) rides the existing fenced
// restore machinery — exactly-once is preserved end to end. Optional `on`
// workers receive the new tasks (grow only, one per new task); by default
// the least-loaded live joined workers are chosen. A worker death while the
// aligned epoch is in flight deterministically aborts the rescale — the
// pre-rescale assignment stays active, never a half-repartitioned topology.
func (e *Engine) Rescale(op string, newPar int, on ...int32) error {
	if e.ckpt == nil {
		return fmt.Errorf("dsps: rescale requires checkpointing (Config.CheckpointInterval)")
	}
	spec, ok := e.topo.Operators[op]
	if !ok || op == ackerOperatorID {
		return fmt.Errorf("dsps: rescale of unknown operator %q", op)
	}
	if spec.IsSpout {
		return fmt.Errorf("dsps: spout %q cannot be rescaled live (source parallelism is bound to its partitions)", op)
	}
	if newPar > NumSlots && e.topo.fieldsGrouped(op) {
		// Key routing sends slot s to task index s mod parallelism over a
		// NumSlots-wide slot space: task indices >= NumSlots would never be
		// selected, silently starving them.
		return fmt.Errorf("dsps: fields-grouped operator %q cannot exceed parallelism %d (NumSlots)", op, NumSlots)
	}
	tv := e.tv()
	oldPar := len(tv.assign.TasksOf[op])
	if newPar == oldPar {
		return fmt.Errorf("dsps: %q already at parallelism %d", op, newPar)
	}
	var placeOn []int32
	if newPar > oldPar {
		var err error
		if placeOn, err = e.pickPlacement(tv.assign, op, newPar-oldPar, on); err != nil {
			return err
		}
	} else if len(on) > 0 {
		return fmt.Errorf("dsps: placement targets are only meaningful when growing")
	}
	next, err := tv.assign.Rescaled(op, newPar, placeOn)
	if err != nil {
		return err
	}
	return e.ckpt.requestRescale(op, newPar, next)
}

// pickPlacement chooses the hosting worker for each new task: explicit
// targets when given (validated live + joined), else the least-loaded live
// joined workers, ties broken by id for determinism.
func (e *Engine) pickPlacement(a *Assignment, op string, n int, on []int32) ([]int32, error) {
	if len(on) > 0 {
		if len(on) != n {
			return nil, fmt.Errorf("dsps: rescale of %q adds %d tasks but %d placement targets given", op, n, len(on))
		}
		for _, w := range on {
			if !e.joinedWorker(w) {
				return nil, fmt.Errorf("dsps: placement target %d is not a joined worker", w)
			}
			if e.workerDead(w) {
				return nil, fmt.Errorf("dsps: placement target %d is dead", w)
			}
		}
		return append([]int32(nil), on...), nil
	}
	type load struct {
		w     int32
		tasks int
	}
	var cands []load
	for w := int32(0); int(w) < e.cfg.MaxWorkers; w++ {
		if e.joinedWorker(w) && !e.workerDead(w) {
			cands = append(cands, load{w: w, tasks: len(a.LocalTasks(w))})
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("dsps: no live joined worker to place %q tasks on", op)
	}
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		sort.Slice(cands, func(x, y int) bool {
			if cands[x].tasks != cands[y].tasks {
				return cands[x].tasks < cands[y].tasks
			}
			return cands[x].w < cands[y].w
		})
		out = append(out, cands[0].w)
		cands[0].tasks++
	}
	return out, nil
}

// groupMembership recomputes one group's worker->tasks map and member list
// under assignment a (the same derivation buildGroups used at start).
func (e *Engine) groupMembership(desc *groupDesc, a *Assignment) (map[int32][]int32, []int32) {
	localTasks := map[int32][]int32{}
	memberSet := map[int32]bool{}
	for _, op := range desc.dstOps {
		for _, tid := range a.TasksOf[op] {
			w := a.WorkerOf[tid]
			localTasks[w] = append(localTasks[w], tid)
			memberSet[w] = true
		}
	}
	members := make([]int32, 0, len(memberSet))
	for w := range memberSet {
		if w != desc.key.worker {
			members = append(members, w)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return localTasks, members
}

// opIsSink reports whether no operator subscribes to op — the same sink
// derivation Start uses (the ack plane's subscriptions are invisible).
func (e *Engine) opIsSink(op string) bool {
	for _, id := range e.topo.Order {
		if id == ackerOperatorID {
			continue
		}
		for _, s := range e.topo.Operators[id].Subs {
			if s.SrcOperator == op {
				return false
			}
		}
	}
	return op != ackerOperatorID
}
