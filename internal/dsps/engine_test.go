package dsps

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"whale/internal/control"
	"whale/internal/metrics"
	"whale/internal/obs"
	"whale/internal/rdma"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// countSpout emits n tuples {seq int64, key string} then stops.
type countSpout struct {
	n    int
	keys int
	i    int
}

func (s *countSpout) Open(*TaskContext) {}
func (s *countSpout) Next(c *Collector) bool {
	if s.i >= s.n {
		return false
	}
	c.Emit(int64(s.i), fmt.Sprintf("key-%d", s.i%s.keys))
	s.i++
	return true
}
func (s *countSpout) Close() {}

// capture records every tuple each task receives.
type capture struct {
	mu     sync.Mutex
	byTask map[int32][]int64 // task -> received seqs
}

func newCapture() *capture { return &capture{byTask: map[int32][]int64{}} }

func (c *capture) record(task int32, seq int64) {
	c.mu.Lock()
	c.byTask[task] = append(c.byTask[task], seq)
	c.mu.Unlock()
}

func (c *capture) counts() map[int32]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[int32]int{}
	for k, v := range c.byTask {
		out[k] = len(v)
	}
	return out
}

func (c *capture) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.byTask {
		n += len(v)
	}
	return n
}

// exactlyOnce verifies each task saw each seq 0..n-1 exactly once.
func (c *capture) exactlyOnce(t *testing.T, tasks []int32, n int) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, task := range tasks {
		got := c.byTask[task]
		if len(got) != n {
			t.Fatalf("task %d received %d of %d tuples", task, len(got), n)
		}
		seen := map[int64]bool{}
		for _, s := range got {
			if seen[s] {
				t.Fatalf("task %d received seq %d twice", task, s)
			}
			seen[s] = true
		}
	}
}

// captureBolt records (task, seq) into a shared capture.
type captureBolt struct {
	cap *capture
	ctx *TaskContext
}

func (b *captureBolt) Prepare(ctx *TaskContext) { b.ctx = ctx }
func (b *captureBolt) Execute(tp *tuple.Tuple, _ *Collector) {
	b.cap.record(b.ctx.TaskID, tp.Int(0))
}
func (b *captureBolt) Cleanup() {}

// forwardBolt re-emits everything.
type forwardBolt struct{}

func (forwardBolt) Prepare(*TaskContext) {}
func (forwardBolt) Execute(tp *tuple.Tuple, c *Collector) {
	c.Emit(tp.Values...)
}
func (forwardBolt) Cleanup() {}

// runUntilDrained starts the topology, waits for spout exhaustion, drains
// and stops.
func runUntilDrained(t *testing.T, topo *Topology, cfg Config) *Engine {
	t.Helper()
	eng, err := Start(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	if !eng.Drain(15 * time.Second) {
		eng.Stop()
		t.Fatal("engine did not drain")
	}
	eng.Stop()
	return eng
}

func allGroupingConfigs() map[string]Config {
	return map[string]Config{
		"instance-oriented": {Comm: InstanceOriented},
		"woc-star":          {Comm: WorkerOriented, Multicast: MulticastStar},
		"woc-binomial":      {Comm: WorkerOriented, Multicast: MulticastBinomial},
		"woc-nonblocking":   {Comm: WorkerOriented, Multicast: MulticastNonBlocking, FixedDstar: true, InitialDstar: 2},
		"woc-adaptive":      {Comm: WorkerOriented, Multicast: MulticastNonBlocking, MonitorInterval: 5 * time.Millisecond},
	}
}

func TestAllGroupingExactlyOnce(t *testing.T) {
	const n, parallelism, workers = 500, 12, 4
	for name, cfg := range allGroupingConfigs() {
		t.Run(name, func(t *testing.T) {
			cap := newCapture()
			b := NewTopologyBuilder()
			b.Spout("src", func() Spout { return &countSpout{n: n, keys: 10} }, 1)
			b.Bolt("match", func() Bolt { return &captureBolt{cap: cap} }, parallelism).All("src")
			topo, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Workers = workers
			cfg.Network = transport.NewInprocNetwork(0)
			eng := runUntilDrained(t, topo, cfg)
			cap.exactlyOnce(t, eng.assign.TasksOf["match"], n)
			if got := eng.Metrics().TuplesExecuted.Value(); got != int64(n*parallelism) {
				t.Fatalf("executed %d, want %d", got, n*parallelism)
			}
			if eng.Metrics().TuplesCompleted.Value() != int64(n*parallelism) {
				t.Fatal("sink completions missing")
			}
			if eng.Metrics().ProcessingLatency.Count() == 0 {
				t.Fatal("no latency samples")
			}
		})
	}
}

func TestAllGroupingOverRDMA(t *testing.T) {
	// The full Whale stack: worker-oriented + non-blocking tree over the
	// emulated RDMA transport (one-sided READ channels).
	const n, parallelism, workers = 300, 8, 4
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: n, keys: 10} }, 1)
	b.Bolt("match", func() Bolt { return &captureBolt{cap: cap} }, parallelism).All("src")
	topo, _ := b.Build()
	cfg := Config{
		Workers:    workers,
		Network:    transport.NewRDMANetwork(rdmaCost(), rdmaCfg()),
		Comm:       WorkerOriented,
		Multicast:  MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
	}
	eng := runUntilDrained(t, topo, cfg)
	cap.exactlyOnce(t, eng.assign.TasksOf["match"], n)
	if eng.Metrics().MulticastLatency.Count() == 0 {
		t.Fatal("no multicast latency samples")
	}
}

func TestFieldsGroupingRoutesByKey(t *testing.T) {
	const n = 400
	cap := newCapture()
	keyByTask := struct {
		mu sync.Mutex
		m  map[string]int32
		ok bool
	}{m: map[string]int32{}, ok: true}
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: n, keys: 16} }, 1)
	b.Bolt("agg", func() Bolt {
		return &funcBolt{exec: func(ctx *TaskContext, tp *tuple.Tuple, _ *Collector) {
			cap.record(ctx.TaskID, tp.Int(0))
			key := tp.StringAt(1)
			keyByTask.mu.Lock()
			if prev, seen := keyByTask.m[key]; seen && prev != ctx.TaskID {
				keyByTask.ok = false
			}
			keyByTask.m[key] = ctx.TaskID
			keyByTask.mu.Unlock()
		}}
	}, 8).Fields("src", 1)
	topo, _ := b.Build()
	runUntilDrained(t, topo, Config{Workers: 4, Network: transport.NewInprocNetwork(0), Comm: WorkerOriented})
	if cap.total() != n {
		t.Fatalf("delivered %d of %d", cap.total(), n)
	}
	if !keyByTask.ok {
		t.Fatal("a key visited two different tasks")
	}
}

// funcBolt adapts a closure to the Bolt interface.
type funcBolt struct {
	exec func(*TaskContext, *tuple.Tuple, *Collector)
	ctx  *TaskContext
}

func (b *funcBolt) Prepare(ctx *TaskContext)              { b.ctx = ctx }
func (b *funcBolt) Execute(tp *tuple.Tuple, c *Collector) { b.exec(b.ctx, tp, c) }
func (b *funcBolt) Cleanup()                              {}

// rdmaCost and rdmaCfg configure the emulated RDMA network for engine
// integration tests: fast, small batches so tests drain quickly.
func rdmaCost() rdma.CostModel { return rdma.CostModel{} }
func rdmaCfg() rdma.ChannelConfig {
	return rdma.ChannelConfig{MMS: 8 << 10, WTL: 500 * time.Microsecond}
}

func TestShuffleGroupingBalances(t *testing.T) {
	const n = 800
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: n, keys: 4} }, 1)
	b.Bolt("work", func() Bolt { return &captureBolt{cap: cap} }, 8).Shuffle("src")
	topo, _ := b.Build()
	runUntilDrained(t, topo, Config{Workers: 4, Network: transport.NewInprocNetwork(0)})
	counts := cap.counts()
	if cap.total() != n {
		t.Fatalf("delivered %d of %d", cap.total(), n)
	}
	for task, c := range counts {
		if c != n/8 {
			t.Fatalf("task %d received %d; strict round-robin expects %d", task, c, n/8)
		}
	}
}

func TestGlobalGrouping(t *testing.T) {
	const n = 100
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: n, keys: 4} }, 1)
	b.Bolt("g", func() Bolt { return &captureBolt{cap: cap} }, 6).Global("src")
	topo, _ := b.Build()
	eng := runUntilDrained(t, topo, Config{Workers: 3, Network: transport.NewInprocNetwork(0)})
	first := eng.assign.TasksOf["g"][0]
	if got := cap.counts(); got[first] != n || cap.total() != n {
		t.Fatalf("global counts %v", got)
	}
}

func TestPipelineLatencyPropagation(t *testing.T) {
	const n = 200
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: n, keys: 4} }, 1)
	b.Bolt("mid", func() Bolt { return forwardBolt{} }, 3).Shuffle("src")
	b.Bolt("sink", func() Bolt { return &captureBolt{cap: cap} }, 2).FieldsStream("mid", "mid", 1)
	topo, _ := b.Build()
	eng := runUntilDrained(t, topo, Config{Workers: 2, Network: transport.NewInprocNetwork(0), Comm: WorkerOriented})
	if cap.total() != n {
		t.Fatalf("sink saw %d of %d", cap.total(), n)
	}
	m := eng.Metrics()
	if m.TuplesCompleted.Value() != n {
		t.Fatalf("completed %d", m.TuplesCompleted.Value())
	}
	if m.ProcessingLatency.Count() != n || m.ProcessingLatency.Mean() <= 0 {
		t.Fatalf("latency histogram %v", m.ProcessingLatency.Snapshot())
	}
}

// namedStreamSpout splits output across two named streams.
type namedStreamSpout struct{ i int }

func (s *namedStreamSpout) Open(*TaskContext) {}
func (s *namedStreamSpout) Next(c *Collector) bool {
	if s.i >= 100 {
		return false
	}
	if s.i%2 == 0 {
		c.EmitTo("even", int64(s.i), "k")
	} else {
		c.EmitTo("odd", int64(s.i), "k")
	}
	s.i++
	return true
}
func (s *namedStreamSpout) Close() {}

func TestNamedStreams(t *testing.T) {
	evens, odds := newCapture(), newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &namedStreamSpout{} }, 1)
	b.Bolt("e", func() Bolt { return &captureBolt{cap: evens} }, 2).AllStream("src", "even")
	b.Bolt("o", func() Bolt { return &captureBolt{cap: odds} }, 2).ShuffleStream("src", "odd")
	topo, _ := b.Build()
	runUntilDrained(t, topo, Config{Workers: 2, Network: transport.NewInprocNetwork(0), Comm: WorkerOriented})
	if evens.total() != 100 { // 50 evens × 2 tasks (all grouping)
		t.Fatalf("evens %d", evens.total())
	}
	if odds.total() != 50 {
		t.Fatalf("odds %d", odds.total())
	}
}

func TestStartValidation(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("s", mkSpout, 1)
	topo, _ := b.Build()
	if _, err := Start(topo, Config{}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := Start(topo, Config{Network: transport.NewInprocNetwork(0), Comm: InstanceOriented, Multicast: MulticastBinomial}); err == nil {
		t.Fatal("instance-oriented tree multicast accepted")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("s", func() Spout { return &countSpout{n: 10, keys: 2} }, 1)
	b.Bolt("x", func() Bolt { return &captureBolt{cap: newCapture()} }, 2).All("s")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{Workers: 2, Network: transport.NewInprocNetwork(0), Comm: WorkerOriented})
	if err != nil {
		t.Fatal(err)
	}
	eng.Stop()
	eng.Stop() // second stop must not panic or hang
}

// rateSpout emits continuously until stopped, at full speed.
type rateSpout struct{ i int }

func (s *rateSpout) Open(*TaskContext) {}
func (s *rateSpout) Next(c *Collector) bool {
	c.Emit(int64(s.i), "k")
	s.i++
	time.Sleep(50 * time.Microsecond)
	return true
}
func (s *rateSpout) Close() {}

func TestAdaptiveScaleUpSwitch(t *testing.T) {
	// Start with d*=1 (a chain). With a live stream, microsecond te and an
	// empty queue, the controller must scale up toward the binomial bound,
	// exercising the full CtrlTree/ACK protocol, with zero tuple loss
	// across the switch.
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &rateSpout{} }, 1)
	b.Bolt("match", func() Bolt { return &captureBolt{cap: cap} }, 14).All("src")
	topo, _ := b.Build()
	cfg := Config{
		Workers:         7,
		Network:         transport.NewInprocNetwork(0),
		Comm:            WorkerOriented,
		Multicast:       MulticastNonBlocking,
		InitialDstar:    1,
		MonitorInterval: 3 * time.Millisecond,
		Control:         control.Config{QueueCapacity: 1024, Alpha: 0.3},
	}
	eng, err := Start(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && eng.Metrics().Switches.Value() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if eng.Metrics().Switches.Value() == 0 {
		eng.Stop()
		t.Fatal("controller never switched")
	}
	// Let traffic flow across the new structure, then stop and verify.
	time.Sleep(50 * time.Millisecond)
	eng.StopSpouts()
	if !eng.Drain(15 * time.Second) {
		eng.Stop()
		t.Fatal("drain failed")
	}
	eng.Stop()
	if d := eng.ActiveDstar(); d <= 1 {
		t.Fatalf("d* = %d after scale-up", d)
	}
	if eng.Metrics().SwitchLatency.Count() == 0 {
		t.Fatal("switch latency not recorded")
	}
	// Exactly-once across the structure change.
	n := 0
	for _, c := range cap.counts() {
		if n == 0 {
			n = c
		}
	}
	cap.exactlyOnce(t, eng.assign.TasksOf["match"], n)
}

func TestOperatorStats(t *testing.T) {
	const n = 100
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: n, keys: 4} }, 1)
	b.Bolt("mid", func() Bolt { return forwardBolt{} }, 2).Shuffle("src")
	b.Bolt("sink", func() Bolt { return &captureBolt{cap: cap} }, 2).FieldsStream("mid", "mid", 1)
	topo, _ := b.Build()
	eng := runUntilDrained(t, topo, Config{Workers: 2, Network: transport.NewInprocNetwork(0)})
	stats := eng.OperatorStats()
	if len(stats) != 3 {
		t.Fatalf("stats for %d operators", len(stats))
	}
	if stats["src"].Emitted != n || stats["src"].Executed != 0 {
		t.Fatalf("src stats %+v", stats["src"])
	}
	if stats["mid"].Executed != n || stats["mid"].Emitted != n {
		t.Fatalf("mid stats %+v", stats["mid"])
	}
	if stats["sink"].Executed != n || stats["sink"].Emitted != 0 {
		t.Fatalf("sink stats %+v", stats["sink"])
	}
	if stats["sink"].ExecLatency.Count != n {
		t.Fatalf("sink exec latency %+v", stats["sink"].ExecLatency)
	}
}

func TestMultiSourceMulticastGroups(t *testing.T) {
	// Two spout tasks on different workers: each gets its own multicast
	// group and tree rooted at its worker; every destination instance must
	// still see every tuple from BOTH sources exactly once.
	const nPerSpout, parallelism, workers = 150, 9, 3
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: nPerSpout, keys: 5} }, 2)
	b.Bolt("sink", func() Bolt { return &captureBolt{cap: cap} }, parallelism).All("src")
	topo, _ := b.Build()
	eng := runUntilDrained(t, topo, Config{
		Workers: workers, Network: transport.NewInprocNetwork(0),
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
	})
	// One group per source worker hosting a spout task.
	srcWorkers := map[int32]bool{}
	for _, tid := range eng.assign.TasksOf["src"] {
		srcWorkers[eng.assign.WorkerOf[tid]] = true
	}
	if len(eng.groupDescs) != len(srcWorkers) {
		t.Fatalf("%d groups for %d source workers", len(eng.groupDescs), len(srcWorkers))
	}
	// Each sink task saw 2*nPerSpout tuples: nPerSpout seqs, each twice
	// (once per spout task).
	for _, task := range eng.assign.TasksOf["sink"] {
		got := cap.counts()[task]
		if got != 2*nPerSpout {
			t.Fatalf("task %d received %d, want %d", task, got, 2*nPerSpout)
		}
	}
}

// tickCountBolt counts tick and data tuples separately.
type tickCountBolt struct {
	ticks, data *metrics.Counter
}

func (b *tickCountBolt) Prepare(*TaskContext) {}
func (b *tickCountBolt) Execute(tp *tuple.Tuple, _ *Collector) {
	if tp.Stream == StreamTick {
		b.ticks.Inc()
	} else {
		b.data.Inc()
	}
}
func (b *tickCountBolt) Cleanup() {}

func TestTickTuples(t *testing.T) {
	var ticks, data metrics.Counter
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 10, keys: 2} }, 1)
	b.Bolt("win", func() Bolt { return &tickCountBolt{ticks: &ticks, data: &data} }, 2).
		Shuffle("src").TickEvery(20 * time.Millisecond)
	topo, _ := b.Build()
	eng, err := Start(topo, Config{Workers: 2, Network: transport.NewInprocNetwork(0)})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	if !eng.Drain(10 * time.Second) {
		eng.Stop()
		t.Fatal("drain failed")
	}
	completedBefore := eng.Metrics().TuplesCompleted.Value()
	time.Sleep(150 * time.Millisecond) // several tick periods with no data
	eng.Stop()
	if data.Value() != 10 {
		t.Fatalf("data tuples %d", data.Value())
	}
	// ~7 periods x 2 instances; allow slack for scheduling.
	if ticks.Value() < 6 {
		t.Fatalf("only %d ticks delivered", ticks.Value())
	}
	// Ticks never count as completed data tuples.
	if got := eng.Metrics().TuplesCompleted.Value(); got != completedBefore {
		t.Fatalf("ticks polluted completions: %d -> %d", completedBefore, got)
	}
}

func TestReconfigurationEventOrdering(t *testing.T) {
	// Drive the multicast manager's switch logic directly (the hour-long
	// monitor interval keeps the ticker out of the way): a scale-down
	// followed by a scale-up must land in the event log in order, with the
	// d* transitions and tree versions the controller decided on.
	scope := obs.NewScope(obs.Config{})
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 0, keys: 1} }, 1)
	b.Bolt("dst", func() Bolt { return &captureBolt{cap: cap} }, 6).All("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{
		Workers:         7,
		Network:         transport.NewInprocNetwork(0),
		Comm:            WorkerOriented,
		Multicast:       MulticastNonBlocking,
		InitialDstar:    3,
		MonitorInterval: time.Hour,
		Obs:             scope,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if len(eng.managers) != 1 {
		t.Fatalf("managers: %d", len(eng.managers))
	}
	var mgr *mcManager
	for _, m := range eng.managers {
		mgr = m
	}

	waitComplete := func(version int32) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			for _, ev := range scope.Events.Recent(0) {
				if ev.Kind == obs.EventSwitchComplete && ev.Version == version {
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("switch to version %d never completed", version)
	}

	mgr.maybeSwitch(control.Decision{Action: control.ScaleDown, NewDstar: 1,
		Lambda: 1e5, Te: 1e-6}, 900)
	waitComplete(2)
	mgr.maybeSwitch(control.Decision{Action: control.ScaleUp, NewDstar: 2,
		Lambda: 1e6, Te: 1e-6}, 0)
	waitComplete(3)

	var got []obs.Event
	for _, ev := range scope.Events.Recent(0) {
		switch ev.Kind {
		case obs.EventScaleDown, obs.EventScaleUp, obs.EventSwitchComplete:
			got = append(got, ev)
		}
	}
	want := []struct {
		kind     string
		version  int32
		oldDstar int
		newDstar int
	}{
		{obs.EventScaleDown, 2, 3, 1},
		{obs.EventSwitchComplete, 2, 0, 1},
		{obs.EventScaleUp, 3, 1, 2},
		{obs.EventSwitchComplete, 3, 0, 2},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d reconfiguration events: %+v", len(got), got)
	}
	for i, w := range want {
		ev := got[i]
		if ev.Kind != w.kind || ev.Version != w.version || ev.NewDstar != w.newDstar {
			t.Fatalf("event %d = %+v, want %+v", i, ev, w)
		}
		if w.oldDstar != 0 && ev.OldDstar != w.oldDstar {
			t.Fatalf("event %d OldDstar = %d, want %d", i, ev.OldDstar, w.oldDstar)
		}
		if i > 0 && ev.Seq <= got[i-1].Seq {
			t.Fatalf("events out of order: %+v", got)
		}
	}
	// Scale-ups and scale-downs each carry their M/D/1 inputs.
	if got[0].Lambda != 1e5 || got[0].Te != 1e-6 || got[0].QueueLen != 900 {
		t.Fatalf("scale-down M/D/1 inputs missing: %+v", got[0])
	}
	// The initial deployment logged a tree rebuild, and each switch another.
	rebuilds := 0
	for _, ev := range scope.Events.Recent(0) {
		if ev.Kind == obs.EventTreeRebuild {
			rebuilds++
		}
	}
	if rebuilds != 3 {
		t.Fatalf("tree rebuild events = %d, want 3", rebuilds)
	}
}
