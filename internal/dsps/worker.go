package dsps

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whale/internal/multicast"
	"whale/internal/obs"
	"whale/internal/rdma"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// jobKind discriminates transfer-queue jobs.
type jobKind int

const (
	// jobPointToPoint serializes and ships one tuple to one remote task
	// (the instance-oriented mechanism, and point-to-point edges generally).
	jobPointToPoint jobKind = iota
	// jobWorkerBatch serializes a tuple once and ships one WorkerMessage
	// per destination worker (worker-oriented communication, star fan-out).
	jobWorkerBatch
	// jobMulticast serializes once and ships to this worker's children in
	// the group's active multicast tree.
	jobMulticast
	// jobRelay forwards pre-encoded multicast bytes to child workers.
	jobRelay
	// jobControl ships a pre-encoded control message to one worker.
	jobControl
)

// sendJob is one unit of work on a worker's transfer queue.
type sendJob struct {
	kind          jobKind
	tp            *tuple.Tuple
	dstTask       int32
	dstWorker     int32
	group         int32
	tasksByWorker map[int32][]int32
	dstWorkers    []int32
	raw           []byte
	tracked       bool // carries acked-stream tuples (jobRelay): never shed
}

// groupState is one worker's view of a multicast group: the versioned trees
// installed by control messages and the currently active version.
type groupState struct {
	mu     sync.RWMutex
	trees  map[int32]*multicast.Tree
	active int32
}

func (g *groupState) install(version int32, tr *multicast.Tree) {
	g.mu.Lock()
	g.trees[version] = tr
	// Prune versions older than two behind the newest to bound memory.
	newest := version
	for v := range g.trees {
		if v > newest {
			newest = v
		}
	}
	for v := range g.trees {
		if v < newest-2 {
			delete(g.trees, v)
		}
	}
	g.mu.Unlock()
}

func (g *groupState) tree(version int32) (*multicast.Tree, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	t, ok := g.trees[version]
	return t, ok
}

func (g *groupState) activeVersion() int32 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.active
}

func (g *groupState) activate(version int32) {
	g.mu.Lock()
	if version > g.active {
		g.active = version
	}
	g.mu.Unlock()
}

// inboundData is one raw data message staged for the delivery goroutine
// (flow-controlled mode only). Transports hand the handler ownership of the
// payload, so staging the raw bytes is safe without a copy; decoding is
// deferred to the delivery goroutine, which owns a single reusable
// WorkerMessage scratch instead of allocating one per message.
type inboundData struct {
	from int32
	raw  []byte // the full encoded message, also forwarded verbatim by relays
}

// worker hosts a set of executors, one transfer queue with a send thread,
// and the dispatcher fed by the transport.
type worker struct {
	id  int32
	eng *Engine
	tr  transport.Transport
	// execs is the task->executor map behind an atomic pointer: read on
	// every local delivery, written only at Start (single-threaded) and
	// under the checkpoint coordinator's lock when a rescale adds
	// executors — clone-on-write, so readers never see a partial map.
	execs    atomic.Pointer[map[int32]*executor]
	transfer chan sendJob
	groups   map[int32]*groupState
	enc      *tuple.Encoder
	p2pDst   [1]int32 // DstIDs scratch for point-to-point sends (send thread only)
	// rngState seeds retry jitter. Lock-free (splitmix64 over an atomic
	// counter) because retries run concurrently on the send thread and on
	// the per-destination flow-control link goroutines.
	rngState atomic.Uint64
	fc       *flowControl
	// pushBlockedNS accumulates time the send thread spent blocked on a
	// full flow link during the current job. Only touched from the send
	// thread; recordTe subtracts it so the multicast controller's per-replica
	// emit cost reflects serialize+transmit work, not backpressure stalls —
	// otherwise a congested link reads as "emitting got expensive" and the
	// controller wrongly deepens the tree.
	pushBlockedNS int64
	done          chan struct{}
	wg            sync.WaitGroup
	sendWG        sync.WaitGroup

	// Per-worker stall accumulators feeding the bottleneck analyzer:
	// sampled executor-queue residency and retry-backoff (replay) time.
	execQueueWaitNS atomic.Int64
	replayNS        atomic.Int64

	// Staged inbound data messages (flow-controlled mode): the transport
	// handler appends, the delivery goroutine drains. Guarded by stageMu;
	// stageKick is the cap-1 wakeup.
	stageMu   sync.Mutex
	staged    []inboundData
	stageKick chan struct{}
}

func newWorker(eng *Engine, id int32) *worker {
	w := &worker{
		id:       id,
		eng:      eng,
		transfer: make(chan sendJob, eng.cfg.TransferQueueCap),
		groups:   map[int32]*groupState{},
		enc:      tuple.NewEncoder(),
		done:     make(chan struct{}),
	}
	w.execs.Store(&map[int32]*executor{})
	w.rngState.Store(uint64(id)*104729 + 7)
	if eng.cfg.CreditWindow > 0 && eng.cfg.MaxWorkers > 1 {
		w.fc = newFlowControl(w)
		w.stageKick = make(chan struct{}, 1)
	}
	return w
}

// execMap returns the worker's live task->executor map. Hot path: one
// atomic load; the map itself is immutable once published.
func (w *worker) execMap() map[int32]*executor { return *w.execs.Load() }

// addExecutor publishes ex via clone-on-write. Only called from Start and
// from the rescale apply (serialized by the coordinator lock).
func (w *worker) addExecutor(ex *executor) {
	old := *w.execs.Load()
	next := make(map[int32]*executor, len(old)+1)
	for tid, e := range old {
		next[tid] = e
	}
	next[ex.ctx.TaskID] = ex
	w.execs.Store(&next)
}

// sendData routes one encoded data message to dst through flow control
// when enabled, or straight to the retrying transport path otherwise. The
// flow-controlled path always reports true: delivery becomes asynchronous.
//
// sb is the pooled buffer backing raw (nil when raw is not pooled, e.g.
// relayed inbound bytes); sendData consumes exactly one reference to it on
// every path — synchronously here once the transport has copied the
// payload, or downstream in the flow link once the item leaves the queue.
//
//whale:owns sb
func (w *worker) sendData(dst int32, raw []byte, sb *sendBuf, cost, tuples int64, tracked bool) bool {
	if w.fc != nil {
		w.fc.push(dst, flowItem{raw: raw, buf: sb, cost: cost, tuples: tuples, tracked: tracked})
		return true
	}
	ok := w.send(dst, raw)
	sb.release()
	return ok
}

// grantData credits n delivery units back to the upstream sender src. Local
// deliveries (src == tuple.LocalSrc) and unknown worker ids owe nothing.
//
//whale:grants
func (w *worker) grantData(src int32, n int64) {
	if w.fc == nil || n <= 0 || src < 0 || int(src) >= len(w.eng.workers) {
		return
	}
	w.fc.grant(src, n)
}

// enqueueLocal delivers a tuple to a local executor (Storm's local fast
// path — no serialization).
func (w *worker) enqueueLocal(dst int32, tp *tuple.Tuple) {
	ex, ok := w.execMap()[dst]
	if !ok {
		w.eng.metrics.RouteErrors.Inc()
		return
	}
	select {
	case ex.in <- tuple.AddressedTuple{TaskID: dst, Src: tuple.LocalSrc, Data: tp}:
	case <-w.done:
	}
}

// enqueueRemote delivers a remotely received tuple to a local executor and
// grants the delivery unit back once the tuple is seated in the executor's
// input queue. Granting on admission — not on executor drain — matters on
// cyclic worker graphs: an executor can block mid-Execute on its own
// credit-starved downstream emit, and drain-time grants then let two
// mutually-loaded workers starve each other into timeout-paced stalls.
// In flow-controlled mode a full input queue parks the tuple on the
// executor's admission overflow instead of blocking: the delivery loop
// must keep moving so one slow executor only starves its own senders
// (grants for its tuples stall at the feeder) while siblings on the same
// worker keep receiving and granting. It reports whether the tuple entered
// an executor queue — a missing executor means the unit must be granted
// back by the caller instead.
//
//whale:grants
func (w *worker) enqueueRemote(from int32, dst int32, tp *tuple.Tuple) bool {
	ex, ok := w.execMap()[dst]
	if !ok {
		w.eng.metrics.RouteErrors.Inc()
		return false
	}
	at := tuple.AddressedTuple{TaskID: dst, Src: from, Data: tp}
	if w.fc != nil {
		ex.ovMu.Lock()
		if len(ex.overflow) == 0 {
			select {
			case ex.in <- at:
				ex.ovMu.Unlock()
				w.grantData(from, 1)
				return true
			default:
			}
		}
		// Parked: stamp traced tuples so the feeder can attribute the
		// overflow residency as an executor-queue-wait stall (sampled —
		// untraced tuples carry a zero stamp and pay no clock read).
		var stamp int64
		if tp.TraceID != 0 {
			stamp = time.Now().UnixNano()
		}
		ex.overflow = append(ex.overflow, at)
		ex.ovStampNS = append(ex.ovStampNS, stamp)
		ex.ovMu.Unlock()
		signal(ex.ovKick)
		return true
	}
	select {
	case ex.in <- at:
	case <-w.done:
	}
	return true
}

// enqueueSend pushes a job onto the transfer queue, blocking when the queue
// is at capacity Q (the blocking the paper's controller watches for).
func (w *worker) enqueueSend(j sendJob) {
	select {
	case w.transfer <- j:
	case <-w.done:
	}
}

// emitAll implements the one-to-many edge per the engine's configuration.
func (w *worker) emitAll(ex *executor, tp *tuple.Tuple, d destination) {
	tv := w.eng.tv()
	// Local destinations always take the fast path.
	for _, dst := range d.tasks {
		if tv.assign.WorkerOf[dst] == w.id {
			w.enqueueLocal(dst, tp)
		}
	}
	switch {
	case w.eng.cfg.Comm == InstanceOriented:
		for _, dst := range d.tasks {
			if dw := tv.assign.WorkerOf[dst]; dw != w.id {
				w.enqueueSend(sendJob{kind: jobPointToPoint, tp: tp, dstTask: dst, dstWorker: dw})
			}
		}
	case w.eng.cfg.Multicast == MulticastStar:
		byWorker := tv.remoteBy[d.dstOp][w.id]
		if len(byWorker) > 0 {
			w.enqueueSend(sendJob{kind: jobWorkerBatch, tp: tp, tasksByWorker: byWorker})
		}
	default: // tree multicast
		gid, ok := w.eng.groupOf(ex.ctx.OperatorID, tp.Stream, w.id)
		if !ok {
			// No remote members: everything was delivered locally.
			return
		}
		if mgr := w.eng.managers[gid]; mgr != nil && mgr.adaptive {
			mgr.sm.Record(1)
		}
		w.enqueueSend(sendJob{kind: jobMulticast, tp: tp, group: gid})
	}
}

// sendLoop is the worker's send thread: it drains the transfer queue,
// paying serialization and transmission costs per job.
func (w *worker) sendLoop() {
	defer w.sendWG.Done()
	for {
		select {
		case j := <-w.transfer:
			w.process(j)
		case <-w.done:
			for {
				select {
				case j := <-w.transfer:
					w.process(j)
				default:
					return
				}
			}
		}
	}
}

// encodeTuple serializes a tuple, accounting the cost.
func (w *worker) encodeTuple(tp *tuple.Tuple) ([]byte, error) {
	t0 := time.Now()
	payload, err := w.enc.EncodeTuple(tp)
	d := time.Since(t0)
	w.eng.metrics.SerializationNS.Add(d.Nanoseconds())
	w.eng.metrics.Serializations.Inc()
	w.eng.obs.Tracer.Record(tp.TraceID, obs.StageSerialize, w.id, t0, d)
	return payload, err
}

// tupleTracked reports whether tp must never be shed by a full flow link:
// tuples anchored in a reliability tree, and the ack-plane control tuples
// themselves — shedding an ack would strand its tree until the ack timeout
// even though the data arrived.
func tupleTracked(tp *tuple.Tuple) bool {
	// Barriers are never shed: losing one stalls its epoch's alignment
	// until the coordinator times the epoch out.
	return tp.RootID != 0 || isAckStream(tp.Stream) || tp.Stream == StreamBarrier
}

func (w *worker) process(j sendJob) {
	m := w.eng.metrics
	switch j.kind {
	case jobPointToPoint:
		w.pushBlockedNS = 0
		t0 := time.Now()
		payload, err := w.encodeTuple(j.tp)
		if err != nil {
			m.RouteErrors.Inc()
			return
		}
		w.p2pDst[0] = j.dstTask
		msg := tuple.WorkerMessage{Kind: tuple.KindInstanceMessage, DstIDs: w.p2pDst[:], Payload: payload}
		t1 := time.Now()
		sb := acquireSendBuf()
		sb.b = tuple.AppendWorkerMessage(sb.b[:0], &msg)
		if !w.sendData(j.dstWorker, sb.b, sb, 1, 1, tupleTracked(j.tp)) {
			return
		}
		w.eng.obs.Tracer.Record(j.tp.TraceID, obs.StageRDMASlice, w.id, t1, time.Since(t1))
		w.recordTe(j.tp.SrcTask, time.Since(t0)-time.Duration(w.pushBlockedNS))

	case jobWorkerBatch:
		payload, err := w.encodeTuple(j.tp)
		if err != nil {
			m.RouteErrors.Inc()
			return
		}
		workers := make([]int32, 0, len(j.tasksByWorker))
		for dw := range j.tasksByWorker {
			workers = append(workers, dw)
		}
		sort.Slice(workers, func(i, k int) bool { return workers[i] < workers[k] })
		for _, dw := range workers {
			w.pushBlockedNS = 0
			t0 := time.Now()
			msg := tuple.WorkerMessage{Kind: tuple.KindWorkerMessage, DstIDs: j.tasksByWorker[dw], Payload: payload}
			n := int64(len(j.tasksByWorker[dw]))
			cost := n
			if cost < 1 {
				cost = 1
			}
			sb := acquireSendBuf()
			sb.b = tuple.AppendWorkerMessage(sb.b[:0], &msg)
			if !w.sendData(dw, sb.b, sb, cost, n, tupleTracked(j.tp)) {
				continue
			}
			w.eng.obs.Tracer.Record(j.tp.TraceID, obs.StageRDMASlice, w.id, t0, time.Since(t0))
			w.recordTe(j.tp.SrcTask, time.Since(t0)-time.Duration(w.pushBlockedNS))
		}

	case jobMulticast:
		gs, ok := w.groups[j.group]
		if !ok {
			m.RouteErrors.Inc()
			return
		}
		version := gs.activeVersion()
		tr, ok := gs.tree(version)
		if !ok {
			m.RouteErrors.Inc()
			return
		}
		children := tr.Children(w.id)
		if len(children) == 0 {
			return
		}
		payload, err := w.encodeTuple(j.tp)
		if err != nil {
			m.RouteErrors.Inc()
			return
		}
		msg := tuple.WorkerMessage{
			Kind: tuple.KindMulticastMessage, Payload: payload,
			Group: j.group, TreeVersion: version, SrcWorker: w.id,
		}
		// Serialize once, fan out one pooled-buffer reference per child.
		sb := acquireSendBuf()
		sb.b = tuple.AppendWorkerMessage(sb.b[:0], &msg)
		sb.retain(int32(len(children) - 1))
		for _, child := range children {
			w.pushBlockedNS = 0
			t0 := time.Now()
			if !w.sendData(child, sb.b, sb, w.multicastCost(j.group, child), int64(len(w.eng.groupLocalTasks(j.group, child))), tupleTracked(j.tp)) {
				continue
			}
			// Source hop: depth 0, fan-out = this worker's child count.
			w.eng.obs.Tracer.RecordHop(j.tp.TraceID, obs.StageRDMASlice, w.id,
				child, version, 0, int32(len(children)), t0, time.Since(t0))
			w.recordTe(j.tp.SrcTask, time.Since(t0)-time.Duration(w.pushBlockedNS))
		}

	case jobRelay:
		// Relayed bytes are inbound-handler-owned (and aliased by the decoded
		// tuples already delivered locally), never pooled: no sendBuf.
		for _, dw := range j.dstWorkers {
			w.sendData(dw, j.raw, nil, w.multicastCost(j.group, dw), int64(len(w.eng.groupLocalTasks(j.group, dw))), j.tracked)
		}

	case jobControl:
		w.send(j.dstWorker, j.raw)
	}
}

// multicastCost is the delivery units one multicast message costs toward
// child: one relay-acceptance unit (granted when the child finishes
// relay routing — the hop-by-hop backpressure signal) plus one unit per
// subscribed task local to the child. Sender and receiver must agree on
// this rule exactly; it deliberately does not depend on the tree version.
func (w *worker) multicastCost(gid, child int32) int64 {
	return 1 + int64(len(w.eng.groupLocalTasks(gid, child)))
}

// send delivers raw to worker dst from the send thread, with bounded
// exponential backoff plus jitter on transient transport errors (dropped
// links, partitions, full RDMA send queues). Sends to confirmed-dead
// workers are suppressed outright. It reports whether the payload was
// handed to the transport; permanent errors and exhausted retries count in
// dsps.send_errors.
func (w *worker) send(dst int32, raw []byte) bool {
	ok, _ := w.sendMeasured(dst, raw)
	return ok
}

// sendTraced is send plus sampled stall attribution: when raw carries a
// traced tuple, time lost to retry backoff is recorded as a replay stall
// and transport blocking on a full ring (delta of the channel's BlockedNS
// across the call — approximate under concurrent links, exact enough for
// a sampled diagnostic) as a ring-wait stall.
func (w *worker) sendTraced(dst int32, raw []byte, traceID int64) bool {
	if traceID == 0 {
		return w.send(dst, raw)
	}
	t0 := time.Now()
	var ringBefore int64
	cs, hasCS := w.tr.(interface{ ChannelStats() rdma.StatsSnapshot })
	if hasCS {
		ringBefore = cs.ChannelStats().BlockedNS
	}
	ok, backoff := w.sendMeasured(dst, raw)
	if backoff > 0 {
		w.eng.obs.Tracer.RecordHop(traceID, obs.StallReplay, w.id, dst, 0, 0, 0, t0, backoff)
	}
	if hasCS {
		if d := cs.ChannelStats().BlockedNS - ringBefore; d > 0 {
			w.eng.obs.Tracer.RecordHop(traceID, obs.StallRingWait, w.id, dst, 0, 0, 0, t0, time.Duration(d))
		}
	}
	return ok
}

// sendMeasured is the retrying send; it additionally returns the time
// spent waiting out retry backoff (zero on the first-attempt fast path),
// which feeds the replay stall class and dsps.replay_ns.
func (w *worker) sendMeasured(dst int32, raw []byte) (bool, time.Duration) {
	if w.eng.workerDead(dst) {
		w.eng.metrics.SendsSuppressed.Inc()
		return false, 0
	}
	err := w.tr.Send(dst, raw)
	if err == nil {
		return true, 0
	}
	var waited time.Duration
	defer func() {
		if waited > 0 {
			w.eng.metrics.ReplayNS.Add(waited.Nanoseconds())
			w.replayNS.Add(waited.Nanoseconds())
		}
	}()
	backoff := w.eng.cfg.SendRetryBase
	for attempt := 0; attempt < w.eng.cfg.SendRetries && transport.IsTransient(err); attempt++ {
		// Jitter in [backoff/2, 3*backoff/2) decorrelates retry storms
		// across workers and across this worker's concurrent senders.
		d := backoff/2 + time.Duration(w.jitter(int64(backoff)))
		tw := time.Now()
		select {
		case <-time.After(d):
			waited += time.Since(tw)
		case <-w.done:
			w.eng.metrics.SendErrors.Inc()
			return false, waited + time.Since(tw)
		case <-w.eng.stopping:
			// Engine shutdown bounds the total backoff: without this, Stop
			// could wait out the full exponential schedule per queued send.
			w.eng.metrics.SendErrors.Inc()
			return false, waited + time.Since(tw)
		}
		if w.eng.workerDead(dst) {
			w.eng.metrics.SendsSuppressed.Inc()
			return false, waited
		}
		w.eng.metrics.SendRetries.Inc()
		if err = w.tr.Send(dst, raw); err == nil {
			return true, waited
		}
		backoff *= 2
	}
	w.eng.metrics.SendErrors.Inc()
	return false, waited
}

// recordTe feeds the per-replica processing time to the source task's group
// monitor if one exists (only multicast sources adapt).
func (w *worker) recordTe(srcTask int32, d time.Duration) {
	if d < 0 {
		d = 0
	}
	if mgr := w.eng.managerForTask(srcTask); mgr != nil {
		mgr.qm.RecordEmit(d.Nanoseconds())
	}
}

// dispatch is the transport inbound handler: Whale's dispatcher component.
//
// Without flow control it delivers data inline (the seed behavior). With
// flow control on, data messages are staged to a worker-local queue drained
// by a dedicated delivery goroutine while control messages keep being
// handled inline — crucially including CtrlCredit grants. With a single
// serial inbound handler, a grant queued behind data wedges the whole
// worker: the delivery path can block on a full executor queue whose bolt
// is itself blocked emitting on a credit-starved link, and the grant that
// would reopen that link then sits unprocessed behind the data in front of
// it — a distributed cycle broken only by the credit timeout. Handling
// control inline makes grant processing independent of data-path progress.
// The staged queue is unbounded but its occupancy is bounded by the credit
// protocol itself: no sender can have more than a window of units in
// flight, so staging holds at most the sum of the incoming links' windows.
func (w *worker) dispatch(from transport.WorkerID, payload []byte) {
	// Any inbound message is liveness evidence; explicit heartbeats only
	// matter on otherwise-idle links.
	if fd := w.eng.detector; fd != nil && w.id == fd.monitor {
		fd.observe(from)
	}
	if w.fc != nil {
		// Peek the kind byte instead of decoding: control stays inline, data
		// is staged raw and decoded by the delivery goroutine's scratch.
		if tuple.MessageKind(payload) == tuple.KindControl {
			msg, _, err := tuple.DecodeWorkerMessage(payload)
			if err != nil {
				w.eng.metrics.DecodeErrors.Inc()
				return
			}
			cm, _, err := tuple.DecodeControlMessage(msg.Payload)
			if err != nil {
				w.eng.metrics.DecodeErrors.Inc()
				return
			}
			w.handleControl(from, cm)
			return
		}
		w.stageMu.Lock()
		w.staged = append(w.staged, inboundData{from: int32(from), raw: payload})
		w.stageMu.Unlock()
		signal(w.stageKick)
		return
	}
	// Inline delivery can run concurrently (one handler invocation per
	// inbound link), so the decode scratch comes from a pool rather than a
	// single worker-owned struct.
	m := wmsgPool.Get().(*tuple.WorkerMessage)
	if _, err := tuple.DecodeWorkerMessageInto(m, payload); err != nil {
		w.eng.metrics.DecodeErrors.Inc()
	} else {
		w.deliverData(from, m, payload)
	}
	m.Payload = nil // drop the payload reference before pooling
	wmsgPool.Put(m)
}

// wmsgPool recycles WorkerMessage decode scratch for the inline dispatch
// path. deliverData never retains the message struct (only the payload
// bytes, which it does not own), so pooling after delivery is safe.
var wmsgPool = sync.Pool{New: func() any { return new(tuple.WorkerMessage) }}

// deliverLoop drains the staged inbound data queue in arrival order. Only
// runs in flow-controlled mode; it may block on executor admission or a
// full transfer queue — that blocking is the backpressure signal (grants
// are withheld), and it never delays control-message processing.
func (w *worker) deliverLoop() {
	defer w.wg.Done()
	// Single-goroutine decode scratch: DstIDs capacity is reused across
	// messages, so steady-state delivery does not allocate per message.
	var scratch tuple.WorkerMessage
	for {
		w.stageMu.Lock()
		if len(w.staged) > 0 {
			it := w.staged[0]
			w.staged[0] = inboundData{}
			w.staged = w.staged[1:]
			w.stageMu.Unlock()
			if _, err := tuple.DecodeWorkerMessageInto(&scratch, it.raw); err != nil {
				w.eng.metrics.DecodeErrors.Inc()
			} else {
				w.deliverData(transport.WorkerID(it.from), &scratch, it.raw)
			}
			continue
		}
		w.stageMu.Unlock()
		select {
		case <-w.stageKick:
		case <-w.done:
			return
		}
	}
}

// stagedLen reports the number of staged inbound data messages (drain
// accounting).
func (w *worker) stagedLen() int {
	if w.fc == nil {
		return 0
	}
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	return len(w.staged)
}

// deliverData routes one decoded inbound message to local executors (and,
// for multicast, onto the relay path). raw is the full encoded message the
// handler received — owned by us per the transport contract — forwarded
// verbatim by relays.
func (w *worker) deliverData(from transport.WorkerID, msg *tuple.WorkerMessage, raw []byte) {
	switch msg.Kind {
	case tuple.KindInstanceMessage, tuple.KindWorkerMessage:
		t0 := time.Now()
		src := int32(from)
		// The sender charged max(1, len(DstIDs)) units; every unit must be
		// granted back — on drain for delivered tuples, immediately for the
		// ones that can never drain (decode error, missing executor).
		total := int64(len(msg.DstIDs)) //whale:charged multi
		if total < 1 {
			total = 1
		}
		tp, _, err := tuple.DecodeTuple(msg.Payload)
		if err != nil {
			w.eng.metrics.DecodeErrors.Inc()
			w.grantData(src, total)
			return
		}
		if msg.Kind == tuple.KindWorkerMessage && tp.RootEmitNS > 0 {
			w.eng.metrics.MulticastLatency.Observe(time.Now().UnixNano() - tp.RootEmitNS)
		}
		var delivered int64
		for _, dst := range msg.DstIDs {
			if w.enqueueRemote(src, dst, tp) {
				delivered++
			}
		}
		if total > delivered {
			w.grantData(src, total-delivered)
		}
		w.eng.obs.Tracer.RecordHop(tp.TraceID, obs.StageDispatch, w.id,
			src, 0, 0, 0, t0, time.Since(t0))

	case tuple.KindMulticastMessage:
		src := int32(from)
		localCost := int64(len(w.eng.groupLocalTasks(msg.Group, w.id))) //whale:charged multi
		gs, ok := w.groups[msg.Group]
		if !ok {
			w.eng.metrics.DecodeErrors.Inc()
			w.grantData(src, 1+localCost)
			return
		}
		t0 := time.Now()
		tp, _, err := tuple.DecodeTuple(msg.Payload)
		if err != nil {
			w.eng.metrics.DecodeErrors.Inc()
			w.grantData(src, 1+localCost)
			return
		}
		relayed := false
		var hopDepth, hopFanout int32
		if tr, ok := gs.tree(msg.TreeVersion); ok {
			children := tr.Children(w.id)
			if len(children) > 0 {
				w.enqueueSend(sendJob{kind: jobRelay, raw: raw, dstWorkers: children,
					group: msg.Group, tracked: tupleTracked(tp)})
				relayed = true
			}
			if tp.TraceID != 0 {
				// Hop metadata is only derived for sampled tuples: DepthOf
				// walks parent pointers, which untraced traffic should not pay.
				hopDepth = int32(tr.DepthOf(w.id))
				hopFanout = int32(len(children))
			}
		} else {
			w.eng.metrics.RouteErrors.Inc()
		}
		// Relay-acceptance unit: granted only once the message has a seat
		// on the transfer queue (enqueueSend blocks when it is full), so a
		// congested relay withholds the grant and the parent stalls —
		// backpressure propagates up the tree hop by hop.
		w.grantData(src, 1)
		if relayed {
			// The trace ID is only known after decode; the hop covers the
			// relay copy + enqueue that preceded it.
			w.eng.obs.Tracer.RecordHop(tp.TraceID, obs.StageTreeHop, w.id,
				src, msg.TreeVersion, hopDepth, hopFanout, t0, time.Since(t0))
		}
		if tp.RootEmitNS > 0 {
			w.eng.metrics.MulticastLatency.Observe(time.Now().UnixNano() - tp.RootEmitNS)
		}
		t1 := time.Now()
		for _, dst := range w.eng.groupLocalTasks(msg.Group, w.id) {
			if !w.enqueueRemote(src, dst, tp) {
				w.grantData(src, 1)
			}
		}
		w.eng.obs.Tracer.RecordHop(tp.TraceID, obs.StageDispatch, w.id,
			src, msg.TreeVersion, hopDepth, 0, t1, time.Since(t1))

	case tuple.KindControl:
		cm, _, err := tuple.DecodeControlMessage(msg.Payload)
		if err != nil {
			w.eng.metrics.DecodeErrors.Inc()
			return
		}
		w.handleControl(from, cm)

	default:
		w.eng.metrics.DecodeErrors.Inc()
	}
}

// handleControl processes the dynamic-switching control plane (§3.4).
func (w *worker) handleControl(from transport.WorkerID, cm *tuple.ControlMessage) {
	switch cm.Type {
	case tuple.CtrlTree:
		gs, ok := w.groups[cm.Group]
		if !ok {
			w.eng.metrics.DecodeErrors.Inc()
			return
		}
		tr, err := multicast.FromFlat(cm.Nodes, cm.Parents)
		if err != nil {
			w.eng.metrics.DecodeErrors.Inc()
			return
		}
		gs.install(cm.Version, tr)
		gs.activate(cm.Version)
		// ACK back to the source worker.
		ack := tuple.ControlMessage{Type: tuple.CtrlAck, Group: cm.Group, Version: cm.Version, Node: w.id}
		raw := tuple.AppendWorkerMessage(nil, &tuple.WorkerMessage{
			Kind:    tuple.KindControl,
			Payload: tuple.AppendControlMessage(nil, &ack),
		})
		w.enqueueSend(sendJob{kind: jobControl, dstWorker: from, raw: raw})

	case tuple.CtrlAck:
		if mgr := w.eng.managers[cm.Group]; mgr != nil {
			mgr.handleAck(cm.Version, cm.Node)
		}

	case tuple.CtrlCredit:
		if w.fc != nil {
			w.fc.onGrant(int32(from), cm.Credits)
		}

	case tuple.CtrlSnapAck:
		if cc := w.eng.ckpt; cc != nil {
			cc.handleAck(cm.Direction, cm.Node, cm.Epoch)
		}

	case tuple.CtrlJoin:
		// Monitor-side admission. Idempotent: admission flips the membership
		// bit at most once, but every CtrlJoin re-replies CtrlWelcome so a
		// lost or reordered welcome is healed by the joiner's next retry.
		if fd := w.eng.detector; fd != nil && w.id == fd.monitor {
			// Admit only while the joiner still awaits its welcome: a stale
			// retry processed after the handshake completed must not
			// re-admit a worker that meanwhile left — its heartbeats are
			// stopped, so the sweep would confirm the "member" dead.
			w.eng.admitPendingWorker(cm.Node)
			welcome := tuple.ControlMessage{Type: tuple.CtrlWelcome, Node: cm.Node, Version: cm.Version}
			enc := tuple.AcquireEncoder()
			raw := append([]byte(nil), enc.EncodeControlEnvelope(&welcome)...)
			tuple.ReleaseEncoder(enc)
			w.enqueueSend(sendJob{kind: jobControl, dstWorker: cm.Node, raw: raw})
		}

	case tuple.CtrlWelcome:
		// Joiner-side handshake completion; duplicates are no-ops.
		w.eng.completeJoin(cm.Node)

	case tuple.CtrlHeartbeat:
		// Liveness was recorded in dispatch; the beacon carries no payload.

	default:
		// CtrlStatus and CtrlReconnect are informational in this
		// implementation (CtrlTree carries the full structure).
	}
}

// jitter returns a pseudo-random value in [0, n): one splitmix64 step over
// an atomic counter, so concurrent callers (send thread, flow-link
// goroutines) never contend on a lock or race on shared rng state.
func (w *worker) jitter(n int64) int64 {
	x := w.rngState.Add(0x9E3779B97F4A7C15)
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x % uint64(n))
}
