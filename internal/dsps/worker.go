package dsps

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"whale/internal/multicast"
	"whale/internal/obs"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// jobKind discriminates transfer-queue jobs.
type jobKind int

const (
	// jobPointToPoint serializes and ships one tuple to one remote task
	// (the instance-oriented mechanism, and point-to-point edges generally).
	jobPointToPoint jobKind = iota
	// jobWorkerBatch serializes a tuple once and ships one WorkerMessage
	// per destination worker (worker-oriented communication, star fan-out).
	jobWorkerBatch
	// jobMulticast serializes once and ships to this worker's children in
	// the group's active multicast tree.
	jobMulticast
	// jobRelay forwards pre-encoded multicast bytes to child workers.
	jobRelay
	// jobControl ships a pre-encoded control message to one worker.
	jobControl
)

// sendJob is one unit of work on a worker's transfer queue.
type sendJob struct {
	kind          jobKind
	tp            *tuple.Tuple
	dstTask       int32
	dstWorker     int32
	group         int32
	tasksByWorker map[int32][]int32
	dstWorkers    []int32
	raw           []byte
}

// groupState is one worker's view of a multicast group: the versioned trees
// installed by control messages and the currently active version.
type groupState struct {
	mu     sync.RWMutex
	trees  map[int32]*multicast.Tree
	active int32
}

func (g *groupState) install(version int32, tr *multicast.Tree) {
	g.mu.Lock()
	g.trees[version] = tr
	// Prune versions older than two behind the newest to bound memory.
	newest := version
	for v := range g.trees {
		if v > newest {
			newest = v
		}
	}
	for v := range g.trees {
		if v < newest-2 {
			delete(g.trees, v)
		}
	}
	g.mu.Unlock()
}

func (g *groupState) tree(version int32) (*multicast.Tree, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	t, ok := g.trees[version]
	return t, ok
}

func (g *groupState) activeVersion() int32 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.active
}

func (g *groupState) activate(version int32) {
	g.mu.Lock()
	if version > g.active {
		g.active = version
	}
	g.mu.Unlock()
}

// worker hosts a set of executors, one transfer queue with a send thread,
// and the dispatcher fed by the transport.
type worker struct {
	id        int32
	eng       *Engine
	tr        transport.Transport
	executors map[int32]*executor
	transfer  chan sendJob
	groups    map[int32]*groupState
	enc       *tuple.Encoder
	rng       *rand.Rand // retry jitter; only touched from the send thread
	done      chan struct{}
	wg        sync.WaitGroup
	sendWG    sync.WaitGroup
}

func newWorker(eng *Engine, id int32) *worker {
	return &worker{
		id:        id,
		eng:       eng,
		executors: map[int32]*executor{},
		transfer:  make(chan sendJob, eng.cfg.TransferQueueCap),
		groups:    map[int32]*groupState{},
		enc:       tuple.NewEncoder(),
		rng:       rand.New(rand.NewSource(int64(id)*104729 + 7)),
		done:      make(chan struct{}),
	}
}

// enqueueLocal delivers a tuple to a local executor (Storm's local fast
// path — no serialization).
func (w *worker) enqueueLocal(dst int32, tp *tuple.Tuple) {
	ex, ok := w.executors[dst]
	if !ok {
		w.eng.metrics.RouteErrors.Inc()
		return
	}
	select {
	case ex.in <- tuple.AddressedTuple{TaskID: dst, Data: tp}:
	case <-w.done:
	}
}

// enqueueSend pushes a job onto the transfer queue, blocking when the queue
// is at capacity Q (the blocking the paper's controller watches for).
func (w *worker) enqueueSend(j sendJob) {
	select {
	case w.transfer <- j:
	case <-w.done:
	}
}

// emitAll implements the one-to-many edge per the engine's configuration.
func (w *worker) emitAll(ex *executor, tp *tuple.Tuple, d destination) {
	// Local destinations always take the fast path.
	for _, dst := range d.tasks {
		if w.eng.assign.WorkerOf[dst] == w.id {
			w.enqueueLocal(dst, tp)
		}
	}
	switch {
	case w.eng.cfg.Comm == InstanceOriented:
		for _, dst := range d.tasks {
			if dw := w.eng.assign.WorkerOf[dst]; dw != w.id {
				w.enqueueSend(sendJob{kind: jobPointToPoint, tp: tp, dstTask: dst, dstWorker: dw})
			}
		}
	case w.eng.cfg.Multicast == MulticastStar:
		byWorker := w.eng.remoteTasksByWorker(d.dstOp, w.id)
		if len(byWorker) > 0 {
			w.enqueueSend(sendJob{kind: jobWorkerBatch, tp: tp, tasksByWorker: byWorker})
		}
	default: // tree multicast
		gid, ok := w.eng.groupOf(ex.ctx.OperatorID, tp.Stream, w.id)
		if !ok {
			// No remote members: everything was delivered locally.
			return
		}
		if mgr := w.eng.managers[gid]; mgr != nil && mgr.adaptive {
			mgr.sm.Record(1)
		}
		w.enqueueSend(sendJob{kind: jobMulticast, tp: tp, group: gid})
	}
}

// sendLoop is the worker's send thread: it drains the transfer queue,
// paying serialization and transmission costs per job.
func (w *worker) sendLoop() {
	defer w.sendWG.Done()
	for {
		select {
		case j := <-w.transfer:
			w.process(j)
		case <-w.done:
			for {
				select {
				case j := <-w.transfer:
					w.process(j)
				default:
					return
				}
			}
		}
	}
}

// encodeTuple serializes a tuple, accounting the cost.
func (w *worker) encodeTuple(tp *tuple.Tuple) ([]byte, error) {
	t0 := time.Now()
	payload, err := w.enc.EncodeTuple(tp)
	d := time.Since(t0)
	w.eng.metrics.SerializationNS.Add(d.Nanoseconds())
	w.eng.metrics.Serializations.Inc()
	w.eng.obs.Tracer.Record(tp.TraceID, obs.StageSerialize, w.id, t0, d)
	return payload, err
}

func (w *worker) process(j sendJob) {
	m := w.eng.metrics
	switch j.kind {
	case jobPointToPoint:
		t0 := time.Now()
		payload, err := w.encodeTuple(j.tp)
		if err != nil {
			m.RouteErrors.Inc()
			return
		}
		msg := tuple.WorkerMessage{Kind: tuple.KindInstanceMessage, DstIDs: []int32{j.dstTask}, Payload: payload}
		t1 := time.Now()
		if !w.send(j.dstWorker, tuple.AppendWorkerMessage(nil, &msg)) {
			return
		}
		w.eng.obs.Tracer.Record(j.tp.TraceID, obs.StageRDMASlice, w.id, t1, time.Since(t1))
		w.recordTe(j.tp.SrcTask, time.Since(t0))

	case jobWorkerBatch:
		payload, err := w.encodeTuple(j.tp)
		if err != nil {
			m.RouteErrors.Inc()
			return
		}
		workers := make([]int32, 0, len(j.tasksByWorker))
		for dw := range j.tasksByWorker {
			workers = append(workers, dw)
		}
		sort.Slice(workers, func(i, k int) bool { return workers[i] < workers[k] })
		for _, dw := range workers {
			t0 := time.Now()
			msg := tuple.WorkerMessage{Kind: tuple.KindWorkerMessage, DstIDs: j.tasksByWorker[dw], Payload: payload}
			if !w.send(dw, tuple.AppendWorkerMessage(nil, &msg)) {
				continue
			}
			w.eng.obs.Tracer.Record(j.tp.TraceID, obs.StageRDMASlice, w.id, t0, time.Since(t0))
			w.recordTe(j.tp.SrcTask, time.Since(t0))
		}

	case jobMulticast:
		gs, ok := w.groups[j.group]
		if !ok {
			m.RouteErrors.Inc()
			return
		}
		version := gs.activeVersion()
		tr, ok := gs.tree(version)
		if !ok {
			m.RouteErrors.Inc()
			return
		}
		payload, err := w.encodeTuple(j.tp)
		if err != nil {
			m.RouteErrors.Inc()
			return
		}
		msg := tuple.WorkerMessage{
			Kind: tuple.KindMulticastMessage, Payload: payload,
			Group: j.group, TreeVersion: version, SrcWorker: w.id,
		}
		raw := tuple.AppendWorkerMessage(nil, &msg)
		for _, child := range tr.Children(w.id) {
			t0 := time.Now()
			if !w.send(child, raw) {
				continue
			}
			w.eng.obs.Tracer.Record(j.tp.TraceID, obs.StageRDMASlice, w.id, t0, time.Since(t0))
			w.recordTe(j.tp.SrcTask, time.Since(t0))
		}

	case jobRelay:
		for _, dw := range j.dstWorkers {
			w.send(dw, j.raw)
		}

	case jobControl:
		w.send(j.dstWorker, j.raw)
	}
}

// send delivers raw to worker dst from the send thread, with bounded
// exponential backoff plus jitter on transient transport errors (dropped
// links, partitions, full RDMA send queues). Sends to confirmed-dead
// workers are suppressed outright. It reports whether the payload was
// handed to the transport; permanent errors and exhausted retries count in
// dsps.send_errors.
func (w *worker) send(dst int32, raw []byte) bool {
	if w.eng.workerDead(dst) {
		w.eng.metrics.SendsSuppressed.Inc()
		return false
	}
	err := w.tr.Send(dst, raw)
	if err == nil {
		return true
	}
	backoff := w.eng.cfg.SendRetryBase
	for attempt := 0; attempt < w.eng.cfg.SendRetries && transport.IsTransient(err); attempt++ {
		// Jitter in [backoff/2, 3*backoff/2) decorrelates retry storms
		// across workers; the rng is only touched from this goroutine.
		d := backoff/2 + time.Duration(w.rng.Int63n(int64(backoff)))
		select {
		case <-time.After(d):
		case <-w.done:
			w.eng.metrics.SendErrors.Inc()
			return false
		}
		if w.eng.workerDead(dst) {
			w.eng.metrics.SendsSuppressed.Inc()
			return false
		}
		w.eng.metrics.SendRetries.Inc()
		if err = w.tr.Send(dst, raw); err == nil {
			return true
		}
		backoff *= 2
	}
	w.eng.metrics.SendErrors.Inc()
	return false
}

// recordTe feeds the per-replica processing time to the source task's group
// monitor if one exists (only multicast sources adapt).
func (w *worker) recordTe(srcTask int32, d time.Duration) {
	if mgr := w.eng.managerForTask(srcTask); mgr != nil {
		mgr.qm.RecordEmit(d.Nanoseconds())
	}
}

// dispatch is the transport inbound handler: Whale's dispatcher component.
func (w *worker) dispatch(from transport.WorkerID, payload []byte) {
	// Any inbound message is liveness evidence; explicit heartbeats only
	// matter on otherwise-idle links.
	if fd := w.eng.detector; fd != nil && w.id == fd.monitor {
		fd.observe(from)
	}
	msg, _, err := tuple.DecodeWorkerMessage(payload)
	if err != nil {
		w.eng.metrics.DecodeErrors.Inc()
		return
	}
	switch msg.Kind {
	case tuple.KindInstanceMessage, tuple.KindWorkerMessage:
		t0 := time.Now()
		tp, _, err := tuple.DecodeTuple(msg.Payload)
		if err != nil {
			w.eng.metrics.DecodeErrors.Inc()
			return
		}
		if msg.Kind == tuple.KindWorkerMessage && tp.RootEmitNS > 0 {
			w.eng.metrics.MulticastLatency.Observe(time.Now().UnixNano() - tp.RootEmitNS)
		}
		for _, dst := range msg.DstIDs {
			w.enqueueLocal(dst, tp)
		}
		w.eng.obs.Tracer.Record(tp.TraceID, obs.StageDispatch, w.id, t0, time.Since(t0))

	case tuple.KindMulticastMessage:
		gs, ok := w.groups[msg.Group]
		if !ok {
			w.eng.metrics.DecodeErrors.Inc()
			return
		}
		// Forward first: relaying before local processing keeps the
		// pipeline moving down the tree.
		t0 := time.Now()
		relayed := false
		if tr, ok := gs.tree(msg.TreeVersion); ok {
			if children := tr.Children(w.id); len(children) > 0 {
				raw := make([]byte, len(payload))
				copy(raw, payload)
				w.enqueueSend(sendJob{kind: jobRelay, raw: raw, dstWorkers: children})
				relayed = true
			}
		} else {
			w.eng.metrics.RouteErrors.Inc()
		}
		tp, _, err := tuple.DecodeTuple(msg.Payload)
		if err != nil {
			w.eng.metrics.DecodeErrors.Inc()
			return
		}
		if relayed {
			// The trace ID is only known after decode; the hop covers the
			// relay copy + enqueue that preceded it.
			w.eng.obs.Tracer.Record(tp.TraceID, obs.StageTreeHop, w.id, t0, time.Since(t0))
		}
		if tp.RootEmitNS > 0 {
			w.eng.metrics.MulticastLatency.Observe(time.Now().UnixNano() - tp.RootEmitNS)
		}
		t1 := time.Now()
		for _, dst := range w.eng.groupLocalTasks(msg.Group, w.id) {
			w.enqueueLocal(dst, tp)
		}
		w.eng.obs.Tracer.Record(tp.TraceID, obs.StageDispatch, w.id, t1, time.Since(t1))

	case tuple.KindControl:
		cm, _, err := tuple.DecodeControlMessage(msg.Payload)
		if err != nil {
			w.eng.metrics.DecodeErrors.Inc()
			return
		}
		w.handleControl(from, cm)

	default:
		w.eng.metrics.DecodeErrors.Inc()
	}
}

// handleControl processes the dynamic-switching control plane (§3.4).
func (w *worker) handleControl(from transport.WorkerID, cm *tuple.ControlMessage) {
	switch cm.Type {
	case tuple.CtrlTree:
		gs, ok := w.groups[cm.Group]
		if !ok {
			w.eng.metrics.DecodeErrors.Inc()
			return
		}
		tr, err := multicast.FromFlat(cm.Nodes, cm.Parents)
		if err != nil {
			w.eng.metrics.DecodeErrors.Inc()
			return
		}
		gs.install(cm.Version, tr)
		gs.activate(cm.Version)
		// ACK back to the source worker.
		ack := tuple.ControlMessage{Type: tuple.CtrlAck, Group: cm.Group, Version: cm.Version, Node: w.id}
		raw := tuple.AppendWorkerMessage(nil, &tuple.WorkerMessage{
			Kind:    tuple.KindControl,
			Payload: tuple.AppendControlMessage(nil, &ack),
		})
		w.enqueueSend(sendJob{kind: jobControl, dstWorker: from, raw: raw})

	case tuple.CtrlAck:
		if mgr := w.eng.managers[cm.Group]; mgr != nil {
			mgr.handleAck(cm.Version, cm.Node)
		}

	case tuple.CtrlHeartbeat:
		// Liveness was recorded in dispatch; the beacon carries no payload.

	default:
		// CtrlStatus and CtrlReconnect are informational in this
		// implementation (CtrlTree carries the full structure).
	}
}
