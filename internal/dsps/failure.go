package dsps

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"whale/internal/multicast"
	"whale/internal/obs"
	"whale/internal/tuple"
)

// Failure detection and self-healing recovery. A crashed worker inside a
// multicast relay tree silently orphans its whole subtree (every interior
// node is a relay point), so the engine runs a lightweight heartbeat-based
// detector and repairs affected trees through the same versioned CtrlTree
// distribution the §3.4 dynamic-switching path uses.
//
// Protocol: every worker beacons a CtrlHeartbeat to the monitor (worker 0)
// each HeartbeatInterval; any inbound message doubles as liveness evidence.
// The monitor sweeps at the same period and drives a per-worker
// alive → suspect → dead state machine on observed silence (SuspectAfter,
// ConfirmAfter). Suspicion is reversible (worker-recover); confirmation is
// terminal — the worker is fenced out of sends and ack accounting, and
// every multicast group re-parents the orphaned subtree around it.

// Worker liveness states.
const (
	wsAlive int32 = iota
	wsSuspect
	wsDead
)

// failureDetector is the monitor-side liveness state. lastSeen is written
// from the monitor worker's dispatch path (any message counts), the state
// machine only advances on the sweep goroutine.
type failureDetector struct {
	eng      *Engine
	monitor  int32
	lastSeen []atomic.Int64
	state    []atomic.Int32
	// degraded is the overload path's advisory marks: a subscriber paused
	// past DegradedAfter is degraded — slow, not dead. It never feeds the
	// fencing state machine above.
	degraded []atomic.Bool
}

func newFailureDetector(e *Engine) *failureDetector {
	fd := &failureDetector{
		eng:      e,
		monitor:  0,
		lastSeen: make([]atomic.Int64, e.cfg.MaxWorkers),
		state:    make([]atomic.Int32, e.cfg.MaxWorkers),
		degraded: make([]atomic.Bool, e.cfg.MaxWorkers),
	}
	now := time.Now().UnixNano()
	for i := range fd.lastSeen {
		fd.lastSeen[i].Store(now)
	}
	return fd
}

// observe records liveness evidence from a worker. Called from the monitor
// worker's dispatch path for every inbound message.
func (fd *failureDetector) observe(from int32) {
	if from < 0 || int(from) >= len(fd.lastSeen) {
		return
	}
	fd.lastSeen[from].Store(time.Now().UnixNano())
}

// markDegraded flags a worker as degraded (slow-consumer overload path).
func (fd *failureDetector) markDegraded(w int32) {
	if w >= 0 && int(w) < len(fd.degraded) {
		fd.degraded[w].Store(true)
	}
}

// clearDegraded withdraws the degraded mark once the worker's link reopens.
func (fd *failureDetector) clearDegraded(w int32) {
	if w >= 0 && int(w) < len(fd.degraded) {
		fd.degraded[w].Store(false)
	}
}

// sweep advances the alive → suspect → dead state machine once.
func (fd *failureDetector) sweep(now time.Time) {
	nowNS := now.UnixNano()
	suspectNS := fd.eng.cfg.SuspectAfter.Nanoseconds()
	confirmNS := fd.eng.cfg.ConfirmAfter.Nanoseconds()
	for w := range fd.state {
		if int32(w) == fd.monitor || !fd.eng.joinedWorker(int32(w)) {
			// Dormant and gracefully-departed workers do not beacon; their
			// silence is membership state, not a failure.
			continue
		}
		silence := nowNS - fd.lastSeen[w].Load()
		switch fd.state[w].Load() {
		case wsAlive:
			if silence > suspectNS {
				fd.state[w].Store(wsSuspect)
				fd.eng.obs.Events.Append(obs.Event{
					Kind: obs.EventWorkerSuspect, Worker: int32(w),
					Detail: fmt.Sprintf("silent for %v", time.Duration(silence)),
				})
			}
		case wsSuspect:
			switch {
			case silence <= suspectNS:
				fd.state[w].Store(wsAlive)
				fd.eng.obs.Events.Append(obs.Event{
					Kind: obs.EventWorkerRecover, Worker: int32(w),
					Detail: "traffic resumed before confirmation",
				})
			case silence > confirmNS:
				fd.state[w].Store(wsDead)
				fd.eng.obs.Events.Append(obs.Event{
					Kind: obs.EventWorkerDead, Worker: int32(w),
					Detail: fmt.Sprintf("silent for %v; repairing trees", time.Duration(silence)),
				})
				fd.eng.onWorkerDead(int32(w))
			}
		}
	}
}

// heartbeatLoop beacons one worker's liveness to the monitor. Heartbeats
// are fire-and-forget and bypass the transfer queue: a blocked send thread
// must not look like a dead worker. stop is the per-join stop channel — a
// graceful leave closes it without touching engine shutdown.
func (e *Engine) heartbeatLoop(w *worker, stop chan struct{}) {
	defer e.auxWG.Done()
	ticker := time.NewTicker(e.cfg.HeartbeatInterval)
	defer ticker.Stop()
	// Heartbeats are sent synchronously, so one loop-owned encoder serves
	// every beacon without a per-tick allocation.
	enc := tuple.NewEncoder()
	var seq int32
	for {
		select {
		case <-e.stopTick:
			return
		case <-stop:
			return
		case <-ticker.C:
			seq++
			cm := tuple.ControlMessage{Type: tuple.CtrlHeartbeat, Node: w.id, Version: seq}
			// A failed heartbeat send is itself the failure signal.
			_ = w.tr.Send(e.detector.monitor, enc.EncodeControlEnvelope(&cm))
		}
	}
}

// detectorLoop runs the monitor's periodic silence sweep.
func (e *Engine) detectorLoop() {
	defer e.auxWG.Done()
	ticker := time.NewTicker(e.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopTick:
			return
		case <-ticker.C:
			e.detector.sweep(time.Now())
		}
	}
}

// onWorkerDead fences a confirmed-dead worker and repairs every multicast
// group it belonged to. Runs on the detector goroutine.
func (e *Engine) onWorkerDead(dead int32) {
	e.dead[dead].Store(true)
	e.metrics.WorkerFailures.Inc()
	// Repair groups in id order so multi-group recovery is deterministic.
	gids := make([]int32, 0, len(e.managers))
	for gid := range e.managers {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		e.managers[gid].handleWorkerFailure(dead)
	}
	// Checkpointing: the in-flight epoch can no longer complete; restore
	// begins once the repairs just distributed have activated.
	if e.ckpt != nil {
		e.ckpt.onWorkerDead(dead)
	}
}

// workerDead reports whether w has been confirmed dead. Hot path: bounds
// compares plus one atomic load. Out-of-range ids — notably retiredWorker
// tombstones left by a shrink rescale — read as dead, so stale routing
// state that still names a retired task suppresses the send instead of
// faulting.
func (e *Engine) workerDead(w int32) bool {
	return w < 0 || int(w) >= len(e.dead) || e.dead[w].Load()
}

// DeadWorkers returns the ids of workers confirmed dead by the failure
// detector, in ascending order.
func (e *Engine) DeadWorkers() []int32 {
	var out []int32
	for w := range e.dead {
		if e.dead[w].Load() {
			out = append(out, int32(w))
		}
	}
	return out
}

// ActiveTree returns a copy of group gid's currently active tree, as seen
// by the group's source worker, together with its version.
func (e *Engine) ActiveTree(gid int32) (*multicast.Tree, int32, bool) {
	if gid < 0 || int(gid) >= len(e.groupDescs) {
		return nil, 0, false
	}
	gs, ok := e.workers[e.groupDescs[gid].key.worker].groups[gid]
	if !ok {
		return nil, 0, false
	}
	v := gs.activeVersion()
	tr, ok := gs.tree(v)
	if !ok {
		return nil, 0, false
	}
	return tr.Clone(), v, true
}

// TasksOf returns operator op's live task ids under the current placement.
func (e *Engine) TasksOf(op string) []int32 {
	return append([]int32(nil), e.tv().assign.TasksOf[op]...)
}

// WorkerOfTask returns the worker hosting task tid under the current
// placement (retiredWorker for tasks retired by a shrink rescale).
func (e *Engine) WorkerOfTask(tid int32) int32 { return e.tv().assign.WorkerOf[tid] }

// handleWorkerFailure repairs this group's tree after a confirmed worker
// failure: the dead worker leaves the membership, any in-flight switch is
// cancelled (a dead member can never ack it), and a repaired tree —
// RemoveNode re-parents the orphaned subtree under surviving nodes with
// spare out-degree — is distributed to the survivors as a new version
// through the ordinary CtrlTree/ack activation path.
func (m *mcManager) handleWorkerFailure(dead int32) {
	m.mu.Lock()
	found := false
	for i, w := range m.members {
		if w == dead {
			m.members = append(m.members[:i:i], m.members[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		m.mu.Unlock()
		return
	}
	m.pendingVersion = 0
	m.pendingTree = nil
	// Clear the ack ledger too: a cancelled switch that leaves stale
	// pendingAcks behind would mis-account a later switch's acks if the
	// same version number pairing ever recurs after a leave/rejoin cycle.
	m.pendingAcks = nil
	dstar := m.curDstar
	survivors := append([]int32(nil), m.members...)
	m.mu.Unlock()

	gs := m.w.groups[m.desc.id]
	cur, ok := gs.tree(gs.activeVersion())
	if !ok || !cur.Contains(dead) {
		return
	}
	next := cur.Clone()
	if err := next.RemoveNode(dead, dstar); err != nil {
		return // removing the source: the group died with its worker
	}

	m.mu.Lock()
	version := m.nextVersion
	m.nextVersion++
	if len(survivors) > 0 {
		m.pendingVersion = version
		m.pendingTree = next
		m.pendingAcks = make(map[int32]bool, len(survivors))
		for _, w := range survivors {
			m.pendingAcks[w] = false
		}
		m.switchStart = time.Now()
	}
	m.mu.Unlock()

	m.eng.obs.Events.Append(obs.Event{
		Kind: obs.EventTreeRebuild, Group: m.desc.id, Worker: m.w.id,
		Version: version, NewDstar: dstar,
		Detail: fmt.Sprintf("repair: worker %d removed, version %d to %d survivors", dead, version, len(survivors)),
	})
	if len(survivors) == 0 {
		// Nothing left to coordinate with: activate locally.
		gs.install(version, next)
		gs.activate(version)
		return
	}
	nodes, parents := next.Flatten()
	cm := tuple.ControlMessage{
		Type: tuple.CtrlTree, Direction: tuple.SwitchScaleDown,
		Group: m.desc.id, Version: version,
		Nodes: nodes, Parents: parents,
	}
	raw := tuple.AppendWorkerMessage(nil, &tuple.WorkerMessage{
		Kind:    tuple.KindControl,
		Payload: tuple.AppendControlMessage(nil, &cm),
	})
	for _, dst := range survivors {
		m.w.enqueueSend(sendJob{kind: jobControl, dstWorker: dst, raw: raw})
	}
}
