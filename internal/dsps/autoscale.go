package dsps

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"whale/internal/metrics"
	"whale/internal/obs"
	"whale/internal/queueing"
)

// Autoscaling closes the loop between the M/D/1 performance model and the
// rescale plane (DESIGN §15): a controller on the monitor worker
// periodically folds the per-operator obs counters and the attrib
// bottleneck report into load estimates, sizes each operator with the
// queueing model, and issues Engine.Rescale through the armed-plan
// machinery. The controller never touches the data hot path — it reads the
// same merged per-executor counters the op.<id>.* registry series serve,
// on its own goroutine, at Interval granularity; with Interval zero the
// engine carries no autoscale state at all.

// AutoscaleConfig parameterises the controller. The zero value disables
// autoscaling entirely.
type AutoscaleConfig struct {
	// Interval is the controller period; 0 disables autoscaling.
	// Autoscaling requires checkpointing (rescale rides aligned cuts).
	Interval time.Duration
	// RhoHigh is the per-instance utilization above which an operator is
	// a scale-up candidate (default 0.8).
	RhoHigh float64
	// RhoLow is the utilization below which an operator is a scale-down
	// candidate (default 0.3).
	RhoLow float64
	// Cooldown is the minimum time between actions on one operator
	// (default 10×Interval). It also seeds the backoff applied after an
	// aborted or rejected plan, which doubles per consecutive failure.
	Cooldown time.Duration
	// MaxStep bounds how far one decision may move an operator's
	// parallelism (default 4).
	MaxStep int
	// Confirm is how many consecutive out-of-band observations must
	// accumulate before the controller acts (default 2) — one noisy
	// interval never triggers a rescale.
	Confirm int
	// MinParallelism / MaxParallelism clamp every operator's target
	// (defaults 1 / NumSlots). Fields-grouped operators are additionally
	// clamped to NumSlots regardless of MaxParallelism: slot routing
	// starves task indices beyond the slot-space width.
	MinParallelism int
	MaxParallelism int
}

func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Interval <= 0 {
		return c
	}
	if c.RhoHigh <= 0 || c.RhoHigh >= 1 {
		c.RhoHigh = 0.8
	}
	if c.RhoLow <= 0 || c.RhoLow >= c.RhoHigh {
		c.RhoLow = 0.3
		if c.RhoLow >= c.RhoHigh {
			c.RhoLow = c.RhoHigh / 2
		}
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * c.Interval
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 4
	}
	if c.Confirm <= 0 {
		c.Confirm = 2
	}
	if c.MinParallelism <= 0 {
		c.MinParallelism = 1
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = NumSlots
	}
	if c.MaxParallelism < c.MinParallelism {
		c.MaxParallelism = c.MinParallelism
	}
	return c
}

// rhoTarget is the band point the model sizes toward: the middle of the
// band, so a fresh action lands with slack on both sides and does not
// immediately re-trigger in either direction.
func (c AutoscaleConfig) rhoTarget() float64 { return (c.RhoHigh + c.RhoLow) / 2 }

// Autoscale decision actions.
const (
	// AutoscaleHold: no action this tick (in band, streak still building,
	// clamped, cooling down, or backing off — see Reason).
	AutoscaleHold = "hold"
	// AutoscaleUp / AutoscaleDown: a rescale was issued.
	AutoscaleUp   = "scale-up"
	AutoscaleDown = "scale-down"
	// AutoscaleRejected: the controller decided to act but the rescale
	// plane refused (plan already in flight, recovery in progress, ...);
	// the operator backs off before retrying.
	AutoscaleRejected = "rejected"
)

// AutoscaleDecision is one controller evaluation of one operator, with the
// model inputs that drove it. The last N decisions are served at
// /debug/autoscale and returned by Engine.AutoscaleReport.
type AutoscaleDecision struct {
	TimeNS   int64  `json:"time_ns"`
	Operator string `json:"operator"`
	Action   string `json:"action"`
	Reason   string `json:"reason"`
	From     int    `json:"from"`
	To       int    `json:"to"`
	// Lambda is the operator's measured arrival rate over the interval
	// (tuples/s, all instances); Te the mean per-tuple execute seconds;
	// Rho the resulting per-instance utilization λ·te/par.
	Lambda float64 `json:"lambda"`
	Te     float64 `json:"te"`
	Rho    float64 `json:"rho"`
	// QueueLen is the operator's queued-tuple depth at evaluation time;
	// PredictedQueue the M/D/1 mean queue length at the measured load.
	QueueLen       int     `json:"queue_len"`
	PredictedQueue float64 `json:"predicted_queue"`
	// Bottleneck names the attrib report's top-ranked component at
	// decision time — the cluster-wide context the estimate was made in.
	Bottleneck string `json:"bottleneck,omitempty"`
}

// opObservation is one tick's measurement of one operator.
type opObservation struct {
	NowNS    int64
	Lambda   float64 // arrival rate over the interval, tuples/s
	Te       float64 // mean execute seconds per tuple (0: no samples)
	Par      int     // current parallelism
	MaxPar   int     // effective upper clamp (NumSlots when fields-grouped)
	QueueLen int
}

// opScaleState is the controller's per-operator hysteresis memory.
type opScaleState struct {
	highStreak   int
	lowStreak    int
	lastActionNS int64
	// backoff state after an aborted or rejected plan: no action for the
	// operator until backoffUntilNS; backoff doubles per consecutive
	// failure (capped) and resets when an action is accepted again.
	backoff        time.Duration
	backoffUntilNS int64
	lastTe         float64 // remembered te so idle intervals can size down
}

// noteFailure applies (and escalates) the post-abort backoff.
func (s *opScaleState) noteFailure(nowNS int64, cooldown time.Duration) {
	if s.backoff < cooldown {
		s.backoff = cooldown
	} else {
		s.backoff *= 2
		if max := 8 * cooldown; s.backoff > max {
			s.backoff = max
		}
	}
	s.backoffUntilNS = nowNS + s.backoff.Nanoseconds()
	s.highStreak, s.lowStreak = 0, 0
}

// decide runs one controller evaluation: band classification with
// consecutive-observation confirmation, M/D/1 target sizing, the
// MaxStep/min/max/slot clamps, and cooldown/backoff suppression. Pure over
// (observation, state, config) — no engine access — so the decision table
// is unit-testable; it mutates only the hysteresis state.
func (s *opScaleState) decide(op string, o opObservation, cfg AutoscaleConfig) AutoscaleDecision {
	d := AutoscaleDecision{
		TimeNS: o.NowNS, Operator: op, Action: AutoscaleHold,
		From: o.Par, To: o.Par,
		Lambda: o.Lambda, Te: o.Te, QueueLen: o.QueueLen,
	}
	te := o.Te
	if te <= 0 {
		// No execute samples this interval (idle operator): size with the
		// last known service time so sustained idleness still scales down.
		te = s.lastTe
	}
	if te <= 0 {
		d.Reason = "no service-time sample yet"
		s.highStreak, s.lowStreak = 0, 0
		return d
	}
	s.lastTe = te
	d.Te = te
	d.Rho = queueing.UtilizationN(o.Lambda, te, o.Par)
	d.PredictedQueue = queueing.QueueLengthN(o.Lambda, te, o.Par)
	switch {
	case d.Rho > cfg.RhoHigh:
		s.highStreak++
		s.lowStreak = 0
	case d.Rho < cfg.RhoLow:
		s.lowStreak++
		s.highStreak = 0
	default:
		s.highStreak, s.lowStreak = 0, 0
		d.Reason = fmt.Sprintf("rho %.2f within [%.2f, %.2f]", d.Rho, cfg.RhoLow, cfg.RhoHigh)
		return d
	}
	if s.highStreak > 0 && s.highStreak < cfg.Confirm {
		d.Reason = fmt.Sprintf("rho %.2f > %.2f, confirmation %d/%d", d.Rho, cfg.RhoHigh, s.highStreak, cfg.Confirm)
		return d
	}
	if s.lowStreak > 0 && s.lowStreak < cfg.Confirm {
		d.Reason = fmt.Sprintf("rho %.2f < %.2f, confirmation %d/%d", d.Rho, cfg.RhoLow, s.lowStreak, cfg.Confirm)
		return d
	}

	// Confirmed out of band: size to the middle of the band and clamp.
	target := queueing.InstancesForRho(o.Lambda, te, cfg.rhoTarget())
	if s.highStreak >= cfg.Confirm && target <= o.Par {
		// Saturated measurement (λ capped at service capacity) can size at
		// or below the current count; overload still must add capacity.
		target = o.Par + 1
	}
	if s.lowStreak >= cfg.Confirm && target >= o.Par {
		target = o.Par - 1
	}
	if target > o.Par+cfg.MaxStep {
		target = o.Par + cfg.MaxStep
	}
	if target < o.Par-cfg.MaxStep {
		target = o.Par - cfg.MaxStep
	}
	maxPar := cfg.MaxParallelism
	if o.MaxPar > 0 && o.MaxPar < maxPar {
		maxPar = o.MaxPar
	}
	if target > maxPar {
		target = maxPar
	}
	if target < cfg.MinParallelism {
		target = cfg.MinParallelism
	}
	if target == o.Par {
		d.Reason = fmt.Sprintf("rho %.2f out of band but target clamped at %d", d.Rho, o.Par)
		return d
	}
	if o.NowNS < s.backoffUntilNS {
		d.Reason = fmt.Sprintf("suppressed: backing off %v after a failed plan", s.backoff)
		return d
	}
	if s.lastActionNS != 0 && o.NowNS-s.lastActionNS < cfg.Cooldown.Nanoseconds() {
		d.Reason = "suppressed: cooldown since last action"
		return d
	}
	d.To = target
	if target > o.Par {
		d.Action = AutoscaleUp
		d.Reason = fmt.Sprintf("rho %.2f > %.2f for %d intervals", d.Rho, cfg.RhoHigh, s.highStreak)
	} else {
		d.Action = AutoscaleDown
		d.Reason = fmt.Sprintf("rho %.2f < %.2f for %d intervals", d.Rho, cfg.RhoLow, s.lowStreak)
	}
	return d
}

// autoscaleRingCap bounds the retained decision log (/debug/autoscale).
const autoscaleRingCap = 128

// autoscaler is the controller instance hanging off the engine.
type autoscaler struct {
	eng *Engine
	cfg AutoscaleConfig

	// Event subscription: the controller watches the reconfiguration log
	// for the fate of the plan it issued (committed vs aborted) to drive
	// backoff. Subscription channels drop when full, never block Append.
	evCh     <-chan obs.Event
	evCancel func()

	// Tick-local measurement memory (controller goroutine only).
	states    map[string]*opScaleState
	lastExec  map[string]int64
	lastSumNS map[string]int64
	lastNS    int64
	pendingOp string // operator of the plan this controller has in flight

	evals      metrics.Counter
	scaleUps   metrics.Counter
	scaleDowns metrics.Counter
	holds      metrics.Counter
	rejected   metrics.Counter
	aborts     metrics.Counter

	mu   sync.Mutex //whale:lockrank 17
	ring []AutoscaleDecision
}

func newAutoscaler(e *Engine) *autoscaler {
	a := &autoscaler{
		eng:       e,
		cfg:       e.cfg.Autoscale,
		states:    map[string]*opScaleState{},
		lastExec:  map[string]int64{},
		lastSumNS: map[string]int64{},
		lastNS:    time.Now().UnixNano(),
	}
	a.evCh, a.evCancel = e.obs.Events.Subscribe(256)
	return a
}

// scalableOps lists the operators the controller manages: every bolt that
// is not the internal acker, in topology order (deterministic iteration).
func (a *autoscaler) scalableOps() []string {
	var out []string
	for _, id := range a.eng.topo.Order {
		if id == ackerOperatorID || a.eng.topo.Operators[id].IsSpout {
			continue
		}
		out = append(out, id)
	}
	return out
}

func (a *autoscaler) run() {
	defer a.eng.auxWG.Done()
	defer a.evCancel()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.eng.stopTick:
			return
		case <-t.C:
			a.tick(time.Now().UnixNano())
		}
	}
}

// drainEvents folds rescale outcomes observed since the last tick into the
// backoff state: an abort of our in-flight plan escalates the operator's
// backoff; a commit clears it.
func (a *autoscaler) drainEvents(nowNS int64) {
	for {
		select {
		case ev := <-a.evCh:
			if a.pendingOp == "" {
				continue
			}
			switch ev.Kind {
			case obs.EventRescaleAborted:
				st := a.state(a.pendingOp)
				st.noteFailure(nowNS, a.cfg.Cooldown)
				a.aborts.Inc()
				a.pendingOp = ""
			case obs.EventRescaleCommitted:
				a.state(a.pendingOp).backoff = 0
				a.pendingOp = ""
			}
		default:
			return
		}
	}
}

func (a *autoscaler) state(op string) *opScaleState {
	st := a.states[op]
	if st == nil {
		st = &opScaleState{}
		a.states[op] = st
	}
	return st
}

// observe measures one operator over the window since the last tick.
func (a *autoscaler) observe(op string, nowNS int64) opObservation {
	o := opObservation{NowNS: nowNS}
	stats := mergedOpStats(a.eng.opShares(op))
	winSec := float64(nowNS-a.lastNS) / 1e9
	dExec := stats.Executed - a.lastExec[op]
	dSum := stats.ExecLatency.Sum - a.lastSumNS[op]
	a.lastExec[op] = stats.Executed
	a.lastSumNS[op] = stats.ExecLatency.Sum
	if winSec > 0 && dExec >= 0 {
		o.Lambda = float64(dExec) / winSec
	}
	if dExec > 0 && dSum > 0 {
		o.Te = float64(dSum) / float64(dExec) / 1e9
	}
	tv := a.eng.tv()
	o.Par = len(tv.assign.TasksOf[op])
	if a.eng.topo.fieldsGrouped(op) {
		o.MaxPar = NumSlots
	}
	o.QueueLen = a.eng.opQueueLen(op)
	return o
}

// tick runs one controller round: fold plan outcomes, measure every
// scalable operator, decide, and actuate at most one rescale (the plane
// holds one plan at a time; the next tick re-evaluates the rest).
func (a *autoscaler) tick(nowNS int64) {
	a.drainEvents(nowNS)
	if a.pendingOp != "" && !a.eng.ckpt.rescalePending() {
		// The plan resolved but we missed the event (subscriber buffers drop
		// under pressure rather than stall Append). Read it as a commit —
		// backoff is applied only on an observed abort.
		a.pendingOp = ""
	}
	bn := ""
	if top := a.eng.BottleneckReport().Top(); top.Component != "" {
		bn = fmt.Sprintf("%s (%s)", top.Component, top.Class)
	}
	// One plan in flight at a time: while ours is still pending on its
	// aligned cut, every actionable decision this tick converts to a hold.
	acted := a.pendingOp != ""
	for _, op := range a.scalableOps() {
		o := a.observe(op, nowNS)
		if o.Par == 0 {
			continue
		}
		st := a.state(op)
		d := st.decide(op, o, a.cfg)
		d.Bottleneck = bn
		a.evals.Inc()
		if d.Action == AutoscaleHold || acted {
			if d.Action != AutoscaleHold {
				// The single rescale slot is spoken for (a plan is still in
				// flight, or another operator acted this tick); re-evaluate
				// once it resolves.
				d.Action, d.To = AutoscaleHold, d.From
				d.Reason = "suppressed: a rescale plan is already in flight"
				st.highStreak, st.lowStreak = 0, 0
			}
			a.holds.Inc()
			a.record(d)
			continue
		}
		var on []int32
		if d.To > d.From {
			on = a.placement(op, d.To-d.From)
		}
		if err := a.eng.Rescale(op, d.To, on...); err != nil {
			st.noteFailure(nowNS, a.cfg.Cooldown)
			d.Action = AutoscaleRejected
			d.Reason = err.Error()
			a.rejected.Inc()
			a.record(d)
			a.appendEvent(d)
			continue
		}
		st.lastActionNS = nowNS
		st.highStreak, st.lowStreak = 0, 0
		a.pendingOp = op
		acted = true
		if d.Action == AutoscaleUp {
			a.scaleUps.Inc()
		} else {
			a.scaleDowns.Inc()
		}
		a.record(d)
		a.appendEvent(d)
	}
	a.lastNS = nowNS
}

// placement picks hosts for the tasks a scale-up adds, preferring
// joined-but-idle workers: fewest tasks of the rescaled operator first
// (spread the hot operator), then fewest tasks overall (a freshly joined
// worker hosts none and sorts to the front), ties by id for determinism.
func (a *autoscaler) placement(op string, n int) []int32 {
	e := a.eng
	assign := e.tv().assign
	opOn := map[int32]int{}
	for _, tid := range assign.TasksOf[op] {
		opOn[assign.WorkerOf[tid]]++
	}
	type cand struct {
		w          int32
		opTasks    int
		totalTasks int
	}
	var cands []cand
	for w := int32(0); int(w) < e.cfg.MaxWorkers; w++ {
		if e.joinedWorker(w) && !e.workerDead(w) {
			cands = append(cands, cand{w: w, opTasks: opOn[w], totalTasks: len(assign.LocalTasks(w))})
		}
	}
	if len(cands) == 0 {
		return nil // let Rescale's default placement report the error
	}
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		sort.Slice(cands, func(x, y int) bool {
			if cands[x].opTasks != cands[y].opTasks {
				return cands[x].opTasks < cands[y].opTasks
			}
			if cands[x].totalTasks != cands[y].totalTasks {
				return cands[x].totalTasks < cands[y].totalTasks
			}
			return cands[x].w < cands[y].w
		})
		out = append(out, cands[0].w)
		cands[0].opTasks++
		cands[0].totalTasks++
	}
	return out
}

// record appends d to the bounded decision ring.
func (a *autoscaler) record(d AutoscaleDecision) {
	a.mu.Lock()
	if len(a.ring) == autoscaleRingCap {
		copy(a.ring, a.ring[1:])
		a.ring = a.ring[:autoscaleRingCap-1]
	}
	a.ring = append(a.ring, d)
	a.mu.Unlock()
}

// appendEvent writes an acted-on (or rejected) decision into the
// reconfiguration event log with its model inputs.
func (a *autoscaler) appendEvent(d AutoscaleDecision) {
	kind := obs.EventAutoscaleRejected
	switch d.Action {
	case AutoscaleUp:
		kind = obs.EventAutoscaleUp
	case AutoscaleDown:
		kind = obs.EventAutoscaleDown
	}
	a.eng.obs.Events.Append(obs.Event{
		Kind: kind, Lambda: d.Lambda, Te: d.Te, QueueLen: d.QueueLen,
		Detail: fmt.Sprintf("%s: %d -> %d (rho %.2f): %s", d.Operator, d.From, d.To, d.Rho, d.Reason),
	})
}

// decisions snapshots the ring, oldest first.
func (a *autoscaler) decisions() []AutoscaleDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AutoscaleDecision(nil), a.ring...)
}

// registerObs publishes the autoscale.* series.
func (a *autoscaler) registerObs() {
	r := a.eng.obs.Reg
	r.CounterFunc("autoscale.evals", a.evals.Value)
	r.CounterFunc("autoscale.scale_ups", a.scaleUps.Value)
	r.CounterFunc("autoscale.scale_downs", a.scaleDowns.Value)
	r.CounterFunc("autoscale.holds", a.holds.Value)
	r.CounterFunc("autoscale.rejected", a.rejected.Value)
	r.CounterFunc("autoscale.plan_aborts", a.aborts.Value)
}

// opQueueLen sums the queued-tuple depth across one operator's executors
// (input channels plus admission overflow).
func (e *Engine) opQueueLen(op string) int {
	n := 0
	for _, w := range e.workers {
		for _, ex := range w.execMap() {
			if ex.ctx.OperatorID == op {
				n += len(ex.in) + ex.overflowLen()
			}
		}
	}
	return n
}

// AutoscaleReport is the controller's introspection document, served at
// /debug/autoscale and returned by Cluster.AutoscaleReport.
type AutoscaleReport struct {
	Enabled bool            `json:"enabled"`
	Config  AutoscaleConfig `json:"config,omitempty"`
	// Decisions are the retained controller evaluations, oldest first
	// (bounded ring of autoscaleRingCap).
	Decisions []AutoscaleDecision `json:"decisions,omitempty"`
}

// AutoscaleReport snapshots the autoscale controller's configuration and
// recent decisions (empty/disabled when Config.Autoscale.Interval is 0).
func (e *Engine) AutoscaleReport() AutoscaleReport {
	if e.scaler == nil {
		return AutoscaleReport{}
	}
	return AutoscaleReport{
		Enabled:   true,
		Config:    e.scaler.cfg,
		Decisions: e.scaler.decisions(),
	}
}
