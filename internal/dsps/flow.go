package dsps

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whale/internal/obs"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// This file implements the credit-based flow-control and overload-control
// subsystem. Every directed data link (sender worker -> destination worker)
// owns a credit window: the sender charges each outbound data message a cost
// in delivery units, and the receiver grants units back as its executors
// drain the corresponding tuples. Grants travel on the existing control
// path as CtrlCredit messages carrying the receiver's *cumulative* drained
// count, so they are idempotent and self-healing under loss, duplication
// and reordering. On top of credits, a waterline state machine classifies
// each link open -> throttled -> paused from queue depth and transport
// pressure, and a pluggable shed policy decides what happens to besteffort
// traffic when a link's queue is full; acked (tracked) tuples always block,
// never shed.

// ShedPolicy selects what a full flow-controlled link does with newly
// arriving best-effort tuples. Tracked (acked) tuples are never shed
// regardless of policy: reliability trees must observe every loss as a
// timeout, not a silent disappearance.
type ShedPolicy int

const (
	// ShedBlock blocks the producer until queue space frees (default).
	ShedBlock ShedPolicy = iota
	// ShedNewest drops the arriving tuple when the link queue is full.
	ShedNewest
	// ShedOldest evicts the oldest queued best-effort tuple to make room;
	// if everything queued is tracked it falls back to blocking.
	ShedOldest
)

func (p ShedPolicy) String() string {
	switch p {
	case ShedNewest:
		return "shed-newest"
	case ShedOldest:
		return "shed-oldest"
	}
	return "block"
}

// Link states for the waterline machine.
const (
	linkStateOpen int32 = iota
	linkStateThrottled
	linkStatePaused
)

func linkStateName(s int32) string {
	switch s {
	case linkStateThrottled:
		return "throttled"
	case linkStatePaused:
		return "paused"
	}
	return "open"
}

const (
	// flowPoll bounds how long a credit-starved sender sleeps between
	// re-checks when no kick arrives (lost kicks are impossible, but grants
	// merged while the sender was deciding to sleep are not).
	flowPoll = 5 * time.Millisecond
	// creditRefreshInterval is the engine-wide cadence at which receivers
	// rebroadcast their cumulative drained counters. Cumulative grants make
	// the rebroadcast idempotent; it exists to heal grants lost in transit.
	creditRefreshInterval = 50 * time.Millisecond
)

// flowItem is one encoded message queued on a flow link.
type flowItem struct {
	raw []byte
	// buf is the pooled buffer backing raw (nil for non-pooled bytes, e.g.
	// relayed inbound payloads). The link owns one reference per queued item
	// and must release it on every exit: sent, suppressed, or shed.
	buf *sendBuf
	// cost is the delivery units the receiver will grant back for this
	// message; sender and receiver compute it by the same rule.
	cost int64
	// tuples is how many user tuples shedding this item loses (accounted in
	// dsps.tuples_shed).
	tuples int64
	// tracked marks messages carrying acked-stream tuples: never shed.
	tracked bool
	// traceID and pushedNS implement the sampled send-queue-wait stall
	// span: both are stamped at push time only when the payload carries a
	// sampled trace (zero otherwise), so untraced traffic pays nothing.
	traceID  int64
	pushedNS int64
}

// flowControl is one worker's half of the credit protocol: the outbound
// per-destination links (sender side) and the inbound per-source grant
// accumulators (receiver side).
type flowControl struct {
	w *worker

	window        int64
	queueCap      int
	policy        ShedPolicy
	high, low     int
	pauseAfter    time.Duration
	degradedAfter time.Duration
	creditTimeout time.Duration
	grantEvery    int64

	draining atomic.Bool

	mu    sync.Mutex //whale:lockrank 20
	links map[int32]*flowLink
	in    map[int32]*inboundCredit
	wg    sync.WaitGroup
}

// inboundCredit accumulates delivery units owed to one upstream sender.
type inboundCredit struct {
	mu          sync.Mutex //whale:lockrank 40
	drained     int64      // cumulative units drained; the value grants carry
	sinceGrant  int64      // units accumulated since the last grant was sent
	rebroadcast int64      // cumulative value carried by the last ticker rebroadcast
}

// flowLink is the sender side of one directed link: a bounded FIFO drained
// by a dedicated goroutine that spends credits before each send. One slow
// destination therefore stalls only its own link; siblings keep draining.
type flowLink struct {
	fc  *flowControl
	dst int32

	mu      sync.Mutex //whale:lockrank 30
	queue   []flowItem
	sent    int64 // cumulative units charged for delivered-to-transport sends
	granted int64 // cumulative units granted back by the receiver
	shed    int64 // tuples shed on this link

	kick  chan struct{} // cap 1: new work or new credit
	space chan struct{} // cap 1: a queue slot freed

	state       atomic.Int32
	busy        atomic.Int32 // 1 while an item is popped but not yet sent
	pausedSince time.Time    // guarded by mu; zero when not paused
	degraded    bool         // guarded by mu

	// Stall accounting (guarded by mu): cumulative sender time blocked on
	// the credit window, sampled FIFO residency of traced items, and
	// residency in the throttled/paused waterline states. stateSince marks
	// entry into the current non-open state (zero while open).
	creditWaitNS int64
	queueWaitNS  int64
	throttledNS  int64
	pausedNS     int64
	stateSince   time.Time
}

// signal makes ch readable without blocking (cap-1 edge-triggered signal).
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

func newFlowControl(w *worker) *flowControl {
	cfg := w.eng.cfg
	fc := &flowControl{
		w:             w,
		window:        int64(cfg.CreditWindow),
		queueCap:      cfg.LinkQueueCap,
		policy:        cfg.ShedPolicy,
		high:          cfg.HighWaterline,
		low:           cfg.LowWaterline,
		pauseAfter:    cfg.PauseAfter,
		degradedAfter: cfg.DegradedAfter,
		creditTimeout: cfg.CreditTimeout,
		links:         map[int32]*flowLink{},
		in:            map[int32]*inboundCredit{},
	}
	fc.grantEvery = fc.window / 8
	if fc.grantEvery < 1 {
		fc.grantEvery = 1
	}
	return fc
}

// linkTo returns the flow link toward dst, creating it (and its sender
// goroutine) on first use.
func (fc *flowControl) linkTo(dst int32) *flowLink {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	l, ok := fc.links[dst]
	if !ok {
		l = &flowLink{
			fc:    fc,
			dst:   dst,
			kick:  make(chan struct{}, 1),
			space: make(chan struct{}, 1),
		}
		fc.links[dst] = l
		fc.wg.Add(1)
		go l.run()
	}
	return l
}

// push enqueues one encoded message toward dst, applying the shed policy
// when the link queue is full. It blocks only under ShedBlock (or for
// tracked items), and always returns promptly once the engine is stopping.
// Time spent blocked on a full queue is accumulated in the worker's
// pushBlockedNS (send-thread-local) so emit-time accounting can exclude
// backpressure stalls.
//
//whale:owns it.buf
func (fc *flowControl) push(dst int32, it flowItem) {
	if fc.w.eng.workerDead(dst) {
		fc.w.eng.metrics.SendsSuppressed.Inc()
		it.buf.release()
		return
	}
	l := fc.linkTo(dst)
	// Sampled stall stamping: only a payload that carries a live trace id
	// pays for the peek and the timestamp (the peek itself is a fixed-
	// offset read, no decode, no allocation).
	if fc.w.eng.obs.Tracer.Enabled() {
		if id := tuple.PeekWorkerMessageTraceID(it.raw); id != 0 {
			it.traceID = id
			it.pushedNS = time.Now().UnixNano()
		}
	}
	var blocked time.Duration
	defer func() {
		if blocked > 0 {
			fc.w.pushBlockedNS += blocked.Nanoseconds()
		}
	}()
	for {
		l.mu.Lock()
		if len(l.queue) < fc.queueCap || fc.draining.Load() {
			l.queue = append(l.queue, it) //whale:transfers it.buf
			l.mu.Unlock()
			signal(l.kick)
			return
		}
		// Queue full: shed or block per policy. Tracked items always block.
		if !it.tracked {
			switch fc.policy {
			case ShedNewest:
				l.shed += it.tuples
				l.mu.Unlock()
				fc.w.eng.metrics.TuplesShed.Add(it.tuples)
				it.buf.release()
				return
			case ShedOldest:
				if i := oldestUntracked(l.queue); i >= 0 {
					evicted := l.queue[i]
					l.queue = append(l.queue[:i], l.queue[i+1:]...)
					l.queue = append(l.queue, it) //whale:transfers it.buf
					l.shed += evicted.tuples
					l.mu.Unlock()
					fc.w.eng.metrics.TuplesShed.Add(evicted.tuples)
					evicted.buf.release()
					signal(l.kick)
					return
				}
				// Everything queued is tracked: fall through to block.
			}
		}
		l.mu.Unlock()
		t0 := time.Now()
		select {
		case <-l.space:
			blocked += time.Since(t0)
		case <-fc.w.done:
			it.buf.release()
			return
		case <-fc.w.eng.stopping:
			// Shutdown: accept over capacity so the drain still flushes it.
			l.mu.Lock()
			l.queue = append(l.queue, it) //whale:transfers it.buf
			l.mu.Unlock()
			signal(l.kick)
			return
		}
	}
}

// oldestUntracked returns the index of the first best-effort item in q, or
// -1 when every queued item is tracked.
func oldestUntracked(q []flowItem) int {
	for i := range q {
		if !q[i].tracked {
			return i
		}
	}
	return -1
}

// run is the link's sender goroutine: pop, await credit, send, observe.
func (l *flowLink) run() {
	defer l.fc.wg.Done()
	for {
		it, ok := l.pop()
		if !ok {
			return
		}
		if it.traceID != 0 && it.pushedNS != 0 {
			// Sampled send-queue-wait stall: residency from push to pop.
			wait := time.Now().UnixNano() - it.pushedNS
			l.mu.Lock()
			l.queueWaitNS += wait
			l.mu.Unlock()
			l.fc.w.eng.obs.Tracer.RecordHop(it.traceID, obs.StallSendQueueWait,
				l.fc.w.id, l.dst, 0, 0, 0, time.Unix(0, it.pushedNS), time.Duration(wait))
		}
		l.awaitCredit(it.cost, it.traceID)
		if l.fc.w.sendTraced(l.dst, it.raw, it.traceID) {
			l.mu.Lock()
			l.sent += it.cost
			l.mu.Unlock()
		}
		// The transport has copied (or dropped) the payload: recycle.
		it.buf.release()
		l.busy.Store(0)
		l.observe()
	}
}

// pop dequeues the next item, blocking until work arrives or the link
// drains empty during shutdown.
func (l *flowLink) pop() (flowItem, bool) {
	for {
		l.mu.Lock()
		if len(l.queue) > 0 {
			it := l.queue[0]
			l.queue[0] = flowItem{}
			l.queue = l.queue[1:]
			l.busy.Store(1)
			l.mu.Unlock()
			signal(l.space)
			return it, true
		}
		l.mu.Unlock()
		if l.fc.draining.Load() {
			return flowItem{}, false
		}
		select {
		case <-l.kick:
		case <-time.After(flowPoll * 10):
			// Poll fallback covers the close() race where draining is set
			// just after the check above but the kick was already consumed.
		}
	}
}

// awaitCredit blocks until the link has window room for cost units, the
// credit timeout elapses (grant loss healing), or the engine stops. It also
// drives the pause/degraded transitions: a pause means one *continuous*
// credit wait exceeded pauseAfter — the receiver is effectively not
// draining, not merely slow.
func (l *flowLink) awaitCredit(cost int64, traceID int64) {
	fc := l.fc
	var t0 time.Time
	defer func() {
		if !t0.IsZero() {
			wait := time.Since(t0)
			fc.w.eng.metrics.CreditWaitNS.Add(wait.Nanoseconds())
			l.mu.Lock()
			l.creditWaitNS += wait.Nanoseconds()
			l.mu.Unlock()
			fc.w.eng.obs.Tracer.RecordHop(traceID, obs.StallCreditWait,
				fc.w.id, l.dst, 0, 0, 0, t0, wait)
		}
	}()
	for {
		if fc.draining.Load() || fc.w.eng.workerDead(l.dst) {
			return
		}
		l.mu.Lock()
		out := l.sent - l.granted
		l.mu.Unlock()
		if out <= 0 || out+cost <= fc.window {
			return
		}
		select {
		case <-fc.w.eng.stopping:
			return
		default:
		}
		now := time.Now()
		if t0.IsZero() {
			t0 = now
			fc.w.eng.metrics.CreditsWaited.Inc()
		}
		l.advancePause(now, now.Sub(t0))
		if now.Sub(t0) >= fc.creditTimeout {
			// The receiver has been silent for a full timeout: assume the
			// grants were lost in transit and forgive the debt, otherwise a
			// lossy control path wedges the link forever. The periodic
			// cumulative rebroadcast re-synchronizes the true value.
			fc.w.eng.metrics.CreditTimeouts.Inc()
			l.mu.Lock()
			l.granted = l.sent
			l.mu.Unlock()
			return
		}
		select {
		case <-l.kick:
		case <-time.After(flowPoll):
		case <-fc.w.done:
			return
		case <-fc.w.eng.stopping:
			return
		}
	}
}

// advancePause updates the pause/degraded state from one continuous credit
// wait of duration starved. Called only from the link goroutine.
func (l *flowLink) advancePause(now time.Time, starved time.Duration) {
	fc := l.fc
	l.mu.Lock()
	if l.pausedSince.IsZero() {
		if starved < fc.pauseAfter {
			l.mu.Unlock()
			return
		}
		l.pausedSince = now
		l.degraded = false
		if l.state.Load() == linkStateThrottled && !l.stateSince.IsZero() {
			l.throttledNS += now.Sub(l.stateSince).Nanoseconds()
		}
		l.stateSince = now
		l.state.Store(linkStatePaused)
		l.mu.Unlock()
		fc.w.eng.metrics.LinkPauses.Inc()
		fc.w.eng.obs.Events.Append(obs.Event{
			Kind: obs.EventLinkPaused, Worker: fc.w.id, Peer: l.dst,
			Detail: "credit-starved past pause threshold",
		})
		return
	}
	if !l.degraded && fc.degradedAfter > 0 && now.Sub(l.pausedSince) >= fc.degradedAfter {
		l.degraded = true
		paused := now.Sub(l.pausedSince)
		l.mu.Unlock()
		fc.w.eng.reportDegraded(fc.w.id, l.dst, paused)
		return
	}
	l.mu.Unlock()
}

// observe runs the waterline state machine after each send: queue depth and
// transport pressure drive open -> throttled; drained-below-low plus
// available credit reopens a throttled or paused link.
func (l *flowLink) observe() {
	fc := l.fc
	l.mu.Lock()
	qlen := len(l.queue)
	out := l.sent - l.granted
	wasDegraded := l.degraded
	paused := !l.pausedSince.IsZero()
	l.mu.Unlock()

	depth := 0
	if fc.queueCap > 0 {
		depth = qlen * 100 / fc.queueCap
	}
	if p := fc.w.tr.Pressure(transport.WorkerID(l.dst)); p > depth {
		depth = p
	}

	switch l.state.Load() {
	case linkStateOpen:
		if depth >= fc.high {
			l.mu.Lock()
			l.stateSince = time.Now()
			l.mu.Unlock()
			l.state.Store(linkStateThrottled)
			fc.w.eng.obs.Events.Append(obs.Event{
				Kind: obs.EventLinkThrottled, Worker: fc.w.id, Peer: l.dst,
				QueueLen: qlen,
			})
		}
	case linkStateThrottled, linkStatePaused:
		if depth <= fc.low && out < fc.window {
			wasPaused := l.state.Load() == linkStatePaused
			l.state.Store(linkStateOpen)
			l.mu.Lock()
			if !l.stateSince.IsZero() {
				resid := time.Since(l.stateSince).Nanoseconds()
				if wasPaused {
					l.pausedNS += resid
				} else {
					l.throttledNS += resid
				}
				l.stateSince = time.Time{}
			}
			l.pausedSince = time.Time{}
			l.degraded = false
			l.mu.Unlock()
			if paused && wasDegraded {
				fc.w.eng.clearDegraded(l.dst)
			}
			fc.w.eng.obs.Events.Append(obs.Event{
				Kind: obs.EventLinkOpen, Worker: fc.w.id, Peer: l.dst,
				QueueLen: qlen,
			})
		}
	}
}

// grant accumulates n delivery units owed to sender src and flushes a
// cumulative grant once enough accumulate. n <= 0 and local sources are
// ignored by the caller (worker.grantData). The charge below is dynamic
// (batched): most calls bank the units and exit; the flush path ships them.
//
//whale:grants
func (fc *flowControl) grant(src int32, n int64) {
	in := fc.inboundFor(src)
	in.mu.Lock()
	in.drained += n //whale:charged multi
	in.sinceGrant += n
	flush := in.sinceGrant >= fc.grantEvery
	var cum int64
	if flush {
		in.sinceGrant = 0
		cum = in.drained
	}
	in.mu.Unlock()
	if flush {
		fc.sendGrant(src, cum)
	}
}

func (fc *flowControl) inboundFor(src int32) *inboundCredit {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	in, ok := fc.in[src]
	if !ok {
		in = &inboundCredit{}
		fc.in[src] = in
	}
	return in
}

// sendGrant ships one cumulative CtrlCredit directly on the transport,
// bypassing the transfer queue and the flow links: grants must flow even
// when every data path is congested, and must never consume credit
// themselves.
//
//whale:grants
func (fc *flowControl) sendGrant(to int32, cumulative int64) {
	w := fc.w
	if w.eng.workerDead(to) {
		return
	}
	cm := tuple.ControlMessage{Type: tuple.CtrlCredit, Node: w.id, Credits: cumulative}
	// Grants are frequent (one per window/8 deliveries per link) and sent
	// synchronously, so a pooled encoder elides the per-grant allocations.
	enc := tuple.AcquireEncoder()
	raw := enc.EncodeControlEnvelope(&cm)
	w.eng.metrics.CreditGrants.Inc()
	// Grant loss is tolerable: the cumulative rebroadcast and the sender's
	// credit timeout both heal it.
	_ = w.tr.Send(transport.WorkerID(to), raw)
	tuple.ReleaseEncoder(enc)
}

// rebroadcast resends every non-zero cumulative drained counter. Called on
// the engine's credit ticker; because grants are cumulative this is
// idempotent and heals any grant lost in transit.
func (fc *flowControl) rebroadcast() {
	fc.mu.Lock()
	type pending struct {
		src int32
		cum int64
	}
	out := make([]pending, 0, len(fc.in))
	for src, in := range fc.in {
		in.mu.Lock()
		// Resend only counters that moved since the last rebroadcast: a
		// steady stream of redundant grants competes with data for a slow
		// receiver's inbound queue and can starve the very link the grants
		// are meant to open. Each new value is still retransmitted once
		// after the inline grant, and a sender that loses both copies heals
		// through its credit timeout.
		if in.drained > 0 && in.drained != in.rebroadcast {
			out = append(out, pending{src: src, cum: in.drained})
			in.sinceGrant = 0
			in.rebroadcast = in.drained
		}
		in.mu.Unlock()
	}
	fc.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].src < out[j].src })
	for _, p := range out {
		fc.sendGrant(p.src, p.cum)
	}
}

// onGrant merges one received cumulative grant into the link toward the
// granting worker. Duplicates and reordering are harmless (max-merge); the
// cumulative value is clamped to what was actually charged so a corrupt or
// replayed grant can never inflate the window.
func (fc *flowControl) onGrant(from int32, cumulative int64) {
	fc.mu.Lock()
	l, ok := fc.links[from]
	fc.mu.Unlock()
	if !ok {
		return
	}
	l.mu.Lock()
	if cumulative > l.sent {
		cumulative = l.sent
	}
	if cumulative > l.granted {
		l.granted = cumulative
	}
	l.mu.Unlock()
	signal(l.kick)
}

// queued reports the total work not yet handed to the transport: queued
// items plus any item popped but still waiting for credit. Drain polls it.
func (fc *flowControl) queued() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	n := 0
	for _, l := range fc.links {
		l.mu.Lock()
		n += len(l.queue)
		l.mu.Unlock()
		n += int(l.busy.Load())
	}
	return n
}

// close flushes and joins every link goroutine. Called after the transfer
// send loops have stopped, so no new pushes arrive; credit waits abort via
// eng.stopping, and pop returns false once the queue empties.
func (fc *flowControl) close() {
	fc.draining.Store(true)
	fc.mu.Lock()
	links := make([]*flowLink, 0, len(fc.links))
	for _, l := range fc.links {
		links = append(links, l)
	}
	fc.mu.Unlock()
	for _, l := range links {
		signal(l.kick)
		signal(l.space)
	}
	fc.wg.Wait()
}

// LinkStat is one flow-controlled link's public snapshot.
type LinkStat struct {
	From, To    int32
	State       string
	Queued      int
	Outstanding int64 // delivery units charged but not yet granted back
	Shed        int64 // tuples shed on this link
	Sent        int64 // delivery units charged to the window so far

	// Stall attribution (cumulative): sender time blocked on the credit
	// window, sampled FIFO residency of traced items, and time spent in
	// the throttled/paused waterline states (including the current stint).
	CreditWaitNS int64
	QueueWaitNS  int64
	ThrottledNS  int64
	PausedNS     int64
}

// LinkStats snapshots every flow-controlled link, ordered by (From, To).
// Empty when flow control is disabled.
func (e *Engine) LinkStats() []LinkStat {
	var out []LinkStat
	for _, w := range e.workers {
		fc := w.fc
		if fc == nil {
			continue
		}
		fc.mu.Lock()
		for dst, l := range fc.links {
			state := l.state.Load()
			l.mu.Lock()
			st := LinkStat{
				From:         w.id,
				To:           dst,
				State:        linkStateName(state),
				Queued:       len(l.queue) + int(l.busy.Load()),
				Outstanding:  l.sent - l.granted,
				Shed:         l.shed,
				Sent:         l.sent,
				CreditWaitNS: l.creditWaitNS,
				QueueWaitNS:  l.queueWaitNS,
				ThrottledNS:  l.throttledNS,
				PausedNS:     l.pausedNS,
			}
			// Charge the current stint so a link wedged in a bad state shows
			// its residency before it ever transitions back.
			if !l.stateSince.IsZero() {
				resid := time.Since(l.stateSince).Nanoseconds()
				if state == linkStatePaused {
					st.PausedNS += resid
				} else if state == linkStateThrottled {
					st.ThrottledNS += resid
				}
			}
			l.mu.Unlock()
			out = append(out, st)
		}
		fc.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// creditTicker periodically rebroadcasts cumulative grants from every
// worker, healing grants lost to faults. Runs only when flow control is on.
func (e *Engine) creditTicker() {
	defer e.auxWG.Done()
	ticker := time.NewTicker(creditRefreshInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopTick:
			return
		case <-ticker.C:
			for _, w := range e.workers {
				if w.fc != nil {
					w.fc.rebroadcast()
				}
			}
		}
	}
}

// reportDegraded surfaces a subscriber paused past the degraded threshold:
// an event for operators, plus an advisory degraded mark on the failure
// detector path (never a fencing decision — the worker is slow, not dead).
func (e *Engine) reportDegraded(from, peer int32, pausedFor time.Duration) {
	if fd := e.detector; fd != nil {
		fd.markDegraded(peer)
	}
	e.obs.Events.Append(obs.Event{
		Kind: obs.EventWorkerDegraded, Worker: peer, Peer: from,
		Detail: "subscriber paused for " + pausedFor.String(),
	})
}

// clearDegraded withdraws the advisory degraded mark once the link reopens.
func (e *Engine) clearDegraded(peer int32) {
	if fd := e.detector; fd != nil {
		fd.clearDegraded(peer)
	}
}

// DegradedWorkers lists workers currently marked degraded by the overload
// path (paused subscriber past DegradedAfter), ascending. Advisory only.
func (e *Engine) DegradedWorkers() []int32 {
	fd := e.detector
	if fd == nil {
		return nil
	}
	var out []int32
	for i := range fd.degraded {
		if fd.degraded[i].Load() {
			out = append(out, int32(i))
		}
	}
	return out
}
