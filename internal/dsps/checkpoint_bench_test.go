package dsps

import (
	"testing"
)

// Consume-path cost of the checkpoint machinery (DESIGN §13). The off row
// is the branch every tuple pays when checkpointing is disabled (one field
// check; must stay 0 allocs/op — TestConsumeZeroAllocWhenCheckpointingDisabled
// gates the alloc half, this row shows the time half). The on row adds the
// fence/alignment field checks of an armed but barrier-free steady state.
// The align-cycle row is one full two-input epoch: two barriers, one parked
// tuple, snapshot, replay.

// benchSink returns a quiesced engine's two-input sink executor with the
// journal detached, so the measured path is consume itself.
func benchSink(b *testing.B) (*Engine, *executor) {
	b.Helper()
	j := newCkptJournal()
	eng, sink := idleCheckpointEngine(b, j)
	sink.bolt.(*countingBolt).j = nil
	return eng, sink
}

func BenchmarkConsumeCkptOff(b *testing.B) {
	eng, sink := benchSink(b)
	defer eng.Stop()
	sink.epochStamp = 0 // the disabled-configuration steady state
	at := dataTuple(sink.upstream[0], 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.consume(at)
	}
}

func BenchmarkConsumeCkptOn(b *testing.B) {
	eng, sink := benchSink(b)
	defer eng.Stop()
	at := dataTuple(sink.upstream[0], 1, sink.epochStamp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at.Data.Epoch = sink.epochStamp
		sink.consume(at)
	}
}

func BenchmarkBarrierAlignCycle(b *testing.B) {
	eng, sink := benchSink(b)
	defer eng.Stop()
	parked := dataTuple(sink.upstream[0], 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sink.epochStamp
		sink.consume(barrier(sink.upstream[0], e))
		parked.Data.Epoch = e + 1
		sink.consume(parked)                       // lands in the alignment buffer
		sink.consume(barrier(sink.upstream[1], e)) // aligns: snapshot + replay
	}
}
