// Package dsps is a from-scratch Storm-like distributed stream processing
// engine: topologies of spouts and bolts with configurable parallelism,
// executors (task goroutines) hosted by workers, and the stream partitioning
// strategies of the paper — shuffle grouping, fields (key) grouping and all
// grouping (one-to-many).
//
// Two communication mechanisms are implemented side by side:
//
//   - the instance-oriented baseline of stock Storm (paper Fig. 9a): each
//     destination instance gets its own serialization and its own message;
//   - Whale's worker-oriented mechanism (paper §3.5, Fig. 9b): one
//     serialization per tuple, one message per destination worker, local
//     fan-out by the worker's dispatcher.
//
// On top of worker-oriented communication the engine can run all-grouped
// streams through a relay multicast tree (sequential, static binomial, or
// Whale's self-adjusting non-blocking tree — paper §3.2-3.4).
package dsps

import (
	"fmt"
	"time"

	"whale/internal/tuple"
)

// GroupingType is a stream partitioning strategy.
type GroupingType int

const (
	// ShuffleGrouping round-robins tuples across destination tasks.
	ShuffleGrouping GroupingType = iota
	// FieldsGrouping routes by hash of one tuple field (key grouping).
	FieldsGrouping
	// AllGrouping sends every tuple to every destination task (the
	// one-to-many strategy this whole system is about).
	AllGrouping
	// GlobalGrouping routes everything to the lowest-id destination task.
	GlobalGrouping
	// LocalOrShuffleGrouping prefers destination tasks on the emitting
	// worker (no serialization, no network) and falls back to shuffle
	// across all tasks when the worker hosts none.
	LocalOrShuffleGrouping
)

func (g GroupingType) String() string {
	switch g {
	case ShuffleGrouping:
		return "shuffle"
	case FieldsGrouping:
		return "fields"
	case AllGrouping:
		return "all"
	case GlobalGrouping:
		return "global"
	case LocalOrShuffleGrouping:
		return "local-or-shuffle"
	}
	return fmt.Sprintf("grouping(%d)", int(g))
}

// Subscription declares that a bolt consumes a stream with a grouping.
type Subscription struct {
	// SrcOperator is the producing operator's id.
	SrcOperator string
	// Stream is the stream name (operators emit to a stream named after
	// themselves by default).
	Stream string
	// Type is the partitioning strategy.
	Type GroupingType
	// FieldIdx is the key field for FieldsGrouping.
	FieldIdx int
}

// OperatorSpec describes one vertex of the topology DAG.
type OperatorSpec struct {
	ID          string
	Parallelism int
	IsSpout     bool
	SpoutFn     func() Spout
	BoltFn      func() Bolt
	Subs        []Subscription
	// TickInterval, when positive, delivers a tick tuple (stream
	// StreamTick) to every instance of the operator at that period —
	// Storm's tick-tuple mechanism, used by windowed operators to fire on
	// time even without traffic.
	TickInterval time.Duration
}

// Topology is a validated application DAG.
type Topology struct {
	Operators map[string]*OperatorSpec
	// Order is a deterministic operator ordering (insertion order).
	Order []string
}

// TopologyBuilder assembles a Topology.
type TopologyBuilder struct {
	ops   map[string]*OperatorSpec
	order []string
	errs  []error
}

// NewTopologyBuilder returns an empty builder.
func NewTopologyBuilder() *TopologyBuilder {
	return &TopologyBuilder{ops: map[string]*OperatorSpec{}}
}

func (b *TopologyBuilder) addOp(spec *OperatorSpec) {
	if spec.ID == "" {
		b.errs = append(b.errs, fmt.Errorf("dsps: empty operator id"))
		return
	}
	if _, dup := b.ops[spec.ID]; dup {
		b.errs = append(b.errs, fmt.Errorf("dsps: duplicate operator %q", spec.ID))
		return
	}
	if spec.Parallelism < 1 {
		b.errs = append(b.errs, fmt.Errorf("dsps: operator %q parallelism %d", spec.ID, spec.Parallelism))
		return
	}
	b.ops[spec.ID] = spec
	b.order = append(b.order, spec.ID)
}

// Spout declares a source operator.
func (b *TopologyBuilder) Spout(id string, factory func() Spout, parallelism int) {
	b.addOp(&OperatorSpec{ID: id, Parallelism: parallelism, IsSpout: true, SpoutFn: factory})
}

// Bolt declares a processing operator and returns a declarer for its input
// subscriptions.
func (b *TopologyBuilder) Bolt(id string, factory func() Bolt, parallelism int) *BoltDeclarer {
	spec := &OperatorSpec{ID: id, Parallelism: parallelism, BoltFn: factory}
	b.addOp(spec)
	return &BoltDeclarer{b: b, spec: spec}
}

// BoltDeclarer attaches groupings to a bolt.
type BoltDeclarer struct {
	b    *TopologyBuilder
	spec *OperatorSpec
}

func (d *BoltDeclarer) sub(src, stream string, typ GroupingType, field int) *BoltDeclarer {
	d.spec.Subs = append(d.spec.Subs, Subscription{SrcOperator: src, Stream: stream, Type: typ, FieldIdx: field})
	return d
}

// Shuffle subscribes to src's default stream with shuffle grouping.
func (d *BoltDeclarer) Shuffle(src string) *BoltDeclarer {
	return d.sub(src, src, ShuffleGrouping, 0)
}

// Fields subscribes with key grouping on field index.
func (d *BoltDeclarer) Fields(src string, field int) *BoltDeclarer {
	return d.sub(src, src, FieldsGrouping, field)
}

// All subscribes with all grouping (one-to-many).
func (d *BoltDeclarer) All(src string) *BoltDeclarer {
	return d.sub(src, src, AllGrouping, 0)
}

// Global subscribes with global grouping.
func (d *BoltDeclarer) Global(src string) *BoltDeclarer {
	return d.sub(src, src, GlobalGrouping, 0)
}

// LocalOrShuffle subscribes with local-or-shuffle grouping: tuples go to a
// destination task on the emitting worker when one exists.
func (d *BoltDeclarer) LocalOrShuffle(src string) *BoltDeclarer {
	return d.sub(src, src, LocalOrShuffleGrouping, 0)
}

// TickEvery asks the engine to deliver a tick tuple (stream StreamTick)
// to every instance of this bolt at the given period.
func (d *BoltDeclarer) TickEvery(interval time.Duration) *BoltDeclarer {
	d.spec.TickInterval = interval
	return d
}

// ShuffleStream subscribes to a named stream of src with shuffle grouping.
func (d *BoltDeclarer) ShuffleStream(src, stream string) *BoltDeclarer {
	return d.sub(src, stream, ShuffleGrouping, 0)
}

// FieldsStream subscribes to a named stream with key grouping.
func (d *BoltDeclarer) FieldsStream(src, stream string, field int) *BoltDeclarer {
	return d.sub(src, stream, FieldsGrouping, field)
}

// AllStream subscribes to a named stream with all grouping.
func (d *BoltDeclarer) AllStream(src, stream string) *BoltDeclarer {
	return d.sub(src, stream, AllGrouping, 0)
}

// Build validates and returns the topology: all subscriptions must
// reference declared operators, spouts take no inputs, every bolt has at
// least one input, and the DAG is acyclic.
func (b *TopologyBuilder) Build() (*Topology, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, id := range b.order {
		op := b.ops[id]
		if op.IsSpout {
			continue
		}
		if len(op.Subs) == 0 {
			return nil, fmt.Errorf("dsps: bolt %q has no inputs", id)
		}
		for _, s := range op.Subs {
			if _, ok := b.ops[s.SrcOperator]; !ok {
				return nil, fmt.Errorf("dsps: bolt %q subscribes to unknown operator %q", id, s.SrcOperator)
			}
			// Fields grouping routes over the fixed NumSlots key space (slot
			// mod parallelism picks the task index), so a wider operator
			// would leave task indices >= NumSlots silently starved.
			if s.Type == FieldsGrouping && op.Parallelism > NumSlots {
				return nil, fmt.Errorf("dsps: fields-grouped bolt %q parallelism %d exceeds the %d-slot key space", id, op.Parallelism, NumSlots)
			}
		}
	}
	// Cycle check by DFS over operator edges.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) error
	visit = func(id string) error {
		color[id] = grey
		for _, other := range b.order {
			for _, s := range b.ops[other].Subs {
				if s.SrcOperator != id {
					continue
				}
				switch color[other] {
				case grey:
					return fmt.Errorf("dsps: cycle through %q and %q", id, other)
				case white:
					if err := visit(other); err != nil {
						return err
					}
				}
			}
		}
		color[id] = black
		return nil
	}
	for _, id := range b.order {
		if color[id] == white {
			if err := visit(id); err != nil {
				return nil, err
			}
		}
	}
	return &Topology{Operators: b.ops, Order: b.order}, nil
}

// Subscribers returns, in deterministic order, the operators subscribed to
// the given operator+stream, with their subscriptions.
func (t *Topology) Subscribers(srcOp, stream string) []struct {
	Op  *OperatorSpec
	Sub Subscription
} {
	var out []struct {
		Op  *OperatorSpec
		Sub Subscription
	}
	for _, id := range t.Order {
		op := t.Operators[id]
		for _, s := range op.Subs {
			if s.SrcOperator == srcOp && s.Stream == stream {
				out = append(out, struct {
					Op  *OperatorSpec
					Sub Subscription
				}{op, s})
			}
		}
	}
	return out
}

// fieldsGrouped reports whether op consumes any stream with fields grouping
// — key-slot routing then bounds its parallelism by NumSlots.
func (t *Topology) fieldsGrouped(op string) bool {
	spec, ok := t.Operators[op]
	if !ok {
		return false
	}
	for _, s := range spec.Subs {
		if s.Type == FieldsGrouping {
			return true
		}
	}
	return false
}

// Spout produces tuples. Open is called once on the executor goroutine
// before the first Next; Next may emit any number of tuples via the
// collector and returns false when the source is exhausted (the engine then
// stops calling it); Close is called on shutdown.
type Spout interface {
	Open(ctx *TaskContext)
	Next(c *Collector) bool
	Close()
}

// Bolt processes tuples. Prepare runs once before the first Execute;
// Execute handles one input tuple and may emit; Cleanup runs on shutdown.
type Bolt interface {
	Prepare(ctx *TaskContext)
	Execute(t *tuple.Tuple, c *Collector)
	Cleanup()
}

// TaskContext describes the executing task instance.
type TaskContext struct {
	// TaskID is the engine-wide unique task id.
	TaskID int32
	// OperatorID names the operator this task instantiates.
	OperatorID string
	// TaskIndex is this task's index within the operator (0-based).
	TaskIndex int
	// Parallelism is the operator's task count.
	Parallelism int
	// Worker hosts this task.
	Worker int32
}
