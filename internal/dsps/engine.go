package dsps

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whale/internal/control"
	"whale/internal/metrics"
	"whale/internal/multicast"
	"whale/internal/obs"
	"whale/internal/queueing"
	"whale/internal/rdma"
	"whale/internal/snapshot"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// CommMode selects the communication mechanism.
type CommMode int

const (
	// InstanceOriented is the stock Storm baseline: one serialization and
	// one message per destination instance (paper Fig. 9a).
	InstanceOriented CommMode = iota
	// WorkerOriented is Whale's mechanism: one serialization per tuple, one
	// message per destination worker (paper §3.5, Fig. 9b).
	WorkerOriented
)

func (m CommMode) String() string {
	if m == WorkerOriented {
		return "worker-oriented"
	}
	return "instance-oriented"
}

// MulticastMode selects how worker-oriented all-grouping fans out across
// workers.
type MulticastMode int

const (
	// MulticastStar sends directly from the source worker to every
	// destination worker (sequential multicast at worker granularity).
	MulticastStar MulticastMode = iota
	// MulticastBinomial relays along a static binomial tree (RDMC).
	MulticastBinomial
	// MulticastNonBlocking relays along Whale's self-adjusting non-blocking
	// tree (d* capped, adapted by the §3.3 controller unless FixedDstar).
	MulticastNonBlocking
)

func (m MulticastMode) String() string {
	switch m {
	case MulticastBinomial:
		return "binomial"
	case MulticastNonBlocking:
		return "non-blocking"
	}
	return "star"
}

// Config parameterises an engine run.
type Config struct {
	// Workers is the worker (process) count; tasks spread round-robin.
	Workers int
	// MaxWorkers caps the cluster's elastic size: workers Workers..
	// MaxWorkers-1 start dormant (registered on the network, hosting no
	// tasks, excluded from failure detection and assignment) and can be
	// admitted later through JoinWorker's CtrlJoin/CtrlWelcome handshake.
	// Defaults to Workers — a fixed-size cluster.
	MaxWorkers int
	// Network provides worker transports. Required.
	Network transport.Network
	// Comm selects instance- vs worker-oriented communication.
	Comm CommMode
	// Multicast selects the all-grouping fan-out (worker-oriented only).
	Multicast MulticastMode
	// TransferQueueCap is Q, the transfer queue capacity (default 1024).
	TransferQueueCap int
	// ExecutorQueueCap bounds executor inbound queues (default 4096).
	ExecutorQueueCap int
	// Control configures the self-adjusting controller.
	Control control.Config
	// MonitorInterval is the controller's Δt (default 10 ms).
	MonitorInterval time.Duration
	// InitialDstar seeds the non-blocking tree's out-degree cap (default 3,
	// the value the paper fixes in Figs. 21-22).
	InitialDstar int
	// FixedDstar disables adaptation, pinning d* at InitialDstar.
	FixedDstar bool

	// AckEnabled turns on the Storm-style reliability plane: tuples emitted
	// with Collector.EmitReliable are tracked end to end by acker tasks.
	AckEnabled bool
	// Ackers is the acker operator's parallelism (default 1).
	Ackers int
	// AckTimeout fails reliability trees that do not complete in time
	// (default 5s).
	AckTimeout time.Duration
	// MaxSpoutPending caps in-flight reliability trees per spout task
	// (0 = unlimited). Requires AckEnabled.
	MaxSpoutPending int

	// HeartbeatInterval enables the failure detector: every worker beacons
	// a CtrlHeartbeat to the monitor (worker 0) at this period, and the
	// monitor sweeps for silence. 0 disables failure detection.
	HeartbeatInterval time.Duration
	// SuspectAfter is the silence after which a worker is suspected
	// (default 5×HeartbeatInterval).
	SuspectAfter time.Duration
	// ConfirmAfter is the silence after which a suspected worker is
	// confirmed dead and tree repair starts (default 3×SuspectAfter).
	// Confirmation is terminal: a falsely-confirmed worker stays fenced.
	ConfirmAfter time.Duration

	// SendRetries bounds per-send retries on transient transport errors
	// (default 3; negative disables retrying).
	SendRetries int
	// SendRetryBase is the first retry backoff, doubled per attempt with
	// jitter (default 200µs).
	SendRetryBase time.Duration

	// CreditWindow is the per-link credit window in delivery units: the
	// maximum units a sender may have outstanding (charged but not granted
	// back) toward one destination worker (default 4096; negative disables
	// flow control entirely). The default is deliberately several times the
	// per-hop buffering of the uncontrolled transport: the window must
	// cover the grant round-trip at full rate, including scheduling delay
	// on loaded hosts, or the credit protocol itself becomes the
	// bottleneck.
	CreditWindow int
	// LinkQueueCap bounds each flow-controlled link's send queue
	// (default 4096).
	LinkQueueCap int
	// HighWaterline is the link depth percentage (queue occupancy or
	// transport pressure) at which an open link becomes throttled
	// (default 80).
	HighWaterline int
	// LowWaterline is the depth percentage at or below which a throttled
	// or paused link reopens, given available credit (default 30; clamped
	// below HighWaterline).
	LowWaterline int
	// ShedPolicy selects what a full link does with best-effort tuples:
	// block the producer (default), shed the newest, or shed the oldest.
	// Acked-stream tuples always block and are never shed.
	ShedPolicy ShedPolicy
	// PauseAfter marks a link paused once one continuous credit wait lasts
	// this long — the receiver is effectively not draining (default 150ms).
	PauseAfter time.Duration
	// DegradedAfter reports a subscriber as degraded through the failure
	// detector path once its link stays paused this long
	// (default 4×PauseAfter).
	DegradedAfter time.Duration
	// CreditTimeout bounds one credit wait: on expiry the sender forgives
	// outstanding debt (assuming grants were lost) and proceeds
	// (default 1s).
	CreditTimeout time.Duration
	// DrainTimeout bounds the quiescence drain inside Stop (default 2s).
	DrainTimeout time.Duration

	// CheckpointInterval enables aligned snapshot checkpointing (see
	// checkpoint.go): every interval the coordinator opens an epoch,
	// injects barriers at the sources and commits once every task has
	// snapshotted. Zero (default) disables checkpointing entirely — the
	// data path then carries only an epoch-stamp field write.
	CheckpointInterval time.Duration
	// CheckpointTimeout aborts an epoch whose barriers have not fully
	// propagated — a tree repair pruned them, or a task stalled (default
	// 10×CheckpointInterval). The next epoch supersedes the aborted one.
	CheckpointTimeout time.Duration
	// CheckpointStore persists task snapshots and source offsets per epoch
	// (default: an in-memory store; use snapshot.NewFileStore to survive
	// process restarts).
	CheckpointStore snapshot.Store

	// Autoscale enables the M/D/1-driven parallelism controller (see
	// autoscale.go): per-operator load estimates from the obs counters,
	// utilization-band decisions, actuation through Rescale. Requires
	// CheckpointInterval > 0. The zero value disables it — the engine then
	// carries no controller goroutine or state at all.
	Autoscale AutoscaleConfig

	// Obs is the observability scope every subsystem registers into. When
	// nil the engine creates a private scope with tracing disabled, so
	// instrumentation call sites never need nil checks.
	Obs *obs.Scope
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxWorkers < c.Workers {
		c.MaxWorkers = c.Workers
	}
	if c.TransferQueueCap <= 0 {
		c.TransferQueueCap = 1024
	}
	if c.ExecutorQueueCap <= 0 {
		c.ExecutorQueueCap = 4096
	}
	if c.MonitorInterval <= 0 {
		c.MonitorInterval = 10 * time.Millisecond
	}
	if c.InitialDstar <= 0 {
		c.InitialDstar = 3
	}
	if c.Control.QueueCapacity <= 0 {
		c.Control.QueueCapacity = c.TransferQueueCap
	}
	if c.Ackers <= 0 {
		c.Ackers = 1
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.HeartbeatInterval > 0 {
		if c.SuspectAfter <= 0 {
			c.SuspectAfter = 5 * c.HeartbeatInterval
		}
		if c.ConfirmAfter <= 0 {
			c.ConfirmAfter = 3 * c.SuspectAfter
		}
	}
	switch {
	case c.SendRetries == 0:
		c.SendRetries = 3
	case c.SendRetries < 0:
		c.SendRetries = 0
	}
	if c.SendRetryBase <= 0 {
		c.SendRetryBase = 200 * time.Microsecond
	}
	switch {
	case c.CreditWindow == 0:
		c.CreditWindow = 4096
	case c.CreditWindow < 0:
		c.CreditWindow = 0
	}
	if c.LinkQueueCap <= 0 {
		c.LinkQueueCap = 4096
	}
	if c.HighWaterline <= 0 || c.HighWaterline > 100 {
		c.HighWaterline = 80
	}
	if c.LowWaterline <= 0 {
		c.LowWaterline = 30
	}
	if c.LowWaterline >= c.HighWaterline {
		c.LowWaterline = c.HighWaterline / 2
	}
	if c.PauseAfter <= 0 {
		c.PauseAfter = 150 * time.Millisecond
	}
	if c.DegradedAfter <= 0 {
		c.DegradedAfter = 4 * c.PauseAfter
	}
	if c.CreditTimeout <= 0 {
		c.CreditTimeout = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Second
	}
	if c.CheckpointInterval > 0 && c.CheckpointTimeout <= 0 {
		c.CheckpointTimeout = 10 * c.CheckpointInterval
	}
	c.Autoscale = c.Autoscale.withDefaults()
	return c
}

// Metrics aggregates engine-wide instrumentation.
type Metrics struct {
	TuplesEmitted   metrics.Counter
	TuplesExecuted  metrics.Counter
	TuplesCompleted metrics.Counter // tuples reaching a sink
	TuplesAcked     metrics.Counter // reliability trees completed
	TuplesFailed    metrics.Counter // reliability trees failed/timed out
	RouteErrors     metrics.Counter
	SendErrors      metrics.Counter
	SendRetries     metrics.Counter // transient-error send retries
	SendsSuppressed metrics.Counter // sends dropped because the peer is confirmed dead
	WorkerFailures  metrics.Counter // workers confirmed dead by the detector
	DecodeErrors    metrics.Counter
	Serializations  metrics.Counter
	SerializationNS metrics.Counter
	Switches        metrics.Counter
	SkippedSwitches metrics.Counter // scale-ups rejected by the Theorem 5 guard
	CreditsWaited   metrics.Counter // sends that blocked on an exhausted credit window
	CreditWaitNS    metrics.Counter // total time spent blocked on credits
	CreditTimeouts  metrics.Counter // credit waits resolved by forgiving lost grants
	CreditGrants    metrics.Counter // CtrlCredit messages sent
	TuplesShed      metrics.Counter // best-effort tuples dropped by the shed policy
	LinkPauses      metrics.Counter // link transitions into the paused state
	DrainTimeouts   metrics.Counter // Stop drains that hit DrainTimeout
	ReplayNS        metrics.Counter // total send retry-backoff (replay) time
	ExecQueueWaitNS metrics.Counter // sampled executor-overflow residency of traced tuples

	EpochsCompleted metrics.Counter // snapshot epochs committed
	EpochsAborted   metrics.Counter // snapshot epochs discarded (timeout/failure)
	TuplesFenced    metrics.Counter // replayed tuples discarded below the fence
	AlignBuffered   metrics.Counter // tuples parked during barrier alignment
	AlignWaitNS     metrics.Counter // total alignment-buffer residency
	Restores        metrics.Counter // completed recoveries
	SnapshotErrors  metrics.Counter // task-level snapshot/restore/commit errors

	ProcessingLatency metrics.Histogram // spout -> sink, ns
	MulticastLatency  metrics.Histogram // emit -> worker arrival, ns
	SwitchLatency     metrics.Histogram // switch trigger -> all ACKs, ns
	CompleteLatency   metrics.Histogram // reliable emit -> tree complete, ns
	EpochLatency      metrics.Histogram // epoch open -> all tasks acked, ns
}

// opMetrics is one executor's share of an operator's instrumentation.
// Each executor owns its own instance so the execute hot path never
// contends across workers; reporting merges them (Histogram.Merge).
type opMetrics struct {
	executed metrics.Counter
	emitted  metrics.Counter
	execNS   metrics.Histogram
}

// OperatorStats is a reporting snapshot for one operator.
type OperatorStats struct {
	// Executed counts tuples processed by the operator's instances.
	Executed int64
	// Emitted counts tuples the operator emitted (per subscribed edge).
	Emitted int64
	// ExecLatency summarises per-tuple Execute durations.
	ExecLatency metrics.Snapshot
}

// groupKey identifies a multicast group statically.
type groupKey struct {
	op     string
	stream string
	worker int32
}

// groupDesc describes a multicast group. The group's identity (source
// operator/stream/worker) is fixed at build time; membership and the
// per-worker subscribed-task lists change when an operator rescales, so
// they live behind an atomic pointer read on the relay/delivery hot paths.
type groupDesc struct {
	id      int32
	key     groupKey
	dstOps  []string // subscriber operators (all-grouping), for recomputation
	members []int32  // initial destination workers (tree leaves/relays)
	// lt is the live worker -> locally-subscribed-tasks map.
	lt atomic.Pointer[map[int32][]int32]
}

// topoView is the engine's live task-placement view: the current assignment
// plus the derived worker-oriented remote index. It is immutable once
// published; a rescale installs a fresh view atomically so hot-path readers
// (routing, barrier fan-out, delivery) see either the old or the new
// placement, never a mix.
type topoView struct {
	assign   *Assignment
	remoteBy map[string]map[int32]map[int32][]int32 // op -> srcWorker -> dstWorker -> tasks
}

// Engine runs one topology.
type Engine struct {
	topo *Topology
	// assign is the assignment the engine launched with. It is frozen —
	// rescales publish new assignments through view — and kept for
	// introspection of the initial placement.
	assign  *Assignment
	cfg     Config
	startNS int64 // engine launch time; the attribution window's origin

	// view is the live placement (assignment + remote index). All routing,
	// barrier and delivery paths read it through tv(); rescales swap it.
	view atomic.Pointer[topoView]

	workers    []*worker
	metrics    *Metrics
	obs        *obs.Scope
	groupDescs []*groupDesc
	groupIDs   map[groupKey]int32
	managers   map[int32]*mcManager
	taskMgr    map[int32]*mcManager
	opStatsMu  sync.Mutex              //whale:lockrank 13
	opStats    map[string][]*opMetrics // per-executor shares, merged on read

	detector *failureDetector        // nil unless HeartbeatInterval > 0
	dead     []atomic.Bool           // confirmed-dead flags, read on the route/send hot paths
	joined   []atomic.Bool           // membership flags; dormant workers are unjoined
	hbStops  map[int32]chan struct{} // per-join heartbeat stop channels (guarded by mu)
	welcomes map[int32]chan struct{} // joiner-side CtrlWelcome wait channels (guarded by mu)
	ckpt     *checkpointCoordinator  // nil unless CheckpointInterval > 0
	scaler   *autoscaler             // nil unless Autoscale.Interval > 0

	stopSpoutsOnce sync.Once
	stopSpouts     chan struct{}
	spoutWG        sync.WaitGroup
	stopping       chan struct{} // closed first in Stop: aborts backoffs and credit waits
	stopTick       chan struct{}
	auxWG          sync.WaitGroup // managers, ack ticker, user tickers
	stopped        bool
	mu             sync.Mutex //whale:lockrank 10
}

// tv returns the engine's live topology view. Hot path: one atomic load.
func (e *Engine) tv() *topoView { return e.view.Load() }

// Start builds and launches the topology on the configured network.
func Start(topo *Topology, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Network == nil {
		return nil, fmt.Errorf("dsps: Config.Network is required")
	}
	if cfg.Comm == InstanceOriented && cfg.Multicast != MulticastStar {
		return nil, fmt.Errorf("dsps: tree multicast requires worker-oriented communication")
	}
	if cfg.MaxSpoutPending > 0 && !cfg.AckEnabled {
		return nil, fmt.Errorf("dsps: MaxSpoutPending requires AckEnabled")
	}
	if _, taken := topo.Operators[ackerOperatorID]; taken {
		return nil, fmt.Errorf("dsps: operator id %q is reserved", ackerOperatorID)
	}
	scope := cfg.Obs
	if scope == nil {
		scope = obs.NewScope(obs.Config{}) // private, tracing disabled
	}
	eng := &Engine{
		cfg:        cfg,
		startNS:    time.Now().UnixNano(),
		metrics:    &Metrics{},
		obs:        scope,
		groupIDs:   map[groupKey]int32{},
		managers:   map[int32]*mcManager{},
		taskMgr:    map[int32]*mcManager{},
		opStats:    map[string][]*opMetrics{},
		stopSpouts: make(chan struct{}),
		stopping:   make(chan struct{}),
		stopTick:   make(chan struct{}),
		dead:       make([]atomic.Bool, cfg.MaxWorkers),
		joined:     make([]atomic.Bool, cfg.MaxWorkers),
		hbStops:    map[int32]chan struct{}{},
		welcomes:   map[int32]chan struct{}{},
	}
	for wid := 0; wid < cfg.Workers; wid++ {
		eng.joined[wid].Store(true)
	}
	if cfg.HeartbeatInterval > 0 && cfg.MaxWorkers > 1 {
		eng.detector = newFailureDetector(eng)
	}
	if cfg.AckEnabled {
		topo = withAcking(topo, eng, cfg.Ackers, cfg.AckTimeout)
	}
	assign, err := Assign(topo, cfg.Workers)
	if err != nil {
		return nil, err
	}
	eng.topo, eng.assign = topo, assign
	eng.view.Store(&topoView{assign: assign, remoteBy: buildRemote(topo, assign, cfg.MaxWorkers)})

	// Workers and transports — all MaxWorkers of them: dormant workers run
	// their send/delivery loops from the start so admission is purely a
	// control-plane event, never a data-plane hot swap.
	for wid := 0; wid < cfg.MaxWorkers; wid++ {
		w := newWorker(eng, int32(wid))
		eng.workers = append(eng.workers, w)
	}
	for _, w := range eng.workers {
		w := w
		tr, err := cfg.Network.Register(w.id, func(from transport.WorkerID, payload []byte) {
			w.dispatch(from, payload)
		})
		if err != nil {
			return nil, err
		}
		w.tr = tr
	}

	// Sink detection: an operator is a sink if nothing subscribes to it.
	// The ack plane is invisible here: the acker's subscriptions do not
	// keep user operators from being sinks, and the acker itself never
	// records completions.
	isSink := map[string]bool{}
	for _, id := range topo.Order {
		isSink[id] = true
	}
	for _, id := range topo.Order {
		if id == ackerOperatorID {
			continue
		}
		for _, s := range topo.Operators[id].Subs {
			isSink[s.SrcOperator] = false
		}
	}
	isSink[ackerOperatorID] = false

	// Executors.
	for _, tc := range assign.Tasks {
		spec := topo.Operators[tc.OperatorID]
		w := eng.workers[tc.Worker]
		rt := newRouter(topo, assign, tc.OperatorID, tc.Worker)
		ex := newExecutor(w, tc, spec, assign, rt, isSink[tc.OperatorID], cfg.ExecutorQueueCap)
		w.addExecutor(ex)
	}

	// Multicast groups (tree modes only).
	if cfg.Comm == WorkerOriented && cfg.Multicast != MulticastStar {
		if err := eng.buildGroups(); err != nil {
			return nil, err
		}
	}
	if cfg.CheckpointInterval > 0 {
		eng.ckpt = newCheckpointCoordinator(eng)
	}
	if cfg.Autoscale.Interval > 0 {
		if eng.ckpt == nil {
			return nil, fmt.Errorf("dsps: Autoscale requires checkpointing (Config.CheckpointInterval): rescale rides aligned cuts")
		}
		eng.scaler = newAutoscaler(eng)
	}
	eng.registerObs()

	// Launch: bolts, send threads, managers, then spouts.
	for _, w := range eng.workers {
		for _, ex := range w.execMap() {
			if ex.bolt != nil {
				w.wg.Add(1)
				go ex.runBolt()
			}
			if w.fc != nil {
				w.wg.Add(1)
				go ex.feed()
			}
		}
		w.sendWG.Add(1)
		go w.sendLoop()
		if w.fc != nil {
			w.wg.Add(1)
			go w.deliverLoop()
		}
	}
	for _, mgr := range eng.managers {
		if !mgr.adaptive {
			continue // repair-only manager; no control loop
		}
		eng.auxWG.Add(1)
		go mgr.run()
	}
	if eng.detector != nil {
		for _, w := range eng.workers {
			if w.id == eng.detector.monitor || !eng.joined[w.id].Load() {
				continue // the monitor observes; dormant workers beacon on join
			}
			eng.startHeartbeat(w)
		}
		eng.auxWG.Add(1)
		go eng.detectorLoop()
	}
	if cfg.AckEnabled {
		eng.auxWG.Add(1)
		go eng.ackTicker()
	}
	if cfg.CreditWindow > 0 && cfg.MaxWorkers > 1 {
		eng.auxWG.Add(1)
		go eng.creditTicker()
	}
	if eng.ckpt != nil {
		eng.auxWG.Add(1)
		go eng.ckpt.run()
	}
	if eng.scaler != nil {
		eng.auxWG.Add(1)
		go eng.scaler.run()
	}
	for _, id := range topo.Order {
		if iv := topo.Operators[id].TickInterval; iv > 0 && !topo.Operators[id].IsSpout {
			eng.auxWG.Add(1)
			go eng.userTicker(id, iv)
		}
	}
	for _, w := range eng.workers {
		for _, ex := range w.execMap() {
			if ex.spout != nil {
				w.wg.Add(1)
				eng.spoutWG.Add(1)
				ex := ex
				go func() {
					defer eng.spoutWG.Done()
					ex.runSpout()
				}()
			}
		}
	}
	return eng, nil
}

// buildRemote precomputes, for every operator and source worker, the
// destination tasks grouped by remote worker (the worker-oriented batch
// map). Pure: it derives entirely from the assignment, so a rescale builds
// a fresh index for its new view without touching the live one.
func buildRemote(topo *Topology, a *Assignment, maxWorkers int) map[string]map[int32]map[int32][]int32 {
	out := map[string]map[int32]map[int32][]int32{}
	for _, id := range topo.Order {
		perSrc := map[int32]map[int32][]int32{}
		for src := int32(0); src < int32(maxWorkers); src++ {
			byWorker := map[int32][]int32{}
			for _, tid := range a.TasksOf[id] {
				dw := a.WorkerOf[tid]
				if dw != src {
					byWorker[dw] = append(byWorker[dw], tid)
				}
			}
			perSrc[src] = byWorker
		}
		out[id] = perSrc
	}
	return out
}

// buildGroups enumerates multicast groups — one per (source operator,
// stream, source worker) with at least one all-grouping subscriber — and
// installs version-1 trees everywhere (standing in for initial topology
// deployment).
func (e *Engine) buildGroups() error {
	type edge struct {
		op, stream string
	}
	subscribed := map[edge][]string{} // edge -> subscribed ops (All only)
	for _, id := range e.topo.Order {
		for _, s := range e.topo.Operators[id].Subs {
			if s.Type == AllGrouping {
				k := edge{s.SrcOperator, s.Stream}
				subscribed[k] = append(subscribed[k], id)
			}
		}
	}
	edges := make([]edge, 0, len(subscribed))
	for k := range subscribed {
		edges = append(edges, k)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].op != edges[j].op {
			return edges[i].op < edges[j].op
		}
		return edges[i].stream < edges[j].stream
	})

	for _, k := range edges {
		dstOps := subscribed[k]
		// Local subscribed tasks per worker.
		localTasks := map[int32][]int32{}
		memberSet := map[int32]bool{}
		for _, op := range dstOps {
			for _, tid := range e.assign.TasksOf[op] {
				w := e.assign.WorkerOf[tid]
				localTasks[w] = append(localTasks[w], tid)
				memberSet[w] = true
			}
		}
		for _, srcWorker := range e.assign.WorkersOf(k.op) {
			members := make([]int32, 0, len(memberSet))
			for w := range memberSet {
				if w != srcWorker {
					members = append(members, w)
				}
			}
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			if len(members) == 0 {
				continue // purely local group; the fast path covers it
			}
			gid := int32(len(e.groupDescs))
			desc := &groupDesc{
				id:      gid,
				key:     groupKey{op: k.op, stream: k.stream, worker: srcWorker},
				dstOps:  append([]string(nil), dstOps...),
				members: members,
			}
			desc.lt.Store(&localTasks)
			e.groupDescs = append(e.groupDescs, desc)
			e.groupIDs[desc.key] = gid

			// Build and install the initial tree — on every worker, dormant
			// ones included: a later join extends the tree to a worker that
			// already knows the group, so membership growth is just another
			// CtrlTree version, never a missing-group decode error.
			dstar := e.initialDstar(len(members))
			var tr *multicast.Tree
			if e.cfg.Multicast == MulticastBinomial {
				tr = multicast.BuildBinomial(srcWorker, members)
			} else {
				tr = multicast.BuildNonBlocking(srcWorker, members, dstar)
			}
			for _, w := range e.workers {
				gs := &groupState{trees: map[int32]*multicast.Tree{1: tr}, active: 1}
				w.groups[gid] = gs
			}
			e.obs.Events.Append(obs.Event{
				Kind: obs.EventTreeRebuild, Group: gid, Worker: srcWorker,
				Version: 1, NewDstar: dstar,
				Detail: fmt.Sprintf("initial %s tree over %d members", e.cfg.Multicast, len(members)),
			})

			// Every tree group gets a manager: it owns the membership and
			// version sequence, and repairs the tree after a confirmed
			// worker failure. The adaptive §3.3 controller (monitor loop)
			// runs only for non-fixed non-blocking trees.
			adaptive := e.cfg.Multicast == MulticastNonBlocking && !e.cfg.FixedDstar
			mgr := &mcManager{
				eng:         e,
				desc:        desc,
				w:           e.workers[srcWorker],
				adaptive:    adaptive,
				members:     append([]int32(nil), members...),
				nextVersion: 2,
				curDstar:    dstar,
				done:        make(chan struct{}),
			}
			if adaptive {
				ctl := e.cfg.Control
				ctl.MaxDstar = queueing.BinomialSourceDegree(len(members))
				if ctl.MaxDstar < 1 {
					ctl.MaxDstar = 1
				}
				mgr.ctrl = control.NewController(ctl, dstar)
				for _, tid := range e.assign.TasksOnWorker(k.op, srcWorker) {
					if _, taken := e.taskMgr[tid]; !taken {
						e.taskMgr[tid] = mgr
					}
				}
			}
			e.managers[gid] = mgr
		}
	}
	return nil
}

func (e *Engine) initialDstar(n int) int {
	d := e.cfg.InitialDstar
	if b := queueing.BinomialSourceDegree(n); d > b && b >= 1 {
		d = b
	}
	if d < 1 {
		d = 1
	}
	return d
}

// groupOf resolves the multicast group for an emit.
func (e *Engine) groupOf(op, stream string, worker int32) (int32, bool) {
	gid, ok := e.groupIDs[groupKey{op: op, stream: stream, worker: worker}]
	return gid, ok
}

// groupLocalTasks returns the subscribed tasks of group gid on worker w
// under the group's live membership view.
func (e *Engine) groupLocalTasks(gid int32, w int32) []int32 {
	if int(gid) >= len(e.groupDescs) {
		return nil
	}
	return (*e.groupDescs[gid].lt.Load())[w]
}

// managerForTask returns the adaptive manager fed by the given source task.
func (e *Engine) managerForTask(tid int32) *mcManager { return e.taskMgr[tid] }

// Metrics returns the engine's aggregated metrics.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Obs returns the engine's observability scope.
func (e *Engine) Obs() *obs.Scope { return e.obs }

// mergedOpStats folds one operator's per-executor shares into a snapshot.
func mergedOpStats(shares []*opMetrics) OperatorStats {
	var out OperatorStats
	var merged metrics.Histogram
	for _, m := range shares {
		out.Executed += m.executed.Value()
		out.Emitted += m.emitted.Value()
		merged.Merge(&m.execNS)
	}
	out.ExecLatency = merged.Snapshot()
	return out
}

// addOpShare registers one executor's metrics share. Called at Start and
// when a rescale creates executors, concurrently with stats readers.
func (e *Engine) addOpShare(op string, m *opMetrics) {
	e.opStatsMu.Lock()
	e.opStats[op] = append(e.opStats[op], m)
	e.opStatsMu.Unlock()
}

// opShares snapshots one operator's share list for lock-free iteration.
func (e *Engine) opShares(op string) []*opMetrics {
	e.opStatsMu.Lock()
	defer e.opStatsMu.Unlock()
	return e.opStats[op]
}

// OperatorStats snapshots per-operator counters (user operators only; the
// internal acker is excluded). Each executor keeps its own share; the
// snapshot merges them.
func (e *Engine) OperatorStats() map[string]OperatorStats {
	e.opStatsMu.Lock()
	ops := make(map[string][]*opMetrics, len(e.opStats))
	for id, shares := range e.opStats {
		ops[id] = shares
	}
	e.opStatsMu.Unlock()
	out := make(map[string]OperatorStats, len(ops))
	for id, shares := range ops {
		if id == ackerOperatorID {
			continue
		}
		out[id] = mergedOpStats(shares)
	}
	return out
}

// registerObs publishes every engine-level series into the observability
// registry under hierarchical names: dsps.* (tuple counters and end-to-end
// latencies), multicast.* (tree and switch state), op.<id>.* (per-operator,
// merged across executors) and worker.<n>.* (queue depth plus the RDMA
// channel counters when the transport exposes them).
func (e *Engine) registerObs() {
	r := e.obs.Reg
	m := e.metrics
	r.CounterFunc("dsps.tuples_emitted", m.TuplesEmitted.Value)
	r.CounterFunc("dsps.tuples_executed", m.TuplesExecuted.Value)
	r.CounterFunc("dsps.tuples_completed", m.TuplesCompleted.Value)
	r.CounterFunc("dsps.tuples_acked", m.TuplesAcked.Value)
	r.CounterFunc("dsps.tuples_failed", m.TuplesFailed.Value)
	r.CounterFunc("dsps.route_errors", m.RouteErrors.Value)
	r.CounterFunc("dsps.send_errors", m.SendErrors.Value)
	r.CounterFunc("dsps.send_retries", m.SendRetries.Value)
	r.CounterFunc("dsps.sends_suppressed", m.SendsSuppressed.Value)
	r.CounterFunc("dsps.worker_failures", m.WorkerFailures.Value)
	r.CounterFunc("dsps.decode_errors", m.DecodeErrors.Value)
	r.CounterFunc("dsps.serializations", m.Serializations.Value)
	r.CounterFunc("dsps.serialization_ns", m.SerializationNS.Value)
	r.CounterFunc("dsps.credits_waited", m.CreditsWaited.Value)
	r.CounterFunc("dsps.credit_wait_ns", m.CreditWaitNS.Value)
	r.CounterFunc("dsps.credit_timeouts", m.CreditTimeouts.Value)
	r.CounterFunc("dsps.credit_grants", m.CreditGrants.Value)
	r.CounterFunc("dsps.tuples_shed", m.TuplesShed.Value)
	r.CounterFunc("dsps.link_paused", m.LinkPauses.Value)
	r.CounterFunc("dsps.drain_timeouts", m.DrainTimeouts.Value)
	r.CounterFunc("dsps.replay_ns", m.ReplayNS.Value)
	r.CounterFunc("dsps.exec_queue_wait_ns", m.ExecQueueWaitNS.Value)
	r.CounterFunc("snapshot.epochs_completed", m.EpochsCompleted.Value)
	r.CounterFunc("snapshot.epochs_aborted", m.EpochsAborted.Value)
	r.CounterFunc("snapshot.tuples_fenced", m.TuplesFenced.Value)
	r.CounterFunc("snapshot.align_buffered", m.AlignBuffered.Value)
	r.CounterFunc("snapshot.align_wait_ns", m.AlignWaitNS.Value)
	r.CounterFunc("snapshot.restores", m.Restores.Value)
	r.CounterFunc("snapshot.errors", m.SnapshotErrors.Value)
	r.CounterFunc("multicast.switches", m.Switches.Value)
	r.CounterFunc("multicast.switches_skipped", m.SkippedSwitches.Value)
	r.HistogramFunc("dsps.processing_latency_ns", m.ProcessingLatency.Snapshot)
	r.HistogramFunc("dsps.complete_latency_ns", m.CompleteLatency.Snapshot)
	r.HistogramFunc("snapshot.epoch_latency_ns", m.EpochLatency.Snapshot)
	r.HistogramFunc("multicast.latency_ns", m.MulticastLatency.Snapshot)
	r.HistogramFunc("multicast.switch_latency_ns", m.SwitchLatency.Snapshot)
	r.GaugeFunc("multicast.groups", func() int64 { return int64(len(e.groupDescs)) })
	r.GaugeFunc("multicast.active_dstar", func() int64 { return int64(e.ActiveDstar()) })
	if e.scaler != nil {
		e.scaler.registerObs()
	}

	for id := range e.opStats {
		if id == ackerOperatorID {
			continue
		}
		// Re-read the share list per sample: a rescale appends shares for
		// the executors it creates, and the series must keep counting them.
		id := id
		r.CounterFunc(fmt.Sprintf("op.%s.executed", id), func() int64 {
			var n int64
			for _, s := range e.opShares(id) {
				n += s.executed.Value()
			}
			return n
		})
		r.CounterFunc(fmt.Sprintf("op.%s.emitted", id), func() int64 {
			var n int64
			for _, s := range e.opShares(id) {
				n += s.emitted.Value()
			}
			return n
		})
		r.HistogramFunc(fmt.Sprintf("op.%s.exec_latency_ns", id), func() metrics.Snapshot {
			return mergedOpStats(e.opShares(id)).ExecLatency
		})
	}

	for _, w := range e.workers {
		w := w
		prefix := fmt.Sprintf("worker.%d", w.id)
		r.GaugeFunc(prefix+".transfer_queue_len", func() int64 { return int64(len(w.transfer)) })
		r.CounterFunc(prefix+".transport.send_errs", func() int64 { return w.tr.Stats().SendErrs.Load() })
		if occ, ok := w.tr.(interface{ RingOccupancy() int }); ok {
			r.GaugeFunc(prefix+".rdma.ring_occupancy", func() int64 { return int64(occ.RingOccupancy()) })
		}
		if cs, ok := w.tr.(interface{ ChannelStats() rdma.StatsSnapshot }); ok {
			r.CounterFunc(prefix+".rdma.msgs_sent", func() int64 { return cs.ChannelStats().MsgsSent })
			r.CounterFunc(prefix+".rdma.bytes_sent", func() int64 { return cs.ChannelStats().BytesSent })
			r.CounterFunc(prefix+".rdma.work_requests", func() int64 { return cs.ChannelStats().WorkRequests })
			r.CounterFunc(prefix+".rdma.size_flushes", func() int64 { return cs.ChannelStats().SizeFlushes })
			r.CounterFunc(prefix+".rdma.timer_flushes", func() int64 { return cs.ChannelStats().TimerFlushes })
			r.CounterFunc(prefix+".rdma.ring_wait_ns", func() int64 { return cs.ChannelStats().BlockedNS })
			r.CounterFunc(prefix+".rdma.cq_poll_ns", func() int64 { return cs.ChannelStats().CQPollNS })
			r.CounterFunc(prefix+".rdma.cq_polls", func() int64 { return cs.ChannelStats().CQPolls })
			r.CounterFunc(prefix+".rdma.wr_depth_sum", func() int64 { return cs.ChannelStats().WRDepthSum })
			r.CounterFunc(prefix+".rdma.wr_flushes", func() int64 { return cs.ChannelStats().WRFlushes })
		}
	}
}

// TransportSnapshot sums transport counters across workers.
func (e *Engine) TransportSnapshot() transport.Snapshot {
	var agg transport.Snapshot
	for _, w := range e.workers {
		s := w.tr.Stats().Load()
		agg.MsgsSent += s.MsgsSent
		agg.BytesSent += s.BytesSent
		agg.MsgsRecv += s.MsgsRecv
		agg.BytesRecv += s.BytesRecv
		agg.SendNS += s.SendNS
		agg.SendErrs += s.SendErrs
	}
	return agg
}

// TransferQueueLen returns the current transfer-queue length of worker w
// (the paper's monitored queue).
func (e *Engine) TransferQueueLen(w int32) int { return len(e.workers[w].transfer) }

// ActiveDstar reports the current out-degree cap of the first adaptive
// multicast group, or 0 if none exists.
func (e *Engine) ActiveDstar() int {
	for _, mgr := range e.managers {
		if mgr.adaptive {
			return mgr.ctrl.Dstar()
		}
	}
	return 0
}

// StopSpouts signals every spout loop to finish and waits for them.
func (e *Engine) StopSpouts() {
	e.stopSpoutsOnce.Do(func() { close(e.stopSpouts) })
	e.spoutWG.Wait()
}

// WaitSpouts blocks until every spout has finished of its own accord
// (returned false from Next). Use with finite sources.
func (e *Engine) WaitSpouts() { e.spoutWG.Wait() }

// Drain waits (bounded by timeout) until the engine is quiescent: all
// transfer and executor queues empty and tuple counters stable. It returns
// true on quiescence.
func (e *Engine) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	var prevEmitted, prevExecuted int64 = -1, -1
	stable := 0
	for time.Now().Before(deadline) {
		for _, w := range e.workers {
			if err := w.tr.Flush(); err != nil {
				e.metrics.SendErrors.Inc()
			}
		}
		empty := true
		for _, w := range e.workers {
			if len(w.transfer) > 0 {
				empty = false
				break
			}
			if w.fc != nil && w.fc.queued() > 0 {
				empty = false
				break
			}
			if w.stagedLen() > 0 {
				empty = false
				break
			}
			for _, ex := range w.execMap() {
				if len(ex.in) > 0 || ex.overflowLen() > 0 || ex.alignParkedLen() > 0 {
					empty = false
					break
				}
			}
		}
		em, ex := e.metrics.TuplesEmitted.Value(), e.metrics.TuplesExecuted.Value()
		if empty && em == prevEmitted && ex == prevExecuted {
			stable++
			if stable >= 3 {
				return true
			}
		} else {
			stable = 0
		}
		prevEmitted, prevExecuted = em, ex
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// Stop shuts the engine down: spouts first, then a bounded drain, then
// bolts, managers, flow links and the network. Closing e.stopping first
// bounds shutdown latency: send-retry backoffs and credit waits abort
// instead of running out their schedules, so the drain flushes what it can
// within DrainTimeout and a drain that still misses is reported rather
// than silently ignored.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.mu.Unlock()

	close(e.stopping)
	e.StopSpouts()
	if !e.Drain(e.cfg.DrainTimeout) {
		e.metrics.DrainTimeouts.Inc()
		e.obs.Events.Append(obs.Event{
			Kind:   obs.EventDrainTimeout,
			Detail: fmt.Sprintf("engine stopped before quiescing within %v; in-flight tuples may be lost", e.cfg.DrainTimeout),
		})
	}
	close(e.stopTick)
	for _, mgr := range e.managers {
		close(mgr.done)
	}
	e.auxWG.Wait()
	for _, w := range e.workers {
		close(w.done)
	}
	for _, w := range e.workers {
		w.wg.Wait()
		w.sendWG.Wait()
	}
	// Flow links drain after the send loops stop feeding them; credit
	// waits were already released by e.stopping.
	for _, w := range e.workers {
		if w.fc != nil {
			w.fc.close()
		}
	}
	// Best-effort teardown: workers are already joined, so a close error
	// here has no one left to act on it.
	_ = e.cfg.Network.Close()
}

// StreamTick is the stream name of engine-generated tick tuples (see
// BoltDeclarer.TickEvery). Bolts receive them in Execute like any input.
const StreamTick = "__tick"

// userTicker delivers tick tuples to one operator's executors at its
// configured period until the engine stops.
func (e *Engine) userTicker(op string, interval time.Duration) {
	defer e.auxWG.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopTick:
			return
		case <-ticker.C:
			now := time.Now().UnixNano()
			tv := e.tv()
			for _, tid := range tv.assign.TasksOf[op] {
				w := e.workers[tv.assign.WorkerOf[tid]]
				ex, ok := w.execMap()[tid]
				if !ok {
					continue
				}
				tick := tuple.AddressedTuple{TaskID: tid, Src: tuple.LocalSrc,
					Data: &tuple.Tuple{Stream: StreamTick, RootEmitNS: now}}
				select {
				case ex.in <- tick:
				case <-e.stopTick:
					return
				}
			}
		}
	}
}

// ackTicker periodically injects timeout-sweep ticks into every acker task.
func (e *Engine) ackTicker() {
	defer e.auxWG.Done()
	interval := e.cfg.AckTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stopTick:
			return
		case <-ticker.C:
			tv := e.tv()
			for _, tid := range tv.assign.TasksOf[ackerOperatorID] {
				w := e.workers[tv.assign.WorkerOf[tid]]
				ex, ok := w.execMap()[tid]
				if !ok {
					continue
				}
				tick := tuple.AddressedTuple{TaskID: tid, Src: tuple.LocalSrc,
					Data: &tuple.Tuple{Stream: streamAckTick}}
				select {
				case ex.in <- tick:
				case <-e.stopTick:
					return
				}
			}
		}
	}
}

// mcManager runs the self-adjusting control loop for one multicast group
// (paper §3.3-3.4): monitor the transfer queue and input rate, decide, and
// distribute new tree versions, activating each only after every member
// ACKs.
type mcManager struct {
	eng      *Engine
	desc     *groupDesc
	w        *worker
	adaptive bool // §3.3 control loop enabled (ctrl is nil otherwise)
	ctrl     *control.Controller
	sm       control.StreamMonitor
	qm       control.QueueMonitor

	// mu guards the mutable switch/membership state; the repair path
	// (failure-detector goroutine) runs concurrently with the control loop.
	mu             sync.Mutex //whale:lockrank 15
	members        []int32    // live membership; starts as desc.members, shrinks on failure
	pendingVersion int32
	pendingAcks    map[int32]bool
	switchStart    time.Time
	nextVersion    int32
	curDstar       int
	pendingTree    *multicast.Tree

	done chan struct{}
}

func (m *mcManager) run() {
	defer m.eng.auxWG.Done()
	ticker := time.NewTicker(m.eng.cfg.MonitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
			m.tick()
		}
	}
}

func (m *mcManager) tick() {
	interval := m.eng.cfg.MonitorInterval.Seconds()
	count := m.sm.Drain()
	m.ctrl.ObserveRate(float64(count), interval)
	if te, ok := m.qm.DrainTe(); ok {
		m.ctrl.ObserveTe(te)
	}
	m.mu.Lock()
	switching := m.pendingVersion != 0
	m.mu.Unlock()
	if switching {
		return // one switch in flight at a time
	}
	m.maybeSwitch(m.ctrl.Evaluate(len(m.w.transfer)), len(m.w.transfer))
}

// maybeSwitch acts on one controller decision: it applies the Theorem 5
// guard, rebuilds the tree, and distributes the new version. Factored out of
// tick so tests can drive decisions deterministically.
func (m *mcManager) maybeSwitch(dec control.Decision, queueLen int) {
	m.mu.Lock()
	oldDstar := m.curDstar
	members := append([]int32(nil), m.members...)
	m.mu.Unlock()
	if dec.Action == control.Hold || dec.NewDstar == oldDstar {
		return
	}
	// Theorem 5 guard: an active scale-up only pays off if the stream
	// expected over the structure's likely lifetime amortizes the switch
	// pause. Scale-downs are never deferred (they protect the queue).
	if dec.Action == control.ScaleUp {
		tswitch := float64(m.eng.metrics.SwitchLatency.Mean()) / 1e9
		if tswitch <= 0 {
			tswitch = float64(len(members)) * 100e-6 // first-switch estimate
		}
		horizon := float64(100*m.eng.cfg.MonitorInterval) / float64(time.Second)
		if !control.ScaleUpWorthwhile(len(members), oldDstar, dec.NewDstar,
			dec.Te, dec.Lambda, tswitch, horizon) {
			m.eng.metrics.SkippedSwitches.Inc()
			m.ctrl.ForceDstar(oldDstar) // keep the controller honest
			m.eng.obs.Events.Append(obs.Event{
				Kind: obs.EventSwitchSkipped, Group: m.desc.id, Worker: m.w.id,
				OldDstar: oldDstar, NewDstar: dec.NewDstar,
				Lambda: dec.Lambda, Te: dec.Te, QueueLen: queueLen,
				Detail: "Theorem 5 guard: expected stream does not amortize the switch",
			})
			return
		}
	}
	gs := m.w.groups[m.desc.id]
	cur, ok := gs.tree(gs.activeVersion())
	if !ok {
		return
	}
	next := cur.Clone()
	dir, moves := multicast.Switch(next, oldDstar, dec.NewDstar)
	m.mu.Lock()
	m.curDstar = dec.NewDstar
	m.mu.Unlock()
	if dir == multicast.NoSwitch || len(moves) == 0 {
		return
	}
	m.eng.metrics.Switches.Inc()
	m.mu.Lock()
	version := m.nextVersion
	m.nextVersion++
	m.pendingVersion = version
	m.pendingTree = next
	m.pendingAcks = map[int32]bool{}
	for _, w := range members {
		m.pendingAcks[w] = false
	}
	m.switchStart = time.Now()
	m.mu.Unlock()
	kind := obs.EventScaleUp
	if dec.Action == control.ScaleDown {
		kind = obs.EventScaleDown
	}
	m.eng.obs.Events.Append(obs.Event{
		Kind: kind, Group: m.desc.id, Worker: m.w.id, Version: version,
		OldDstar: oldDstar, NewDstar: dec.NewDstar,
		Lambda: dec.Lambda, Te: dec.Te, QueueLen: queueLen,
		Detail: fmt.Sprintf("%d subtree moves", len(moves)),
	})
	m.eng.obs.Events.Append(obs.Event{
		Kind: obs.EventTreeRebuild, Group: m.desc.id, Worker: m.w.id,
		Version: version, OldDstar: oldDstar, NewDstar: dec.NewDstar,
		Detail: fmt.Sprintf("switch to version %d distributed to %d members", version, len(members)),
	})

	// Distribute the new structure. The CtrlTree message carries the full
	// adjacency (each relay "stores the structure of the multicast tree").
	nodes, parents := next.Flatten()
	direction := tuple.SwitchScaleUp
	if dir == multicast.ScaleDownSwitch {
		direction = tuple.SwitchScaleDown
	}
	cm := tuple.ControlMessage{
		Type: tuple.CtrlTree, Direction: direction,
		Group: m.desc.id, Version: version,
		Nodes: nodes, Parents: parents,
	}
	raw := tuple.AppendWorkerMessage(nil, &tuple.WorkerMessage{
		Kind:    tuple.KindControl,
		Payload: tuple.AppendControlMessage(nil, &cm),
	})
	for _, dst := range members {
		m.w.enqueueSend(sendJob{kind: jobControl, dstWorker: dst, raw: raw})
	}
}

// handleAck records one member's acknowledgement; when the last arrives the
// new version activates at the source.
func (m *mcManager) handleAck(version int32, node int32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if version != m.pendingVersion {
		return
	}
	if done, ok := m.pendingAcks[node]; !ok || done {
		return
	}
	m.pendingAcks[node] = true
	for _, acked := range m.pendingAcks {
		if !acked {
			return
		}
	}
	gs := m.w.groups[m.desc.id]
	gs.install(version, m.pendingTree)
	gs.activate(version)
	m.eng.metrics.SwitchLatency.Observe(time.Since(m.switchStart).Nanoseconds())
	m.eng.obs.Events.Append(obs.Event{
		Kind: obs.EventSwitchComplete, Group: m.desc.id, Worker: m.w.id,
		Version: version, NewDstar: m.curDstar,
		Detail: fmt.Sprintf("all %d members acked; version %d active", len(m.pendingAcks), version),
	})
	m.pendingVersion = 0
	m.pendingTree = nil
	// Drop the ack ledger with the switch. Leaving it behind is a latent
	// leak with a sharp edge under churn: a member that leaves and later
	// rejoins under the same NodeID could ack a long-dead version and be
	// double-counted against a stale ledger.
	m.pendingAcks = nil
}

// applyMembership installs a new membership for the group: the live
// worker->tasks map is swapped, the active tree is extended (AddNode,
// BFS-shallowest under the current d* cap) and/or pruned (RemoveNode) to
// the new member set, and the result is distributed as a fresh tree version
// over the ordinary §3.4 CtrlTree/ack switch. Runs during a rescale commit
// with no coordinator lock held (distribution may block on the transfer
// queue). Dead workers are excluded from the target set — they can never
// ack.
func (m *mcManager) applyMembership(newLocal map[int32][]int32, newMembers []int32) {
	live := make([]int32, 0, len(newMembers))
	for _, w := range newMembers {
		if !m.eng.workerDead(w) {
			live = append(live, w)
		}
	}
	m.desc.lt.Store(&newLocal)

	m.mu.Lock()
	same := len(live) == len(m.members)
	if same {
		for i, w := range m.members {
			if live[i] != w {
				same = false
				break
			}
		}
	}
	if same {
		m.mu.Unlock()
		return
	}
	old := append([]int32(nil), m.members...)
	m.members = append([]int32(nil), live...)
	// Cancel any in-flight switch: its ledger was built against the old
	// membership and a departing member would wedge it forever.
	m.pendingVersion = 0
	m.pendingTree = nil
	m.pendingAcks = nil
	dstar := m.curDstar
	m.mu.Unlock()

	gs := m.w.groups[m.desc.id]
	cur, ok := gs.tree(gs.activeVersion())
	if !ok {
		return
	}
	next := cur.Clone()
	oldSet := map[int32]bool{}
	for _, w := range old {
		oldSet[w] = true
	}
	liveSet := map[int32]bool{}
	for _, w := range live {
		liveSet[w] = true
	}
	for _, w := range old {
		if !liveSet[w] && next.Contains(w) {
			if err := next.RemoveNode(w, dstar); err != nil {
				return // source removal: cannot happen for members
			}
		}
	}
	for _, w := range live {
		if !oldSet[w] && !next.Contains(w) {
			if err := next.AddNode(w, dstar); err != nil {
				return
			}
		}
	}

	m.mu.Lock()
	version := m.nextVersion
	m.nextVersion++
	if len(live) > 0 {
		m.pendingVersion = version
		m.pendingTree = next
		m.pendingAcks = make(map[int32]bool, len(live))
		for _, w := range live {
			m.pendingAcks[w] = false
		}
		m.switchStart = time.Now()
	}
	m.mu.Unlock()

	m.eng.obs.Events.Append(obs.Event{
		Kind: obs.EventTreeRebuild, Group: m.desc.id, Worker: m.w.id,
		Version: version, NewDstar: dstar,
		Detail: fmt.Sprintf("membership change: %d -> %d members, version %d", len(old), len(live), version),
	})
	if len(live) == 0 {
		gs.install(version, next)
		gs.activate(version)
		return
	}
	nodes, parents := next.Flatten()
	cm := tuple.ControlMessage{
		Type: tuple.CtrlTree, Direction: tuple.SwitchScaleUp,
		Group: m.desc.id, Version: version,
		Nodes: nodes, Parents: parents,
	}
	raw := tuple.AppendWorkerMessage(nil, &tuple.WorkerMessage{
		Kind:    tuple.KindControl,
		Payload: tuple.AppendControlMessage(nil, &cm),
	})
	for _, dst := range live {
		m.w.enqueueSend(sendJob{kind: jobControl, dstWorker: dst, raw: raw})
	}
}
