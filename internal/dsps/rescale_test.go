package dsps

import (
	"encoding/json"
	"testing"
	"time"

	"whale/internal/obs"
	"whale/internal/transport"
)

// foreverSpout emits an unbounded sequence; live-rescale tests need sources
// that outlast every membership change.
type foreverSpout struct{ seq int64 }

func (s *foreverSpout) Open(*TaskContext) {}
func (s *foreverSpout) Next(c *Collector) bool {
	s.seq++
	c.Emit(s.seq, "k")
	return true
}
func (s *foreverSpout) Close() {}

// waitEventCount polls the engine's event log until at least n events of
// kind have appeared.
func waitEventCount(t *testing.T, e *Engine, kind string, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if countEvents(e, kind) >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d %q events (have %d)", n, kind, countEvents(e, kind))
}

func countEvents(e *Engine, kind string) int {
	n := 0
	for _, ev := range e.obs.Events.Recent(0) {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestRescaledAssignment: task ids stay stable across grow and shrink, new
// ids append at the global tail, shrink tombstones instead of compacting,
// and the receiver is never mutated.
func TestRescaledAssignment(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{} }, 1)
	b.Bolt("fan", func() Bolt { return forwardBolt{} }, 2).Shuffle("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(topo, 2)
	if err != nil {
		t.Fatal(err)
	}

	grown, err := a.Rescaled("fan", 4, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := grown.TasksOf["fan"]; len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("grown TasksOf[fan] = %v", got)
	}
	if grown.WorkerOf[3] != 0 || grown.WorkerOf[4] != 1 {
		t.Fatalf("new task placement %v", grown.WorkerOf)
	}
	for i, tid := range grown.TasksOf["fan"] {
		tc := grown.Tasks[tid]
		if tc.TaskIndex != i || tc.Parallelism != 4 {
			t.Fatalf("task %d context %+v, want index %d width 4", tid, tc, i)
		}
	}
	// The receiver is untouched: the live view swaps atomically elsewhere.
	if len(a.TasksOf["fan"]) != 2 || a.Tasks[1].Parallelism != 2 || len(a.WorkerOf) != 3 {
		t.Fatalf("receiver mutated: %+v", a)
	}

	shrunk, err := a.Rescaled("fan", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := shrunk.TasksOf["fan"]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("shrunk TasksOf[fan] = %v", got)
	}
	if !shrunk.retired(2) || shrunk.WorkerOf[2] != retiredWorker {
		t.Fatalf("task 2 not tombstoned: WorkerOf=%v", shrunk.WorkerOf)
	}
	if shrunk.Tasks[1].TaskIndex != 0 || shrunk.Tasks[1].Parallelism != 1 {
		t.Fatalf("survivor context %+v", shrunk.Tasks[1])
	}
	for _, tid := range shrunk.LocalTasks(0) {
		if tid == 2 {
			t.Fatal("retired task still listed as local")
		}
	}

	for _, bad := range []struct {
		op      string
		par     int
		placeOn []int32
	}{
		{"nope", 2, nil},       // unknown operator
		{"fan", 2, nil},        // unchanged parallelism
		{"fan", 0, nil},        // nonsense width
		{"fan", 4, []int32{0}}, // wrong placement count
	} {
		if _, err := a.Rescaled(bad.op, bad.par, bad.placeOn); err == nil {
			t.Fatalf("Rescaled(%q, %d, %v) accepted", bad.op, bad.par, bad.placeOn)
		}
	}
}

func membershipEngine(t *testing.T) *Engine {
	t.Helper()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 0, keys: 1} }, 1)
	b.Bolt("sink", func() Bolt { return forwardBolt{} }, 1).Shuffle("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 2, MaxWorkers: 4,
		Network:           transport.NewInprocNetwork(0),
		HeartbeatInterval: 2 * time.Millisecond,
		SuspectAfter:      2 * time.Second, // never suspect under test load
		ConfirmAfter:      5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestJoinLeaveRejoin drives the graceful membership lifecycle: dormant
// workers admit through the CtrlJoin/CtrlWelcome handshake, duplicates and
// invalid ids are rejected, a task-hosting worker cannot leave, a departed
// worker can rejoin, and a confirmed-dead worker never can.
func TestJoinLeaveRejoin(t *testing.T) {
	eng := membershipEngine(t)
	defer eng.Stop()

	if err := eng.JoinWorker(2); err != nil {
		t.Fatal(err)
	}
	if !eng.joinedWorker(2) {
		t.Fatal("worker 2 not joined after JoinWorker")
	}
	waitEventCount(t, eng, obs.EventWorkerJoined, 1, 5*time.Second)

	if err := eng.JoinWorker(2); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if err := eng.JoinWorker(99); err == nil {
		t.Fatal("out-of-range join accepted")
	}
	if err := eng.JoinWorker(-1); err == nil {
		t.Fatal("negative join accepted")
	}

	rep := eng.Membership()
	if rep.MaxWorkers != 4 || len(rep.Workers) != 4 {
		t.Fatalf("report sizing %+v", rep)
	}
	if rep.Workers[2].State != "alive" || !rep.Workers[2].Joined {
		t.Fatalf("joined worker state %+v", rep.Workers[2])
	}
	if rep.Workers[3].State != "dormant" || rep.Workers[3].Joined {
		t.Fatalf("dormant worker state %+v", rep.Workers[3])
	}

	if err := eng.LeaveWorker(3); err == nil {
		t.Fatal("unjoined worker allowed to leave")
	}
	if err := eng.LeaveWorker(0); err == nil {
		t.Fatal("monitor/coordinator worker allowed to leave")
	}
	if err := eng.LeaveWorker(1); err == nil {
		t.Fatal("task-hosting worker allowed to leave")
	}

	if err := eng.LeaveWorker(2); err != nil {
		t.Fatal(err)
	}
	if eng.joinedWorker(2) {
		t.Fatal("worker 2 still joined after leave")
	}
	waitEventCount(t, eng, obs.EventWorkerLeft, 1, 5*time.Second)
	if err := eng.LeaveWorker(2); err == nil {
		t.Fatal("double leave accepted")
	}

	// Leave is not terminal: the same worker rejoins cleanly.
	if err := eng.JoinWorker(2); err != nil {
		t.Fatalf("rejoin: %v", err)
	}

	// Death is: a fenced id can never rejoin.
	eng.dead[3].Store(true)
	if err := eng.JoinWorker(3); err == nil {
		t.Fatal("dead worker allowed to join")
	}
}

// TestMembershipReportJSON: the report serves /debug/membership and the
// whaled -membership dump; it must survive a JSON round trip losslessly
// enough for external tooling to parse worker states and placements.
func TestMembershipReportJSON(t *testing.T) {
	eng := membershipEngine(t)
	defer eng.Stop()
	raw, err := json.Marshal(eng.Membership())
	if err != nil {
		t.Fatal(err)
	}
	var parsed MembershipReport
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("parse %s: %v", raw, err)
	}
	if parsed.MaxWorkers != 4 || len(parsed.Workers) != 4 {
		t.Fatalf("parsed sizing %+v", parsed)
	}
	states := map[string]int{}
	for _, ws := range parsed.Workers {
		states[ws.State]++
	}
	if states["alive"] != 2 || states["dormant"] != 2 {
		t.Fatalf("parsed states %v", states)
	}
	if len(parsed.Operators) != 2 {
		t.Fatalf("parsed operators %+v", parsed.Operators)
	}
	for _, op := range parsed.Operators {
		if op.Parallelism != 1 || len(op.Tasks) != 1 || len(op.Workers) != 1 {
			t.Fatalf("placement row %+v", op)
		}
	}
	if parsed.RescalePending {
		t.Fatal("idle cluster reports a pending rescale")
	}
}

// TestBarrierAlignmentAcrossJoinGrowth is the elastic twin of the repair
// interaction tests: a worker joins mid-run and an all-grouping subscriber
// grows onto it, so the group's tree gains a node through the versioned
// ack'd switch while epoch barriers are continuously in flight. Barriers
// must never half-propagate across the growth: epochs keep committing
// after the rescale, and the active tree ends up containing the new member
// within the d* discipline.
func TestBarrierAlignmentAcrossJoinGrowth(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &foreverSpout{} }, 1)
	b.Bolt("spy", func() Bolt { return forwardBolt{} }, 2).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 3, MaxWorkers: 4,
		Network:            transport.NewInprocNetwork(0),
		Comm:               WorkerOriented,
		Multicast:          MulticastNonBlocking,
		FixedDstar:         true,
		InitialDstar:       2,
		HeartbeatInterval:  2 * time.Millisecond,
		SuspectAfter:       2 * time.Second,
		ConfirmAfter:       5 * time.Second,
		CheckpointInterval: 2 * time.Millisecond,
		CheckpointTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	// Steady state: epochs committing through the 3-worker tree.
	waitEventCount(t, eng, obs.EventSnapshotComplete, 2, 10*time.Second)

	if err := eng.JoinWorker(3); err != nil {
		t.Fatal(err)
	}
	if err := eng.Rescale("spy", 3, 3); err != nil {
		t.Fatal(err)
	}
	waitEventCount(t, eng, obs.EventRescaleCommitted, 1, 15*time.Second)
	if n := countEvents(eng, obs.EventRescaleAborted); n != 0 {
		t.Fatalf("%d rescale aborts during a healthy join growth", n)
	}

	// Barriers must fully propagate across the grown tree: at least two
	// fresh epochs commit after the rescale (each needs every task's ack,
	// the new worker's included — a half-propagated barrier would time out).
	after := countEvents(eng, obs.EventSnapshotComplete)
	waitEventCount(t, eng, obs.EventSnapshotComplete, after+2, 15*time.Second)

	// The group's active tree adopted the new member under the d* cap.
	found := false
	for gid := range eng.managers {
		tr, _, ok := eng.ActiveTree(gid)
		if !ok {
			t.Fatalf("group %d has no active tree", gid)
		}
		if tr.Contains(3) {
			found = true
			if err := tr.Validate(2); err != nil {
				t.Fatalf("grown tree invalid: %v", err)
			}
		}
	}
	if !found {
		t.Fatal("no active tree contains the joined worker")
	}

	// The live placement reflects the growth.
	rep := eng.Membership()
	for _, op := range rep.Operators {
		if op.Operator == "spy" && op.Parallelism != 3 {
			t.Fatalf("spy placement %+v after rescale", op)
		}
	}
}
