package dsps

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"whale/internal/chaos"
	"whale/internal/obs"
	"whale/internal/snapshot"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// foreverSpout emits an unbounded sequence; live-rescale tests need sources
// that outlast every membership change.
type foreverSpout struct{ seq int64 }

func (s *foreverSpout) Open(*TaskContext) {}
func (s *foreverSpout) Next(c *Collector) bool {
	s.seq++
	c.Emit(s.seq, "k")
	return true
}
func (s *foreverSpout) Close() {}

// waitEventCount polls the engine's event log until at least n events of
// kind have appeared.
func waitEventCount(t *testing.T, e *Engine, kind string, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if countEvents(e, kind) >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d %q events (have %d)", n, kind, countEvents(e, kind))
}

func countEvents(e *Engine, kind string) int {
	n := 0
	for _, ev := range e.obs.Events.Recent(0) {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestRescaledAssignment: task ids stay stable across grow and shrink, new
// ids append at the global tail, shrink tombstones instead of compacting,
// and the receiver is never mutated.
func TestRescaledAssignment(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{} }, 1)
	b.Bolt("fan", func() Bolt { return forwardBolt{} }, 2).Shuffle("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(topo, 2)
	if err != nil {
		t.Fatal(err)
	}

	grown, err := a.Rescaled("fan", 4, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := grown.TasksOf["fan"]; len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("grown TasksOf[fan] = %v", got)
	}
	if grown.WorkerOf[3] != 0 || grown.WorkerOf[4] != 1 {
		t.Fatalf("new task placement %v", grown.WorkerOf)
	}
	for i, tid := range grown.TasksOf["fan"] {
		tc := grown.Tasks[tid]
		if tc.TaskIndex != i || tc.Parallelism != 4 {
			t.Fatalf("task %d context %+v, want index %d width 4", tid, tc, i)
		}
	}
	// The receiver is untouched: the live view swaps atomically elsewhere.
	if len(a.TasksOf["fan"]) != 2 || a.Tasks[1].Parallelism != 2 || len(a.WorkerOf) != 3 {
		t.Fatalf("receiver mutated: %+v", a)
	}

	shrunk, err := a.Rescaled("fan", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := shrunk.TasksOf["fan"]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("shrunk TasksOf[fan] = %v", got)
	}
	if !shrunk.retired(2) || shrunk.WorkerOf[2] != retiredWorker {
		t.Fatalf("task 2 not tombstoned: WorkerOf=%v", shrunk.WorkerOf)
	}
	if shrunk.Tasks[1].TaskIndex != 0 || shrunk.Tasks[1].Parallelism != 1 {
		t.Fatalf("survivor context %+v", shrunk.Tasks[1])
	}
	for _, tid := range shrunk.LocalTasks(0) {
		if tid == 2 {
			t.Fatal("retired task still listed as local")
		}
	}

	for _, bad := range []struct {
		op      string
		par     int
		placeOn []int32
	}{
		{"nope", 2, nil},       // unknown operator
		{"fan", 2, nil},        // unchanged parallelism
		{"fan", 0, nil},        // nonsense width
		{"fan", 4, []int32{0}}, // wrong placement count
	} {
		if _, err := a.Rescaled(bad.op, bad.par, bad.placeOn); err == nil {
			t.Fatalf("Rescaled(%q, %d, %v) accepted", bad.op, bad.par, bad.placeOn)
		}
	}
}

func membershipEngine(t *testing.T) *Engine {
	t.Helper()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 0, keys: 1} }, 1)
	b.Bolt("sink", func() Bolt { return forwardBolt{} }, 1).Shuffle("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 2, MaxWorkers: 4,
		Network:           transport.NewInprocNetwork(0),
		HeartbeatInterval: 2 * time.Millisecond,
		SuspectAfter:      2 * time.Second, // never suspect under test load
		ConfirmAfter:      5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestJoinLeaveRejoin drives the graceful membership lifecycle: dormant
// workers admit through the CtrlJoin/CtrlWelcome handshake, duplicates and
// invalid ids are rejected, a task-hosting worker cannot leave, a departed
// worker can rejoin, and a confirmed-dead worker never can.
func TestJoinLeaveRejoin(t *testing.T) {
	eng := membershipEngine(t)
	defer eng.Stop()

	if err := eng.JoinWorker(2); err != nil {
		t.Fatal(err)
	}
	if !eng.joinedWorker(2) {
		t.Fatal("worker 2 not joined after JoinWorker")
	}
	waitEventCount(t, eng, obs.EventWorkerJoined, 1, 5*time.Second)

	if err := eng.JoinWorker(2); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if err := eng.JoinWorker(99); err == nil {
		t.Fatal("out-of-range join accepted")
	}
	if err := eng.JoinWorker(-1); err == nil {
		t.Fatal("negative join accepted")
	}

	rep := eng.Membership()
	if rep.MaxWorkers != 4 || len(rep.Workers) != 4 {
		t.Fatalf("report sizing %+v", rep)
	}
	if rep.Workers[2].State != "alive" || !rep.Workers[2].Joined {
		t.Fatalf("joined worker state %+v", rep.Workers[2])
	}
	if rep.Workers[3].State != "dormant" || rep.Workers[3].Joined {
		t.Fatalf("dormant worker state %+v", rep.Workers[3])
	}

	if err := eng.LeaveWorker(3); err == nil {
		t.Fatal("unjoined worker allowed to leave")
	}
	if err := eng.LeaveWorker(0); err == nil {
		t.Fatal("monitor/coordinator worker allowed to leave")
	}
	if err := eng.LeaveWorker(1); err == nil {
		t.Fatal("task-hosting worker allowed to leave")
	}

	if err := eng.LeaveWorker(2); err != nil {
		t.Fatal(err)
	}
	if eng.joinedWorker(2) {
		t.Fatal("worker 2 still joined after leave")
	}
	waitEventCount(t, eng, obs.EventWorkerLeft, 1, 5*time.Second)
	if err := eng.LeaveWorker(2); err == nil {
		t.Fatal("double leave accepted")
	}

	// Leave is not terminal: the same worker rejoins cleanly.
	if err := eng.JoinWorker(2); err != nil {
		t.Fatalf("rejoin: %v", err)
	}

	// Death is: a fenced id can never rejoin.
	eng.dead[3].Store(true)
	if err := eng.JoinWorker(3); err == nil {
		t.Fatal("dead worker allowed to join")
	}
}

// TestMembershipReportJSON: the report serves /debug/membership and the
// whaled -membership dump; it must survive a JSON round trip losslessly
// enough for external tooling to parse worker states and placements.
func TestMembershipReportJSON(t *testing.T) {
	eng := membershipEngine(t)
	defer eng.Stop()
	raw, err := json.Marshal(eng.Membership())
	if err != nil {
		t.Fatal(err)
	}
	var parsed MembershipReport
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("parse %s: %v", raw, err)
	}
	if parsed.MaxWorkers != 4 || len(parsed.Workers) != 4 {
		t.Fatalf("parsed sizing %+v", parsed)
	}
	states := map[string]int{}
	for _, ws := range parsed.Workers {
		states[ws.State]++
	}
	if states["alive"] != 2 || states["dormant"] != 2 {
		t.Fatalf("parsed states %v", states)
	}
	if len(parsed.Operators) != 2 {
		t.Fatalf("parsed operators %+v", parsed.Operators)
	}
	for _, op := range parsed.Operators {
		if op.Parallelism != 1 || len(op.Tasks) != 1 || len(op.Workers) != 1 {
			t.Fatalf("placement row %+v", op)
		}
	}
	if parsed.RescalePending {
		t.Fatal("idle cluster reports a pending rescale")
	}
}

// TestBarrierAlignmentAcrossJoinGrowth is the elastic twin of the repair
// interaction tests: a worker joins mid-run and an all-grouping subscriber
// grows onto it, so the group's tree gains a node through the versioned
// ack'd switch while epoch barriers are continuously in flight. Barriers
// must never half-propagate across the growth: epochs keep committing
// after the rescale, and the active tree ends up containing the new member
// within the d* discipline.
func TestBarrierAlignmentAcrossJoinGrowth(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &foreverSpout{} }, 1)
	b.Bolt("spy", func() Bolt { return forwardBolt{} }, 2).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 3, MaxWorkers: 4,
		Network:            transport.NewInprocNetwork(0),
		Comm:               WorkerOriented,
		Multicast:          MulticastNonBlocking,
		FixedDstar:         true,
		InitialDstar:       2,
		HeartbeatInterval:  2 * time.Millisecond,
		SuspectAfter:       2 * time.Second,
		ConfirmAfter:       5 * time.Second,
		CheckpointInterval: 2 * time.Millisecond,
		CheckpointTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	// Steady state: epochs committing through the 3-worker tree.
	waitEventCount(t, eng, obs.EventSnapshotComplete, 2, 10*time.Second)

	if err := eng.JoinWorker(3); err != nil {
		t.Fatal(err)
	}
	if err := eng.Rescale("spy", 3, 3); err != nil {
		t.Fatal(err)
	}
	waitEventCount(t, eng, obs.EventRescaleCommitted, 1, 15*time.Second)
	if n := countEvents(eng, obs.EventRescaleAborted); n != 0 {
		t.Fatalf("%d rescale aborts during a healthy join growth", n)
	}

	// Barriers must fully propagate across the grown tree: at least two
	// fresh epochs commit after the rescale (each needs every task's ack,
	// the new worker's included — a half-propagated barrier would time out).
	after := countEvents(eng, obs.EventSnapshotComplete)
	waitEventCount(t, eng, obs.EventSnapshotComplete, after+2, 15*time.Second)

	// The group's active tree adopted the new member under the d* cap.
	found := false
	for gid := range eng.managers {
		tr, _, ok := eng.ActiveTree(gid)
		if !ok {
			t.Fatalf("group %d has no active tree", gid)
		}
		if tr.Contains(3) {
			found = true
			if err := tr.Validate(2); err != nil {
				t.Fatalf("grown tree invalid: %v", err)
			}
		}
	}
	if !found {
		t.Fatal("no active tree contains the joined worker")
	}

	// The live placement reflects the growth.
	rep := eng.Membership()
	for _, op := range rep.Operators {
		if op.Operator == "spy" && op.Parallelism != 3 {
			t.Fatalf("spy placement %+v after rescale", op)
		}
	}
}

const (
	rescaleRecords = 120
	rescaleKeys    = 32
)

func rescaleKey(i int64) string { return fmt.Sprintf("rk-%d", i%rescaleKeys) }
func rescaleVal(i int64) int64  { return i%7 + 1 }

// rescaleReference computes the per-key sums the bounded sequence adds to.
func rescaleReference() map[string]int64 {
	out := map[string]int64{}
	for i := int64(0); i < rescaleRecords; i++ {
		out[rescaleKey(i)] += rescaleVal(i)
	}
	return out
}

// pausableSpout emits a fixed keyed sequence and then idles without exiting,
// so epochs keep flowing while the data set is frozen — crash/restore
// assertions compare against an exact reference.
type pausableSpout struct {
	limit int64
	seq   int64
}

func (s *pausableSpout) Open(*TaskContext) {}
func (s *pausableSpout) Next(c *Collector) bool {
	if s.seq >= s.limit {
		time.Sleep(100 * time.Microsecond)
		return true
	}
	i := s.seq
	s.seq++
	c.Emit(i, rescaleKey(i), rescaleVal(i))
	return true
}
func (s *pausableSpout) Close() {}

// slotSumBolt keeps per-key running sums and implements snapshot.Sharder
// keyed by grouping slot, so rescales split/merge its state exactly.
type slotSumBolt struct {
	reg *slotSumReg

	mu   sync.Mutex
	sums map[string]int64
}

type slotSumReg struct {
	mu    sync.Mutex
	bolts map[int32]*slotSumBolt
}

func newSlotSumReg() *slotSumReg { return &slotSumReg{bolts: map[int32]*slotSumBolt{}} }

func (r *slotSumReg) get(task int32) *slotSumBolt {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bolts[task]
}

// merged unions the live agg tasks' sums (keys are owned disjointly).
func (r *slotSumReg) merged(eng *Engine, op string) map[string]int64 {
	out := map[string]int64{}
	for _, tid := range eng.tv().assign.TasksOf[op] {
		b := r.get(tid)
		if b == nil {
			return nil
		}
		b.mu.Lock()
		for k, v := range b.sums {
			out[k] += v
		}
		b.mu.Unlock()
	}
	return out
}

func (b *slotSumBolt) Prepare(ctx *TaskContext) {
	b.mu.Lock()
	b.sums = map[string]int64{}
	b.mu.Unlock()
	b.reg.mu.Lock()
	b.reg.bolts[ctx.TaskID] = b
	b.reg.mu.Unlock()
}

func (b *slotSumBolt) Execute(tp *tuple.Tuple, _ *Collector) {
	key, val := tp.StringAt(1), tp.Int(2)
	b.mu.Lock()
	b.sums[key] += val
	b.mu.Unlock()
}

func (b *slotSumBolt) Cleanup() {}

func (b *slotSumBolt) SnapshotState() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return json.Marshal(b.sums)
}

func (b *slotSumBolt) RestoreState(data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sums = map[string]int64{}
	if data == nil {
		return nil
	}
	return json.Unmarshal(data, &b.sums)
}

func (b *slotSumBolt) ShardSnapshot() (map[int32][]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bySlot := map[int32]map[string]int64{}
	for k, v := range b.sums {
		s := SlotOf(k)
		if bySlot[s] == nil {
			bySlot[s] = map[string]int64{}
		}
		bySlot[s][k] = v
	}
	out := make(map[int32][]byte, len(bySlot))
	for s, m := range bySlot {
		d, err := json.Marshal(m)
		if err != nil {
			return nil, err
		}
		out[s] = d
	}
	return out, nil
}

func (b *slotSumBolt) RestoreShards(shards map[int32][]byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sums = map[string]int64{}
	for _, d := range shards {
		m := map[string]int64{}
		if err := json.Unmarshal(d, &m); err != nil {
			return err
		}
		for k, v := range m {
			b.sums[k] += v
		}
	}
	return nil
}

// gateStore wraps a MemStore with a commit gate so a test can freeze the
// latest committed epoch at a chosen point.
type gateStore struct {
	*snapshot.MemStore
	mu   sync.Mutex
	deny func() bool
}

func (s *gateStore) Commit(epoch int64) error {
	s.mu.Lock()
	deny := s.deny
	s.mu.Unlock()
	if deny != nil && deny() {
		return errors.New("test: commits denied")
	}
	return s.MemStore.Commit(epoch)
}

func (s *gateStore) setDeny(f func() bool) {
	s.mu.Lock()
	s.deny = f
	s.mu.Unlock()
}

// TestRescaleCrashBeforePostRescaleCommitRestoresOldLayout is the crash-
// window regression: after a rescale's restore completes, the latest
// committed checkpoint is still the pre-rescale cut (shards stored under the
// old task ids) until the first post-rescale epoch commits. A worker death
// inside that window must restore through the retained plan — re-sourcing the
// rescaled operator's state from the old task keys with slot filtering — or
// the slots of shrink-retired tasks are silently lost.
func TestRescaleCrashBeforePostRescaleCommitRestoresOldLayout(t *testing.T) {
	ref := rescaleReference()
	// The shrink 3 -> 2 retires task index 2; its slots are exactly what a
	// plan-less restore would lose. Guard against a vacuous run.
	lostSlotKeys := 0
	for k := range ref {
		if int(SlotOf(k))%3 == 2 {
			lostSlotKeys++
		}
	}
	if lostSlotKeys == 0 {
		t.Fatal("key set exercises no slot owned by the retired task")
	}

	reg := newSlotSumReg()
	store := &gateStore{MemStore: snapshot.NewMemStore()}
	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: 7})
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &pausableSpout{limit: rescaleRecords} }, 1)
	b.Bolt("agg", func() Bolt { return &slotSumBolt{reg: reg} }, 3).Fields("src", 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 4, MaxWorkers: 4, Network: net,
		HeartbeatInterval:  10 * time.Millisecond,
		SuspectAfter:       60 * time.Millisecond,
		ConfirmAfter:       200 * time.Millisecond,
		CheckpointInterval: 3 * time.Millisecond,
		CheckpointTimeout:  30 * time.Millisecond,
		CheckpointStore:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	// Round-robin placement the schedule relies on: spout (and coordinator)
	// on worker 0, agg tasks 1..3 on workers 1..3.
	for tid := int32(1); tid <= 3; tid++ {
		if w := eng.assign.WorkerOf[tid]; w != tid {
			t.Fatalf("task %d on worker %d; test assumes round-robin placement", tid, w)
		}
	}
	// Once the rescale's restore completes, no further epoch may commit: the
	// pre-rescale cut must stay the latest committed checkpoint so the crash
	// below lands inside the window under test.
	store.setDeny(func() bool { return countEvents(eng, obs.EventRescaleCommitted) >= 1 })

	// The whole bounded sequence is absorbed into the 3-wide aggregator.
	deadline := time.Now().Add(15 * time.Second)
	for !equalSums(reg.merged(eng, "agg"), ref) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := reg.merged(eng, "agg"); !equalSums(got, ref) {
		t.Fatalf("pre-rescale sums never converged:\n got %v\nwant %v", got, ref)
	}

	// Shrink at an aligned cut; the cut snapshot holds the full state under
	// the 3-wide task ids.
	if err := eng.Rescale("agg", 2); err != nil {
		t.Fatal(err)
	}
	waitEventCount(t, eng, obs.EventRescaleCommitted, 1, 15*time.Second)
	if got := reg.merged(eng, "agg"); !equalSums(got, ref) {
		t.Fatalf("post-shrink sums diverge:\n got %v\nwant %v", got, ref)
	}

	// Crash inside the window: worker 3 hosts only the retired task, so every
	// live agg task survives and must be restored from the pre-rescale cut.
	net.Crash(3)
	waitEventCount(t, eng, obs.EventWorkerDead, 1, 10*time.Second)
	deadline = time.Now().Add(15 * time.Second)
	for eng.Metrics().Restores.Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if eng.Metrics().Restores.Value() < 2 {
		t.Fatal("no restore completed after the crash")
	}

	// Exactly-once across rescale + crash: the merged state equals the
	// reference — in particular the retired task's slots, which only the
	// retained plan can re-source from the old task keys.
	if got := reg.merged(eng, "agg"); !equalSums(got, ref) {
		t.Fatalf("crash inside the rescale window lost state:\n got %v\nwant %v", got, ref)
	}
	// Ownership stays a partition and the committed event is not re-emitted
	// by the window-crash restore.
	owners := map[string]int{}
	for _, tid := range eng.tv().assign.TasksOf["agg"] {
		bl := reg.get(tid)
		bl.mu.Lock()
		for k := range bl.sums {
			owners[k]++
		}
		bl.mu.Unlock()
	}
	for k, n := range owners {
		if n != 1 {
			t.Fatalf("key %s held by %d live tasks", k, n)
		}
	}
	if n := countEvents(eng, obs.EventRescaleCommitted); n != 1 {
		t.Fatalf("EventRescaleCommitted emitted %d times", n)
	}
}

func equalSums(got, want map[string]int64) bool {
	if len(got) != len(want) {
		return false
	}
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// TestFieldsParallelismBoundedBySlots: the 64-slot key space caps a fields-
// grouped operator's parallelism — slot mod parallelism would never select
// task indices >= NumSlots. Build and live Rescale both reject the width;
// the same width under shuffle grouping is legal.
func TestFieldsParallelismBoundedBySlots(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 0, keys: 1} }, 1)
	b.Bolt("agg", func() Bolt { return forwardBolt{} }, NumSlots+1).Fields("src", 1)
	if _, err := b.Build(); err == nil {
		t.Fatalf("fields-grouped bolt wider than %d slots accepted at build", NumSlots)
	}

	b = NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 0, keys: 1} }, 1)
	b.Bolt("wide", func() Bolt { return forwardBolt{} }, NumSlots+1).Shuffle("src")
	if _, err := b.Build(); err != nil {
		t.Fatalf("shuffle bolt rejected by the slot bound: %v", err)
	}

	b = NewTopologyBuilder()
	b.Spout("src", func() Spout { return &foreverSpout{} }, 1)
	b.Bolt("agg", func() Bolt { return forwardBolt{} }, 2).Fields("src", 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 2, Network: transport.NewInprocNetwork(0),
		CheckpointInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.Rescale("agg", NumSlots+1); err == nil {
		t.Fatalf("live rescale past %d slots accepted", NumSlots)
	}
}

// rescaleTargetEngine starts a cluster with a dormant worker and a long
// checkpoint interval, so a requested rescale plan stays armed (or applies
// only under the test's control).
func rescaleTargetEngine(t *testing.T, interval time.Duration) *Engine {
	t.Helper()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &foreverSpout{} }, 1)
	b.Bolt("sink", func() Bolt { return forwardBolt{} }, 1).Shuffle("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 2, MaxWorkers: 3,
		Network:            transport.NewInprocNetwork(0),
		HeartbeatInterval:  2 * time.Millisecond,
		SuspectAfter:       2 * time.Second,
		ConfirmAfter:       5 * time.Second,
		CheckpointInterval: interval,
		CheckpointTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestLeaveWorkerRejectedWhileRescaleTargetsIt closes the placement TOCTOU
// from the leave side: a worker named by an armed-but-unapplied rescale plan
// must not be allowed to gracefully leave — it would end up hosting the new
// tasks while unjoined, invisible to the failure sweep.
// TestStaleJoinRetryCannotReadmit: the monitor admits a worker only while
// its JoinWorker call still awaits the CtrlWelcome. A duplicated CtrlJoin
// retry delivered after the handshake completed — and after the worker has
// since gracefully left — must not flip it back into the membership (its
// heartbeats are stopped, so the failure sweep would confirm the phantom
// member dead).
func TestStaleJoinRetryCannotReadmit(t *testing.T) {
	eng := rescaleTargetEngine(t, time.Hour)
	defer eng.Stop()
	if err := eng.JoinWorker(2); err != nil {
		t.Fatal(err)
	}
	if err := eng.LeaveWorker(2); err != nil {
		t.Fatal(err)
	}
	// Replay the admission a stale CtrlJoin retry would trigger.
	eng.admitPendingWorker(2)
	if eng.joinedWorker(2) {
		t.Fatal("stale join retry re-admitted a departed worker")
	}
	// A genuine rejoin still works.
	if err := eng.JoinWorker(2); err != nil {
		t.Fatal(err)
	}
	if !eng.joinedWorker(2) {
		t.Fatal("rejoin after leave failed")
	}
}

func TestLeaveWorkerRejectedWhileRescaleTargetsIt(t *testing.T) {
	eng := rescaleTargetEngine(t, time.Hour) // coordinator never ticks: plan stays pending
	defer eng.Stop()
	if err := eng.JoinWorker(2); err != nil {
		t.Fatal(err)
	}
	if err := eng.Rescale("sink", 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.LeaveWorker(2); err == nil {
		t.Fatal("placement target of a pending rescale allowed to leave")
	}
}

// TestRescaleAbortsWhenTargetUnjoinsBeforeCut closes the same TOCTOU from
// the apply side: if the target nevertheless stops being joined between the
// request and the aligned cut (the leave-side guard races), the apply must
// re-validate and abort the plan rather than install tasks on an unjoined
// worker.
func TestRescaleAbortsWhenTargetUnjoinsBeforeCut(t *testing.T) {
	// An hour-long interval keeps the coordinator's own ticker silent; the
	// test drives tick() by hand so the unjoin below is guaranteed to land
	// before the aligned epoch begins — with a real interval the first
	// epoch can commit (and the plan apply) before this goroutine runs.
	eng := rescaleTargetEngine(t, time.Hour)
	defer eng.Stop()
	if err := eng.JoinWorker(2); err != nil {
		t.Fatal(err)
	}
	if err := eng.Rescale("sink", 2, 2); err != nil {
		t.Fatal(err)
	}
	// Simulate the race LeaveWorker's guard cannot fully close: the target
	// drops out of the membership before the aligned epoch commits.
	eng.joined[2].Store(false)

	deadline := time.Now().Add(15 * time.Second)
	for countEvents(eng, obs.EventRescaleAborted) < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for rescale-aborted (have %d)", countEvents(eng, obs.EventRescaleAborted))
		}
		eng.ckpt.tick() // begin the epoch / re-inject its triggers
		time.Sleep(time.Millisecond)
	}
	if n := countEvents(eng, obs.EventRescaleCommitted); n != 0 {
		t.Fatalf("aborted rescale also committed (%d events)", n)
	}
	for _, op := range eng.Membership().Operators {
		if op.Operator == "sink" && op.Parallelism != 1 {
			t.Fatalf("half-applied rescale visible: %+v", op)
		}
	}
	if eng.ckpt.rescalePending() {
		t.Fatal("aborted plan still pending")
	}
}

// TestShardedRestoreFallsBackToLegacyBlob: a durable checkpoint written
// before shard encoding stores a plain SnapshotState payload; a Sharder
// restoring from it must detect the missing shard magic and reinstall via
// RestoreState instead of failing to decode.
func TestShardedRestoreFallsBackToLegacyBlob(t *testing.T) {
	reg := newSlotSumReg()
	store := snapshot.NewMemStore()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 0, keys: 1} }, 1)
	b.Bolt("agg", func() Bolt { return &slotSumBolt{reg: reg} }, 1).Fields("src", 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 1, Network: transport.NewInprocNetwork(0),
		CheckpointInterval: time.Hour, // coordinator exists but never fires
		CheckpointStore:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	tid := eng.assign.TasksOf["agg"][0]
	deadline := time.Now().Add(5 * time.Second)
	for reg.get(tid) == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	bolt := reg.get(tid)
	if bolt == nil {
		t.Fatal("agg bolt never prepared")
	}

	want := map[string]int64{"a": 3, "b": 9}
	legacy, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if snapshot.IsShardEncoded(legacy) {
		t.Fatal("legacy blob collides with the shard magic")
	}
	if err := store.Put(5, taskKey(tid), legacy); err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(5); err != nil {
		t.Fatal(err)
	}

	ex := eng.workers[0].execMap()[tid]
	if err := eng.ckpt.restoreTask(ex, 5); err != nil {
		t.Fatalf("legacy restore: %v", err)
	}
	bolt.mu.Lock()
	got := make(map[string]int64, len(bolt.sums))
	for k, v := range bolt.sums {
		got[k] = v
	}
	bolt.mu.Unlock()
	if !equalSums(got, want) {
		t.Fatalf("legacy restore installed %v, want %v", got, want)
	}
}
