package dsps

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"whale/internal/obs"
	"whale/internal/snapshot"
	"whale/internal/tuple"
)

// Aligned snapshot barriers and exactly-once recovery (DESIGN §13).
//
// A checkpoint coordinator on worker 0 injects epoch-numbered barrier
// frames at every spout; barriers travel the data plane — the same local
// queues, flow-controlled links and multicast trees as tuples, in per-link
// FIFO order — so the tuples before a barrier on every path are exactly the
// epoch's stream prefix. Multi-input executors align: tuples arriving on a
// link whose barrier was already seen are parked (already credit-granted at
// admission, so parking never starves the credit loop) until every live
// upstream task's barrier arrives, then the task snapshots its state into
// the configured store, acks the coordinator, forwards the barrier and
// replays the parked tuples. When every task has acked, the epoch commits.
//
// Interaction with tree switching (§3.4): relays forward multicast messages
// by the version stamped at the source, and groupState retains the two
// previous versions, so a barrier in flight across an ordinary switch
// completes on the old tree. A repair (worker death) can prune the stamped
// version at a relay — the barrier is then dropped rather than
// half-propagated, the epoch times out, the coordinator aborts it and the
// next epoch re-runs through the repaired tree. An executor stuck aligning
// an aborted epoch is released by the next epoch's barriers, which
// supersede the stale alignment and replay its parked tuples.
//
// Recovery: when the failure detector confirms a worker dead, the
// coordinator aborts any in-flight epoch, waits for every group's tree
// repair to activate, then distributes restore markers carrying the latest
// committed epoch N and a fence epoch strictly greater than every epoch
// stamp issued before the crash. Tasks reinstall their epoch-N state (nil —
// reset — when no epoch ever committed), sources rewind to the recorded
// offsets, and every executor discards in-flight tuples stamped below the
// fence — upgrading the ack plane's at-least-once to effectively-once.

// Stream names of the checkpoint plane. StreamBarrier frames ride the data
// plane; trigger and restore markers are injected out of band into executor
// queues (like ticks) because they carry no ordering requirement against
// data.
const (
	// StreamBarrier carries epoch barrier frames (Tuple.Epoch = epoch).
	StreamBarrier     = "__barrier"
	streamCkptTrigger = "__ckpt_trigger" // coordinator -> spout executors
	streamCkptRestore = "__ckpt_restore" // coordinator -> every executor; Values[0] = restore epoch
)

// taskKey is a task's key in the snapshot store.
func taskKey(tid int32) string { return fmt.Sprintf("task-%d", tid) }

// checkpointCoordinator drives the epoch state machine from worker 0's
// side: trigger injection, ack collection, commit/abort, and post-failure
// restore. All mutable state is guarded by mu; snapshot/restore work itself
// runs on the executors' goroutines.
type checkpointCoordinator struct {
	eng   *Engine
	store snapshot.Store
	home  int32 // worker whose control address receives CtrlSnapAck

	tasks      []int32 // every non-acker task, ascending
	spoutTasks []int32 // the subset hosting spouts (trigger targets)
	spoutSet   map[int32]bool

	mu sync.Mutex //whale:lockrank 12

	nextEpoch int64 // next epoch number to inject (monotone, never reused)
	epoch     int64 // in-flight snapshot epoch (0 = none)
	started   time.Time
	expected  map[int32]bool // tasks that must ack the current phase
	acked     map[int32]bool
	injected  map[int32]bool // tasks whose marker won a queue seat this attempt

	sourceGone     bool           // a source executor exited; no further epochs
	exited         map[int32]bool // spout tasks whose executor loop ended
	recoverPending bool           // a worker died; restore once tree repairs settle
	restoring      bool           // restore markers out; expected/acked track restore acks
	restoreWave    int            // 1: bolts fencing+restoring, 2: sources rewinding
	restoreFrom    int64          // committed epoch being reinstalled (0 = reset)
	fence          int64          // discard data-plane tuples stamped below this

	// Live rescale (DESIGN §14). A requested plan arms at the next epoch
	// and applies only when an epoch >= armAfter commits — that commit is
	// the rescale-aligned cut. The applied plan rides the fenced restore
	// machinery (state split/merge, source rewind) and is retained past the
	// restore: until the first post-rescale epoch commits, the latest
	// committed cut still stores the rescaled operator's shards under the
	// pre-rescale task ids, so a crash in that window must re-source them
	// from plan.oldTasks. The plan is discharged only when an epoch newer
	// than the cut commits. A worker death with a plan still pending aborts
	// it deterministically: the pre-rescale assignment stays active.
	pendingRescale *rescalePlan
	appliedRescale *rescalePlan
}

// rescalePlan is one requested parallelism change, carried from request
// through apply to the committed event.
type rescalePlan struct {
	op        string
	newPar    int
	newAssign *Assignment
	oldTasks  []int32 // op's task ids under the pre-rescale placement
	armAfter  int64   // first epoch whose commit applies the plan
	epoch     int64   // the aligned epoch actually committed (set at apply)
	committed bool    // rescale restore finished; EventRescaleCommitted emitted
}

func newCheckpointCoordinator(e *Engine) *checkpointCoordinator {
	c := &checkpointCoordinator{
		eng:       e,
		store:     e.cfg.CheckpointStore,
		home:      0,
		nextEpoch: 1,
		spoutSet:  map[int32]bool{},
		exited:    map[int32]bool{},
	}
	if c.store == nil {
		c.store = snapshot.NewMemStore()
	}
	for _, tc := range e.assign.Tasks {
		if tc.OperatorID == ackerOperatorID {
			continue
		}
		c.tasks = append(c.tasks, tc.TaskID)
		if e.topo.Operators[tc.OperatorID].IsSpout {
			c.spoutTasks = append(c.spoutTasks, tc.TaskID)
			c.spoutSet[tc.TaskID] = true
		}
	}
	return c
}

// run drives the coordinator at the checkpoint interval until engine stop.
func (c *checkpointCoordinator) run() {
	defer c.eng.auxWG.Done()
	ticker := time.NewTicker(c.eng.cfg.CheckpointInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.eng.stopTick:
			return
		case <-ticker.C:
			c.tick()
		}
	}
}

// tick advances the epoch state machine one step.
func (c *checkpointCoordinator) tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	// Recovery outranks sourceGone: a bounded source having drained stops
	// new epochs (below), but a worker death afterwards must still restore
	// the surviving stateful tasks from the last committed snapshot.
	case c.recoverPending:
		// Restore must observe the repaired trees: a restore marker racing
		// a half-distributed repair could rewind sources whose barriers
		// then cross a tree the members disagree on.
		if !c.eng.treesQuiet() {
			return
		}
		c.beginRestoreLocked()
	case c.restoring:
		if time.Since(c.started) > c.eng.cfg.CheckpointTimeout {
			// Re-drive the whole restore attempt: executors that already
			// applied this fence just re-ack.
			c.started = time.Now()
			c.injected = map[int32]bool{}
		}
		c.injectLocked(c.restoreTargetsLocked(), c.restoreMarker())
	case c.sourceGone:
		// Bounded run winding down: an epoch could never complete without
		// its sources, so the coordinator goes quiet instead of wedging
		// Drain with markers nobody will consume.
		return
	case c.epoch != 0:
		if time.Since(c.started) > c.eng.cfg.CheckpointTimeout {
			c.abortEpochLocked("epoch timed out")
			return
		}
		c.injectLocked(c.triggerTargetsLocked(), &tuple.Tuple{Stream: streamCkptTrigger, Epoch: c.epoch})
	default:
		c.beginEpochLocked()
	}
}

// beginEpochLocked opens the next snapshot epoch and injects triggers.
func (c *checkpointCoordinator) beginEpochLocked() {
	c.epoch = c.nextEpoch
	c.nextEpoch++
	c.started = time.Now()
	c.expected = map[int32]bool{}
	c.acked = map[int32]bool{}
	c.injected = map[int32]bool{}
	tv := c.eng.tv()
	for _, tid := range c.tasks {
		if !c.exited[tid] && !c.eng.workerDead(tv.assign.WorkerOf[tid]) {
			c.expected[tid] = true
		}
	}
	c.injectLocked(c.triggerTargetsLocked(), &tuple.Tuple{Stream: streamCkptTrigger, Epoch: c.epoch})
}

// triggerTargetsLocked lists the spout tasks expected to start this epoch.
func (c *checkpointCoordinator) triggerTargetsLocked() []int32 {
	out := make([]int32, 0, len(c.spoutTasks))
	for _, tid := range c.spoutTasks {
		if c.expected[tid] {
			out = append(out, tid)
		}
	}
	return out
}

// restoreTargetsLocked lists every task expected to ack the restore.
func (c *checkpointCoordinator) restoreTargetsLocked() []int32 {
	out := make([]int32, 0, len(c.expected))
	for _, tid := range c.tasks {
		if c.expected[tid] {
			out = append(out, tid)
		}
	}
	return out
}

func (c *checkpointCoordinator) restoreMarker() *tuple.Tuple {
	return &tuple.Tuple{Stream: streamCkptRestore, Epoch: c.fence, Values: []tuple.Value{c.restoreFrom}}
}

// injectLocked offers the marker to every listed task that has not yet
// received one this attempt. Injection is non-blocking — a full executor
// queue is retried on the next tick rather than wedging the coordinator.
func (c *checkpointCoordinator) injectLocked(targets []int32, tp *tuple.Tuple) {
	tv := c.eng.tv()
	for _, tid := range targets {
		if c.injected[tid] || c.acked[tid] {
			continue
		}
		w := c.eng.workers[tv.assign.WorkerOf[tid]]
		ex, ok := w.execMap()[tid]
		if !ok {
			continue
		}
		at := tuple.AddressedTuple{TaskID: tid, Src: tuple.LocalSrc, Data: tp}
		select {
		case ex.in <- at:
			c.injected[tid] = true
		default:
		}
	}
}

// abortEpochLocked discards the in-flight epoch. No abort marker is sent:
// executors stuck aligning the dead epoch are released by the next epoch's
// barriers, which supersede the stale alignment.
func (c *checkpointCoordinator) abortEpochLocked(reason string) {
	epoch := c.epoch
	c.epoch = 0
	_ = c.store.Discard(epoch)
	c.eng.metrics.EpochsAborted.Inc()
	c.eng.obs.Events.Append(obs.Event{
		Kind: obs.EventSnapshotAbort, Worker: c.home, Epoch: epoch,
		Detail: reason,
	})
}

// handleAck records one task's snapshot or restore acknowledgement. Called
// from the control plane (CtrlSnapAck) or directly by local executors.
func (c *checkpointCoordinator) handleAck(direction byte, task int32, epoch int64) {
	if plan := c.handleAckInner(direction, task, epoch); plan != nil {
		c.applyRescaleMembership(plan)
	}
}

// handleAckInner is handleAck under the coordinator lock; it returns the
// rescale plan applied by this ack's epoch commit, if any, so the caller
// can distribute the multicast membership change lock-free.
func (c *checkpointCoordinator) handleAckInner(direction byte, task int32, epoch int64) *rescalePlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch direction {
	case tuple.SnapAckSnapshot:
		if c.restoring || epoch == 0 || epoch != c.epoch || !c.expected[task] || c.acked[task] {
			return nil
		}
		c.acked[task] = true
		if !c.allAckedLocked() {
			return nil
		}
		c.epoch = 0
		if err := c.store.Commit(epoch); err != nil {
			c.eng.metrics.SnapshotErrors.Inc()
			c.eng.obs.Events.Append(obs.Event{
				Kind: obs.EventSnapshotAbort, Worker: c.home, Epoch: epoch,
				Detail: fmt.Sprintf("commit failed: %v", err),
			})
			return nil
		}
		c.eng.metrics.EpochsCompleted.Inc()
		c.eng.metrics.EpochLatency.Observe(time.Since(c.started).Nanoseconds())
		c.eng.obs.Events.Append(obs.Event{
			Kind: obs.EventSnapshotComplete, Worker: c.home, Epoch: epoch,
			Detail: fmt.Sprintf("%d tasks acked", len(c.acked)),
		})
		// First post-rescale cut: the rescaled operator's shards now live in
		// the store under the new task ids, so the old-layout plan is no
		// longer needed to source a crash restore.
		if p := c.appliedRescale; p != nil && epoch > p.epoch {
			c.appliedRescale = nil
		}
		if p := c.pendingRescale; p != nil && epoch >= p.armAfter {
			c.applyRescaleLocked(epoch)
			return c.appliedRescale
		}
	case tuple.SnapAckRestore:
		if !c.restoring || epoch != c.fence || !c.expected[task] || c.acked[task] {
			return nil
		}
		c.acked[task] = true
		c.advanceRestoreLocked()
	}
	return nil
}

// advanceRestoreLocked moves the restore forward when the current wave has
// fully acked. Bolts first, sources second: a source that rewound before
// every downstream task installed its fence would re-emit records into
// pre-rollback state, and the rollback would silently eat them.
func (c *checkpointCoordinator) advanceRestoreLocked() {
	if !c.restoring || !c.allAckedLocked() {
		return
	}
	if c.restoreWave == 1 && c.startRestoreWaveLocked(2) {
		return
	}
	c.finishRestoreLocked()
}

// startRestoreWaveLocked opens one restore wave (1 = non-spout tasks, 2 =
// spout tasks) and injects its markers. Returns false when the wave has no
// live member so the caller can skip ahead. Exited spout tasks are excluded
// — their executor loop is gone, so a marker queued to them would never be
// consumed or acked and the restore would wedge against its timeout.
func (c *checkpointCoordinator) startRestoreWaveLocked(wave int) bool {
	c.restoreWave = wave
	c.started = time.Now()
	c.expected = map[int32]bool{}
	c.acked = map[int32]bool{}
	c.injected = map[int32]bool{}
	tv := c.eng.tv()
	for _, tid := range c.tasks {
		if c.spoutSet[tid] != (wave == 2) {
			continue
		}
		if !c.exited[tid] && !c.eng.workerDead(tv.assign.WorkerOf[tid]) {
			c.expected[tid] = true
		}
	}
	if len(c.expected) == 0 {
		return false
	}
	c.injectLocked(c.restoreTargetsLocked(), c.restoreMarker())
	return true
}

// finishRestoreLocked closes the restore phase after the last wave acked.
func (c *checkpointCoordinator) finishRestoreLocked() {
	c.restoring = false
	c.restoreWave = 0
	c.eng.metrics.Restores.Inc()
	c.eng.obs.Events.Append(obs.Event{
		Kind: obs.EventSnapshotRestored, Worker: c.home, Epoch: c.restoreFrom,
		Detail: fmt.Sprintf("restored from epoch %d; fence %d", c.restoreFrom, c.fence),
	})
	// The applied plan is NOT discharged here: the latest committed cut still
	// holds the rescaled operator's shards under the pre-rescale task ids, so
	// a crash before the first post-rescale epoch commits must restore through
	// the plan again. handleAckInner drops it at that commit. The committed
	// flag keeps a window-crash re-restore from re-emitting the event.
	if p := c.appliedRescale; p != nil && !p.committed {
		p.committed = true
		c.eng.obs.Events.Append(obs.Event{
			Kind: obs.EventRescaleCommitted, Worker: c.home, Epoch: p.epoch,
			Detail: fmt.Sprintf("%s -> %d tasks, cut at epoch %d", p.op, p.newPar, p.epoch),
		})
	}
}

func (c *checkpointCoordinator) allAckedLocked() bool {
	for tid := range c.expected {
		if !c.acked[tid] {
			return false
		}
	}
	return true
}

// noteSpoutExit records that a source's executor loop ended (finite source
// exhausted, or StopSpouts): the coordinator stops opening epochs — they
// could never complete — and discards whatever is queued to the dead
// executor so a bounded run still drains to quiescence. Runs on the exiting
// spout's goroutine (the queue's only consumer); holding mu excludes a
// concurrent marker injection, so nothing lands in the queue afterwards.
func (c *checkpointCoordinator) noteSpoutExit(ex *executor) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sourceGone = true
	c.exited[ex.ctx.TaskID] = true
	// An in-flight restore can no longer wait on this task; drop it from
	// the expected set and complete the wave if it was the last holdout.
	delete(c.expected, ex.ctx.TaskID)
	c.advanceRestoreLocked()
	if c.epoch != 0 {
		c.abortEpochLocked(fmt.Sprintf("source task %d exited mid-epoch", ex.ctx.TaskID))
	}
	for {
		select {
		case <-ex.in:
		default:
			return
		}
	}
}

// onWorkerDead aborts the in-flight epoch (its barriers can no longer fully
// propagate) and schedules a restore once the tree repairs settle. Runs on
// the failure detector's goroutine, after the managers start repairing.
func (c *checkpointCoordinator) onWorkerDead(dead int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != 0 {
		c.abortEpochLocked(fmt.Sprintf("worker %d confirmed dead mid-epoch", dead))
	}
	// A plan that has not applied yet can never apply now: the aligned
	// epoch's barriers died with the worker. Abort it deterministically —
	// the pre-rescale assignment stays active, never a half-repartitioned
	// topology. An already-applied plan is durable (its cut committed) and
	// rides the restore that follows.
	if p := c.pendingRescale; p != nil {
		c.pendingRescale = nil
		c.eng.obs.Events.Append(obs.Event{
			Kind: obs.EventRescaleAborted, Worker: c.home,
			Detail: fmt.Sprintf("%s -> %d: worker %d died before the aligned epoch committed", p.op, p.newPar, dead),
		})
	}
	c.restoring = false
	c.restoreWave = 0
	c.recoverPending = true
}

// requestRescale arms a live parallelism change. The plan applies at the
// commit of the first epoch >= armAfter — epochs already in flight commit
// (or abort) under the old placement, so the cut is always a full aligned
// snapshot of the pre-rescale topology.
func (c *checkpointCoordinator) requestRescale(op string, newPar int, next *Assignment) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// An applied plan whose restore already finished (committed) only lingers
	// to source a crash-window restore from the old task layout; it does not
	// block the next request — that plan arms at a strictly newer epoch, whose
	// commit discharges the lingering one before applying the new one.
	if c.pendingRescale != nil || (c.appliedRescale != nil && !c.appliedRescale.committed) {
		return fmt.Errorf("dsps: a rescale is already in progress")
	}
	if c.restoring || c.recoverPending {
		return fmt.Errorf("dsps: rescale rejected: recovery in progress")
	}
	if c.sourceGone {
		return fmt.Errorf("dsps: rescale rejected: sources exhausted, no further epochs will commit")
	}
	old := c.eng.tv().assign.TasksOf[op]
	plan := &rescalePlan{
		op:        op,
		newPar:    newPar,
		newAssign: next,
		oldTasks:  append([]int32(nil), old...),
		armAfter:  c.nextEpoch,
	}
	c.pendingRescale = plan
	c.eng.obs.Events.Append(obs.Event{
		Kind: obs.EventRescaleStarted, Worker: c.home, Epoch: plan.armAfter,
		Detail: fmt.Sprintf("%s: %d -> %d tasks, arming at epoch %d", op, len(old), newPar, plan.armAfter),
	})
	return nil
}

// rescalePending reports whether a rescale is requested or applied but not
// yet committed (its restore still running). A committed plan lingering only
// for crash-window restore sourcing does not count.
func (c *checkpointCoordinator) rescalePending() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pendingRescale != nil || (c.appliedRescale != nil && !c.appliedRescale.committed)
}

// planTargets reports whether a requested-but-unapplied rescale plan places
// tasks on worker w. LeaveWorker rejects such a worker: the plan applies at
// a later epoch commit, and a host that left in between would carry the new
// tasks while unjoined — invisible to the failure sweep.
func (c *checkpointCoordinator) planTargets(w int32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.pendingRescale
	return p != nil && len(p.newAssign.LocalTasks(w)) > 0
}

// applyRescaleLocked installs the armed plan at its aligned cut: new
// executors spin up, the placement view swaps, and the coordinator's task
// universe is rebuilt under the new assignment. Multicast membership and
// the recovery arm move to applyRescaleMembership, which the caller runs
// after releasing c.mu — tree distribution can block on the transfer
// queue. State movement itself is deferred to the fenced restore the
// membership step schedules (recoverPending): wave 1 re-derives every
// task's routing and reinstalls state — the rescaled operator's shards
// split or merged by slot ownership — and wave 2 rewinds sources to the
// cut. Retired executors are left running inert: the restore never targets
// them, rebuilt upstream routers no longer name them, and everything they
// emit stays stamped below the fence.
func (c *checkpointCoordinator) applyRescaleLocked(epoch int64) {
	plan := c.pendingRescale
	c.pendingRescale = nil
	plan.epoch = epoch
	e := c.eng
	na := plan.newAssign
	old := make(map[int32]bool, len(plan.oldTasks))
	for _, tid := range plan.oldTasks {
		old[tid] = true
	}
	// Re-validate placement at the cut: pickPlacement checked the targets at
	// request time, but the plan applies at this later epoch commit and a
	// target may have gracefully left in between (LeaveWorker rejects named
	// targets, this is the backstop for the remaining race). Applying onto an
	// unjoined worker would host tasks the failure sweep never watches; abort
	// the plan instead — the pre-rescale assignment stays active.
	for _, tid := range na.TasksOf[plan.op] {
		if old[tid] {
			continue
		}
		if w := na.WorkerOf[tid]; !e.joinedWorker(w) || e.workerDead(w) {
			c.eng.obs.Events.Append(obs.Event{
				Kind: obs.EventRescaleAborted, Worker: c.home, Epoch: epoch,
				Detail: fmt.Sprintf("%s -> %d: placement target %d no longer joined at the aligned cut", plan.op, plan.newPar, w),
			})
			return
		}
	}
	// New executors before the view swap: the moment peers observe the new
	// placement they route to the new tasks, whose queues must exist.
	spec := e.topo.Operators[plan.op]
	sink := e.opIsSink(plan.op)
	for _, tid := range na.TasksOf[plan.op] {
		if old[tid] {
			continue
		}
		w := e.workers[na.WorkerOf[tid]]
		rt := newRouter(e.topo, na, plan.op, w.id)
		ex := newExecutor(w, na.Tasks[tid], spec, na, rt, sink, e.cfg.ExecutorQueueCap)
		w.addExecutor(ex)
		w.wg.Add(1)
		go ex.runBolt()
		if w.fc != nil {
			w.wg.Add(1)
			go ex.feed()
		}
	}
	e.view.Store(&topoView{assign: na, remoteBy: buildRemote(e.topo, na, e.cfg.MaxWorkers)})
	c.tasks = c.tasks[:0]
	for _, tc := range na.Tasks {
		if tc.OperatorID == ackerOperatorID || na.retired(tc.TaskID) {
			continue
		}
		c.tasks = append(c.tasks, tc.TaskID)
	}
	sort.Slice(c.tasks, func(i, j int) bool { return c.tasks[i] < c.tasks[j] })
	c.appliedRescale = plan
}

// applyRescaleMembership distributes every multicast group's post-rescale
// membership (tree growth/prune over the §3.4 versioned switch) and only
// then arms the restore — mirroring the failure path's repair-then-recover
// ordering, so treesQuiet gates the restore markers behind the switches
// just started. Runs with no coordinator lock held: CtrlTree distribution
// blocks on the transfer queue when it is full.
func (c *checkpointCoordinator) applyRescaleMembership(plan *rescalePlan) {
	e := c.eng
	for _, desc := range e.groupDescs {
		mgr, ok := e.managers[desc.id]
		if !ok {
			continue
		}
		local, members := e.groupMembership(desc, plan.newAssign)
		mgr.applyMembership(local, members)
	}
	c.mu.Lock()
	c.recoverPending = true
	c.mu.Unlock()
}

// beginRestoreLocked opens the restore phase: pick the latest committed
// epoch, fence everything stamped before the crash, and distribute restore
// markers to the surviving tasks.
func (c *checkpointCoordinator) beginRestoreLocked() {
	from, ok, err := c.store.Latest()
	if err != nil {
		// A transient store error (FileStore ReadDir hiccup) must not be
		// read as "nothing committed" — resetting here would silently
		// discard a durable epoch. Stay in recoverPending and retry on the
		// next tick; only a definitive ok=false falls back to reset.
		c.eng.metrics.SnapshotErrors.Inc()
		c.eng.obs.Events.Append(obs.Event{
			Kind: obs.EventSnapshotAbort, Worker: c.home,
			Detail: fmt.Sprintf("restore deferred: store.Latest: %v", err),
		})
		return
	}
	c.recoverPending = false
	if !ok {
		from = 0 // nothing committed: reset every task to initial state
	}
	// Epoch stamps issued so far are at most nextEpoch (the interval after
	// the last attempted barrier), so nextEpoch+1 fences all of them.
	c.fence = c.nextEpoch + 1
	c.nextEpoch = c.fence
	c.restoreFrom = from
	c.restoring = true
	c.eng.obs.Events.Append(obs.Event{
		Kind: obs.EventSnapshotRestore, Worker: c.home, Epoch: from,
		Detail: fmt.Sprintf("restoring from epoch %d, fence %d", from, c.fence),
	})
	if !c.startRestoreWaveLocked(1) && !c.startRestoreWaveLocked(2) {
		c.finishRestoreLocked()
	}
}

// treesQuiet reports whether no multicast group has a version distribution
// in flight (repairs included).
func (e *Engine) treesQuiet() bool {
	for _, mgr := range e.managers {
		if mgr.switchPending() {
			return false
		}
	}
	return true
}

// switchPending reports whether a tree version is distributed but not yet
// fully acked.
func (m *mcManager) switchPending() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pendingVersion != 0
}

// snapshotTask captures one task's state for epoch and acks the
// coordinator. Runs on the task's executor goroutine, so the state it
// serializes is exactly the post-alignment, pre-replay state. Stateless
// tasks ack without a store entry (restore hands them a nil snapshot).
// It reports whether the task may advance its epoch and forward barriers.
func (c *checkpointCoordinator) snapshotTask(ex *executor, epoch int64) bool {
	if sn, ok := ex.snapshotter(); ok {
		var data []byte
		var err error
		if sh, sharded := sn.(snapshot.Sharder); sharded {
			// Slot-sharded state always snapshots in shard encoding, so any
			// later epoch can be split or merged across a parallelism change
			// without re-interpreting opaque task blobs.
			var shards map[int32][]byte
			if shards, err = sh.ShardSnapshot(); err == nil {
				data = snapshot.EncodeShards(shards)
			}
		} else {
			data, err = sn.SnapshotState()
		}
		if err == nil {
			err = c.store.Put(epoch, taskKey(ex.ctx.TaskID), data)
		}
		if err != nil {
			c.eng.metrics.SnapshotErrors.Inc()
			c.eng.obs.Events.Append(obs.Event{
				Kind: obs.EventSnapshotAbort, Worker: ex.w.id, Epoch: epoch,
				Detail: fmt.Sprintf("task %d snapshot failed: %v", ex.ctx.TaskID, err),
			})
			return false
		}
	}
	ex.ackCheckpoint(tuple.SnapAckSnapshot, epoch)
	return true
}

// restoreTask reinstalls a task's epoch-N state (nil resets when the task
// has no entry or no epoch ever committed). Runs on the executor goroutine.
// Slot-sharded state under a just-applied rescale of this operator is
// repartitioned here: every pre-rescale task's shards are fetched, merged,
// and filtered down to the slots this task owns under its new width — an
// MxN split/merge with no coordination beyond the committed store.
func (c *checkpointCoordinator) restoreTask(ex *executor, from int64) error {
	sn, ok := ex.snapshotter()
	if !ok {
		return nil
	}
	sh, sharded := sn.(snapshot.Sharder)
	if !sharded {
		var data []byte
		if from > 0 {
			d, found, err := c.store.Get(from, taskKey(ex.ctx.TaskID))
			if err != nil {
				return err
			}
			if found {
				data = d
			}
		}
		return sn.RestoreState(data)
	}
	c.mu.Lock()
	plan := c.appliedRescale
	c.mu.Unlock()
	// The plan sources only restores at or before its aligned cut — epochs
	// up to plan.epoch store the operator's shards under the pre-rescale
	// task ids (the plan is discharged once a newer epoch commits, so this
	// guard is defense in depth against a stale read).
	rescaled := plan != nil && plan.op == ex.ctx.OperatorID && from <= plan.epoch
	source := []int32{ex.ctx.TaskID}
	if rescaled {
		source = plan.oldTasks
	}
	if from == 0 {
		return sh.RestoreShards(nil)
	}
	parts := make([]map[int32][]byte, 0, len(source))
	for _, tid := range source {
		d, found, err := c.store.Get(from, taskKey(tid))
		if err != nil {
			return err
		}
		if !found {
			continue
		}
		if !rescaled && !snapshot.IsShardEncoded(d) {
			// Legacy durable checkpoint written before shard encoding: the
			// blob is a plain SnapshotState payload for this very task.
			return sn.RestoreState(d)
		}
		shards, err := snapshot.DecodeShards(d)
		if err != nil {
			return err
		}
		parts = append(parts, shards)
	}
	union, err := snapshot.MergeShards(parts...)
	if err != nil {
		return err
	}
	if rescaled {
		// Keep only the slots this task owns under the new parallelism —
		// rebuildRouting already refreshed TaskIndex/Parallelism, and the
		// fields-grouping router sends slot s to task index s mod par.
		own := make(map[int32][]byte, len(union))
		for slot, d := range union {
			if int(slot)%ex.ctx.Parallelism == ex.ctx.TaskIndex {
				own[slot] = d
			}
		}
		union = own
	}
	return sh.RestoreShards(union)
}

// --- executor side ---------------------------------------------------------

// alignState tracks one bolt's barrier alignment for one epoch.
type alignState struct {
	epoch int64
	seen  map[int32]bool // upstream tasks whose barrier arrived
	// buf parks tuples from already-barriered links until alignment
	// completes; stampNS parallels it for residency accounting. Parked
	// tuples were granted at admission, so parking holds no credit.
	buf     []tuple.AddressedTuple
	stampNS []int64
}

// snapshotter returns the task's user code as a Snapshotter if it
// implements one.
func (ex *executor) snapshotter() (snapshot.Snapshotter, bool) {
	if ex.spout != nil {
		sn, ok := ex.spout.(snapshot.Snapshotter)
		return sn, ok
	}
	sn, ok := ex.bolt.(snapshot.Snapshotter)
	return sn, ok
}

// consume is the bolt executor's inbound gate: barrier and restore frames
// peel off to the checkpoint plane, fenced tuples are discarded, and while
// aligning, tuples from already-barriered links are parked. Everything else
// executes. With checkpointing disabled this is a handful of compares on
// the hot path — no allocation, no locks.
//
//whale:hotpath
func (ex *executor) consume(at tuple.AddressedTuple) {
	tp := at.Data
	switch tp.Stream {
	case StreamBarrier:
		ex.onBarrier(tp)
		return
	case streamCkptRestore:
		ex.onRestore(tp)
		return
	}
	if fe := ex.fenceEpoch; fe != 0 && tp.Epoch != 0 && tp.Epoch < fe {
		ex.w.eng.metrics.TuplesFenced.Inc()
		return
	}
	if a := ex.aligning; a != nil && a.seen[tp.SrcTask] {
		a.buf = append(a.buf, at)
		//lint:ignore hotalloc stamps only tuples parked during an active alignment, not the steady-state path
		a.stampNS = append(a.stampNS, time.Now().UnixNano())
		ex.alignParked.Add(1)
		ex.w.eng.metrics.AlignBuffered.Inc()
		return
	}
	ex.execute(at)
}

// onBarrier processes one epoch barrier frame. Duplicate barriers per
// (epoch, upstream task) are idempotent — one-to-many edges and multi-
// stream subscriptions deliver more than one copy per link.
func (ex *executor) onBarrier(tp *tuple.Tuple) {
	epoch := tp.Epoch
	if epoch < ex.epochStamp {
		return // stale: epoch already completed here, or pre-fence
	}
	a := ex.aligning
	if a != nil && epoch > a.epoch {
		// The aligned epoch was aborted upstream (only one epoch is ever
		// in flight): release its parked tuples — they precede this
		// barrier on their links, so they replay before the new alignment
		// parks anything — and realign on the new epoch.
		ex.aligning = nil
		ex.replayAligned(a)
		a = nil
	}
	if a == nil {
		a = &alignState{epoch: epoch, seen: map[int32]bool{}}
		ex.aligning = a
	}
	if a.seen[tp.SrcTask] {
		return
	}
	a.seen[tp.SrcTask] = true
	if ex.alignmentDone(a) {
		ex.completeEpoch(a)
	}
}

// alignmentDone reports whether every live upstream task's barrier arrived.
// Tasks on confirmed-dead workers are excused — their epoch is already
// doomed at the coordinator, but excusing them keeps the executor from
// parking forever between death and the next epoch.
func (ex *executor) alignmentDone(a *alignState) bool {
	eng := ex.w.eng
	assign := eng.tv().assign
	for _, tid := range ex.upstream {
		if a.seen[tid] || eng.workerDead(assign.WorkerOf[tid]) {
			continue
		}
		return false
	}
	return true
}

// completeEpoch snapshots, acks, forwards the barrier and replays parked
// tuples — in that order, so the snapshot excludes every post-barrier
// tuple and downstream alignment starts before the replayed backlog.
func (ex *executor) completeEpoch(a *alignState) {
	ex.aligning = nil
	cc := ex.w.eng.ckpt
	if cc != nil && !cc.snapshotTask(ex, a.epoch) {
		// Snapshot failed: stay on the old epoch (no barrier forward, no
		// ack — the coordinator aborts on timeout) but release the parked
		// tuples; the epoch's re-run will realign them.
		ex.replayAligned(a)
		return
	}
	ex.epochStamp = a.epoch + 1
	ex.routeBarrier(a.epoch)
	ex.replayAligned(a)
}

// replayAligned runs parked tuples back through consume in arrival order.
// Re-entrancy is bounded: barriers and restore markers are never parked,
// so replay cannot recurse into another replay of the same buffer.
func (ex *executor) replayAligned(a *alignState) {
	if len(a.buf) == 0 {
		return
	}
	m := ex.w.eng.metrics
	now := time.Now().UnixNano()
	ex.alignParked.Add(int64(-len(a.buf)))
	buf, stamps := a.buf, a.stampNS
	a.buf, a.stampNS = nil, nil
	for i, at := range buf {
		m.AlignWaitNS.Add(now - stamps[i])
		buf[i] = tuple.AddressedTuple{}
		ex.consume(at)
	}
}

// onTrigger starts epoch tp.Epoch at a spout: snapshot source offsets, ack,
// advance the stamp and inject the barrier downstream. Runs on the spout
// goroutine between Next calls.
func (ex *executor) onTrigger(tp *tuple.Tuple) {
	cc := ex.w.eng.ckpt
	if cc == nil {
		return
	}
	epoch := tp.Epoch
	if epoch+1 == ex.epochStamp {
		// Duplicate trigger for the epoch already taken here (the ack may
		// have been lost): re-ack without re-snapshotting moved state.
		ex.ackCheckpoint(tuple.SnapAckSnapshot, epoch)
		return
	}
	if epoch < ex.epochStamp {
		return // stale trigger from an aborted epoch
	}
	if cc.snapshotTask(ex, epoch) {
		ex.epochStamp = epoch + 1
		ex.routeBarrier(epoch)
	}
}

// onRestore reinstalls this task's state at the marker's epoch and adopts
// the fence. Shared by bolts (via consume) and spouts (via the spout event
// loop).
func (ex *executor) onRestore(tp *tuple.Tuple) {
	cc := ex.w.eng.ckpt
	if cc == nil {
		return
	}
	fence := tp.Epoch
	if fence <= ex.fenceEpoch {
		if fence == ex.fenceEpoch {
			ex.ackCheckpoint(tuple.SnapAckRestore, fence) // re-driven attempt
		}
		return
	}
	// Parked alignment tuples are pre-crash in-flight data: everything they
	// carry is re-delivered by the source rewind, so they are dropped here
	// (replaying them through the fence would discard them one by one).
	if a := ex.aligning; a != nil {
		ex.aligning = nil
		ex.alignParked.Add(int64(-len(a.buf)))
		ex.w.eng.metrics.TuplesFenced.Add(int64(len(a.buf)))
	}
	// Pre-crash reliability trees can never complete; drop their anchors so
	// a reliable spout is not wedged against MaxSpoutPending after rewind.
	if ex.spout != nil && len(ex.pendingRoots) > 0 {
		ex.pendingRoots = map[int64]int64{}
	}
	// Adopt the current placement view before state reinstalls: after a
	// rescale this re-derives the router, upstream set and task width the
	// restored state is filtered by; after a plain crash it is a no-op
	// refresh of the same assignment.
	ex.rebuildRouting()
	if err := cc.restoreTask(ex, tp.Int(0)); err != nil {
		ex.w.eng.metrics.SnapshotErrors.Inc()
		ex.w.eng.obs.Events.Append(obs.Event{
			Kind: obs.EventSnapshotAbort, Worker: ex.w.id, Epoch: tp.Int(0),
			Detail: fmt.Sprintf("task %d restore failed: %v", ex.ctx.TaskID, err),
		})
		return // no ack; the coordinator re-drives the restore
	}
	ex.fenceEpoch = fence
	ex.epochStamp = fence
	ex.ackCheckpoint(tuple.SnapAckRestore, fence)
}

// ackCheckpoint reports snapshot/restore completion to the coordinator —
// directly when it is local, as a CtrlSnapAck control frame otherwise
// (control stays inline at the receiver, so acks cannot deadlock behind
// the data they describe).
func (ex *executor) ackCheckpoint(direction byte, epoch int64) {
	cc := ex.w.eng.ckpt
	if cc == nil {
		return
	}
	if ex.w.id == cc.home {
		cc.handleAck(direction, ex.ctx.TaskID, epoch)
		return
	}
	cm := tuple.ControlMessage{Type: tuple.CtrlSnapAck, Direction: direction, Node: ex.ctx.TaskID, Epoch: epoch}
	enc := tuple.AcquireEncoder()
	raw := append([]byte(nil), enc.EncodeControlEnvelope(&cm)...)
	tuple.ReleaseEncoder(enc)
	ex.w.enqueueSend(sendJob{kind: jobControl, dstWorker: cc.home, raw: raw})
}

// routeBarrier fans one epoch barrier out to every task of every subscribed
// operator (the ack plane excepted), over the same paths data takes: the
// local fast path, point-to-point links, or the group's active multicast
// tree — whose version is stamped at the source so relays in the middle of
// a switch forward it consistently on the old structure. Unlike data
// routing, every grouping broadcasts: alignment is per upstream task, so
// each downstream task needs this task's barrier exactly once (duplicates
// are idempotent).
func (ex *executor) routeBarrier(epoch int64) {
	eng := ex.w.eng
	assign := eng.tv().assign
	ex.nextID++
	tp := &tuple.Tuple{
		Stream:     StreamBarrier,
		ID:         ex.nextID,
		SrcTask:    ex.ctx.TaskID,
		RootEmitNS: time.Now().UnixNano(),
		Epoch:      epoch,
	}
	streams := make([]string, 0, len(ex.rt.routes))
	for s := range ex.rt.routes {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	var sentGroups map[int32]bool
	for _, stream := range streams {
		for _, rt := range ex.rt.routes[stream] {
			if rt.dstOp == ackerOperatorID {
				continue
			}
			tree := rt.sub.Type == AllGrouping &&
				eng.cfg.Comm == WorkerOriented && eng.cfg.Multicast != MulticastStar
			for _, dst := range rt.dstTasks {
				dw := assign.WorkerOf[dst]
				if dw == ex.w.id {
					ex.w.enqueueLocal(dst, tp)
				} else if !tree && !eng.workerDead(dw) {
					ex.w.enqueueSend(sendJob{kind: jobPointToPoint, tp: tp, dstTask: dst, dstWorker: dw})
				}
			}
			if tree {
				gid, ok := eng.groupOf(ex.ctx.OperatorID, stream, ex.w.id)
				if !ok {
					continue // all remote members local-delivered above
				}
				if sentGroups == nil {
					sentGroups = map[int32]bool{}
				}
				if !sentGroups[gid] {
					sentGroups[gid] = true
					ex.w.enqueueSend(sendJob{kind: jobMulticast, tp: tp, group: gid})
				}
			}
		}
	}
}

// alignParkedLen reports the tuples currently parked for alignment (drain
// accounting; read from the Drain goroutine).
func (ex *executor) alignParkedLen() int64 { return ex.alignParked.Load() }
