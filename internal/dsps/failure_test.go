package dsps

import (
	"testing"
	"time"

	"whale/internal/transport"
	"whale/internal/tuple"
)

// TestDispatcherSurvivesGarbage injects corrupt payloads into a running
// worker: the dispatcher must count decode errors and keep processing real
// traffic, never panic.
func TestDispatcherSurvivesGarbage(t *testing.T) {
	net := transport.NewInprocNetwork(0)
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 200, keys: 4} }, 1)
	b.Bolt("sink", func() Bolt { return &captureBolt{cap: cap} }, 4).All("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{Workers: 2, Network: net, Comm: WorkerOriented})
	if err != nil {
		t.Fatal(err)
	}
	// A rogue peer floods both workers with garbage frames.
	rogue, err := net.Register(99, func(transport.WorkerID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	garbage := [][]byte{
		{},
		{0xff},
		{0xff, 0x01, 0x02, 0x03},
		tuple.AppendWorkerMessage(nil, &tuple.WorkerMessage{Kind: tuple.KindWorkerMessage, DstIDs: []int32{0}, Payload: []byte{9, 9, 9}}),
		tuple.AppendWorkerMessage(nil, &tuple.WorkerMessage{Kind: tuple.KindMulticastMessage, Group: 77, Payload: []byte{}}),
		tuple.AppendWorkerMessage(nil, &tuple.WorkerMessage{Kind: tuple.KindControl, Payload: []byte{0xde, 0xad}}),
	}
	for i := 0; i < 20; i++ {
		for _, g := range garbage {
			rogue.Send(0, g)
			rogue.Send(1, g)
		}
	}
	eng.WaitSpouts()
	if !eng.Drain(15 * time.Second) {
		eng.Stop()
		t.Fatal("drain failed")
	}
	eng.Stop()
	cap.exactlyOnce(t, eng.assign.TasksOf["sink"], 200)
	if eng.Metrics().DecodeErrors.Value() == 0 {
		t.Fatal("garbage was not counted as decode errors")
	}
}

// slowBolt simulates an overloaded downstream instance.
type slowBolt struct {
	cap   *capture
	ctx   *TaskContext
	delay time.Duration
}

func (b *slowBolt) Prepare(ctx *TaskContext) { b.ctx = ctx }
func (b *slowBolt) Execute(tp *tuple.Tuple, _ *Collector) {
	time.Sleep(b.delay)
	b.cap.record(b.ctx.TaskID, tp.Int(0))
}
func (b *slowBolt) Cleanup() {}

// TestBackpressureWithSlowConsumer: a slow instance throttles the pipeline
// through bounded queues; every tuple still arrives exactly once.
func TestBackpressureWithSlowConsumer(t *testing.T) {
	const n = 120
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: n, keys: 4} }, 1)
	b.Bolt("slow", func() Bolt { return &slowBolt{cap: cap, delay: time.Millisecond} }, 4).All("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{
		Workers: 2, Network: transport.NewInprocNetwork(4),
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 1,
		TransferQueueCap: 8, ExecutorQueueCap: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	if !eng.Drain(30 * time.Second) {
		eng.Stop()
		t.Fatal("drain failed under backpressure")
	}
	eng.Stop()
	cap.exactlyOnce(t, eng.assign.TasksOf["slow"], n)
}

// TestControlMessageGarbageDoesNotCorruptTrees: a corrupt CtrlTree is
// rejected and the group keeps routing with its previous structure.
func TestControlMessageGarbageDoesNotCorruptTrees(t *testing.T) {
	net := transport.NewInprocNetwork(0)
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 300, keys: 4} }, 1)
	b.Bolt("sink", func() Bolt { return &captureBolt{cap: cap} }, 6).All("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{
		Workers: 3, Network: net,
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A rogue CtrlTree with an invalid adjacency (cycle / unknown parent).
	bad := tuple.ControlMessage{
		Type: tuple.CtrlTree, Group: 0, Version: 9,
		Nodes: []int32{0, 1, 2}, Parents: []int32{-1, 2, 99},
	}
	raw := tuple.AppendWorkerMessage(nil, &tuple.WorkerMessage{
		Kind:    tuple.KindControl,
		Payload: tuple.AppendControlMessage(nil, &bad),
	})
	rogue, _ := net.Register(98, func(transport.WorkerID, []byte) {})
	for w := int32(0); w < 3; w++ {
		rogue.Send(w, raw)
	}
	eng.WaitSpouts()
	if !eng.Drain(15 * time.Second) {
		eng.Stop()
		t.Fatal("drain failed")
	}
	eng.Stop()
	cap.exactlyOnce(t, eng.assign.TasksOf["sink"], 300)
}
