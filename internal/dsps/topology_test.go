package dsps

import (
	"testing"

	"whale/internal/tuple"
)

type nopSpout struct{}

func (nopSpout) Open(*TaskContext)    {}
func (nopSpout) Next(*Collector) bool { return false }
func (nopSpout) Close()               {}

type nopBolt struct{}

func (nopBolt) Prepare(*TaskContext)             {}
func (nopBolt) Execute(*tuple.Tuple, *Collector) {}
func (nopBolt) Cleanup()                         {}

func mkSpout() Spout { return nopSpout{} }
func mkBolt() Bolt   { return nopBolt{} }

func TestBuildValidTopology(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", mkSpout, 2)
	b.Bolt("mid", mkBolt, 4).Shuffle("src")
	b.Bolt("sink", mkBolt, 3).All("mid").Fields("src", 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Order) != 3 {
		t.Fatalf("order %v", topo.Order)
	}
	subs := topo.Subscribers("mid", "mid")
	if len(subs) != 1 || subs[0].Op.ID != "sink" || subs[0].Sub.Type != AllGrouping {
		t.Fatalf("subscribers %v", subs)
	}
	if got := topo.Subscribers("src", "src"); len(got) != 2 {
		t.Fatalf("src subscribers %d", len(got))
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *TopologyBuilder
	}{
		{"empty id", func() *TopologyBuilder {
			b := NewTopologyBuilder()
			b.Spout("", mkSpout, 1)
			return b
		}},
		{"duplicate", func() *TopologyBuilder {
			b := NewTopologyBuilder()
			b.Spout("x", mkSpout, 1)
			b.Bolt("x", mkBolt, 1).Shuffle("x")
			return b
		}},
		{"zero parallelism", func() *TopologyBuilder {
			b := NewTopologyBuilder()
			b.Spout("x", mkSpout, 0)
			return b
		}},
		{"bolt without input", func() *TopologyBuilder {
			b := NewTopologyBuilder()
			b.Spout("x", mkSpout, 1)
			b.Bolt("y", mkBolt, 1)
			return b
		}},
		{"unknown source", func() *TopologyBuilder {
			b := NewTopologyBuilder()
			b.Spout("x", mkSpout, 1)
			b.Bolt("y", mkBolt, 1).Shuffle("ghost")
			return b
		}},
		{"cycle", func() *TopologyBuilder {
			b := NewTopologyBuilder()
			b.Spout("s", mkSpout, 1)
			b.Bolt("a", mkBolt, 1).Shuffle("s").Shuffle("b")
			b.Bolt("b", mkBolt, 1).Shuffle("a")
			return b
		}},
	}
	for _, c := range cases {
		if _, err := c.build().Build(); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestGroupingString(t *testing.T) {
	for g, want := range map[GroupingType]string{
		ShuffleGrouping: "shuffle", FieldsGrouping: "fields",
		AllGrouping: "all", GlobalGrouping: "global",
	} {
		if g.String() != want {
			t.Fatalf("%v != %s", g, want)
		}
	}
}

func TestAssignRoundRobin(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", mkSpout, 2)
	b.Bolt("work", mkBolt, 8).All("src")
	topo, _ := b.Build()
	a, err := Assign(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) != 10 {
		t.Fatalf("%d tasks", len(a.Tasks))
	}
	// Dense ids in declaration order: src = 0..1, work = 2..9.
	if got := a.TasksOf["src"]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("src tasks %v", got)
	}
	// Round-robin across 4 workers.
	for tid, w := range a.WorkerOf {
		if w != int32(tid%4) {
			t.Fatalf("task %d on worker %d", tid, w)
		}
	}
	// Each worker hosts exactly 2 'work' tasks (8 tasks / 4 workers).
	for w := int32(0); w < 4; w++ {
		if got := a.TasksOnWorker("work", w); len(got) != 2 {
			t.Fatalf("worker %d hosts %v", w, got)
		}
	}
	if got := a.WorkersOf("work"); len(got) != 4 {
		t.Fatalf("WorkersOf %v", got)
	}
	if _, err := Assign(topo, 0); err == nil {
		t.Fatal("0 workers accepted")
	}
}

func TestRouterGroupings(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", mkSpout, 1)
	b.Bolt("sh", mkBolt, 4).Shuffle("src")
	b.Bolt("fi", mkBolt, 4).Fields("src", 0)
	b.Bolt("al", mkBolt, 4).All("src")
	b.Bolt("gl", mkBolt, 4).Global("src")
	topo, _ := b.Build()
	a, _ := Assign(topo, 2)
	rt := newRouter(topo, a, "src", 0)

	tp := &tuple.Tuple{Stream: "src", Values: []tuple.Value{"key-a"}}
	dests, err := rt.destinations("src", tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(dests) != 4 {
		t.Fatalf("%d edges", len(dests))
	}
	byOp := map[string]destination{}
	for _, d := range dests {
		byOp[d.dstOp] = d
	}
	if len(byOp["sh"].tasks) != 1 {
		t.Fatal("shuffle should pick one task")
	}
	if len(byOp["fi"].tasks) != 1 {
		t.Fatal("fields should pick one task")
	}
	if !byOp["al"].all || len(byOp["al"].tasks) != 4 {
		t.Fatal("all should cover all tasks")
	}
	if len(byOp["gl"].tasks) != 1 || byOp["gl"].tasks[0] != a.TasksOf["gl"][0] {
		t.Fatal("global should pick the first task")
	}

	// Shuffle round-robins.
	first := byOp["sh"].tasks[0]
	dests2, _ := rt.destinations("src", tp)
	for _, d := range dests2 {
		if d.dstOp == "sh" && d.tasks[0] == first {
			t.Fatal("shuffle did not advance")
		}
	}

	// Fields grouping is deterministic per key.
	pick := func(key string) int32 {
		tp := &tuple.Tuple{Stream: "src", Values: []tuple.Value{key}}
		ds, _ := rt.destinations("src", tp)
		for _, d := range ds {
			if d.dstOp == "fi" {
				return d.tasks[0]
			}
		}
		return -1
	}
	if pick("driver-1") != pick("driver-1") {
		t.Fatal("fields grouping not deterministic")
	}

	// Fields grouping on a missing field errors.
	bad := &tuple.Tuple{Stream: "src", Values: nil}
	if _, err := rt.destinations("src", bad); err == nil {
		t.Fatal("missing field accepted")
	}

	if rt.hasSubscribers("nosuch") {
		t.Fatal("phantom subscribers")
	}
}

func TestHashValueCoversTypes(t *testing.T) {
	vals := []tuple.Value{int64(7), float64(3.5), "str", []byte{1, 2}, true, false}
	seen := map[uint64]bool{}
	for _, v := range vals {
		seen[hashValue(v)] = true
	}
	if len(seen) < len(vals)-1 {
		t.Fatalf("suspicious hash collisions: %d distinct of %d", len(seen), len(vals))
	}
	if hashValue("x") != hashValue("x") {
		t.Fatal("hash not deterministic")
	}
}

func TestLocalOrShuffleGrouping(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", mkSpout, 1)
	b.Bolt("near", mkBolt, 4).LocalOrShuffle("src")
	topo, _ := b.Build()
	a, _ := Assign(topo, 2)
	// Emitter on worker 0: only worker-0 tasks of "near" are eligible.
	rt := newRouter(topo, a, "src", 0)
	local := map[int32]bool{}
	for _, tid := range a.TasksOnWorker("near", 0) {
		local[tid] = true
	}
	if len(local) == 0 {
		t.Fatal("test setup: no local tasks")
	}
	tp := &tuple.Tuple{Stream: "src", Values: []tuple.Value{"k"}}
	picks := map[int32]int{}
	for i := 0; i < 40; i++ {
		ds, err := rt.destinations("src", tp)
		if err != nil {
			t.Fatal(err)
		}
		picks[ds[0].tasks[0]]++
	}
	for tid := range picks {
		if !local[tid] {
			t.Fatalf("local-or-shuffle picked remote task %d", tid)
		}
	}
	if len(picks) != len(local) {
		t.Fatalf("round-robin over %d local tasks hit only %d", len(local), len(picks))
	}
	// With no local tasks it falls back to shuffle over everything: give
	// the router a worker hosting none of "near"'s tasks.
	b2 := NewTopologyBuilder()
	b2.Spout("src", mkSpout, 1)
	b2.Bolt("near", mkBolt, 1).LocalOrShuffle("src")
	topo2, _ := b2.Build()
	a2, _ := Assign(topo2, 2) // task 0 (spout) on w0, task 1 (near) on w1
	rt2 := newRouter(topo2, a2, "src", 0)
	ds, err := rt2.destinations("src", tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds[0].tasks) != 1 || ds[0].tasks[0] != a2.TasksOf["near"][0] {
		t.Fatalf("fallback pick %v", ds[0].tasks)
	}
	if LocalOrShuffleGrouping.String() != "local-or-shuffle" {
		t.Fatal("string")
	}
}
