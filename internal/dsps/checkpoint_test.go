package dsps

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"whale/internal/chaos"
	"whale/internal/obs"
	"whale/internal/snapshot"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// countingBolt counts executed tuples and checkpoints the count; a shared
// journal records execution order and restore calls for assertions.
type countingBolt struct {
	j     *ckptJournal
	ctx   *TaskContext
	count int64
}

type ckptJournal struct {
	mu       sync.Mutex
	prepared int             // Prepare calls seen (startup sync for direct-drive tests)
	order    []int64         // tuple seqs in execution order (unit tests, one task)
	restores map[int32]int64 // task -> restored count (-1 for reset)
}

func newCkptJournal() *ckptJournal { return &ckptJournal{restores: map[int32]int64{}} }

func (b *countingBolt) Prepare(ctx *TaskContext) {
	b.ctx = ctx
	if b.j != nil {
		b.j.mu.Lock()
		b.j.prepared++
		b.j.mu.Unlock()
	}
}
func (b *countingBolt) Execute(tp *tuple.Tuple, _ *Collector) {
	b.count++
	if b.j != nil {
		b.j.mu.Lock()
		b.j.order = append(b.j.order, tp.Int(0))
		b.j.mu.Unlock()
	}
}
func (b *countingBolt) Cleanup() {}

func (b *countingBolt) SnapshotState() ([]byte, error) {
	return binary.LittleEndian.AppendUint64(nil, uint64(b.count)), nil
}

func (b *countingBolt) RestoreState(data []byte) error {
	if data == nil {
		b.count = 0
	} else {
		b.count = int64(binary.LittleEndian.Uint64(data))
	}
	if b.j != nil {
		b.j.mu.Lock()
		restored := b.count
		if data == nil {
			restored = -1
		}
		b.j.restores[b.ctx.TaskID] = restored
		b.j.mu.Unlock()
	}
	return nil
}

// idleCheckpointEngine starts a one-worker engine whose spout exits
// immediately and whose coordinator never ticks, so the test goroutine can
// drive a bolt executor's consume path deterministically.
func idleCheckpointEngine(t testing.TB, j *ckptJournal) (*Engine, *executor) {
	t.Helper()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 0, keys: 1} }, 1)
	b.Bolt("a", func() Bolt { return forwardBolt{} }, 1).Shuffle("src")
	b.Bolt("b", func() Bolt { return forwardBolt{} }, 1).Shuffle("src")
	b.Bolt("sink", func() Bolt { return &countingBolt{j: j} }, 1).Shuffle("a").Shuffle("b")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 1, Network: transport.NewInprocNetwork(0),
		CheckpointInterval: time.Hour, // coordinator exists but never fires
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	// Wait for the sink bolt's Prepare before driving consume directly: the
	// runBolt goroutine touches the bolt at startup.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j.mu.Lock()
		ready := j.prepared >= 1
		j.mu.Unlock()
		if ready {
			break
		}
		time.Sleep(time.Millisecond)
	}
	var sink *executor
	for _, tid := range eng.assign.TasksOf["sink"] {
		sink = eng.workers[0].execMap()[tid]
	}
	if sink == nil {
		t.Fatal("sink executor not found")
	}
	return eng, sink
}

func dataTuple(src int32, seq, epoch int64) tuple.AddressedTuple {
	return tuple.AddressedTuple{TaskID: 0, Src: tuple.LocalSrc, Data: &tuple.Tuple{
		Stream: "a", Values: []tuple.Value{seq}, SrcTask: src, Epoch: epoch, RootEmitNS: 1,
	}}
}

func barrier(src int32, epoch int64) tuple.AddressedTuple {
	return tuple.AddressedTuple{TaskID: 0, Src: tuple.LocalSrc, Data: &tuple.Tuple{
		Stream: StreamBarrier, SrcTask: src, Epoch: epoch,
	}}
}

// TestBarrierAlignmentParksAndReplays drives the alignment state machine
// directly: a two-input bolt must park post-barrier tuples from the
// barriered link, keep executing the other link, and replay in order once
// aligned.
func TestBarrierAlignmentParksAndReplays(t *testing.T) {
	j := newCkptJournal()
	eng, sink := idleCheckpointEngine(t, j)
	defer eng.Stop()
	a := eng.assign.TasksOf["a"][0]
	bb := eng.assign.TasksOf["b"][0]
	if len(sink.upstream) != 2 {
		t.Fatalf("sink upstream = %v, want 2 tasks", sink.upstream)
	}

	sink.consume(dataTuple(a, 1, 1))
	sink.consume(barrier(a, 1))
	if sink.aligning == nil || sink.aligning.epoch != 1 {
		t.Fatal("barrier did not open alignment")
	}
	sink.consume(dataTuple(a, 2, 2))  // post-barrier on a: must park
	sink.consume(dataTuple(bb, 3, 1)) // pre-barrier on b: must execute
	if got := eng.metrics.AlignBuffered.Value(); got != 1 {
		t.Fatalf("AlignBuffered = %d, want 1", got)
	}
	sink.consume(barrier(bb, 1)) // aligned: snapshot, advance, replay
	if sink.aligning != nil {
		t.Fatal("alignment not released")
	}
	if sink.epochStamp != 2 {
		t.Fatalf("epochStamp = %d, want 2", sink.epochStamp)
	}
	j.mu.Lock()
	order := append([]int64(nil), j.order...)
	j.mu.Unlock()
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Fatalf("execution order = %v, want [1 3 2]", order)
	}
	if sink.alignParkedLen() != 0 {
		t.Fatal("parked accounting leaked")
	}

	// A duplicate barrier for the completed epoch is ignored.
	sink.consume(barrier(a, 1))
	if sink.aligning != nil {
		t.Fatal("stale barrier reopened alignment")
	}
}

// TestBarrierSupersedeReleasesAbortedEpoch checks the abort path: an
// executor stuck aligning an epoch whose other barriers were lost is
// released by the next epoch's first barrier, replaying its parked tuples.
func TestBarrierSupersedeReleasesAbortedEpoch(t *testing.T) {
	j := newCkptJournal()
	eng, sink := idleCheckpointEngine(t, j)
	defer eng.Stop()
	a := eng.assign.TasksOf["a"][0]
	bb := eng.assign.TasksOf["b"][0]

	sink.consume(barrier(a, 1))
	sink.consume(dataTuple(a, 10, 2)) // parked behind epoch-1 alignment
	// Epoch 1 aborted upstream; epoch 2's barrier arrives on b first.
	sink.consume(barrier(bb, 2))
	if sink.aligning == nil || sink.aligning.epoch != 2 {
		t.Fatalf("alignment not superseded (aligning=%+v)", sink.aligning)
	}
	j.mu.Lock()
	replayed := len(j.order) == 1 && j.order[0] == 10
	j.mu.Unlock()
	if !replayed {
		t.Fatalf("superseded epoch's parked tuples not replayed: %v", j.order)
	}
	sink.consume(barrier(a, 2))
	if sink.aligning != nil || sink.epochStamp != 3 {
		t.Fatalf("epoch 2 did not complete (stamp=%d)", sink.epochStamp)
	}
}

// TestRestoreFencesReplayedTuples checks the restore marker path: state is
// reinstalled, the fence discards older-stamped tuples, and unstamped
// (engine tick) tuples pass.
func TestRestoreFencesReplayedTuples(t *testing.T) {
	j := newCkptJournal()
	eng, sink := idleCheckpointEngine(t, j)
	defer eng.Stop()
	a := eng.assign.TasksOf["a"][0]

	restore := tuple.AddressedTuple{TaskID: 0, Src: tuple.LocalSrc, Data: &tuple.Tuple{
		Stream: streamCkptRestore, Epoch: 10, Values: []tuple.Value{int64(0)},
	}}
	sink.consume(restore)
	if sink.fenceEpoch != 10 || sink.epochStamp != 10 {
		t.Fatalf("fence=%d stamp=%d, want 10,10", sink.fenceEpoch, sink.epochStamp)
	}
	j.mu.Lock()
	restored, ok := j.restores[sink.ctx.TaskID]
	j.mu.Unlock()
	if !ok || restored != -1 {
		t.Fatalf("RestoreState(nil) not applied (restored=%d ok=%v)", restored, ok)
	}

	sink.consume(dataTuple(a, 1, 5)) // pre-fence replay: discarded
	sink.consume(dataTuple(a, 2, 10))
	sink.consume(dataTuple(a, 3, 0)) // unstamped (tick-like): passes
	j.mu.Lock()
	order := append([]int64(nil), j.order...)
	j.mu.Unlock()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("post-restore execution = %v, want [2 3]", order)
	}
	if got := eng.metrics.TuplesFenced.Value(); got != 1 {
		t.Fatalf("TuplesFenced = %d, want 1", got)
	}
}

// TestCheckpointEpochsCommit runs a live multi-worker tree topology with
// checkpointing on and verifies epochs commit into the store with every
// stateful task's snapshot present.
func TestCheckpointEpochsCommit(t *testing.T) {
	store := snapshot.NewMemStore()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &steadySpout{} }, 1)
	b.Bolt("fan", func() Bolt { return &countingBolt{} }, 3).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 4, Network: transport.NewInprocNetwork(0),
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		CheckpointInterval: 3 * time.Millisecond,
		CheckpointStore:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().EpochsCompleted.Value() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	eng.Stop()
	completed := eng.Metrics().EpochsCompleted.Value()
	if completed < 3 {
		t.Fatalf("EpochsCompleted = %d, want >= 3", completed)
	}
	epoch, ok, err := store.Latest()
	if err != nil || !ok {
		t.Fatalf("store.Latest: ok=%v err=%v", ok, err)
	}
	for _, tid := range eng.assign.TasksOf["fan"] {
		data, found, err := store.Get(epoch, taskKey(tid))
		if err != nil || !found {
			t.Fatalf("epoch %d missing snapshot for task %d (err=%v)", epoch, tid, err)
		}
		if len(data) != 8 {
			t.Fatalf("task %d snapshot is %d bytes", tid, len(data))
		}
	}
	if eng.Metrics().EpochLatency.Count() != completed {
		t.Fatalf("EpochLatency samples = %d, want %d", eng.Metrics().EpochLatency.Count(), completed)
	}
	if eng.Metrics().TuplesFenced.Value() != 0 {
		t.Fatal("tuples fenced without any restore")
	}
}

// TestCheckpointRecoveryAfterCrash crashes a worker mid-stream and verifies
// the coordinator aborts the wedged epoch, restores every survivor from the
// last committed snapshot after the tree repair, and resumes committing.
func TestCheckpointRecoveryAfterCrash(t *testing.T) {
	store := snapshot.NewMemStore()
	j := newCkptJournal()
	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: 1})
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &steadySpout{} }, 1)
	b.Bolt("fan", func() Bolt { return &countingBolt{j: j} }, 3).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 4, Network: net,
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		HeartbeatInterval:  10 * time.Millisecond,
		SuspectAfter:       60 * time.Millisecond,
		ConfirmAfter:       200 * time.Millisecond,
		CheckpointInterval: 3 * time.Millisecond,
		CheckpointTimeout:  30 * time.Millisecond,
		CheckpointStore:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().EpochsCompleted.Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if eng.Metrics().EpochsCompleted.Value() < 2 {
		t.Fatal("no epochs committed before the crash")
	}

	// Worker 1 is an interior tree node (0:[1,2], 1:[3] at d*=2): its death
	// both orphans a subtree and wedges the in-flight epoch.
	net.Crash(1)
	waitForEvent(t, eng, obs.EventWorkerDead, 1, 10*time.Second)
	waitForEvent(t, eng, obs.EventSnapshotRestored, 0, 10*time.Second)

	if eng.Metrics().EpochsAborted.Value() == 0 {
		t.Fatal("crash mid-epoch aborted nothing")
	}
	if eng.Metrics().Restores.Value() == 0 {
		t.Fatal("no restore completed")
	}
	// Every surviving stateful task restored from a committed snapshot, not
	// a reset.
	j.mu.Lock()
	restores := make(map[int32]int64, len(j.restores))
	for k, v := range j.restores {
		restores[k] = v
	}
	j.mu.Unlock()
	survivors := 0
	for _, tid := range eng.assign.TasksOf["fan"] {
		if eng.assign.WorkerOf[tid] == 1 {
			continue
		}
		survivors++
		v, ok := restores[tid]
		if !ok {
			t.Fatalf("surviving task %d was not restored (restores=%v)", tid, restores)
		}
		if v < 0 {
			t.Fatalf("task %d reset instead of restoring committed state", tid)
		}
	}
	if survivors == 0 {
		t.Fatal("test lost every stateful task")
	}

	// The system keeps checkpointing after recovery.
	base := eng.Metrics().EpochsCompleted.Value()
	deadline = time.Now().Add(10 * time.Second)
	for eng.Metrics().EpochsCompleted.Value() <= base && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if eng.Metrics().EpochsCompleted.Value() <= base {
		t.Fatal("no epochs committed after recovery")
	}
}

// TestConsumeZeroAllocWhenCheckpointingDisabled is the steady-state cost
// gate: with checkpointing off, the consume gate in front of every bolt
// must add zero allocations to the execute path.
func TestConsumeZeroAllocWhenCheckpointingDisabled(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 0, keys: 1} }, 1)
	b.Bolt("sink", func() Bolt { return sinkAckBolt{} }, 1).Shuffle("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{Workers: 1, Network: transport.NewInprocNetwork(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	eng.WaitSpouts()
	sink := eng.workers[0].execMap()[eng.assign.TasksOf["sink"][0]]
	if sink.epochStamp != 0 {
		t.Fatalf("epochStamp = %d with checkpointing disabled", sink.epochStamp)
	}
	at := tuple.AddressedTuple{Src: tuple.LocalSrc, Data: &tuple.Tuple{
		Stream: "src", Values: []tuple.Value{int64(1)}, SrcTask: 0,
	}}
	allocs := testing.AllocsPerRun(200, func() { sink.consume(at) })
	if allocs != 0 {
		t.Fatalf("consume allocates %.1f per tuple with checkpointing disabled", allocs)
	}
}

// replaySpout is a rewindable reliable source over the fixed sequence
// 1..total — kafkalite semantics in miniature (fetch cursor, Fail-requeue
// buffer, in-flight set) so reliable delivery and checkpointing can be
// exercised together without importing kafkalite (cycle).
type replaySpout struct {
	total    int64
	pace     time.Duration
	cursor   int64           // last fetched seq
	buffered []int64         // requeued by Fail, not yet re-emitted
	inflight map[int64]int64 // msgID -> seq
	nextMsg  int64
}

func (s *replaySpout) Open(*TaskContext) { s.inflight = map[int64]int64{} }
func (s *replaySpout) Close()            {}

func (s *replaySpout) Next(c *Collector) bool {
	var seq int64
	switch {
	case len(s.buffered) > 0:
		seq = s.buffered[0]
		s.buffered = s.buffered[1:]
	case s.cursor < s.total:
		s.cursor++
		seq = s.cursor
	default:
		time.Sleep(200 * time.Microsecond)
		return true // stay alive so the coordinator keeps cutting epochs
	}
	s.nextMsg++
	s.inflight[s.nextMsg] = seq
	c.EmitReliable(s.nextMsg, seq)
	if s.pace > 0 {
		time.Sleep(s.pace)
	}
	return true
}

func (s *replaySpout) Ack(msgID int64) { delete(s.inflight, msgID) }
func (s *replaySpout) Fail(msgID int64) {
	if seq, ok := s.inflight[msgID]; ok {
		delete(s.inflight, msgID)
		s.buffered = append(s.buffered, seq)
	}
}

// SnapshotState mirrors the kafkalite spout's resume-point rule: requeued
// records lower the resume point, in-flight emissions do not (they precede
// the barrier and are already inside the epoch's downstream snapshots).
func (s *replaySpout) SnapshotState() ([]byte, error) {
	resume := s.cursor + 1
	for _, seq := range s.buffered {
		if seq < resume {
			resume = seq
		}
	}
	return binary.LittleEndian.AppendUint64(nil, uint64(resume)), nil
}

func (s *replaySpout) RestoreState(data []byte) error {
	s.buffered = nil
	s.inflight = map[int64]int64{}
	if data == nil {
		s.cursor = 0
		return nil
	}
	s.cursor = int64(binary.LittleEndian.Uint64(data)) - 1
	return nil
}

// seqSetBolt's state is the multiset of absorbed seqs, checkpointed in
// full: after a recovery the counts expose both loss (missing seq) and
// double-counting (count > 1) directly.
type seqSetBolt struct {
	mu   sync.Mutex
	task int32
	seen map[int64]int64
}

func (b *seqSetBolt) Prepare(ctx *TaskContext) {
	b.mu.Lock()
	b.task = ctx.TaskID
	if b.seen == nil {
		b.seen = map[int64]int64{}
	}
	b.mu.Unlock()
}
func (b *seqSetBolt) Cleanup() {}
func (b *seqSetBolt) Execute(tp *tuple.Tuple, _ *Collector) {
	b.mu.Lock()
	b.seen[tp.Int(0)]++
	b.mu.Unlock()
}

func (b *seqSetBolt) SnapshotState() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	seqs := make([]int64, 0, len(b.seen))
	for seq := range b.seen {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := binary.LittleEndian.AppendUint64(nil, uint64(len(seqs)))
	for _, seq := range seqs {
		out = binary.LittleEndian.AppendUint64(out, uint64(seq))
		out = binary.LittleEndian.AppendUint64(out, uint64(b.seen[seq]))
	}
	return out, nil
}

func (b *seqSetBolt) RestoreState(data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seen = map[int64]int64{}
	if data == nil {
		return nil
	}
	n := binary.LittleEndian.Uint64(data)
	off := 8
	for i := uint64(0); i < n; i++ {
		seq := int64(binary.LittleEndian.Uint64(data[off:]))
		b.seen[seq] = int64(binary.LittleEndian.Uint64(data[off+8:]))
		off += 16
	}
	return nil
}

func (b *seqSetBolt) snapshotSeen() (int32, map[int64]int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int64]int64, len(b.seen))
	for k, v := range b.seen {
		out[k] = v
	}
	return b.task, out
}

// TestReliableCheckpointRecoveryExactlyOnce is the reliable-mode recovery
// gate: acking AND checkpointing on, a worker crashed mid-stream. Records
// in flight (emitted but unacked) at snapshot time are part of the epoch's
// absorbed prefix; the restored run must deliver every seq to every
// surviving subscriber exactly once — a resume point lowered to the
// in-flight offsets would re-emit them past the fence and double-count.
func TestReliableCheckpointRecoveryExactlyOnce(t *testing.T) {
	const total = 1500
	store := snapshot.NewMemStore()
	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: 1})
	var mu sync.Mutex
	var bolts []*seqSetBolt
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &replaySpout{total: total, pace: 100 * time.Microsecond} }, 1)
	b.Bolt("fan", func() Bolt {
		sb := &seqSetBolt{}
		mu.Lock()
		bolts = append(bolts, sb)
		mu.Unlock()
		return sb
	}, 3).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 4, Network: net,
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		AckEnabled: true, AckTimeout: 2 * time.Second, MaxSpoutPending: 16,
		HeartbeatInterval:  10 * time.Millisecond,
		SuspectAfter:       60 * time.Millisecond,
		ConfirmAfter:       200 * time.Millisecond,
		CheckpointInterval: 3 * time.Millisecond,
		CheckpointTimeout:  30 * time.Millisecond,
		CheckpointStore:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().EpochsCompleted.Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if eng.Metrics().EpochsCompleted.Value() < 2 {
		t.Fatal("no epochs committed before the crash")
	}

	// Crash a worker hosting a fan task but neither the spout nor the
	// coordinator home (worker 0).
	spoutWorker := eng.assign.WorkerOf[eng.assign.TasksOf["src"][0]]
	var crash int32 = -1
	for _, tid := range eng.assign.TasksOf["fan"] {
		if w := eng.assign.WorkerOf[tid]; w != 0 && w != spoutWorker {
			crash = w
			break
		}
	}
	if crash < 0 {
		t.Fatal("no crashable fan worker")
	}
	net.Crash(crash)
	waitForEvent(t, eng, obs.EventWorkerDead, crash, 10*time.Second)
	waitForEvent(t, eng, obs.EventSnapshotRestored, 0, 10*time.Second)

	// Every surviving fan must converge to exactly {1..total}, once each.
	survivors := func() []*seqSetBolt {
		mu.Lock()
		defer mu.Unlock()
		var out []*seqSetBolt
		for _, sb := range bolts {
			task, _ := sb.snapshotSeen()
			if eng.assign.WorkerOf[task] != crash {
				out = append(out, sb)
			}
		}
		return out
	}()
	if len(survivors) == 0 {
		t.Fatal("test lost every fan task")
	}
	complete := func(sb *seqSetBolt) bool {
		_, seen := sb.snapshotSeen()
		if len(seen) < total {
			return false
		}
		for seq := int64(1); seq <= total; seq++ {
			if seen[seq] == 0 {
				return false
			}
		}
		return true
	}
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		done := 0
		for _, sb := range survivors {
			if complete(sb) {
				done++
			}
		}
		if done == len(survivors) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Settle, then assert exactness: no seq lost, none absorbed twice.
	time.Sleep(50 * time.Millisecond)
	for _, sb := range survivors {
		task, seen := sb.snapshotSeen()
		for seq := int64(1); seq <= total; seq++ {
			switch n := seen[seq]; {
			case n == 0:
				t.Fatalf("task %d lost seq %d after recovery", task, seq)
			case n > 1:
				t.Fatalf("task %d absorbed seq %d %d times (double-counted across restore)", task, seq, n)
			}
		}
		if len(seen) != total {
			t.Fatalf("task %d absorbed %d distinct seqs, want %d", task, len(seen), total)
		}
	}
}

// flakyLatestStore fails its first N Latest calls — a transient recovery-
// time IO error on an otherwise healthy store.
type flakyLatestStore struct {
	snapshot.Store
	mu       sync.Mutex
	failures int
	calls    int
}

func (s *flakyLatestStore) Latest() (int64, bool, error) {
	s.mu.Lock()
	s.calls++
	fail := s.failures > 0
	if fail {
		s.failures--
	}
	s.mu.Unlock()
	if fail {
		return 0, false, errors.New("transient read error")
	}
	return s.Store.Latest()
}

// TestRestoreRetriesTransientStoreError: a store.Latest error during
// recovery must defer the restore to the next tick, not silently reset
// every operator as if nothing had ever committed.
func TestRestoreRetriesTransientStoreError(t *testing.T) {
	store := &flakyLatestStore{Store: snapshot.NewMemStore(), failures: 3}
	j := newCkptJournal()
	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: 1})
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &steadySpout{} }, 1)
	b.Bolt("fan", func() Bolt { return &countingBolt{j: j} }, 3).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 4, Network: net,
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		HeartbeatInterval:  10 * time.Millisecond,
		SuspectAfter:       60 * time.Millisecond,
		ConfirmAfter:       200 * time.Millisecond,
		CheckpointInterval: 3 * time.Millisecond,
		CheckpointTimeout:  30 * time.Millisecond,
		CheckpointStore:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().EpochsCompleted.Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if eng.Metrics().EpochsCompleted.Value() < 2 {
		t.Fatal("no epochs committed before the crash")
	}
	// Arm the failures now so steady-state ticks haven't consumed them.
	store.mu.Lock()
	store.failures = 3
	store.mu.Unlock()

	net.Crash(1)
	waitForEvent(t, eng, obs.EventWorkerDead, 1, 10*time.Second)
	waitForEvent(t, eng, obs.EventSnapshotRestored, 0, 10*time.Second)

	// The restore must have come from the committed epoch, not a reset.
	j.mu.Lock()
	restores := make(map[int32]int64, len(j.restores))
	for k, v := range j.restores {
		restores[k] = v
	}
	j.mu.Unlock()
	checked := 0
	for _, tid := range eng.assign.TasksOf["fan"] {
		if eng.assign.WorkerOf[tid] == 1 {
			continue
		}
		checked++
		v, ok := restores[tid]
		if !ok {
			t.Fatalf("surviving task %d was not restored (restores=%v)", tid, restores)
		}
		if v < 0 {
			t.Fatalf("task %d reset to initial state: transient Latest error treated as empty store", tid)
		}
	}
	if checked == 0 {
		t.Fatal("test lost every stateful task")
	}
	store.mu.Lock()
	calls, remaining := store.calls, store.failures
	store.mu.Unlock()
	if remaining != 0 || calls < 4 {
		t.Fatalf("restore did not retry through the failures (calls=%d, unconsumed=%d)", calls, remaining)
	}
}

// pacedSpout emits 0..n-1 unreliably with a fixed pace, then exits.
type pacedSpout struct {
	n    int
	pace time.Duration
	i    int
}

func (s *pacedSpout) Open(*TaskContext) {}
func (s *pacedSpout) Close()            {}
func (s *pacedSpout) Next(c *Collector) bool {
	if s.i >= s.n {
		return false
	}
	c.Emit(int64(s.i))
	s.i++
	if s.pace > 0 {
		time.Sleep(s.pace)
	}
	return true
}

// TestRestoreAfterSourceExhausted: a bounded source draining stops new
// epochs (sourceGone), but a worker death afterwards must still restore the
// surviving stateful tasks from the last committed snapshot — recovery
// outranks the bounded-run wind-down, and the exited spout task is excused
// from the restore's expected set instead of wedging it.
func TestRestoreAfterSourceExhausted(t *testing.T) {
	store := snapshot.NewMemStore()
	j := newCkptJournal()
	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: 1})
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &pacedSpout{n: 4000, pace: 50 * time.Microsecond} }, 1)
	b.Bolt("fan", func() Bolt { return &countingBolt{j: j} }, 3).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 4, Network: net,
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		HeartbeatInterval:  10 * time.Millisecond,
		SuspectAfter:       60 * time.Millisecond,
		ConfirmAfter:       200 * time.Millisecond,
		CheckpointInterval: 2 * time.Millisecond,
		CheckpointTimeout:  20 * time.Millisecond,
		CheckpointStore:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().EpochsCompleted.Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if eng.Metrics().EpochsCompleted.Value() < 2 {
		t.Fatal("no epochs committed while the source was live")
	}
	eng.WaitSpouts() // bounded source drains; coordinator goes sourceGone

	net.Crash(1)
	waitForEvent(t, eng, obs.EventWorkerDead, 1, 10*time.Second)
	waitForEvent(t, eng, obs.EventSnapshotRestored, 0, 10*time.Second)
	if eng.Metrics().Restores.Value() == 0 {
		t.Fatal("no restore after source exit")
	}
	j.mu.Lock()
	restores := make(map[int32]int64, len(j.restores))
	for k, v := range j.restores {
		restores[k] = v
	}
	j.mu.Unlock()
	checked := 0
	for _, tid := range eng.assign.TasksOf["fan"] {
		if eng.assign.WorkerOf[tid] == 1 {
			continue
		}
		checked++
		v, ok := restores[tid]
		if !ok {
			t.Fatalf("surviving task %d was not restored (restores=%v)", tid, restores)
		}
		if v < 0 {
			t.Fatalf("task %d reset instead of restoring committed state", tid)
		}
	}
	if checked == 0 {
		t.Fatal("test lost every stateful task")
	}
}
