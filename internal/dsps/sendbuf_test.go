package dsps

import (
	"bytes"
	"sync"
	"testing"

	"whale/internal/tuple"
)

// TestSendBufAliasing is the buffer-aliasing regression test: a buffer still
// referenced (refs > 0) must never be handed out again, so the next pooled
// encode cannot clobber a message that is still queued on a flow link.
func TestSendBufAliasing(t *testing.T) {
	held := acquireSendBuf()
	held.b = append(held.b[:0], bytes.Repeat([]byte{0xAA}, 64)...)
	want := append([]byte(nil), held.b...)

	// Drain the pool into a second acquire: whatever comes out must not
	// share storage with the held buffer.
	for i := 0; i < 16; i++ {
		other := acquireSendBuf()
		if &other.b == &held.b || (cap(other.b) > 0 && cap(held.b) > 0 && &other.b[:1][0] == &held.b[:1][0]) {
			t.Fatal("pool handed out a buffer that is still referenced")
		}
		other.b = append(other.b[:0], bytes.Repeat([]byte{0x55}, 128)...)
		other.release()
	}
	if !bytes.Equal(held.b, want) {
		t.Fatalf("held buffer clobbered by subsequent pooled encodes: %x", held.b[:8])
	}
	held.release()
}

// TestSendBufRefcount exercises the fan-out protocol: with n retained
// references the storage survives n-1 releases and is recycled after the
// last one.
func TestSendBufRefcount(t *testing.T) {
	sb := acquireSendBuf()
	sb.b = append(sb.b[:0], "payload"...)
	sb.retain(2) // 3 refs total: owner + two destinations
	sb.release()
	sb.release()
	if got := string(sb.b); got != "payload" {
		t.Fatalf("buffer reset before last release: %q", got)
	}
	sb.release() // last reference: recycled
	// nil release must be a no-op (relay path passes nil).
	var none *sendBuf
	none.release()
	none.retain(3)
}

// TestSendBufConcurrent hammers acquire/encode/decode/release from many
// goroutines; run under -race by `make race`, it is the concurrency gate for
// the pooled encode path.
func TestSendBufConcurrent(t *testing.T) {
	const goroutines = 8
	const rounds = 400
	tp := &tuple.Tuple{Stream: "s", ID: 1, Values: []tuple.Value{int64(7), "k"}}
	payload, err := tuple.AppendTuple(nil, tp)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := tuple.WorkerMessage{Kind: tuple.KindWorkerMessage, DstIDs: []int32{int32(g)}, Payload: payload}
			var scratch tuple.WorkerMessage
			for i := 0; i < rounds; i++ {
				sb := acquireSendBuf()
				sb.b = tuple.AppendWorkerMessage(sb.b[:0], &msg)
				// Fan out to three pretend destinations, then release all.
				sb.retain(2)
				if _, err := tuple.DecodeWorkerMessageInto(&scratch, sb.b); err != nil {
					t.Errorf("goroutine %d round %d: %v", g, i, err)
					sb.release()
					sb.release()
					sb.release()
					return
				}
				if len(scratch.DstIDs) != 1 || scratch.DstIDs[0] != int32(g) {
					t.Errorf("goroutine %d round %d: cross-goroutine clobber %v", g, i, scratch.DstIDs)
				}
				sb.release()
				sb.release()
				sb.release()
			}
		}(g)
	}
	wg.Wait()
}
