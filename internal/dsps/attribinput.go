package dsps

import (
	"time"

	"whale/internal/obs"
	"whale/internal/obs/attrib"
	"whale/internal/rdma"
)

// AttribInput captures the engine's stall and utilization signals as a
// bottleneck-analyzer input (internal/obs/attrib). The window is the
// engine's lifetime so far; every counter folded here is cumulative over
// it, so the capture is cheap and may run while the topology is hot.
//
// The live engine emits three worker-component roles: executors (sampled
// overflow residency vs an executed-rate M/D/1 profile), sources (send
// retry/replay backoff) and RDMA rings (ring-full blocking). Relay
// congestion surfaces through the per-link samples; the simulated cluster
// additionally models relays as explicit components.
func (e *Engine) AttribInput() attrib.Input {
	in := attrib.Input{WindowNS: time.Now().UnixNano() - e.startNS}
	winSec := float64(in.WindowNS) / 1e9

	for _, st := range obs.Stages {
		in.Stages = appendStageSample(in.Stages, e.obs.Tracer, st)
	}
	for _, st := range obs.StallStages {
		in.Stages = appendStageSample(in.Stages, e.obs.Tracer, st)
	}

	for _, ls := range e.LinkStats() {
		in.Links = append(in.Links, attrib.LinkSample{
			From: ls.From, To: ls.To,
			CreditWaitNS: ls.CreditWaitNS, QueueWaitNS: ls.QueueWaitNS,
			PausedNS: ls.PausedNS, ThrottledNS: ls.ThrottledNS,
			Sent: ls.Sent, Queued: ls.Queued,
		})
	}

	for _, w := range e.workers {
		var busyNS, executed int64
		var qlen int
		for _, ex := range w.execMap() {
			s := ex.ops.execNS.Snapshot()
			busyNS += s.Sum
			executed += ex.ops.executed.Value()
			qlen += len(ex.in) + ex.overflowLen()
		}
		ws := attrib.WorkerSample{
			Worker: w.id, Role: attrib.RoleExecutor,
			StallNS: w.execQueueWaitNS.Load(), BusyNS: busyNS,
			QueueLen: float64(qlen),
		}
		if winSec > 0 && busyNS > 0 && executed > 0 {
			ws.ArrivalPerSec = float64(executed) / winSec
			ws.ServicePerSec = float64(executed) / (float64(busyNS) / 1e9)
		}
		in.Workers = append(in.Workers, ws)

		if rn := w.replayNS.Load(); rn > 0 {
			in.Workers = append(in.Workers, attrib.WorkerSample{
				Worker: w.id, Role: attrib.RoleSource, StallNS: rn,
			})
		}
		if cs, ok := w.tr.(interface{ ChannelStats() rdma.StatsSnapshot }); ok {
			snap := cs.ChannelStats()
			if snap.BlockedNS > 0 {
				rs := attrib.WorkerSample{
					Worker: w.id, Role: attrib.RoleRing,
					StallNS: snap.BlockedNS, BusyNS: snap.CQPollNS,
				}
				if occ, ok := w.tr.(interface{ RingOccupancy() int }); ok {
					rs.QueueLen = float64(occ.RingOccupancy())
				}
				in.Workers = append(in.Workers, rs)
			}
		}
	}
	return in
}

// appendStageSample appends one tracer stage histogram if it saw samples.
func appendStageSample(dst []attrib.StageSample, t *obs.Tracer, st obs.Stage) []attrib.StageSample {
	h := t.StageHist(st)
	if h == nil {
		return dst
	}
	s := h.Snapshot()
	if s.Count == 0 {
		return dst
	}
	return append(dst, attrib.StageSample{
		Stage: string(st), Count: s.Count, SumNS: s.Sum, P99NS: s.P99,
	})
}

// BottleneckReport runs the analyzer over the engine's current profile.
func (e *Engine) BottleneckReport() attrib.Report {
	return attrib.Analyze(e.AttribInput())
}
