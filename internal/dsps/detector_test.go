package dsps

import (
	"testing"
	"time"

	"whale/internal/chaos"
	"whale/internal/obs"
	"whale/internal/transport"
)

// Unit tests for the heartbeat failure detector and the tree-repair path,
// driven through the chaos fault injector. The end-to-end story (noise +
// partition + crash in one run) lives in internal/chaos's soak test.

// steadySpout emits forever at a gentle pace, keeping the data plane busy
// until the engine stops it.
type steadySpout struct{ i int64 }

func (s *steadySpout) Open(*TaskContext) {}
func (s *steadySpout) Next(c *Collector) bool {
	c.Emit(s.i, "tick")
	s.i++
	time.Sleep(100 * time.Microsecond)
	return true
}
func (s *steadySpout) Close() {}

// startDetectorTopology runs an all-grouping topology over a chaos-wrapped
// inproc network with the failure detector enabled.
func startDetectorTopology(t *testing.T, workers int) (*Engine, *chaos.Net) {
	t.Helper()
	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: 1})
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &steadySpout{} }, 1)
	b.Bolt("fan", func() Bolt { return sinkAckBolt{} }, workers-1).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: workers, Network: net,
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      60 * time.Millisecond,
		ConfirmAfter:      200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, net
}

func waitForEvent(t *testing.T, eng *Engine, kind string, worker int32, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		for _, ev := range eng.Obs().Events.Recent(0) {
			if ev.Kind == kind && ev.Worker == worker {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("event %s(worker %d) not observed within %v", kind, worker, within)
}

func TestDetectorSuspectThenRecover(t *testing.T) {
	eng, net := startDetectorTopology(t, 4)
	defer eng.Stop()

	// Cut worker 3 off from the monitor only: it goes quiet at worker 0
	// but must come back before the confirmation timeout.
	net.Partition(0, 3)
	waitForEvent(t, eng, obs.EventWorkerSuspect, 3, 5*time.Second)
	net.Heal(0, 3)
	waitForEvent(t, eng, obs.EventWorkerRecover, 3, 5*time.Second)

	if dead := eng.DeadWorkers(); len(dead) != 0 {
		t.Fatalf("transient partition confirmed workers dead: %v", dead)
	}
	if n := eng.Metrics().WorkerFailures.Value(); n != 0 {
		t.Fatalf("WorkerFailures=%d after a healed partition", n)
	}
}

func TestDetectorConfirmRepairsTreeAndFencesSends(t *testing.T) {
	eng, net := startDetectorTopology(t, 4)
	defer eng.Stop()

	// The d*=2 tree over members {1,2,3} is 0:[1,2], 1:[3]; killing
	// interior node 1 orphans the {3} subtree.
	net.Crash(1)
	waitForEvent(t, eng, obs.EventWorkerDead, 1, 10*time.Second)
	waitForEvent(t, eng, obs.EventSwitchComplete, 0, 10*time.Second)

	if dead := eng.DeadWorkers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadWorkers=%v, want [1]", dead)
	}
	if n := eng.Metrics().WorkerFailures.Value(); n != 1 {
		t.Fatalf("WorkerFailures=%d, want 1", n)
	}
	tr, version, ok := eng.ActiveTree(0)
	if !ok {
		t.Fatal("no active tree after repair")
	}
	if version != 2 {
		t.Fatalf("active version=%d, want 2", version)
	}
	if tr.Contains(1) {
		nodes, parents := tr.Flatten()
		t.Fatalf("repaired tree still contains dead worker 1: %v %v", nodes, parents)
	}
	if err := tr.Validate(2); err != nil {
		t.Fatalf("repaired tree invalid: %v", err)
	}

	// Post-confirmation traffic to the dead worker is suppressed, not
	// retried: the fence holds while the spout keeps emitting.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Metrics().SendsSuppressed.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if eng.Metrics().SendsSuppressed.Value() == 0 {
		t.Fatal("no sends suppressed after worker 1 was confirmed dead")
	}
}

func TestDetectorDisabledByDefault(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", mkSpout, 1)
	b.Bolt("sink", func() Bolt { return sinkAckBolt{} }, 2).Shuffle("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{Workers: 2, Network: transport.NewInprocNetwork(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if eng.detector != nil {
		t.Fatal("detector running without HeartbeatInterval")
	}
	if dead := eng.DeadWorkers(); dead != nil {
		t.Fatalf("DeadWorkers=%v without a detector", dead)
	}
}
