package dsps

import (
	"strings"
	"testing"
	"time"
)

// autoscaleTestConfig is the band the decision-table tests run under:
// confirm after 2 observations, cooldown 1s, step cap 4, clamp [1, 64].
func autoscaleTestConfig() AutoscaleConfig {
	return AutoscaleConfig{
		Interval: 100 * time.Millisecond,
		RhoHigh:  0.8,
		RhoLow:   0.3,
		Cooldown: time.Second,
		MaxStep:  4,
	}.withDefaults()
}

// obsAt builds one observation n seconds into a synthetic run.
func obsAt(sec int64, lambda, te float64, par int) opObservation {
	return opObservation{NowNS: sec * 1e9, Lambda: lambda, Te: te, Par: par}
}

// TestAutoscaleDecisionTable drives the pure decision function over
// (arrival rate, service time, parallelism) points. Each case starts from
// fresh hysteresis state and repeats the same observation `repeat` times;
// the final decision is asserted.
func TestAutoscaleDecisionTable(t *testing.T) {
	cfg := autoscaleTestConfig()
	cases := []struct {
		name       string
		lambda, te float64
		par        int
		repeat     int
		action     string
		to         int
	}{
		// ρ = λ·te/par.
		{"in-band holds", 500, 0.001, 1, 3, AutoscaleHold, 1},
		{"overload needs confirmation", 2000, 0.001, 1, 1, AutoscaleHold, 1},
		{"confirmed overload scales up", 2000, 0.001, 1, 2, AutoscaleUp, 4},
		// Sized to mid-band ρ=0.55: ceil(2000·0.001/0.55) = 4.
		{"target is the M/D/1 mid-band size", 2000, 0.001, 2, 2, AutoscaleUp, 4},
		// ceil(20000·0.001/0.55) = 37, but MaxStep caps the move at +4.
		{"max-step bounds the jump", 20000, 0.001, 2, 2, AutoscaleUp, 6},
		// ρ=0.295 is just under the band, but the mid-band size rounds back
		// up to the current count — a confirmed low streak still sheds one.
		{"borderline light load still sheds one", 590, 0.001, 2, 2, AutoscaleDown, 1},
		{"idle needs confirmation", 0, 0.001, 4, 1, AutoscaleHold, 4},
		{"confirmed idle scales down", 0, 0.001, 4, 2, AutoscaleDown, 1},
		// ceil(900·0.001/0.55) = 2.
		{"light load sizes down to model target", 900, 0.001, 8, 2, AutoscaleDown, 4},
		{"min parallelism floors the shrink", 100, 0.0001, 1, 5, AutoscaleHold, 1},
		{"zero lambda without any te sample holds", 0, 0, 3, 5, AutoscaleHold, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := &opScaleState{}
			var d AutoscaleDecision
			for i := 0; i < tc.repeat; i++ {
				d = st.decide("op", obsAt(int64(i), tc.lambda, tc.te, tc.par), cfg)
			}
			if d.Action != tc.action || d.To != tc.to {
				t.Fatalf("decide(λ=%g te=%g par=%d x%d) = %s -> %d (%s), want %s -> %d",
					tc.lambda, tc.te, tc.par, tc.repeat, d.Action, d.To, d.Reason, tc.action, tc.to)
			}
		})
	}
}

// TestAutoscaleSlotClamp holds fields-grouped operators at the 64-slot
// bound: a confirmed overload at NumSlots parallelism must not grow.
func TestAutoscaleSlotClamp(t *testing.T) {
	cfg := autoscaleTestConfig()
	st := &opScaleState{}
	var d AutoscaleDecision
	for i := 0; i < 3; i++ {
		o := obsAt(int64(i), 500_000, 0.001, NumSlots)
		o.MaxPar = NumSlots // what the controller sets for fields-grouped ops
		d = st.decide("agg", o, cfg)
	}
	if d.Action != AutoscaleHold || d.To != NumSlots {
		t.Fatalf("overload at the slot bound: %s -> %d, want hold at %d", d.Action, d.To, NumSlots)
	}
	if !strings.Contains(d.Reason, "clamped") {
		t.Fatalf("reason %q does not name the clamp", d.Reason)
	}
	// One task below the bound, the same overload grows exactly to it.
	st = &opScaleState{}
	for i := 0; i < 2; i++ {
		o := obsAt(int64(i), 500_000, 0.001, NumSlots-1)
		o.MaxPar = NumSlots
		d = st.decide("agg", o, cfg)
	}
	if d.Action != AutoscaleUp || d.To != NumSlots {
		t.Fatalf("overload below the slot bound: %s -> %d, want scale-up to %d", d.Action, d.To, NumSlots)
	}
}

// TestAutoscaleCooldownSuppression confirms one action opens a cooldown
// window during which further confirmed decisions hold, and that the
// window expiring re-enables action.
func TestAutoscaleCooldownSuppression(t *testing.T) {
	cfg := autoscaleTestConfig() // cooldown 1s
	st := &opScaleState{}
	var d AutoscaleDecision
	for i := 0; i < 2; i++ {
		d = st.decide("op", obsAt(int64(i), 2000, 0.001, 1), cfg)
	}
	if d.Action != AutoscaleUp {
		t.Fatalf("setup: expected scale-up, got %s (%s)", d.Action, d.Reason)
	}
	st.lastActionNS = d.TimeNS // what the controller records on success
	st.highStreak, st.lowStreak = 0, 0

	// Still overloaded at the new parallelism: rebuild the confirmation
	// streak, then evaluate 0.4s after the action — inside the window.
	st.decide("op", obsAt(1, 2000, 0.001, 2), cfg)
	st.decide("op", obsAt(1, 2000, 0.001, 2), cfg)
	d = st.decide("op", opObservation{NowNS: 1_400_000_000, Lambda: 2000, Te: 0.001, Par: 2}, cfg)
	if d.Action != AutoscaleHold || !strings.Contains(d.Reason, "cooldown") {
		t.Fatalf("inside cooldown: %s (%s), want suppressed hold", d.Action, d.Reason)
	}
	// Past the window the pent-up decision fires.
	d = st.decide("op", opObservation{NowNS: 3 * 1e9, Lambda: 2000, Te: 0.001, Par: 2}, cfg)
	if d.Action != AutoscaleUp {
		t.Fatalf("after cooldown: %s (%s), want scale-up", d.Action, d.Reason)
	}
}

// TestAutoscaleBackoffAfterAbort exercises the failure path: an aborted or
// rejected plan suppresses the operator for an escalating backoff.
func TestAutoscaleBackoffAfterAbort(t *testing.T) {
	cfg := autoscaleTestConfig() // cooldown (= base backoff) 1s
	st := &opScaleState{}
	st.noteFailure(10*1e9, cfg.Cooldown)
	if st.backoff != time.Second {
		t.Fatalf("first failure backoff = %v, want 1s", st.backoff)
	}

	confirm := func(nowSec int64) AutoscaleDecision {
		var d AutoscaleDecision
		for i := 0; i < 2; i++ {
			d = st.decide("op", obsAt(nowSec, 2000, 0.001, 1), cfg)
		}
		return d
	}
	if d := confirm(10); d.Action != AutoscaleHold || !strings.Contains(d.Reason, "backing off") {
		t.Fatalf("inside backoff: %s (%s), want suppressed hold", d.Action, d.Reason)
	}
	// A second failure doubles the window; a third doubles it again.
	st.noteFailure(11*1e9, cfg.Cooldown)
	if st.backoff != 2*time.Second {
		t.Fatalf("second failure backoff = %v, want 2s", st.backoff)
	}
	st.noteFailure(13*1e9, cfg.Cooldown)
	if st.backoff != 4*time.Second {
		t.Fatalf("third failure backoff = %v, want 4s", st.backoff)
	}
	if d := confirm(16); d.Action != AutoscaleHold {
		t.Fatalf("still inside escalated backoff: %s (%s)", d.Action, d.Reason)
	}
	// Past the window the controller acts again.
	if d := confirm(18); d.Action != AutoscaleUp {
		t.Fatalf("after backoff: %s (%s), want scale-up", d.Action, d.Reason)
	}
	// The escalation caps at 8x the cooldown.
	for i := 0; i < 10; i++ {
		st.noteFailure(20*1e9, cfg.Cooldown)
	}
	if st.backoff != 8*time.Second {
		t.Fatalf("backoff cap = %v, want 8s", st.backoff)
	}
}

// TestAutoscaleIdleUsesLastServiceTime: an interval with no executions
// (λ=0, no te sample) still sizes down using the remembered service time.
func TestAutoscaleIdleUsesLastServiceTime(t *testing.T) {
	cfg := autoscaleTestConfig()
	st := &opScaleState{}
	// Warm up the te memory with an in-band observation.
	d := st.decide("op", obsAt(0, 500, 0.001, 1), cfg)
	if d.Action != AutoscaleHold {
		t.Fatalf("warmup: %s, want hold", d.Action)
	}
	var got AutoscaleDecision
	for i := 1; i <= 2; i++ {
		got = st.decide("op", obsAt(int64(i), 0, 0, 4), cfg)
	}
	if got.Action != AutoscaleDown || got.To != 1 {
		t.Fatalf("idle intervals: %s -> %d (%s), want scale-down to 1", got.Action, got.To, got.Reason)
	}
	if got.Te != 0.001 {
		t.Fatalf("idle decision te = %g, want remembered 0.001", got.Te)
	}
}
