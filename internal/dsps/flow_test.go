package dsps

import (
	"testing"
	"time"

	"whale/internal/chaos"
	"whale/internal/obs"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// TestCreditFlowAllGroupingExactlyOnce runs the full multicast path under a
// small credit window: delivery must stay exactly-once, grants must actually
// flow, and after quiescence every link's outstanding debt must converge to
// zero (the cumulative rebroadcast heals any grant lost to shutdown races).
func TestCreditFlowAllGroupingExactlyOnce(t *testing.T) {
	const n, parallelism, workers = 300, 8, 4
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: n, keys: 10} }, 1)
	b.Bolt("match", func() Bolt { return &captureBolt{cap: cap} }, parallelism).All("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{
		Workers: workers, Network: transport.NewInprocNetwork(0),
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		CreditWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	if !eng.Drain(15 * time.Second) {
		eng.Stop()
		t.Fatal("engine did not drain")
	}
	// Outstanding converges to zero while the engine is still live: grants
	// for everything drained are either already merged or re-delivered by
	// the periodic cumulative rebroadcast.
	deadline := time.Now().Add(5 * time.Second)
	settled := false
	for !settled && time.Now().Before(deadline) {
		settled = true
		for _, ls := range eng.LinkStats() {
			if ls.Outstanding != 0 || ls.Queued != 0 {
				settled = false
			}
		}
		if !settled {
			time.Sleep(5 * time.Millisecond)
		}
	}
	stats := eng.LinkStats()
	eng.Stop()
	if !settled {
		t.Fatalf("links never settled: %+v", stats)
	}
	if len(stats) == 0 {
		t.Fatal("no flow-controlled links created")
	}
	for _, ls := range stats {
		if ls.Shed != 0 {
			t.Fatalf("link %d->%d shed %d tuples under ShedBlock", ls.From, ls.To, ls.Shed)
		}
	}
	cap.exactlyOnce(t, eng.assign.TasksOf["match"], n)
	if eng.Metrics().CreditGrants.Value() == 0 {
		t.Fatal("no credit grants were sent")
	}
	if eng.Metrics().TuplesShed.Value() != 0 {
		t.Fatalf("shed %d tuples under ShedBlock", eng.Metrics().TuplesShed.Value())
	}
}

// runShedTopology drives n fast-emitted tuples at one slow remote bolt task
// through a tiny credit window and link queue, so the link must overflow.
func runShedTopology(t *testing.T, n int, policy ShedPolicy) (*Engine, *capture) {
	t.Helper()
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: n, keys: 4} }, 1)
	b.Bolt("sink", func() Bolt { return &slowBolt{cap: cap, delay: 2 * time.Millisecond} }, 1).Global("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{
		Workers: 2, Network: transport.NewInprocNetwork(0), Comm: WorkerOriented,
		// Admission-time grants: the slow bolt throttles the link only
		// once its small input queue is full.
		CreditWindow: 4, LinkQueueCap: 8, ExecutorQueueCap: 2, ShedPolicy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	if !eng.Drain(15 * time.Second) {
		eng.Stop()
		t.Fatal("engine did not drain")
	}
	eng.Stop()
	return eng, cap
}

// TestShedNewestAccountsEveryDrop: under ShedNewest, overflow drops are
// counted exactly — delivered plus shed equals emitted, nothing vanishes
// silently.
func TestShedNewestAccountsEveryDrop(t *testing.T) {
	const n = 400
	eng, cap := runShedTopology(t, n, ShedNewest)
	shed := eng.Metrics().TuplesShed.Value()
	if shed == 0 {
		t.Fatal("overload never shed: the test did not exercise the policy")
	}
	if got := int64(cap.total()) + shed; got != n {
		t.Fatalf("delivered %d + shed %d = %d, want %d", cap.total(), shed, got, n)
	}
	// Per-link accounting matches the global counter.
	var linkShed int64
	for _, ls := range eng.LinkStats() {
		linkShed += ls.Shed
	}
	if linkShed != shed {
		t.Fatalf("links account %d shed, metrics say %d", linkShed, shed)
	}
}

// TestShedOldestKeepsNewest: ShedOldest evicts from the queue head, so the
// most recent tuples survive — in particular the final one emitted.
func TestShedOldestKeepsNewest(t *testing.T) {
	const n = 400
	eng, cap := runShedTopology(t, n, ShedOldest)
	shed := eng.Metrics().TuplesShed.Value()
	if shed == 0 {
		t.Fatal("overload never shed: the test did not exercise the policy")
	}
	if got := int64(cap.total()) + shed; got != n {
		t.Fatalf("delivered %d + shed %d, want total %d", cap.total(), shed, n)
	}
	// The last emitted tuple entered a full queue by evicting the oldest —
	// it must have been delivered, not dropped.
	task := eng.assign.TasksOf["sink"][0]
	cap.mu.Lock()
	sawLast := false
	for _, seq := range cap.byTask[task] {
		if seq == n-1 {
			sawLast = true
		}
	}
	cap.mu.Unlock()
	if !sawLast {
		t.Fatalf("ShedOldest dropped the newest tuple (seq %d)", n-1)
	}
}

// TestAckedTuplesNeverShed: with acking on, tracked tuples always block
// regardless of the shed policy — zero loss end to end, zero shed.
func TestAckedTuplesNeverShed(t *testing.T) {
	const n = 150
	spout := &reliableSpout{n: n}
	eng := startAckTopology(t, spout, &ackingBolt{forward: true}, Config{
		Comm:         WorkerOriented,
		CreditWindow: 4, LinkQueueCap: 8, ExecutorQueueCap: 4, ShedPolicy: ShedNewest,
		MaxSpoutPending: 32,
	})
	eng.WaitSpouts()
	eng.Stop()
	acked, failed := spout.counts()
	if acked != n || failed != 0 {
		t.Fatalf("acked=%d failed=%d, want %d/0", acked, failed, n)
	}
	if shed := eng.Metrics().TuplesShed.Value(); shed != 0 {
		t.Fatalf("shed %d acked tuples", shed)
	}
}

// stallBolt blocks a long time on its first tuple, then runs at full speed:
// one continuous credit starvation, then recovery.
type stallBolt struct {
	cap     *capture
	stall   time.Duration
	stalled bool
	ctx     *TaskContext
}

func (b *stallBolt) Prepare(ctx *TaskContext) { b.ctx = ctx }
func (b *stallBolt) Execute(tp *tuple.Tuple, _ *Collector) {
	if !b.stalled {
		b.stalled = true
		time.Sleep(b.stall)
	}
	b.cap.record(b.ctx.TaskID, tp.Int(0))
}
func (b *stallBolt) Cleanup() {}

// TestLinkPauseDegradeReopen drives one link through the full overload
// lifecycle: credit starvation pauses it, a sustained pause reports the
// subscriber degraded through the failure detector (advisory — never
// fencing), and recovery reopens the link and clears the mark.
func TestLinkPauseDegradeReopen(t *testing.T) {
	scope := obs.NewScope(obs.Config{})
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 300, keys: 4} }, 1)
	b.Bolt("sink", func() Bolt { return &stallBolt{cap: cap, stall: 400 * time.Millisecond} }, 1).Global("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{
		Workers: 2, Network: transport.NewInprocNetwork(0), Comm: WorkerOriented,
		// Small executor queue: grants are issued on admission, so the
		// stalled bolt must fill its input queue before the sender starves.
		CreditWindow: 4, LinkQueueCap: 16, ExecutorQueueCap: 2,
		PauseAfter: 30 * time.Millisecond, DegradedAfter: 60 * time.Millisecond,
		CreditTimeout:     5 * time.Second,
		HeartbeatInterval: 20 * time.Millisecond, SuspectAfter: time.Minute,
		Obs: scope,
	})
	if err != nil {
		t.Fatal(err)
	}
	sender := eng.assign.WorkerOf[eng.assign.TasksOf["src"][0]]
	slow := eng.assign.WorkerOf[eng.assign.TasksOf["sink"][0]]
	if sender == slow {
		eng.Stop()
		t.Fatalf("spout and sink landed on the same worker (%d)", sender)
	}

	// The degraded mark must appear while the bolt is stalled...
	deadline := time.Now().Add(10 * time.Second)
	for len(eng.DegradedWorkers()) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := eng.DegradedWorkers(); len(got) != 1 || got[0] != slow {
		eng.Stop()
		t.Fatalf("degraded workers = %v, want [%d]", got, slow)
	}
	// ...and must never leak into the fencing state machine.
	if len(eng.DeadWorkers()) != 0 {
		eng.Stop()
		t.Fatal("overload pause fenced a live worker")
	}

	eng.WaitSpouts()
	if !eng.Drain(15 * time.Second) {
		eng.Stop()
		t.Fatal("engine did not drain after the stall")
	}
	// Recovery: the link reopens and the degraded mark clears.
	deadline = time.Now().Add(5 * time.Second)
	for len(eng.DegradedWorkers()) != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := eng.DegradedWorkers(); len(got) != 0 {
		eng.Stop()
		t.Fatalf("degraded mark never cleared: %v", got)
	}
	eng.Stop()

	if eng.Metrics().LinkPauses.Value() == 0 {
		t.Fatal("no link pause recorded")
	}
	if cap.total() != 300 {
		t.Fatalf("delivered %d of 300 under ShedBlock", cap.total())
	}
	// The event log tells the story in order: paused -> degraded -> open.
	var seq []string
	for _, ev := range scope.Events.Recent(0) {
		switch ev.Kind {
		case obs.EventLinkPaused, obs.EventWorkerDegraded, obs.EventLinkOpen:
			if ev.Kind == obs.EventLinkPaused && (ev.Worker != sender || ev.Peer != slow) {
				t.Fatalf("pause event endpoints %d->%d, want %d->%d", ev.Worker, ev.Peer, sender, slow)
			}
			if ev.Kind == obs.EventWorkerDegraded && ev.Worker != slow {
				t.Fatalf("degraded event names worker %d, want %d", ev.Worker, slow)
			}
			seq = append(seq, ev.Kind)
		}
	}
	want := []string{obs.EventLinkPaused, obs.EventWorkerDegraded, obs.EventLinkOpen}
	for i, k := range want {
		if i >= len(seq) || seq[i] != k {
			t.Fatalf("event sequence %v, want prefix %v", seq, want)
		}
	}
}

// TestBackpressureMetricsRegistered: the flow-control counters are visible
// through the observability registry under their documented names.
func TestBackpressureMetricsRegistered(t *testing.T) {
	scope := obs.NewScope(obs.Config{})
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 10, keys: 2} }, 1)
	b.Bolt("x", func() Bolt { return &captureBolt{cap: newCapture()} }, 2).All("src")
	topo, _ := b.Build()
	eng := runUntilDrained(t, topo, Config{
		Workers: 2, Network: transport.NewInprocNetwork(0), Comm: WorkerOriented,
		CreditWindow: 8, Obs: scope,
	})
	_ = eng
	snap := scope.Reg.Snapshot()
	for _, name := range []string{
		"dsps.credits_waited", "dsps.credit_wait_ns", "dsps.credit_timeouts",
		"dsps.credit_grants", "dsps.tuples_shed", "dsps.link_paused",
		"dsps.drain_timeouts",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("counter %q not registered (have %v)", name, snap.Counters)
		}
	}
	if snap.Counters["dsps.credit_grants"] == 0 {
		t.Fatal("dsps.credit_grants stayed zero through a flow-controlled run")
	}
}

// TestStopUnblocksSendRetryBackoff is the regression test for send-retry
// backoff being bounded by engine lifetime: with a severed link and a long
// retry schedule, Stop must interrupt the backoff wait instead of sleeping
// it out per queued send.
func TestStopUnblocksSendRetryBackoff(t *testing.T) {
	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: 1})
	net.Partition(0, 1)
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 20, keys: 2} }, 1)
	b.Bolt("sink", func() Bolt { return &captureBolt{cap: cap} }, 1).Global("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{
		Workers: 2, Network: net, Comm: WorkerOriented,
		CreditWindow: -1, // exercise the direct send path
		SendRetries:  10, SendRetryBase: 2 * time.Second,
		DrainTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	time.Sleep(100 * time.Millisecond) // let the send loop enter a backoff wait
	t0 := time.Now()
	eng.Stop()
	if elapsed := time.Since(t0); elapsed > 1500*time.Millisecond {
		t.Fatalf("Stop took %v; send retry backoff is not bounded by shutdown", elapsed)
	}
}

// TestDrainTimeoutSurfaced is the regression test for the once-dropped
// Drain result inside Stop: a drain that cannot finish in time must bump
// dsps.drain_timeouts and log a drain-timeout event instead of vanishing.
func TestDrainTimeoutSurfaced(t *testing.T) {
	scope := obs.NewScope(obs.Config{})
	cap := newCapture()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 8, keys: 2} }, 1)
	b.Bolt("sink", func() Bolt { return &slowBolt{cap: cap, delay: 100 * time.Millisecond} }, 1).Global("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{
		Workers: 2, Network: transport.NewInprocNetwork(0), Comm: WorkerOriented,
		DrainTimeout: 50 * time.Millisecond,
		Obs:          scope,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	eng.Stop() // 8 x 100ms of queued work cannot drain in 50ms
	if got := eng.Metrics().DrainTimeouts.Value(); got != 1 {
		t.Fatalf("drain timeouts = %d, want 1", got)
	}
	found := false
	for _, ev := range scope.Events.Recent(0) {
		if ev.Kind == obs.EventDrainTimeout {
			found = true
		}
	}
	if !found {
		t.Fatal("no drain-timeout event logged")
	}
}

// TestCreditGrantClampAndMerge: unit checks on the grant-merge rules — a
// replayed or corrupt cumulative grant can never inflate the window beyond
// what was charged, and stale grants never regress it.
func TestCreditGrantClampAndMerge(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return &countSpout{n: 0, keys: 1} }, 1)
	b.Bolt("x", func() Bolt { return &captureBolt{cap: newCapture()} }, 1).Global("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{
		Workers: 2, Network: transport.NewInprocNetwork(0), Comm: WorkerOriented,
		CreditWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	var w *worker
	for _, cand := range eng.workers {
		if cand.fc != nil {
			w = cand
			break
		}
	}
	if w == nil {
		t.Fatal("flow control not enabled")
	}
	l := w.fc.linkTo((w.id + 1) % 2)
	l.mu.Lock()
	l.sent = 10
	l.mu.Unlock()
	w.fc.onGrant(l.dst, 25) // corrupt: more than ever charged
	l.mu.Lock()
	granted := l.granted
	l.mu.Unlock()
	if granted != 10 {
		t.Fatalf("granted = %d after over-grant, want clamp to sent (10)", granted)
	}
	w.fc.onGrant(l.dst, 3) // stale duplicate: must not regress
	l.mu.Lock()
	granted = l.granted
	l.mu.Unlock()
	if granted != 10 {
		t.Fatalf("granted = %d after stale grant, want 10", granted)
	}
}
