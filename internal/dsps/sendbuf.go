package dsps

import (
	"sync"
	"sync/atomic"
)

// sendBuf is a pooled, reference-counted encode buffer for the outbound data
// path. The send thread encodes each WorkerMessage once into a sendBuf and
// hands one reference per destination to sendData; whoever drops the last
// reference (the flow-link goroutine after the transport send, the shed
// policy on a dropped item, the synchronous path right after Send returns)
// recycles the buffer. The transports' Send contract — payload copied before
// Send returns — is what makes release-after-send safe.
//
// Ownership protocol (DESIGN §11):
//   - acquireSendBuf returns a buffer holding one reference.
//   - retain adds references before fan-out; every sendData call consumes
//     exactly one, on every exit path (sent, suppressed, shed, errored).
//   - b must not be read after the owner's last release: the storage is
//     reused by the next acquirer.
type sendBuf struct {
	b    []byte
	refs atomic.Int32
}

// maxPooledSendBuf bounds the scratch capacity kept in the pool, so one
// outsized message does not pin its storage across the run.
const maxPooledSendBuf = 256 << 10

var sendBufPool = sync.Pool{New: func() any { return new(sendBuf) }}

// acquireSendBuf returns an empty buffer holding one reference. Encode with
// sb.b = tuple.AppendWorkerMessage(sb.b[:0], ...).
//
//whale:acquires
func acquireSendBuf() *sendBuf {
	sb := sendBufPool.Get().(*sendBuf)
	sb.refs.Store(1)
	return sb
}

// retain adds n references (fan-out: one per additional destination).
//
//whale:retains
func (sb *sendBuf) retain(n int32) {
	if sb != nil && n > 0 {
		sb.refs.Add(n)
	}
}

// release drops one reference, recycling the buffer when the last one goes.
// Safe on a nil receiver so callers holding raw (non-pooled) bytes need no
// branch.
//
//whale:owns sb
func (sb *sendBuf) release() {
	if sb == nil {
		return
	}
	if sb.refs.Add(-1) > 0 {
		return
	}
	if cap(sb.b) > maxPooledSendBuf {
		sb.b = nil
	}
	sb.b = sb.b[:0]
	sendBufPool.Put(sb)
}
