package dsps

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"whale/internal/tuple"
)

// Assignment maps the topology's tasks onto workers. Task ids are dense and
// deterministic: operators in declaration order, tasks within an operator
// in index order.
type Assignment struct {
	// Tasks holds every task's context, indexed by task id.
	Tasks []TaskContext
	// TasksOf lists an operator's task ids in index order.
	TasksOf map[string][]int32
	// WorkerOf gives the hosting worker per task id.
	WorkerOf []int32
	// Workers is the worker count.
	Workers int
}

// retiredWorker marks a task retired by a shrink rescale in WorkerOf: the
// task id stays allocated (ids are dense indices into Tasks/WorkerOf and
// must stay stable across rescales) but no routing, barrier, checkpoint or
// membership computation considers it.
const retiredWorker int32 = -1

// retired reports whether tid was retired by a shrink rescale.
func (a *Assignment) retired(tid int32) bool { return a.WorkerOf[tid] == retiredWorker }

// Assign places tasks round-robin across workers, mirroring Storm's default
// even spreading: task k of the global dense ordering goes to worker
// k mod workers. With parallelism >= workers this co-locates multiple
// instances of an operator on each worker — the situation one-to-many
// partitioning exploits.
func Assign(t *Topology, workers int) (*Assignment, error) {
	if workers < 1 {
		return nil, fmt.Errorf("dsps: %d workers", workers)
	}
	a := &Assignment{TasksOf: map[string][]int32{}, Workers: workers}
	next := int32(0)
	for _, id := range t.Order {
		op := t.Operators[id]
		for i := 0; i < op.Parallelism; i++ {
			tid := next
			next++
			w := int32(int(tid) % workers)
			a.Tasks = append(a.Tasks, TaskContext{
				TaskID:      tid,
				OperatorID:  id,
				TaskIndex:   i,
				Parallelism: op.Parallelism,
				Worker:      w,
			})
			a.TasksOf[id] = append(a.TasksOf[id], tid)
			a.WorkerOf = append(a.WorkerOf, w)
		}
	}
	return a, nil
}

// Rescaled derives a new assignment with op's parallelism changed to
// newPar, leaving the receiver untouched. Task ids stay stable: the first
// min(old, new) ids keep their identity; growth appends fresh ids at the
// global tail hosted on placeOn (one worker per new task, chosen by the
// caller); shrinkage retires the tail ids (WorkerOf = retiredWorker)
// instead of compacting, so no surviving task id ever changes meaning.
// TaskIndex/Parallelism of the op's live tasks are rewritten for the new
// width; retired task contexts keep their final pre-retirement values.
func (a *Assignment) Rescaled(op string, newPar int, placeOn []int32) (*Assignment, error) {
	old := a.TasksOf[op]
	if len(old) == 0 {
		return nil, fmt.Errorf("dsps: rescale of unknown operator %q", op)
	}
	if newPar < 1 {
		return nil, fmt.Errorf("dsps: rescale %q to parallelism %d", op, newPar)
	}
	if newPar == len(old) {
		return nil, fmt.Errorf("dsps: %q already at parallelism %d", op, newPar)
	}
	n := &Assignment{
		Tasks:    append([]TaskContext(nil), a.Tasks...),
		TasksOf:  make(map[string][]int32, len(a.TasksOf)),
		WorkerOf: append([]int32(nil), a.WorkerOf...),
		Workers:  a.Workers,
	}
	for id, tids := range a.TasksOf {
		n.TasksOf[id] = append([]int32(nil), tids...)
	}
	keep := newPar
	if len(old) < keep {
		keep = len(old)
	}
	tids := append([]int32(nil), old[:keep]...)
	if newPar > len(old) {
		if len(placeOn) != newPar-len(old) {
			return nil, fmt.Errorf("dsps: rescale %q to %d needs %d placements, got %d", op, newPar, newPar-len(old), len(placeOn))
		}
		for _, w := range placeOn {
			tid := int32(len(n.Tasks))
			n.Tasks = append(n.Tasks, TaskContext{TaskID: tid, OperatorID: op, Worker: w})
			n.WorkerOf = append(n.WorkerOf, w)
			tids = append(tids, tid)
		}
	} else {
		for _, tid := range old[keep:] {
			n.WorkerOf[tid] = retiredWorker
		}
	}
	for i, tid := range tids {
		n.Tasks[tid].TaskIndex = i
		n.Tasks[tid].Parallelism = newPar
		n.Tasks[tid].Worker = n.WorkerOf[tid]
	}
	n.TasksOf[op] = tids
	return n, nil
}

// LocalTasks returns the task ids hosted on worker w, ascending.
func (a *Assignment) LocalTasks(w int32) []int32 {
	var out []int32
	for tid, wk := range a.WorkerOf {
		if wk == w {
			out = append(out, int32(tid))
		}
	}
	return out
}

// TasksOnWorker returns op's task ids hosted on worker w.
func (a *Assignment) TasksOnWorker(op string, w int32) []int32 {
	var out []int32
	for _, tid := range a.TasksOf[op] {
		if a.WorkerOf[tid] == w {
			out = append(out, tid)
		}
	}
	return out
}

// WorkersOf returns the sorted distinct workers hosting op's tasks.
func (a *Assignment) WorkersOf(op string) []int32 {
	seen := map[int32]bool{}
	for _, tid := range a.TasksOf[op] {
		seen[a.WorkerOf[tid]] = true
	}
	out := make([]int32, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// route is one precomputed outgoing edge from an operator's stream.
type route struct {
	sub      Subscription
	dstOp    string
	dstTasks []int32 // all destination task ids, index order
	// localTasks are dstOp's tasks hosted on the emitting worker (for
	// local-or-shuffle grouping).
	localTasks []int32
}

// router decides destination tasks for each emitted tuple. One router is
// built per executor (it carries the executor's shuffle counter).
type router struct {
	routes  map[string][]route // stream -> outgoing edges
	shuffle map[string]int     // per dstOp round-robin cursor
}

func newRouter(t *Topology, a *Assignment, srcOp string, localWorker int32) *router {
	r := &router{routes: map[string][]route{}, shuffle: map[string]int{}}
	streams := map[string]bool{srcOp: true}
	// Named streams appear via subscriptions; collect every stream any
	// subscriber listens to on this operator.
	for _, id := range t.Order {
		for _, s := range t.Operators[id].Subs {
			if s.SrcOperator == srcOp {
				streams[s.Stream] = true
			}
		}
	}
	for stream := range streams {
		for _, sub := range t.Subscribers(srcOp, stream) {
			r.routes[stream] = append(r.routes[stream], route{
				sub:        sub.Sub,
				dstOp:      sub.Op.ID,
				dstTasks:   a.TasksOf[sub.Op.ID],
				localTasks: a.TasksOnWorker(sub.Op.ID, localWorker),
			})
		}
	}
	return r
}

// destination is the routing verdict for one edge.
type destination struct {
	dstOp string
	// all is true for all-grouping: every task of dstOp receives the tuple.
	all bool
	// tasks holds the selected task ids when all is false.
	tasks []int32
}

// destinations computes, for one emitted tuple on stream, every edge's
// destinations.
func (r *router) destinations(stream string, tp *tuple.Tuple) ([]destination, error) {
	routes := r.routes[stream]
	out := make([]destination, 0, len(routes))
	for _, rt := range routes {
		switch rt.sub.Type {
		case ShuffleGrouping:
			i := r.shuffle[rt.dstOp] % len(rt.dstTasks)
			r.shuffle[rt.dstOp]++
			out = append(out, destination{dstOp: rt.dstOp, tasks: rt.dstTasks[i : i+1]})
		case FieldsGrouping:
			if rt.sub.FieldIdx >= len(tp.Values) {
				return nil, fmt.Errorf("dsps: fields grouping on field %d of %d-field tuple", rt.sub.FieldIdx, len(tp.Values))
			}
			i := int(SlotOf(tp.Values[rt.sub.FieldIdx])) % len(rt.dstTasks)
			out = append(out, destination{dstOp: rt.dstOp, tasks: rt.dstTasks[i : i+1]})
		case AllGrouping:
			out = append(out, destination{dstOp: rt.dstOp, all: true, tasks: rt.dstTasks})
		case GlobalGrouping:
			out = append(out, destination{dstOp: rt.dstOp, tasks: rt.dstTasks[:1]})
		case LocalOrShuffleGrouping:
			pool := rt.localTasks
			if len(pool) == 0 {
				pool = rt.dstTasks
			}
			i := r.shuffle[rt.dstOp] % len(pool)
			r.shuffle[rt.dstOp]++
			out = append(out, destination{dstOp: rt.dstOp, tasks: pool[i : i+1]})
		default:
			return nil, fmt.Errorf("dsps: unknown grouping %v", rt.sub.Type)
		}
	}
	return out, nil
}

// hasSubscribers reports whether the stream has any outgoing edge (a tuple
// emitted on a sink operator's stream goes nowhere).
func (r *router) hasSubscribers(stream string) bool { return len(r.routes[stream]) > 0 }

// NumSlots is the fixed key-space width for fields grouping. A key maps to
// a slot (stable across parallelism changes) and the slot maps to a task by
// slot mod parallelism. State sharded by slot id (snapshot.Sharder) can
// therefore be split and merged exactly during a rescale: the slot a key
// lives in never moves, only the task owning the slot does.
//
// The width is also a hard parallelism bound for fields-grouped operators:
// with fewer slots than tasks, task indices >= NumSlots would never be
// selected. Topology build and Rescale both reject such widths.
const NumSlots = 64

// SlotOf returns the key-grouping slot for one field value, in [0, NumSlots).
func SlotOf(v tuple.Value) int32 {
	return int32(hashValue(v) % NumSlots)
}

// hashValue hashes one field value for key grouping.
func hashValue(v tuple.Value) uint64 {
	h := fnv.New64a()
	switch x := v.(type) {
	case int64:
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(x >> (8 * i))
		}
		h.Write(b[:])
	case float64:
		bits := math.Float64bits(x)
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	case string:
		h.Write([]byte(x))
	case []byte:
		h.Write(x)
	case bool:
		if x {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}
