package dsps

import (
	"sync"
	"testing"
	"time"

	"whale/internal/transport"
	"whale/internal/tuple"
)

// reliableSpout emits n tuples reliably and records callbacks.
type reliableSpout struct {
	n    int
	i    int
	mu   sync.Mutex
	acks map[int64]bool
	fail map[int64]bool
}

func (s *reliableSpout) Open(*TaskContext) {
	s.acks = map[int64]bool{}
	s.fail = map[int64]bool{}
}

func (s *reliableSpout) Next(c *Collector) bool {
	if s.i >= s.n {
		return false
	}
	c.EmitReliable(int64(s.i), int64(s.i), "payload")
	s.i++
	return true
}

func (s *reliableSpout) Close() {}

func (s *reliableSpout) Ack(msgID int64) {
	s.mu.Lock()
	s.acks[msgID] = true
	s.mu.Unlock()
}

func (s *reliableSpout) Fail(msgID int64) {
	s.mu.Lock()
	s.fail[msgID] = true
	s.mu.Unlock()
}

func (s *reliableSpout) counts() (acked, failed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.acks), len(s.fail)
}

// ackingBolt forwards, fails, or drops per tuple seq.
type ackingBolt struct {
	failEvery int // Fail() every k-th tuple (by first field)
	dropEvery int // NoAck() every k-th tuple
	forward   bool
}

func (b *ackingBolt) Prepare(*TaskContext) {}
func (b *ackingBolt) Execute(tp *tuple.Tuple, c *Collector) {
	seq := tp.Int(0)
	if b.failEvery > 0 && seq%int64(b.failEvery) == 0 {
		c.Fail()
		return
	}
	if b.dropEvery > 0 && seq%int64(b.dropEvery) == 0 {
		c.NoAck()
		return
	}
	if b.forward {
		c.Emit(tp.Values...)
	}
}
func (b *ackingBolt) Cleanup() {}

// sinkAckBolt just processes (auto-ack).
type sinkAckBolt struct{}

func (sinkAckBolt) Prepare(*TaskContext)             {}
func (sinkAckBolt) Execute(*tuple.Tuple, *Collector) {}
func (sinkAckBolt) Cleanup()                         {}

func startAckTopology(t *testing.T, spout *reliableSpout, mid *ackingBolt, cfg Config) *Engine {
	t.Helper()
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return spout }, 1)
	b.Bolt("mid", func() Bolt { return mid }, 3).Shuffle("src")
	b.Bolt("sink", func() Bolt { return sinkAckBolt{} }, 2).FieldsStream("mid", "mid", 0)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	if cfg.Network == nil {
		cfg.Network = transport.NewInprocNetwork(0)
	}
	cfg.AckEnabled = true
	eng, err := Start(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestAckingAllComplete(t *testing.T) {
	const n = 300
	spout := &reliableSpout{n: n}
	eng := startAckTopology(t, spout, &ackingBolt{forward: true}, Config{Comm: WorkerOriented})
	eng.WaitSpouts()
	eng.Stop()
	acked, failed := spout.counts()
	if acked != n || failed != 0 {
		t.Fatalf("acked=%d failed=%d, want %d/0", acked, failed, n)
	}
	m := eng.Metrics()
	if m.TuplesAcked.Value() != n || m.TuplesFailed.Value() != 0 {
		t.Fatalf("metrics acked=%d failed=%d", m.TuplesAcked.Value(), m.TuplesFailed.Value())
	}
	if m.CompleteLatency.Count() != n || m.CompleteLatency.Mean() <= 0 {
		t.Fatalf("complete latency %v", m.CompleteLatency.Snapshot())
	}
}

func TestAckingExplicitFail(t *testing.T) {
	const n = 200
	spout := &reliableSpout{n: n}
	// Every 4th tuple is failed by the mid bolt: 0,4,8,... = 50 failures.
	eng := startAckTopology(t, spout, &ackingBolt{failEvery: 4, forward: true}, Config{})
	eng.WaitSpouts()
	eng.Stop()
	acked, failed := spout.counts()
	if failed != n/4 {
		t.Fatalf("failed=%d, want %d", failed, n/4)
	}
	if acked != n-n/4 {
		t.Fatalf("acked=%d, want %d", acked, n-n/4)
	}
}

func TestAckingTimeout(t *testing.T) {
	const n = 60
	spout := &reliableSpout{n: n}
	// Every 3rd tuple is swallowed without an ack: its tree must time out.
	eng := startAckTopology(t, spout, &ackingBolt{dropEvery: 3, forward: true}, Config{
		AckTimeout: 300 * time.Millisecond,
	})
	eng.WaitSpouts()
	eng.Stop()
	acked, failed := spout.counts()
	if failed != n/3 {
		t.Fatalf("failed=%d, want %d (timeouts)", failed, n/3)
	}
	if acked != n-n/3 {
		t.Fatalf("acked=%d, want %d", acked, n-n/3)
	}
}

func TestMaxSpoutPendingThrottles(t *testing.T) {
	const n = 150
	spout := &reliableSpout{n: n}
	eng := startAckTopology(t, spout, &ackingBolt{forward: true}, Config{
		MaxSpoutPending: 8,
	})
	eng.WaitSpouts()
	eng.Stop()
	acked, failed := spout.counts()
	if acked != n || failed != 0 {
		t.Fatalf("acked=%d failed=%d", acked, failed)
	}
}

func TestMaxSpoutPendingRequiresAcking(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("s", mkSpout, 1)
	topo, _ := b.Build()
	_, err := Start(topo, Config{Network: transport.NewInprocNetwork(0), MaxSpoutPending: 4})
	if err == nil {
		t.Fatal("MaxSpoutPending without AckEnabled accepted")
	}
}

func TestReservedAckerID(t *testing.T) {
	b := NewTopologyBuilder()
	b.Spout("__acker", mkSpout, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(topo, Config{Network: transport.NewInprocNetwork(0)}); err == nil {
		t.Fatal("reserved operator id accepted")
	}
}

func TestEmitReliableWithoutAckingDegrades(t *testing.T) {
	// EmitReliable on an ack-less engine must still deliver data.
	const n = 50
	spout := &reliableSpout{n: n}
	var count capture
	count.byTask = map[int32][]int64{}
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return spout }, 1)
	b.Bolt("sink", func() Bolt { return &captureBolt{cap: &count} }, 2).Shuffle("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{Workers: 2, Network: transport.NewInprocNetwork(0)})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	if !eng.Drain(10 * time.Second) {
		eng.Stop()
		t.Fatal("drain failed")
	}
	eng.Stop()
	if count.total() != n {
		t.Fatalf("delivered %d of %d", count.total(), n)
	}
	acked, failed := spout.counts()
	if acked != 0 || failed != 0 {
		t.Fatalf("callbacks without ack plane: %d/%d", acked, failed)
	}
}

// replayingSpout re-queues failed ids until every id has been acked —
// the spout half of the timeout → Fail → replay at-least-once loop.
type replayingSpout struct {
	total    int
	next     int64
	replay   []int64
	deadline time.Time
	mu       sync.Mutex
	acked    map[int64]bool
	failed   map[int64]int
}

func (s *replayingSpout) Open(*TaskContext) {
	s.acked = map[int64]bool{}
	s.failed = map[int64]int{}
	s.deadline = time.Now().Add(30 * time.Second)
}

func (s *replayingSpout) Next(c *Collector) bool {
	if time.Now().After(s.deadline) {
		return false
	}
	s.mu.Lock()
	done := len(s.acked) >= s.total
	s.mu.Unlock()
	if done {
		return false
	}
	if len(s.replay) > 0 {
		id := s.replay[0]
		s.replay = s.replay[1:]
		c.EmitReliable(id, id)
		return true
	}
	if s.next < int64(s.total) {
		id := s.next
		s.next++
		c.EmitReliable(id, id)
		return true
	}
	time.Sleep(time.Millisecond)
	return true
}

func (s *replayingSpout) Close() {}

func (s *replayingSpout) Ack(msgID int64) {
	s.mu.Lock()
	s.acked[msgID] = true
	s.mu.Unlock()
}

func (s *replayingSpout) Fail(msgID int64) {
	s.mu.Lock()
	s.failed[msgID]++
	done := s.acked[msgID]
	s.mu.Unlock()
	if !done {
		s.replay = append(s.replay, msgID)
	}
}

// onceDropBolt swallows the first sighting of each id without acking, so
// every id's first reliability tree must time out.
type onceDropBolt struct{ seen map[int64]bool }

func (b *onceDropBolt) Prepare(*TaskContext) { b.seen = map[int64]bool{} }
func (b *onceDropBolt) Execute(tp *tuple.Tuple, c *Collector) {
	id := tp.Int(0)
	if !b.seen[id] {
		b.seen[id] = true
		c.NoAck()
	}
}
func (b *onceDropBolt) Cleanup() {}

func TestAckingTimeoutReplay(t *testing.T) {
	// Every id is dropped by every task on first delivery: round one times
	// out, the spout replays, round two completes. The loop closes
	// at-least-once delivery without any transport fault.
	const n = 30
	spout := &replayingSpout{total: n}
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return spout }, 1)
	b.Bolt("fan", func() Bolt { return &onceDropBolt{} }, 4).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Start(topo, Config{
		Workers: 3, Network: transport.NewInprocNetwork(0),
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		AckEnabled: true, AckTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	eng.Stop()

	spout.mu.Lock()
	acked, failedIDs := len(spout.acked), len(spout.failed)
	spout.mu.Unlock()
	if acked != n {
		t.Fatalf("acked %d of %d after replay", acked, n)
	}
	if failedIDs != n {
		t.Fatalf("%d ids timed out, want all %d (first round swallowed)", failedIDs, n)
	}
	if got := eng.Metrics().TuplesFailed.Value(); got < n {
		t.Fatalf("TuplesFailed=%d, want >= %d", got, n)
	}
	if got := eng.Metrics().TuplesAcked.Value(); got != n {
		t.Fatalf("TuplesAcked=%d, want %d", got, n)
	}
}

func TestAckingWithAllGroupingMulticast(t *testing.T) {
	// Reliability across the one-to-many edge: every instance's processing
	// contributes to the tree; all must complete.
	const n, parallelism = 120, 8
	spout := &reliableSpout{n: n}
	b := NewTopologyBuilder()
	b.Spout("src", func() Spout { return spout }, 1)
	b.Bolt("fan", func() Bolt { return sinkAckBolt{} }, parallelism).All("src")
	topo, _ := b.Build()
	eng, err := Start(topo, Config{
		Workers: 4, Network: transport.NewInprocNetwork(0),
		Comm: WorkerOriented, Multicast: MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		AckEnabled: true, Ackers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	eng.Stop()
	acked, failed := spout.counts()
	if acked != n || failed != 0 {
		t.Fatalf("acked=%d failed=%d, want %d/0", acked, failed, n)
	}
}
