package dsps

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whale/internal/obs"
	"whale/internal/tuple"
)

// Collector is handed to spouts and bolts to emit tuples. It is bound to
// one executor and must only be used from that executor's goroutine (or,
// for spouts, the spout loop).
type Collector struct {
	ex   *executor
	test func(stream string, values []tuple.Value)
}

// NewTestCollector returns a detached collector that hands every emission
// to fn instead of routing it through an engine — for unit-testing Spout
// and Bolt implementations in isolation.
func NewTestCollector(fn func(stream string, values []tuple.Value)) *Collector {
	return &Collector{test: fn}
}

// Emit sends a tuple on the operator's default stream (named after the
// operator).
func (c *Collector) Emit(values ...tuple.Value) {
	if c.test != nil {
		c.test("", values)
		return
	}
	c.EmitTo(c.ex.ctx.OperatorID, values...)
}

// EmitTo sends a tuple on a named stream.
func (c *Collector) EmitTo(stream string, values ...tuple.Value) {
	if c.test != nil {
		c.test(stream, values)
		return
	}
	c.ex.emit(stream, values)
}

// EmitReliable sends a tuple on the default stream with reliability
// tracking: when every downstream descendant has been processed the
// spout's Ack(msgID) fires; on timeout or explicit failure, Fail(msgID).
// Only valid in spouts, with Config.AckEnabled.
func (c *Collector) EmitReliable(msgID int64, values ...tuple.Value) {
	c.EmitReliableTo(c.ex.ctx.OperatorID, msgID, values...)
}

// EmitReliableTo is EmitReliable on a named stream.
func (c *Collector) EmitReliableTo(stream string, msgID int64, values ...tuple.Value) {
	if c.test != nil {
		c.test(stream, values)
		return
	}
	c.ex.emitReliable(stream, msgID, values)
}

// Fail marks the bolt's current input tuple as failed: its reliability
// tree fails immediately at the acker instead of completing. Implies NoAck.
func (c *Collector) Fail() {
	if c.test != nil {
		return
	}
	c.ex.failCurrent = true
}

// NoAck suppresses the automatic acknowledgement of the bolt's current
// input tuple. The tuple's tree will neither complete nor fail until the
// ack timeout expires — use for at-most-once handoffs or to simulate loss.
func (c *Collector) NoAck() {
	if c.test != nil {
		return
	}
	c.ex.suppressAck = true
}

// executor runs one task instance: a goroutine consuming the inbound queue
// (bolts) or driving the spout loop (spouts).
type executor struct {
	ctx      TaskContext
	w        *worker
	rt       *router
	spec     *OperatorSpec // kept for routing rebuilds after a rescale
	isSink   bool
	spout    Spout
	bolt     Bolt
	in       chan tuple.AddressedTuple
	col      *Collector
	nextID   int64
	curRoot  int64 // root-emit timestamp inherited from the tuple being executed
	curTrace int64 // trace ID inherited from the tuple being executed

	ops *opMetrics

	// Admission overflow (flow-controlled mode only): remote tuples that
	// found the input queue full are parked here and moved into `in` by the
	// feeder goroutine, so the worker's delivery loop never blocks on one
	// slow executor — a stalled task stops its own senders (grants are
	// issued only when a tuple wins a queue seat), not its siblings'.
	// Occupancy is bounded by the credit protocol: once grants stall, every
	// upstream sender stops within its window.
	ovMu     sync.Mutex
	overflow []tuple.AddressedTuple
	// ovStampNS parallels overflow: the park timestamp of traced tuples
	// (zero for untraced ones), consumed by feed to attribute overflow
	// residency as an executor-queue-wait stall.
	ovStampNS []int64
	ovKick    chan struct{}

	// Reliability state.
	rng          *rand.Rand
	pendingRoots map[int64]int64 // rootID -> spout msgID
	curRootID    int64
	curInAck     int64
	xorAcc       int64
	suppressAck  bool
	failCurrent  bool

	// Checkpoint state (see checkpoint.go). epochStamp is the epoch
	// interval currently being emitted, stamped on every outgoing tuple;
	// fenceEpoch discards replayed in-flight tuples older than the last
	// restore. Both are 0 with checkpointing disabled. All fields below are
	// touched only on this executor's goroutine, except alignParked (drain
	// accounting).
	epochStamp  int64
	fenceEpoch  int64
	aligning    *alignState
	upstream    []int32 // every task of every subscribed-to operator
	alignParked atomic.Int64
}

func newExecutor(w *worker, ctx TaskContext, spec *OperatorSpec, assign *Assignment, rt *router, isSink bool, queueDepth int) *executor {
	ops := &opMetrics{} // this executor's private share, merged on read
	w.eng.addOpShare(ctx.OperatorID, ops)
	ex := &executor{
		ctx:    ctx,
		w:      w,
		rt:     rt,
		spec:   spec,
		isSink: isSink,
		in:     make(chan tuple.AddressedTuple, queueDepth),
		ops:    ops,
		rng:    rand.New(rand.NewSource(int64(ctx.TaskID)*7919 + 1)),
	}
	if w.fc != nil {
		ex.ovKick = make(chan struct{}, 1)
	}
	ex.col = &Collector{ex: ex}
	if spec.IsSpout {
		ex.spout = spec.SpoutFn()
		ex.pendingRoots = map[int64]int64{}
	} else {
		ex.bolt = spec.BoltFn()
		ex.upstream = upstreamTasks(spec, assign)
	}
	if w.eng.cfg.CheckpointInterval > 0 {
		ex.epochStamp = 1 // emitting into the first epoch interval
	}
	return ex
}

// upstreamTasks lists every task of every subscribed-to operator under
// assignment a — the set barrier alignment waits on (deduplicated across
// streams: alignment is per task, not per edge).
func upstreamTasks(spec *OperatorSpec, a *Assignment) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, sub := range spec.Subs {
		for _, tid := range a.TasksOf[sub.SrcOperator] {
			if !seen[tid] {
				seen[tid] = true
				out = append(out, tid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rebuildRouting re-derives this executor's router, upstream set and task
// context from the engine's current placement view. Called on the
// executor's own goroutine at restore-marker time, so it never races
// Execute: emissions before the rebuild are pre-fence (discarded
// downstream), emissions after it route over the post-rescale placement.
func (ex *executor) rebuildRouting() {
	tv := ex.w.eng.tv()
	ex.rt = newRouter(ex.w.eng.topo, tv.assign, ex.ctx.OperatorID, ex.w.id)
	if ex.bolt != nil {
		ex.upstream = upstreamTasks(ex.spec, tv.assign)
	}
	if int(ex.ctx.TaskID) < len(tv.assign.Tasks) {
		tc := tv.assign.Tasks[ex.ctx.TaskID]
		if !tv.assign.retired(ex.ctx.TaskID) {
			ex.ctx.TaskIndex, ex.ctx.Parallelism = tc.TaskIndex, tc.Parallelism
		}
	}
}

// feed drains the admission overflow into the executor's input queue in
// arrival order, granting each tuple's delivery unit once it wins a seat.
// Runs only in flow-controlled mode.
func (ex *executor) feed() {
	defer ex.w.wg.Done()
	for {
		ex.ovMu.Lock()
		if len(ex.overflow) > 0 {
			at := ex.overflow[0]
			stamp := ex.ovStampNS[0]
			ex.overflow[0] = tuple.AddressedTuple{}
			ex.overflow = ex.overflow[1:]
			ex.ovStampNS = ex.ovStampNS[1:]
			ex.ovMu.Unlock()
			select {
			case ex.in <- at:
				ex.w.grantData(at.Src, 1)
				if stamp != 0 {
					// Sampled executor-queue-wait stall: park-to-seat time.
					wait := time.Now().UnixNano() - stamp
					ex.w.eng.metrics.ExecQueueWaitNS.Add(wait)
					ex.w.execQueueWaitNS.Add(wait)
					ex.w.eng.obs.Tracer.RecordHop(at.Data.TraceID, obs.StallExecQueueWait,
						ex.w.id, at.Src, 0, 0, 0, time.Unix(0, stamp), time.Duration(wait))
				}
			case <-ex.w.done:
				return
			}
			continue
		}
		ex.ovMu.Unlock()
		select {
		case <-ex.ovKick:
		case <-ex.w.done:
			return
		}
	}
}

// overflowLen reports the admission overflow depth (drain accounting).
func (ex *executor) overflowLen() int {
	if ex.ovKick == nil {
		return 0
	}
	ex.ovMu.Lock()
	defer ex.ovMu.Unlock()
	return len(ex.overflow)
}

// emit routes one tuple to all subscribers. It is the hot path: local
// destinations are enqueued directly (Storm's local fast path, no
// serialization); remote destinations become jobs on the worker's transfer
// queue, where the send thread pays the serialization cost per the
// configured communication mechanism.
func (ex *executor) emit(stream string, values []tuple.Value) {
	ex.nextID++
	tp := &tuple.Tuple{
		Stream:     stream,
		Values:     values,
		ID:         ex.nextID,
		SrcTask:    ex.ctx.TaskID,
		RootEmitNS: ex.curRoot,
		Epoch:      ex.epochStamp,
	}
	if tp.RootEmitNS == 0 {
		tp.RootEmitNS = time.Now().UnixNano()
	}
	// Trace propagation: descendants inherit the input's trace ID; fresh
	// spout roots ask the sampler.
	if ex.curTrace == 0 && ex.spout != nil && !isAckStream(stream) {
		ex.curTrace = ex.w.eng.obs.Tracer.Sample()
	}
	tp.TraceID = ex.curTrace
	// Anchor to the current input's reliability tree (bolts only; the ack
	// plane's own streams stay untracked to avoid infinite regress).
	if ex.curRootID != 0 && !isAckStream(stream) {
		tp.RootID = ex.curRootID
		tp.AckVal = nonzeroRand(ex.rng)
	}
	// route returns the XOR of per-destination ack contributions (0 for
	// untracked tuples), which the sender owes the acker for this input.
	ex.xorAcc ^= ex.route(tp)
}

// emitReliable starts a reliability tree for a spout emission.
func (ex *executor) emitReliable(stream string, msgID int64, values []tuple.Value) {
	if ex.spout == nil || !ex.w.eng.cfg.AckEnabled {
		// Without the ack plane this degrades to a plain emit.
		ex.emit(stream, values)
		return
	}
	ex.nextID++
	root := nonzeroRand(ex.rng)
	tp := &tuple.Tuple{
		Stream:     stream,
		Values:     values,
		ID:         ex.nextID,
		SrcTask:    ex.ctx.TaskID,
		RootEmitNS: time.Now().UnixNano(),
		RootID:     root,
		AckVal:     nonzeroRand(ex.rng),
		TraceID:    ex.w.eng.obs.Tracer.Sample(),
		Epoch:      ex.epochStamp,
	}
	ex.curTrace = tp.TraceID
	ex.pendingRoots[root] = msgID
	ex.curRoot = tp.RootEmitNS
	// Route the data first: the init must carry the XOR of the actual
	// per-destination contributions, which route computes as it fans out.
	// The acker tolerates acks arriving before the init (it parks the
	// entry until the init or the timeout sweep).
	contrib := ex.route(tp)
	ex.emitUnanchored(streamAckInit, []tuple.Value{root, contrib, int64(ex.ctx.TaskID)}, tp.RootEmitNS)
}

// emitUnanchored emits a tuple outside any reliability tree.
func (ex *executor) emitUnanchored(stream string, values []tuple.Value, emitNS int64) {
	ex.nextID++
	tp := &tuple.Tuple{
		Stream:     stream,
		Values:     values,
		ID:         ex.nextID,
		SrcTask:    ex.ctx.TaskID,
		RootEmitNS: emitNS,
		Epoch:      ex.epochStamp,
	}
	ex.route(tp)
}

// route delivers a constructed tuple to all subscribed destinations and
// returns the XOR of the per-destination ack contributions for tracked
// tuples (0 otherwise). Each destination task contributes
// ackContrib(tp.AckVal, task), the same value the receiving executor folds
// into its ack, so the acker's register balances only when every
// destination has processed the tuple. Destinations on confirmed-dead
// workers are fenced out of both the sends and the contribution, so trees
// opened after a failure can complete without the dead worker.
//
//whale:hotpath
func (ex *executor) route(tp *tuple.Tuple) int64 {
	eng := ex.w.eng
	assign := eng.tv().assign
	dests, err := ex.rt.destinations(tp.Stream, tp)
	if err != nil {
		eng.metrics.RouteErrors.Inc()
		return 0
	}
	tracked := tp.RootID != 0 && tp.AckVal != 0
	var contrib int64
	for _, d := range dests {
		eng.metrics.TuplesEmitted.Inc()
		if ex.ops != nil {
			ex.ops.emitted.Inc()
		}
		if d.all {
			if tracked {
				for _, dst := range d.tasks {
					if !eng.workerDead(assign.WorkerOf[dst]) {
						contrib ^= ackContrib(tp.AckVal, dst)
					}
				}
			}
			ex.w.emitAll(ex, tp, d)
			continue
		}
		// Point-to-point edges: local fast path or per-destination job.
		for _, dst := range d.tasks {
			dw := assign.WorkerOf[dst]
			if eng.workerDead(dw) {
				continue
			}
			if tracked {
				contrib ^= ackContrib(tp.AckVal, dst)
			}
			if dw == ex.w.id {
				ex.w.enqueueLocal(dst, tp)
			} else {
				ex.w.enqueueSend(sendJob{kind: jobPointToPoint, tp: tp, dstTask: dst, dstWorker: dw})
			}
		}
	}
	return contrib
}

// isAckStream reports whether the stream belongs to the ack plane.
func isAckStream(stream string) bool {
	switch stream {
	case streamAckInit, streamAck, streamAckFail, streamAckEvent, streamAckTick:
		return true
	}
	return false
}

// runSpout is the spout executor loop.
func (ex *executor) runSpout() {
	defer ex.w.wg.Done()
	ex.spout.Open(&ex.ctx)
	defer ex.spout.Close()
	if cc := ex.w.eng.ckpt; cc != nil {
		defer cc.noteSpoutExit(ex)
	}
	maxPending := ex.w.eng.cfg.MaxSpoutPending
	for {
		select {
		case <-ex.w.eng.stopSpouts:
			return
		default:
		}
		ex.drainSpoutEvents(false)
		// Backpressure: with acking on, cap in-flight reliability trees.
		for maxPending > 0 && len(ex.pendingRoots) >= maxPending {
			ex.drainSpoutEvents(true)
			select {
			case <-ex.w.eng.stopSpouts:
				return
			default:
			}
		}
		ex.curRoot = 0  // each spout tuple starts a new latency root
		ex.curTrace = 0 // and gets its own sampling decision
		if !ex.spout.Next(ex.col) {
			ex.awaitOutstanding()
			return // exhausted
		}
	}
}

// awaitOutstanding lets an exhausted reliable spout collect its remaining
// ack/fail callbacks (bounded by the ack timeout plus slack).
func (ex *executor) awaitOutstanding() {
	if len(ex.pendingRoots) == 0 {
		return
	}
	deadline := time.Now().Add(ex.w.eng.cfg.AckTimeout + 2*time.Second)
	for len(ex.pendingRoots) > 0 && time.Now().Before(deadline) {
		select {
		case at := <-ex.in:
			ex.handleSpoutEvent(at.Data)
		case <-ex.w.done:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// runBolt is the bolt executor loop.
func (ex *executor) runBolt() {
	defer ex.w.wg.Done()
	ex.bolt.Prepare(&ex.ctx)
	defer ex.bolt.Cleanup()
	for {
		select {
		case at := <-ex.in:
			ex.consume(at)
		case <-ex.w.done:
			// Drain remaining input before exiting.
			for {
				select {
				case at := <-ex.in:
					ex.consume(at)
				default:
					return
				}
			}
		}
	}
}

func (ex *executor) execute(at tuple.AddressedTuple) {
	ex.curRoot = at.Data.RootEmitNS
	ex.curRootID = at.Data.RootID
	ex.curTrace = at.Data.TraceID
	ex.curInAck = at.Data.AckVal
	ex.xorAcc = 0
	ex.suppressAck = false
	ex.failCurrent = false
	t0 := time.Now()
	ex.bolt.Execute(at.Data, ex.col)
	dur := time.Since(t0)
	ex.w.eng.obs.Tracer.Record(at.Data.TraceID, obs.StageExecute, ex.w.id, t0, dur)
	ex.w.eng.metrics.TuplesExecuted.Inc()
	if ex.ops != nil {
		ex.ops.executed.Inc()
		ex.ops.execNS.Observe(dur.Nanoseconds())
	}
	if ex.isSink && at.Data.RootEmitNS > 0 && at.Data.Stream != StreamTick {
		ex.w.eng.metrics.ProcessingLatency.Observe(time.Now().UnixNano() - at.Data.RootEmitNS)
		ex.w.eng.metrics.TuplesCompleted.Inc()
	}
	// Close out the input's reliability bookkeeping.
	if ex.w.eng.cfg.AckEnabled && ex.curRootID != 0 && !isAckStream(at.Data.Stream) {
		switch {
		case ex.failCurrent:
			ex.emitUnanchored(streamAckFail, []tuple.Value{ex.curRootID}, ex.curRoot)
		case ex.suppressAck:
			// The tree stays open until the ack timeout.
		default:
			// Cancel this task's own contribution and add those of the
			// tuples emitted while processing (accumulated in xorAcc).
			ackXor := ex.xorAcc
			if ex.curInAck != 0 {
				ackXor ^= ackContrib(ex.curInAck, ex.ctx.TaskID)
			}
			ex.emitUnanchored(streamAck, []tuple.Value{ex.curRootID, ackXor}, ex.curRoot)
		}
	}
	ex.curRootID = 0
}
