package bench

import (
	"encoding/json"
	"testing"

	"whale/internal/cluster"
)

// TestBottleneckAttribution validates the analyzer against ground truth:
// for each injected bottleneck the top-ranked finding must name the
// injected component and class, and two runs with the same seed must
// produce byte-identical reports (deterministic attribution).
func TestBottleneckAttribution(t *testing.T) {
	for _, sc := range bottleneckScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			first := bottleneckRun(sc, true)
			top := first.Bottleneck.Top()
			if top.Component != sc.component {
				t.Fatalf("top component = %q (%s), want %q\nreport:\n%s",
					top.Component, top.Class, sc.component, first.Bottleneck)
			}
			if top.Class != sc.class {
				t.Fatalf("top class = %q, want %q", top.Class, sc.class)
			}
			if top.Share <= 0.5 {
				t.Errorf("injected bottleneck holds only %.1f%% of attributed stall; expected a decisive majority", top.Share*100)
			}
			if top.StallNS <= 0 {
				t.Errorf("top finding has no stall time")
			}

			second := bottleneckRun(sc, true)
			b1, err := json.Marshal(first.Bottleneck)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := json.Marshal(second.Bottleneck)
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b2) {
				t.Errorf("same seed produced different reports:\n%s\nvs\n%s", b1, b2)
			}
		})
	}
}

// TestBottleneckReportClean asserts the analyzer does not invent a strong
// bottleneck on an unperturbed, underloaded run: whatever ranks first must
// hold only incidental stall compared to the injected scenarios.
func TestBottleneckReportClean(t *testing.T) {
	clean := bottleneckScenario{name: "clean", mut: func(c *cluster.Config) { c.Variant = cluster.Whale }}
	res := bottleneckRun(clean, true)
	injected := bottleneckRun(bottleneckScenarios()[0], true)
	cleanTop := res.Bottleneck.Top()
	injTop := injected.Bottleneck.Top()
	if cleanTop.StallNS*10 > injTop.StallNS {
		t.Errorf("clean run's top stall %.2fms is within 10x of the injected run's %.2fms — injections are not distinguishable",
			float64(cleanTop.StallNS)/1e6, float64(injTop.StallNS)/1e6)
	}
}
