package bench

import (
	"fmt"
	"time"

	"whale/internal/cluster"
	"whale/internal/netmodel"
	"whale/internal/queueing"
	"whale/internal/sim"
	"whale/internal/workload"
)

// sweep parallelism levels (the paper sweeps 120..480).
func parallelisms(quick bool) []int {
	if quick {
		return []int{120, 480}
	}
	return []int{120, 240, 360, 480}
}

func tuples(quick bool) int {
	if quick {
		return 600
	}
	return 4000
}

// desRun wraps cluster.Run with common settings.
func desRun(v cluster.Variant, n int, p netmodel.Params, quick bool, mut func(*cluster.Config)) cluster.Result {
	cfg := cluster.Config{
		Variant: v, Parallelism: n, Params: p,
		MaxTuples: tuples(quick), Seed: 7,
	}
	if mut != nil {
		mut(&cfg)
	}
	return cluster.Run(cfg)
}

// The five systems of Figs. 13-16, in the paper's order.
var fig13Systems = []cluster.Variant{
	cluster.Storm, cluster.RDMAStorm, cluster.WhaleWOC, cluster.WhaleWOCRDMA, cluster.Whale,
}

// The three multicast structures of Figs. 17-22 (all on Whale-WOC-RDMA).
var treeSystems = []struct {
	name string
	v    cluster.Variant
}{
	{"Sequential", cluster.WhaleWOCRDMA},
	{"Binomial (RDMC)", cluster.RDMC},
	{"Non-blocking (Whale)", cluster.Whale},
}

func init() {
	register("table2", "Dataset statistics (paper Table 2 vs synthetic generators)", runTable2)
	register("fig2", "Storm one-to-many bottleneck: throughput, latency, CPU (Fig. 2a-d)", runFig2)
	register("fig3", "RDMC under rising input rate: blocking transfer queue (Fig. 3a-b)", runFig3)
	register("fig11", "Whale performance vs Max Memory Size (Fig. 11)", runFig11)
	register("fig12", "Whale performance vs Wait Time Limit (Fig. 12)", runFig12)
	register("fig13", "Ride-hailing throughput vs parallelism (Fig. 13)", throughputSweep(netmodel.Default30Node(), "ride-hailing"))
	register("fig14", "Ride-hailing processing latency vs parallelism (Fig. 14)", latencySweep(netmodel.Default30Node(), "ride-hailing"))
	register("fig15", "Stock-exchange throughput vs parallelism (Fig. 15)", throughputSweep(netmodel.StockExchange(), "stock"))
	register("fig16", "Stock-exchange processing latency vs parallelism (Fig. 16)", latencySweep(netmodel.StockExchange(), "stock"))
	register("fig17", "Multicast structures, ride-hailing throughput (Fig. 17)", treeThroughput(netmodel.Default30Node()))
	register("fig18", "Multicast structures, ride-hailing latency (Fig. 18)", treeLatency(netmodel.Default30Node()))
	register("fig19", "Multicast structures, stock throughput (Fig. 19)", treeThroughput(netmodel.StockExchange()))
	register("fig20", "Multicast structures, stock latency (Fig. 20)", treeLatency(netmodel.StockExchange()))
	register("fig21", "Average multicast latency, ride-hailing, d*=3 (Fig. 21)", mcastLatency(netmodel.Default30Node()))
	register("fig22", "Average multicast latency, stock, d*=3 (Fig. 22)", mcastLatency(netmodel.StockExchange()))
	register("fig23", "Dynamic input rate: throughput timeline (Fig. 23)", runFig23)
	register("fig24", "Dynamic input rate: latency timeline (Fig. 24)", runFig24)
	register("fig25", "Communication time vs parallelism (Fig. 25)", runFig25)
	register("fig26", "Serialization share of communication time (Fig. 26)", runFig26)
	register("fig27", "Communication traffic per 10k tuples, ride-hailing (Fig. 27)", trafficSweep(netmodel.Default30Node()))
	register("fig28", "Communication traffic per 10k tuples, stock (Fig. 28)", trafficSweep(netmodel.StockExchange()))
	register("fig29", "RDMA operations: throughput (Fig. 29)", runFig29)
	register("fig30", "RDMA operations: average latency (Fig. 30)", runFig30)
	register("fig31", "Suited RDMA verbs: throughput (Fig. 31)", runFig31)
	register("fig32", "Suited RDMA verbs: latency (Fig. 32)", runFig32)
	register("fig33", "Throughput vs number of racks (Fig. 33)", runFig33)
	register("fig34", "Latency vs number of racks (Fig. 34)", runFig34)
	register("ablation-waterline", "Ablation: waterline rules vs baseline dynamic switch (Theorem 3)", runAblationWaterline)
	register("ablation-smoothing", "Ablation: α-weighted rate smoothing vs raw rate", runAblationSmoothing)
	register("ablation-dstar", "Ablation: fixed d* sweep (Theorems 1-2 trade-off)", runAblationDstar)
	register("ext-scale", "Extension: parallelism beyond core saturation", runExtScale)
	register("bottleneck", "Injected bottlenecks vs analyzer attribution", runBottleneck)
}

func runTable2(quick bool) (*Report, error) {
	samples := int64(200000)
	if quick {
		samples = 20000
	}
	rideCfg := workload.RideConfig{Drivers: 10000, Seed: 1}
	stockCfg := workload.StockConfig{Seed: 1}
	ride := workload.NewRideGen(rideCfg)
	rideKeys := map[string]bool{}
	for i := int64(0); i < samples; i++ {
		id, _, _ := ride.NextLocation()
		rideKeys[id] = true
	}
	stock := workload.NewStockGen(stockCfg)
	stockKeys := map[string]bool{}
	for i := int64(0); i < samples; i++ {
		sym, _, _, _ := stock.Next()
		stockKeys[sym] = true
	}
	rep := &Report{
		ID: "table2", Title: "Dataset statistics",
		Columns: []string{"dataset", "tuples", "keys"},
		Rows: [][]string{
			{"Didi Orders (paper)", "13 B", "6 M"},
			{"Nasdaq Stock (paper)", "274 M", "6.7 K"},
			{"synthetic ride-hailing (sampled)", fmt.Sprint(samples), fmt.Sprint(len(rideKeys))},
			{"synthetic stock (sampled)", fmt.Sprint(samples), fmt.Sprint(len(stockKeys))},
		},
		Notes: []string{"generators are unbounded streams; sampled keys approach the configured cardinality as the sample grows"},
	}
	return rep, nil
}

func runFig2(quick bool) (*Report, error) {
	rep := &Report{
		ID: "fig2", Title: "Storm one-to-many bottleneck",
		Columns: []string{"parallelism", "throughput t/s", "latency ms", "src CPU", "downstream CPU", "serialize share", "net share"},
	}
	levels := []int{30, 120, 240, 480}
	if quick {
		levels = []int{30, 480}
	}
	var first, last cluster.Result
	for i, n := range levels {
		res := desRun(cluster.Storm, n, netmodel.Default30Node(), quick, nil)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n), f0(res.Throughput), ms(res.ProcLatency.Mean),
			pct(res.SrcUtil), pct(res.MatchUtil), pct(res.SerFrac), pct(1 - res.SerFrac),
		})
		if i == 0 {
			first = res
		}
		last = res
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("paper Fig. 2a: throughput at max parallelism ~1/10 of lowest; measured ratio %.2f", last.Throughput/first.Throughput),
		"paper Fig. 2c-d: upstream CPU saturates on serialization+network while downstream idles")
	return rep, nil
}

func runFig3(quick bool) (*Report, error) {
	rep := &Report{
		ID: "fig3", Title: "RDMC transfer-queue blocking under rising input rate",
		Columns: []string{"input rate t/s", "throughput t/s", "load factor", "latency ms", "peak queue", "drops"},
	}
	// Probe RDMC's capacity, then sweep rates across it.
	cap := desRun(cluster.RDMC, 480, netmodel.Default30Node(), quick, nil).Throughput
	fractions := []float64{0.25, 0.5, 0.75, 0.9, 1.1, 1.5, 2.0}
	if quick {
		fractions = []float64{0.5, 1.5}
	}
	for _, f := range fractions {
		rate := cap * f
		res := desRun(cluster.RDMC, 480, netmodel.Default30Node(), quick, func(c *cluster.Config) {
			c.InputRate = rate
			c.Q = 256
			c.MaxTuples = tuples(quick) * 2
		})
		rep.Rows = append(rep.Rows, []string{
			f0(rate), f0(res.Throughput), f2(res.LoadFactor),
			ms(res.ProcLatency.Mean), fmt.Sprint(res.PeakQueue), fmt.Sprint(res.Drops),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper Fig. 3: RDMC throughput stops rising and latency spikes once the static tree's source saturates (load factor >= 1)")
	return rep, nil
}

func throughputSweep(p netmodel.Params, app string) func(bool) (*Report, error) {
	return func(quick bool) (*Report, error) {
		rep := &Report{
			Title:   app + " throughput vs parallelism",
			Columns: []string{"parallelism"},
		}
		for _, s := range fig13Systems {
			rep.Columns = append(rep.Columns, s.String()+" t/s")
		}
		var storm480, whale480 float64
		for _, n := range parallelisms(quick) {
			row := []string{fmt.Sprint(n)}
			for _, s := range fig13Systems {
				res := desRun(s, n, p, quick, nil)
				row = append(row, f0(res.Throughput))
				rep.setMetric(fmt.Sprintf("%s/%d", s, n), res.Throughput)
				if n == 480 {
					switch s {
					case cluster.Storm:
						storm480 = res.Throughput
					case cluster.Whale:
						whale480 = res.Throughput
					}
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
		if storm480 > 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"paper: Whale/Storm at 480 = 56.6x (ride) / 51.2x (stock); measured %.1fx (simulator-calibrated, see EXPERIMENTS.md)",
				whale480/storm480))
		}
		return rep, nil
	}
}

func latencySweep(p netmodel.Params, app string) func(bool) (*Report, error) {
	return func(quick bool) (*Report, error) {
		rep := &Report{
			Title:   app + " processing latency vs parallelism",
			Columns: []string{"parallelism"},
		}
		for _, s := range fig13Systems {
			rep.Columns = append(rep.Columns, s.String()+" ms")
		}
		var storm480, whale480 float64
		for _, n := range parallelisms(quick) {
			row := []string{fmt.Sprint(n)}
			for _, s := range fig13Systems {
				res := desRun(s, n, p, quick, nil)
				row = append(row, ms(res.ProcLatency.Mean))
				if n == 480 {
					switch s {
					case cluster.Storm:
						storm480 = res.ProcLatency.Mean
					case cluster.Whale:
						whale480 = res.ProcLatency.Mean
					}
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
		if storm480 > 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"paper: Whale reduces latency ~96%% at 480; measured %.1f%%", (1-whale480/storm480)*100))
		}
		return rep, nil
	}
}

// treeRate drives the three structures at the same open-loop rate: 90% of
// the binomial tree's capacity — past the sequential star's saturation
// point, where the paper measures the structures (it inputs the maximum
// rate the system sustains) and source queueing differentiates them.
func treeRate(p netmodel.Params, n int, quick bool) float64 {
	capacity := desRun(cluster.RDMC, n, p, quick, nil).Throughput
	return capacity * 0.9
}

func treeThroughput(p netmodel.Params) func(bool) (*Report, error) {
	return func(quick bool) (*Report, error) {
		rep := &Report{
			Title:   "multicast structures: closed-loop throughput",
			Columns: []string{"parallelism"},
		}
		for _, s := range treeSystems {
			rep.Columns = append(rep.Columns, s.name+" t/s")
		}
		for _, n := range parallelisms(quick) {
			row := []string{fmt.Sprint(n)}
			for _, s := range treeSystems {
				res := desRun(s.v, n, p, quick, nil)
				row = append(row, f0(res.Throughput))
				rep.setMetric(fmt.Sprintf("%s/%d", s.name, n), res.Throughput)
			}
			rep.Rows = append(rep.Rows, row)
		}
		rep.Notes = append(rep.Notes, "paper Figs. 17/19: non-blocking 1.2x binomial, 1.4x sequential at 480")
		return rep, nil
	}
}

func treeLatency(p netmodel.Params) func(bool) (*Report, error) {
	return func(quick bool) (*Report, error) {
		rep := &Report{
			Title:   "multicast structures: processing latency at 90% of binomial capacity",
			Columns: []string{"parallelism"},
		}
		for _, s := range treeSystems {
			rep.Columns = append(rep.Columns, s.name+" ms")
		}
		for _, n := range parallelisms(quick) {
			rate := treeRate(p, n, quick)
			row := []string{fmt.Sprint(n)}
			for _, s := range treeSystems {
				res := desRun(s.v, n, p, quick, func(c *cluster.Config) { c.InputRate = rate })
				row = append(row, ms(res.ProcLatency.Mean))
			}
			rep.Rows = append(rep.Rows, row)
		}
		rep.Notes = append(rep.Notes, "paper Figs. 18/20: non-blocking cuts latency 26.9%/23.4% vs binomial, 38.8%/32.6% vs sequential")
		return rep, nil
	}
}

func mcastLatency(p netmodel.Params) func(bool) (*Report, error) {
	return func(quick bool) (*Report, error) {
		rep := &Report{
			Title:   "average multicast latency (d*=3) at 90% of binomial capacity",
			Columns: []string{"parallelism"},
		}
		for _, s := range treeSystems {
			rep.Columns = append(rep.Columns, s.name+" µs")
		}
		for _, n := range parallelisms(quick) {
			rate := treeRate(p, n, quick)
			row := []string{fmt.Sprint(n)}
			for _, s := range treeSystems {
				res := desRun(s.v, n, p, quick, func(c *cluster.Config) {
					c.InputRate = rate
					c.Dstar = 3
				})
				row = append(row, us(res.McastLat.Mean))
			}
			rep.Rows = append(rep.Rows, row)
		}
		rep.Notes = append(rep.Notes, "paper Figs. 21/22: non-blocking 54.4%/50.6% below binomial, 57.8%/56.6% below sequential at 480")
		return rep, nil
	}
}

// fig23Profile is the paper's step profile (30k -> 60k -> 80k -> 100k ->
// 80k tuples/s), compressed from 40s phases to 0.25s phases of simulated
// time.
func fig23Profile(now sim.Time) float64 {
	sec := float64(now) / 1e9
	switch {
	case sec < 0.25:
		return 30000
	case sec < 0.5:
		return 60000
	case sec < 0.75:
		return 80000
	case sec < 1.0:
		return 100000
	default:
		return 80000
	}
}

func dynamicRun(v cluster.Variant, adaptive bool, quick bool) cluster.Result {
	dur := sim.Time(125e7)
	if quick {
		dur = 5e8
	}
	return cluster.Run(cluster.Config{
		Variant: v, Parallelism: 480, Adaptive: adaptive,
		Params:      netmodel.DynamicProfile(),
		RateProfile: fig23Profile, Duration: dur, Q: 512,
		MonitorInterval: 5 * time.Millisecond,
		TimelineBucket:  5e7, MaxTuples: 1 << 30, Seed: 11,
	})
}

func runFig23(quick bool) (*Report, error) {
	whale := dynamicRun(cluster.Whale, true, quick)
	star := dynamicRun(cluster.WhaleWOCRDMA, false, quick)
	rep := &Report{
		ID: "fig23", Title: "throughput under the 30k/60k/80k/100k/80k t/s step profile",
		Columns: []string{"t (s)", "offered t/s", "Whale t/s", "Whale d*", "sequential t/s", "seq drops"},
	}
	for i, pt := range whale.Timeline {
		var starTp float64
		var starDrops int64
		if i < len(star.Timeline) {
			starTp = star.Timeline[i].Throughput
			starDrops = star.Timeline[i].Drops
		}
		rep.Rows = append(rep.Rows, []string{
			f2(float64(pt.T) / 1e9), f0(fig23Profile(pt.T - 1)), f0(pt.Throughput),
			fmt.Sprint(pt.Dstar), f0(starTp), fmt.Sprint(starDrops),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("Whale switched %d times; final d*=%d; drops: Whale %d vs sequential %d",
			whale.Switches, whale.FinalDstar, whale.Drops, star.Drops),
		"paper Fig. 23: throughput recovers within ~126ms of each rate step; the switch pause is visible as a one-bucket dip")
	return rep, nil
}

func runFig24(quick bool) (*Report, error) {
	whale := dynamicRun(cluster.Whale, true, quick)
	star := dynamicRun(cluster.WhaleWOCRDMA, false, quick)
	rep := &Report{
		ID: "fig24", Title: "processing latency under the dynamic profile",
		Columns: []string{"t (s)", "offered t/s", "Whale ms", "sequential ms"},
	}
	for i, pt := range whale.Timeline {
		var starLat float64
		if i < len(star.Timeline) {
			starLat = star.Timeline[i].MeanLatencyNS
		}
		rep.Rows = append(rep.Rows, []string{
			f2(float64(pt.T) / 1e9), f0(fig23Profile(pt.T - 1)), ms(pt.MeanLatencyNS), ms(starLat),
		})
	}
	rep.Notes = append(rep.Notes, "paper Fig. 24: sequential latency rises with the input rate; Whale recovers within ~30ms of each switch")
	return rep, nil
}

func runFig25(quick bool) (*Report, error) {
	rep := &Report{
		ID: "fig25", Title: "source communication time per tuple",
		Columns: []string{"parallelism", "Storm µs", "RDMA-Storm µs", "Whale µs", "Whale reduction vs Storm"},
	}
	for _, n := range parallelisms(quick) {
		storm := desRun(cluster.Storm, n, netmodel.Default30Node(), quick, nil)
		rstorm := desRun(cluster.RDMAStorm, n, netmodel.Default30Node(), quick, nil)
		whale := desRun(cluster.Whale, n, netmodel.Default30Node(), quick, nil)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n), us(storm.CommNSPerTuple), us(rstorm.CommNSPerTuple), us(whale.CommNSPerTuple),
			pct(1 - whale.CommNSPerTuple/storm.CommNSPerTuple),
		})
	}
	rep.Notes = append(rep.Notes, "paper: Whale reduces communication time 96% vs Storm, 92% vs RDMA-Storm at 480; Whale's is flat in parallelism")
	return rep, nil
}

func runFig26(quick bool) (*Report, error) {
	rep := &Report{
		ID: "fig26", Title: "serialization share of communication time",
		Columns: []string{"parallelism", "Storm", "RDMA-Storm", "Whale", "Storm ser µs/tuple", "Whale ser µs/tuple"},
	}
	for _, n := range parallelisms(quick) {
		storm := desRun(cluster.Storm, n, netmodel.Default30Node(), quick, nil)
		rstorm := desRun(cluster.RDMAStorm, n, netmodel.Default30Node(), quick, nil)
		// The serialization-share comparison isolates the worker-oriented
		// communication path (star fan-out), as the paper's Fig. 26 does.
		whale := desRun(cluster.WhaleWOCRDMA, n, netmodel.Default30Node(), quick, nil)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n), pct(storm.SerFrac), pct(rstorm.SerFrac), pct(whale.SerFrac),
			us(storm.SerNSPerTuple), us(whale.SerNSPerTuple),
		})
	}
	rep.Notes = append(rep.Notes, "paper: serialization is 45% of Storm's and 94% of RDMA-Storm's communication time; 15% of Whale's")
	return rep, nil
}

func trafficSweep(p netmodel.Params) func(bool) (*Report, error) {
	return func(quick bool) (*Report, error) {
		rep := &Report{
			Title:   "source communication traffic per 10k tuples",
			Columns: []string{"parallelism", "Storm MB", "RDMA-Storm MB", "Whale MB", "Whale reduction"},
		}
		for _, n := range parallelisms(quick) {
			storm := desRun(cluster.Storm, n, p, quick, nil)
			rstorm := desRun(cluster.RDMAStorm, n, p, quick, nil)
			whale := desRun(cluster.Whale, n, p, quick, nil)
			mb := func(b float64) string { return f2(b / 1e6) }
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(n), mb(storm.TrafficBytesPer10k), mb(rstorm.TrafficBytesPer10k), mb(whale.TrafficBytesPer10k),
				pct(1 - whale.TrafficBytesPer10k/storm.TrafficBytesPer10k),
			})
		}
		rep.Notes = append(rep.Notes, "paper Figs. 27/28: Whale cuts traffic 91.9% (ride) / 90% (stock) at 480 and stays nearly flat")
		return rep, nil
	}
}

func runFig31(quick bool) (*Report, error) {
	rep := &Report{
		ID: "fig31", Title: "suited verbs per path (Whale_DiffVerbs) vs baselines: throughput",
		Columns: []string{"parallelism", "RDMA-Storm t/s", "Whale_SameVerbs t/s", "Whale_DiffVerbs t/s", "DiffVerbs/RDMA-Storm"},
	}
	// Same-verbs = two-sided SEND/RECV on the data path (Whale-WOC);
	// DiffVerbs = the suited one-sided READ ring path (Whale-WOC-RDMA).
	// The worker-oriented star isolates the verbs choice: with the
	// multicast tree both are so cheap at the source that the downstream
	// operator caps throughput and the difference vanishes.
	for _, n := range parallelisms(quick) {
		rstorm := desRun(cluster.RDMAStorm, n, netmodel.Default30Node(), quick, nil)
		sameRes := desRun(cluster.WhaleWOC, n, netmodel.Default30Node(), quick, nil)
		diff := desRun(cluster.WhaleWOCRDMA, n, netmodel.Default30Node(), quick, nil)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n), f0(rstorm.Throughput), f0(sameRes.Throughput), f0(diff.Throughput),
			f1(diff.Throughput/rstorm.Throughput) + "x",
		})
	}
	rep.Notes = append(rep.Notes, "paper Fig. 31: Whale_DiffVerbs reaches 15.6x RDMA-Storm throughput at 480")
	return rep, nil
}

func runFig32(quick bool) (*Report, error) {
	rep := &Report{
		ID: "fig32", Title: "suited verbs per path: processing latency",
		Columns: []string{"parallelism", "RDMA-Storm ms", "Whale_SameVerbs ms", "Whale_DiffVerbs ms", "reduction vs RDMA-Storm"},
	}
	for _, n := range parallelisms(quick) {
		rstorm := desRun(cluster.RDMAStorm, n, netmodel.Default30Node(), quick, nil)
		sameRes := desRun(cluster.WhaleWOC, n, netmodel.Default30Node(), quick, nil)
		diff := desRun(cluster.WhaleWOCRDMA, n, netmodel.Default30Node(), quick, nil)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n), ms(rstorm.ProcLatency.Mean), ms(sameRes.ProcLatency.Mean), ms(diff.ProcLatency.Mean),
			pct(1 - diff.ProcLatency.Mean/rstorm.ProcLatency.Mean),
		})
	}
	rep.Notes = append(rep.Notes, "paper Fig. 32: 96% latency reduction vs RDMA-Storm")
	return rep, nil
}

func rackSweep(metric func(cluster.Result) string, unit string) func(bool) (*Report, error) {
	return func(quick bool) (*Report, error) {
		rep := &Report{
			Columns: []string{"racks", "Storm " + unit, "RDMA-Storm " + unit, "Whale " + unit},
		}
		racks := []int{1, 2, 3, 4, 5}
		if quick {
			racks = []int{1, 5}
		}
		for _, r := range racks {
			row := []string{fmt.Sprint(r)}
			for _, v := range []cluster.Variant{cluster.Storm, cluster.RDMAStorm, cluster.Whale} {
				res := desRun(v, 480, netmodel.Default30Node(), quick, func(c *cluster.Config) { c.Racks = r })
				row = append(row, metric(res))
			}
			rep.Rows = append(rep.Rows, row)
		}
		rep.Notes = append(rep.Notes, "paper Figs. 33/34: Whale is stable across 1-5 racks")
		return rep, nil
	}
}

func runFig33(quick bool) (*Report, error) {
	rep, err := rackSweep(func(r cluster.Result) string { return f0(r.Throughput) }, "t/s")(quick)
	if rep != nil {
		rep.ID, rep.Title = "fig33", "throughput vs number of racks"
	}
	return rep, err
}

func runFig34(quick bool) (*Report, error) {
	rep, err := rackSweep(func(r cluster.Result) string { return ms(r.ProcLatency.Mean) }, "ms")(quick)
	if rep != nil {
		rep.ID, rep.Title = "fig34", "processing latency vs number of racks"
	}
	return rep, err
}

// runAblationWaterline compares the §3.3 waterline rules against the
// baseline dynamic switch of Definition 3 (which only reacts when the
// queue has already reached l_w): the waterline rules trigger earlier, so
// the peak queue stays lower (Theorem 3).
func runAblationWaterline(quick bool) (*Report, error) {
	dur := sim.Time(125e7)
	if quick {
		dur = 5e8
	}
	run := func(tdown float64) cluster.Result {
		return cluster.Run(cluster.Config{
			Variant: cluster.Whale, Parallelism: 480, Adaptive: true,
			Params:      netmodel.DynamicProfile(),
			RateProfile: fig23Profile, Duration: dur, Q: 512,
			MonitorInterval: 5 * time.Millisecond,
			MaxTuples:       1 << 30, Seed: 11, TDownOverride: tdown,
		})
	}
	early := run(0.5) // paper's proactive rule
	late := run(1e12) // effectively "wait for l_w" (baseline dynamic switch)
	rep := &Report{
		ID: "ablation-waterline", Title: "negative scale-down rule vs baseline dynamic switch",
		Columns: []string{"policy", "peak queue", "drops", "switches", "mean latency ms"},
		Rows: [][]string{
			{"waterline rule (T_down=0.5)", fmt.Sprint(early.PeakQueue), fmt.Sprint(early.Drops), fmt.Sprint(early.Switches), ms(early.ProcLatency.Mean)},
			{"baseline (react at l_w)", fmt.Sprint(late.PeakQueue), fmt.Sprint(late.Drops), fmt.Sprint(late.Switches), ms(late.ProcLatency.Mean)},
		},
		Notes: []string{"Theorem 3: the proactive rule's maximum queue length is below the baseline's"},
	}
	return rep, nil
}

// runAblationSmoothing compares α-weighted input-rate smoothing against
// raw per-interval rates under the noisy step profile.
func runAblationSmoothing(quick bool) (*Report, error) {
	dur := sim.Time(125e7)
	if quick {
		dur = 5e8
	}
	run := func(alpha float64) cluster.Result {
		return cluster.Run(cluster.Config{
			Variant: cluster.Whale, Parallelism: 480, Adaptive: true,
			Params:      netmodel.DynamicProfile(),
			RateProfile: fig23Profile, Duration: dur, Q: 512,
			MonitorInterval: 5 * time.Millisecond,
			MaxTuples:       1 << 30, Seed: 11, AlphaOverride: alpha,
		})
	}
	smoothed := run(0.5)
	raw := run(1e-9) // α→0 disables history
	rep := &Report{
		ID: "ablation-smoothing", Title: "α-weighted smoothing vs raw rate estimation",
		Columns: []string{"estimator", "switches", "drops", "mean latency ms"},
		Rows: [][]string{
			{"α = 0.5 (paper §4)", fmt.Sprint(smoothed.Switches), fmt.Sprint(smoothed.Drops), ms(smoothed.ProcLatency.Mean)},
			{"raw rate (α ≈ 0)", fmt.Sprint(raw.Switches), fmt.Sprint(raw.Drops), ms(raw.ProcLatency.Mean)},
		},
		Notes: []string{"raw estimation reacts to Poisson noise with extra switches, each pausing the source"},
	}
	return rep, nil
}

// runAblationDstar fixes the non-blocking tree's out-degree cap at each
// value and shows the Theorem 1/2 trade-off the controller navigates: a
// larger d* multicasts faster (lower completion depth) but lowers the
// maximum affordable input rate of the source.
func runAblationDstar(quick bool) (*Report, error) {
	rep := &Report{
		ID: "ablation-dstar", Title: "fixed d* sweep: affordability vs multicast speed (Theorems 1-2)",
		Columns: []string{"d*", "tree depth", "throughput t/s", "mcast latency µs", "proc latency ms", "src CPU"},
	}
	caps := []int{1, 2, 3, 4, 5}
	if quick {
		caps = []int{1, 3, 5}
	}
	for _, d := range caps {
		res := desRun(cluster.Whale, 480, netmodel.Default30Node(), quick, func(c *cluster.Config) {
			c.Dstar = d
		})
		depth := queueing.CompletionTime(29, d) // 30 engaged workers, 29 dests
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(d), fmt.Sprint(depth), f0(res.Throughput),
			us(res.McastLat.Mean), ms(res.ProcLatency.Mean), pct(res.SrcUtil),
		})
	}
	rep.Notes = append(rep.Notes,
		"Theorem 1: max affordable input rate ∝ 1/d0 (source CPU share rises with d*)",
		"Theorem 2: multicast capability grows with d0 (completion depth falls)")
	return rep, nil
}

// runExtScale extends the paper's Fig. 13 sweep beyond the testbed's
// 480-instance limit: past 16 instances per machine the cores
// oversubscribe, so Whale's throughput flattens and then declines — the
// regime the paper never measures (its cluster is exactly 30 x 16 cores).
func runExtScale(quick bool) (*Report, error) {
	rep := &Report{
		ID: "ext-scale", Title: "beyond the paper: parallelism past core saturation (30 machines x 16 cores)",
		Columns: []string{"parallelism", "instances/machine", "Whale t/s", "Whale latency ms", "Storm t/s"},
	}
	levels := []int{480, 720, 960, 1440}
	if quick {
		levels = []int{480, 960}
	}
	for _, n := range levels {
		whale := desRun(cluster.Whale, n, netmodel.Default30Node(), quick, nil)
		storm := desRun(cluster.Storm, n, netmodel.Default30Node(), quick, nil)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n), fmt.Sprint((n + 29) / 30), f0(whale.Throughput),
			ms(whale.ProcLatency.Mean), f0(storm.Throughput),
		})
	}
	rep.Notes = append(rep.Notes,
		"beyond 480 instances the matching state per instance keeps shrinking, but cores oversubscribe: Whale's curve bends where the paper's sweep stops")
	return rep, nil
}
