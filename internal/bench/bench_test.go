package bench

import (
	"strconv"
	"strings"
	"testing"
)

// raceEnabled is set by race_test.go under -race.
var raceEnabled bool

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must be registered.
	want := []string{
		"table2", "fig2", "fig3", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"fig21", "fig22", "fig23", "fig24", "fig25", "fig26", "fig27", "fig28",
		"fig29", "fig30", "fig31", "fig32", "fig33", "fig34",
		"ablation-waterline", "ablation-smoothing", "ablation-dstar", "ext-scale",
		"bottleneck",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, manifest %d", len(ids), len(want))
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", true); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, ok := Get("fig13"); !ok {
		t.Fatal("Get failed for known id")
	}
}

// TestAllExperimentsQuick smoke-runs every experiment in quick mode and
// sanity-checks the report structure.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, true)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id {
				t.Fatalf("report id %q", rep.ID)
			}
			if len(rep.Columns) < 2 || len(rep.Rows) == 0 {
				t.Fatalf("degenerate report: %+v", rep)
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Columns) {
					t.Fatalf("row width %d vs %d columns", len(row), len(rep.Columns))
				}
			}
			if !strings.Contains(rep.String(), id) {
				t.Fatal("String() missing id")
			}
		})
	}
}

// cell parses a numeric report cell (strips x / % / unit suffixes).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// TestFig13ReportShape verifies the regenerated table's headline shape:
// at 480, columns are ordered Storm < RDMA-Storm < WOC < WOC-RDMA <= Whale.
func TestFig13ReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	rep, err := Run("fig13", true)
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last[0] != "480" {
		t.Fatalf("last row parallelism %s", last[0])
	}
	vals := make([]float64, 0, 5)
	for _, c := range last[1:] {
		vals = append(vals, cell(t, c))
	}
	for i := 0; i+2 < len(vals); i++ {
		if !(vals[i] < vals[i+1]) {
			t.Fatalf("ordering broken in row %v", last)
		}
	}
	if vals[4] < vals[3]*0.95 {
		t.Fatalf("Whale below WOC-RDMA: %v", last)
	}
}

// TestFig11MMSShape: throughput non-decreasing-ish with MMS and latency
// increasing overall.
func TestFig11MMSShape(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	if raceEnabled {
		t.Skip("timing-sensitive microbenchmark; race detector slowdown distorts pacing")
	}
	rep, err := Run("fig11", true)
	if err != nil {
		t.Fatal(err)
	}
	firstLat := cell(t, rep.Rows[0][2])
	lastLat := cell(t, rep.Rows[len(rep.Rows)-1][2])
	if !(lastLat > firstLat) {
		t.Fatalf("latency did not grow with MMS: %v -> %v", firstLat, lastLat)
	}
	firstWR := cell(t, rep.Rows[0][4])
	lastWR := cell(t, rep.Rows[len(rep.Rows)-1][4])
	if !(lastWR < firstWR) {
		t.Fatalf("work requests did not fall with MMS: %v -> %v", firstWR, lastWR)
	}
}

// TestFig12WTLShape: latency grows with WTL.
func TestFig12WTLShape(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	if raceEnabled {
		t.Skip("timing-sensitive microbenchmark; race detector slowdown distorts pacing")
	}
	// The shape (growth) is what matters; scheduler jitter on loaded
	// machines makes a fixed multiple flaky (CPU contention from sibling
	// test packages can invert millisecond-scale rows entirely), so
	// require a clear but modest margin and allow a couple of re-runs. A
	// real semantic regression — WTL not delaying the flush — fails every
	// attempt deterministically.
	var firstLat, lastLat float64
	for attempt := 0; attempt < 3; attempt++ {
		rep, err := Run("fig12", true)
		if err != nil {
			t.Fatal(err)
		}
		firstLat = cell(t, rep.Rows[0][2])
		lastLat = cell(t, rep.Rows[len(rep.Rows)-1][2])
		if lastLat > 1.3*firstLat {
			return
		}
		t.Logf("attempt %d: latency did not grow with WTL: %v -> %v", attempt+1, firstLat, lastLat)
	}
	t.Fatalf("latency did not grow with WTL in 3 attempts: %v -> %v", firstLat, lastLat)
}

// TestFig29VerbsOrdering: one-sided READ sustains at least two-sided's
// throughput (the paper's headline ordering).
func TestFig29VerbsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("-short")
	}
	if raceEnabled {
		t.Skip("timing-sensitive microbenchmark; race detector slowdown distorts pacing")
	}
	rep, err := Run("fig29", true)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, row := range rep.Rows {
		byName[row[0]] = cell(t, row[1])
	}
	// The paper's headline: the READ-based ring data path wins.
	read := byName["one-sided READ"]
	if read <= byName["two-sided SEND/RECV"] || read <= byName["one-sided WRITE"] {
		t.Fatalf("READ (%f) not the best: %v", read, byName)
	}
}
