// Package bench defines one reproducible experiment per table and figure
// in the paper's evaluation (§5). Experiments print the same rows/series
// the paper reports: parallelism sweeps over the system variants, input-
// rate sweeps, multicast-structure comparisons, the dynamic-rate timeline,
// communication-time/traffic accounting, RDMA verbs microbenchmarks, and
// the rack-topology sweep.
//
// Experiments at paper scale (480 instances, 30 machines) run on the
// discrete-event cluster model (internal/cluster); the RDMA channel and
// verbs microbenchmarks (Figs. 11-12, 29-30) run live on the emulated
// verbs library (internal/rdma).
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one experiment's regenerated table.
type Report struct {
	// ID is the experiment id ("fig13", "table2", ...).
	ID string
	// Title describes what the paper figure/table shows.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, formatted.
	Rows [][]string
	// Notes records paper-vs-measured commentary.
	Notes []string
	// Metrics exposes selected numeric results (keyed "<series>/<x>", e.g.
	// "Whale/480" -> tuples/sec) so tooling like cmd/whaleperf can gate on
	// them without parsing the formatted rows. Populated by the experiments
	// the perf gate tracks; nil elsewhere.
	Metrics map[string]float64
}

// setMetric records one numeric result on the report.
func (r *Report) setMetric(key string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[key] = v
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered, runnable reproduction.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment; quick shrinks it for smoke tests.
	Run func(quick bool) (*Report, error)
}

var registry = map[string]*Experiment{}
var order []string

func register(id, title string, run func(quick bool) (*Report, error)) {
	if _, dup := registry[id]; dup {
		panic("bench: duplicate experiment " + id)
	}
	registry[id] = &Experiment{ID: id, Title: title, Run: run}
	order = append(order, id)
}

// IDs returns all experiment ids in registration (paper) order.
func IDs() []string {
	out := append([]string(nil), order...)
	return out
}

// Get returns the experiment with the given id.
func Get(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Run executes one experiment by id.
func Run(id string, quick bool) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %s)", id, strings.Join(known, ", "))
	}
	rep, err := e.Run(quick)
	if rep != nil && rep.ID == "" {
		rep.ID = id
	}
	return rep, err
}

// formatting helpers ---------------------------------------------------------

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// ms renders nanoseconds as milliseconds.
func ms(ns float64) string { return fmt.Sprintf("%.3f", ns/1e6) }

// us renders nanoseconds as microseconds.
func us(ns float64) string { return fmt.Sprintf("%.1f", ns/1e3) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
