//go:build race

package bench

// raceEnabled marks the race detector active: the live-channel
// microbenchmark shape tests are timing-sensitive and the detector's
// ~10x slowdown distorts pacing, so they are skipped under -race (their
// logic still runs in the normal suite).
func init() { raceEnabled = true }
