package bench

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"whale/internal/metrics"
	"whale/internal/rdma"
)

// microResult is one live channel measurement.
type microResult struct {
	msgsPerSec   float64
	meanLatNS    float64
	p99LatNS     int64
	workRequests int64
	timerFlushes int64
	sizeFlushes  int64
}

// runChannelMicro pumps msgs messages of msgSize bytes through a fresh
// channel with the given configuration, pacing to ratePerSec (0 = full
// speed), and measures delivered throughput and per-message latency
// (timestamps ride in the payload).
func runChannelMicro(cfg rdma.ChannelConfig, msgs, msgSize int, ratePerSec float64) (microResult, error) {
	return runChannelMicroCost(cfg, rdma.CostModel{}, msgs, msgSize, ratePerSec)
}

func runChannelMicroCost(cfg rdma.ChannelConfig, cost rdma.CostModel, msgs, msgSize int, ratePerSec float64) (microResult, error) {
	fabric := rdma.NewFabric(cost)
	src, err := rdma.NewEndpoint(fabric, "src", cfg)
	if err != nil {
		return microResult{}, err
	}
	dst, err := rdma.NewEndpoint(fabric, "dst", cfg)
	if err != nil {
		return microResult{}, err
	}
	var delivered atomic.Int64
	lat := &metrics.Histogram{}
	done := make(chan struct{})
	dst.OnAccept(func(_ string, ch *rdma.Channel) {
		ch.SetHandler(func(m []byte) {
			sent := int64(binary.LittleEndian.Uint64(m))
			lat.Observe(time.Now().UnixNano() - sent)
			if delivered.Add(1) == int64(msgs) {
				close(done)
			}
		})
	})
	ch, err := src.Dial("dst")
	if err != nil {
		return microResult{}, err
	}
	defer func() {
		// Benchmark teardown; close errors have no bearing on the result.
		_ = src.Close()
		_ = dst.Close()
	}()

	payload := make([]byte, msgSize)
	start := time.Now()
	var interval time.Duration
	if ratePerSec > 0 {
		interval = time.Duration(1e9 / ratePerSec)
	}
	for i := 0; i < msgs; i++ {
		if interval > 0 {
			next := start.Add(time.Duration(i) * interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
		binary.LittleEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
		if err := ch.Send(payload); err != nil {
			return microResult{}, err
		}
	}
	if err := ch.Flush(); err != nil {
		return microResult{}, err
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		return microResult{}, fmt.Errorf("bench: microbench timed out with %d/%d delivered", delivered.Load(), msgs)
	}
	elapsed := time.Since(start)
	st := ch.Stats()
	return microResult{
		msgsPerSec:   float64(msgs) / elapsed.Seconds(),
		meanLatNS:    lat.Mean(),
		p99LatNS:     lat.Quantile(0.99),
		workRequests: st.WorkRequests,
		timerFlushes: st.TimerFlushes,
		sizeFlushes:  st.SizeFlushes,
	}, nil
}

func runFig11(quick bool) (*Report, error) {
	msgs, size := 20000, 512
	if quick {
		msgs = 3000
	}
	sizesKB := []int{512, 4 << 10, 32 << 10, 256 << 10, 1 << 20}
	rep := &Report{
		ID: "fig11", Title: "throughput and latency vs MMS (one-sided READ channel)",
		Columns: []string{"MMS", "throughput msg/s", "mean latency µs", "p99 µs", "work requests", "size flushes"},
	}
	for _, mms := range sizesKB {
		cfg := rdma.ChannelConfig{
			Mode: rdma.ModeOneSidedRead, MMS: mms, WTL: 50 * time.Millisecond,
			RingSize: 8 << 20,
		}
		// Throughput: full-speed pumping (larger MMS -> fewer, larger work
		// requests -> higher sustained rate).
		tp, err := runChannelMicro(cfg, msgs, size, 0)
		if err != nil {
			return nil, err
		}
		// Latency: a paced stream, where a message's delay is dominated by
		// waiting for the batch to fill (the paper's Fig. 11 trade-off).
		paced, err := runChannelMicro(cfg, msgs/4, size, 20000)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmtBytes(mms), f0(tp.msgsPerSec), us(paced.meanLatNS), us(float64(paced.p99LatNS)),
			fmt.Sprint(tp.workRequests), fmt.Sprint(tp.sizeFlushes),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper Fig. 11: throughput grows with MMS while latency rises sharply past 256KB (buffer fill time); Whale picks MMS=256KB")
	return rep, nil
}

func runFig12(quick bool) (*Report, error) {
	msgs, size := 4000, 512
	if quick {
		msgs = 800
	}
	wtls := []time.Duration{time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond, 30 * time.Millisecond}
	rep := &Report{
		ID: "fig12", Title: "throughput and latency vs WTL (one-sided READ channel)",
		Columns: []string{"WTL", "throughput msg/s", "mean latency µs", "p99 µs", "timer flushes"},
	}
	for _, wtl := range wtls {
		// A huge MMS isolates the WTL effect: flushes happen on the timer.
		// The send rate is low enough that batches never fill.
		res, err := runChannelMicro(rdma.ChannelConfig{
			Mode: rdma.ModeOneSidedRead, MMS: 64 << 20, WTL: wtl,
			RingSize: 128 << 20,
		}, msgs, size, 100_000)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			wtl.String(), f0(res.msgsPerSec), us(res.meanLatNS), us(float64(res.p99LatNS)),
			fmt.Sprint(res.timerFlushes),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper Fig. 12: latency grows with WTL while throughput dips slightly; Whale picks WTL=1ms")
	return rep, nil
}

// verbsModes are the data paths of Figs. 29-30.
var verbsModes = []struct {
	name string
	mode rdma.Mode
}{
	{"one-sided READ", rdma.ModeOneSidedRead},
	{"one-sided WRITE", rdma.ModeOneSidedWrite},
	{"two-sided SEND/RECV", rdma.ModeTwoSided},
}

func runVerbs(quick bool) (map[string]microResult, error) {
	msgs, size := 20000, 4096
	if quick {
		msgs = 4000
	}
	// Calibrated RNIC asymmetry: every wire operation pays a base latency,
	// and two-sided operations additionally pay the receiver-side WQE/recv
	// processing that one-sided operations bypass — the hardware property
	// Figs. 29-30 measure. The costs are set well above the emulation's
	// bookkeeping overhead so the modelled asymmetry, not Go scheduling,
	// determines the outcome.
	cost := rdma.CostModel{
		OpBaseDelay:        10 * time.Microsecond,
		TwoSidedExtraDelay: 60 * time.Microsecond,
	}
	out := map[string]microResult{}
	for _, m := range verbsModes {
		cfg := rdma.ChannelConfig{
			Mode: m.mode, MMS: 64 << 10, WTL: time.Millisecond, RingSize: 16 << 20,
		}
		// Throughput: full-speed pumping.
		res, err := runChannelMicroCost(cfg, cost, msgs, size, 0)
		if err != nil {
			return nil, err
		}
		// Latency: a paced run well below saturation, so the figure is the
		// op pipeline's delay rather than queue depth.
		paced, err := runChannelMicroCost(cfg, cost, msgs/4, size, 8000)
		if err != nil {
			return nil, err
		}
		res.meanLatNS = paced.meanLatNS
		res.p99LatNS = paced.p99LatNS
		out[m.name] = res
	}
	return out, nil
}

func runFig29(quick bool) (*Report, error) {
	res, err := runVerbs(quick)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID: "fig29", Title: "RDMA operation throughput (4KB messages)",
		Columns: []string{"operation", "throughput msg/s", "work requests"},
	}
	for _, m := range verbsModes {
		r := res[m.name]
		rep.Rows = append(rep.Rows, []string{m.name, f0(r.msgsPerSec), fmt.Sprint(r.workRequests)})
	}
	rep.Notes = append(rep.Notes,
		"paper Fig. 29: one-sided ops outperform two-sided; READ is best (the ring consumer batches many frames per poll)",
		"deviation: in this emulation one-sided WRITE lands below two-sided because each flush synchronously publishes the head counter; on hardware (paper) WRITE stays above SEND/RECV")
	return rep, nil
}

func runFig30(quick bool) (*Report, error) {
	res, err := runVerbs(quick)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID: "fig30", Title: "RDMA operation average latency (4KB messages)",
		Columns: []string{"operation", "mean latency µs", "p99 µs"},
	}
	for _, m := range verbsModes {
		r := res[m.name]
		rep.Rows = append(rep.Rows, []string{m.name, us(r.meanLatNS), us(float64(r.p99LatNS))})
	}
	rep.Notes = append(rep.Notes, "paper Fig. 30: one-sided READ has the lowest average latency")
	return rep, nil
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
