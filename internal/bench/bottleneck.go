package bench

import (
	"fmt"

	"whale/internal/cluster"
	"whale/internal/obs/attrib"
)

// bottleneckScenario injects one known bottleneck into the DES cluster and
// names the component the analyzer must attribute it to.
type bottleneckScenario struct {
	name      string
	component string // expected Finding.Component of the top-ranked finding
	class     string // expected Finding.Class
	mut       func(*cluster.Config)
}

// bottleneckScenarios are the attribution experiment's ground truths: a
// slow subscriber machine, a hot interior relay, and an undersized credit
// window on one source link. Factors are deliberately heavy-handed — the
// experiment validates *attribution*, not sensitivity, so the injected
// component must dominate the stall profile decisively.
func bottleneckScenarios() []bottleneckScenario {
	return []bottleneckScenario{
		{
			name:      "slow-subscriber",
			component: "worker 7 executor",
			class:     attrib.ClassSlowSubscriber,
			mut: func(c *cluster.Config) {
				c.Variant = cluster.Whale
				c.SlowMachine = 7
				c.SlowFactor = 48
			},
		},
		{
			name:      "hot-relay",
			component: "worker 1 relay",
			class:     attrib.ClassHotRelay,
			mut: func(c *cluster.Config) {
				c.Variant = cluster.Whale
				c.HotRelayMachine = 1
				c.HotRelayFactor = 48
			},
		},
		{
			name:      "credit-limited-link",
			component: "link w0→w5",
			class:     attrib.ClassCreditLimited,
			mut: func(c *cluster.Config) {
				// Star fan-out so the source sends on link 0→5 directly.
				c.Variant = cluster.WhaleWOCRDMA
				c.CreditLimitMachine = 5
				c.CreditRatePerSec = 1200
			},
		},
	}
}

// bottleneckRun executes one injection scenario at paper scale under an
// open-loop rate the unperturbed pipeline sustains easily, so all excess
// queueing concentrates at the injected component.
func bottleneckRun(sc bottleneckScenario, quick bool) cluster.Result {
	cfg := cluster.Config{
		Parallelism: 480,
		InputRate:   3000,
		MaxTuples:   tuples(quick),
		Seed:        7,
	}
	sc.mut(&cfg)
	return cluster.Run(cfg)
}

func runBottleneck(quick bool) (*Report, error) {
	rep := &Report{
		ID:    "bottleneck",
		Title: "Injected bottlenecks vs analyzer attribution (M/D/1 stall profile)",
		Columns: []string{
			"injected", "top-ranked component / model", "class / action", "stall share", "detail", "ok?",
		},
	}
	for _, sc := range bottleneckScenarios() {
		res := bottleneckRun(sc, quick)
		top := res.Bottleneck.Top()
		hit := "MISS"
		if top.Component == sc.component && top.Class == sc.class {
			hit = "yes"
		}
		rep.Rows = append(rep.Rows, []string{
			sc.name, top.Component, top.Class,
			pct(top.Share), ms(float64(top.StallNS)) + " stalled", hit,
		})
		rep.setMetric(sc.name+"/top_share", top.Share)
		if hit != "yes" {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: expected %s %s, analyzer ranked %s %s first",
				sc.name, sc.component, sc.class, top.Component, top.Class))
		}
	}
	appendHotOperatorRow(rep, quick)
	return rep, nil
}

// appendHotOperatorRow runs the closed-loop autoscale validation: an
// operator-wide hot spot (every matching instance's service time stretched)
// must drive the measured utilization over the band and make the modeled
// M/D/1 controller size the pool to exactly the analytic prediction
// (cluster.PredictedAutoscaleTarget) — the same sizing arithmetic the live
// dsps autoscaler runs on the rescale plane.
func appendHotOperatorRow(rep *Report, quick bool) {
	cfg := cluster.Config{
		Variant:           cluster.Whale,
		Parallelism:       480,
		InputRate:         3000,
		MaxTuples:         tuples(quick),
		Seed:              7,
		HotOperatorFactor: 14,
	}
	res := cluster.Run(cfg)
	want := cluster.PredictedAutoscaleTarget(cfg)
	hit := "MISS"
	if res.AutoscaleAction == "scale-up" && res.AutoscaleTarget == want {
		hit = "yes"
	}
	rep.Rows = append(rep.Rows, []string{
		fmt.Sprintf("hot-operator (te x%g)", cfg.HotOperatorFactor),
		fmt.Sprintf("matching pool, measured rho %.2f", res.MatchRho),
		res.AutoscaleAction,
		pct(res.MatchRho),
		fmt.Sprintf("target %d machines, predicted %d", res.AutoscaleTarget, want),
		hit,
	})
	rep.setMetric("hot-operator/rho", res.MatchRho)
	rep.setMetric("hot-operator/target", float64(res.AutoscaleTarget))
	rep.setMetric("hot-operator/predicted", float64(want))
	if hit != "yes" {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"hot-operator: expected scale-up to %d, model said %s to %d",
			want, res.AutoscaleAction, res.AutoscaleTarget))
	}
}
