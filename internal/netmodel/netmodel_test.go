package netmodel

import (
	"testing"
	"time"
)

func TestDefault30NodeInvariants(t *testing.T) {
	p := Default30Node()
	// Calibration anchors (see package doc): serialization and kernel
	// per-message costs are the same order of magnitude (Fig. 2d / Fig. 26),
	// and the optimized post is far below both.
	if p.TSerialize != p.TKernelMsg {
		t.Fatalf("ts=%v tk=%v: anchor requires ~equal (Storm ser share ~50%%)", p.TSerialize, p.TKernelMsg)
	}
	if !(p.TPostOpt < p.TPostBasic && p.TPostBasic < p.TKernelMsg) {
		t.Fatalf("post-cost ordering broken: opt=%v basic=%v kernel=%v", p.TPostOpt, p.TPostBasic, p.TKernelMsg)
	}
	if p.InfinibandBps <= p.EthernetBps {
		t.Fatal("IB slower than Ethernet")
	}
	if p.TupleBytes <= 0 || p.MsgHeaderBytes <= 0 || p.IDBytes <= 0 {
		t.Fatalf("sizes: %+v", p)
	}
}

func TestMatchCostShrinksWithParallelism(t *testing.T) {
	p := Default30Node()
	prev := time.Duration(1 << 62)
	for _, n := range []int{30, 120, 240, 480} {
		c := p.MatchCost(n)
		if c >= prev {
			t.Fatalf("MatchCost(%d)=%v did not shrink from %v", n, c, prev)
		}
		if c <= p.MatchBase {
			t.Fatalf("MatchCost(%d)=%v below base %v", n, c, p.MatchBase)
		}
		prev = c
	}
	// Degenerate parallelism clamps.
	if p.MatchCost(0) != p.MatchCost(1) {
		t.Fatal("MatchCost(0) should clamp to n=1")
	}
}

func TestWireTime(t *testing.T) {
	// 1250 bytes at 1 Gbps = 10µs.
	if got := WireTime(1250, 1e9); got != 10*time.Microsecond {
		t.Fatalf("WireTime = %v", got)
	}
	// 56 Gbps is 56x faster.
	if got := WireTime(1250, 56e9); got != 10*time.Microsecond/56 {
		t.Fatalf("WireTime IB = %v", got)
	}
}

func TestMessageSizes(t *testing.T) {
	p := Default30Node()
	inst := p.InstanceMsgBytes()
	if inst != p.MsgHeaderBytes+p.IDBytes+p.TupleBytes {
		t.Fatalf("instance message %d", inst)
	}
	// A worker message for k instances carries k ids but ONE data item —
	// the whole point of worker-oriented communication.
	w16 := p.WorkerMsgBytes(16)
	if w16 >= 16*inst {
		t.Fatalf("worker message %d not far below 16 instance messages %d", w16, 16*inst)
	}
	if w16-p.WorkerMsgBytes(1) != 15*p.IDBytes {
		t.Fatal("per-id increment wrong")
	}
}

func TestVariantParamSets(t *testing.T) {
	stock := StockExchange()
	if stock.TupleBytes >= Default30Node().TupleBytes {
		t.Fatal("stock records should be smaller than ride records")
	}
	if stock.MatchCost(480) >= Default30Node().MatchCost(480) {
		t.Fatal("stock matching should be lighter")
	}
	dyn := DynamicProfile()
	// The dynamic profile must let the source sustain 100k tuples/s at a
	// small out-degree: fixed + serialize + 1 post < 10µs.
	perTuple := dyn.TEmitFixed + dyn.TSerialize + dyn.TPostOpt
	if perTuple >= 10*time.Microsecond {
		t.Fatalf("dynamic-profile source cost %v cannot sustain 100k/s", perTuple)
	}
	// And the matching operator must absorb >100k/s at 480.
	if cap := time.Second / dyn.MatchCost(480); cap < 100_000 {
		t.Fatalf("dynamic-profile match capacity %d/s", cap)
	}
}
