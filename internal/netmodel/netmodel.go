// Package netmodel holds the calibrated cost parameters for the simulated
// 30-node cluster (internal/cluster): per-operation CPU costs, link
// bandwidths and propagation delays, and the downstream (matching-operator)
// service-cost model.
//
// Calibration anchors, from the paper's evaluation:
//
//   - Fig. 2d: serialization and kernel packet processing dominate the
//     upstream instance's CPU in stock Storm → t_s and t_kernel are the
//     same order of magnitude.
//   - Fig. 26: serialization is ~45% of Storm's communication time and
//     ~94% of RDMA-Storm's → t_kernel ≈ t_s, and the RDMA per-message cost
//     is a small fraction of t_s.
//   - Fig. 13 decomposition: of Whale's total win over RDMA-Storm, ~54%
//     comes from worker-oriented communication, ~17% from the optimized
//     RDMA primitives, ~29% from the non-blocking multicast — reproduced
//     here by the relative sizes of t_s, the basic/optimized per-message
//     costs, and the downstream matching capacity.
//   - Whale's latency falls as parallelism grows because key-grouped state
//     per matching instance shrinks → the matching cost has a D/n term.
//
// Absolute throughput numbers are NOT expected to match the paper (our
// substrate is a simulator); orderings, monotonicity and the contribution
// split are (see EXPERIMENTS.md).
package netmodel

import "time"

// Params is the cluster cost model. All CPU costs are per-event durations
// burned on the relevant simulated thread.
type Params struct {
	// TSerialize is t_s: serializing one tuple.
	TSerialize time.Duration
	// TKernelMsg is the kernel network-stack CPU cost per TCP message.
	TKernelMsg time.Duration
	// TPostBasic is the per-message sender cost of unbatched two-sided
	// verbs (RDMA-Storm, Whale-WOC).
	TPostBasic time.Duration
	// TPostOpt is the per-message sender cost of Whale's optimized path
	// (one-sided READ consumed remotely; the sender only appends to the
	// ring and the RNIC handles the rest).
	TPostOpt time.Duration
	// TEmitFixed is the fixed per-tuple emit overhead at the source
	// (routing, queue management) independent of fan-out.
	TEmitFixed time.Duration
	// TDeserialize is the dispatcher's per-message decode cost.
	TDeserialize time.Duration
	// TDispatchPerTask is the dispatcher's per-local-instance hand-off.
	TDispatchPerTask time.Duration
	// MatchBase is the parallelism-independent part of the matching
	// operator's per-tuple service time.
	MatchBase time.Duration
	// MatchStateTotal spreads over instances: per-tuple matching cost is
	// MatchBase + MatchStateTotal/n (key-grouped state shrinks with n).
	MatchStateTotal time.Duration
	// LocationCost is the per-tuple cost of the key-grouped location
	// stream at a matching instance.
	LocationCost time.Duration

	// EthernetBps and InfinibandBps are link bandwidths (bits/s).
	EthernetBps   float64
	InfinibandBps float64
	// Propagation is the one-way same-rack delay; InterRackExtra is added
	// per message crossing racks.
	Propagation    time.Duration
	InterRackExtra time.Duration

	// TupleBytes is the serialized data-item size; MsgHeaderBytes the
	// per-message framing; IDBytes the per-destination-id overhead in a
	// Whale WorkerMessage header.
	TupleBytes     int
	MsgHeaderBytes int
	IDBytes        int
}

// Default30Node returns the calibrated model standing in for the paper's
// testbed: 30 machines, 16-core 2.6 GHz Xeons, 1 GbE and 56 Gbps FDR
// InfiniBand.
func Default30Node() Params {
	return Params{
		TSerialize:       6 * time.Microsecond,
		TKernelMsg:       6 * time.Microsecond,
		TPostBasic:       1 * time.Microsecond,
		TPostOpt:         600 * time.Nanosecond,
		TEmitFixed:       4 * time.Microsecond,
		TDeserialize:     2 * time.Microsecond,
		TDispatchPerTask: 300 * time.Nanosecond,
		MatchBase:        3 * time.Microsecond,
		MatchStateTotal:  9120 * time.Microsecond, // 22µs/tuple at n=480
		LocationCost:     2 * time.Microsecond,
		EthernetBps:      1e9,
		InfinibandBps:    56e9,
		Propagation:      1500 * time.Nanosecond, // one IB hop
		InterRackExtra:   10 * time.Microsecond,
		TupleBytes:       150,
		MsgHeaderBytes:   36,
		IDBytes:          4,
	}
}

// StockExchange returns the parameter set for the stock-exchange workload
// (Figs. 15-16, 19-20, 22, 28): smaller records (a symbol, side, price and
// quantity) and lighter per-tuple matching (order-book probe) than the
// ride-hailing spatial join.
func StockExchange() Params {
	p := Default30Node()
	p.TupleBytes = 64
	p.MatchBase = 2 * time.Microsecond
	p.MatchStateTotal = 5760 * time.Microsecond // 14µs/tuple at n=480
	return p
}

// DynamicProfile returns the parameter set for the dynamic-rate experiment
// (Figs. 23-24), where the paper sustains up to 100k tuples/s at
// parallelism 480: lighter serialization and matching costs such that the
// source sustains 100k only at a small out-degree (cost(d) = 8µs + d·0.6µs,
// so d* must adapt down as the rate steps up) and the matching instances
// absorb >110k tuples/s.
func DynamicProfile() Params {
	p := Default30Node()
	p.TSerialize = 5 * time.Microsecond
	p.TEmitFixed = 3 * time.Microsecond
	p.MatchBase = 3 * time.Microsecond
	p.MatchStateTotal = 2400 * time.Microsecond
	return p
}

// MatchCost returns the matching operator's per-tuple service time at
// parallelism n.
func (p Params) MatchCost(n int) time.Duration {
	if n < 1 {
		n = 1
	}
	return p.MatchBase + p.MatchStateTotal/time.Duration(n)
}

// WireTime returns the transmission time of size bytes at bps.
func WireTime(size int, bps float64) time.Duration {
	return time.Duration(float64(size) * 8 / bps * 1e9)
}

// InstanceMsgBytes is the wire size of one instance-oriented message.
func (p Params) InstanceMsgBytes() int {
	return p.MsgHeaderBytes + p.IDBytes + p.TupleBytes
}

// WorkerMsgBytes is the wire size of one worker-oriented message carrying
// ids for k local destination instances.
func (p Params) WorkerMsgBytes(k int) int {
	return p.MsgHeaderBytes + k*p.IDBytes + p.TupleBytes
}
