// Package analysistest runs an analyzer over a testdata package and checks
// its findings against `// want "regexp"` comments, mirroring the
// golang.org/x/tools analysistest contract on the standard library alone.
//
// A want comment sits on the line it expects a finding for:
//
//	c.mu.Lock()
//	time.Sleep(time.Millisecond) // want `time.Sleep while mutex c\.mu is held`
//
// Every finding must match a want on its line, and every want must be
// matched by a finding; either mismatch fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"whale/internal/analyzers"
)

// wantRe matches `// want "regexp"` or `// want \x60regexp\x60` comments.
var wantRe = regexp.MustCompile("//\\s*want\\s+(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

type expectation struct {
	line    int
	pattern *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the single package in dir with the analyzer's suppression
// handling active and diffs findings against want comments.
func Run(t *testing.T, dir string, a *analyzers.Analyzer) {
	t.Helper()
	loader := analyzers.NewLoader(dir)
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)
	diags := analyzers.RunAnalyzers([]*analyzers.Package{pkg}, []*analyzers.Analyzer{a})

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no finding matched want %s at %s", w.raw, key)
			}
		}
	}
}

// collectWants parses want comments from every file in the package.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				raw := m[1]
				var text string
				if strings.HasPrefix(raw, "`") {
					text = strings.Trim(raw, "`")
				} else {
					var err error
					text, err = strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("bad want literal %s: %v", raw, err)
					}
				}
				re, err := regexp.Compile(text)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", text, err)
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], &expectation{line: pos.Line, pattern: re, raw: raw})
			}
		}
	}
	return wants
}
