package analyzers_test

import (
	"path/filepath"
	"testing"

	"whale/internal/analyzers"
)

// testdata returns the absolute path of one testdata source package.
func testdata(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestByName(t *testing.T) {
	as, err := analyzers.ByName("lockheld,verberr")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "lockheld" || as[1].Name != "verberr" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := analyzers.ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

func TestAllHaveDocs(t *testing.T) {
	for _, a := range analyzers.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
	}
}
