package analyzers_test

import (
	"path/filepath"
	"testing"

	"whale/internal/analyzers"
)

// testdata returns the absolute path of one testdata source package.
func testdata(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestByName(t *testing.T) {
	as, err := analyzers.ByName("lockheld,verberr")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "lockheld" || as[1].Name != "verberr" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := analyzers.ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

func TestAllHaveDocs(t *testing.T) {
	if got := len(analyzers.All()); got != 9 {
		t.Errorf("All() returned %d analyzers, want 9", got)
	}
	for _, a := range analyzers.All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v is missing a name or doc", a)
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("analyzer %s must set exactly one of Run and RunProgram", a.Name)
		}
	}
}
