package analyzers

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the minimal subset GitHub code scanning ingests:
// one run, one rule per analyzer, one result per diagnostic with a
// physical location. Columns and lines are 1-based in both models, so
// they pass through unchanged.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. Rules cover every
// analyzer in as (plus the staledirective framework check), so a clean run
// still advertises which checks executed. File paths are made relative to
// root when possible — GitHub code scanning requires repo-relative URIs.
func WriteSARIF(w io.Writer, root string, as []*Analyzer, diags []Diagnostic) error {
	driver := sarifDriver{Name: "whalevet"}
	for _, a := range as {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               StaleDirective,
		ShortDescription: sarifMessage{Text: "//lint: directive suppresses no diagnostic"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(root, d.Pos.Filename)},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI converts an absolute diagnostic path to a forward-slashed
// root-relative URI; paths outside root pass through absolute.
func sarifURI(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}
