package analyzers_test

import (
	"testing"

	"whale/internal/analyzers"
	"whale/internal/analyzers/analysistest"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, testdata(t, "metricname"), analyzers.MetricName)
}
