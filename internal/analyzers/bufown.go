package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BufOwn verifies the pooled-buffer ownership protocol from DESIGN §11:
// every value produced by a //whale:acquires function (acquireSendBuf,
// tuple.AcquireEncoder, the tracer's span pool) must reach a balanced
// discharge on every exit path of the acquiring function. A discharge is:
//
//   - a call to a function annotated //whale:owns (or //whale:transfers)
//     with the value in the owned parameter/receiver position — ownership
//     moves into the callee (sendData, release, ReleaseEncoder, push);
//   - a statement carrying a //whale:transfers <expr> line directive —
//     ownership moves into a long-lived structure the analyzer cannot see
//     through (a queue append, a map insert, a goroutine handoff);
//   - for a function itself annotated //whale:acquires, returning the
//     value — ownership moves to the caller.
//
// A //whale:retains function (sendBuf.retain) marks the value as
// dynamically refcounted: the exit check relaxes from "discharged on every
// path" to "discharged on at least one path", because the extra references
// are balanced at runtime, not lexically.
//
// Inside a //whale:owns callee the named parameter arrives owned and the
// same exit rules apply — except that a body with no discharge site at all
// is a sink (it IS the protocol implementation: refcount decrements, pool
// puts), which the analyzer detects as "no path discharges" and accepts.
//
// The analysis is a forward may-dataflow over the intraprocedural CFG
// (cfg.go): at exit, "the owned bit survives on some path" means some exit
// leaks the buffer. Values are keyed by expression text, like lockheld.
var BufOwn = &Analyzer{
	Name:       "bufown",
	Doc:        "acquired pooled buffers/encoders reach release, retain, or an annotated transfer on every exit path",
	RunProgram: runBufOwn,
}

// Obligation state bits shared by bufown and creditbalance.
const (
	bitOwned uint8 = 1 << iota // obligation may be outstanding on this path
	bitDone                    // some path through here discharged it
	bitMulti                   // dynamic refcount / dynamic charge count
	bitEntry                   // obligation came in as an annotated parameter
)

// funcFacts is the whole-program directive table, keyed by
// (*types.Func).FullName() so call sites resolved through export data and
// declarations checked from source agree on identity.
type funcFacts map[string]funcDirectives

func collectFuncFacts(pkgs []*Package) funcFacts {
	facts := funcFacts{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				dir := parseFuncDirectives(fd.Doc)
				if !dir.acquires && !dir.grants && !dir.retains &&
					len(dir.owns) == 0 && len(dir.transfers) == 0 {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					facts[obj.FullName()] = dir
				}
			}
		}
	}
	return facts
}

func runBufOwn(pkgs []*Package, report func(Diagnostic)) {
	facts := collectFuncFacts(pkgs)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			bc := &bufownCtx{
				fset:   pkg.Fset,
				info:   pkg.Info,
				facts:  facts,
				dirs:   newLineDirectivesFset(pkg.Fset, file),
				report: report,
			}
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				var own funcDirectives
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					own = facts[obj.FullName()]
				}
				bc.checkFunc(fd.Body, fd, own)
				// Function literals are independent scopes: anything they
				// acquire must balance within their own body (or be
				// annotated //whale:transfers out).
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						bc.checkFunc(fl.Body, nil, funcDirectives{})
					}
					return true
				})
			}
		}
	}
}

type bufownCtx struct {
	fset   *token.FileSet
	info   *types.Info
	facts  funcFacts
	dirs   map[int][]lineDirective // line -> //whale: directives in this file
	report func(Diagnostic)

	// per-function scratch, reset by checkFunc
	acquirePos map[string]token.Pos
	selfAcq    bool // the function under analysis is //whale:acquires
}

func (bc *bufownCtx) reportf(pos token.Pos, format string, args ...any) {
	bc.report(Diagnostic{
		Analyzer: "bufown",
		Pos:      bc.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// checkFunc runs the ownership dataflow over one function body.
func (bc *bufownCtx) checkFunc(body *ast.BlockStmt, fd *ast.FuncDecl, own funcDirectives) {
	entry := flowState{}
	for _, name := range append(append([]string{}, own.owns...), own.transfers...) {
		if fd != nil && paramOrRecvName(fd, ownsParamName(name)) {
			entry[name] = bitOwned | bitEntry
		}
	}
	bc.acquirePos = map[string]token.Pos{}
	bc.selfAcq = own.acquires
	g := buildCFG(body)
	exit := forward(g, entry, bc.transfer)
	for key, st := range exit {
		if st&bitOwned == 0 {
			continue
		}
		if st&bitEntry != 0 {
			// Entry obligation: a body with no discharge at all is a sink
			// (the protocol primitive itself); inconsistent discharge is
			// the bug. Dynamic refcounts are checked at runtime.
			if st&bitDone != 0 && st&bitMulti == 0 {
				bc.reportf(body.Pos(), "owned parameter %s is discharged on some paths but not all", key)
			}
			continue
		}
		if st&bitMulti != 0 && st&bitDone != 0 {
			continue // retained: lexical balance is per-path unknowable
		}
		pos := bc.acquirePos[key]
		if pos == token.NoPos {
			pos = body.Pos()
		}
		bc.reportf(pos, "%s may not be released, retained, or transferred on every exit path", key)
	}
}

// ownsParamName strips a dotted //whale:owns operand ("it.buf") to the
// parameter name it rides on ("it").
func ownsParamName(op string) string {
	if i := strings.IndexByte(op, '.'); i >= 0 {
		return op[:i]
	}
	return op
}

// paramOrRecvName reports whether name is one of fd's parameters or its
// receiver.
func paramOrRecvName(fd *ast.FuncDecl, name string) bool {
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, id := range f.Names {
				if id.Name == name {
					return true
				}
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, id := range f.Names {
				if id.Name == name {
					return true
				}
			}
		}
	}
	return false
}

// transfer is the dataflow transfer function for one CFG node.
func (bc *bufownCtx) transfer(state flowState, n ast.Node, final bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		// Binding marker only (body runs through its own blocks): the loop
		// vars are fresh values each iteration.
		rangeRebind(state, r)
		return
	}
	// Statement-level //whale:transfers <expr>... discharges the named
	// obligations on this path.
	if _, isStmt := n.(ast.Stmt); isStmt {
		line := bc.fset.Position(n.Pos()).Line
		if op, ok := stmtDirective(bc.dirs, line, dirTransfers); ok {
			for _, name := range strings.Fields(op) {
				discharge(state, name)
			}
		}
	}

	// Acquiring calls bound by this node (assignment/declaration targets).
	bound := map[*ast.CallExpr]bool{}
	switch x := n.(type) {
	case *ast.AssignStmt:
		if len(x.Rhs) == 1 && len(x.Lhs) >= 1 {
			if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok && bc.isAcquire(call) {
				bound[call] = true
				key := exprText(x.Lhs[0])
				if key == "_" {
					if final {
						bc.reportf(call.Pos(), "acquired %s assigned to blank identifier leaks the buffer", selectorName(call))
					}
				} else {
					state[key] = bitOwned
					bc.acquirePos[key] = call.Pos()
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 1 || len(vs.Names) < 1 {
					continue
				}
				if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok && bc.isAcquire(call) {
					bound[call] = true
					state[vs.Names[0].Name] = bitOwned
					bc.acquirePos[vs.Names[0].Name] = call.Pos()
				}
			}
		}
	case *ast.ReturnStmt:
		// A //whale:acquires function hands its result to the caller.
		if bc.selfAcq {
			for _, res := range x.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && bc.isAcquire(call) {
					bound[call] = true // acquire-and-return in one step
				}
				discharge(state, exprText(res))
			}
		}
	}

	// Scan every call in the node (function literals run later — skipped)
	// for unbound acquires, consuming calls, and retains.
	ast.Inspect(n, func(sub ast.Node) bool {
		switch c := sub.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			bc.applyCall(state, c, bound[c], final)
		}
		return true
	})
}

// applyCall classifies one call against the directive table.
func (bc *bufownCtx) applyCall(state flowState, call *ast.CallExpr, isBound bool, final bool) {
	f := callee(bc.info, call)
	if f == nil {
		return
	}
	dir, ok := bc.facts[f.FullName()]
	if !ok {
		return
	}
	if dir.acquires && !isBound {
		if final {
			bc.reportf(call.Pos(), "result of %s is owned but discarded", selectorName(call))
		}
		return
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil {
		return
	}
	consume := append(append([]string{}, dir.owns...), dir.transfers...)
	for _, name := range consume {
		for _, key := range bc.callArgKeys(call, sig, name) {
			discharge(state, key)
		}
	}
	if dir.retains {
		// retain applies to its receiver (or first owned param).
		target := ""
		if sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				target = exprText(sel.X)
			}
		} else if len(call.Args) > 0 {
			target = exprText(call.Args[0])
		}
		if st, have := state[target]; have && st&bitOwned != 0 {
			state[target] = st | bitMulti
		}
	}
}

// callArgKeys maps an owned parameter/receiver name on the callee to the
// caller-side expression keys it binds at this call. A dotted operand
// ("it.buf") names a field of the parameter: when the argument is a
// composite literal the field's value is the owned expression itself
// (push(dst, flowItem{buf: sb}) consumes sb); any other argument carries
// the obligation under its own dotted name.
func (bc *bufownCtx) callArgKeys(call *ast.CallExpr, sig *types.Signature, name string) []string {
	base, field := name, ""
	if i := strings.IndexByte(name, '.'); i >= 0 {
		base, field = name[:i], name[i+1:]
	}
	argKey := func(arg ast.Expr) []string {
		if field == "" {
			return []string{exprText(arg)}
		}
		if cl, ok := ast.Unparen(arg).(*ast.CompositeLit); ok {
			for _, el := range cl.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
					return []string{exprText(kv.Value)}
				}
			}
			return nil
		}
		return []string{exprText(arg) + "." + field}
	}
	if recv := sig.Recv(); recv != nil && recv.Name() == base {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return argKey(sel.X)
		}
		return nil
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i).Name() != base {
			continue
		}
		if i < len(call.Args) {
			return argKey(call.Args[i])
		}
		return nil
	}
	return nil
}

// discharge clears an outstanding obligation for key and any dotted
// sub-obligation it carries (consuming "it" also consumes "it.buf").
func discharge(state flowState, key string) {
	for k, st := range state {
		if k != key && !strings.HasPrefix(k, key+".") {
			continue
		}
		if st&bitOwned != 0 {
			state[k] = (st &^ bitOwned) | bitDone
		}
	}
}

// isAcquire reports whether call statically resolves to a //whale:acquires
// function.
func (bc *bufownCtx) isAcquire(call *ast.CallExpr) bool {
	f := callee(bc.info, call)
	if f == nil {
		return false
	}
	return bc.facts[f.FullName()].acquires
}

// newLineDirectivesFset collects the file's statement-level //whale:
// directives, marking each as trailing (code on the same line) or
// standalone. It takes an explicit fset because whole-program analyzers
// have no per-package Pass.
func newLineDirectivesFset(fset *token.FileSet, file *ast.File) map[int][]lineDirective {
	// Lines containing code: a //-comment runs to end of line, so any code
	// on a directive's line necessarily precedes it.
	codeLines := map[int]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		if n != nil {
			codeLines[fset.Position(n.Pos()).Line] = true
			codeLines[fset.Position(n.End()).Line] = true
		}
		return true
	})
	out := map[int][]lineDirective{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, "//whale:") {
				continue
			}
			line := fset.Position(c.End()).Line
			out[line] = append(out[line], lineDirective{text: text, trailing: codeLines[line]})
		}
	}
	return out
}
