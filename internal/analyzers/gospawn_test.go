package analyzers_test

import (
	"testing"

	"whale/internal/analyzers"
	"whale/internal/analyzers/analysistest"
)

func TestGoSpawn(t *testing.T) {
	analysistest.Run(t, testdata(t, "gospawn"), analyzers.GoSpawn)
}
