package analyzers

import (
	"go/ast"
)

// ChanProtocol flags channel misuse the runtime only reports as a panic in
// production: a send that may execute after the same channel was closed,
// and a close that may execute twice. The analysis runs the forward
// may-dataflow over each function's CFG with one bit per channel
// expression (keyed textually, like lockheld): `close(ch)` sets it, an
// assignment that rebinds the channel clears it, and a send or another
// close while the bit may be set is reported. Paths through sync.Once.Do
// literals are separate scopes, so the closeOnce idiom stays clean.
var ChanProtocol = &Analyzer{
	Name: "chanprotocol",
	Doc:  "flags channel sends and closes reachable after the channel may already be closed",
	Run:  runChanProtocol,
}

const bitClosed uint8 = 1

func runChanProtocol(pass *Pass) {
	for _, file := range pass.Files {
		// Only functions that close a channel somewhere can violate the
		// protocol intraprocedurally; skip the rest outright.
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil && bodyCloses(x.Body) {
					checkChanProtocol(pass, x.Body)
				}
			case *ast.FuncLit:
				if bodyCloses(x.Body) {
					checkChanProtocol(pass, x.Body)
				}
			}
			return true
		})
	}
}

// bodyCloses reports whether body contains a close(...) call outside any
// nested function literal.
func bodyCloses(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isCloseCall(x) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isCloseCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "close" && len(call.Args) == 1
}

func checkChanProtocol(pass *Pass, body *ast.BlockStmt) {
	g := buildCFG(body)
	forward(g, nil, func(state flowState, n ast.Node, final bool) {
		switch x := n.(type) {
		case *ast.DeferStmt:
			// A deferred close runs at exit; forward replays it there.
			// Applying it at registration would poison every later send.
			return
		case *ast.GoStmt:
			return // runs concurrently; its closes are not ordered before later sends
		case *ast.RangeStmt:
			// Binding marker: each iteration rebinds the loop vars, so
			// close(mgr.done) over a slice of managers is a different
			// channel every pass — not a double close.
			rangeRebind(state, x)
			return
		case *ast.SendStmt:
			key := exprText(x.Chan)
			if state[key]&bitClosed != 0 && final {
				pass.Reportf(x.Arrow, "send on %s may execute after close(%s)", key, key)
			}
			return
		case *ast.AssignStmt:
			// Rebinding a channel variable resets its protocol state.
			for _, lhs := range x.Lhs {
				delete(state, exprText(lhs))
			}
		}
		ast.Inspect(n, func(sub ast.Node) bool {
			switch c := sub.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if isCloseCall(c) {
					key := exprText(c.Args[0])
					if state[key]&bitClosed != 0 && final {
						pass.Reportf(c.Pos(), "close(%s) may execute after a previous close", key)
					}
					state[key] |= bitClosed
				}
			}
			return true
		})
	})
}
