package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the whole-repo lock-acquisition graph: an edge A→B
// means some function acquires mutex B while holding mutex A (directly, or
// through a statically resolved callee whose transitive lock summary
// includes B). Two checks run over the graph:
//
//   - cycle detection — a cycle A→B→A means two call paths can acquire
//     the same pair of locks in opposite orders, the classic ABBA
//     deadlock; every distinct cycle is reported once, at the edge that
//     closes it;
//   - rank ordering — mutex struct fields annotated `//whale:lockrank N`
//     commit a canonical acquisition order (see DESIGN §8): acquiring a
//     rank-N lock while holding rank-M with M ≥ N is reported even when
//     no reverse edge exists yet, so ordering violations are caught
//     before the second half of the deadlock is written.
//
// Lock identity is pkgpath.Type.field for struct-field mutexes and
// pkgpath.var for package-level ones; local mutexes are scoped to their
// function and cannot form cross-function edges.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "whole-repo lock-acquisition graph: cycles and //whale:lockrank order violations are potential deadlocks",
	RunProgram: runLockOrder,
}

type lockEdge struct {
	pos token.Pos   // acquisition site creating the edge
	via *types.Func // non-nil when the edge goes through a callee's summary
}

type lockOrderCtx struct {
	report func(Diagnostic)
	fset   *token.FileSet

	ranks map[string]int // lock identity -> //whale:lockrank
	decls map[string]*lockFuncInfo

	edges map[string]map[string]lockEdge // from -> to -> first witness

	rankReported map[string]bool
}

type lockFuncInfo struct {
	pkg     *Package
	decl    *ast.FuncDecl
	summary map[string]token.Pos // locks this function (transitively) may acquire
}

func runLockOrder(pkgs []*Package, report func(Diagnostic)) {
	if len(pkgs) == 0 {
		return
	}
	ctx := &lockOrderCtx{
		report:       report,
		fset:         pkgs[0].Fset,
		ranks:        map[string]int{},
		decls:        map[string]*lockFuncInfo{},
		edges:        map[string]map[string]lockEdge{},
		rankReported: map[string]bool{},
	}
	for _, pkg := range pkgs {
		ctx.collectRanks(pkg)
		ctx.collectDecls(pkg)
	}
	ctx.computeSummaries()
	// Deterministic scan order keeps edge witness positions (and therefore
	// report sites) stable across runs.
	names := make([]string, 0, len(ctx.decls))
	for name := range ctx.decls {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ctx.scanFunc(ctx.decls[name])
	}
	ctx.reportCycles()
}

// collectRanks walks struct declarations for //whale:lockrank fields.
func (ctx *lockOrderCtx) collectRanks(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				rank := parseLockRank(field)
				if rank < 0 {
					continue
				}
				for _, name := range field.Names {
					id := pkg.Types.Path() + "." + ts.Name.Name + "." + name.Name
					ctx.ranks[id] = rank
				}
			}
			return true
		})
	}
}

func (ctx *lockOrderCtx) collectDecls(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				ctx.decls[obj.FullName()] = &lockFuncInfo{pkg: pkg, decl: fd}
			}
		}
	}
}

// computeSummaries derives each function's transitive may-acquire lock
// set: direct Lock/RLock sites in the body (outside goroutines and
// function literals, which do not run under the caller's stack), widened
// through statically resolved callees to a fixpoint.
func (ctx *lockOrderCtx) computeSummaries() {
	calls := map[string][]string{} // caller FullName -> callee FullNames
	for name, info := range ctx.decls {
		info.summary = map[string]token.Pos{}
		pkg := info.pkg
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if id, method, ok := lockIdentity(pkg, x); ok {
					if method == "Lock" || method == "RLock" {
						if _, have := info.summary[id]; !have {
							info.summary[id] = x.Pos()
						}
					}
					return true
				}
				if f := callee(pkg.Info, x); f != nil {
					calls[name] = append(calls[name], f.FullName())
				}
			}
			return true
		})
	}
	// Fixpoint over the call graph.
	for changed := true; changed; {
		changed = false
		for name, info := range ctx.decls {
			for _, calleeName := range calls[name] {
				ci, ok := ctx.decls[calleeName]
				if !ok {
					continue
				}
				for id, pos := range ci.summary {
					if _, have := info.summary[id]; !have {
						info.summary[id] = pos
						changed = true
					}
				}
			}
		}
	}
}

// lockIdentity classifies call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex/RWMutex and resolves the receiver to a stable identity.
func lockIdentity(pkg *Package, call *ast.CallExpr) (id, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	s, found := pkg.Info.Selections[sel]
	if !found {
		return "", "", false
	}
	recv := s.Recv()
	if !isNamed(recv, "sync", "Mutex") && !isNamed(recv, "sync", "RWMutex") {
		return "", "", false
	}
	return lockExprIdentity(pkg, sel.X), sel.Sel.Name, true
}

// lockExprIdentity maps the mutex expression to a whole-program identity.
func lockExprIdentity(pkg *Package, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		// Struct field: identity is the declaring type's field, so c.mu and
		// other.mu on the same type are the same lock class.
		if s, ok := pkg.Info.Selections[x]; ok {
			if n := derefNamed(s.Recv()); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + s.Obj().Name()
			}
		}
		// Qualified package-level var (pkg.mu).
		if obj, ok := pkg.Info.Uses[x.Sel]; ok && obj.Pkg() != nil {
			if v, isVar := obj.(*types.Var); isVar && !v.IsField() && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[x]; ok {
			if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
		// Function-local mutex: scope it to the package + textual name so
		// it never unifies across functions.
		return pkg.Types.Path() + ".local." + x.Name
	}
	return pkg.Types.Path() + ".expr." + exprText(e)
}

// scanFunc runs the held-set dataflow over one function and feeds the
// edge graph plus rank checks.
func (ctx *lockOrderCtx) scanFunc(info *lockFuncInfo) {
	pkg := info.pkg
	g := buildCFG(info.decl.Body)
	forward(g, nil, func(state flowState, n ast.Node, final bool) {
		switch n.(type) {
		case *ast.DeferStmt:
			// Deferred unlocks run at exit, not at registration: ignoring
			// the statement keeps the lock held for the rest of the scan
			// (forward replays the deferred call on the exit state).
			return
		case *ast.GoStmt:
			return // a spawned goroutine does not inherit the caller's locks
		case *ast.RangeStmt:
			return // binding marker; the body runs through its own blocks
		}
		ast.Inspect(n, func(sub ast.Node) bool {
			switch x := sub.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if id, method, ok := lockIdentity(pkg, x); ok {
					switch method {
					case "Lock", "RLock":
						for held := range state {
							if state[held]&bitOwned == 0 {
								continue
							}
							ctx.addEdge(held, id, x.Pos(), nil, final)
						}
						state[id] |= bitOwned
					case "Unlock", "RUnlock":
						delete(state, id)
					}
					return false
				}
				if f := callee(pkg.Info, x); f != nil {
					if ci, ok := ctx.decls[f.FullName()]; ok && len(ci.summary) > 0 {
						for held := range state {
							if state[held]&bitOwned == 0 {
								continue
							}
							for id := range ci.summary {
								ctx.addEdge(held, id, x.Pos(), f, final)
							}
						}
					}
				}
			}
			return true
		})
	})
}

// addEdge records held→acquired and runs the rank check. Reporting only
// happens on the final (converged) pass so each witness fires once.
func (ctx *lockOrderCtx) addEdge(from, to string, pos token.Pos, via *types.Func, final bool) {
	if from == to {
		// Self-edges through a callee summary are usually re-entrant helper
		// calls lockheld already polices; direct self-lock is deadlock.
		if via == nil && final && !ctx.rankReported["self:"+from+posKey(ctx.fset, pos)] {
			ctx.rankReported["self:"+from+posKey(ctx.fset, pos)] = true
			ctx.reportf(pos, "%s acquired while already held (self-deadlock)", shortLock(from))
		}
		return
	}
	if ctx.edges[from] == nil {
		ctx.edges[from] = map[string]lockEdge{}
	}
	if _, have := ctx.edges[from][to]; !have {
		ctx.edges[from][to] = lockEdge{pos: pos, via: via}
	}
	if !final {
		return
	}
	rf, okF := ctx.ranks[from]
	rt, okT := ctx.ranks[to]
	if okF && okT && rf >= rt {
		key := "rank:" + from + "->" + to
		if !ctx.rankReported[key] {
			ctx.rankReported[key] = true
			how := ""
			if via != nil {
				how = fmt.Sprintf(" (via call to %s)", via.Name())
			}
			ctx.reportf(pos, "lock rank violation: %s (rank %d) acquired%s while %s (rank %d) is held; //whale:lockrank order requires strictly increasing ranks",
				shortLock(to), rt, how, shortLock(from), rf)
		}
	}
}

// reportCycles enumerates distinct cycles in the edge graph.
func (ctx *lockOrderCtx) reportCycles() {
	nodes := make([]string, 0, len(ctx.edges))
	for n := range ctx.edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	seen := map[string]bool{}
	var stack []string
	onStack := map[string]bool{}
	var dfs func(n string)
	dfs = func(n string) {
		stack = append(stack, n)
		onStack[n] = true
		tos := make([]string, 0, len(ctx.edges[n]))
		for to := range ctx.edges[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if onStack[to] {
				// stack suffix from `to` is a cycle.
				i := len(stack) - 1
				for i >= 0 && stack[i] != to {
					i--
				}
				cycle := append([]string{}, stack[i:]...)
				key := canonicalCycle(cycle)
				if !seen[key] {
					seen[key] = true
					edge := ctx.edges[n][to]
					how := ""
					if edge.via != nil {
						how = fmt.Sprintf(" (via call to %s)", edge.via.Name())
					}
					ctx.reportf(edge.pos, "lock-order cycle %s%s: opposite acquisition orders can deadlock",
						cycleString(cycle), how)
				}
				continue
			}
			if !seen["v:"+n+"->"+to] {
				seen["v:"+n+"->"+to] = true
				dfs(to)
			}
		}
		stack = stack[:len(stack)-1]
		onStack[n] = false
	}
	for _, n := range nodes {
		dfs(n)
	}
}

// canonicalCycle rotates the cycle to start at its smallest element so the
// same cycle discovered from different entry points dedups.
func canonicalCycle(c []string) string {
	min := 0
	for i := range c {
		if c[i] < c[min] {
			min = i
		}
	}
	out := make([]string, 0, len(c))
	for i := range c {
		out = append(out, c[(min+i)%len(c)])
	}
	return strings.Join(out, "->")
}

func cycleString(c []string) string {
	parts := make([]string, 0, len(c)+1)
	for _, n := range c {
		parts = append(parts, shortLock(n))
	}
	parts = append(parts, shortLock(c[0]))
	return strings.Join(parts, " -> ")
}

// shortLock trims the module path prefix for readable messages.
func shortLock(id string) string {
	return strings.TrimPrefix(id, "whale/internal/")
}

func posKey(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("@%s:%d", p.Filename, p.Line)
}

func (ctx *lockOrderCtx) reportf(pos token.Pos, format string, args ...any) {
	ctx.report(Diagnostic{
		Analyzer: "lockorder",
		Pos:      ctx.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}
