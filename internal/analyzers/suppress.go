package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// suppression is one parsed //lint: directive.
type suppression struct {
	file     string
	line     int    // directive's own line (0 for file-wide)
	analyzer string // analyzer name the directive targets
	fileWide bool
}

type suppressionSet []suppression

// collectSuppressions scans every comment for //lint:ignore and
// //lint:file-ignore directives. A directive must name an analyzer and give
// a non-empty reason; malformed directives are ignored (so they never
// silently suppress anything).
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressionSet {
	var out suppressionSet
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				var fileWide bool
				switch {
				case strings.HasPrefix(text, "lint:ignore "):
					text = strings.TrimPrefix(text, "lint:ignore ")
				case strings.HasPrefix(text, "lint:file-ignore "):
					text = strings.TrimPrefix(text, "lint:file-ignore ")
					fileWide = true
				default:
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: not a valid suppression
				}
				pos := fset.Position(c.Pos())
				out = append(out, suppression{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					fileWide: fileWide,
				})
			}
		}
	}
	return out
}

// suppresses reports whether d is covered by a directive: a file-wide
// directive for its analyzer, or a line directive on the same line
// (trailing comment) or the line directly above. The matched directive's
// index is returned so callers can track which directives earned their
// keep (the stale-suppression check).
func (s suppressionSet) suppresses(d Diagnostic) (int, bool) {
	for i, sup := range s {
		if sup.file != d.Pos.Filename || sup.analyzer != d.Analyzer {
			continue
		}
		if sup.fileWide {
			return i, true
		}
		if sup.line == d.Pos.Line || sup.line == d.Pos.Line-1 {
			return i, true
		}
	}
	return -1, false
}
