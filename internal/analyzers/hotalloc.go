package analyzers

import (
	"go/ast"
	"strings"
)

// HotAlloc guards functions annotated `//whale:hotpath` (a line in the
// function's doc comment) against per-tuple costs that do not belong on
// the partitioning fast path: fmt.Sprintf (allocates and reflects),
// time.Now (a vDSO call per tuple adds up at millions of tuples/s),
// map allocation (make(map...) or a map composite literal), and byte-slice
// allocation (make([]byte, ...) — the hot path reuses pooled or
// caller-provided buffers; a fresh slice per tuple is a copy in disguise).
// Error paths are exempt by construction — fmt.Errorf is deliberately not
// flagged, since an error exits the hot path anyway.
//
// Nested function literals inherit the annotation: a closure built inside
// a hotpath function runs on the same path.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags fmt.Sprintf, time.Now, map allocation, and make([]byte, ...) inside //whale:hotpath functions",
	Run:  runHotAlloc,
}

// hotpathDirective marks a function as hot-path in its doc comment.
const hotpathDirective = "//whale:hotpath"

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotBody(pass, fd.Name.Name, fd.Body)
		}
	}
}

func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// isByteElem reports whether e names the byte element type ([]byte or its
// alias []uint8).
func isByteElem(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && (id.Name == "byte" || id.Name == "uint8")
}

func checkHotBody(pass *Pass, fname string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := callee(pass.Info, x); fn != nil {
				switch {
				case funcPkgPath(fn) == "fmt" && fn.Name() == "Sprintf":
					pass.Reportf(x.Pos(), "fmt.Sprintf in hot path %s: preformat or use strconv", fname)
				case funcPkgPath(fn) == "time" && fn.Name() == "Now":
					pass.Reportf(x.Pos(), "time.Now in hot path %s: hoist the timestamp out of the per-tuple path", fname)
				}
			}
			// make(map[K]V) / make([]byte, ...): make is a builtin, so
			// callee is nil.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" && len(x.Args) > 0 {
				switch t := x.Args[0].(type) {
				case *ast.MapType:
					pass.Reportf(x.Pos(), "map allocation in hot path %s: preallocate or use a slice", fname)
				case *ast.ArrayType:
					if t.Len == nil && isByteElem(t.Elt) {
						pass.Reportf(x.Pos(), "make([]byte, ...) in hot path %s: reuse a pooled or caller-provided buffer", fname)
					}
				}
			}
		case *ast.CompositeLit:
			if _, isMap := x.Type.(*ast.MapType); isMap {
				pass.Reportf(x.Pos(), "map literal in hot path %s: preallocate or use a slice", fname)
			}
		}
		return true
	})
}
