package analyzers_test

import (
	"testing"

	"whale/internal/analyzers"
	"whale/internal/analyzers/analysistest"
)

func TestVerbErr(t *testing.T) {
	analysistest.Run(t, testdata(t, "verberr"), analyzers.VerbErr)
}
