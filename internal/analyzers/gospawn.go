package analyzers

import (
	"go/ast"
)

// GoSpawn forbids bare `go` statements in library packages. A goroutine
// nobody joins is a goroutine nobody can drain during reconfiguration — the
// engine's Stop path must be able to wait for every worker before tearing
// down rings and queue pairs. A spawn passes if it is visibly tracked:
//
//   - the statement immediately before it in the same block calls Add on a
//     sync.WaitGroup (the `wg.Add(1); go fn()` idiom), or
//   - the spawned function literal contains `defer wg.Done()` for a
//     sync.WaitGroup (the tracking is inside the goroutine itself).
//
// Commands (package main) are exempt: a main that spawns and exits owns its
// own lifetime.
var GoSpawn = &Analyzer{
	Name: "gospawn",
	Doc:  "forbids untracked `go` statements in library packages (require a sync.WaitGroup)",
	Run:  runGoSpawn,
}

func runGoSpawn(pass *Pass) {
	if pass.IsMain() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				gs, ok := stmt.(*ast.GoStmt)
				if !ok {
					continue
				}
				if i > 0 && isWaitGroupAdd(pass, block.List[i-1]) {
					continue
				}
				if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok && litDefersDone(pass, lit) {
					continue
				}
				pass.Reportf(gs.Pos(), "untracked goroutine: precede with wg.Add(1) on a sync.WaitGroup or defer wg.Done() inside the goroutine")
			}
			return true
		})
	}
}

// isWaitGroupAdd reports whether stmt is an expression statement calling
// Add on a sync.WaitGroup.
func isWaitGroupAdd(pass *Pass, stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	return isWaitGroupMethod(pass, call, "Add")
}

// litDefersDone reports whether the function literal contains a
// `defer wg.Done()` at any depth (excluding nested function literals).
func litDefersDone(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if isWaitGroupMethod(pass, x.Call, "Done") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isWaitGroupMethod reports whether call invokes the named method on a
// sync.WaitGroup receiver.
func isWaitGroupMethod(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	return isNamed(s.Recv(), "sync", "WaitGroup")
}
