package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// MetricName enforces the PR 1 registry convention: metric names passed to
// obs.Registry / metrics.Family registration calls are literal, lowercase,
// dot-hierarchical identifiers ("rdma.msgs_sent", "engine.acks"). Literal
// names make metrics greppable — a dashboard query can be traced to the
// registration site — and the lowercase dot hierarchy keeps the /metrics
// endpoint's Prometheus translation deterministic.
//
// The name argument may be built from concatenation (prefix + ".rate") or a
// fmt.Sprintf with a literal format, but at least one fragment must be a
// string literal matching ^[a-z0-9_.]+$, and a fully literal name must be a
// well-formed dot path ([a-z0-9_]+(\.[a-z0-9_]+)*).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric registration names must be literal, lowercase, dot-hierarchical",
	Run:  runMetricName,
}

// metricRegistrars maps method name -> true for registration methods whose
// first argument is the metric name.
var metricRegistrars = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true, "HistogramFunc": true,
	"Attach": true,
}

var (
	fragmentRe  = regexp.MustCompile(`^[a-z0-9_.]+$`)
	fullNameRe  = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)*$`)
	sprintfVerb = regexp.MustCompile(`%[a-z]`)
)

func runMetricName(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isMetricRegistration(pass, call) || len(call.Args) == 0 {
				return true
			}
			checkMetricNameArg(pass, call.Args[0])
			return true
		})
	}
}

// isMetricRegistration reports whether call is a registration method on
// whale/internal/obs.Registry or whale/internal/metrics.Family.
func isMetricRegistration(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !metricRegistrars[sel.Sel.Name] {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	recv := s.Recv()
	return isNamed(recv, "whale/internal/obs", "Registry") ||
		isNamed(recv, "whale/internal/metrics", "Family")
}

// checkMetricNameArg validates the name expression. Fully constant names
// must match the dot-path grammar; composed names need at least one literal
// fragment that is lowercase dot/underscore text.
func checkMetricNameArg(pass *Pass, arg ast.Expr) {
	// Constant-folded name (literal, const, or literal concatenation):
	// validate the final value directly.
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		name := constant.StringVal(tv.Value)
		if !fullNameRe.MatchString(name) {
			pass.Reportf(arg.Pos(), "metric name %q is not lowercase dot-hierarchical (want e.g. \"rdma.msgs_sent\")", name)
		}
		return
	}
	frags := literalFragments(pass, arg)
	if len(frags) == 0 {
		pass.Reportf(arg.Pos(), "metric name has no literal fragment: register with a literal, lowercase, dot-hierarchical name")
		return
	}
	for _, fr := range frags {
		text := sprintfVerb.ReplaceAllString(fr.text, "")
		text = strings.Trim(text, ".")
		if text == "" {
			continue
		}
		if !fragmentRe.MatchString(text) {
			pass.Reportf(fr.pos, "metric name fragment %q is not lowercase [a-z0-9_.]", fr.text)
		}
	}
}

type literalFragment struct {
	text string
	pos  token.Pos
}

// literalFragments collects string literal pieces of a name expression:
// concatenation operands and fmt.Sprintf format strings.
func literalFragments(pass *Pass, e ast.Expr) []literalFragment {
	var out []literalFragment
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch x := ast.Unparen(e).(type) {
		case *ast.BasicLit:
			if x.Kind == token.STRING {
				if s, err := strconv.Unquote(x.Value); err == nil {
					out = append(out, literalFragment{text: s, pos: x.Pos()})
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				walk(x.X)
				walk(x.Y)
			}
		case *ast.CallExpr:
			f := callee(pass.Info, x)
			if f != nil && funcPkgPath(f) == "fmt" && f.Name() == "Sprintf" && len(x.Args) > 0 {
				walk(x.Args[0])
			}
		case *ast.Ident:
			// A named constant still folds; if it didn't (a var), it is
			// not a literal fragment.
			if tv, ok := pass.Info.Types[x]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				out = append(out, literalFragment{text: constant.StringVal(tv.Value), pos: x.Pos()})
			}
		}
	}
	walk(e)
	return out
}
