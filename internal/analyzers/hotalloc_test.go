package analyzers_test

import (
	"testing"

	"whale/internal/analyzers"
	"whale/internal/analyzers/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, testdata(t, "hotalloc"), analyzers.HotAlloc)
}
