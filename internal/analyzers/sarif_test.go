package analyzers_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"whale/internal/analyzers"
)

func TestWriteSARIF(t *testing.T) {
	diags := []analyzers.Diagnostic{{
		Analyzer: "bufown",
		Pos:      token.Position{Filename: "/repo/internal/dsps/flow.go", Line: 42, Column: 7},
		Message:  "sb may not be released on every exit path",
	}}
	var buf bytes.Buffer
	if err := analyzers.WriteSARIF(&buf, "/repo", analyzers.All(), diags); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q runs %d, want 2.1.0 / 1", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "whalevet" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	// One rule per analyzer plus the staledirective framework check.
	if want := len(analyzers.All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 1 {
		t.Fatalf("results %d, want 1", len(run.Results))
	}
	res := run.Results[0]
	loc := res.Locations[0].PhysicalLocation
	if res.RuleID != "bufown" || loc.Region.StartLine != 42 {
		t.Errorf("result %+v", res)
	}
	if got := loc.ArtifactLocation.URI; got != "internal/dsps/flow.go" {
		t.Errorf("URI %q, want repo-relative internal/dsps/flow.go", got)
	}
	if strings.Contains(buf.String(), "\\\\") {
		t.Error("SARIF URIs must use forward slashes")
	}
}

// TestWriteSARIFEmpty: a clean run still produces a well-formed log with
// an empty results array (how code scanning clears old alerts).
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := analyzers.WriteSARIF(&buf, "/repo", analyzers.All(), nil); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Error("empty run must serialize results as [], not null")
	}
}
