package analyzers_test

import (
	"path/filepath"
	"strings"
	"testing"

	"whale/internal/analyzers"
)

// moduleRoot resolves the repository root from the package directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestLoadDirBuildConstraints proves LoadDir filters files the go tool
// would exclude: the loadtags fixture only type-checks when both the
// //go:build-tagged file and the _plan9 filename-suffix file are dropped
// (each declares a conflicting Sentinel), and it contains generic
// functions so instantiation runs through the export-data importer too.
func TestLoadDirBuildConstraints(t *testing.T) {
	dir := testdata(t, "loadtags")
	pkg, err := analyzers.NewLoader(dir).LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("LoadDir kept %d files, want 1 (constrained siblings filtered)", len(pkg.Files))
	}
	name := pkg.Fset.Position(pkg.Files[0].FileStart).Filename
	if !strings.HasSuffix(name, "loadtags.go") {
		t.Fatalf("LoadDir kept %s, want loadtags.go", name)
	}
	// Generic declarations survived type-checking.
	scope := pkg.Types.Scope()
	for _, sym := range []string{"Clamp", "Window", "UseClamp", "Sentinel"} {
		if scope.Lookup(sym) == nil {
			t.Errorf("symbol %s missing from type-checked package", sym)
		}
	}
}

// TestLoadRepo loads the real module root and checks a package with
// generics-era code type-checks through the export-data pipeline.
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	loader := analyzers.NewLoader(moduleRoot(t))
	pkgs, err := loader.Load("./internal/analyzers/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
}
