package analyzers

import (
	"go/ast"
	"strings"
)

// Generic forward dataflow over a funcCFG.
//
// State is a small map from string keys (analyzer-chosen: expression text,
// lock identity, obligation tag) to a bitmask. The join at control-flow
// merges is per-key bitwise OR, making every analysis built on this driver a
// may-analysis: a bit is set at a point if it may be set on some path
// reaching that point. Analyzers that need "on every path" phrase it as
// "the absence bit may reach exit" instead.
type flowState map[string]uint8

func (s flowState) clone() flowState {
	out := make(flowState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// join merges o into s, returning true if s changed.
func (s flowState) join(o flowState) bool {
	changed := false
	for k, v := range o {
		if s[k]|v != s[k] {
			s[k] |= v
			changed = true
		}
	}
	return changed
}

func (s flowState) equal(o flowState) bool {
	if len(s) != len(o) {
		// Keys are only ever added with nonzero bits, but be safe.
		for k, v := range s {
			if o[k] != v {
				return false
			}
		}
		for k, v := range o {
			if s[k] != v {
				return false
			}
		}
		return true
	}
	for k, v := range s {
		if o[k] != v {
			return false
		}
	}
	return true
}

// transferFunc mutates state in place for one CFG node. The final flag is
// true only during the reporting pass (after fixpoint), so transfer
// functions report diagnostics exactly once.
//
// Contract: a *ast.RangeStmt node is the loop-head binding marker — its
// Body runs through its own blocks, so transfers must not descend into it.
// Most analyzers just call rangeRebind and return.
type transferFunc func(state flowState, n ast.Node, final bool)

// rangeRebind clears state keyed on a range loop's iteration variables:
// each iteration rebinds them to a fresh value, so protocol state tracked
// under "mgr" or "mgr.done" in one iteration must not leak into the next
// (or past the loop) under the same textual key.
func rangeRebind(state flowState, r *ast.RangeStmt) {
	for _, v := range [2]ast.Expr{r.Key, r.Value} {
		if v == nil {
			continue
		}
		key := exprText(v)
		if key == "_" || key == "<expr>" {
			continue
		}
		for k := range state {
			if k == key || strings.HasPrefix(k, key+".") {
				delete(state, k)
			}
		}
	}
}

// forward runs a worklist fixpoint over g: in[entry] = entry state (may be
// nil), out[b] = transfer(in[b]), in[b] = join of out[preds]. It returns
// the state at g.exit after defers have been applied (defers are collected
// flow-insensitively; their calls are replayed on the exit state in reverse
// registration order, matching Go's LIFO defer execution).
//
// After the fixpoint, forward replays every block once more with final=true
// so transfer functions can emit diagnostics from a converged state.
func forward(g *funcCFG, entry flowState, transfer transferFunc) flowState {
	in := make([]flowState, len(g.blocks))
	preds := make([][]*cfgBlock, len(g.blocks))
	for _, b := range g.blocks {
		for _, s := range b.succs {
			preds[s.index] = append(preds[s.index], b)
		}
	}
	if entry == nil {
		entry = flowState{}
	}
	in[g.entry.index] = entry.clone()

	apply := func(b *cfgBlock, st flowState, final bool) flowState {
		out := st.clone()
		for _, n := range b.nodes {
			transfer(out, n, final)
		}
		return out
	}

	work := []*cfgBlock{g.entry}
	onWork := make([]bool, len(g.blocks))
	onWork[g.entry.index] = true
	out := make([]flowState, len(g.blocks))
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		onWork[b.index] = false
		if in[b.index] == nil {
			in[b.index] = flowState{}
		}
		newOut := apply(b, in[b.index], false)
		if out[b.index] != nil && out[b.index].equal(newOut) {
			continue
		}
		out[b.index] = newOut
		for _, s := range b.succs {
			if in[s.index] == nil {
				in[s.index] = flowState{}
			}
			if in[s.index].join(newOut) || out[s.index] == nil {
				if !onWork[s.index] {
					work = append(work, s)
					onWork[s.index] = true
				}
			}
		}
	}

	// Reporting pass: replay each reachable block once from its converged
	// in-state with final=true.
	for _, b := range g.blocks {
		if in[b.index] == nil {
			continue // unreachable
		}
		apply(b, in[b.index], true)
	}

	exit := in[g.exit.index]
	if exit == nil {
		exit = flowState{} // no path reaches exit (infinite loop / all panic)
	} else {
		exit = exit.clone()
	}
	// Replay deferred calls on the exit state, last-registered first.
	for i := len(g.defers) - 1; i >= 0; i-- {
		transfer(exit, g.defers[i].Call, false)
	}
	return exit
}
