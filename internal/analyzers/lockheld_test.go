package analyzers_test

import (
	"testing"

	"whale/internal/analyzers"
	"whale/internal/analyzers/analysistest"
)

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, testdata(t, "lockheld"), analyzers.LockHeld)
}
