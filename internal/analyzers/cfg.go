package analyzers

import (
	"go/ast"
	"go/token"
)

// This file builds intraprocedural control-flow graphs over go/ast function
// bodies. The CFG is the substrate for the path-aware analyzers (bufown,
// creditbalance, chanprotocol, lockorder): each function body becomes a set
// of basic blocks whose nodes execute in order, connected by edges for
// every branch, loop, goto, labeled break/continue, switch fallthrough, and
// select arm. A synthetic exit block joins every normal return and the
// fall-off-the-end path, so a forward dataflow's state at exit summarizes
// "what is true on every way out of the function".
//
// Two deliberate simplifications, documented because they bound soundness:
//
//   - Deferred calls are collected flow-insensitively into funcCFG.defers
//     and applied once at exit by the dataflow driver. A defer guarded by a
//     condition is therefore assumed to have been registered — fine for the
//     release-in-defer idiom the analyzers care about, where the defer
//     directly follows the acquire.
//   - A call to panic (or os.Exit / runtime.Goexit by name) terminates its
//     block with no successor: the process (or goroutine) dies, so exit
//     obligations are not checked on panic paths.
type cfgBlock struct {
	index int
	nodes []ast.Node  // statements and expressions in execution order
	succs []*cfgBlock // successor edges
}

// addSucc appends an edge b -> s, dropping duplicates.
func (b *cfgBlock) addSucc(s *cfgBlock) {
	for _, have := range b.succs {
		if have == s {
			return
		}
	}
	b.succs = append(b.succs, s)
}

// funcCFG is one function body's control-flow graph.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // synthetic; no nodes, no successors
	blocks []*cfgBlock
	defers []*ast.DeferStmt // every defer in the body, in source order
}

// cfgBuilder holds the in-progress graph.
type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock

	// Innermost enclosing loop/switch/select targets for bare break and
	// continue, and the label registry for the labeled forms plus goto.
	breakTarget    *cfgBlock
	continueTarget *cfgBlock
	labels         map[string]*labelTargets
	gotoBlocks     map[string]*cfgBlock // label -> block the labeled stmt starts
	pendingGotos   map[string][]*cfgBlock
}

// labelTargets records where a labeled loop/switch sends its labeled break
// and continue.
type labelTargets struct {
	brk, cont *cfgBlock
}

// buildCFG constructs the CFG for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		g:            &funcCFG{},
		labels:       map[string]*labelTargets{},
		gotoBlocks:   map[string]*cfgBlock{},
		pendingGotos: map[string][]*cfgBlock{},
	}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	b.cur = b.g.entry
	b.stmts(body.List, "")
	if b.cur != nil {
		b.cur.addSucc(b.g.exit)
	}
	// Resolve gotos that jumped forward to labels seen later.
	for label, srcs := range b.pendingGotos {
		if dst, ok := b.gotoBlocks[label]; ok {
			for _, s := range srcs {
				s.addSucc(dst)
			}
		}
		// An unresolved goto targets a label outside the analyzed body
		// (malformed source); the jump edge is simply dropped.
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// startBlock ends the current block with an edge into a fresh one.
func (b *cfgBuilder) startBlock() *cfgBlock {
	next := b.newBlock()
	if b.cur != nil {
		b.cur.addSucc(next)
	}
	b.cur = next
	return next
}

// emit appends a node to the current block (no-op in dead code after a
// terminator).
func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt, label string) {
	for i, s := range list {
		// Fallthrough is resolved by the switch builder; a stray one in the
		// statement walk (malformed) is ignored.
		next := ""
		_ = next
		b.stmt(s, labelFor(i, list, label))
	}
}

// labelFor threads the enclosing label only to the first statement of a
// labeled statement's body; ordinary list positions get none.
func labelFor(i int, list []ast.Stmt, label string) string {
	if i == 0 {
		return label
	}
	return ""
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch x := s.(type) {
	case *ast.LabeledStmt:
		// The labeled statement starts its own block so goto can target it.
		blk := b.startBlock()
		b.gotoBlocks[x.Label.Name] = blk
		b.stmt(x.Stmt, x.Label.Name)

	case *ast.BlockStmt:
		b.stmts(x.List, "")

	case *ast.IfStmt:
		if x.Init != nil {
			b.emit(x.Init)
		}
		b.emit(x.Cond)
		if b.cur == nil {
			return
		}
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		cond.addSucc(then)
		b.cur = then
		b.stmts(x.Body.List, "")
		if b.cur != nil {
			b.cur.addSucc(after)
		}
		if x.Else != nil {
			els := b.newBlock()
			cond.addSucc(els)
			b.cur = els
			b.stmt(x.Else, "")
			if b.cur != nil {
				b.cur.addSucc(after)
			}
		} else {
			cond.addSucc(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if x.Init != nil {
			b.emit(x.Init)
		}
		if b.cur == nil {
			return
		}
		head := b.startBlock()
		if x.Cond != nil {
			b.emit(x.Cond)
		}
		after := b.newBlock()
		if x.Cond != nil {
			head.addSucc(after)
		}
		post := head
		if x.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, x.Post)
			post.addSucc(head)
		}
		body := b.newBlock()
		head.addSucc(body)
		b.withLoop(after, post, label, func() {
			b.cur = body
			b.stmts(x.Body.List, "")
			if b.cur != nil {
				b.cur.addSucc(post)
			}
		})
		b.cur = after

	case *ast.RangeStmt:
		b.emit(x.X)
		if b.cur == nil {
			return
		}
		head := b.startBlock()
		// The RangeStmt node at the head stands for the per-iteration
		// key/value binding ONLY: its Body executes through its own blocks,
		// so transfer functions must treat *ast.RangeStmt as a binding
		// marker and never descend into it (see rangeRebind in dataflow.go).
		head.nodes = append(head.nodes, x)
		after := b.newBlock()
		head.addSucc(after) // a range may iterate zero times
		body := b.newBlock()
		head.addSucc(body)
		b.withLoop(after, head, label, func() {
			b.cur = body
			b.stmts(x.Body.List, "")
			if b.cur != nil {
				b.cur.addSucc(head)
			}
		})
		b.cur = after

	case *ast.SwitchStmt:
		if x.Init != nil {
			b.emit(x.Init)
		}
		if x.Tag != nil {
			b.emit(x.Tag)
		}
		b.switchClauses(x.Body.List, label, func(cc *ast.CaseClause, blk *cfgBlock) {
			for _, e := range cc.List {
				blk.nodes = append(blk.nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			b.emit(x.Init)
		}
		b.emit(x.Assign)
		b.switchClauses(x.Body.List, label, nil)

	case *ast.SelectStmt:
		if b.cur == nil {
			return
		}
		head := b.cur
		after := b.newBlock()
		any := false
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			any = true
			blk := b.newBlock()
			head.addSucc(blk)
			if cc.Comm != nil {
				blk.nodes = append(blk.nodes, cc.Comm)
			}
			b.withBreak(after, label, func() {
				b.cur = blk
				b.stmts(cc.Body, "")
				if b.cur != nil {
					b.cur.addSucc(after)
				}
			})
		}
		if !any {
			// select{} blocks forever: no successors.
			b.cur = nil
			return
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.emit(x)
		if b.cur != nil {
			b.cur.addSucc(b.g.exit)
		}
		b.cur = nil

	case *ast.BranchStmt:
		switch x.Tok {
		case token.BREAK:
			target := b.breakTarget
			if x.Label != nil {
				if lt, ok := b.labels[x.Label.Name]; ok {
					target = lt.brk
				}
			}
			if b.cur != nil && target != nil {
				b.cur.addSucc(target)
			}
			b.cur = nil
		case token.CONTINUE:
			target := b.continueTarget
			if x.Label != nil {
				if lt, ok := b.labels[x.Label.Name]; ok {
					target = lt.cont
				}
			}
			if b.cur != nil && target != nil {
				b.cur.addSucc(target)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil && x.Label != nil {
				if dst, ok := b.gotoBlocks[x.Label.Name]; ok {
					b.cur.addSucc(dst)
				} else {
					b.pendingGotos[x.Label.Name] = append(b.pendingGotos[x.Label.Name], b.cur)
				}
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by switchClauses; nothing to do here.
		}

	case *ast.DeferStmt:
		b.g.defers = append(b.g.defers, x)
		b.emit(x)

	case *ast.GoStmt:
		// The spawned body runs elsewhere; the call's arguments evaluate here.
		b.emit(x)

	case *ast.ExprStmt:
		b.emit(x)
		if isTerminalCall(x.X) {
			b.cur = nil
		}

	default:
		// Assignments, sends, inc/dec, declarations, empty statements.
		b.emit(s)
	}
}

// switchClauses wires the shared switch shape: every case entered from the
// head, fallthrough chaining body-to-body, break (bare or labeled) to the
// after block, and a default-less switch falling through to after directly.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, caseExprs func(*ast.CaseClause, *cfgBlock)) {
	if b.cur == nil {
		return
	}
	head := b.cur
	after := b.newBlock()
	blocks := make([]*cfgBlock, 0, len(clauses))
	ccs := make([]*ast.CaseClause, 0, len(clauses))
	hasDefault := false
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		head.addSucc(blk)
		if cc.List == nil {
			hasDefault = true
		}
		if caseExprs != nil {
			caseExprs(cc, blk)
		}
		blocks = append(blocks, blk)
		ccs = append(ccs, cc)
	}
	if !hasDefault {
		head.addSucc(after)
	}
	for i, cc := range ccs {
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.withBreak(after, label, func() {
			b.cur = blocks[i]
			b.stmts(body, "")
			if b.cur != nil {
				if fallsThrough && i+1 < len(blocks) {
					b.cur.addSucc(blocks[i+1])
				} else {
					b.cur.addSucc(after)
				}
			}
		})
	}
	b.cur = after
}

// withLoop runs fn with break/continue (and the loop's label, if any)
// pointing at the given targets, restoring the enclosing targets after.
func (b *cfgBuilder) withLoop(brk, cont *cfgBlock, label string, fn func()) {
	oldB, oldC := b.breakTarget, b.continueTarget
	b.breakTarget, b.continueTarget = brk, cont
	if label != "" {
		old := b.labels[label]
		b.labels[label] = &labelTargets{brk: brk, cont: cont}
		defer func() { restoreLabel(b, label, old) }()
	}
	fn()
	b.breakTarget, b.continueTarget = oldB, oldC
}

// withBreak runs fn with only the break target replaced (switch/select).
func (b *cfgBuilder) withBreak(brk *cfgBlock, label string, fn func()) {
	old := b.breakTarget
	b.breakTarget = brk
	if label != "" {
		oldLT := b.labels[label]
		b.labels[label] = &labelTargets{brk: brk, cont: nil}
		defer func() { restoreLabel(b, label, oldLT) }()
	}
	fn()
	b.breakTarget = old
}

func restoreLabel(b *cfgBuilder, label string, old *labelTargets) {
	if old == nil {
		delete(b.labels, label)
	} else {
		b.labels[label] = old
	}
}

// isTerminalCall reports whether e is a call that never returns: panic,
// os.Exit, or runtime.Goexit (matched by name — precise enough for CFG
// termination, and type info is not available at build time).
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return (pkg.Name == "os" && fun.Sel.Name == "Exit") ||
				(pkg.Name == "runtime" && fun.Sel.Name == "Goexit")
		}
	}
	return false
}
