package analyzers_test

import (
	"testing"

	"whale/internal/analyzers"
	"whale/internal/analyzers/analysistest"
)

func TestBufOwn(t *testing.T) {
	analysistest.Run(t, testdata(t, "bufown"), analyzers.BufOwn)
}

func TestCreditBalance(t *testing.T) {
	analysistest.Run(t, testdata(t, "creditbalance"), analyzers.CreditBalance)
}

func TestChanProtocol(t *testing.T) {
	analysistest.Run(t, testdata(t, "chanprotocol"), analyzers.ChanProtocol)
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, testdata(t, "lockorder"), analyzers.LockOrder)
}

func TestStaleDirective(t *testing.T) {
	analysistest.Run(t, testdata(t, "staledirective"), analyzers.LockHeld)
}
