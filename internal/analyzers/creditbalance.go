package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// CreditBalance verifies the PR 4 flow-control invariant: every delivery
// unit a receiver charges must be granted back, or the sender's credit
// window shrinks forever and the link wedges at zero. Charge sites are
// marked in source:
//
//	//whale:charged        the statement charges units that must reach a
//	                       //whale:grants call on every path to exit
//	//whale:charged multi  the charge count is dynamic (a per-destination
//	                       loop); the check relaxes to at-least-one-path
//	//whale:credit-terminal this exit intentionally drops the charge (the
//	                       peer's account was torn down with it)
//
// A //whale:grants function doc directive marks the granting primitives
// (grantData, flowControl.grant, sendGrant); any call to one discharges
// every outstanding charge on that path. The analysis is the same forward
// may-dataflow as bufown, keyed per charge site, so "charge escapes to
// exit on some path" pinpoints the unbalanced return.
var CreditBalance = &Analyzer{
	Name: "creditbalance",
	Doc:  "every //whale:charged delivery-unit charge is matched by a grant or an annotated terminal exit",
	Run:  runCreditBalance,
}

const creditKeyPrefix = "credit@"

func runCreditBalance(pass *Pass) {
	// Grant facts are package-local: the granting primitives and every
	// charge site live in the same package (internal/dsps), and fixtures
	// declare their own.
	facts := collectFuncFacts([]*Package{{
		Fset:  pass.Fset,
		Files: pass.Files,
		Types: pass.Pkg,
		Info:  pass.Info,
	}})
	for _, file := range pass.Files {
		cc := &creditCtx{
			pass:      pass,
			facts:     facts,
			dirs:      newLineDirectivesFset(pass.Fset, file),
			chargePos: map[string]token.Pos{},
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					cc.checkFunc(x.Body)
				}
			case *ast.FuncLit:
				cc.checkFunc(x.Body)
			}
			return true
		})
	}
}

type creditCtx struct {
	pass      *Pass
	facts     funcFacts
	dirs      map[int][]lineDirective
	chargePos map[string]token.Pos
}

func (cc *creditCtx) checkFunc(body *ast.BlockStmt) {
	// Skip bodies whose files carry no charge directives at all — the
	// fixpoint is pure overhead without a charge to track.
	hasCharge := false
	for _, ds := range cc.dirs {
		for _, d := range ds {
			if d.text == dirCharged || strings.HasPrefix(d.text, dirCharged+" ") {
				hasCharge = true
			}
		}
	}
	if !hasCharge {
		return
	}
	cc.chargePos = map[string]token.Pos{}
	g := buildCFG(body)
	exit := forward(g, nil, cc.transfer)
	for key, st := range exit {
		if st&bitOwned == 0 {
			continue
		}
		if st&bitMulti != 0 && st&bitDone != 0 {
			continue
		}
		cc.pass.Reportf(cc.chargePos[key],
			"charge is not matched by a grant or //whale:credit-terminal on every exit path")
	}
}

func (cc *creditCtx) transfer(state flowState, n ast.Node, final bool) {
	if _, ok := n.(*ast.RangeStmt); ok {
		return // binding marker; the body runs through its own blocks
	}
	if _, isStmt := n.(ast.Stmt); isStmt {
		line := cc.pass.Fset.Position(n.Pos()).Line
		if op, ok := stmtDirective(cc.dirs, line, dirCharged); ok {
			key := fmt.Sprintf("%s%d", creditKeyPrefix, line)
			bits := bitOwned
			if op == "multi" {
				bits |= bitMulti
			}
			state[key] |= bits
			cc.chargePos[key] = n.Pos()
		}
		if _, ok := stmtDirective(cc.dirs, line, dirCreditTerminal); ok {
			dischargeCredits(state)
		}
	}
	ast.Inspect(n, func(sub ast.Node) bool {
		switch c := sub.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if f := callee(cc.pass.Info, c); f != nil && cc.facts[f.FullName()].grants {
				dischargeCredits(state)
			}
		}
		return true
	})
}

func dischargeCredits(state flowState) {
	for k, st := range state {
		if len(k) >= len(creditKeyPrefix) && k[:len(creditKeyPrefix)] == creditKeyPrefix && st&bitOwned != 0 {
			state[k] = (st &^ bitOwned) | bitDone
		}
	}
}
