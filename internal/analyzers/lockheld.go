package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld flags blocking operations executed while a sync.Mutex or
// sync.RWMutex is held: channel sends/receives, selects without a default,
// time.Sleep, Wait calls, and RDMA verb posts (internal/rdma PostSend /
// PostRecv / Poll). These are exactly the shapes that turn the ring-flush
// and engine-reconfiguration paths into convoy points — every other caller
// of the lock stalls behind the sleeper.
//
// The analysis is intra-procedural with bounded local expansion: when a
// lock is held and the function calls another function or method declared
// in the same package, the callee's body is searched too (three levels
// deep), so `mu.Lock(); c.flush()` is caught even though the sleep lives
// in flush. Goroutine bodies launched with `go` are excluded — they do not
// run under the caller's lock.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "flags blocking operations (channel ops, time.Sleep, Wait, RDMA verb posts) while a mutex is held",
	Run:  runLockHeld,
}

// lockExpansionDepth bounds how many same-package call levels are searched
// below a lock-holding function.
const lockExpansionDepth = 3

type lockHeldState struct {
	pass      *Pass
	funcDecls map[*types.Func]*ast.FuncDecl
}

func runLockHeld(pass *Pass) {
	st := &lockHeldState{pass: pass, funcDecls: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				st.funcDecls[obj] = fd
			}
		}
	}
	// Analyze every function body — declared functions and function
	// literals — as an independent scope with no lock held on entry.
	// scanBlock never descends into a nested FuncLit, so continuing the
	// walk gives each literal exactly one independent scan.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					st.scanBlock(x.Body, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				st.scanBlock(x.Body, map[string]token.Pos{})
			}
			return true
		})
	}
}

// isMutexMethod classifies a call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex receiver, returning the receiver expression's
// textual key.
func (st *lockHeldState) isMutexMethod(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	s, found := st.pass.Info.Selections[sel]
	if !found {
		return "", "", false
	}
	recv := s.Recv()
	if !isNamed(recv, "sync", "Mutex") && !isNamed(recv, "sync", "RWMutex") {
		return "", "", false
	}
	return exprText(sel.X), sel.Sel.Name, true
}

// scanBlock walks stmts in order, tracking the set of held mutexes (keyed
// by receiver expression text) and reporting blocking operations while the
// set is non-empty. Nested blocks get a copy of the held set: an unlock on
// a branch that returns does not clear the lock on the fall-through path.
func (st *lockHeldState) scanBlock(block *ast.BlockStmt, held map[string]token.Pos) {
	for _, stmt := range block.List {
		st.scanStmt(stmt, held)
	}
}

func (st *lockHeldState) scanStmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, method, ok := st.isMutexMethod(call); ok {
				switch method {
				case "Lock", "RLock":
					held[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		st.checkExpr(s.X, held)

	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end — nothing
		// to update. Other deferred calls run after the scanned region, so
		// they are not checked against the current held set.
		return

	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's lock. The
		// argument expressions do evaluate here, though.
		for _, arg := range s.Call.Args {
			st.checkExpr(arg, held)
		}

	case *ast.BlockStmt:
		st.scanBlock(s, copyHeld(held))

	case *ast.IfStmt:
		if s.Init != nil {
			st.scanStmt(s.Init, held)
		}
		st.checkExpr(s.Cond, held)
		st.scanBlock(s.Body, copyHeld(held))
		if s.Else != nil {
			st.scanStmt(s.Else, copyHeld(held))
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			st.checkExpr(s.Cond, held)
		}
		st.scanBlock(s.Body, copyHeld(held))

	case *ast.RangeStmt:
		st.checkExpr(s.X, held)
		st.scanBlock(s.Body, copyHeld(held))

	case *ast.SwitchStmt:
		if s.Init != nil {
			st.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			st.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, b := range cc.Body {
					st.scanStmt(b, inner)
				}
			}
		}

	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, b := range cc.Body {
					st.scanStmt(b, inner)
				}
			}
		}

	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			st.report(s.Pos(), "blocking select", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := copyHeld(held)
				for _, b := range cc.Body {
					st.scanStmt(b, inner)
				}
			}
		}

	case *ast.SendStmt:
		if len(held) > 0 {
			st.report(s.Arrow, "channel send", held)
		}
		st.checkExpr(s.Value, held)

	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st.checkExpr(rhs, held)
		}

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st.checkExpr(r, held)
		}

	case *ast.LabeledStmt:
		st.scanStmt(s.Stmt, held)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st.checkExpr(v, held)
					}
				}
			}
		}
	}
}

// checkExpr searches one expression for blocking operations while held is
// non-empty, descending into subexpressions but not function literals.
func (st *lockHeldState) checkExpr(e ast.Expr, held map[string]token.Pos) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // runs later, not under this lock (checked separately)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				st.report(x.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			if kind, ok := st.blockingCall(x); ok {
				st.report(x.Pos(), kind, held)
				return false
			}
			// Local expansion: does a same-package callee block?
			if kind, depthPos, ok := st.calleeBlocks(x, lockExpansionDepth, map[*types.Func]bool{}); ok {
				st.reportVia(x.Pos(), kind, depthPos, held)
				return false
			}
		}
		return true
	})
}

// blockingCall classifies a call expression as directly blocking.
func (st *lockHeldState) blockingCall(call *ast.CallExpr) (string, bool) {
	f := callee(st.pass.Info, call)
	if f == nil {
		return "", false
	}
	pkg := funcPkgPath(f)
	switch {
	case pkg == "time" && f.Name() == "Sleep":
		return "time.Sleep", true
	case f.Name() == "Wait" && st.isMethodCall(call):
		return selectorName(call) + " (completion/WaitGroup wait)", true
	case pkg == "whale/internal/rdma":
		switch f.Name() {
		case "PostSend", "PostRecv", "Poll", "LocalConsume":
			return selectorName(call) + " (RDMA verb)", true
		}
	}
	return "", false
}

func (st *lockHeldState) isMethodCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	_, ok = st.pass.Info.Selections[sel]
	return ok
}

// calleeBlocks reports whether a statically resolved same-package callee
// (or a callee it calls, up to depth levels) performs a blocking operation,
// returning the kind and the position of the underlying operation.
func (st *lockHeldState) calleeBlocks(call *ast.CallExpr, depth int, seen map[*types.Func]bool) (string, token.Pos, bool) {
	if depth == 0 {
		return "", token.NoPos, false
	}
	f := callee(st.pass.Info, call)
	if f == nil || seen[f] {
		return "", token.NoPos, false
	}
	fd, ok := st.funcDecls[f]
	if !ok || fd.Body == nil {
		return "", token.NoPos, false
	}
	seen[f] = true
	var kind string
	var pos token.Pos
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			kind, pos = "channel send", x.Arrow
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				kind, pos = "channel receive", x.OpPos
				return false
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				kind, pos = "blocking select", x.Pos()
				return false
			}
			// With a default the comm clauses are non-blocking attempts;
			// descend only into the clause bodies (mirrors scanStmt).
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, b := range cc.Body {
						ast.Inspect(b, visit)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if k, ok := st.blockingCall(x); ok {
				kind, pos = k, x.Pos()
				return false
			}
			if k, p, ok := st.calleeBlocks(x, depth-1, seen); ok {
				kind, pos = k, p
				return false
			}
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
	return kind, pos, kind != ""
}

func (st *lockHeldState) report(pos token.Pos, kind string, held map[string]token.Pos) {
	st.pass.Reportf(pos, "%s while %s is held", kind, heldNames(held))
}

func (st *lockHeldState) reportVia(callPos token.Pos, kind string, opPos token.Pos, held map[string]token.Pos) {
	op := st.pass.Fset.Position(opPos)
	st.pass.Reportf(callPos, "call reaches %s (%s:%d) while %s is held",
		kind, filebase(op.Filename), op.Line, heldNames(held))
}

func heldNames(held map[string]token.Pos) string {
	if len(held) == 1 {
		for k := range held {
			return "mutex " + k
		}
	}
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sortStrings(names)
	out := "mutexes "
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func filebase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
