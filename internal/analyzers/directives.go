package analyzers

import (
	"go/ast"
	"strconv"
	"strings"
)

// //whale: directives are machine-checked annotations attached to function
// doc comments (and, for lockrank, to struct-field doc/line comments). They
// are the vocabulary the dataflow analyzers use to cross function
// boundaries without becoming interprocedural:
//
//	//whale:acquires [field]    function returns an owned resource the
//	                            caller must balance (bufown). The optional
//	                            field names which result/field carries it.
//	//whale:owns <expr> ...     dual purpose: inside the annotated function
//	                            the named parameter/receiver arrives owned
//	                            (an obligation on entry); at call sites the
//	                            matching argument's obligation is consumed
//	                            (ownership moves into the callee).
//	//whale:transfers <expr>    the statement (or the annotated function's
//	                            call sites) moves ownership of <expr> into a
//	                            long-lived structure (queue, map); bufown
//	                            discharges the obligation without requiring
//	                            a release on this path.
//	//whale:grants              the function performs a credit grant; a call
//	                            discharges outstanding charge obligations
//	                            (creditbalance).
//	//whale:charged [multi]     the enclosing statement charges delivery
//	                            units that must be granted back on every
//	                            exit path; "multi" relaxes the check to
//	                            at-least-one-path (dynamic counts/loops).
//	//whale:credit-terminal     this exit path intentionally drops the
//	                            charge (e.g. the peer died and its account
//	                            was torn down); creditbalance accepts it.
//	//whale:lockrank <n>        canonical acquisition rank for a mutex
//	                            field; lockorder requires ranks to be
//	                            acquired in strictly increasing order.
//	//whale:hotpath             (pre-existing) hotalloc's allocation-free
//	                            marker.
//
// Directives live in comments, so they survive gofmt and appear in godoc —
// DESIGN §11 treats them as the normative ownership spec.
const (
	dirAcquires       = "//whale:acquires"
	dirOwns           = "//whale:owns"
	dirTransfers      = "//whale:transfers"
	dirRetains        = "//whale:retains"
	dirGrants         = "//whale:grants"
	dirCharged        = "//whale:charged"
	dirCreditTerminal = "//whale:credit-terminal"
	dirLockRank       = "//whale:lockrank"
)

// funcDirectives is the parsed directive set from one function's doc
// comment.
type funcDirectives struct {
	acquires  bool
	owns      []string // parameter/receiver names arriving owned
	transfers []string // expressions whose ownership the callee takes
	retains   bool     // receiver/first arg gains dynamic references
	grants    bool
}

// parseFuncDirectives scans a function's doc comment.
func parseFuncDirectives(doc *ast.CommentGroup) funcDirectives {
	var d funcDirectives
	if doc == nil {
		return d
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		switch {
		case strings.HasPrefix(text, dirAcquires):
			d.acquires = true
		case strings.HasPrefix(text, dirOwns):
			d.owns = append(d.owns, strings.Fields(strings.TrimPrefix(text, dirOwns))...)
		case strings.HasPrefix(text, dirTransfers):
			d.transfers = append(d.transfers, strings.Fields(strings.TrimPrefix(text, dirTransfers))...)
		case strings.HasPrefix(text, dirRetains):
			d.retains = true
		case strings.HasPrefix(text, dirGrants):
			d.grants = true
		}
	}
	return d
}

// lineDirective is one //whale: comment keyed by its source line. A
// trailing directive shares the line with code and binds to that statement
// only; a standalone one binds to the statement on the line below. Without
// the distinction, a directive trailing statement N would also bind to
// statement N+1 through the line-above rule and (for //whale:charged)
// manufacture a phantom obligation.
type lineDirective struct {
	text     string
	trailing bool
}

// stmtDirective returns the first directive with the given prefix attached
// to the statement at line (same line, or a standalone comment on the line
// above), plus its operand.
func stmtDirective(dirs map[int][]lineDirective, line int, prefix string) (string, bool) {
	match := func(d lineDirective) (string, bool) {
		if d.text == prefix || strings.HasPrefix(d.text, prefix+" ") {
			return strings.TrimSpace(strings.TrimPrefix(d.text, prefix)), true
		}
		return "", false
	}
	for _, d := range dirs[line] {
		if op, ok := match(d); ok {
			return op, ok
		}
	}
	for _, d := range dirs[line-1] {
		if d.trailing {
			continue
		}
		if op, ok := match(d); ok {
			return op, ok
		}
	}
	return "", false
}

// parseLockRank extracts //whale:lockrank from a field's doc or line
// comment. Returns -1 when absent.
func parseLockRank(field *ast.Field) int {
	for _, cg := range [2]*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, dirLockRank) {
				continue
			}
			op := strings.TrimSpace(strings.TrimPrefix(text, dirLockRank))
			if n, err := strconv.Atoi(strings.Fields(op + " x")[0]); err == nil {
				return n
			}
		}
	}
	return -1
}
