package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader loads packages from source and type-checks them against compiled
// export data resolved through `go list -export`. It is self-contained on
// the standard library: the gc importer reads the build cache's export
// files directly, so no third-party package-loading dependency is needed.
type Loader struct {
	// Dir is the directory `go list` runs in (anywhere inside the module).
	Dir  string
	fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader creates a loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
}

// goList runs `go list` with the given extra args and decodes the JSON
// package stream.
func (l *Loader) goList(args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lookupExport resolves an import path to its export data, consulting the
// cache filled by Load and falling back to an individual `go list -export`
// invocation (used by LoadDir, whose import sets are not pre-listed).
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		pkgs, err := l.goList("-export", "-deps", "-json=ImportPath,Export", path)
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		for _, p := range pkgs {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
		file = l.exports[path]
		l.mu.Unlock()
	}
	if file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	b, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

// Load loads and type-checks the packages matching the patterns (e.g.
// "./..."), excluding test files. Dependencies resolve through compiled
// export data, so only the matched packages are parsed from source.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One -deps listing fills the export cache for every dependency.
	deps, err := l.goList(append([]string{"-export", "-deps", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	for _, p := range deps {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.mu.Unlock()

	targets, err := l.goList(append([]string{"-json=ImportPath,Name,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := l.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir loads the single package rooted at dir (used for analysistest
// testdata packages, which `go list` ignores). Test files are skipped, and
// files excluded by build constraints — //go:build lines or GOOS/GOARCH
// filename suffixes — are filtered exactly as the go tool would filter
// them for the current platform, so a fixture carrying a `//go:build
// ignore`-style file cannot poison the type-check.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := build.Default.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("checking build constraints of %s: %v", name, err)
		}
		if !match {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(dir, dir, files)
}

// check parses the files and type-checks them as one package.
func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
