// Package loadtags exercises the loader: build-constrained siblings must
// be filtered out, and generic functions must type-check.
package loadtags

// Sentinel collides with the declarations in the build-excluded siblings:
// the package only type-checks if those files were filtered out.
const Sentinel = "from loadtags.go"

// Clamp is generic so the loader proves instantiation survives the
// self-contained type-checking pipeline.
func Clamp[T int | int64 | float64](v, lo, hi T) T {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Window is a generic type with a method, the other shape PR 4/5 code
// uses for typed ring buffers.
type Window[T any] struct {
	buf []T
}

// Push appends keeping the last cap elements.
func (w *Window[T]) Push(v T, max int) {
	w.buf = append(w.buf, v)
	if len(w.buf) > max {
		w.buf = w.buf[1:]
	}
}

// UseClamp instantiates both so the fixture fails loudly if inference
// breaks.
func UseClamp() int {
	var w Window[int]
	w.Push(3, 4)
	return Clamp(5, 0, 10)
}
