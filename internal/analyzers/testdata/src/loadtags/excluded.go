//go:build loadtags_excluded_tag

// This file must be dropped by LoadDir's build-constraint filtering; if it
// is parsed, the package has two conflicting declarations of Sentinel and
// type-checking fails.
package loadtags

const Sentinel = "from excluded.go"
