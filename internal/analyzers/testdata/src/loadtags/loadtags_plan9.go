// Filename-suffix constraint: only built on plan9, where the analyzer
// tests never run. A duplicate Sentinel proves filtering by suffix.
package loadtags

const Sentinel = "from loadtags_plan9.go"
