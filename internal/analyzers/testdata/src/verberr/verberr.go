// Package verberr exercises the verberr analyzer: error returns from
// internal/rdma and internal/transport calls must be consumed.
package verberr

import (
	"whale/internal/rdma"
	"whale/internal/transport"
)

func bad(c *rdma.Channel) {
	c.Flush() // want `c\.Flush returns an error that is discarded`
}

func badTransport(tr transport.Transport, to transport.WorkerID) {
	tr.Send(to, nil) // want `tr\.Send returns an error that is discarded`
}

func okChecked(c *rdma.Channel) error {
	return c.Flush()
}

func okExplicitDiscard(c *rdma.Channel) {
	_ = c.Flush()
}

func okDynamic(f func() error) {
	f() // a call through a function value is outside the guarded packages
}

func suppressed(c *rdma.Channel) {
	//lint:ignore verberr the close path re-reports flush errors in this fixture
	c.Flush()
}
