// Package lockheld exercises the lockheld analyzer: blocking operations
// while a sync.Mutex or RWMutex is held.
package lockheld

import (
	"sync"
	"time"
)

type S struct {
	mu  sync.Mutex
	rmu sync.RWMutex
	ch  chan int
}

func (s *S) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while mutex s\.mu is held`
	s.mu.Unlock()
}

func (s *S) badSend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `channel send while mutex s\.mu is held`
}

func (s *S) badRecv() {
	s.rmu.RLock()
	<-s.ch // want `channel receive while mutex s\.rmu is held`
	s.rmu.RUnlock()
}

func (s *S) badWait(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `wg\.Wait \(completion/WaitGroup wait\) while mutex s\.mu is held`
}

func (s *S) badSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while mutex s\.mu is held`
	case v := <-s.ch:
		_ = v
	}
}

// sleepy is a same-package callee the analyzer expands into.
func (s *S) sleepy() {
	time.Sleep(time.Millisecond)
}

func (s *S) badTransitive() {
	s.mu.Lock()
	s.sleepy() // want `call reaches time\.Sleep \(lockheld\.go:\d+\) while mutex s\.mu is held`
	s.mu.Unlock()
}

func (s *S) badInGoroutine() {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		time.Sleep(time.Millisecond) // want `time\.Sleep while mutex s\.mu is held`
	}()
}

func (s *S) okAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func (s *S) okSelectDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// tryOffer's send is a comm clause of a select with a default: a
// non-blocking attempt, not a blocking send.
func (s *S) tryOffer(v int) bool {
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// okTransitiveSelectDefault: expanding into tryOffer must not misread its
// non-blocking comm-clause send as a blocking one.
func (s *S) okTransitiveSelectDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tryOffer(1)
}

// badBodyInSelectDefault: a blocking operation in a comm-clause *body* is
// still blocking even under a select with a default.
func (s *S) sendThenSleep() {
	select {
	case s.ch <- 1:
		time.Sleep(time.Millisecond)
	default:
	}
}

func (s *S) badBodyInSelectDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sendThenSleep() // want `call reaches time\.Sleep \(lockheld\.go:\d+\) while mutex s\.mu is held`
}

// okGoroutine: the spawned goroutine does not run under the caller's lock.
func (s *S) okGoroutine(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
	}()
}

func (s *S) suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockheld the sleep is bounded and serialising here is the point of this test
	time.Sleep(time.Microsecond)
}
