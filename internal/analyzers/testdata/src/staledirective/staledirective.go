// Package staledirective exercises the framework's stale-suppression
// check: a //lint: directive that suppresses nothing is itself reported.
package staledirective

import (
	"sync"
	"time"
)

type s struct{ mu sync.Mutex }

// fixedLongAgo once slept under the lock; the sleep is gone but the
// suppression lingered.
func fixedLongAgo(x *s) {
	x.mu.Lock()
	//lint:ignore lockheld the flush needs the batch timestamp // want `//lint:ignore lockheld suppresses no diagnostic`
	x.mu.Unlock()
}

// stillBlocking legitimately waives a real finding: the directive is used,
// so it is not stale.
func stillBlocking(x *s) {
	x.mu.Lock()
	//lint:ignore lockheld single-writer startup path, nothing contends yet
	time.Sleep(time.Millisecond)
	x.mu.Unlock()
}

// misplaced has a real finding two lines below the directive — out of the
// same-line-or-line-above window, so the finding stands AND the directive
// is reported stale: exactly the failure mode that silently un-waives a
// suppression when code is inserted between them.
func misplaced(x *s) {
	//lint:ignore lockheld drifted away from its finding // want `//lint:ignore lockheld suppresses no diagnostic`
	x.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while mutex x\.mu is held`
	x.mu.Unlock()
}
