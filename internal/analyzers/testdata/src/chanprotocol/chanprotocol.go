// Package chanprotocol exercises the chanprotocol analyzer: no send after
// close, no double close, on any path through the CFG.
package chanprotocol

import "sync"

type worker struct {
	out  chan int
	done chan struct{}
	once sync.Once
}

// sendAfterClose is the classic shutdown bug: the error path closes the
// channel, then the fall-through path sends on it.
func (w *worker) sendAfterClose(fail bool) {
	if fail {
		close(w.out)
	}
	w.out <- 1 // want `send on w\.out may execute after close\(w\.out\)`
}

// doubleClose closes on an error path and again at the end.
func (w *worker) doubleClose(fail bool) {
	if fail {
		close(w.done)
	}
	close(w.done) // want `close\(w\.done\) may execute after a previous close`
}

// sendThenClose is the correct order: all sends happen before the close.
func (w *worker) sendThenClose() {
	w.out <- 1
	w.out <- 2
	close(w.out)
}

// closeOnce is the idiomatic guard: sync.Once makes the second call a
// no-op, and the closure is its own scope.
func (w *worker) closeOnce() {
	w.once.Do(func() { close(w.done) })
	w.once.Do(func() { close(w.done) })
}

// reopened rebinds the channel between the close and the send, which
// resets the protocol state.
func (w *worker) reopened() {
	close(w.out)
	w.out = make(chan int, 1)
	w.out <- 1
}

// deferredClose registers the close up front; sends before exit are fine.
func (w *worker) deferredClose() {
	defer close(w.out)
	w.out <- 1
}

// suppressed documents a deliberate close-race guard that lives elsewhere.
func (w *worker) suppressed(fail bool) {
	if fail {
		close(w.done)
	}
	//lint:ignore chanprotocol callers serialize shutdown through the engine mutex
	close(w.done)
}
