// Package metricname exercises the metricname analyzer: registration names
// must be literal, lowercase, dot-hierarchical.
package metricname

import (
	"fmt"

	"whale/internal/metrics"
	"whale/internal/obs"
)

const goodName = "engine.tuples_total"

func register(r *obs.Registry, fam *metrics.Family, name string, id int) {
	r.CounterFunc("engine.acks", func() int64 { return 0 })
	r.GaugeFunc("queue.depth", func() int64 { return 0 })
	r.CounterFunc(goodName, func() int64 { return 0 })
	r.CounterFunc(fmt.Sprintf("op.%s.executed", name), func() int64 { return 0 })
	r.GaugeFunc(name+".rate", func() int64 { return 0 })
	fam.Counter("rdma.msgs_sent")

	r.CounterFunc("Engine.Tuples", func() int64 { return 0 })                    // want `metric name "Engine\.Tuples" is not lowercase dot-hierarchical`
	r.GaugeFunc(name, func() int64 { return 0 })                                 // want `metric name has no literal fragment`
	r.CounterFunc("worker-"+name, func() int64 { return 0 })                     // want `metric name fragment "worker-" is not lowercase`
	fam.Gauge("dsps..queue")                                                     // want `metric name "dsps\.\.queue" is not lowercase dot-hierarchical`
	r.HistogramFunc(name, func() metrics.Snapshot { return metrics.Snapshot{} }) // want `metric name has no literal fragment`

	//lint:ignore metricname fixture: a computed name justified by a reason
	r.GaugeFunc(name, func() int64 { return 0 })
}
