// Package lockorder exercises the lockorder analyzer: the whole-program
// lock-acquisition graph must be acyclic, and //whale:lockrank-annotated
// mutexes must be acquired in strictly increasing rank order. Each
// scenario uses its own mutex types so the edges stay independent.
package lockorder

import "sync"

type engine struct {
	//whale:lockrank 10
	mu sync.Mutex
}

type flow struct {
	//whale:lockrank 20
	mu     sync.Mutex
	queued int
}

// rankOK acquires engine (10) then flow (20): increasing, fine.
func rankOK(e *engine, f *flow) {
	e.mu.Lock()
	f.mu.Lock()
	f.queued++
	f.mu.Unlock()
	e.mu.Unlock()
}

type store struct {
	//whale:lockrank 10
	mu sync.Mutex
}

type index struct {
	//whale:lockrank 20
	mu sync.Mutex
}

// rankViolation acquires index (20) then store (10): decreasing.
func rankViolation(s *store, ix *index) {
	ix.mu.Lock()
	s.mu.Lock() // want `lock rank violation: .*store\.mu \(rank 10\) acquired while .*index\.mu \(rank 20\) is held`
	s.mu.Unlock()
	ix.mu.Unlock()
}

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

// abba1 and abba2 acquire the unranked a/b pair in opposite orders: a
// cycle in the acquisition graph, reported once where it closes.
func abba1(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

func abba2(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock() // want `lock-order cycle`
	x.mu.Unlock()
	y.mu.Unlock()
}

type tracer struct {
	//whale:lockrank 30
	mu sync.Mutex
}

// viaCallee reaches the tracer lock through a helper while holding the
// engine lock: edges follow call summaries, and 10 -> 30 is increasing,
// so this is clean.
func viaCallee(e *engine, t *tracer) {
	e.mu.Lock()
	sample(t)
	e.mu.Unlock()
}

func sample(t *tracer) {
	t.mu.Lock()
	t.mu.Unlock()
}

type registry struct {
	//whale:lockrank 40
	mu sync.Mutex
}

// viaCalleeViolation holds the registry lock (40) and calls into a helper
// that takes the tracer lock (30): the violation is reported at the call.
func viaCalleeViolation(r *registry, t *tracer) {
	r.mu.Lock()
	sample(t) // want `lock rank violation: .*tracer\.mu \(rank 30\) acquired \(via call to sample\) while .*registry\.mu \(rank 40\) is held`
	r.mu.Unlock()
}

// selfDeadlock re-locks a mutex the function already holds.
func selfDeadlock(e *engine) {
	e.mu.Lock()
	e.mu.Lock() // want `engine\.mu acquired while already held \(self-deadlock\)`
	e.mu.Unlock()
	e.mu.Unlock()
}

type boot struct {
	//whale:lockrank 20
	mu sync.Mutex
}

type cold struct {
	//whale:lockrank 10
	mu sync.Mutex
}

// suppressedViolation waives a documented violation on a startup-only
// path.
func suppressedViolation(bt *boot, c *cold) {
	bt.mu.Lock()
	//lint:ignore lockorder startup-only path before the engine goes live
	c.mu.Lock()
	c.mu.Unlock()
	bt.mu.Unlock()
}
