// Package gospawn exercises the gospawn analyzer: goroutines in library
// packages must be tracked by a sync.WaitGroup.
package gospawn

import "sync"

type pool struct {
	wg sync.WaitGroup
}

func bad() {
	go work() // want `untracked goroutine`
}

func badClosure(n int) {
	go func() { // want `untracked goroutine`
		work()
	}()
}

func okAddBefore(p *pool) {
	p.wg.Add(1)
	go work()
}

func okDeferDone(p *pool) {
	go func() {
		defer p.wg.Done()
		work()
	}()
}

func badAddNotAdjacent(p *pool) {
	p.wg.Add(1)
	work()
	go work() // want `untracked goroutine`
}

func suppressed() {
	//lint:ignore gospawn fire-and-forget by design in this fixture
	go work()
}

func work() {}
