// Package bufown exercises the bufown analyzer: every acquired buffer
// reaches a release, retain, or annotated transfer on every exit path.
package bufown

import "sync"

type buf struct {
	refs int
	b    []byte
}

var pool = sync.Pool{New: func() any { return new(buf) }}

// acquire returns an owned buffer the caller must balance.
//
//whale:acquires
func acquire() *buf {
	b := pool.Get().(*buf)
	b.refs = 1
	return b
}

// release drops one reference. It is a protocol sink: it has no tracked
// discharge in its own body, so bufown does not impose exit obligations.
//
//whale:owns b
func release(b *buf) {
	if b == nil {
		return
	}
	b.refs--
	if b.refs == 0 {
		pool.Put(b)
	}
}

// retain adds n references balanced elsewhere at runtime.
//
//whale:retains
func retain(b *buf, n int) {
	b.refs += n
}

type item struct {
	payload *buf
}

type q struct {
	items []item
}

// enqueue takes ownership of it.payload.
//
//whale:owns it.payload
func (w *q) enqueue(it item) {
	//whale:transfers it.payload
	w.items = append(w.items, it)
}

// leakOnError forgets the buffer on the error path.
func leakOnError(fail bool) error {
	b := acquire() // want `b may not be released, retained, or transferred on every exit path`
	if fail {
		return errFail // leak: no release before this return
	}
	release(b)
	return nil
}

// balanced releases on every path.
func balanced(fail bool) error {
	b := acquire()
	if fail {
		release(b)
		return errFail
	}
	release(b)
	return nil
}

// deferred releases through a defer.
func deferred(fail bool) error {
	b := acquire()
	defer release(b)
	if fail {
		return errFail
	}
	return nil
}

// discarded drops the acquired value on the floor.
func discarded() {
	acquire() // want `result of acquire is owned but discarded`
}

// fanout retains for a dynamic recipient count; releasing on at least one
// path satisfies the relaxed refcount rule.
func fanout(dsts [][]byte) {
	b := acquire()
	retain(b, len(dsts)-1)
	for range dsts {
		// per-destination references are released by the receivers
	}
	release(b)
}

// handoff moves ownership into the queue; the enqueue callee owns the
// item's payload field.
func handoff(w *q) {
	b := acquire()
	//whale:transfers b
	w.items = append(w.items, item{payload: b})
}

// calleeOwned passes ownership to enqueue via the owned parameter.
func calleeOwned(w *q) {
	it := item{payload: acquire()} // want `result of acquire is owned but discarded`
	w.enqueue(it)
}

// calleeOwnedAnnotated is the accepted form of calleeOwned: the buffer is
// acquired straight into the item's field, and enqueue (which owns
// it.payload) consumes the whole item.
func calleeOwnedAnnotated(w *q) {
	var it item
	it.payload = acquire()
	w.enqueue(it)
}

// literalHandoff consumes b through the owned field of a composite-literal
// argument: enqueue owns it.payload and the literal binds payload: b.
func literalHandoff(w *q) {
	b := acquire()
	w.enqueue(item{payload: b})
}

// partialOwner discharges its owned parameter on one path only.
//
//whale:owns b
func partialOwner(fail bool, b *buf) { // want `owned parameter b is discharged on some paths but not all`
	if fail {
		return // leak: b neither released nor transferred here
	}
	release(b)
}

// suppressed documents an intentional leak (process shutdown).
func suppressed() {
	//lint:ignore bufown torn down with the process at shutdown
	b := acquire()
	_ = b
}

var errFail = errBuf("fail")

type errBuf string

func (e errBuf) Error() string { return string(e) }
