// Package hotalloc exercises the hotalloc analyzer: no per-tuple allocation
// or timestamping inside //whale:hotpath functions.
package hotalloc

import (
	"fmt"
	"strconv"
	"time"
)

//whale:hotpath
func hot(name string, n int) string {
	m := make(map[string]int) // want `map allocation in hot path hot`
	m[name] = n
	_ = map[int]string{}             // want `map literal in hot path hot`
	_ = time.Now()                   // want `time\.Now in hot path hot`
	return fmt.Sprintf("x-%s", name) // want `fmt\.Sprintf in hot path hot`
}

//whale:hotpath
func hotCopy(src []byte) []byte {
	out := make([]byte, len(src)) // want `make\(\[\]byte, \.\.\.\) in hot path hotCopy`
	copy(out, src)
	u := make([]uint8, 0, 16) // want `make\(\[\]byte, \.\.\.\) in hot path hotCopy`
	_ = u
	ids := make([]int32, 4)  // non-byte slices are allowed (header scratch)
	arr := make([][]byte, 2) // slice-of-slices allocates headers, not payload bytes
	_, _ = ids, arr
	return out
}

// hotClosure: function literals inside a hotpath function run on the same
// path and inherit the annotation.
//
//whale:hotpath
func hotClosure() func() int64 {
	return func() int64 {
		return time.Now().UnixNano() // want `time\.Now in hot path hotClosure`
	}
}

//whale:hotpath
func hotErrPath(v int) (string, error) {
	if v < 0 {
		return "", fmt.Errorf("bad value %d", v) // error path: fmt.Errorf is exempt
	}
	return strconv.Itoa(v), nil
}

// cold has no annotation; nothing is flagged.
func cold(name string) string {
	_ = time.Now()
	return fmt.Sprintf("x-%s", name)
}

//whale:hotpath
func suppressedHot() int64 {
	//lint:ignore hotalloc batch-open accounting needs one timestamp
	return time.Now().UnixNano()
}
