// Package creditbalance exercises the creditbalance analyzer: every
// //whale:charged delivery-unit charge reaches a //whale:grants call or an
// annotated terminal exit on every path.
package creditbalance

type acct struct {
	outstanding int
	granted     uint64
}

// grantBack returns units to the sender's window.
//
//whale:grants
func (a *acct) grantBack(n int) {
	a.granted += uint64(n)
}

// deliverLeaky charges on admission but forgets the grant when decode
// fails.
func (a *acct) deliverLeaky(payload []byte) {
	//whale:charged
	a.outstanding++ // want `charge is not matched by a grant or //whale:credit-terminal on every exit path`
	if len(payload) == 0 {
		return // leak: the charge is never granted back
	}
	a.grantBack(1)
}

// deliverBalanced grants on both the error and the success path.
func (a *acct) deliverBalanced(payload []byte) {
	//whale:charged
	a.outstanding++
	if len(payload) == 0 {
		a.grantBack(1)
		return
	}
	a.grantBack(1)
}

// deliverTerminal documents the path that intentionally drops the charge:
// the peer died and its account was torn down with the charge inside.
func (a *acct) deliverTerminal(payload []byte, peerDead bool) {
	//whale:charged
	a.outstanding++
	if peerDead {
		//whale:credit-terminal
		return
	}
	a.grantBack(1)
}

// deliverMulti charges a dynamic per-destination count inside a loop; the
// relaxed rule only requires a grant to be reachable at all.
func (a *acct) deliverMulti(dsts [][]byte) {
	for range dsts {
		//whale:charged multi
		a.outstanding++
	}
	if len(dsts) > 0 {
		a.grantBack(len(dsts))
	}
}

// deliverSuppressed waives the finding with a documented reason (the
// charge directive rides the statement line so the suppression sits
// directly above it).
func (a *acct) deliverSuppressed() {
	//lint:ignore creditbalance reconciled by the periodic anti-entropy sweep
	a.outstanding++ //whale:charged
}

// deliverTrailing charges and grants on one line. The trailing directive
// binds to its own line only: the statement below must not inherit a
// phantom charge through the line-above rule.
func (a *acct) deliverTrailing() {
	a.grantBack(1) //whale:charged
	a.outstanding--
}
