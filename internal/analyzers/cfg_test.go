package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// cfgTestSrc holds one function per CFG construction scenario.
const cfgTestSrc = `package p

func withDefer(fail bool) {
	acquire()
	defer cleanup()
	if fail {
		return
	}
	work()
}

func withGoto() {
	start()
	goto skip
	unreachable()
skip:
	done()
}

func gotoBack() {
	i := 0
retry:
	attempt()
	if i < 3 {
		i++
		goto retry
	}
	done()
}

func labeledBreak() {
outer:
	for {
		for {
			break outer
		}
		unreachable()
	}
	done()
}

func labeledContinue() {
outer:
	for i := 0; i < 3; i++ {
		for {
			continue outer
		}
		unreachable()
	}
	done()
}

func fallThrough(n int) {
	switch n {
	case 0:
		a()
		fallthrough
	case 1:
		b()
	case 2:
		c()
	}
	done()
}

func panics(fail bool) {
	if fail {
		panic("boom")
		unreachable()
	}
	done()
}

func selectArms(ch chan int) {
	select {
	case v := <-ch:
		use(v)
	default:
		done()
	}
	after()
}

func emptySelect() {
	start()
	select {}
	unreachable()
}
`

// parseCFGFuncs parses cfgTestSrc and returns each function's CFG by name.
func parseCFGFuncs(t *testing.T) (map[string]*funcCFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_src.go", cfgTestSrc, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*funcCFG{}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out[fd.Name.Name] = buildCFG(fd.Body)
		}
	}
	return out, fset
}

// exitCalls runs the forward dataflow recording which function-call names
// may appear on some path reaching exit (deferred calls included, since
// forward replays them on the exit state).
func exitCalls(g *funcCFG) map[string]bool {
	exit := forward(g, nil, func(state flowState, n ast.Node, final bool) {
		ast.Inspect(n, func(sub ast.Node) bool {
			if call, ok := sub.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					state["call:"+id.Name] = 1
				}
			}
			return true
		})
	})
	out := map[string]bool{}
	for k, v := range exit {
		if v != 0 && len(k) > 5 && k[:5] == "call:" {
			out[k[5:]] = true
		}
	}
	return out
}

func wantCalls(t *testing.T, name string, got map[string]bool, want []string, absent []string) {
	t.Helper()
	for _, w := range want {
		if !got[w] {
			t.Errorf("%s: call %s should reach exit, got %v", name, w, got)
		}
	}
	for _, a := range absent {
		if got[a] {
			t.Errorf("%s: call %s should be unreachable, got %v", name, a, got)
		}
	}
}

func TestCFGDefer(t *testing.T) {
	cfgs, _ := parseCFGFuncs(t)
	g := cfgs["withDefer"]
	if len(g.defers) != 1 {
		t.Fatalf("withDefer: collected %d defers, want 1", len(g.defers))
	}
	// The deferred cleanup applies on the early-return path too: the exit
	// state must include it even though the body branch returns before work.
	wantCalls(t, "withDefer", exitCalls(g), []string{"acquire", "cleanup", "work"}, nil)
}

func TestCFGGoto(t *testing.T) {
	cfgs, _ := parseCFGFuncs(t)
	wantCalls(t, "withGoto", exitCalls(cfgs["withGoto"]),
		[]string{"start", "done"}, []string{"unreachable"})
	// A backward goto forms a loop; everything stays reachable.
	wantCalls(t, "gotoBack", exitCalls(cfgs["gotoBack"]),
		[]string{"attempt", "done"}, nil)
}

func TestCFGLabeledBreak(t *testing.T) {
	cfgs, _ := parseCFGFuncs(t)
	// break outer exits both loops: done() runs, the statement after the
	// inner loop does not.
	wantCalls(t, "labeledBreak", exitCalls(cfgs["labeledBreak"]),
		[]string{"done"}, []string{"unreachable"})
}

func TestCFGLabeledContinue(t *testing.T) {
	cfgs, _ := parseCFGFuncs(t)
	wantCalls(t, "labeledContinue", exitCalls(cfgs["labeledContinue"]),
		[]string{"done"}, []string{"unreachable"})
}

func TestCFGFallthrough(t *testing.T) {
	cfgs, _ := parseCFGFuncs(t)
	g := cfgs["fallThrough"]
	// Path-sensitivity: b must be reachable with a's state (the fallthrough
	// edge), but c must not see a or b.
	var sawAB, sawAC, sawBC bool
	forward(g, nil, func(state flowState, n ast.Node, final bool) {
		call, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		c, ok := call.X.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := c.Fun.(*ast.Ident)
		if !ok {
			return
		}
		switch id.Name {
		case "a":
			state["a"] = 1
		case "b":
			if state["a"] != 0 {
				sawAB = true
			}
			state["b"] = 1
		case "c":
			if state["a"] != 0 {
				sawAC = true
			}
			if state["b"] != 0 {
				sawBC = true
			}
		}
	})
	if !sawAB {
		t.Error("fallthrough edge missing: case 1 never sees case 0's state")
	}
	if sawAC || sawBC {
		t.Errorf("non-adjacent cases leaked state: a->c=%v b->c=%v", sawAC, sawBC)
	}
}

func TestCFGPanic(t *testing.T) {
	cfgs, _ := parseCFGFuncs(t)
	wantCalls(t, "panics", exitCalls(cfgs["panics"]),
		[]string{"done"}, []string{"unreachable"})
}

func TestCFGSelect(t *testing.T) {
	cfgs, _ := parseCFGFuncs(t)
	wantCalls(t, "selectArms", exitCalls(cfgs["selectArms"]),
		[]string{"use", "done", "after"}, nil)
	// select{} never proceeds: nothing after it reaches exit.
	wantCalls(t, "emptySelect", exitCalls(cfgs["emptySelect"]),
		nil, []string{"start", "unreachable"})
}

func TestCFGExitReachable(t *testing.T) {
	cfgs, _ := parseCFGFuncs(t)
	for name, g := range cfgs {
		if name == "emptySelect" {
			continue // deliberately never exits
		}
		preds := 0
		for _, b := range g.blocks {
			for _, s := range b.succs {
				if s == g.exit {
					preds++
				}
			}
		}
		if preds == 0 {
			t.Errorf("%s: synthetic exit has no predecessors", name)
		}
	}
}
