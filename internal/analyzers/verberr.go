package analyzers

import (
	"go/ast"
)

// VerbErr flags calls into whale/internal/rdma or whale/internal/transport
// whose final error result is silently discarded as a bare expression
// statement. A dropped verb error is a dropped tuple: PostSend on a full
// ring, Flush against a closed channel, and Send after peer teardown all
// report failure only through that return value. Deliberate discards must
// be spelled `_ = call()` — visible in review — or suppressed with a
// //lint:ignore verberr directive explaining why losing the error is safe.
var VerbErr = &Analyzer{
	Name: "verberr",
	Doc:  "flags discarded error returns from internal/rdma verbs and internal/transport calls",
	Run:  runVerbErr,
}

// verbErrPackages are the packages whose error returns must be consumed.
var verbErrPackages = map[string]bool{
	"whale/internal/rdma":      true,
	"whale/internal/transport": true,
}

func runVerbErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.Info, call)
			if fn == nil || !lastResultIsError(fn) {
				return true
			}
			// The call must be declared in (or be a method on a type of) a
			// guarded package.
			if !verbErrPackages[funcPkgPath(fn)] && !verbErrPackages[recvPkgPath(pass.Info, call)] {
				return true
			}
			pass.Reportf(call.Pos(), "%s returns an error that is discarded; handle it or assign to _ explicitly", selectorName(call))
			return true
		})
	}
}
