// Package analyzers implements whalevet, Whale's project-specific static
// analysis suite. Each analyzer machine-checks one concurrency or
// performance invariant the compiler cannot see:
//
//	lockheld   — no blocking operation (channel op, time.Sleep, Wait,
//	             RDMA verb post) while a sync.Mutex/RWMutex is held
//	gospawn    — no bare `go` statement in library packages unless the
//	             goroutine is tracked by a sync.WaitGroup
//	metricname — obs/metrics registrations use literal, lowercase,
//	             dot-hierarchical names (the PR 1 registry convention)
//	verberr    — no silently discarded error from internal/rdma verbs or
//	             internal/transport calls
//	hotalloc   — no fmt.Sprintf / time.Now / map or []byte allocation
//	             inside functions annotated `//whale:hotpath`
//
// Findings are suppressed per-site with an explanatory directive:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line (trailing) or the line directly above, or for
// a whole file with `//lint:file-ignore <analyzer> <reason>`. A directive
// without a reason is ignored, so every suppression documents itself.
//
// The suite is self-contained on the standard library (go/ast, go/types,
// and export data resolved through `go list -export`), mirroring the shape
// of the golang.org/x/tools go/analysis API without depending on it.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package through its
// Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzed package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// IsMain reports whether the analyzed package is a command (package main).
// Some analyzers (gospawn) only apply to library packages.
func (p *Pass) IsMain() bool { return p.Pkg.Name() == "main" }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full whalevet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{LockHeld, GoSpawn, MetricName, VerbErr, HotAlloc}
}

// ByName resolves a comma-separated analyzer list ("lockheld,verberr").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return out, nil
}

// RunAnalyzers applies every analyzer to every package, filters findings
// through the packages' //lint: directives, and returns them sorted by
// position.
func RunAnalyzers(pkgs []*Package, as []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		sups := collectSuppressions(pkg.Fset, pkg.Files)
		for _, a := range as {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
			for _, d := range diags {
				if !sups.suppresses(d) {
					all = append(all, d)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// --- shared type/AST helpers -----------------------------------------------

// callee resolves the *types.Func a call statically invokes: a package
// function, a qualified pkg.Func, or a method through a selection. Calls
// through function values return nil.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring f ("" for
// builtins/universe).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isNamed reports whether t (after pointer deref) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		if ptr, ok := t.(*types.Pointer); ok {
			n, ok = ptr.Elem().(*types.Named)
			if !ok {
				return false
			}
		} else {
			return false
		}
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// derefNamed unwraps pointers and returns the named type, or nil.
func derefNamed(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

// recvPkgPath returns the import path of the package declaring the type a
// method call's receiver belongs to, or "" when call is not a method call.
func recvPkgPath(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	n := derefNamed(s.Recv())
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// lastResultIsError reports whether f's final result is the error type.
func lastResultIsError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// selectorName renders the call target for messages ("c.mu.Lock",
// "time.Sleep"), degrading gracefully for complex expressions.
func selectorName(call *ast.CallExpr) string {
	return exprText(call.Fun)
}

func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.CallExpr:
		return exprText(x.Fun) + "()"
	}
	return "<expr>"
}
