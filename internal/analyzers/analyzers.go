// Package analyzers implements whalevet, Whale's project-specific static
// analysis suite. Each analyzer machine-checks one concurrency or
// performance invariant the compiler cannot see:
//
//	lockheld   — no blocking operation (channel op, time.Sleep, Wait,
//	             RDMA verb post) while a sync.Mutex/RWMutex is held
//	gospawn    — no bare `go` statement in library packages unless the
//	             goroutine is tracked by a sync.WaitGroup
//	metricname — obs/metrics registrations use literal, lowercase,
//	             dot-hierarchical names (the PR 1 registry convention)
//	verberr    — no silently discarded error from internal/rdma verbs or
//	             internal/transport calls
//	hotalloc   — no fmt.Sprintf / time.Now / map or []byte allocation
//	             inside functions annotated `//whale:hotpath`
//
// On top of the syntactic passes, a CFG/dataflow layer (cfg.go,
// dataflow.go) supports four path-aware analyzers:
//
//	bufown        — every acquired pooled buffer/encoder reaches a
//	                balanced release, retain, or annotated transfer on
//	                every exit path (//whale:acquires, //whale:owns,
//	                //whale:transfers)
//	lockorder     — whole-repo lock-acquisition graph: cycles are
//	                potential deadlocks, and //whale:lockrank commits a
//	                canonical acquisition order for ranked mutexes
//	creditbalance — every //whale:charged delivery-unit charge reaches a
//	                //whale:grants call or a //whale:credit-terminal exit
//	chanprotocol  — no channel send or second close on a path where the
//	                channel was already closed
//
// Findings are suppressed per-site with an explanatory directive:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line (trailing) or the line directly above, or for
// a whole file with `//lint:file-ignore <analyzer> <reason>`. A directive
// without a reason is ignored, so every suppression documents itself. A
// directive that suppresses nothing is itself reported (staledirective), so
// suppressions cannot outlive the finding they waive.
//
// The suite is self-contained on the standard library (go/ast, go/types,
// and export data resolved through `go list -export`), mirroring the shape
// of the golang.org/x/tools go/analysis API without depending on it.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Per-package analyzers set Run, which
// inspects a single package through its Pass and reports findings via
// Pass.Reportf. Whole-program analyzers (lockorder, bufown's
// cross-package directive table) set RunProgram instead, which sees every
// loaded package at once; RunAnalyzers invokes it once per run.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run executes the analyzer over one package. Nil for whole-program
	// analyzers.
	Run func(*Pass)
	// RunProgram executes the analyzer once over all loaded packages.
	// Diagnostics still pass through per-package suppression filtering.
	RunProgram func(pkgs []*Package, report func(Diagnostic))
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzed package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// IsMain reports whether the analyzed package is a command (package main).
// Some analyzers (gospawn) only apply to library packages.
func (p *Pass) IsMain() bool { return p.Pkg.Name() == "main" }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full whalevet suite in reporting order: the five
// syntactic passes from PR 2 plus the four CFG/dataflow analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		LockHeld, GoSpawn, MetricName, VerbErr, HotAlloc,
		BufOwn, LockOrder, CreditBalance, ChanProtocol,
	}
}

// ByName resolves a comma-separated analyzer list ("lockheld,verberr").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return out, nil
}

// StaleDirective is the name under which RunAnalyzers reports //lint:
// directives that suppress nothing. It is a framework check, not an entry
// in All(): it runs whenever the analyzer a directive names is part of the
// run, so a partial `-run lockheld` invocation never flags suppressions
// belonging to analyzers that did not execute.
const StaleDirective = "staledirective"

// RunAnalyzers applies every analyzer to every package, filters findings
// through the packages' //lint: directives, reports directives that
// suppressed nothing, and returns all diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, as []*Analyzer) []Diagnostic {
	var all []Diagnostic
	ranNames := map[string]bool{}
	for _, a := range as {
		ranNames[a.Name] = true
	}

	// Per-package suppression sets, kept so whole-program diagnostics and
	// the stale check can consult them after all analyzers ran.
	sups := make([]suppressionSet, len(pkgs))
	used := make([]map[int]bool, len(pkgs)) // suppression index -> used
	for i, pkg := range pkgs {
		sups[i] = collectSuppressions(pkg.Fset, pkg.Files)
		used[i] = map[int]bool{}
	}
	filter := func(pkgIdx int, d Diagnostic) bool {
		if idx, ok := sups[pkgIdx].suppresses(d); ok {
			used[pkgIdx][idx] = true
			return false
		}
		return true
	}
	// pkgForFile maps a diagnostic's file back to its package's
	// suppression set (whole-program analyzers report across packages).
	pkgForFile := map[string]int{}
	for i, pkg := range pkgs {
		for _, f := range pkg.Files {
			pkgForFile[pkg.Fset.Position(f.FileStart).Filename] = i
		}
	}

	for i, pkg := range pkgs {
		for _, a := range as {
			if a.Run == nil {
				continue
			}
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
			for _, d := range diags {
				if filter(i, d) {
					all = append(all, d)
				}
			}
		}
	}
	for _, a := range as {
		if a.RunProgram == nil {
			continue
		}
		var diags []Diagnostic
		a.RunProgram(pkgs, func(d Diagnostic) { diags = append(diags, d) })
		for _, d := range diags {
			if idx, ok := pkgForFile[d.Pos.Filename]; ok {
				if filter(idx, d) {
					all = append(all, d)
				}
			} else {
				all = append(all, d)
			}
		}
	}

	// Stale-suppression check: a directive naming an analyzer that ran but
	// matched no diagnostic is dead weight — either the code was fixed (drop
	// it) or the directive is on the wrong line (fix it). Either way it must
	// not linger as a silent waiver.
	for i := range pkgs {
		for j, sup := range sups[i] {
			if used[i][j] || !ranNames[sup.analyzer] {
				continue
			}
			d := Diagnostic{
				Analyzer: StaleDirective,
				Pos:      token.Position{Filename: sup.file, Line: sup.line, Column: 1},
				Message: fmt.Sprintf("//lint:%s %s suppresses no diagnostic; remove it or fix its placement",
					ignoreKind(sup), sup.analyzer),
			}
			if filter(i, d) {
				all = append(all, d)
			}
		}
	}

	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

func ignoreKind(s suppression) string {
	if s.fileWide {
		return "file-ignore"
	}
	return "ignore"
}

// --- shared type/AST helpers -----------------------------------------------

// callee resolves the *types.Func a call statically invokes: a package
// function, a qualified pkg.Func, or a method through a selection. Calls
// through function values return nil.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring f ("" for
// builtins/universe).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isNamed reports whether t (after pointer deref) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		if ptr, ok := t.(*types.Pointer); ok {
			n, ok = ptr.Elem().(*types.Named)
			if !ok {
				return false
			}
		} else {
			return false
		}
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// derefNamed unwraps pointers and returns the named type, or nil.
func derefNamed(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

// recvPkgPath returns the import path of the package declaring the type a
// method call's receiver belongs to, or "" when call is not a method call.
func recvPkgPath(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	n := derefNamed(s.Recv())
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// lastResultIsError reports whether f's final result is the error type.
func lastResultIsError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// selectorName renders the call target for messages ("c.mu.Lock",
// "time.Sleep"), degrading gracefully for complex expressions.
func selectorName(call *ast.CallExpr) string {
	return exprText(call.Fun)
}

func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.CallExpr:
		return exprText(x.Fun) + "()"
	}
	return "<expr>"
}
