package snapshot

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Sharder is a Snapshotter whose state is additionally partitioned into
// disjoint shards keyed by an int32 shard id — key-grouping slots for a
// fields-grouped bolt, topic partitions for a source. During a live
// operator rescale the engine snapshots every pre-rescale task through
// ShardSnapshot, merges the (disjoint) shard maps of all old tasks, and
// hands the union to every post-rescale task's RestoreShards: each
// implementation keeps exactly the shards it now owns (a bolt: the slots
// its new TaskIndex covers; a source: its newly assigned partitions) and
// ignores the rest. That makes MxN repartitioning a pure data-plane
// reshuffle — no coordinator knowledge of operator state layouts.
type Sharder interface {
	Snapshotter
	// ShardSnapshot serializes the component's state split by shard id.
	// Shard ids must be stable across parallelism changes and the maps of
	// co-tasks of one operator must be disjoint.
	ShardSnapshot() (map[int32][]byte, error)
	// RestoreShards replaces the component's state from the merged shard
	// union of every pre-rescale task. Implementations filter to the
	// shards they own under the new assignment.
	RestoreShards(shards map[int32][]byte) error
}

// shardMagic tags every EncodeShards payload so a restore can tell a
// shard-encoded blob from a legacy plain SnapshotState payload written by a
// pre-Sharder release (the first byte is deliberately invalid UTF-8). Bump
// the trailing digit on any incompatible layout change.
var shardMagic = [4]byte{0xF5, 'W', 'S', '1'}

// IsShardEncoded reports whether data carries the EncodeShards framing.
func IsShardEncoded(data []byte) bool {
	return len(data) >= len(shardMagic) && string(data[:len(shardMagic)]) == string(shardMagic[:])
}

// EncodeShards serializes a shard map deterministically (sorted by shard
// id): the shardMagic tag, u32 count, then per shard u32 id, u32 length,
// bytes.
func EncodeShards(shards map[int32][]byte) []byte {
	ids := make([]int32, 0, len(shards))
	size := len(shardMagic) + 4
	for id, b := range shards {
		ids = append(ids, id)
		size += 8 + len(b)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]byte, 0, size)
	out = append(out, shardMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ids)))
	for _, id := range ids {
		out = binary.LittleEndian.AppendUint32(out, uint32(id))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(shards[id])))
		out = append(out, shards[id]...)
	}
	return out
}

// DecodeShards parses an EncodeShards payload. The returned byte slices
// alias data.
func DecodeShards(data []byte) (map[int32][]byte, error) {
	if !IsShardEncoded(data) {
		return nil, fmt.Errorf("snapshot: payload is not shard-encoded (missing magic)")
	}
	data = data[len(shardMagic):]
	if len(data) < 4 {
		return nil, fmt.Errorf("snapshot: truncated shard map")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	// Clamp the pre-allocation hint: a corrupt count must not drive a large
	// allocation before the per-shard truncation checks reject it. Every
	// shard needs at least its 8 header bytes.
	hint := n
	if max := len(data) / 8; hint > max {
		hint = max
	}
	out := make(map[int32][]byte, hint)
	for i := 0; i < n; i++ {
		if len(data) < 8 {
			return nil, fmt.Errorf("snapshot: truncated shard header %d/%d", i, n)
		}
		id := int32(binary.LittleEndian.Uint32(data))
		ln := int(binary.LittleEndian.Uint32(data[4:]))
		data = data[8:]
		if len(data) < ln {
			return nil, fmt.Errorf("snapshot: shard %d truncated: %d of %d bytes", id, len(data), ln)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("snapshot: duplicate shard %d", id)
		}
		out[id] = data[:ln:ln]
		data = data[ln:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after shard map", len(data))
	}
	return out, nil
}

// MergeShards unions per-task shard maps into one. Shard ownership is
// disjoint by contract; a shard appearing in two maps means the snapshot
// was cut across inconsistent assignments and is rejected.
func MergeShards(maps ...map[int32][]byte) (map[int32][]byte, error) {
	out := map[int32][]byte{}
	for _, m := range maps {
		for id, b := range m {
			if _, dup := out[id]; dup {
				return nil, fmt.Errorf("snapshot: shard %d owned by two tasks", id)
			}
			out[id] = b
		}
	}
	return out, nil
}
