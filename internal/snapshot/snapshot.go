// Package snapshot defines the checkpoint/restore contract behind Whale's
// exactly-once stateful processing (DESIGN §13): stateful operator
// components implement Snapshotter, and the engine's checkpoint coordinator
// persists their serialized state into a pluggable Store, one entry per
// (epoch, task) pair. An epoch is only usable for recovery once Commit has
// been called for it — a crash mid-epoch leaves the partial entries
// uncommitted and recovery falls back to the previous committed epoch.
//
// The package deliberately knows nothing about the engine: dsps imports
// snapshot, never the reverse, so alternative stores (tests use MemStore,
// deployments FileStore) plug in without touching the runtime.
package snapshot

import "errors"

// Snapshotter is implemented by stateful components whose state must
// survive worker failure: window aggregation buffers, dedup/ack
// bookkeeping, and source cursors (kafkalite offsets). SnapshotState is
// called at barrier alignment, after the last pre-barrier tuple and before
// the first post-barrier one, so the bytes capture exactly the epoch's
// prefix of the input.
type Snapshotter interface {
	// SnapshotState serializes the component's current state. The returned
	// slice is owned by the caller.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the component's state with a previously
	// serialized snapshot. A nil data slice means "no snapshot recorded":
	// the component must reset to its initial (empty) state.
	RestoreState(data []byte) error
}

// ErrNotCommitted is returned by Store implementations when asked to read
// from an epoch that was never committed.
var ErrNotCommitted = errors.New("snapshot: epoch not committed")

// Store persists snapshot entries. Implementations must be safe for
// concurrent use: tasks on different executors Put concurrently while the
// coordinator Commits or Discards.
//
// The lifecycle of an epoch is Put* → (Commit | Discard). Get and Latest
// only observe committed epochs, so a half-written epoch can never be
// restored from.
type Store interface {
	// Put records the state of one task for an in-progress epoch.
	Put(epoch int64, key string, data []byte) error
	// Get returns the committed state recorded for key at epoch. ok is
	// false when the epoch is committed but holds no entry for key (the
	// task was stateless that epoch — restore resets it).
	Get(epoch int64, key string) (data []byte, ok bool, err error)
	// Commit seals an epoch, making it visible to Get/Latest, and prunes
	// obsolete epochs (everything older than the previous committed epoch,
	// plus any uncommitted leftovers at or below the sealed one).
	Commit(epoch int64) error
	// Latest reports the newest committed epoch, with ok=false when no
	// epoch has ever committed (recovery then resets all state).
	Latest() (epoch int64, ok bool, err error)
	// Discard drops all entries of an uncommitted epoch (aborted barrier).
	// Discarding a committed epoch is an error.
	Discard(epoch int64) error
}
