package snapshot

import (
	"reflect"
	"testing"
)

func TestShardCodecRoundTrip(t *testing.T) {
	in := map[int32][]byte{
		0:  []byte("zero"),
		7:  nil,
		63: []byte{1, 2, 3},
		5:  {},
	}
	got, err := DecodeShards(EncodeShards(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("decoded %d shards, want %d", len(got), len(in))
	}
	for id, b := range in {
		if string(got[id]) != string(b) {
			t.Fatalf("shard %d: %q != %q", id, got[id], b)
		}
	}
	// Deterministic: same map encodes to identical bytes.
	if !reflect.DeepEqual(EncodeShards(in), EncodeShards(in)) {
		t.Fatal("encoding not deterministic")
	}
}

func TestShardCodecRejectsCorrupt(t *testing.T) {
	good := EncodeShards(map[int32][]byte{1: []byte("abc")})
	for _, bad := range [][]byte{
		nil,
		good[:3],
		good[:len(good)-1],
		append(append([]byte{}, good...), 0),
	} {
		if _, err := DecodeShards(bad); err == nil {
			t.Fatalf("corrupt payload %v accepted", bad)
		}
	}
}

func TestMergeShardsDisjoint(t *testing.T) {
	a := map[int32][]byte{0: []byte("a"), 2: []byte("c")}
	b := map[int32][]byte{1: []byte("b")}
	m, err := MergeShards(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("merged %d shards, want 3", len(m))
	}
	if _, err := MergeShards(a, map[int32][]byte{2: []byte("dup")}); err == nil {
		t.Fatal("overlapping shard maps accepted")
	}
}
