package snapshot

import (
	"reflect"
	"testing"
)

func TestShardCodecRoundTrip(t *testing.T) {
	in := map[int32][]byte{
		0:  []byte("zero"),
		7:  nil,
		63: []byte{1, 2, 3},
		5:  {},
	}
	got, err := DecodeShards(EncodeShards(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("decoded %d shards, want %d", len(got), len(in))
	}
	for id, b := range in {
		if string(got[id]) != string(b) {
			t.Fatalf("shard %d: %q != %q", id, got[id], b)
		}
	}
	// Deterministic: same map encodes to identical bytes.
	if !reflect.DeepEqual(EncodeShards(in), EncodeShards(in)) {
		t.Fatal("encoding not deterministic")
	}
}

func TestShardCodecRejectsCorrupt(t *testing.T) {
	good := EncodeShards(map[int32][]byte{1: []byte("abc")})
	// A huge declared count with no backing bytes must be rejected without
	// pre-allocating for it (the hint is clamped by the remaining length).
	hugeCount := append(append([]byte{}, good[:4]...), 0xFF, 0xFF, 0xFF, 0xFF)
	for _, bad := range [][]byte{
		nil,
		good[:3],
		good[:len(good)-1],
		append(append([]byte{}, good...), 0),
		hugeCount,
	} {
		if _, err := DecodeShards(bad); err == nil {
			t.Fatalf("corrupt payload %v accepted", bad)
		}
	}
}

// TestShardMagicDistinguishesLegacy: shard-encoded payloads carry the magic
// tag; arbitrary legacy SnapshotState blobs (including empty and text ones)
// do not, so restore paths can fall back instead of misdecoding them.
func TestShardMagicDistinguishesLegacy(t *testing.T) {
	if !IsShardEncoded(EncodeShards(nil)) {
		t.Fatal("empty shard map not tagged")
	}
	if !IsShardEncoded(EncodeShards(map[int32][]byte{3: []byte("x")})) {
		t.Fatal("shard map not tagged")
	}
	for _, legacy := range [][]byte{nil, {}, []byte("plain state"), {0, 0, 0, 0}, {1, 0, 0, 0, 9, 9}} {
		if IsShardEncoded(legacy) {
			t.Fatalf("legacy payload %v claimed as shard-encoded", legacy)
		}
		if _, err := DecodeShards(legacy); err == nil {
			t.Fatalf("legacy payload %v decoded as shards", legacy)
		}
	}
}

func TestMergeShardsDisjoint(t *testing.T) {
	a := map[int32][]byte{0: []byte("a"), 2: []byte("c")}
	b := map[int32][]byte{1: []byte("b")}
	m, err := MergeShards(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("merged %d shards, want 3", len(m))
	}
	if _, err := MergeShards(a, map[int32][]byte{2: []byte("dup")}); err == nil {
		t.Fatal("overlapping shard maps accepted")
	}
}
