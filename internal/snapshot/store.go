package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MemStore is the in-memory Store used by tests and single-process
// clusters. The zero value is not usable; call NewMemStore.
type MemStore struct {
	mu        sync.Mutex
	epochs    map[int64]map[string][]byte
	committed []int64 // sorted ascending
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{epochs: map[int64]map[string][]byte{}}
}

// Put records one entry for an in-progress epoch.
func (s *MemStore) Put(epoch int64, key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.epochs[epoch]
	if m == nil {
		m = map[string][]byte{}
		s.epochs[epoch] = m
	}
	m[key] = append([]byte(nil), data...)
	return nil
}

// Get returns the committed entry for key at epoch.
func (s *MemStore) Get(epoch int64, key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !containsEpoch(s.committed, epoch) {
		return nil, false, ErrNotCommitted
	}
	data, ok := s.epochs[epoch][key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), data...), true, nil
}

// Commit seals epoch and prunes obsolete state: uncommitted epochs at or
// below it, and committed epochs older than the previous one (the last two
// committed epochs are retained so a crash during Commit still has a
// fallback).
func (s *MemStore) Commit(epoch int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if containsEpoch(s.committed, epoch) {
		return nil
	}
	if s.epochs[epoch] == nil {
		s.epochs[epoch] = map[string][]byte{}
	}
	s.committed = append(s.committed, epoch)
	sort.Slice(s.committed, func(i, j int) bool { return s.committed[i] < s.committed[j] })
	keep := s.committed
	if len(keep) > 2 {
		keep = keep[len(keep)-2:]
	}
	for e := range s.epochs {
		if e <= epoch && !containsEpoch(keep, e) {
			delete(s.epochs, e)
		}
	}
	s.committed = append([]int64(nil), keep...)
	return nil
}

// Latest reports the newest committed epoch.
func (s *MemStore) Latest() (int64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.committed) == 0 {
		return 0, false, nil
	}
	return s.committed[len(s.committed)-1], true, nil
}

// Discard drops an uncommitted epoch.
func (s *MemStore) Discard(epoch int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if containsEpoch(s.committed, epoch) {
		return fmt.Errorf("snapshot: discard of committed epoch %d", epoch)
	}
	delete(s.epochs, epoch)
	return nil
}

func containsEpoch(sorted []int64, e int64) bool {
	for _, v := range sorted {
		if v == e {
			return true
		}
	}
	return false
}

// FileStore persists snapshots under a directory, one subdirectory per
// epoch ("epoch-<N>") holding one file per key plus a COMMITTED marker
// written via tmp+rename so a torn write can never present a half-epoch as
// committed. Keys must be path-safe; the engine uses "task-<id>".
type FileStore struct {
	mu  sync.Mutex
	dir string
}

// NewFileStore creates (if needed) and opens a file-backed store rooted at
// dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileStore{dir: dir}, nil
}

func (s *FileStore) epochDir(epoch int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("epoch-%d", epoch))
}

func (s *FileStore) keyPath(epoch int64, key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\") || key == "COMMITTED" {
		return "", fmt.Errorf("snapshot: invalid key %q", key)
	}
	return filepath.Join(s.epochDir(epoch), key), nil
}

// Put writes one entry (tmp+rename, so readers never see a torn file).
func (s *FileStore) Put(epoch int64, key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	path, err := s.keyPath(epoch, key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.epochDir(epoch), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Get reads the committed entry for key at epoch.
func (s *FileStore) Get(epoch int64, key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.isCommitted(epoch) {
		return nil, false, ErrNotCommitted
	}
	path, err := s.keyPath(epoch, key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func (s *FileStore) isCommitted(epoch int64) bool {
	_, err := os.Stat(filepath.Join(s.epochDir(epoch), "COMMITTED"))
	return err == nil
}

// Commit seals epoch with the COMMITTED marker and prunes obsolete epoch
// directories (same retention as MemStore: last two committed).
func (s *FileStore) Commit(epoch int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(s.epochDir(epoch), 0o755); err != nil {
		return err
	}
	marker := filepath.Join(s.epochDir(epoch), "COMMITTED")
	tmp := marker + ".tmp"
	if err := os.WriteFile(tmp, []byte("ok\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, marker); err != nil {
		return err
	}
	committed, uncommitted, err := s.scan()
	if err != nil {
		return err
	}
	keep := committed
	if len(keep) > 2 {
		keep = keep[len(keep)-2:]
	}
	for _, e := range committed {
		if e <= epoch && !containsEpoch(keep, e) {
			if err := os.RemoveAll(s.epochDir(e)); err != nil {
				return err
			}
		}
	}
	for _, e := range uncommitted {
		if e <= epoch {
			if err := os.RemoveAll(s.epochDir(e)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Latest reports the newest committed epoch on disk.
func (s *FileStore) Latest() (int64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	committed, _, err := s.scan()
	if err != nil || len(committed) == 0 {
		return 0, false, err
	}
	return committed[len(committed)-1], true, nil
}

// Discard drops an uncommitted epoch directory.
func (s *FileStore) Discard(epoch int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.isCommitted(epoch) {
		return fmt.Errorf("snapshot: discard of committed epoch %d", epoch)
	}
	return os.RemoveAll(s.epochDir(epoch))
}

// scan returns the committed and uncommitted epoch numbers present on
// disk, each sorted ascending.
func (s *FileStore) scan() (committed, uncommitted []int64, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range entries {
		if !ent.IsDir() || !strings.HasPrefix(ent.Name(), "epoch-") {
			continue
		}
		e, err := strconv.ParseInt(strings.TrimPrefix(ent.Name(), "epoch-"), 10, 64)
		if err != nil {
			continue
		}
		if s.isCommitted(e) {
			committed = append(committed, e)
		} else {
			uncommitted = append(uncommitted, e)
		}
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i] < committed[j] })
	sort.Slice(uncommitted, func(i, j int) bool { return uncommitted[i] < uncommitted[j] })
	return committed, uncommitted, nil
}
