package snapshot

import (
	"bytes"
	"sync"
	"testing"
)

// storeImpls runs a subtest against both Store implementations.
func storeImpls(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Run("mem", func(t *testing.T) { fn(t, NewMemStore()) })
	t.Run("file", func(t *testing.T) {
		s, err := NewFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, s)
	})
}

func TestStoreLifecycle(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		if _, ok, err := s.Latest(); err != nil || ok {
			t.Fatalf("fresh store Latest = ok=%v err=%v", ok, err)
		}
		if err := s.Put(1, "task-3", []byte("alpha")); err != nil {
			t.Fatal(err)
		}
		// Uncommitted epochs are invisible.
		if _, _, err := s.Get(1, "task-3"); err != ErrNotCommitted {
			t.Fatalf("Get before commit: err=%v, want ErrNotCommitted", err)
		}
		if err := s.Commit(1); err != nil {
			t.Fatal(err)
		}
		e, ok, err := s.Latest()
		if err != nil || !ok || e != 1 {
			t.Fatalf("Latest = %d,%v,%v", e, ok, err)
		}
		data, ok, err := s.Get(1, "task-3")
		if err != nil || !ok || !bytes.Equal(data, []byte("alpha")) {
			t.Fatalf("Get = %q,%v,%v", data, ok, err)
		}
		// Missing key in a committed epoch: ok=false, no error.
		if _, ok, err := s.Get(1, "task-9"); err != nil || ok {
			t.Fatalf("missing key: ok=%v err=%v", ok, err)
		}
	})
}

func TestStoreDiscard(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		if err := s.Put(5, "task-1", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := s.Discard(5); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(5); err != nil {
			t.Fatal(err)
		}
		// The discarded Put must be gone even after a later commit of the
		// same epoch number (abort then reuse is a coordinator bug, but the
		// store must still not resurrect stale bytes).
		if _, ok, err := s.Get(5, "task-1"); err != nil || ok {
			t.Fatalf("discarded entry resurrected: ok=%v err=%v", ok, err)
		}
		if err := s.Discard(5); err == nil {
			t.Fatal("Discard of committed epoch must error")
		}
	})
}

func TestStoreRetention(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		for e := int64(1); e <= 4; e++ {
			if err := s.Put(e, "task-1", []byte{byte(e)}); err != nil {
				t.Fatal(err)
			}
			if err := s.Commit(e); err != nil {
				t.Fatal(err)
			}
		}
		// Last two committed epochs retained, older pruned.
		if _, ok, _ := s.Get(4, "task-1"); !ok {
			t.Fatal("epoch 4 lost")
		}
		if _, ok, _ := s.Get(3, "task-1"); !ok {
			t.Fatal("epoch 3 (previous committed) lost")
		}
		if _, _, err := s.Get(1, "task-1"); err != ErrNotCommitted {
			t.Fatalf("epoch 1 should be pruned: err=%v", err)
		}
		// An abandoned uncommitted epoch below a later commit is pruned too.
		if err := s.Put(5, "task-1", []byte("z")); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(6); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(5, "task-2", nil); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Get(5, "task-1"); err != ErrNotCommitted {
			t.Fatalf("uncommitted epoch 5 visible: err=%v", err)
		}
	})
}

func TestStorePutCopiesData(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		buf := []byte("mutable")
		if err := s.Put(1, "task-1", buf); err != nil {
			t.Fatal(err)
		}
		buf[0] = 'X'
		if err := s.Commit(1); err != nil {
			t.Fatal(err)
		}
		data, _, err := s.Get(1, "task-1")
		if err != nil || !bytes.Equal(data, []byte("mutable")) {
			t.Fatalf("Put aliased caller buffer: %q err=%v", data, err)
		}
	})
}

func TestFileStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, "task-1", []byte("persist")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(3, "task-1", []byte("torn")); err != nil {
		t.Fatal(err)
	}
	// "Crash": reopen the directory. Epoch 3 never committed.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, ok, err := s2.Latest()
	if err != nil || !ok || e != 2 {
		t.Fatalf("Latest after reopen = %d,%v,%v", e, ok, err)
	}
	data, ok, err := s2.Get(2, "task-1")
	if err != nil || !ok || !bytes.Equal(data, []byte("persist")) {
		t.Fatalf("Get after reopen = %q,%v,%v", data, ok, err)
	}
	if _, _, err := s2.Get(3, "task-1"); err != ErrNotCommitted {
		t.Fatalf("uncommitted epoch visible after reopen: err=%v", err)
	}
}

func TestFileStoreRejectsUnsafeKeys(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "a/b", `a\b`, "COMMITTED"} {
		if err := s.Put(1, key, nil); err == nil {
			t.Fatalf("key %q accepted", key)
		}
	}
}

func TestStoreConcurrentPuts(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				key := "task-" + string(rune('a'+i))
				if err := s.Put(1, key, []byte{byte(i)}); err != nil {
					t.Error(err)
				}
			}(i)
		}
		wg.Wait()
		if err := s.Commit(1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			key := "task-" + string(rune('a'+i))
			data, ok, err := s.Get(1, key)
			if err != nil || !ok || len(data) != 1 || data[0] != byte(i) {
				t.Fatalf("key %s: %v %v %v", key, data, ok, err)
			}
		}
	})
}
