package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestBucketRoundTrip(t *testing.T) {
	// bucketLow(bucketIndex(v)) <= v, with relative error < 12.5%.
	for _, v := range []int64{0, 1, 7, 8, 15, 16, 17, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64 / 2} {
		i := bucketIndex(v)
		low := bucketLow(i)
		if low > v {
			t.Fatalf("v=%d: bucketLow(%d)=%d > v", v, i, low)
		}
		if v >= 16 && float64(v-low) > 0.125*float64(v)+1 {
			t.Fatalf("v=%d: bucket lower bound %d too far", v, low)
		}
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 4096; v++ {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d)=%d < previous %d", v, i, prev)
		}
		prev = i
	}
}

func TestQuickBucketInverse(t *testing.T) {
	f := func(raw int64) bool {
		v := raw
		if v < 0 {
			v = -v
		}
		i := bucketIndex(v)
		if i < 0 || i >= 64*8 {
			return false
		}
		low := bucketLow(i)
		// v must land in [low, nextLow).
		if low > v {
			return false
		}
		// v must fall before the next bucket's lower bound. Index 487 is the
		// last bucket reachable from a non-negative int64; bucket 488's
		// lower bound would overflow, so skip the upper check there.
		if i < 487 {
			return bucketLow(i+1) > v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if got, want := h.Mean(), 50500.0; math.Abs(got-want) > 1 {
		t.Fatalf("mean %f, want %f", got, want)
	}
	if h.Max() != 100000 {
		t.Fatalf("max %d", h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 40000 || p50 > 60000 {
		t.Fatalf("p50 %d out of range", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 85000 || p99 > 100000 {
		t.Fatalf("p99 %d out of range", p99)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
	s := h.Snapshot()
	if s.Count != 100 || s.String() == "" {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read zero")
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := &Histogram{}
	h.Observe(-5)
	if h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Fatal("negative observation must clamp to 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 10000; i++ {
				h.Observe(int64(r.Intn(1 << 20)))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("count %d, want 80000", h.Count())
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d", c.Value())
	}
	var g Gauge
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("gauge %d", g.Value())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if got := e.Update(100); got != 100 {
		t.Fatalf("first sample %f", got)
	}
	if got := e.Update(200); got != 150 {
		t.Fatalf("second sample %f", got)
	}
	if got := e.Value(); got != 150 {
		t.Fatalf("value %f", got)
	}
	// Convergence: constant input converges to that input.
	for i := 0; i < 60; i++ {
		e.Update(1000)
	}
	if math.Abs(e.Value()-1000) > 1e-6 {
		t.Fatalf("did not converge: %f", e.Value())
	}
}

func TestEWMASuppressesOutliers(t *testing.T) {
	e := NewEWMA(0.9)
	for i := 0; i < 50; i++ {
		e.Update(1000)
	}
	e.Update(100000) // a single spike
	if e.Value() > 11000 {
		t.Fatalf("outlier leaked through: %f", e.Value())
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{-0.1, 1.0, 2.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha %g: expected panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestCPUBreakdown(t *testing.T) {
	b := NewCPUBreakdown()
	b.Add("serialization", 450)
	b.Add("network", 540)
	b.Add("other", 10)
	if b.Total() != 1000 {
		t.Fatalf("total %d", b.Total())
	}
	if b.Get("serialization") != 450 {
		t.Fatalf("serialization %d", b.Get("serialization"))
	}
	fr := b.Fractions()
	if len(fr) != 3 {
		t.Fatalf("fractions %v", fr)
	}
	var sum float64
	for _, f := range fr {
		sum += f.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %f", sum)
	}
	// Sorted by name.
	if fr[0].Name != "network" || fr[1].Name != "other" || fr[2].Name != "serialization" {
		t.Fatalf("order %v", fr)
	}
}

func TestCPUBreakdownEmpty(t *testing.T) {
	b := NewCPUBreakdown()
	if b.Total() != 0 || len(b.Fractions()) != 0 {
		t.Fatal("empty breakdown must be zero")
	}
}

func TestHistogramMergeBucketAlignment(t *testing.T) {
	// Two histograms fed disjoint streams must merge into exactly the
	// histogram a single instance fed both streams would be: bucket-wise
	// identical, so counts, sums and every quantile line up.
	var a, b, ref Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 20))
		a.Observe(v)
		ref.Observe(v)
	}
	for i := 0; i < 3000; i++ {
		v := int64(rng.Intn(1 << 30))
		b.Observe(v)
		ref.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != ref.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), ref.Count())
	}
	if a.Sum() != ref.Sum() {
		t.Fatalf("merged sum %d, want %d", a.Sum(), ref.Sum())
	}
	if a.Max() != ref.Max() {
		t.Fatalf("merged max %d, want %d", a.Max(), ref.Max())
	}
	for i := range a.buckets {
		if got, want := a.buckets[i].Load(), ref.buckets[i].Load(); got != want {
			t.Fatalf("bucket %d: merged %d, want %d", i, got, want)
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		if got, want := a.Quantile(q), ref.Quantile(q); got != want {
			t.Fatalf("q=%g: merged %d, want %d", q, got, want)
		}
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	var a, empty Histogram
	a.Observe(10)
	a.Merge(&empty)
	a.Merge(nil)
	if a.Count() != 1 || a.Sum() != 10 || a.Max() != 10 {
		t.Fatalf("merge with empty changed data: %+v", a.Snapshot())
	}
	empty.Merge(&a)
	if empty.Count() != 1 || empty.Quantile(0.5) != a.Quantile(0.5) {
		t.Fatalf("merge into empty lost data: %+v", empty.Snapshot())
	}
}

func TestSnapshotMeanFromSamePair(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if want := float64(s.Sum) / float64(s.Count); s.Mean != want {
		t.Fatalf("mean %f not derived from count/sum pair (want %f)", s.Mean, want)
	}
}

func TestFamilyRegistration(t *testing.T) {
	f := NewFamily()
	c := f.Counter("dsps.tuples_emitted")
	c.Add(3)
	if f.Counter("dsps.tuples_emitted") != c {
		t.Fatal("Counter not idempotent")
	}
	g := f.Gauge("worker.0.queue_len")
	g.Set(7)
	h := f.Histogram("trace.stage.serialize_ns")
	h.Observe(100)

	var names []string
	f.EachCounter(func(n string, c *Counter) { names = append(names, "c:"+n) })
	f.EachGauge(func(n string, g *Gauge) { names = append(names, "g:"+n) })
	f.EachHistogram(func(n string, h *Histogram) { names = append(names, "h:"+n) })
	want := []string{"c:dsps.tuples_emitted", "g:worker.0.queue_len", "h:trace.stage.serialize_ns"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("names %v, want %v", names, want)
	}
	if f.Counter("dsps.tuples_emitted").Value() != 3 {
		t.Fatal("counter value lost")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind registration must panic")
		}
	}()
	f.Gauge("dsps.tuples_emitted")
}

func TestFamilyConcurrent(t *testing.T) {
	f := NewFamily()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				f.Counter("shared").Inc()
				f.Histogram("hist").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if f.Counter("shared").Value() != 8000 {
		t.Fatalf("shared counter %d", f.Counter("shared").Value())
	}
	if f.Histogram("hist").Count() != 8000 {
		t.Fatalf("hist count %d", f.Histogram("hist").Count())
	}
}
