// Package metrics provides the lightweight instrumentation used across the
// engine and the benchmark harness: atomic counters, log-bucketed latency
// histograms, windowed rate meters, per-category CPU-time breakdowns, and
// the α-weighted input-rate smoother from the paper's statistics monitoring
// module (§4: λ(t) = α·λ(t-1) + (1-α)·N(t)).
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records int64 observations (typically nanoseconds) in
// logarithmic buckets: 64 powers-of-two, each split into 8 linear
// sub-buckets, giving ~12% relative resolution across the full range.
// All methods are safe for concurrent use.
type Histogram struct {
	buckets [64 * 8]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 16 {
		return int(v) // 16 exact buckets for small values
	}
	hi := bits.Len64(uint64(v)) - 1 // highest set bit, >= 4 here
	sub := (v >> uint(hi-3)) & 7    // 3 bits below the top bit
	return 16 + (hi-4)*8 + int(sub)
}

// bucketLow returns the lower bound of bucket i (inverse of bucketIndex).
func bucketLow(i int) int64 {
	if i < 16 {
		return int64(i)
	}
	hi := (i-16)/8 + 4
	sub := int64((i - 16) % 8)
	return (8 + sub) << uint(hi-3)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Merge folds every observation recorded in o into h. Both histograms use
// the same fixed bucket layout, so merging is a bucket-wise add and the
// merged quantiles are exactly what a single histogram fed both streams
// would report. Safe for concurrent use on both sides, though a merge
// racing Observe on o may miss the in-flight observation.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		m := h.max.Load()
		if om <= m || h.max.CompareAndSwap(m, om) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observation, or 0 with no data.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1), or 0
// with no data. The result is the lower bound of the bucket containing the
// quantile, so it is within one bucket width (~12%) of the true value.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n-1))
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return bucketLow(i)
		}
	}
	return h.max.Load()
}

// Snapshot summarises the histogram.
type Snapshot struct {
	Count         int64
	Sum           int64
	Mean          float64
	P50, P95, P99 int64
	Max           int64
}

// Snapshot returns a consistent-enough summary for reporting. Count and sum
// are loaded once and the mean is derived from that same pair, so the
// reported mean can never be torn by a concurrent Observe landing between
// the two loads.
func (h *Histogram) Snapshot() Snapshot {
	n := h.count.Load()
	sum := h.sum.Load()
	mean := 0.0
	if n > 0 {
		mean = float64(sum) / float64(n)
	}
	return Snapshot{
		Count: n,
		Sum:   sum,
		Mean:  mean,
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p95=%d p99=%d max=%d", s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// EWMA implements the paper's α-weighted input-rate smoother:
// λ(t) = α·λ(t-1) + (1-α)·N(t), where N(t) is the raw per-interval count.
// Not safe for concurrent use; each monitor owns one.
type EWMA struct {
	alpha   float64
	value   float64
	started bool
}

// NewEWMA returns a smoother with the given α in [0, 1). A larger α weights
// history more, suppressing noise and outliers at the cost of lag.
func NewEWMA(alpha float64) *EWMA {
	if alpha < 0 || alpha >= 1 {
		panic(fmt.Sprintf("metrics: EWMA alpha %g out of [0,1)", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update feeds one raw sample and returns the smoothed value. The first
// sample initialises the series.
func (e *EWMA) Update(sample float64) float64 {
	if !e.started {
		e.value, e.started = sample, true
	} else {
		e.value = e.alpha*e.value + (1-e.alpha)*sample
	}
	return e.value
}

// Value returns the current smoothed value.
func (e *EWMA) Value() float64 { return e.value }

// CPUBreakdown accumulates busy time per category, mirroring the paper's
// Fig. 2d CPU-time breakdown (serialization vs packet processing vs other).
type CPUBreakdown struct {
	mu   sync.Mutex
	cats map[string]int64 // nanoseconds
}

// NewCPUBreakdown returns an empty breakdown.
func NewCPUBreakdown() *CPUBreakdown {
	return &CPUBreakdown{cats: map[string]int64{}}
}

// Add accrues d nanoseconds to the category.
func (b *CPUBreakdown) Add(category string, d int64) {
	b.mu.Lock()
	b.cats[category] += d
	b.mu.Unlock()
}

// Get returns the accumulated nanoseconds for the category.
func (b *CPUBreakdown) Get(category string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cats[category]
}

// Total returns the sum over all categories.
func (b *CPUBreakdown) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t int64
	for _, v := range b.cats {
		t += v
	}
	return t
}

// Fractions returns each category's share of the total, sorted by name.
func (b *CPUBreakdown) Fractions() []CategoryShare {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total int64
	for _, v := range b.cats {
		total += v
	}
	out := make([]CategoryShare, 0, len(b.cats))
	for k, v := range b.cats {
		share := 0.0
		if total > 0 {
			share = float64(v) / float64(total)
		}
		out = append(out, CategoryShare{Name: k, NS: v, Share: share})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CategoryShare is one row of a CPU breakdown report.
type CategoryShare struct {
	Name  string
	NS    int64
	Share float64
}

// Family is a name-keyed collection of metric primitives: the registration
// layer beneath the engine's observability registry. Names are hierarchical
// dot-separated paths ("worker.3.rdma.ring_occupancy"). Get-or-create
// accessors are safe for concurrent use and idempotent, so independent
// subsystems can register the same name and share the underlying metric.
// A name is bound to the first kind that registered it; registering it
// again as a different kind panics (a programming error worth failing
// loudly on).
type Family struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	kinds    map[string]string
}

// NewFamily returns an empty family.
func NewFamily() *Family {
	return &Family{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		kinds:    map[string]string{},
	}
}

func (f *Family) claim(name, kind string) {
	if prev, taken := f.kinds[name]; taken && prev != kind {
		panic(fmt.Sprintf("metrics: %q already registered as a %s, not a %s", name, prev, kind))
	}
	f.kinds[name] = kind
}

// Counter returns the counter registered under name, creating it if needed.
func (f *Family) Counter(name string) *Counter {
	f.mu.RLock()
	c, ok := f.counters[name]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.counters[name]; ok {
		return c
	}
	f.claim(name, "counter")
	c = &Counter{}
	f.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (f *Family) Gauge(name string) *Gauge {
	f.mu.RLock()
	g, ok := f.gauges[name]
	f.mu.RUnlock()
	if ok {
		return g
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.gauges[name]; ok {
		return g
	}
	f.claim(name, "gauge")
	g = &Gauge{}
	f.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (f *Family) Histogram(name string) *Histogram {
	f.mu.RLock()
	h, ok := f.hists[name]
	f.mu.RUnlock()
	if ok {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.hists[name]; ok {
		return h
	}
	f.claim(name, "histogram")
	h = &Histogram{}
	f.hists[name] = h
	return h
}

// EachCounter calls fn for every registered counter, in sorted name order.
func (f *Family) EachCounter(fn func(name string, c *Counter)) {
	f.mu.RLock()
	names := sortedKeys(f.counters)
	f.mu.RUnlock()
	for _, n := range names {
		f.mu.RLock()
		c := f.counters[n]
		f.mu.RUnlock()
		fn(n, c)
	}
}

// EachGauge calls fn for every registered gauge, in sorted name order.
func (f *Family) EachGauge(fn func(name string, g *Gauge)) {
	f.mu.RLock()
	names := sortedKeys(f.gauges)
	f.mu.RUnlock()
	for _, n := range names {
		f.mu.RLock()
		g := f.gauges[n]
		f.mu.RUnlock()
		fn(n, g)
	}
}

// EachHistogram calls fn for every registered histogram, in sorted name
// order.
func (f *Family) EachHistogram(fn func(name string, h *Histogram)) {
	f.mu.RLock()
	names := sortedKeys(f.hists)
	f.mu.RUnlock()
	for _, n := range names {
		f.mu.RLock()
		h := f.hists[n]
		f.mu.RUnlock()
		fn(n, h)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
