// Package metrics provides the lightweight instrumentation used across the
// engine and the benchmark harness: atomic counters, log-bucketed latency
// histograms, windowed rate meters, per-category CPU-time breakdowns, and
// the α-weighted input-rate smoother from the paper's statistics monitoring
// module (§4: λ(t) = α·λ(t-1) + (1-α)·N(t)).
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records int64 observations (typically nanoseconds) in
// logarithmic buckets: 64 powers-of-two, each split into 8 linear
// sub-buckets, giving ~12% relative resolution across the full range.
// All methods are safe for concurrent use.
type Histogram struct {
	buckets [64 * 8]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 16 {
		return int(v) // 16 exact buckets for small values
	}
	hi := bits.Len64(uint64(v)) - 1 // highest set bit, >= 4 here
	sub := (v >> uint(hi-3)) & 7    // 3 bits below the top bit
	return 16 + (hi-4)*8 + int(sub)
}

// bucketLow returns the lower bound of bucket i (inverse of bucketIndex).
func bucketLow(i int) int64 {
	if i < 16 {
		return int64(i)
	}
	hi := (i-16)/8 + 4
	sub := int64((i - 16) % 8)
	return (8 + sub) << uint(hi-3)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the average observation, or 0 with no data.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1), or 0
// with no data. The result is the lower bound of the bucket containing the
// quantile, so it is within one bucket width (~12%) of the true value.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n-1))
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return bucketLow(i)
		}
	}
	return h.max.Load()
}

// Snapshot summarises the histogram.
type Snapshot struct {
	Count         int64
	Mean          float64
	P50, P95, P99 int64
	Max           int64
}

// Snapshot returns a consistent-enough summary for reporting.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p95=%d p99=%d max=%d", s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// EWMA implements the paper's α-weighted input-rate smoother:
// λ(t) = α·λ(t-1) + (1-α)·N(t), where N(t) is the raw per-interval count.
// Not safe for concurrent use; each monitor owns one.
type EWMA struct {
	alpha   float64
	value   float64
	started bool
}

// NewEWMA returns a smoother with the given α in [0, 1). A larger α weights
// history more, suppressing noise and outliers at the cost of lag.
func NewEWMA(alpha float64) *EWMA {
	if alpha < 0 || alpha >= 1 {
		panic(fmt.Sprintf("metrics: EWMA alpha %g out of [0,1)", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update feeds one raw sample and returns the smoothed value. The first
// sample initialises the series.
func (e *EWMA) Update(sample float64) float64 {
	if !e.started {
		e.value, e.started = sample, true
	} else {
		e.value = e.alpha*e.value + (1-e.alpha)*sample
	}
	return e.value
}

// Value returns the current smoothed value.
func (e *EWMA) Value() float64 { return e.value }

// CPUBreakdown accumulates busy time per category, mirroring the paper's
// Fig. 2d CPU-time breakdown (serialization vs packet processing vs other).
type CPUBreakdown struct {
	mu   sync.Mutex
	cats map[string]int64 // nanoseconds
}

// NewCPUBreakdown returns an empty breakdown.
func NewCPUBreakdown() *CPUBreakdown {
	return &CPUBreakdown{cats: map[string]int64{}}
}

// Add accrues d nanoseconds to the category.
func (b *CPUBreakdown) Add(category string, d int64) {
	b.mu.Lock()
	b.cats[category] += d
	b.mu.Unlock()
}

// Get returns the accumulated nanoseconds for the category.
func (b *CPUBreakdown) Get(category string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cats[category]
}

// Total returns the sum over all categories.
func (b *CPUBreakdown) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t int64
	for _, v := range b.cats {
		t += v
	}
	return t
}

// Fractions returns each category's share of the total, sorted by name.
func (b *CPUBreakdown) Fractions() []CategoryShare {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total int64
	for _, v := range b.cats {
		total += v
	}
	out := make([]CategoryShare, 0, len(b.cats))
	for k, v := range b.cats {
		share := 0.0
		if total > 0 {
			share = float64(v) / float64(total)
		}
		out = append(out, CategoryShare{Name: k, NS: v, Share: share})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CategoryShare is one row of a CPU breakdown report.
type CategoryShare struct {
	Name  string
	NS    int64
	Share float64
}
