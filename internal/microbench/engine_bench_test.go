package microbench

import "testing"

// Standard-benchmark shims so `make bench` exercises the gated engine rows.

func BenchmarkEnginePipelineCkptOff(b *testing.B) { EnginePipelineCkptOff(b) }
func BenchmarkEnginePipelineCkpt1s(b *testing.B)  { EnginePipelineCkpt1s(b) }
func BenchmarkEngineAlign5ms(b *testing.B)        { EngineAlign5ms(b) }
