package microbench

import (
	"sync/atomic"
	"testing"
	"time"

	"whale/internal/dsps"
	"whale/internal/snapshot"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// Engine-pipeline rows for the checkpointing overhead budget (DESIGN §13):
// the same two-spout → one-sink pipeline timed end to end with
// checkpointing off, at a 1s interval (epoch stamps and barrier handling
// armed but essentially never firing — the price every deployment pays for
// having the feature available), and at a 5ms interval (barriers
// continuously crossing the two-input alignment, so the row bounds
// alignment-buffer residency cost). The gate holding off ≈ 1s is the
// "checkpointing disabled costs nothing" claim in benchmark form.

// benchQuotaSpout emits its quota of two-field tuples, then idles until the
// sink reports done. It must not exit early: an exited source stops
// servicing checkpoint triggers, and a barrier alignment waiting on it
// would hold the tail of the stream parked until the epoch times out.
type benchQuotaSpout struct {
	quota int
	done  chan struct{}
	i     int
}

func (s *benchQuotaSpout) Open(*dsps.TaskContext) {}
func (s *benchQuotaSpout) Next(c *dsps.Collector) bool {
	if s.i >= s.quota {
		select {
		case <-s.done:
			return false
		default:
			time.Sleep(100 * time.Microsecond)
			return true
		}
	}
	c.Emit(int64(s.i), int64(1))
	s.i++
	return true
}
func (s *benchQuotaSpout) Close() {}

// benchCountBolt counts deliveries and trips done at the target.
type benchCountBolt struct {
	seen   *atomic.Int64
	target int64
	done   chan struct{}
}

func (b *benchCountBolt) Prepare(*dsps.TaskContext) {}
func (b *benchCountBolt) Execute(*tuple.Tuple, *dsps.Collector) {
	if b.seen.Add(1) == b.target {
		close(b.done)
	}
}
func (b *benchCountBolt) Cleanup() {}

// enginePipeline runs b.N tuples through a single-worker two-spout →
// one-sink pipeline under the given checkpoint interval (0 = disabled) and
// reports the end-to-end per-tuple cost.
func enginePipeline(b *testing.B, interval time.Duration) {
	const spouts = 2
	quota := (b.N + spouts - 1) / spouts
	total := int64(quota * spouts)
	var seen atomic.Int64
	done := make(chan struct{})

	tb := dsps.NewTopologyBuilder()
	tb.Spout("src", func() dsps.Spout { return &benchQuotaSpout{quota: quota, done: done} }, spouts)
	tb.Bolt("sink", func() dsps.Bolt {
		return &benchCountBolt{seen: &seen, target: total, done: done}
	}, 1).Shuffle("src")
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}

	cfg := dsps.Config{Workers: 1, Network: transport.NewInprocNetwork(0)}
	if interval > 0 {
		cfg.CheckpointInterval = interval
		cfg.CheckpointStore = snapshot.NewMemStore()
	}
	eng, err := dsps.Start(topo, cfg)
	if err != nil {
		b.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		b.Fatalf("pipeline stalled at %d/%d tuples", seen.Load(), total)
	}
	eng.Stop()
}

// EnginePipelineCkptOff is the end-to-end baseline: checkpointing disabled.
func EnginePipelineCkptOff(b *testing.B) { enginePipeline(b, 0) }

// EnginePipelineCkpt1s arms checkpointing at a 1s interval: the steady-state
// consume path runs its barrier checks on every tuple but epochs almost
// never fire. The gate holds this within noise of EnginePipelineCkptOff.
func EnginePipelineCkpt1s(b *testing.B) { enginePipeline(b, time.Second) }

// EngineAlign5ms fires epochs continuously through the sink's two-input
// alignment, bounding barrier-injection and alignment-buffer residency cost.
// Not in Cases(): how long tuples sit parked between the two barriers of an
// epoch is scheduler-dependent, so run-to-run dispersion is far beyond what
// the gate's noise headroom can absorb. BenchmarkBarrierAlignCycle in
// internal/dsps measures the deterministic per-cycle alignment cost instead.
func EngineAlign5ms(b *testing.B) { enginePipeline(b, 5*time.Millisecond) }
