// Package microbench holds the curated core-primitive benchmark bodies
// shared by the repo-root `go test -bench` suite and the cmd/whaleperf
// regression gate, so the gate measures exactly the code the benchmarks do.
// Each case is a plain func(*testing.B), runnable through testing.Benchmark
// from a non-test binary.
package microbench

import (
	"testing"
	"time"

	"whale/internal/multicast"
	"whale/internal/obs"
	"whale/internal/tuple"
)

// Case is one gated microbenchmark.
type Case struct {
	// Name is the stable id used in BENCH_*.json ("micro/<name>").
	Name string
	// PerOpTuples is how many tuples one b.N iteration moves (0 when the
	// case is not tuple-oriented); whaleperf derives tuples/sec from it.
	PerOpTuples int
	Bench       func(b *testing.B)
}

// Cases returns the gated set, in reporting order.
func Cases() []Case {
	return []Case{
		{Name: "tuple_serialize", PerOpTuples: 1, Bench: TupleSerialize},
		{Name: "tuple_deserialize", PerOpTuples: 1, Bench: TupleDeserialize},
		{Name: "worker_message_encode", PerOpTuples: 1, Bench: WorkerMessageEncode},
		{Name: "worker_message_decode", PerOpTuples: 1, Bench: WorkerMessageDecode},
		{Name: "control_envelope_encode", Bench: ControlEnvelopeEncode},
		{Name: "tree_nonblocking_480", Bench: TreeNonBlocking480},
		{Name: "tree_scaleup_480", Bench: TreeScaleUp480},
		{Name: "trace_record_off", PerOpTuples: 1, Bench: TraceRecordOff},
		{Name: "trace_record_on", PerOpTuples: 1, Bench: TraceRecordOn},
		{Name: "engine_pipeline_ckpt_off", PerOpTuples: 1, Bench: EnginePipelineCkptOff},
		{Name: "engine_pipeline_ckpt_1s", PerOpTuples: 1, Bench: EnginePipelineCkpt1s},
	}
}

// Tuple returns the canonical benchmark tuple (a ride-hailing style record:
// id, driver key, two coordinates, a flag).
func Tuple() *tuple.Tuple {
	return &tuple.Tuple{
		Stream:     "requests",
		ID:         12345,
		SrcTask:    3,
		RootEmitNS: 1,
		Values:     []tuple.Value{int64(42), "drv-001234", 30.65, 104.06, true},
	}
}

// TupleSerialize measures Encoder.EncodeTuple steady state (0 allocs/op).
func TupleSerialize(b *testing.B) {
	enc := tuple.NewEncoder()
	tp := Tuple()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeTuple(tp); err != nil {
			b.Fatal(err)
		}
	}
}

// TupleDeserialize measures DecodeTuple (allocates the Tuple and its values;
// []byte fields alias the input since PR 5).
func TupleDeserialize(b *testing.B) {
	buf, err := tuple.AppendTuple(nil, Tuple())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := tuple.DecodeTuple(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// WorkerMessageEncode measures AppendWorkerMessage into a reused buffer
// (0 allocs/op).
func WorkerMessageEncode(b *testing.B) {
	payload, _ := tuple.AppendTuple(nil, Tuple())
	msg := &tuple.WorkerMessage{Kind: tuple.KindWorkerMessage, DstIDs: []int32{1, 2, 3, 4, 5, 6, 7, 8}, Payload: payload}
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = tuple.AppendWorkerMessage(buf[:0], msg)
	}
}

// WorkerMessageDecode measures DecodeWorkerMessageInto with a reused scratch
// (0 allocs/op steady state).
func WorkerMessageDecode(b *testing.B) {
	payload, _ := tuple.AppendTuple(nil, Tuple())
	raw := tuple.AppendWorkerMessage(nil, &tuple.WorkerMessage{
		Kind: tuple.KindWorkerMessage, DstIDs: []int32{1, 2, 3, 4, 5, 6, 7, 8}, Payload: payload,
	})
	var scratch tuple.WorkerMessage
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tuple.DecodeWorkerMessageInto(&scratch, raw); err != nil {
			b.Fatal(err)
		}
	}
}

// ControlEnvelopeEncode measures the pooled control-plane envelope encode
// used by credit grants and heartbeats.
func ControlEnvelopeEncode(b *testing.B) {
	enc := tuple.NewEncoder()
	cm := &tuple.ControlMessage{Type: tuple.CtrlCredit, Node: 7, Credits: 1 << 30}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.EncodeControlEnvelope(cm)
	}
}

func destIDs(n int) []multicast.NodeID {
	out := make([]multicast.NodeID, n)
	for i := range out {
		out[i] = multicast.NodeID(i + 1)
	}
	return out
}

// TreeNonBlocking480 measures building the paper-scale non-blocking
// multicast tree.
func TreeNonBlocking480(b *testing.B) {
	dests := destIDs(480)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		multicast.BuildNonBlocking(0, dests, 3)
	}
}

// TraceRecordOff measures the instrumented hot path with tracing disabled:
// serialize plus the Record/RecordHop/PeekTraceID calls every traced stage
// makes, all of which must short-circuit to nothing (0 allocs/op). This is
// the price every tuple pays when -trace-sample-every is 0; the perf gate
// holds it within noise of plain tuple_serialize.
func TraceRecordOff(b *testing.B) {
	traceOverhead(b, obs.NewScope(obs.Config{}).Tracer)
}

// TraceRecordOn measures the same path with every tuple sampled — the
// worst-case tracing-enabled overhead (pooled span records; bounded
// allocations).
func TraceRecordOn(b *testing.B) {
	traceOverhead(b, obs.NewScope(obs.Config{TraceSampleEvery: 1}).Tracer)
}

func traceOverhead(b *testing.B, tr *obs.Tracer) {
	enc := tuple.NewEncoder()
	tp := Tuple()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp.TraceID = tr.Sample()
		t0 := time.Now()
		buf, err := enc.EncodeTuple(tp)
		if err != nil {
			b.Fatal(err)
		}
		tr.Record(tp.TraceID, obs.StageSerialize, 0, t0, time.Since(t0))
		if id := tuple.PeekTraceID(buf); id != tp.TraceID {
			b.Fatal("trace id peek mismatch")
		}
		tr.RecordHop(tp.TraceID, obs.StageTreeHop, 0, 1, 1, 1, 2, t0, time.Since(t0))
	}
}

// TreeScaleUp480 measures the dynamic scale-up switch at paper scale.
func TreeScaleUp480(b *testing.B) {
	base := multicast.BuildNonBlocking(0, destIDs(480), 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := base.Clone()
		multicast.ScaleUp(tr, 5)
	}
}
