package perfgate

import (
	"fmt"
	"io"
	"strings"
)

// WriteSummary renders the before/after comparison as a GitHub-flavored
// markdown table — one row per benchmark with the baseline median, the
// observed median and the gate verdict — for the bench-gate job to append
// to $GITHUB_STEP_SUMMARY alongside the JSON artifact. The verdict column
// reproduces Compare's decisions exactly: a row regresses here if and only
// if the gate fails on it.
func WriteSummary(w io.Writer, baseline, fresh *Report, opts Options) error {
	regs := map[string][]Regression{}
	for _, r := range Compare(baseline, fresh, opts) {
		regs[r.Name] = append(regs[r.Name], r)
	}
	if _, err := fmt.Fprintf(w, "### perf gate: %d baseline rows, %d regression(s)\n\n", len(baseline.Benchmarks), len(regs)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "| row | baseline median | observed median | verdict |\n|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, name := range baseline.Names() {
		old := baseline.Benchmarks[name]
		cur, ok := fresh.Benchmarks[name]
		var observed, verdict string
		switch {
		case !ok && len(regs[name]) == 0:
			// Compare skipped it (quick/full DES sweeps cover different cells).
			observed, verdict = "—", "skipped (quick/full mismatch)"
		case !ok:
			observed, verdict = "—", "❌ missing from this run"
		case len(regs[name]) > 0:
			observed = metricCell(cur)
			parts := make([]string, 0, len(regs[name]))
			for _, r := range regs[name] {
				parts = append(parts, fmt.Sprintf("%s %.4g → %.4g (limit %.0f%%)", r.Metric, r.Old, r.New, r.Limit*100))
			}
			verdict = "❌ " + strings.Join(parts, "; ")
		default:
			observed = metricCell(cur)
			verdict = "✅ ok"
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s |\n", name, metricCell(old), observed, verdict); err != nil {
			return err
		}
	}
	// Rows new in fresh never gate, but surface them so a rename that
	// orphans its baseline row is visible.
	var news []string
	for _, name := range fresh.Names() {
		if _, ok := baseline.Benchmarks[name]; !ok {
			news = append(news, name)
		}
	}
	for _, name := range news {
		if _, err := fmt.Fprintf(w, "| %s | — | %s | new (not gated) |\n", name, metricCell(fresh.Benchmarks[name])); err != nil {
			return err
		}
	}
	return nil
}

// metricCell formats a metric's primary figure: ns/op (with allocs when
// nonzero) for microbenchmark rows, tuples/sec for DES rows.
func metricCell(m Metric) string {
	switch {
	case m.NsPerOp > 0 && m.AllocsPerOp > 0:
		return fmt.Sprintf("%.1f ns/op, %.0f allocs/op", m.NsPerOp, m.AllocsPerOp)
	case m.NsPerOp > 0:
		return fmt.Sprintf("%.1f ns/op", m.NsPerOp)
	case m.TuplesPerSec > 0:
		return fmt.Sprintf("%.0f tuples/sec", m.TuplesPerSec)
	}
	return "—"
}
