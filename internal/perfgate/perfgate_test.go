package perfgate

import (
	"os"
	"path/filepath"
	"testing"
)

func report(benchmarks map[string]Metric) *Report {
	return &Report{Schema: Schema, Quick: true, Benchmarks: benchmarks}
}

func TestCompareCleanAndImprovement(t *testing.T) {
	base := report(map[string]Metric{
		"micro/encode":        {NsPerOp: 100, AllocsPerOp: 0, TuplesPerSec: 1e7},
		"des/fig13/Whale/480": {TuplesPerSec: 3e6},
	})
	fresh := report(map[string]Metric{
		"micro/encode":        {NsPerOp: 90, AllocsPerOp: 0, TuplesPerSec: 1.1e7}, // faster
		"des/fig13/Whale/480": {TuplesPerSec: 3.1e6},
		"micro/new-row":       {NsPerOp: 5000}, // new rows never gate
	})
	if regs := Compare(base, fresh, Options{}); len(regs) != 0 {
		t.Fatalf("clean run flagged: %v", regs)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := report(map[string]Metric{
		"micro/encode":        {NsPerOp: 100, AllocsPerOp: 0},
		"micro/decode":        {NsPerOp: 100},
		"des/fig13/Whale/480": {TuplesPerSec: 3e6},
		"micro/gone":          {NsPerOp: 1},
	})
	fresh := report(map[string]Metric{
		"micro/encode":        {NsPerOp: 105, AllocsPerOp: 2}, // alloc regression
		"micro/decode":        {NsPerOp: 150},                 // 50% > 10%
		"des/fig13/Whale/480": {TuplesPerSec: 2e6},            // -33% > 25%
	})
	regs := Compare(base, fresh, Options{})
	want := map[string]string{
		"micro/encode":        "allocs/op",
		"micro/decode":        "ns/op",
		"des/fig13/Whale/480": "tuples/sec",
		"micro/gone":          "missing",
	}
	if len(regs) != len(want) {
		t.Fatalf("got %d regressions %v, want %d", len(regs), regs, len(want))
	}
	for _, r := range regs {
		if want[r.Name] != r.Metric {
			t.Errorf("%s flagged on %s, want %s", r.Name, r.Metric, want[r.Name])
		}
	}
}

func TestCompareNoisyRowsGetHeadroomNotAPass(t *testing.T) {
	base := report(map[string]Metric{"micro/jitter": {NsPerOp: 100, Dispersion: 0.3}})
	// 15% slower: over the 10% gate but inside the doubled 20% noisy gate.
	ok := report(map[string]Metric{"micro/jitter": {NsPerOp: 115, Dispersion: 0.3}})
	if regs := Compare(base, ok, Options{}); len(regs) != 0 {
		t.Fatalf("noisy row inside doubled threshold flagged: %v", regs)
	}
	// 2x slower: noisy or not, that fails.
	bad := report(map[string]Metric{"micro/jitter": {NsPerOp: 200, Dispersion: 0.3}})
	if regs := Compare(base, bad, Options{}); len(regs) != 1 {
		t.Fatalf("noisy row halving throughput not flagged: %v", regs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_t.json")
	r := report(map[string]Metric{"micro/x": {NsPerOp: 42.5, Runs: 5, Dispersion: 0.01}})
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["micro/x"].NsPerOp != 42.5 || got.Benchmarks["micro/x"].Runs != 5 || !got.Quick {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Wrong schema must be rejected.
	bad := &Report{Schema: "other/v9", Benchmarks: nil}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	data := []byte(`{"schema":"other/v9","benchmarks":{}}`)
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); err == nil {
		t.Fatalf("schema %q accepted", bad.Schema)
	}
}

func TestMedianDispersion(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if d := Dispersion([]float64{90, 100, 110}); d != 0.2 {
		t.Fatalf("dispersion = %v", d)
	}
	if d := Dispersion([]float64{100}); d != 0 {
		t.Fatalf("single-sample dispersion = %v", d)
	}
}
