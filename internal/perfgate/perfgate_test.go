package perfgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(benchmarks map[string]Metric) *Report {
	return &Report{Schema: Schema, Quick: true, Benchmarks: benchmarks}
}

func TestCompareCleanAndImprovement(t *testing.T) {
	base := report(map[string]Metric{
		"micro/encode":        {NsPerOp: 100, AllocsPerOp: 0, TuplesPerSec: 1e7},
		"des/fig13/Whale/480": {TuplesPerSec: 3e6},
	})
	fresh := report(map[string]Metric{
		"micro/encode":        {NsPerOp: 90, AllocsPerOp: 0, TuplesPerSec: 1.1e7}, // faster
		"des/fig13/Whale/480": {TuplesPerSec: 3.1e6},
		"micro/new-row":       {NsPerOp: 5000}, // new rows never gate
	})
	if regs := Compare(base, fresh, Options{}); len(regs) != 0 {
		t.Fatalf("clean run flagged: %v", regs)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := report(map[string]Metric{
		"micro/encode":        {NsPerOp: 100, AllocsPerOp: 0},
		"micro/decode":        {NsPerOp: 100},
		"des/fig13/Whale/480": {TuplesPerSec: 3e6},
		"micro/gone":          {NsPerOp: 1},
	})
	fresh := report(map[string]Metric{
		"micro/encode":        {NsPerOp: 105, AllocsPerOp: 2}, // alloc regression
		"micro/decode":        {NsPerOp: 150},                 // 50% > 10%
		"des/fig13/Whale/480": {TuplesPerSec: 2e6},            // -33% > 25%
	})
	regs := Compare(base, fresh, Options{})
	want := map[string]string{
		"micro/encode":        "allocs/op",
		"micro/decode":        "ns/op",
		"des/fig13/Whale/480": "tuples/sec",
		"micro/gone":          "missing",
	}
	if len(regs) != len(want) {
		t.Fatalf("got %d regressions %v, want %d", len(regs), regs, len(want))
	}
	for _, r := range regs {
		if want[r.Name] != r.Metric {
			t.Errorf("%s flagged on %s, want %s", r.Name, r.Metric, want[r.Name])
		}
	}
}

func TestCompareNoisyRowsGetHeadroomNotAPass(t *testing.T) {
	base := report(map[string]Metric{"micro/jitter": {NsPerOp: 100, Dispersion: 0.3}})
	// 15% slower: over the 10% gate but inside the doubled 20% noisy gate.
	ok := report(map[string]Metric{"micro/jitter": {NsPerOp: 115, Dispersion: 0.3}})
	if regs := Compare(base, ok, Options{}); len(regs) != 0 {
		t.Fatalf("noisy row inside doubled threshold flagged: %v", regs)
	}
	// 2x slower: noisy or not, that fails.
	bad := report(map[string]Metric{"micro/jitter": {NsPerOp: 200, Dispersion: 0.3}})
	if regs := Compare(base, bad, Options{}); len(regs) != 1 {
		t.Fatalf("noisy row halving throughput not flagged: %v", regs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_t.json")
	r := report(map[string]Metric{"micro/x": {NsPerOp: 42.5, Runs: 5, Dispersion: 0.01}})
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["micro/x"].NsPerOp != 42.5 || got.Benchmarks["micro/x"].Runs != 5 || !got.Quick {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Wrong schema must be rejected.
	bad := &Report{Schema: "other/v9", Benchmarks: nil}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	data := []byte(`{"schema":"other/v9","benchmarks":{}}`)
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); err == nil {
		t.Fatalf("schema %q accepted", bad.Schema)
	}
}

func TestMedianDispersion(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if d := Dispersion([]float64{90, 100, 110}); d != 0.2 {
		t.Fatalf("dispersion = %v", d)
	}
	if d := Dispersion([]float64{100}); d != 0 {
		t.Fatalf("single-sample dispersion = %v", d)
	}
}

func TestWriteSummaryTable(t *testing.T) {
	base := report(map[string]Metric{
		"micro/encode":        {NsPerOp: 100, AllocsPerOp: 0},
		"micro/decode":        {NsPerOp: 200, AllocsPerOp: 2},
		"des/fig13/Whale/480": {TuplesPerSec: 3e6},
	})
	fresh := report(map[string]Metric{
		"micro/encode":        {NsPerOp: 90, AllocsPerOp: 0},  // improved: ok
		"micro/decode":        {NsPerOp: 260, AllocsPerOp: 2}, // 30% slower: regression
		"des/fig13/Whale/480": {TuplesPerSec: 2.9e6},          // within DES threshold
		"micro/new-row":       {NsPerOp: 50},                  // new: listed, not gated
	})
	var sb strings.Builder
	if err := WriteSummary(&sb, base, fresh, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// One verdict per baseline row plus the new-row line, and the verdicts
	// must mirror Compare exactly.
	for _, want := range []string{
		"| row | baseline median | observed median | verdict |",
		"| micro/encode | 100.0 ns/op | 90.0 ns/op | ✅ ok |",
		"| des/fig13/Whale/480 | 3000000 tuples/sec | 2900000 tuples/sec | ✅ ok |",
		"ns/op 200 → 260 (limit 10%)",
		"| micro/new-row | — | 50.0 ns/op | new (not gated) |",
		"1 regression(s)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "❌") != 1 {
		t.Fatalf("want exactly one failing row:\n%s", out)
	}
}

func TestWriteSummaryMissingRow(t *testing.T) {
	base := report(map[string]Metric{"micro/gone": {NsPerOp: 100}})
	fresh := report(map[string]Metric{})
	var sb strings.Builder
	if err := WriteSummary(&sb, base, fresh, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "missing from this run") {
		t.Fatalf("missing-row verdict absent:\n%s", sb.String())
	}
}
