// Package perfgate defines the BENCH_*.json benchmark-report schema and the
// regression comparison used by cmd/whaleperf and the bench-gate CI job.
//
// A report maps stable benchmark names to median metrics over N runs plus a
// dispersion figure ((max-min)/median of ns/op or tuples/sec) that the gate
// uses to loosen thresholds for noisy rows. Names are namespaced:
// "micro/<case>" for internal/microbench cases and "des/<figure>/<series>/<x>"
// for discrete-event experiment cells.
package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Schema is the report format identifier.
const Schema = "whaleperf/v1"

// Metric is one benchmark's medians over the harness runs.
type Metric struct {
	NsPerOp      float64 `json:"ns_per_op,omitempty"`
	BytesPerOp   float64 `json:"b_per_op,omitempty"`
	AllocsPerOp  float64 `json:"allocs_per_op,omitempty"`
	TuplesPerSec float64 `json:"tuples_per_sec,omitempty"`
	// Dispersion is (max-min)/median of the primary metric across runs;
	// rows noisier than the gate threshold are compared more loosely.
	Dispersion float64 `json:"dispersion"`
	Runs       int     `json:"runs"`
}

// Report is one whaleperf harness output.
type Report struct {
	Schema string `json:"schema"`
	// Quick records whether DES experiments ran in quick mode; baselines and
	// fresh runs must agree for DES rows to be comparable.
	Quick      bool              `json:"quick"`
	Benchmarks map[string]Metric `json:"benchmarks"`
}

// Load reads a report from path and checks its schema.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfgate: parse %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perfgate: %s has schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// Save writes the report as indented, key-sorted JSON (stable diffs when the
// baseline is refreshed and committed).
func (r *Report) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Names returns the benchmark names in sorted order.
func (r *Report) Names() []string {
	out := make([]string, 0, len(r.Benchmarks))
	for k := range r.Benchmarks {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Options controls the comparison.
type Options struct {
	// MicroThreshold is the allowed fractional slowdown for "micro/" rows
	// (default 0.10).
	MicroThreshold float64
	// DESThreshold is the allowed fractional throughput drop for "des/" rows,
	// which model whole experiments and are noisier (default 0.25).
	DESThreshold float64
}

func (o Options) withDefaults() Options {
	if o.MicroThreshold <= 0 {
		o.MicroThreshold = 0.10
	}
	if o.DESThreshold <= 0 {
		o.DESThreshold = 0.25
	}
	return o
}

// Regression is one gate violation.
type Regression struct {
	Name   string
	Metric string // "ns/op", "allocs/op", "B/op", "tuples/sec", "missing"
	Old    float64
	New    float64
	Limit  float64 // the threshold fraction actually applied
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but missing from this run", r.Name)
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g (limit %.0f%%)", r.Name, r.Metric, r.Old, r.New, r.Limit*100)
}

// Compare gates fresh against baseline and returns every violation.
// Improvements never fail; rows new in fresh never fail; rows whose recorded
// dispersion exceeds the threshold get double headroom instead of a free
// pass, so a noisy benchmark still cannot silently halve.
func Compare(baseline, fresh *Report, opts Options) []Regression {
	opts = opts.withDefaults()
	var out []Regression
	for _, name := range baseline.Names() {
		old := baseline.Benchmarks[name]
		cur, ok := fresh.Benchmarks[name]
		if !ok {
			if strings.HasPrefix(name, "des/") && baseline.Quick != fresh.Quick {
				continue // quick and full DES sweeps cover different cells
			}
			out = append(out, Regression{Name: name, Metric: "missing"})
			continue
		}
		thr := opts.MicroThreshold
		if strings.HasPrefix(name, "des/") {
			thr = opts.DESThreshold
		}
		// Loosen, don't waive, for rows that measured noisy in either run.
		if old.Dispersion > thr || cur.Dispersion > thr {
			thr *= 2
		}
		if old.NsPerOp > 0 && cur.NsPerOp > old.NsPerOp*(1+thr) {
			out = append(out, Regression{Name: name, Metric: "ns/op", Old: old.NsPerOp, New: cur.NsPerOp, Limit: thr})
		}
		// Allocations gate absolutely: 0 -> 1 is a regression no ratio can
		// express, and the zero-alloc hot path is an acceptance criterion.
		if cur.AllocsPerOp > old.AllocsPerOp+0.5 && cur.AllocsPerOp > old.AllocsPerOp*(1+thr) {
			out = append(out, Regression{Name: name, Metric: "allocs/op", Old: old.AllocsPerOp, New: cur.AllocsPerOp, Limit: thr})
		}
		if cur.BytesPerOp > old.BytesPerOp+16 && cur.BytesPerOp > old.BytesPerOp*(1+thr) {
			out = append(out, Regression{Name: name, Metric: "B/op", Old: old.BytesPerOp, New: cur.BytesPerOp, Limit: thr})
		}
		if old.TuplesPerSec > 0 && cur.TuplesPerSec > 0 && cur.TuplesPerSec < old.TuplesPerSec*(1-thr) {
			out = append(out, Regression{Name: name, Metric: "tuples/sec", Old: old.TuplesPerSec, New: cur.TuplesPerSec, Limit: thr})
		}
	}
	return out
}

// Median returns the middle value of vs (mean of middle two when even);
// it sorts a copy.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// Dispersion returns (max-min)/median for vs, 0 when degenerate.
func Dispersion(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	med := Median(vs)
	if med == 0 {
		return 0
	}
	min, max := vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return (max - min) / med
}
