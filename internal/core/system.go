// Package core composes the engine, transports and multicast structures
// into the named systems the paper builds and evaluates (§5.1):
//
//	Storm            — instance-oriented communication over TCP
//	RDMAStorm        — instance-oriented over basic (two-sided) RDMA verbs
//	WhaleWOC         — + worker-oriented communication (paper §3.5)
//	WhaleWOCRDMA     — + optimized RDMA primitives: one-sided READ data
//	                   path, ring memory region, MMS/WTL slicing (paper §4)
//	WhaleSequential  — WhaleWOCRDMA with sequential (star) multicast, the
//	                   "sequential multicast" arm of Figs. 17-20
//	RDMC             — WhaleWOCRDMA with a static binomial multicast tree
//	Whale            — the full system: + self-adjusting non-blocking
//	                   multicast tree (paper §3.2-3.4)
//
// Every system is a (transport, engine-config) pair; benchmarks and the
// public API build clusters from these presets so ablations differ in
// exactly one mechanism at a time.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"whale/internal/control"
	"whale/internal/dsps"
	"whale/internal/obs"
	"whale/internal/rdma"
	"whale/internal/snapshot"
	"whale/internal/transport"
)

// System names one of the paper's evaluated systems.
type System int

const (
	// Storm is the stock Apache Storm baseline.
	Storm System = iota
	// RDMAStorm is Yang et al.'s RDMA-based Storm.
	RDMAStorm
	// WhaleWOC adds worker-oriented communication to RDMAStorm.
	WhaleWOC
	// WhaleWOCRDMA adds the optimized RDMA primitives to WhaleWOC.
	WhaleWOCRDMA
	// WhaleSequential is WhaleWOCRDMA with explicit star multicast (the
	// same data path; named for the Figs. 17-20 comparison).
	WhaleSequential
	// RDMC uses a static binomial multicast tree on WhaleWOCRDMA.
	RDMC
	// Whale is the full system with the self-adjusting non-blocking tree.
	Whale
)

// Systems lists all presets in evaluation order.
var Systems = []System{Storm, RDMAStorm, WhaleWOC, WhaleWOCRDMA, WhaleSequential, RDMC, Whale}

func (s System) String() string {
	switch s {
	case Storm:
		return "Storm"
	case RDMAStorm:
		return "RDMA-Storm"
	case WhaleWOC:
		return "Whale-WOC"
	case WhaleWOCRDMA:
		return "Whale-WOC-RDMA"
	case WhaleSequential:
		return "Whale-Sequential"
	case RDMC:
		return "RDMC"
	case Whale:
		return "Whale"
	}
	return fmt.Sprintf("system(%d)", int(s))
}

// TransportKind selects the wire.
type TransportKind int

const (
	// TransportAuto picks the system's canonical wire (TCP for Storm,
	// emulated RDMA for the rest).
	TransportAuto TransportKind = iota
	// TransportInproc uses Go channels (fast tests and examples).
	TransportInproc
	// TransportTCP uses real loopback TCP.
	TransportTCP
	// TransportRDMA uses the emulated RDMA fabric.
	TransportRDMA
)

// Options tunes a cluster independent of the chosen System.
type Options struct {
	// Workers is the worker-process count (default 4).
	Workers int
	// MaxWorkers caps the cluster's elastic size: workers in
	// [Workers, MaxWorkers) start dormant and can be admitted later with
	// Cluster.JoinWorker (default: Workers — no elastic headroom).
	MaxWorkers int
	// Transport overrides the system's canonical wire.
	Transport TransportKind
	// MMS and WTL tune Whale's stream slicing (defaults 256 KiB / 1 ms —
	// the operating point the paper selects in Figs. 11-12).
	MMS int
	WTL time.Duration
	// RingSize sizes the ring memory region (default 4 MiB).
	RingSize int
	// TransferQueueCap is Q (default 1024).
	TransferQueueCap int
	// InitialDstar seeds the non-blocking tree (default 3).
	InitialDstar int
	// FixedDstar pins d*, disabling the §3.3 controller.
	FixedDstar bool
	// MonitorInterval is the controller Δt (default 10 ms).
	MonitorInterval time.Duration
	// Control tunes the self-adjusting controller thresholds.
	Control control.Config
	// Cost adds synthetic latency/bandwidth to the emulated RDMA fabric.
	Cost rdma.CostModel

	// AckEnabled turns on the Storm-style reliability plane (tracked
	// spout emissions, acker tasks, at-least-once sources).
	AckEnabled bool
	// Ackers is the acker parallelism (default 1).
	Ackers int
	// AckTimeout fails incomplete reliability trees (default 5s).
	AckTimeout time.Duration
	// MaxSpoutPending caps in-flight reliability trees per spout task.
	MaxSpoutPending int

	// HeartbeatInterval enables the failure detector: workers beacon
	// liveness to worker 0 at this period (0 disables detection).
	HeartbeatInterval time.Duration
	// SuspectAfter is the silence before a worker is suspected
	// (default 5×HeartbeatInterval).
	SuspectAfter time.Duration
	// ConfirmAfter is the silence before a suspected worker is confirmed
	// dead and multicast trees repair around it (default 3×SuspectAfter).
	ConfirmAfter time.Duration
	// CheckpointInterval enables aligned snapshot checkpointing (DESIGN
	// §13): epoch barriers at this period, operator state into
	// CheckpointStore, restore + source rewind after a confirmed failure
	// (0 disables).
	CheckpointInterval time.Duration
	// CheckpointTimeout aborts an epoch whose barriers have not fully
	// propagated (default 10×CheckpointInterval).
	CheckpointTimeout time.Duration
	// CheckpointStore persists per-epoch task snapshots (default:
	// in-memory; use snapshot.NewFileStore for a durable directory).
	CheckpointStore snapshot.Store
	// Autoscale enables the M/D/1-driven parallelism controller
	// (DESIGN §15): per-operator utilization-band decisions actuated
	// through Rescale. Requires CheckpointInterval > 0; the zero value
	// disables it.
	Autoscale dsps.AutoscaleConfig
	// SendRetries bounds per-send retries on transient transport errors
	// (default 3; negative disables retrying).
	SendRetries int
	// SendRetryBase is the first retry backoff (default 200µs).
	SendRetryBase time.Duration

	// CreditWindow is the per-link credit window in delivery units
	// (default 256; negative disables credit flow control).
	CreditWindow int
	// LinkQueueCap bounds each flow-controlled link's send queue
	// (default 256).
	LinkQueueCap int
	// HighWaterline / LowWaterline are the link-depth percentages driving
	// the open→throttled→open transitions (defaults 80 / 30).
	HighWaterline int
	LowWaterline  int
	// ShedPolicy picks what a full link does with best-effort tuples:
	// block (default), shed newest, or shed oldest. Acked tuples always
	// block.
	ShedPolicy dsps.ShedPolicy
	// PauseAfter marks a link paused after one continuous credit wait of
	// this length (default 150ms).
	PauseAfter time.Duration
	// DegradedAfter reports a subscriber degraded once its link stays
	// paused this long (default 4×PauseAfter).
	DegradedAfter time.Duration
	// CreditTimeout bounds one credit wait before lost grants are forgiven
	// (default 1s).
	CreditTimeout time.Duration
	// DrainTimeout bounds the quiescence drain inside Shutdown
	// (default 2s).
	DrainTimeout time.Duration

	// ObsAddr, when non-empty, serves the observability endpoints
	// (/metrics, /debug/whale, /debug/events, /debug/pprof) on that
	// address (e.g. "127.0.0.1:9090"; ":0" picks a free port).
	ObsAddr string
	// TraceSampleEvery enables tuple-path tracing: every Nth spout root
	// tuple carries a trace ID and records per-stage span timings
	// (0 disables tracing).
	TraceSampleEvery int64
	// TraceKeep bounds retained full span timelines (default 64).
	TraceKeep int
	// EventCap bounds the reconfiguration event ring (default 1024).
	EventCap int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MMS <= 0 {
		o.MMS = 256 << 10
	}
	if o.WTL <= 0 {
		o.WTL = time.Millisecond
	}
	if o.RingSize <= 0 {
		o.RingSize = 4 << 20
	}
	if o.TransferQueueCap <= 0 {
		o.TransferQueueCap = 1024
	}
	if o.InitialDstar <= 0 {
		o.InitialDstar = 3
	}
	if o.MonitorInterval <= 0 {
		o.MonitorInterval = 10 * time.Millisecond
	}
	return o
}

// basicRDMAConfig is the unoptimized verbs setup RDMA-Storm and Whale-WOC
// use: two-sided SEND/RECV, no meaningful batching (tiny MMS, short WTL).
func basicRDMAConfig(o Options) rdma.ChannelConfig {
	return rdma.ChannelConfig{
		Mode:     rdma.ModeTwoSided,
		MMS:      1 << 10,
		WTL:      200 * time.Microsecond,
		RingSize: o.RingSize,
	}
}

// optimizedRDMAConfig is Whale's tuned data path: one-sided READ with the
// ring region and MMS/WTL slicing (§4).
func optimizedRDMAConfig(o Options) rdma.ChannelConfig {
	return rdma.ChannelConfig{
		Mode:     rdma.ModeOneSidedRead,
		MMS:      o.MMS,
		WTL:      o.WTL,
		RingSize: o.RingSize,
	}
}

// flushHook counts every RDMA batch flush in the scope's registry by
// reason (rdma.flushes_mms / _wtl / _explicit, plus rdma.flush_bytes) and
// logs an event whenever the dominant flush reason changes — the MMS↔WTL
// transitions that show which side of the slicing trade-off the run is on.
// The returned func is invoked serially per channel (one flush in flight
// at a time) with no channel lock held, but it still stays cheap: counter
// bumps and an occasional ring append only.
func flushHook(scope *obs.Scope) func(rdma.FlushReason, int) {
	mms := scope.Reg.Counter("rdma.flushes_mms")
	wtl := scope.Reg.Counter("rdma.flushes_wtl")
	explicit := scope.Reg.Counter("rdma.flushes_explicit")
	bytes := scope.Reg.Counter("rdma.flush_bytes")
	var last atomic.Int32
	last.Store(-1)
	return func(reason rdma.FlushReason, batchBytes int) {
		switch reason {
		case rdma.FlushMMS:
			mms.Inc()
		case rdma.FlushWTL:
			wtl.Inc()
		default:
			explicit.Inc()
		}
		bytes.Add(int64(batchBytes))
		if prev := last.Swap(int32(reason)); prev != int32(reason) && prev != -1 {
			scope.Events.Append(obs.Event{
				Kind:   obs.EventFlushReason,
				Detail: fmt.Sprintf("flush reason %s -> %s", rdma.FlushReason(prev), reason),
			})
		}
	}
}

// network builds the system's wire, wiring RDMA flush observability into
// the scope.
func (s System) network(o Options, scope *obs.Scope) (transport.Network, error) {
	kind := o.Transport
	if kind == TransportAuto {
		if s == Storm {
			kind = TransportTCP
		} else {
			kind = TransportRDMA
		}
	}
	switch kind {
	case TransportInproc:
		return transport.NewInprocNetwork(0), nil
	case TransportTCP:
		return transport.NewTCPNetwork(), nil
	case TransportRDMA:
		cfg := optimizedRDMAConfig(o)
		if s == RDMAStorm || s == WhaleWOC {
			cfg = basicRDMAConfig(o)
		}
		cfg.OnFlush = flushHook(scope)
		return transport.NewRDMANetwork(o.Cost, cfg), nil
	default:
		return nil, fmt.Errorf("core: unknown transport kind %d", kind)
	}
}

// EngineConfig assembles the dsps configuration (including the network and
// observability scope) for the system.
func (s System) EngineConfig(o Options) (dsps.Config, error) {
	o = o.withDefaults()
	scope := obs.NewScope(obs.Config{
		TraceSampleEvery: int(o.TraceSampleEvery),
		TraceKeep:        o.TraceKeep,
		EventCap:         o.EventCap,
	})
	net, err := s.network(o, scope)
	if err != nil {
		return dsps.Config{}, err
	}
	cfg := dsps.Config{
		Workers:            o.Workers,
		MaxWorkers:         o.MaxWorkers,
		Network:            net,
		TransferQueueCap:   o.TransferQueueCap,
		Control:            o.Control,
		MonitorInterval:    o.MonitorInterval,
		InitialDstar:       o.InitialDstar,
		FixedDstar:         o.FixedDstar,
		AckEnabled:         o.AckEnabled,
		Ackers:             o.Ackers,
		AckTimeout:         o.AckTimeout,
		MaxSpoutPending:    o.MaxSpoutPending,
		HeartbeatInterval:  o.HeartbeatInterval,
		SuspectAfter:       o.SuspectAfter,
		ConfirmAfter:       o.ConfirmAfter,
		CheckpointInterval: o.CheckpointInterval,
		CheckpointTimeout:  o.CheckpointTimeout,
		CheckpointStore:    o.CheckpointStore,
		Autoscale:          o.Autoscale,
		SendRetries:        o.SendRetries,
		SendRetryBase:      o.SendRetryBase,
		CreditWindow:       o.CreditWindow,
		LinkQueueCap:       o.LinkQueueCap,
		HighWaterline:      o.HighWaterline,
		LowWaterline:       o.LowWaterline,
		ShedPolicy:         o.ShedPolicy,
		PauseAfter:         o.PauseAfter,
		DegradedAfter:      o.DegradedAfter,
		CreditTimeout:      o.CreditTimeout,
		DrainTimeout:       o.DrainTimeout,
		Obs:                scope,
	}
	switch s {
	case Storm, RDMAStorm:
		cfg.Comm = dsps.InstanceOriented
		cfg.Multicast = dsps.MulticastStar
	case WhaleWOC, WhaleWOCRDMA, WhaleSequential:
		cfg.Comm = dsps.WorkerOriented
		cfg.Multicast = dsps.MulticastStar
	case RDMC:
		cfg.Comm = dsps.WorkerOriented
		cfg.Multicast = dsps.MulticastBinomial
	case Whale:
		cfg.Comm = dsps.WorkerOriented
		cfg.Multicast = dsps.MulticastNonBlocking
	default:
		return dsps.Config{}, fmt.Errorf("core: unknown system %d", s)
	}
	return cfg, nil
}

// Launch starts a topology under the system's configuration.
func (s System) Launch(topo *dsps.Topology, o Options) (*dsps.Engine, error) {
	cfg, err := s.EngineConfig(o)
	if err != nil {
		return nil, err
	}
	return dsps.Start(topo, cfg)
}
