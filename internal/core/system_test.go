package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"whale/internal/dsps"
	"whale/internal/tuple"
)

type oneShotSpout struct {
	n int
	i int
}

func (s *oneShotSpout) Open(*dsps.TaskContext) {}
func (s *oneShotSpout) Next(c *dsps.Collector) bool {
	if s.i >= s.n {
		return false
	}
	c.Emit(int64(s.i))
	s.i++
	return true
}
func (s *oneShotSpout) Close() {}

type countingBolt struct {
	counter *sync.Map
	ctx     *dsps.TaskContext
}

func (b *countingBolt) Prepare(ctx *dsps.TaskContext) { b.ctx = ctx }
func (b *countingBolt) Execute(tp *tuple.Tuple, _ *dsps.Collector) {
	v, _ := b.counter.LoadOrStore(b.ctx.TaskID, new(int64))
	*(v.(*int64))++
}
func (b *countingBolt) Cleanup() {}

func buildAllGroupingTopo(n int, counter *sync.Map, parallelism int) *dsps.Topology {
	b := dsps.NewTopologyBuilder()
	b.Spout("src", func() dsps.Spout { return &oneShotSpout{n: n} }, 1)
	b.Bolt("match", func() dsps.Bolt { return &countingBolt{counter: counter} }, parallelism).All("src")
	topo, err := b.Build()
	if err != nil {
		panic(err)
	}
	return topo
}

func TestSystemStrings(t *testing.T) {
	want := map[System]string{
		Storm: "Storm", RDMAStorm: "RDMA-Storm", WhaleWOC: "Whale-WOC",
		WhaleWOCRDMA: "Whale-WOC-RDMA", WhaleSequential: "Whale-Sequential",
		RDMC: "RDMC", Whale: "Whale",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d -> %q, want %q", int(s), s, w)
		}
	}
	if len(Systems) != 7 {
		t.Fatalf("Systems has %d entries", len(Systems))
	}
}

func TestEngineConfigShapes(t *testing.T) {
	o := Options{Workers: 4, Transport: TransportInproc}
	cases := []struct {
		sys  System
		comm dsps.CommMode
		mc   dsps.MulticastMode
	}{
		{Storm, dsps.InstanceOriented, dsps.MulticastStar},
		{RDMAStorm, dsps.InstanceOriented, dsps.MulticastStar},
		{WhaleWOC, dsps.WorkerOriented, dsps.MulticastStar},
		{WhaleWOCRDMA, dsps.WorkerOriented, dsps.MulticastStar},
		{WhaleSequential, dsps.WorkerOriented, dsps.MulticastStar},
		{RDMC, dsps.WorkerOriented, dsps.MulticastBinomial},
		{Whale, dsps.WorkerOriented, dsps.MulticastNonBlocking},
	}
	for _, c := range cases {
		cfg, err := c.sys.EngineConfig(o)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Comm != c.comm || cfg.Multicast != c.mc {
			t.Fatalf("%v: comm=%v mc=%v", c.sys, cfg.Comm, cfg.Multicast)
		}
		if cfg.Network == nil {
			t.Fatalf("%v: nil network", c.sys)
		}
		cfg.Network.Close()
	}
}

// TestEverySystemDeliversAllGrouping launches each preset end to end on its
// canonical transport and checks exactly-once delivery to every instance.
func TestEverySystemDeliversAllGrouping(t *testing.T) {
	const n, parallelism = 150, 8
	for _, sys := range Systems {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			var counter sync.Map
			topo := buildAllGroupingTopo(n, &counter, parallelism)
			opts := Options{
				Workers: 4,
				MMS:     8 << 10, WTL: 500 * time.Microsecond,
				InitialDstar: 2, FixedDstar: sys != Whale,
			}
			eng, err := sys.Launch(topo, opts)
			if err != nil {
				t.Fatal(err)
			}
			eng.WaitSpouts()
			if !eng.Drain(20 * time.Second) {
				eng.Stop()
				t.Fatal("drain failed")
			}
			eng.Stop()
			tasks := 0
			counter.Range(func(_, v any) bool {
				tasks++
				if got := *(v.(*int64)); got != n {
					t.Fatalf("a task received %d of %d", got, n)
				}
				return true
			})
			if tasks != parallelism {
				t.Fatalf("%d tasks heard from, want %d", tasks, parallelism)
			}
		})
	}
}

func TestLaunchErrors(t *testing.T) {
	var counter sync.Map
	topo := buildAllGroupingTopo(1, &counter, 2)
	if _, err := System(99).Launch(topo, Options{Transport: TransportInproc}); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := Whale.Launch(topo, Options{Transport: TransportKind(99)}); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if System(99).String() == "" {
		t.Fatal("unknown system must still render")
	}
	_ = fmt.Sprint(TransportAuto, TransportInproc, TransportTCP, TransportRDMA)
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers != 4 || o.MMS != 256<<10 || o.WTL != time.Millisecond {
		t.Fatalf("defaults: %+v", o)
	}
	if o.RingSize != 4<<20 || o.TransferQueueCap != 1024 || o.InitialDstar != 3 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.MonitorInterval != 10*time.Millisecond {
		t.Fatalf("defaults: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{Workers: 9, MMS: 512, InitialDstar: 7}.withDefaults()
	if o2.Workers != 9 || o2.MMS != 512 || o2.InitialDstar != 7 {
		t.Fatalf("overrides lost: %+v", o2)
	}
}

func TestAckingOptionsReachEngine(t *testing.T) {
	cfg, err := Whale.EngineConfig(Options{
		Transport: TransportInproc, AckEnabled: true, Ackers: 3,
		AckTimeout: 2 * time.Second, MaxSpoutPending: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cfg.Network.Close()
	if !cfg.AckEnabled || cfg.Ackers != 3 || cfg.AckTimeout != 2*time.Second || cfg.MaxSpoutPending != 7 {
		t.Fatalf("ack options lost: %+v", cfg)
	}
}
