package workload

import (
	"sync/atomic"
	"time"

	"whale/internal/dsps"
	"whale/internal/tuple"
	"whale/internal/window"
)

// Stream names in the stock-exchange topology.
const (
	StreamRecords = "records"
	StreamBuy     = "buy"
	StreamSell    = "sell"
	StreamTrades  = "trades"
)

// StockSpout emits exchange records on StreamRecords.
type StockSpout struct {
	gen   *StockGen
	limit *RateLimiter
	max   int64
	sent  int64
}

// NewStockSpoutFactory returns a spout factory; rate <= 0 means
// unthrottled, max <= 0 unbounded.
func NewStockSpoutFactory(cfg StockConfig, rate float64, max int64) func() dsps.Spout {
	return func() dsps.Spout {
		return &StockSpout{gen: NewStockGen(cfg), limit: NewRateLimiter(rate), max: max}
	}
}

// Open implements dsps.Spout.
func (s *StockSpout) Open(*dsps.TaskContext) {}

// Next implements dsps.Spout.
func (s *StockSpout) Next(c *dsps.Collector) bool {
	if s.max > 0 && s.sent >= s.max {
		return false
	}
	s.limit.Wait()
	sym, side, price, qty := s.gen.Next()
	c.EmitTo(StreamRecords, sym, side, price, qty)
	s.sent++
	return true
}

// Close implements dsps.Spout.
func (s *StockSpout) Close() {}

// SplitBolt filters records violating trading rules and divides the stream
// into a buying stream and a selling stream (paper §5.1).
type SplitBolt struct {
	// Filtered counts rejected records when non-nil.
	Filtered *atomic.Int64
}

// Prepare implements dsps.Bolt.
func (s *SplitBolt) Prepare(*dsps.TaskContext) {}

// Execute implements dsps.Bolt.
func (s *SplitBolt) Execute(tp *tuple.Tuple, c *dsps.Collector) {
	price, qty := tp.Float(2), tp.Int(3)
	if price <= 0 || qty <= 0 {
		if s.Filtered != nil {
			s.Filtered.Add(1)
		}
		return
	}
	if tp.StringAt(1) == SideBuy {
		c.EmitTo(StreamBuy, tp.Values...)
	} else {
		c.EmitTo(StreamSell, tp.Values...)
	}
}

// Cleanup implements dsps.Bolt.
func (s *SplitBolt) Cleanup() {}

// order is one resting order in a book.
type order struct {
	price float64
	qty   int64
}

// StockMatcherBolt joins the buy and sell streams per symbol: a buy
// matches the oldest resting sell with price <= bid (and vice versa),
// emitting executed trades on StreamTrades.
type StockMatcherBolt struct {
	buys  map[string][]order
	sells map[string][]order
}

// Prepare implements dsps.Bolt.
func (m *StockMatcherBolt) Prepare(*dsps.TaskContext) {
	m.buys = map[string][]order{}
	m.sells = map[string][]order{}
}

// Execute implements dsps.Bolt.
func (m *StockMatcherBolt) Execute(tp *tuple.Tuple, c *dsps.Collector) {
	sym := tp.StringAt(0)
	o := order{price: tp.Float(2), qty: tp.Int(3)}
	switch tp.Stream {
	case StreamBuy:
		o.qty = m.match(sym, o, m.sells, true, c)
		if o.qty > 0 {
			m.buys[sym] = append(m.buys[sym], o)
		}
	case StreamSell:
		o.qty = m.match(sym, o, m.buys, false, c)
		if o.qty > 0 {
			m.sells[sym] = append(m.sells[sym], o)
		}
	}
}

// match crosses the incoming order against the opposite book; isBuy says
// the incoming order is a buy. Executed quantity is emitted per fill; the
// incoming order's unfilled remainder is returned.
func (m *StockMatcherBolt) match(sym string, o order, book map[string][]order, isBuy bool, c *dsps.Collector) int64 {
	rest := book[sym]
	i := 0
	for ; i < len(rest) && o.qty > 0; i++ {
		r := &rest[i]
		crosses := (isBuy && r.price <= o.price) || (!isBuy && r.price >= o.price)
		if !crosses {
			break
		}
		exec := o.qty
		if r.qty < exec {
			exec = r.qty
		}
		o.qty -= exec
		r.qty -= exec
		c.EmitTo(StreamTrades, sym, r.price, exec)
		if r.qty > 0 {
			break
		}
	}
	// Drop fully filled resting orders.
	n := 0
	for _, r := range rest[:i] {
		if r.qty > 0 {
			rest[n] = r
			n++
		}
	}
	book[sym] = append(rest[:n], rest[i:]...)
	return o.qty
}

// Cleanup implements dsps.Bolt.
func (m *StockMatcherBolt) Cleanup() {}

// VolumeBolt computes real-time trading volume per symbol.
type VolumeBolt struct {
	// Volume accumulates total executed quantity when non-nil.
	Volume *atomic.Int64
	// Trades counts executions when non-nil.
	Trades *atomic.Int64
	local  map[string]int64
}

// Prepare implements dsps.Bolt.
func (v *VolumeBolt) Prepare(*dsps.TaskContext) { v.local = map[string]int64{} }

// Execute implements dsps.Bolt.
func (v *VolumeBolt) Execute(tp *tuple.Tuple, _ *dsps.Collector) {
	qty := tp.Int(2)
	v.local[tp.StringAt(0)] += qty
	if v.Volume != nil {
		v.Volume.Add(qty)
	}
	if v.Trades != nil {
		v.Trades.Add(1)
	}
}

// Cleanup implements dsps.Bolt.
func (v *VolumeBolt) Cleanup() {}

// StockTopologyConfig assembles the §5.1 stock-exchange application.
type StockTopologyConfig struct {
	Gen StockConfig
	// Splitters, Matchers, Aggregators are operator parallelisms.
	Splitters, Matchers, Aggregators int
	// Rate throttles the spout (0 = full speed); Max bounds it.
	Rate float64
	Max  int64
	// Counters (optional).
	Filtered, Volume, Trades *atomic.Int64
	// BroadcastRequests switches the matcher's input grouping to all
	// grouping (the one-to-many configuration used in the paper's
	// benchmark topologies; key grouping is the classical deployment).
	BroadcastToMatchers bool
	// WindowWidth, when set with OnWindow, adds a windowed-volume operator
	// reporting per-tumbling-window trading volume.
	WindowWidth time.Duration
	OnWindow    func(start, end, volume int64)
}

// BuildStockTopology builds: spout -> split (shuffle) -> matcher
// (buy/sell streams, fields- or all-grouped) -> volume aggregator.
func BuildStockTopology(cfg StockTopologyConfig) (*dsps.Topology, error) {
	if cfg.Splitters <= 0 {
		cfg.Splitters = 2
	}
	if cfg.Matchers <= 0 {
		cfg.Matchers = 4
	}
	if cfg.Aggregators <= 0 {
		cfg.Aggregators = 2
	}
	b := dsps.NewTopologyBuilder()
	b.Spout("records-src", NewStockSpoutFactory(cfg.Gen, cfg.Rate, cfg.Max), 1)
	b.Bolt("split", func() dsps.Bolt { return &SplitBolt{Filtered: cfg.Filtered} }, cfg.Splitters).
		ShuffleStream("records-src", StreamRecords)
	md := b.Bolt("matcher", func() dsps.Bolt { return &StockMatcherBolt{} }, cfg.Matchers)
	if cfg.BroadcastToMatchers {
		md.AllStream("split", StreamBuy).AllStream("split", StreamSell)
	} else {
		md.FieldsStream("split", StreamBuy, 0).FieldsStream("split", StreamSell, 0)
	}
	b.Bolt("volume", func() dsps.Bolt { return &VolumeBolt{Volume: cfg.Volume, Trades: cfg.Trades} }, cfg.Aggregators).
		FieldsStream("matcher", StreamTrades, 0)
	if cfg.WindowWidth > 0 && cfg.OnWindow != nil {
		b.Bolt("windowed-volume", func() dsps.Bolt {
			return &WindowedVolumeBolt{Width: cfg.WindowWidth, OnWindow: cfg.OnWindow}
		}, 1).FieldsStream("matcher", StreamTrades, 0).
			TickEvery(cfg.WindowWidth)
	}
	return b.Build()
}

// WindowedVolumeBolt computes trading volume per tumbling processing-time
// window — the "real-time trading volume" the paper's aggregation operator
// reports, bounded in state by the window substrate.
type WindowedVolumeBolt struct {
	// Width is the tumbling window length (default 100ms).
	Width time.Duration
	// OnWindow receives each fired window's total volume (called on the
	// executor goroutine).
	OnWindow func(start, end int64, volume int64)

	buf *window.Buffer[int64]
}

// Prepare implements dsps.Bolt.
func (v *WindowedVolumeBolt) Prepare(*dsps.TaskContext) {
	if v.Width <= 0 {
		v.Width = 100 * time.Millisecond
	}
	v.buf = window.NewBuffer[int64](window.Tumbling{Width: v.Width}, 0)
}

// Execute implements dsps.Bolt. Tick tuples (dsps.StreamTick) only advance
// the watermark, so windows fire on time even when trading pauses.
func (v *WindowedVolumeBolt) Execute(tp *tuple.Tuple, _ *dsps.Collector) {
	now := time.Now().UnixNano()
	if tp.Stream != dsps.StreamTick {
		v.buf.Add(now, tp.Int(2))
	}
	for _, f := range v.buf.Advance(now - v.Width.Nanoseconds()/10) {
		v.fire(f)
	}
}

func (v *WindowedVolumeBolt) fire(f window.Fired[int64]) {
	var sum int64
	for _, q := range f.Items {
		sum += q
	}
	if v.OnWindow != nil {
		v.OnWindow(f.Start, f.End, sum)
	}
}

// Cleanup implements dsps.Bolt: it flushes open windows.
func (v *WindowedVolumeBolt) Cleanup() {
	for _, f := range v.buf.Advance(1 << 62) {
		v.fire(f)
	}
}
