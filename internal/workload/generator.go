// Package workload provides the synthetic stand-ins for the paper's two
// datasets (Table 2) and the two evaluation applications (§5.1):
//
//   - a ride-hailing workload shaped like the Didi Gaia trace: driver
//     location updates (random walks over a city bounding box, Zipf-skewed
//     driver activity) and passenger requests;
//   - a stock-exchange workload shaped like the NASDAQ trace: buy/sell
//     records over 6,649 symbols with per-symbol price walks.
//
// The real traces are proprietary/paywalled; the generators reproduce the
// properties the evaluation actually depends on — tuple sizes, key
// cardinalities and arrival processes (see DESIGN.md substitutions).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// City bounding box for the ride-hailing workload (roughly Chengdu, the
// Didi Gaia coverage area).
const (
	LatMin, LatMax = 30.4, 30.9
	LonMin, LonMax = 103.8, 104.3
)

// RideConfig parameterises the ride-hailing generator.
type RideConfig struct {
	// Drivers is the driver population (the full trace has 6M; scale to
	// taste).
	Drivers int
	// ZipfS skews driver activity (s > 1; default 1.2).
	ZipfS float64
	// Seed makes the stream deterministic.
	Seed int64
}

func (c RideConfig) withDefaults() RideConfig {
	if c.Drivers <= 0 {
		c.Drivers = 10000
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RideGen generates driver locations and passenger requests.
type RideGen struct {
	cfg  RideConfig
	rng  *rand.Rand
	zipf *rand.Zipf
	lat  []float64
	lon  []float64
	reqs int64
	locs int64
}

// NewRideGen seeds a generator with every driver at a random position.
func NewRideGen(cfg RideConfig) *RideGen {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &RideGen{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Drivers-1)),
		lat:  make([]float64, cfg.Drivers),
		lon:  make([]float64, cfg.Drivers),
	}
	for i := range g.lat {
		g.lat[i] = LatMin + rng.Float64()*(LatMax-LatMin)
		g.lon[i] = LonMin + rng.Float64()*(LonMax-LonMin)
	}
	return g
}

// DriverID formats driver i's key.
func DriverID(i int) string { return fmt.Sprintf("drv-%06d", i) }

// NextLocation returns one location update: (driverID, lat, lon). The
// driver is Zipf-picked (hot drivers update often) and random-walks ~100m.
func (g *RideGen) NextLocation() (driverID string, lat, lon float64) {
	i := int(g.zipf.Uint64())
	g.lat[i] = clamp(g.lat[i]+g.rng.NormFloat64()*0.001, LatMin, LatMax)
	g.lon[i] = clamp(g.lon[i]+g.rng.NormFloat64()*0.001, LonMin, LonMax)
	g.locs++
	return DriverID(i), g.lat[i], g.lon[i]
}

// NextRequest returns one passenger request: (requestID, lat, lon).
func (g *RideGen) NextRequest() (requestID int64, lat, lon float64) {
	g.reqs++
	return g.reqs, LatMin + g.rng.Float64()*(LatMax-LatMin), LonMin + g.rng.Float64()*(LonMax-LonMin)
}

// Counts returns generated (locations, requests).
func (g *RideGen) Counts() (locations, requests int64) { return g.locs, g.reqs }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Haversine returns the great-circle distance in kilometres.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const r = 6371.0
	toRad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := toRad(lat2 - lat1)
	dLon := toRad(lon2 - lon1)
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(toRad(lat1))*math.Cos(toRad(lat2))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * r * math.Asin(math.Sqrt(a))
}

// StockConfig parameterises the stock-exchange generator.
type StockConfig struct {
	// Symbols is the symbol universe (the NASDAQ trace has 6,649).
	Symbols int
	// Seed makes the stream deterministic.
	Seed int64
	// InvalidFrac injects records violating trading rules (filtered by the
	// split operator); default 2%.
	InvalidFrac float64
}

func (c StockConfig) withDefaults() StockConfig {
	if c.Symbols <= 0 {
		c.Symbols = 6649
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.InvalidFrac == 0 {
		c.InvalidFrac = 0.02
	}
	return c
}

// Sides of a stock record.
const (
	SideBuy  = "B"
	SideSell = "S"
)

// StockGen generates exchange records with per-symbol price walks.
type StockGen struct {
	cfg    StockConfig
	rng    *rand.Rand
	zipf   *rand.Zipf
	prices []float64
	count  int64
}

// NewStockGen seeds a generator with prices in [10, 510).
func NewStockGen(cfg StockConfig) *StockGen {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &StockGen{
		cfg:    cfg,
		rng:    rng,
		zipf:   rand.NewZipf(rng, 1.1, 1, uint64(cfg.Symbols-1)),
		prices: make([]float64, cfg.Symbols),
	}
	for i := range g.prices {
		g.prices[i] = 10 + rng.Float64()*500
	}
	return g
}

// Symbol formats symbol i's ticker.
func Symbol(i int) string { return fmt.Sprintf("SYM%04d", i) }

// Next returns one exchange record: (symbol, side, price, qty). Roughly
// InvalidFrac of records violate trading rules (non-positive price or
// quantity) and must be filtered by the split operator.
func (g *StockGen) Next() (symbol, side string, price float64, qty int64) {
	g.count++
	i := int(g.zipf.Uint64())
	g.prices[i] = math.Max(1, g.prices[i]*(1+g.rng.NormFloat64()*0.001))
	side = SideBuy
	if g.rng.Intn(2) == 1 {
		side = SideSell
	}
	price = g.prices[i]
	qty = int64(1 + g.rng.Intn(500))
	if g.rng.Float64() < g.cfg.InvalidFrac {
		if g.rng.Intn(2) == 0 {
			price = 0
		} else {
			qty = -qty
		}
	}
	return Symbol(i), side, price, qty
}

// Count returns the number of generated records.
func (g *StockGen) Count() int64 { return g.count }

// DatasetStats is one Table 2 row.
type DatasetStats struct {
	Name   string
	Tuples int64
	Keys   int64
}

// Table2 reports the paper's dataset statistics alongside what the
// generators are configured to produce.
func Table2(ride RideConfig, stock StockConfig) []DatasetStats {
	ride = ride.withDefaults()
	stock = stock.withDefaults()
	return []DatasetStats{
		{Name: "Didi Orders (paper)", Tuples: 13_000_000_000, Keys: 6_000_000},
		{Name: "Nasdaq Stock (paper)", Tuples: 274_000_000, Keys: 6_649},
		{Name: "Synthetic ride-hailing (this repo)", Tuples: -1, Keys: int64(ride.Drivers)},
		{Name: "Synthetic stock (this repo)", Tuples: -1, Keys: int64(stock.Symbols)},
	}
}
