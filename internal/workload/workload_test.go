package workload

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whale/internal/dsps"
	"whale/internal/transport"
	"whale/internal/tuple"
)

func TestRideGenDeterministicAndBounded(t *testing.T) {
	a := NewRideGen(RideConfig{Drivers: 100, Seed: 5})
	b := NewRideGen(RideConfig{Drivers: 100, Seed: 5})
	for i := 0; i < 1000; i++ {
		ida, lata, lona := a.NextLocation()
		idb, latb, lonb := b.NextLocation()
		if ida != idb || lata != latb || lona != lonb {
			t.Fatal("same seed diverged")
		}
		if lata < LatMin || lata > LatMax || lona < LonMin || lona > LonMax {
			t.Fatalf("location out of bounds: %f,%f", lata, lona)
		}
	}
	locs, reqs := a.Counts()
	if locs != 1000 || reqs != 0 {
		t.Fatalf("counts %d/%d", locs, reqs)
	}
	id, lat, lon := a.NextRequest()
	if id != 1 || lat < LatMin || lon < LonMin {
		t.Fatalf("request %d %f %f", id, lat, lon)
	}
}

func TestRideGenZipfSkew(t *testing.T) {
	g := NewRideGen(RideConfig{Drivers: 1000, Seed: 7})
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		id, _, _ := g.NextLocation()
		counts[id]++
	}
	// Zipf: the hottest driver must be far above the mean.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5*(20000/len(counts)) {
		t.Fatalf("no skew: max %d over %d keys", max, len(counts))
	}
}

func TestHaversine(t *testing.T) {
	// One degree of latitude is ~111 km.
	d := Haversine(30.0, 104.0, 31.0, 104.0)
	if math.Abs(d-111) > 1.5 {
		t.Fatalf("1 degree lat = %f km", d)
	}
	if Haversine(30, 104, 30, 104) != 0 {
		t.Fatal("zero distance broken")
	}
}

func TestStockGen(t *testing.T) {
	g := NewStockGen(StockConfig{Symbols: 500, Seed: 3, InvalidFrac: 0.1})
	syms := map[string]bool{}
	invalid := 0
	for i := 0; i < 10000; i++ {
		sym, side, price, qty := g.Next()
		syms[sym] = true
		if side != SideBuy && side != SideSell {
			t.Fatalf("side %q", side)
		}
		if price <= 0 || qty <= 0 {
			invalid++
		}
	}
	if g.Count() != 10000 {
		t.Fatalf("count %d", g.Count())
	}
	if len(syms) < 50 {
		t.Fatalf("only %d symbols seen", len(syms))
	}
	if invalid < 500 || invalid > 1500 {
		t.Fatalf("invalid records %d, want ~1000", invalid)
	}
}

func TestStockGenNegativeFracDisables(t *testing.T) {
	g := NewStockGen(StockConfig{Symbols: 10, Seed: 3, InvalidFrac: -1})
	for i := 0; i < 1000; i++ {
		_, _, price, qty := g.Next()
		if price <= 0 || qty <= 0 {
			t.Fatal("invalid record with InvalidFrac < 0")
		}
	}
}

func TestTable2(t *testing.T) {
	rows := Table2(RideConfig{}, StockConfig{})
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Tuples != 13_000_000_000 || rows[1].Keys != 6_649 {
		t.Fatalf("paper rows wrong: %+v", rows[:2])
	}
}

func TestRateLimiterPacing(t *testing.T) {
	l := NewRateLimiter(2000) // 2k/s -> 100 events in ~50ms
	t0 := time.Now()
	for i := 0; i < 100; i++ {
		l.Wait()
	}
	el := time.Since(t0)
	if el < 30*time.Millisecond {
		t.Fatalf("100 events at 2k/s took only %v", el)
	}
	// Unlimited limiter must not sleep.
	u := NewRateLimiter(0)
	t0 = time.Now()
	for i := 0; i < 100000; i++ {
		u.Wait()
	}
	if time.Since(t0) > 100*time.Millisecond {
		t.Fatal("unlimited limiter slept")
	}
}

func TestRideTopologyEndToEnd(t *testing.T) {
	var matched, unmatched atomic.Int64
	topo, err := BuildRideTopology(RideTopologyConfig{
		Gen:          RideConfig{Drivers: 300, Seed: 2},
		Matchers:     6,
		MaxLocations: 2000,
		MaxRequests:  300,
		Matched:      &matched,
		Unmatched:    &unmatched,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dsps.Start(topo, dsps.Config{
		Workers: 3, Network: transport.NewInprocNetwork(0),
		Comm: dsps.WorkerOriented, Multicast: dsps.MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	if !eng.Drain(20 * time.Second) {
		eng.Stop()
		t.Fatal("drain failed")
	}
	eng.Stop()
	total := matched.Load() + unmatched.Load()
	if total != 300 {
		t.Fatalf("finalized %d of 300 requests (matched %d, unmatched %d)",
			total, matched.Load(), unmatched.Load())
	}
	if matched.Load() == 0 {
		t.Fatal("no request matched any driver; join is broken")
	}
}

func TestStockTopologyEndToEnd(t *testing.T) {
	var filtered, volume, trades atomic.Int64
	topo, err := BuildStockTopology(StockTopologyConfig{
		Gen:      StockConfig{Symbols: 50, Seed: 4, InvalidFrac: 0.05},
		Matchers: 4,
		Max:      5000,
		Filtered: &filtered, Volume: &volume, Trades: &trades,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dsps.Start(topo, dsps.Config{
		Workers: 2, Network: transport.NewInprocNetwork(0), Comm: dsps.WorkerOriented,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	if !eng.Drain(20 * time.Second) {
		eng.Stop()
		t.Fatal("drain failed")
	}
	eng.Stop()
	if filtered.Load() == 0 {
		t.Fatal("split never filtered an invalid record")
	}
	if trades.Load() == 0 || volume.Load() == 0 {
		t.Fatalf("no trades executed (trades=%d volume=%d)", trades.Load(), volume.Load())
	}
}

func TestStockTopologyBroadcastVariant(t *testing.T) {
	var volume, trades atomic.Int64
	topo, err := BuildStockTopology(StockTopologyConfig{
		Gen:                 StockConfig{Symbols: 20, Seed: 4},
		Matchers:            4,
		Max:                 2000,
		Volume:              &volume,
		Trades:              &trades,
		BroadcastToMatchers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dsps.Start(topo, dsps.Config{
		Workers: 2, Network: transport.NewInprocNetwork(0),
		Comm: dsps.WorkerOriented, Multicast: dsps.MulticastBinomial,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	if !eng.Drain(20 * time.Second) {
		eng.Stop()
		t.Fatal("drain failed")
	}
	eng.Stop()
	if trades.Load() == 0 {
		t.Fatal("broadcast variant executed no trades")
	}
}

// TestStockMatcherCrossingLogic unit-tests the order book directly.
func TestStockMatcherCrossingLogic(t *testing.T) {
	m := &StockMatcherBolt{}
	m.Prepare(nil)
	var tradesOut []int64
	collector := newTestCollector(func(tp []tuple.Value) {
		tradesOut = append(tradesOut, tp[2].(int64))
	})
	// A resting sell at 100 x 10.
	m.Execute(&tuple.Tuple{Stream: StreamSell, Values: []tuple.Value{"X", SideSell, 100.0, int64(10)}}, collector)
	if len(tradesOut) != 0 {
		t.Fatal("sell into empty book traded")
	}
	// A buy at 99 must not cross.
	m.Execute(&tuple.Tuple{Stream: StreamBuy, Values: []tuple.Value{"X", SideBuy, 99.0, int64(5)}}, collector)
	if len(tradesOut) != 0 {
		t.Fatal("non-crossing buy traded")
	}
	// A buy at 101 crosses for 10 (filling the sell) even though it wants 12.
	m.Execute(&tuple.Tuple{Stream: StreamBuy, Values: []tuple.Value{"X", SideBuy, 101.0, int64(12)}}, collector)
	if len(tradesOut) != 1 || tradesOut[0] != 10 {
		t.Fatalf("trades %v, want [10]", tradesOut)
	}
	// A sell at 98 crosses the resting buy remainder (2) and the earlier 99 buy (5).
	m.Execute(&tuple.Tuple{Stream: StreamSell, Values: []tuple.Value{"X", SideSell, 98.0, int64(10)}}, collector)
	var sum int64
	for _, q := range tradesOut[1:] {
		sum += q
	}
	if sum != 7 {
		t.Fatalf("crossing sell executed %d, want 7 (trades %v)", sum, tradesOut)
	}
}

// testCollector builds a real dsps.Collector is impossible outside the
// engine; instead exercise matcher logic through a tiny shim topology.
func newTestCollector(sink func([]tuple.Value)) *dsps.Collector {
	return dsps.NewTestCollector(func(stream string, values []tuple.Value) {
		if stream == StreamTrades {
			sink(values)
		}
	})
}

func TestWindowedVolumeBolt(t *testing.T) {
	type win struct{ start, end, vol int64 }
	var mu sync.Mutex
	var wins []win
	b := &WindowedVolumeBolt{
		Width: 20 * time.Millisecond,
		OnWindow: func(s, e, v int64) {
			mu.Lock()
			wins = append(wins, win{s, e, v})
			mu.Unlock()
		},
	}
	b.Prepare(nil)
	mk := func(qty int64) *tuple.Tuple {
		return &tuple.Tuple{Stream: StreamTrades, Values: []tuple.Value{"X", 10.0, qty}}
	}
	b.Execute(mk(5), nil)
	b.Execute(mk(7), nil)
	time.Sleep(30 * time.Millisecond)
	b.Execute(mk(11), nil) // lands in a later window; fires the first
	b.Cleanup()            // flushes the rest
	mu.Lock()
	defer mu.Unlock()
	var total int64
	for _, w := range wins {
		if w.end-w.start != (20 * time.Millisecond).Nanoseconds() {
			t.Fatalf("window span %d", w.end-w.start)
		}
		total += w.vol
	}
	if total != 23 {
		t.Fatalf("windowed volume %d, want 23 (windows %v)", total, wins)
	}
}
