package workload

import (
	"math"
	"sync/atomic"
	"time"

	"whale/internal/dsps"
	"whale/internal/tuple"
)

// Stream names in the ride-hailing topology.
const (
	StreamLocations = "locations"
	StreamRequests  = "requests"
	StreamMatches   = "matches"
)

// LocationSpout emits driver location updates on StreamLocations.
type LocationSpout struct {
	gen   *RideGen
	limit *RateLimiter
	max   int64
	sent  int64
}

// NewLocationSpoutFactory returns a spout factory. rate <= 0 means
// unthrottled; max <= 0 means unbounded.
func NewLocationSpoutFactory(cfg RideConfig, rate float64, max int64) func() dsps.Spout {
	return func() dsps.Spout {
		return &LocationSpout{gen: NewRideGen(cfg), limit: NewRateLimiter(rate), max: max}
	}
}

// Open implements dsps.Spout.
func (s *LocationSpout) Open(*dsps.TaskContext) {}

// Next implements dsps.Spout.
func (s *LocationSpout) Next(c *dsps.Collector) bool {
	if s.max > 0 && s.sent >= s.max {
		return false
	}
	s.limit.Wait()
	id, lat, lon := s.gen.NextLocation()
	c.EmitTo(StreamLocations, id, lat, lon)
	s.sent++
	return true
}

// Close implements dsps.Spout.
func (s *LocationSpout) Close() {}

// RequestSpout emits passenger requests on StreamRequests (the broadcast
// stream whose one-to-many partitioning the paper studies).
type RequestSpout struct {
	gen   *RideGen
	limit *RateLimiter
	max   int64
	sent  int64
}

// NewRequestSpoutFactory returns a spout factory.
func NewRequestSpoutFactory(cfg RideConfig, rate float64, max int64) func() dsps.Spout {
	return func() dsps.Spout {
		return &RequestSpout{gen: NewRideGen(cfg), limit: NewRateLimiter(rate), max: max}
	}
}

// Open implements dsps.Spout.
func (s *RequestSpout) Open(*dsps.TaskContext) {}

// Next implements dsps.Spout.
func (s *RequestSpout) Next(c *dsps.Collector) bool {
	if s.max > 0 && s.sent >= s.max {
		return false
	}
	s.limit.Wait()
	id, lat, lon := s.gen.NextRequest()
	c.EmitTo(StreamRequests, id, lat, lon)
	s.sent++
	return true
}

// Close implements dsps.Spout.
func (s *RequestSpout) Close() {}

// MatcherBolt is the matching operator: it stores the key-grouped driver
// locations it owns and, for every broadcast request, reports its best
// local candidate on StreamMatches (requestID, driverID, distanceKM). A
// request with no local candidate still emits a marker so the aggregator
// can finalize (driverID "", distance +Inf).
type MatcherBolt struct {
	// RadiusKM bounds the match search (default 5 km).
	RadiusKM float64
	drivers  map[string][2]float64
	executed atomic.Int64
}

// Prepare implements dsps.Bolt.
func (m *MatcherBolt) Prepare(*dsps.TaskContext) {
	m.drivers = map[string][2]float64{}
	if m.RadiusKM <= 0 {
		m.RadiusKM = 5
	}
}

// Execute implements dsps.Bolt.
func (m *MatcherBolt) Execute(tp *tuple.Tuple, c *dsps.Collector) {
	m.executed.Add(1)
	switch tp.Stream {
	case StreamLocations:
		m.drivers[tp.StringAt(0)] = [2]float64{tp.Float(1), tp.Float(2)}
	case StreamRequests:
		reqID, lat, lon := tp.Int(0), tp.Float(1), tp.Float(2)
		bestID, bestDist := "", math.Inf(1)
		for id, pos := range m.drivers {
			d := Haversine(lat, lon, pos[0], pos[1])
			if d <= m.RadiusKM && d < bestDist {
				bestID, bestDist = id, d
			}
		}
		c.EmitTo(StreamMatches, reqID, bestID, bestDist)
	}
}

// Cleanup implements dsps.Bolt.
func (m *MatcherBolt) Cleanup() {}

// AggregatorBolt collects per-request candidates from all matchers and
// selects the closest driver once every matcher has reported.
type AggregatorBolt struct {
	matchers int
	best     map[int64]matchState
	// Matched counts requests that found a driver; Unmatched those that
	// did not. Exposed through pointers shared by the factory so tests and
	// examples can read totals after shutdown.
	Matched   *atomic.Int64
	Unmatched *atomic.Int64
}

type matchState struct {
	reports int
	driver  string
	dist    float64
}

// NewAggregatorFactory returns a factory for aggregators expecting reports
// from `matchers` instances per request.
func NewAggregatorFactory(matchers int, matched, unmatched *atomic.Int64) func() dsps.Bolt {
	return func() dsps.Bolt {
		return &AggregatorBolt{matchers: matchers, Matched: matched, Unmatched: unmatched}
	}
}

// Prepare implements dsps.Bolt.
func (a *AggregatorBolt) Prepare(*dsps.TaskContext) { a.best = map[int64]matchState{} }

// Execute implements dsps.Bolt.
func (a *AggregatorBolt) Execute(tp *tuple.Tuple, _ *dsps.Collector) {
	reqID := tp.Int(0)
	st := a.best[reqID]
	st.reports++
	if id, dist := tp.StringAt(1), tp.Float(2); id != "" && (st.driver == "" || dist < st.dist) {
		st.driver, st.dist = id, dist
	}
	if st.reports >= a.matchers {
		if st.driver != "" {
			if a.Matched != nil {
				a.Matched.Add(1)
			}
		} else if a.Unmatched != nil {
			a.Unmatched.Add(1)
		}
		delete(a.best, reqID)
	} else {
		a.best[reqID] = st
	}
}

// Cleanup implements dsps.Bolt.
func (a *AggregatorBolt) Cleanup() {}

// RideTopologyConfig assembles the §5.1 ride-hailing application.
type RideTopologyConfig struct {
	Gen RideConfig
	// Matchers is the matching operator's parallelism (the paper's swept
	// variable).
	Matchers int
	// Aggregators is the aggregation parallelism (default 2).
	Aggregators int
	// LocationRate / RequestRate throttle the spouts (tuples/s, 0 = full
	// speed); MaxLocations / MaxRequests bound them (0 = unbounded).
	LocationRate, RequestRate float64
	MaxLocations, MaxRequests int64
	// Matched/Unmatched receive final counts when non-nil.
	Matched, Unmatched *atomic.Int64
}

// BuildRideTopology builds the ride-hailing DAG: a location spout
// (key-grouped to matchers), a request spout (all-grouped to matchers —
// the one-to-many edge), matchers, and aggregators keyed by request id.
func BuildRideTopology(cfg RideTopologyConfig) (*dsps.Topology, error) {
	if cfg.Matchers <= 0 {
		cfg.Matchers = 4
	}
	if cfg.Aggregators <= 0 {
		cfg.Aggregators = 2
	}
	b := dsps.NewTopologyBuilder()
	b.Spout("locations-src", NewLocationSpoutFactory(cfg.Gen, cfg.LocationRate, cfg.MaxLocations), 1)
	b.Spout("requests-src", NewRequestSpoutFactory(cfg.Gen, cfg.RequestRate, cfg.MaxRequests), 1)
	b.Bolt("matcher", func() dsps.Bolt { return &MatcherBolt{} }, cfg.Matchers).
		FieldsStream("locations-src", StreamLocations, 0).
		AllStream("requests-src", StreamRequests)
	b.Bolt("aggregator", NewAggregatorFactory(cfg.Matchers, cfg.Matched, cfg.Unmatched), cfg.Aggregators).
		FieldsStream("matcher", StreamMatches, 0)
	return b.Build()
}

// RateLimiter paces emissions to a fixed rate, or a time-varying profile.
// The profile clock (born) is fixed at the first Wait and never adjusted;
// pacing advances a separate cursor (next), so rate changes neither burst
// nor distort the profile's notion of elapsed time.
type RateLimiter struct {
	born time.Time
	next time.Time
	rate func(elapsed time.Duration) float64
}

// NewRateLimiter returns a fixed-rate limiter; rate <= 0 disables pacing.
func NewRateLimiter(rate float64) *RateLimiter {
	if rate <= 0 {
		return &RateLimiter{}
	}
	return &RateLimiter{rate: func(time.Duration) float64 { return rate }}
}

// NewProfileLimiter paces to a time-varying rate profile.
func NewProfileLimiter(profile func(elapsed time.Duration) float64) *RateLimiter {
	return &RateLimiter{rate: profile}
}

// Wait blocks until the next emission is due.
func (l *RateLimiter) Wait() {
	if l.rate == nil {
		return
	}
	now := time.Now()
	if l.born.IsZero() {
		l.born, l.next = now, now
	}
	r := l.rate(now.Sub(l.born))
	if r <= 0 {
		time.Sleep(time.Millisecond)
		return
	}
	// If the caller stalled (backpressure) the cursor may be far in the
	// past; resume from now instead of bursting the backlog.
	if l.next.Before(now.Add(-100 * time.Millisecond)) {
		l.next = now
	}
	if d := l.next.Sub(now); d > 0 {
		time.Sleep(d)
	}
	l.next = l.next.Add(time.Duration(float64(time.Second) / r))
}
