package rdma

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func ringPair(t *testing.T, ringSize int) (prod *Ring, cons *RemoteRing, cq *CQ) {
	t.Helper()
	f := NewFabric(CostModel{})
	da, _ := f.NewDevice("prod")
	db, _ := f.NewDevice("cons")
	pdA, pdB := da.AllocPD(), db.AllocPD()
	mr, err := RegisterMemory(pdA, ringSize, AccessRemoteRead|AccessRemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	prod, err = NewRing(mr)
	if err != nil {
		t.Fatal(err)
	}
	stage, _ := RegisterMemory(pdB, ringSize, AccessLocalWrite)
	cq = NewCQ(64)
	qpB := CreateQP(pdB, cq, NewCQ(1), QPCap{})
	qpA := CreateQP(pdA, NewCQ(1), NewCQ(1), QPCap{})
	if err := ConnectPair(qpA, qpB); err != nil {
		t.Fatal(err)
	}
	cons, err = NewRemoteRing(qpB, stage, mr.RKey(), prod.DataSize())
	if err != nil {
		t.Fatal(err)
	}
	return prod, cons, cq
}

func TestRingAppendPollRoundTrip(t *testing.T) {
	prod, cons, cq := ringPair(t, 4096)
	msgs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma-gamma")}
	for _, m := range msgs {
		if err := prod.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	n, err := cons.Poll(cq, func(f []byte) { got = append(got, append([]byte(nil), f...)) })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(got) != 3 {
		t.Fatalf("polled %d frames", n)
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("frame %d: %q != %q", i, got[i], msgs[i])
		}
	}
	// Idle poll returns zero.
	if n, err := cons.Poll(cq, func([]byte) {}); err != nil || n != 0 {
		t.Fatalf("idle poll: %d, %v", n, err)
	}
}

func TestRingTailFeedbackFreesSpace(t *testing.T) {
	prod, cons, cq := ringPair(t, 16+128) // tiny 128-byte data area
	frame := make([]byte, 50)
	if err := prod.Append(frame); err != nil {
		t.Fatal(err)
	}
	if err := prod.Append(frame); err != nil {
		t.Fatal(err)
	}
	// 2*(50+4)=108 used, 20 free: third append must fail.
	if err := prod.Append(frame); err != ErrRingFull {
		t.Fatalf("expected ErrRingFull, got %v", err)
	}
	// Consuming frees space (the consumer WRITEs the tail back).
	if _, err := cons.Poll(cq, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := prod.Append(frame); err != nil {
		t.Fatalf("append after consume: %v", err)
	}
}

func TestRingWrapAround(t *testing.T) {
	prod, cons, cq := ringPair(t, 16+256)
	r := rand.New(rand.NewSource(5))
	var sent, recv [][]byte
	for round := 0; round < 200; round++ {
		frame := make([]byte, 1+r.Intn(60))
		r.Read(frame)
		if err := prod.Append(frame); err == ErrRingFull {
			if _, err := cons.Poll(cq, func(f []byte) { recv = append(recv, append([]byte(nil), f...)) }); err != nil {
				t.Fatal(err)
			}
			if err := prod.Append(frame); err != nil {
				t.Fatal(err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
		sent = append(sent, frame)
	}
	if _, err := cons.Poll(cq, func(f []byte) { recv = append(recv, append([]byte(nil), f...)) }); err != nil {
		t.Fatal(err)
	}
	if len(recv) != len(sent) {
		t.Fatalf("received %d of %d frames", len(recv), len(sent))
	}
	for i := range sent {
		if !bytes.Equal(sent[i], recv[i]) {
			t.Fatalf("frame %d corrupted across wrap", i)
		}
	}
}

// TestRingExactlyFullOccupancy drives the ring to precisely zero free
// bytes with the last frame wrapping the data area, and verifies the
// full/empty ambiguity is resolved correctly: Occupancy reports the whole
// data area, the next append (even an empty frame) fails with ErrRingFull,
// and the wrapped frames survive a Poll byte-identical.
func TestRingExactlyFullOccupancy(t *testing.T) {
	prod, cons, cq := ringPair(t, 16+128) // 128-byte data area
	// Offset head/tail by one consumed frame so the fill below wraps.
	first := make([]byte, 20)
	for i := range first {
		first[i] = 0x10 + byte(i)
	}
	if err := prod.Append(first); err != nil {
		t.Fatal(err)
	}
	if n, err := cons.Poll(cq, func([]byte) {}); err != nil || n != 1 {
		t.Fatalf("offset poll: %d, %v", n, err)
	}
	// head = tail = 24. Two 60-byte frames are 2*(4+60) = 128 bytes: an
	// exact fill, with the second frame's bytes crossing the wrap point.
	frames := [][]byte{make([]byte, 60), make([]byte, 60)}
	for fi, f := range frames {
		for i := range f {
			f[i] = byte(fi)*0x40 + byte(i)
		}
		if err := prod.Append(f); err != nil {
			t.Fatalf("fill append %d: %v", fi, err)
		}
	}
	free, err := prod.Free()
	if err != nil {
		t.Fatal(err)
	}
	if free != 0 {
		t.Fatalf("free = %d at exact fill, want 0", free)
	}
	if occ := prod.Occupancy(); occ != prod.DataSize() {
		t.Fatalf("occupancy = %d at exact fill, want %d", occ, prod.DataSize())
	}
	// head-tail == size must read as full, not empty: even a zero-byte
	// frame (4-byte header) has no room.
	if err := prod.Append(nil); err != ErrRingFull {
		t.Fatalf("append at exact fill: %v, want ErrRingFull", err)
	}
	var got [][]byte
	n, err := cons.Poll(cq, func(f []byte) { got = append(got, append([]byte(nil), f...)) })
	if err != nil || n != 2 {
		t.Fatalf("drain poll: %d, %v", n, err)
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d corrupted across exact-fill wrap:\n got %x\nwant %x", i, got[i], frames[i])
		}
	}
	// The tail feedback reopened the ring.
	if err := prod.Append(first); err != nil {
		t.Fatalf("append after drain: %v", err)
	}
}

func TestRingOversizeFrame(t *testing.T) {
	prod, _, _ := ringPair(t, 16+64)
	if err := prod.Append(make([]byte, 100)); err == nil || err == ErrRingFull {
		t.Fatalf("oversize frame: %v", err)
	}
}

func TestRingTooSmallMR(t *testing.T) {
	f := NewFabric(CostModel{})
	d, _ := f.NewDevice("x")
	mr, _ := RegisterMemory(d.AllocPD(), 32, 0)
	if _, err := NewRing(mr); err == nil {
		t.Fatal("32-byte MR accepted as ring")
	}
}

func TestRingLocalConsume(t *testing.T) {
	f := NewFabric(CostModel{})
	d, _ := f.NewDevice("x")
	mr, _ := RegisterMemory(d.AllocPD(), 4096, 0)
	ring, err := NewRing(mr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := ring.Append([]byte(fmt.Sprintf("m%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	n, err := ring.LocalConsume(func(f []byte) { got = append(got, string(f)) })
	if err != nil || n != 10 {
		t.Fatalf("consume: %d, %v", n, err)
	}
	for i, s := range got {
		if s != fmt.Sprintf("m%02d", i) {
			t.Fatalf("frame %d = %q", i, s)
		}
	}
	// Free space is reclaimed.
	free, err := ring.Free()
	if err != nil {
		t.Fatal(err)
	}
	if free != ring.DataSize() {
		t.Fatalf("free %d after full consume, want %d", free, ring.DataSize())
	}
}

func TestRemoteRingStageTooSmall(t *testing.T) {
	f := NewFabric(CostModel{})
	da, _ := f.NewDevice("a")
	db, _ := f.NewDevice("b")
	stage, _ := RegisterMemory(db.AllocPD(), 64, AccessLocalWrite)
	qp := CreateQP(db.AllocPD(), NewCQ(1), NewCQ(1), QPCap{})
	_ = da
	if _, err := NewRemoteRing(qp, stage, 1, 4096); err == nil {
		t.Fatal("undersized staging MR accepted")
	}
}

func TestRingConcurrentProducerConsumer(t *testing.T) {
	prod, cons, cq := ringPair(t, 16+1024)
	const total = 500
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			frame := []byte(fmt.Sprintf("msg-%04d", i))
			for {
				err := prod.Append(frame)
				if err == nil {
					break
				}
				if err != ErrRingFull {
					errc <- err
					return
				}
				time.Sleep(10 * time.Microsecond)
			}
		}
		errc <- nil
	}()
	var got int
	deadline := time.Now().Add(10 * time.Second)
	for got < total && time.Now().Before(deadline) {
		n, err := cons.Poll(cq, func(f []byte) {
			want := fmt.Sprintf("msg-%04d", got)
			if string(f) != want {
				t.Errorf("frame %d = %q, want %q", got, f, want)
			}
			got++
		})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			time.Sleep(10 * time.Microsecond)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Fatalf("consumed %d of %d", got, total)
	}
}

// TestQuickRingRandomInterleavings: arbitrary interleavings of appends and
// polls with random frame sizes never corrupt, reorder, or drop frames.
func TestQuickRingRandomInterleavings(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	run := func(seed int64) bool {
		r.Seed(seed)
		ringSize := 16 + 128 + r.Intn(512)
		prod, cons, cq := ringPair(t, ringSize)
		next := byte(0)   // next frame id to produce
		expect := byte(0) // next frame id the consumer must see
		ok := true
		for step := 0; step < 120 && ok; step++ {
			if r.Intn(2) == 0 {
				frame := make([]byte, 1+r.Intn((ringSize-16)/2-4))
				frame[0] = next
				if err := prod.Append(frame); err == nil {
					next++
				} else if err != ErrRingFull {
					return false
				}
			} else {
				_, err := cons.Poll(cq, func(f []byte) {
					if len(f) < 1 || f[0] != expect {
						ok = false
						return
					}
					expect++
				})
				if err != nil {
					return false
				}
			}
		}
		// Drain the rest.
		if _, err := cons.Poll(cq, func(f []byte) {
			if len(f) < 1 || f[0] != expect {
				ok = false
				return
			}
			expect++
		}); err != nil {
			return false
		}
		return ok && expect == next
	}
	for seed := int64(0); seed < 60; seed++ {
		if !run(seed) {
			t.Fatalf("seed %d: ring violated FIFO/integrity", seed)
		}
	}
}
