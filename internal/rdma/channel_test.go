package rdma

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// dialPair sets up two endpoints and a channel from a to b, collecting
// received messages into a synchronized slice.
func dialPair(t *testing.T, cfg ChannelConfig) (send *Channel, recvd func() []string) {
	t.Helper()
	f := NewFabric(CostModel{})
	ea, err := NewEndpoint(f, "a-"+t.Name(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewEndpoint(f, "b-"+t.Name(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var msgs []string
	eb.OnAccept(func(remote string, ch *Channel) {
		if remote != ea.Name() {
			t.Errorf("accept from %q", remote)
		}
		ch.SetHandler(func(m []byte) {
			mu.Lock()
			msgs = append(msgs, string(m))
			mu.Unlock()
		})
	})
	send, err = ea.Dial(eb.Name())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ea.Close(); eb.Close() })
	return send, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), msgs...)
	}
}

func waitFor(t *testing.T, n int, recvd func() []string) []string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if got := recvd(); len(got) >= n {
			return got
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %d messages (have %d)", n, len(recvd()))
	return nil
}

func testChannelRoundTrip(t *testing.T, mode Mode) {
	send, recvd := dialPair(t, ChannelConfig{Mode: mode, MMS: 4 << 10, WTL: time.Millisecond})
	const total = 300
	for i := 0; i < total; i++ {
		if err := send.Send([]byte(fmt.Sprintf("%s-%04d", mode, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := send.Flush(); err != nil {
		t.Fatal(err)
	}
	got := waitFor(t, total, recvd)
	for i := 0; i < total; i++ {
		want := fmt.Sprintf("%s-%04d", mode, i)
		if got[i] != want {
			t.Fatalf("msg %d = %q, want %q", i, got[i], want)
		}
	}
	st := send.Stats()
	if st.MsgsSent != total {
		t.Fatalf("stats: sent %d", st.MsgsSent)
	}
	if st.WorkRequests >= total {
		t.Fatalf("batching ineffective: %d work requests for %d messages", st.WorkRequests, total)
	}
}

func TestChannelOneSidedRead(t *testing.T)  { testChannelRoundTrip(t, ModeOneSidedRead) }
func TestChannelTwoSided(t *testing.T)      { testChannelRoundTrip(t, ModeTwoSided) }
func TestChannelOneSidedWrite(t *testing.T) { testChannelRoundTrip(t, ModeOneSidedWrite) }

func TestChannelWTLFlush(t *testing.T) {
	// With a huge MMS, only the WTL timer can flush.
	send, recvd := dialPair(t, ChannelConfig{MMS: 1 << 20, WTL: 2 * time.Millisecond})
	if err := send.Send([]byte("lonely")); err != nil {
		t.Fatal(err)
	}
	got := waitFor(t, 1, recvd)
	if got[0] != "lonely" {
		t.Fatalf("got %q", got[0])
	}
	st := send.Stats()
	if st.TimerFlushes == 0 {
		t.Fatal("expected a WTL timer flush")
	}
	if st.SizeFlushes != 0 {
		t.Fatal("unexpected size flush")
	}
}

func TestChannelMMSFlush(t *testing.T) {
	// With a large WTL, only MMS can flush.
	send, recvd := dialPair(t, ChannelConfig{MMS: 1 << 10, WTL: time.Hour})
	payload := make([]byte, 600)
	send.Send(payload)
	send.Send(payload) // 1208 bytes >= 1 KiB: size flush
	waitFor(t, 2, recvd)
	st := send.Stats()
	if st.SizeFlushes != 1 {
		t.Fatalf("size flushes %d, want 1", st.SizeFlushes)
	}
}

// TestChannelWTLFlushWhileRingFull forces the WTL timer flush to fire
// while the ring region is full: the receive handler is gated so the
// first batch occupies the ring (its tail feedback is withheld), then the
// next timer flush must block on ErrRingFull until the gate opens. The
// blocked flush must neither fail nor drop data, and delivery order must
// be preserved.
func TestChannelWTLFlushWhileRingFull(t *testing.T) {
	// Huge MMS so only the WTL timer flushes; a 1 KiB ring (1008-byte data
	// area) that one 400-byte message occupies by 40%.
	cfg := ChannelConfig{MMS: 1 << 20, WTL: 2 * time.Millisecond, RingSize: 1 << 10}
	f := NewFabric(CostModel{})
	ea, err := NewEndpoint(f, "a-"+t.Name(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewEndpoint(f, "b-"+t.Name(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var msgs []string
	entered := make(chan struct{}) // receiver reached the first message
	gate := make(chan struct{})    // holds the first delivery (and its tail feedback)
	eb.OnAccept(func(_ string, ch *Channel) {
		ch.SetHandler(func(m []byte) {
			mu.Lock()
			first := len(msgs) == 0
			msgs = append(msgs, string(m))
			mu.Unlock()
			if first {
				close(entered)
				<-gate
			}
		})
	})
	send, err := ea.Dial(eb.Name())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ea.Close(); eb.Close() })
	recvd := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), msgs...)
	}

	payload := func(c byte) []byte {
		p := make([]byte, 400)
		for i := range p {
			p[i] = c
		}
		return p
	}
	// Message A timer-flushes into the ring; the gated handler stalls the
	// Poll before its tail write-back, so A's 408 ring bytes stay occupied.
	if err := send.Send(payload('a')); err != nil {
		t.Fatal(err)
	}
	<-entered
	// B and C (808-byte batch, 812 on the ring) cannot fit next to A's 408
	// in 1008 bytes: the WTL flush must block on the full ring.
	if err := send.Send(payload('b')); err != nil {
		t.Fatal(err)
	}
	if err := send.Send(payload('c')); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for send.Stats().BlockedNS == 0 {
		if time.Now().After(deadline) {
			t.Fatal("WTL flush never blocked on the full ring")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Release the receiver: the tail feedback frees the ring, the blocked
	// flush completes, and every message arrives in order.
	close(gate)
	got := waitFor(t, 3, recvd)
	for i, c := range []byte{'a', 'b', 'c'} {
		if got[i] != string(payload(c)) {
			t.Fatalf("message %d corrupted (got %q...)", i, got[i][:8])
		}
	}
	st := send.Stats()
	if st.TimerFlushes < 2 {
		t.Fatalf("timer flushes %d, want >= 2", st.TimerFlushes)
	}
	if st.SizeFlushes != 0 {
		t.Fatalf("unexpected size flush (%d)", st.SizeFlushes)
	}
	if err := send.Flush(); err != nil {
		t.Fatalf("channel latched an error from the blocked flush: %v", err)
	}
}

func TestChannelBackpressureOnFullRing(t *testing.T) {
	// A ring smaller than the data volume forces Send/Flush to block until
	// the receiver drains; nothing may be lost.
	send, recvd := dialPair(t, ChannelConfig{MMS: 512, WTL: time.Hour, RingSize: 8 << 10})
	const total = 400
	payload := make([]byte, 256)
	for i := 0; i < total; i++ {
		payload[0] = byte(i)
		if err := send.Send(payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	send.Flush()
	got := waitFor(t, total, recvd)
	if len(got) != total {
		t.Fatalf("received %d of %d", len(got), total)
	}
	if send.Stats().BlockedNS == 0 {
		t.Log("note: ring never filled; backpressure path not exercised")
	}
}

func TestChannelCloseFlushesPending(t *testing.T) {
	send, recvd := dialPair(t, ChannelConfig{MMS: 1 << 20, WTL: time.Hour})
	send.Send([]byte("final"))
	if err := send.Close(); err != nil {
		t.Fatal(err)
	}
	got := waitFor(t, 1, recvd)
	if got[0] != "final" {
		t.Fatalf("got %q", got)
	}
	if err := send.Send([]byte("after-close")); err == nil {
		t.Fatal("send on closed channel accepted")
	}
	if err := send.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDialErrors(t *testing.T) {
	f := NewFabric(CostModel{})
	ea, err := NewEndpoint(f, "only", ChannelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ea.Dial("missing"); err == nil {
		t.Fatal("dial to unknown endpoint accepted")
	}
	// An endpoint with no accept hook refuses inbound channels.
	eb, _ := NewEndpoint(f, "mute", ChannelConfig{})
	_ = eb
	if _, err := ea.Dial("mute"); err == nil {
		t.Fatal("dial to non-accepting endpoint succeeded")
	}
	if _, err := NewEndpoint(f, "only", ChannelConfig{}); err == nil {
		t.Fatal("duplicate endpoint name accepted")
	}
}

func TestChannelManyToOne(t *testing.T) {
	// Several senders into one endpoint: per-channel ordering must hold.
	f := NewFabric(CostModel{})
	cfg := ChannelConfig{MMS: 2 << 10, WTL: time.Millisecond}
	sink, err := NewEndpoint(f, "sink", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	perSender := map[string][]string{}
	sink.OnAccept(func(remote string, ch *Channel) {
		ch.SetHandler(func(m []byte) {
			mu.Lock()
			perSender[remote] = append(perSender[remote], string(m))
			mu.Unlock()
		})
	})
	const senders, each = 4, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep, err := NewEndpoint(f, fmt.Sprintf("src%d", s), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := ep.Dial("sink")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s int, ch *Channel) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := ch.Send([]byte(fmt.Sprintf("%d", i))); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
			ch.Flush()
		}(s, ch)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := 0
		for _, v := range perSender {
			n += len(v)
		}
		mu.Unlock()
		if n == senders*each {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(perSender) != senders {
		t.Fatalf("heard from %d senders", len(perSender))
	}
	for who, msgs := range perSender {
		if len(msgs) != each {
			t.Fatalf("%s delivered %d of %d", who, len(msgs), each)
		}
		for i, m := range msgs {
			if m != fmt.Sprintf("%d", i) {
				t.Fatalf("%s message %d = %q (ordering)", who, i, m)
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeOneSidedRead.String() != "one-sided-read" ||
		ModeTwoSided.String() != "two-sided" ||
		ModeOneSidedWrite.String() != "one-sided-write" {
		t.Fatal("mode strings")
	}
}
