package rdma

import (
	"fmt"
	"sync"
)

// Endpoint is the connection manager for one device: it accepts and dials
// channels, performing the queue-pair and rkey exchange that a real
// deployment would do over a TCP side channel.
type Endpoint struct {
	fabric *Fabric
	dev    *Device
	pd     *PD
	cfg    ChannelConfig

	mu       sync.Mutex
	acceptFn func(remote string, ch *Channel)
	channels []*Channel
	closed   bool
}

// endpoint registry lives on the fabric.
var endpointRegistry sync.Map // map[*Fabric]map[string]*Endpoint

func registerEndpoint(f *Fabric, name string, e *Endpoint) error {
	v, _ := endpointRegistry.LoadOrStore(f, &sync.Map{})
	m := v.(*sync.Map)
	if _, dup := m.LoadOrStore(name, e); dup {
		return fmt.Errorf("rdma: endpoint %q already registered", name)
	}
	return nil
}

func lookupEndpoint(f *Fabric, name string) (*Endpoint, bool) {
	v, ok := endpointRegistry.Load(f)
	if !ok {
		return nil, false
	}
	e, ok := v.(*sync.Map).Load(name)
	if !ok {
		return nil, false
	}
	return e.(*Endpoint), true
}

// NewEndpoint creates a device named name on the fabric and an endpoint
// managing channels for it.
func NewEndpoint(f *Fabric, name string, cfg ChannelConfig) (*Endpoint, error) {
	dev, err := f.NewDevice(name)
	if err != nil {
		return nil, err
	}
	e := &Endpoint{fabric: f, dev: dev, pd: dev.AllocPD(), cfg: cfg.withDefaults()}
	if err := registerEndpoint(f, name, e); err != nil {
		return nil, err
	}
	return e, nil
}

// Name returns the endpoint's device name.
func (e *Endpoint) Name() string { return e.dev.name }

// Device returns the endpoint's device (for direct verbs use in tests and
// microbenchmarks).
func (e *Endpoint) Device() *Device { return e.dev }

// OnAccept installs the hook invoked (synchronously, before any data flows)
// for every inbound channel. The hook must call SetHandler on the channel.
func (e *Endpoint) OnAccept(fn func(remote string, ch *Channel)) {
	e.mu.Lock()
	e.acceptFn = fn
	e.mu.Unlock()
}

// Dial establishes a unidirectional channel to the named remote endpoint
// using the endpoint's configured mode, returning the send side. The remote
// endpoint's accept hook receives the receive side.
func (e *Endpoint) Dial(remote string) (*Channel, error) {
	re, ok := lookupEndpoint(e.fabric, remote)
	if !ok {
		return nil, fmt.Errorf("rdma: no endpoint %q on fabric", remote)
	}
	re.mu.Lock()
	acceptFn := re.acceptFn
	re.mu.Unlock()
	if acceptFn == nil {
		return nil, fmt.Errorf("rdma: endpoint %q is not accepting", remote)
	}

	cfg := e.cfg
	send := &Channel{cfg: cfg, local: e.Name(), remote: remote,
		done: make(chan struct{}), flushSem: make(chan struct{}, 1)}
	recv := &Channel{cfg: cfg, local: remote, remote: e.Name(),
		done: make(chan struct{}), flushSem: make(chan struct{}, 1)}

	switch cfg.Mode {
	case ModeOneSidedRead:
		// Sender owns the ring; the receiver's QP drives READ/WRITE.
		ringMR, err := RegisterMemory(e.pd, cfg.RingSize, AccessRemoteRead|AccessRemoteWrite)
		if err != nil {
			return nil, err
		}
		ring, err := NewRing(ringMR)
		if err != nil {
			return nil, err
		}
		send.ring = ring
		stage, err := RegisterMemory(re.pd, cfg.RingSize, AccessLocalWrite)
		if err != nil {
			return nil, err
		}
		rcq := NewCQ(cfg.QPDepth)
		rqp := CreateQP(re.pd, rcq, NewCQ(1), QPCap{SendDepth: cfg.QPDepth})
		sqp := CreateQP(e.pd, NewCQ(1), NewCQ(1), QPCap{})
		if err := ConnectPair(sqp, rqp); err != nil {
			return nil, err
		}
		send.sqp = sqp
		rr, err := NewRemoteRing(rqp, stage, ringMR.RKey(), ring.DataSize())
		if err != nil {
			return nil, err
		}
		recv.rqp, recv.rcq, recv.rring = rqp, rcq, rr
		acceptFn(e.Name(), recv)
		recv.wg.Add(1)
		go recv.recvLoopRead()

	case ModeTwoSided:
		scq := NewCQ(cfg.QPDepth)
		sqp := CreateQP(e.pd, scq, NewCQ(1), QPCap{SendDepth: cfg.QPDepth})
		rcq := NewCQ(cfg.QPDepth)
		// Receive slots sized for a full batch: MMS plus one max message
		// overshoot margin.
		slotSize := cfg.MMS * 2
		nslots := cfg.QPDepth
		slots, err := RegisterMemory(re.pd, slotSize*nslots, AccessLocalWrite)
		if err != nil {
			return nil, err
		}
		rqp := CreateQP(re.pd, NewCQ(1), rcq, QPCap{RecvDepth: nslots})
		if err := ConnectPair(sqp, rqp); err != nil {
			return nil, err
		}
		for i := 0; i < nslots; i++ {
			if err := rqp.PostRecv(WR{WRID: uint64(i), Op: OpRecv,
				Local: SGE{MR: slots, Offset: i * slotSize, Length: slotSize}}); err != nil {
				return nil, err
			}
		}
		send.sqp, send.scq = sqp, scq
		send.inflight = make(chan struct{}, cfg.QPDepth)
		recv.rqp, recv.rcq = rqp, rcq
		recv.slots, recv.slotSize, recv.nslots = slots, slotSize, nslots
		acceptFn(e.Name(), recv)
		send.wg.Add(1)
		go send.senderReaper()
		recv.wg.Add(1)
		go recv.recvLoopTwoSided()

	case ModeOneSidedWrite:
		// Receiver owns the ring; the sender's QP drives WRITE/READ.
		ringMR, err := RegisterMemory(re.pd, cfg.RingSize, AccessRemoteRead|AccessRemoteWrite)
		if err != nil {
			return nil, err
		}
		ring, err := NewRing(ringMR)
		if err != nil {
			return nil, err
		}
		stage, err := RegisterMemory(e.pd, 8, AccessLocalWrite)
		if err != nil {
			return nil, err
		}
		scq := NewCQ(cfg.QPDepth)
		sqp := CreateQP(e.pd, scq, NewCQ(1), QPCap{SendDepth: cfg.QPDepth})
		rqp := CreateQP(re.pd, NewCQ(1), NewCQ(1), QPCap{})
		if err := ConnectPair(sqp, rqp); err != nil {
			return nil, err
		}
		send.sqp, send.scq = sqp, scq
		// Field-wise init: the head/tail cursors are atomics, so the struct
		// must not be copied wholesale.
		send.remoteRing.rkey = ringMR.RKey()
		send.remoteRing.dataSize = ring.DataSize()
		send.remoteRing.stage = stage
		recv.rqp = rqp
		recv.localRing = ring
		acceptFn(e.Name(), recv)
		recv.wg.Add(1)
		go recv.recvLoopLocalRing()

	default:
		return nil, fmt.Errorf("rdma: unknown channel mode %v", cfg.Mode)
	}

	e.mu.Lock()
	e.channels = append(e.channels, send)
	e.mu.Unlock()
	re.mu.Lock()
	re.channels = append(re.channels, recv)
	re.mu.Unlock()
	return send, nil
}

// Close closes every channel the endpoint dialed or accepted and returns
// the first close error.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	chans := e.channels
	e.channels = nil
	e.closed = true
	e.mu.Unlock()
	var first error
	for _, c := range chans {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
