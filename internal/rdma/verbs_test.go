package rdma

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// pair builds two connected QPs on two devices of a fresh fabric.
func pair(t *testing.T, cost CostModel) (pdA, pdB *PD, qpA, qpB *QP, cqA, cqB, rcqA, rcqB *CQ) {
	t.Helper()
	f := NewFabric(cost)
	da, err := f.NewDevice("a")
	if err != nil {
		t.Fatal(err)
	}
	db, err := f.NewDevice("b")
	if err != nil {
		t.Fatal(err)
	}
	pdA, pdB = da.AllocPD(), db.AllocPD()
	// Deep CQs: the emulated RNIC engine blocks on a full CQ (documented
	// backpressure), so tests that post many WRs before reaping need room.
	cqA, cqB = NewCQ(256), NewCQ(256)
	rcqA, rcqB = NewCQ(256), NewCQ(256)
	qpA = CreateQP(pdA, cqA, rcqA, QPCap{})
	qpB = CreateQP(pdB, cqB, rcqB, QPCap{})
	if err := ConnectPair(qpA, qpB); err != nil {
		t.Fatal(err)
	}
	return
}

func TestDeviceNameCollision(t *testing.T) {
	f := NewFabric(CostModel{})
	if _, err := f.NewDevice("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.NewDevice("x"); err == nil {
		t.Fatal("duplicate device name accepted")
	}
	if _, ok := f.Device("x"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := f.Device("y"); ok {
		t.Fatal("phantom device")
	}
}

func TestMRBounds(t *testing.T) {
	f := NewFabric(CostModel{})
	d, _ := f.NewDevice("a")
	pd := d.AllocPD()
	mr, err := RegisterMemory(pd, 128, AccessRemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Len() != 128 || mr.LKey() == 0 || mr.RKey() == 0 {
		t.Fatalf("mr: %+v", mr)
	}
	buf := make([]byte, 64)
	if err := mr.ReadAt(buf, 65); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if err := mr.WriteAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := mr.WriteAt(buf, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := RegisterMemory(pd, 0, 0); err == nil {
		t.Fatal("zero-length registration accepted")
	}
	mr.Deregister()
	if _, err := d.lookupMR(mr.RKey()); err == nil {
		t.Fatal("deregistered MR still resolvable")
	}
}

func TestSendRecv(t *testing.T) {
	pdA, pdB, qpA, qpB, cqA, _, _, rcqB := pair(t, CostModel{})
	_ = pdA
	recvMR, _ := RegisterMemory(pdB, 1024, AccessLocalWrite)
	if err := qpB.PostRecv(WR{WRID: 7, Op: OpRecv, Local: SGE{MR: recvMR, Offset: 0, Length: 1024}}); err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello rdma")
	if err := qpA.PostSend(WR{WRID: 1, Op: OpSend, Inline: msg}); err != nil {
		t.Fatal(err)
	}
	wc, ok := cqA.Wait(time.Second)
	if !ok || wc.Status != StatusOK || wc.Op != OpSend {
		t.Fatalf("send wc: %+v ok=%v", wc, ok)
	}
	rwc, ok := rcqB.Wait(time.Second)
	if !ok || rwc.Status != StatusOK || rwc.WRID != 7 || rwc.Bytes != len(msg) {
		t.Fatalf("recv wc: %+v ok=%v", rwc, ok)
	}
	got := make([]byte, len(msg))
	if err := recvMR.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("received %q", got)
	}
}

func TestSendFromMR(t *testing.T) {
	pdA, pdB, qpA, qpB, cqA, _, _, rcqB := pair(t, CostModel{})
	srcMR, _ := RegisterMemory(pdA, 64, 0)
	if err := srcMR.WriteAt([]byte("payload"), 8); err != nil {
		t.Fatal(err)
	}
	recvMR, _ := RegisterMemory(pdB, 64, AccessLocalWrite)
	qpB.PostRecv(WR{WRID: 1, Op: OpRecv, Local: SGE{MR: recvMR, Length: 64}})
	if err := qpA.PostSend(WR{WRID: 2, Op: OpSend, Local: SGE{MR: srcMR, Offset: 8, Length: 7}}); err != nil {
		t.Fatal(err)
	}
	if wc, ok := cqA.Wait(time.Second); !ok || wc.Status != StatusOK {
		t.Fatalf("send wc %+v", wc)
	}
	if wc, ok := rcqB.Wait(time.Second); !ok || wc.Bytes != 7 {
		t.Fatalf("recv wc %+v", wc)
	}
	got := make([]byte, 7)
	recvMR.ReadAt(got, 0)
	if string(got) != "payload" {
		t.Fatalf("got %q", got)
	}
}

func TestRecvOrderingPreserved(t *testing.T) {
	// RC ordering: receive completions arrive in send order.
	pdA, pdB, qpA, qpB, _, _, _, rcqB := pair(t, CostModel{})
	_ = pdA
	recvMR, _ := RegisterMemory(pdB, 64*100, AccessLocalWrite)
	for i := 0; i < 100; i++ {
		if err := qpB.PostRecv(WR{WRID: uint64(i), Op: OpRecv,
			Local: SGE{MR: recvMR, Offset: i * 64, Length: 64}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		msg := []byte{byte(i)}
		for {
			if err := qpA.PostSend(WR{WRID: uint64(i), Op: OpSend, Inline: msg}); err == nil {
				break
			}
			time.Sleep(time.Microsecond) // SQ full; retry
		}
	}
	for i := 0; i < 100; i++ {
		wc, ok := rcqB.Wait(time.Second)
		if !ok {
			t.Fatalf("timeout at %d", i)
		}
		if wc.WRID != uint64(i) {
			t.Fatalf("completion %d has WRID %d (ordering broken)", i, wc.WRID)
		}
		var b [1]byte
		recvMR.ReadAt(b[:], int(wc.WRID)*64)
		if b[0] != byte(i) {
			t.Fatalf("slot %d holds %d", i, b[0])
		}
	}
}

func TestOneSidedWriteRead(t *testing.T) {
	pdA, pdB, qpA, _, cqA, _, _, _ := pair(t, CostModel{})
	remoteMR, _ := RegisterMemory(pdB, 256, AccessRemoteRead|AccessRemoteWrite)
	localMR, _ := RegisterMemory(pdA, 256, AccessLocalWrite)

	// WRITE inline data into remote memory.
	if err := qpA.PostSend(WR{WRID: 1, Op: OpWrite, Inline: []byte("remote-data"),
		Remote: RemoteAddr{RKey: remoteMR.RKey(), Offset: 16}}); err != nil {
		t.Fatal(err)
	}
	if wc, ok := cqA.Wait(time.Second); !ok || wc.Status != StatusOK {
		t.Fatalf("write wc %+v", wc)
	}
	got := make([]byte, 11)
	remoteMR.ReadAt(got, 16)
	if string(got) != "remote-data" {
		t.Fatalf("remote holds %q", got)
	}

	// READ it back into a local MR.
	if err := qpA.PostSend(WR{WRID: 2, Op: OpRead,
		Local:  SGE{MR: localMR, Offset: 32, Length: 11},
		Remote: RemoteAddr{RKey: remoteMR.RKey(), Offset: 16}}); err != nil {
		t.Fatal(err)
	}
	if wc, ok := cqA.Wait(time.Second); !ok || wc.Status != StatusOK || wc.Bytes != 11 {
		t.Fatalf("read wc %+v", wc)
	}
	localMR.ReadAt(got, 32)
	if string(got) != "remote-data" {
		t.Fatalf("local holds %q", got)
	}
}

func TestOneSidedAccessControl(t *testing.T) {
	pdA, pdB, qpA, _, cqA, _, _, _ := pair(t, CostModel{})
	_ = pdA
	// Registered WITHOUT remote access rights.
	lockedMR, _ := RegisterMemory(pdB, 64, 0)
	if err := qpA.PostSend(WR{WRID: 1, Op: OpWrite, Inline: []byte("x"),
		Remote: RemoteAddr{RKey: lockedMR.RKey(), Offset: 0}}); err != nil {
		t.Fatal(err)
	}
	wc, ok := cqA.Wait(time.Second)
	if !ok || wc.Status != StatusErr {
		t.Fatalf("write to protected MR: %+v", wc)
	}
	// Unknown rkey.
	qpA.PostSend(WR{WRID: 2, Op: OpWrite, Inline: []byte("x"),
		Remote: RemoteAddr{RKey: 9999, Offset: 0}})
	wc, ok = cqA.Wait(time.Second)
	if !ok || wc.Status != StatusErr {
		t.Fatalf("write to bogus rkey: %+v", wc)
	}
}

func TestRNRTimeout(t *testing.T) {
	// No receive posted: the send completes with RNR after the timeout.
	_, _, qpA, _, cqA, _, _, _ := pair(t, CostModel{RNRTimeout: 20 * time.Millisecond})
	if err := qpA.PostSend(WR{WRID: 1, Op: OpSend, Inline: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	wc, ok := cqA.Wait(time.Second)
	if !ok || wc.Status != StatusRNR {
		t.Fatalf("wc %+v", wc)
	}
}

func TestPostToUnconnectedQP(t *testing.T) {
	f := NewFabric(CostModel{})
	d, _ := f.NewDevice("a")
	pd := d.AllocPD()
	qp := CreateQP(pd, NewCQ(1), NewCQ(1), QPCap{})
	if err := qp.PostSend(WR{Op: OpSend, Inline: []byte("x")}); err == nil {
		t.Fatal("post to unconnected QP accepted")
	}
}

func TestPDMismatchRejected(t *testing.T) {
	pdA, pdB, qpA, _, _, _, _, _ := pair(t, CostModel{})
	_ = pdA
	foreignMR, _ := RegisterMemory(pdB, 64, 0)
	if err := qpA.PostSend(WR{Op: OpSend, Local: SGE{MR: foreignMR, Length: 8}}); err == nil {
		t.Fatal("cross-PD post accepted")
	}
}

func TestCloseFlushesOutstanding(t *testing.T) {
	pdA, pdB, qpA, qpB, cqA, _, _, rcqB := pair(t, CostModel{RNRTimeout: 5 * time.Second})
	_, _ = pdA, pdB
	recvMR, _ := RegisterMemory(pdB, 64, AccessLocalWrite)
	qpB.PostRecv(WR{WRID: 3, Op: OpRecv, Local: SGE{MR: recvMR, Length: 64}})
	qpB.Close()
	// The posted receive flushes.
	wc, ok := rcqB.Wait(time.Second)
	if !ok || wc.Status != StatusFlush || wc.WRID != 3 {
		t.Fatalf("recv flush wc %+v ok=%v", wc, ok)
	}
	// A send to the closed peer errors out.
	if err := qpA.PostSend(WR{WRID: 9, Op: OpSend, Inline: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	wc, ok = cqA.Wait(2 * time.Second)
	if !ok || wc.Status == StatusOK {
		t.Fatalf("send to closed peer: %+v ok=%v", wc, ok)
	}
	// Posting on the closed QP is rejected.
	if err := qpB.PostRecv(WR{Op: OpRecv, Local: SGE{MR: recvMR, Length: 64}}); err == nil {
		t.Fatal("post on closed QP accepted")
	}
}

func TestRecvBufferTooSmall(t *testing.T) {
	pdA, pdB, qpA, qpB, cqA, _, _, rcqB := pair(t, CostModel{})
	_ = pdA
	recvMR, _ := RegisterMemory(pdB, 64, AccessLocalWrite)
	qpB.PostRecv(WR{WRID: 1, Op: OpRecv, Local: SGE{MR: recvMR, Length: 4}})
	qpA.PostSend(WR{WRID: 2, Op: OpSend, Inline: []byte("too large for slot")})
	if wc, ok := cqA.Wait(time.Second); !ok || wc.Status != StatusErr {
		t.Fatalf("send wc %+v", wc)
	}
	if wc, ok := rcqB.Wait(time.Second); !ok || wc.Status != StatusErr {
		t.Fatalf("recv wc %+v", wc)
	}
}

func TestCostModelDelaysTransfer(t *testing.T) {
	// 1 MB at 100 MB/s should take ~10ms.
	cost := CostModel{BytesPerSecond: 100 << 20}
	pdA, pdB, qpA, qpB, cqA, _, _, _ := pair(t, cost)
	_ = pdA
	recvMR, _ := RegisterMemory(pdB, 1<<20, AccessLocalWrite)
	qpB.PostRecv(WR{WRID: 1, Op: OpRecv, Local: SGE{MR: recvMR, Length: 1 << 20}})
	payload := make([]byte, 1<<20)
	t0 := time.Now()
	qpA.PostSend(WR{WRID: 2, Op: OpSend, Inline: payload})
	wc, ok := cqA.Wait(5 * time.Second)
	if !ok || wc.Status != StatusOK {
		t.Fatalf("wc %+v", wc)
	}
	if el := time.Since(t0); el < 5*time.Millisecond {
		t.Fatalf("transfer finished in %v; cost model not applied", el)
	}
}

func TestOpcodeStatusStrings(t *testing.T) {
	if OpSend.String() != "SEND" || OpRecv.String() != "RECV" || OpWrite.String() != "WRITE" || OpRead.String() != "READ" {
		t.Fatal("Opcode strings")
	}
	if StatusOK.String() != "OK" || StatusRNR.String() != "RNR" || StatusErr.String() != "ERR" || StatusFlush.String() != "FLUSH" {
		t.Fatal("Status strings")
	}
	if Opcode(99).String() == "" || Status(99).String() == "" {
		t.Fatal("unknown enums must still render")
	}
}

func TestCQPoll(t *testing.T) {
	cq := NewCQ(8)
	for i := 0; i < 5; i++ {
		cq.push(WC{WRID: uint64(i)})
	}
	got := cq.Poll(3)
	if len(got) != 3 || got[0].WRID != 0 || got[2].WRID != 2 {
		t.Fatalf("poll %v", got)
	}
	got = cq.Poll(10)
	if len(got) != 2 {
		t.Fatalf("second poll %v", got)
	}
	if _, ok := cq.Wait(10 * time.Millisecond); ok {
		t.Fatal("empty CQ wait succeeded")
	}
}

func TestPostErrorSentinels(t *testing.T) {
	// Typed sentinels under unchanged message text: retry logic classifies
	// with errors.Is while logs keep the exact pre-sentinel wording.
	f := NewFabric(CostModel{})
	d, _ := f.NewDevice("sentinel")
	pd := d.AllocPD()

	unconnected := CreateQP(pd, NewCQ(1), NewCQ(1), QPCap{})
	err := unconnected.PostSend(WR{Op: OpSend, Inline: []byte("x")})
	if !errors.Is(err, ErrNotConnected) {
		t.Fatalf("unconnected PostSend = %v, want ErrNotConnected", err)
	}
	if want := fmt.Sprintf("rdma: QP %d not connected", unconnected.Num()); err.Error() != want {
		t.Fatalf("message changed: %q, want %q", err.Error(), want)
	}

	// SendDepth 1 and no receive buffer at the peer: the engine stalls in
	// RNR wait, so repeated posts must overflow the send queue.
	f2 := NewFabric(CostModel{RNRTimeout: 5 * time.Second})
	da, _ := f2.NewDevice("a")
	db, _ := f2.NewDevice("b")
	qpA := CreateQP(da.AllocPD(), NewCQ(8), NewCQ(8), QPCap{SendDepth: 1})
	qpB := CreateQP(db.AllocPD(), NewCQ(8), NewCQ(8), QPCap{RecvDepth: 1})
	if err := ConnectPair(qpA, qpB); err != nil {
		t.Fatal(err)
	}
	var sqErr error
	for i := 0; i < 10 && sqErr == nil; i++ {
		sqErr = qpA.PostSend(WR{WRID: uint64(i), Op: OpSend, Inline: []byte("x")})
	}
	if !errors.Is(sqErr, ErrSQFull) {
		t.Fatalf("overflowing posts = %v, want ErrSQFull", sqErr)
	}
	if want := fmt.Sprintf("rdma: QP %d send queue full", qpA.Num()); sqErr.Error() != want {
		t.Fatalf("message changed: %q, want %q", sqErr.Error(), want)
	}

	// RecvDepth 1: a second posted buffer overflows the receive queue.
	rqMR, _ := RegisterMemory(qpB.pd, 64, AccessLocalWrite)
	var rqErr error
	for i := 0; i < 10 && rqErr == nil; i++ {
		rqErr = qpB.PostRecv(WR{WRID: uint64(i), Op: OpRecv, Local: SGE{MR: rqMR, Length: 64}})
	}
	if !errors.Is(rqErr, ErrRQFull) {
		t.Fatalf("overflowing recvs = %v, want ErrRQFull", rqErr)
	}

	qpA.Close()
	err = qpA.PostSend(WR{Op: OpSend, Inline: []byte("x")})
	if !errors.Is(err, ErrQPClosed) {
		t.Fatalf("closed PostSend = %v, want ErrQPClosed", err)
	}
	if want := fmt.Sprintf("rdma: QP %d closed", qpA.Num()); err.Error() != want {
		t.Fatalf("message changed: %q, want %q", err.Error(), want)
	}
	if err := qpA.PostRecv(WR{Op: OpRecv}); !errors.Is(err, ErrQPClosed) {
		t.Fatalf("closed PostRecv = %v, want ErrQPClosed", err)
	}
}
