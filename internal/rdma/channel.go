package rdma

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// rnrWait bounds internal completion waits.
const rnrWait = 10 * time.Second

// Mode selects the verbs used for a channel's data path. The paper (§4,
// Figs. 29-32) finds one-sided READ best for the multicast data path and
// uses two-sided SEND/RECV for control messages; all three are implemented
// so the Whale_DiffVerbs experiments can compare them.
type Mode int

const (
	// ModeOneSidedRead: the sender appends to its own ring region; the
	// receiver pulls with one-sided READ and pushes tail feedback with
	// one-sided WRITE. The sender's CPU never touches the transfer.
	ModeOneSidedRead Mode = iota
	// ModeTwoSided: classic SEND/RECV with pre-posted receive buffers.
	ModeTwoSided
	// ModeOneSidedWrite: the sender pushes into the receiver's ring region
	// with one-sided WRITE; the receiver consumes locally.
	ModeOneSidedWrite
)

func (m Mode) String() string {
	switch m {
	case ModeOneSidedRead:
		return "one-sided-read"
	case ModeTwoSided:
		return "two-sided"
	case ModeOneSidedWrite:
		return "one-sided-write"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// FlushReason labels what triggered a batch flush.
type FlushReason int

const (
	// FlushMMS: the pending batch reached the Max Memory Size.
	FlushMMS FlushReason = iota
	// FlushWTL: the Wait Time Limit timer fired first.
	FlushWTL
	// FlushExplicit: Flush or Close forced the batch out.
	FlushExplicit
)

func (r FlushReason) String() string {
	switch r {
	case FlushMMS:
		return "mms"
	case FlushWTL:
		return "wtl"
	case FlushExplicit:
		return "explicit"
	}
	return fmt.Sprintf("flush(%d)", int(r))
}

// ChannelConfig parameterises a Channel.
type ChannelConfig struct {
	// Mode selects the data-path verbs (default one-sided READ).
	Mode Mode
	// MMS is the Max Memory Size: a flush is triggered once the pending
	// batch reaches this size (paper §4; default 256 KiB, the paper's
	// chosen operating point from Fig. 11).
	MMS int
	// WTL is the Wait Time Limit: the oldest pending message waits at most
	// this long before the batch is flushed anyway (default 1 ms, the
	// paper's choice from Fig. 12).
	WTL time.Duration
	// RingSize is the ring region size (default 4 MiB).
	RingSize int
	// QPDepth bounds in-flight work requests (default 128).
	QPDepth int
	// PollInterval is the receiver's idle poll period (default 20 µs).
	PollInterval time.Duration
	// BlockTimeout bounds how long Send blocks on a full ring before
	// failing (default 10 s).
	BlockTimeout time.Duration
	// OnFlush, if set, is invoked after every batch flush with the trigger
	// and the batch size in bytes. Calls are serialised — one flush is in
	// flight at a time, in batch order — but no channel lock is held; the
	// callback must still be fast and must not call back into the channel
	// (a re-entrant flush would deadlock on the flush semaphore). The
	// observability layer uses it to count MMS vs WTL flushes and log
	// flush-reason transitions.
	OnFlush func(reason FlushReason, batchBytes int)
}

func (c ChannelConfig) withDefaults() ChannelConfig {
	if c.MMS <= 0 {
		c.MMS = 256 << 10
	}
	if c.WTL <= 0 {
		c.WTL = time.Millisecond
	}
	if c.RingSize <= 0 {
		c.RingSize = 4 << 20
	}
	if c.QPDepth <= 0 {
		c.QPDepth = 128
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 20 * time.Microsecond
	}
	if c.BlockTimeout <= 0 {
		c.BlockTimeout = 10 * time.Second
	}
	return c
}

// ChannelStats counts a channel's activity (all fields atomic).
type ChannelStats struct {
	MsgsSent     atomic.Int64
	BytesSent    atomic.Int64
	WorkRequests atomic.Int64 // flushes that became ring appends / sends / writes
	SizeFlushes  atomic.Int64 // flushes triggered by MMS
	TimerFlushes atomic.Int64 // flushes triggered by WTL
	MsgsRecv     atomic.Int64
	BytesRecv    atomic.Int64
	BlockedNS    atomic.Int64 // time Send spent blocked on a full ring
	CQPollNS     atomic.Int64 // receiver time inside CQ/ring poll calls
	CQPolls      atomic.Int64 // receiver poll calls issued
	WRDepthSum   atomic.Int64 // work requests per pipelined flush, summed
	WRFlushes    atomic.Int64 // pipelined flushes (WRDepthSum / WRFlushes = mean depth)
}

// StatsSnapshot is a point-in-time copy of ChannelStats.
type StatsSnapshot struct {
	MsgsSent, BytesSent, WorkRequests int64
	SizeFlushes, TimerFlushes         int64
	MsgsRecv, BytesRecv, BlockedNS    int64
	CQPollNS, CQPolls                 int64
	WRDepthSum, WRFlushes             int64
}

// Channel is a unidirectional, reliable, ordered message channel between
// two devices, with Whale's stream slicing (MMS) and wait-time-limit (WTL)
// batching. The dialing side sends; the accepting side receives.
type Channel struct {
	cfg    ChannelConfig
	local  string
	remote string
	stats  ChannelStats

	// Sender state. mu guards the pending batch and the closed/error
	// latches and is never held across a blocking operation. flushSem
	// (cap 1) serialises flushers instead: the batch is detached under mu,
	// but the potentially long waits — full ring, exhausted send window —
	// happen with no mutex held, so waiting there is backpressure, not
	// lock contention.
	mu         sync.Mutex
	pending    []byte
	spare      []byte // recycled batch buffer (one-sided modes)
	batchOpen  time.Time
	timer      *time.Timer
	sendErr    error
	closed     bool
	flushSem   chan struct{} // cap 1: holder is the flushing goroutine
	ring       *Ring         // one-sided-read: local; one-sided-write: nil
	sqp        *QP           // sender QP (two-sided and one-sided-write)
	scq        *CQ
	inflight   chan struct{} // two-sided flow control
	remoteRing remoteWriterState

	// Receiver state.
	handler   atomic.Pointer[func(msg []byte)]
	rqp       *QP
	rcq       *CQ // receiver-owned CQ (send CQ for READ mode, recv CQ for two-sided)
	rring     *RemoteRing
	localRing *Ring // one-sided-write mode: receiver-owned ring
	slots     *MR   // two-sided receive slots
	slotSize  int
	nslots    int
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// remoteWriterState is the sender-side bookkeeping for one-sided-write
// mode: a cursor into the receiver's ring region. Only the flushing
// goroutine (serialised by flushSem) mutates it; head and tail are atomic
// so RingOccupancy can read the cursor without joining that serialisation.
type remoteWriterState struct {
	rkey     uint32
	dataSize int
	head     atomic.Uint64
	tail     atomic.Uint64 // cached; refreshed via one-sided READ when full
	stage    *MR           // 8-byte staging buffer for tail reads
	hdr      [4]byte       // frame-length scratch; valid per flush (flushSem serialises)
	headBuf  [8]byte       // head-publish scratch; valid per flush (flushSem serialises)
	wrs      []WR          // work-request scratch reused across flushes
}

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() StatsSnapshot {
	return StatsSnapshot{
		MsgsSent:     c.stats.MsgsSent.Load(),
		BytesSent:    c.stats.BytesSent.Load(),
		WorkRequests: c.stats.WorkRequests.Load(),
		SizeFlushes:  c.stats.SizeFlushes.Load(),
		TimerFlushes: c.stats.TimerFlushes.Load(),
		MsgsRecv:     c.stats.MsgsRecv.Load(),
		BytesRecv:    c.stats.BytesRecv.Load(),
		BlockedNS:    c.stats.BlockedNS.Load(),
		CQPollNS:     c.stats.CQPollNS.Load(),
		CQPolls:      c.stats.CQPolls.Load(),
		WRDepthSum:   c.stats.WRDepthSum.Load(),
		WRFlushes:    c.stats.WRFlushes.Load(),
	}
}

// RingOccupancy returns the bytes sitting in the channel's ring region
// (published by the sender, not yet consumed by the receiver), plus the
// pending unflushed batch. Zero for the two-sided mode, which has no ring.
func (c *Channel) RingOccupancy() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	occ := len(c.pending)
	switch {
	case c.ring != nil:
		occ += c.ring.Occupancy()
	case c.cfg.Mode == ModeOneSidedWrite:
		occ += int(c.remoteRing.head.Load() - c.remoteRing.tail.Load())
	}
	return occ
}

// PressurePct reports the channel's ring occupancy (pending batch plus
// published-but-unconsumed bytes) as a percentage of the ring size, clamped
// to [0, 100]. The engine's flow controller feeds it into the waterline
// state machine. Always 0 for the two-sided mode, which has no ring.
func (c *Channel) PressurePct() int {
	occ := c.RingOccupancy()
	if occ <= 0 {
		return 0
	}
	pct := occ * 100 / c.cfg.RingSize
	if pct > 100 {
		pct = 100
	}
	return pct
}

// SetHandler installs the receive callback. It must be set (by the accept
// hook) before the sender starts sending; messages arriving with no handler
// are dropped.
func (c *Channel) SetHandler(fn func(msg []byte)) { c.handler.Store(&fn) }

func (c *Channel) deliver(msg []byte) {
	c.stats.MsgsRecv.Add(1)
	c.stats.BytesRecv.Add(int64(len(msg)))
	if fn := c.handler.Load(); fn != nil {
		(*fn)(msg)
	}
}

// Send enqueues one message. The message is copied into the pending batch;
// the batch is flushed when it reaches MMS or when the WTL timer fires.
// Send blocks only when the ring (or send queue) is full — backpressure.
//
//whale:hotpath
func (c *Channel) Send(msg []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("rdma: channel %s->%s closed", c.local, c.remote)
	}
	if err := c.sendErr; err != nil {
		c.mu.Unlock()
		return err
	}
	if len(c.pending) == 0 {
		// Reuse the batch buffer recycled by the previous flush, if any.
		if c.spare != nil {
			c.pending, c.spare = c.spare, nil
		}
		// WTL accounting needs the batch-open timestamp; taken once per
		// batch, not per message.
		//lint:ignore hotalloc one time.Now per batch, required by WTL batching
		c.batchOpen = time.Now()
		c.armTimer()
	}
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(msg)))
	c.pending = append(c.pending, lb[:]...)
	c.pending = append(c.pending, msg...)
	c.stats.MsgsSent.Add(1)
	c.stats.BytesSent.Add(int64(len(msg)))
	full := len(c.pending) >= c.cfg.MMS
	c.mu.Unlock()
	if full {
		return c.flush(FlushMMS)
	}
	return nil
}

// Flush forces the pending batch out.
func (c *Channel) Flush() error {
	return c.flush(FlushExplicit)
}

func (c *Channel) armTimer() {
	if c.timer != nil {
		c.timer.Reset(c.cfg.WTL)
		return
	}
	c.timer = time.AfterFunc(c.cfg.WTL, func() {
		c.mu.Lock()
		stale := c.closed || len(c.pending) == 0
		c.mu.Unlock()
		if stale {
			return
		}
		// flush latches its error into sendErr; nobody consumes the timer's
		// return value.
		_ = c.flush(FlushWTL)
	})
}

// flush detaches the pending batch under mu and ships it as one work
// request with no mutex held. flushSem (capacity 1) serialises flushers,
// so a second flusher waits on a channel — backpressure — rather than
// holding mu across the ring-full and send-window waits. Returns the
// latched send error when there is nothing to flush.
func (c *Channel) flush(reason FlushReason) error {
	c.flushSem <- struct{}{}
	defer func() { <-c.flushSem }()
	c.mu.Lock()
	batch := c.pending
	c.pending = nil
	if c.timer != nil {
		c.timer.Stop()
	}
	err := c.sendErr
	c.mu.Unlock()
	if len(batch) == 0 || err != nil {
		return err
	}
	switch reason {
	case FlushMMS:
		c.stats.SizeFlushes.Add(1)
	case FlushWTL:
		c.stats.TimerFlushes.Add(1)
	}
	c.stats.WorkRequests.Add(1)
	if c.cfg.OnFlush != nil {
		c.cfg.OnFlush(reason, len(batch))
	}
	switch c.cfg.Mode {
	case ModeOneSidedRead:
		err = c.flushRing(batch)
	case ModeTwoSided:
		err = c.flushTwoSided(batch)
	case ModeOneSidedWrite:
		err = c.flushRemoteWrite(batch)
	}
	c.mu.Lock()
	if err != nil && c.sendErr == nil {
		c.sendErr = err
	}
	// The one-sided flushes complete synchronously (the batch is copied into
	// a memory region before they return), so the batch buffer can back the
	// next batch instead of being reallocated. Two-sided mode posts the batch
	// as an Inline work request that the RNIC engine consumes asynchronously:
	// ownership transfers with the WR and the buffer must not be reused.
	if err == nil && c.cfg.Mode != ModeTwoSided && c.spare == nil && cap(batch) <= 2*c.cfg.MMS {
		c.spare = batch[:0]
	}
	c.mu.Unlock()
	return err
}

// flushRing appends the batch to the local ring, blocking (bounded) on a
// full ring.
func (c *Channel) flushRing(batch []byte) error {
	deadline := time.Now().Add(c.cfg.BlockTimeout)
	for {
		err := c.ring.Append(batch)
		if err == nil {
			return nil
		}
		if err != ErrRingFull {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("rdma: channel %s->%s blocked on full ring for %v", c.local, c.remote, c.cfg.BlockTimeout)
		}
		t0 := time.Now()
		time.Sleep(c.cfg.PollInterval)
		c.stats.BlockedNS.Add(time.Since(t0).Nanoseconds())
	}
}

// flushTwoSided posts the batch as one SEND, bounded by the in-flight
// window; completions are reaped by the sender's reaper goroutine.
func (c *Channel) flushTwoSided(batch []byte) error {
	deadline := time.Now().Add(c.cfg.BlockTimeout)
	for {
		select {
		case c.inflight <- struct{}{}:
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("rdma: channel %s->%s send window exhausted", c.local, c.remote)
		}
		err := c.sqp.PostSend(WR{Op: OpSend, Inline: batch})
		if err == nil {
			return nil
		}
		<-c.inflight
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(c.cfg.PollInterval)
	}
}

// flushRemoteWrite pushes the batch into the receiver's ring with one-sided
// WRITEs: data, then the head counter.
func (c *Channel) flushRemoteWrite(batch []byte) error {
	st := &c.remoteRing
	need := 4 + len(batch)
	if need > st.dataSize {
		return fmt.Errorf("rdma: batch of %d bytes exceeds remote ring size %d", len(batch), st.dataSize)
	}
	head := st.head.Load()
	deadline := time.Now().Add(c.cfg.BlockTimeout)
	for st.dataSize-int(head-st.tail.Load()) < need {
		// Refresh the cached tail with a one-sided READ.
		if err := c.syncOp(WR{Op: OpRead, Local: SGE{MR: st.stage, Offset: 0, Length: 8},
			Remote: RemoteAddr{RKey: st.rkey, Offset: ringTailOff}}); err != nil {
			return err
		}
		var tb [8]byte
		if err := st.stage.ReadAt(tb[:], 0); err != nil {
			return err
		}
		tail := binary.LittleEndian.Uint64(tb[:])
		st.tail.Store(tail)
		if st.dataSize-int(head-tail) >= need {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("rdma: remote ring full for %v", c.cfg.BlockTimeout)
		}
		t0 := time.Now()
		time.Sleep(c.cfg.PollInterval)
		c.stats.BlockedNS.Add(time.Since(t0).Nanoseconds())
	}
	// Post the length header and the batch as separate pipelined WRITEs
	// instead of assembling an intermediate frame copy: pipelineOps reaps
	// every completion before returning, so the batch (and the header/head
	// scratch fields, reused across flushes under flushSem) stay valid for
	// the WRs' whole lifetime. RC executes work requests in order, so the
	// head can never be visible before the data.
	binary.LittleEndian.PutUint32(st.hdr[:], uint32(len(batch)))
	wrs := st.wrs[:0]
	off := int(head % uint64(st.dataSize))
	wrs, off = st.appendRingWrites(wrs, off, st.hdr[:])
	wrs, _ = st.appendRingWrites(wrs, off, batch)
	head += uint64(need)
	binary.LittleEndian.PutUint64(st.headBuf[:], head)
	st.head.Store(head)
	wrs = append(wrs, WR{Op: OpWrite, Inline: st.headBuf[:],
		Remote: RemoteAddr{RKey: st.rkey, Offset: ringHeadOff}})
	st.wrs = wrs[:0]
	return c.pipelineOps(wrs)
}

// appendRingWrites splits one logical write of p at ring offset off into the
// WRITE work requests needed to honor the ring wrap, returning the extended
// WR list and the offset after the write.
func (st *remoteWriterState) appendRingWrites(wrs []WR, off int, p []byte) ([]WR, int) {
	for len(p) > 0 {
		n := st.dataSize - off
		if n > len(p) {
			n = len(p)
		}
		wrs = append(wrs, WR{Op: OpWrite, Inline: p[:n],
			Remote: RemoteAddr{RKey: st.rkey, Offset: ringDataOff + off}})
		p = p[n:]
		off = (off + n) % st.dataSize
	}
	return wrs, off
}

// pipelineOps posts a sequence of work requests back to back and reaps all
// their completions, failing on the first error.
func (c *Channel) pipelineOps(wrs []WR) error {
	c.stats.WRDepthSum.Add(int64(len(wrs)))
	c.stats.WRFlushes.Add(1)
	posted := 0
	for _, wr := range wrs {
		if err := c.sqp.PostSend(wr); err != nil {
			// Reap what was posted before reporting.
			for i := 0; i < posted; i++ {
				c.scq.Wait(rnrWait)
			}
			return err
		}
		posted++
	}
	var firstErr error
	for i := 0; i < posted; i++ {
		wc, ok := c.scq.Wait(rnrWait)
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("rdma: WRITE completion timed out")
			continue
		}
		if ok && wc.Status != StatusOK && firstErr == nil {
			firstErr = fmt.Errorf("rdma: WRITE failed: %v (%v)", wc.Status, wc.Err)
		}
	}
	return firstErr
}

// syncOp posts one work request on the sender QP and waits for completion.
func (c *Channel) syncOp(wr WR) error {
	if err := c.sqp.PostSend(wr); err != nil {
		return err
	}
	wc, ok := c.scq.Wait(rnrWait)
	if !ok {
		return fmt.Errorf("rdma: %v completion timed out", wr.Op)
	}
	if wc.Status != StatusOK {
		return fmt.Errorf("rdma: %v failed: %v (%v)", wr.Op, wc.Status, wc.Err)
	}
	return nil
}

// Close flushes pending data and stops the channel's goroutines.
func (c *Channel) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		if c.timer != nil {
			c.timer.Stop()
		}
		hadPending := len(c.pending) > 0
		c.mu.Unlock()
		if hadPending {
			// Final flush: closed is already set, so no sender can reopen
			// the batch behind it.
			err = c.flush(FlushExplicit)
		}
		// Let the receiver drain what was just flushed.
		time.Sleep(2 * c.cfg.PollInterval)
		close(c.done)
		c.wg.Wait()
		if c.sqp != nil {
			c.sqp.Close()
		}
		if c.rqp != nil {
			c.rqp.Close()
		}
	})
	return err
}

// parseBatch splits a batch into messages and delivers each. Messages are
// delivered as sub-slices of batch rather than per-message copies: every
// receive loop hands parseBatch a freshly read buffer it never touches
// again, so ownership of the whole batch — and with it each aliased message
// — transfers to the handler (a retained message pins its batch until the
// handler drops it, which the GC handles).
func (c *Channel) parseBatch(batch []byte) error {
	off := 0
	for off < len(batch) {
		if off+4 > len(batch) {
			return fmt.Errorf("rdma: truncated batch header")
		}
		n := int(binary.LittleEndian.Uint32(batch[off:]))
		off += 4
		if off+n > len(batch) {
			return fmt.Errorf("rdma: truncated batch payload (%d > %d)", n, len(batch)-off)
		}
		c.deliver(batch[off : off+n : off+n])
		off += n
	}
	return nil
}

// recvLoopRead is the receiver goroutine for one-sided READ mode.
func (c *Channel) recvLoopRead() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		default:
		}
		var parseErr error
		t0 := time.Now()
		n, err := c.rring.Poll(c.rcq, func(frame []byte) {
			if e := c.parseBatch(frame); e != nil && parseErr == nil {
				parseErr = e
			}
		})
		c.stats.CQPollNS.Add(time.Since(t0).Nanoseconds())
		c.stats.CQPolls.Add(1)
		if err == nil {
			err = parseErr
		}
		if err != nil {
			select {
			case <-c.done:
				return
			default:
				// Transport-level failure: nothing to deliver to; stop.
				return
			}
		}
		if n == 0 {
			time.Sleep(c.cfg.PollInterval)
		}
	}
}

// recvLoopTwoSided reaps receive completions and reposts slots.
func (c *Channel) recvLoopTwoSided() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		default:
		}
		wc, ok := c.rcq.Wait(50 * time.Millisecond)
		if !ok {
			continue
		}
		if wc.Status != StatusOK {
			continue // flush on teardown
		}
		slot := int(wc.WRID)
		buf := make([]byte, wc.Bytes)
		if err := c.slots.ReadAt(buf, slot*c.slotSize); err != nil {
			return
		}
		// Repost the slot before parsing so the window never starves.
		if err := c.rqp.PostRecv(WR{WRID: uint64(slot), Op: OpRecv,
			Local: SGE{MR: c.slots, Offset: slot * c.slotSize, Length: c.slotSize}}); err != nil {
			return
		}
		if err := c.parseBatch(buf); err != nil {
			return
		}
	}
}

// recvLoopLocalRing consumes the receiver-owned ring (one-sided WRITE mode).
func (c *Channel) recvLoopLocalRing() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		default:
		}
		var parseErr error
		n, err := c.localRing.LocalConsume(func(frame []byte) {
			if e := c.parseBatch(frame); e != nil && parseErr == nil {
				parseErr = e
			}
		})
		if err == nil {
			err = parseErr
		}
		if err != nil {
			return
		}
		if n == 0 {
			time.Sleep(c.cfg.PollInterval)
		}
	}
}

// senderReaper drains the sender's CQ in two-sided mode, releasing the
// in-flight window and latching errors.
func (c *Channel) senderReaper() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		default:
		}
		wc, ok := c.scq.Wait(50 * time.Millisecond)
		if !ok {
			continue
		}
		<-c.inflight
		if wc.Status != StatusOK && wc.Status != StatusFlush {
			c.mu.Lock()
			if c.sendErr == nil {
				c.sendErr = fmt.Errorf("rdma: send failed: %v (%v)", wc.Status, wc.Err)
			}
			c.mu.Unlock()
		}
	}
}
