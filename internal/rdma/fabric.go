// Package rdma is an in-process emulation of the RDMA verbs interface that
// Whale's communication layer is written against (paper §4 and the
// WhaleRDMAChannel artifact). It provides protection domains, registered
// memory regions, reliably-connected queue pairs, completion queues, the
// two-sided SEND/RECV and one-sided READ/WRITE operations, a ring memory
// region for sequential zero-copy style access, and a message Channel with
// Whale's stream slicing (MMS) and wait-time-limit (WTL) batching.
//
// The emulation substitutes for InfiniBand RNIC hardware (see DESIGN.md):
// a per-QP "RNIC engine" goroutine executes posted work requests in order
// (preserving RC ordering), moving bytes between registered regions with
// memcpy. What is preserved from real RDMA is exactly what the paper's
// results depend on: posting a work request is cheap and asynchronous for
// the sender, one-sided operations complete without any remote CPU
// involvement, completions are reaped by polling CQs, and flow control is
// the application's job (the ring region's head/tail protocol).
//
// An optional CostModel imposes synthetic per-operation latency and
// bandwidth so microbenchmarks exhibit hardware-like asymmetries.
package rdma

import (
	"fmt"
	"sync"
	"time"
)

// CostModel adds synthetic delays to emulated operations. The zero value
// means "as fast as memcpy allows". Delays are imposed on the RNIC engine
// goroutine, not on posting threads — exactly like hardware.
type CostModel struct {
	// PostDelay is CPU-side time burned per posted work request (emulating
	// doorbell + WQE writing, ~hundreds of ns on real RNICs).
	PostDelay time.Duration
	// OpBaseDelay is per-operation base latency on the wire.
	OpBaseDelay time.Duration
	// BytesPerSecond is link bandwidth; zero means infinite.
	BytesPerSecond float64
	// TwoSidedExtraDelay models the rendezvous with the remote recv queue
	// that SEND/RECV pays and one-sided ops do not.
	TwoSidedExtraDelay time.Duration
	// RNRTimeout bounds how long a SEND waits for a remote receive buffer
	// before completing in error (receiver-not-ready). Zero means 5s.
	RNRTimeout time.Duration
}

func (c CostModel) rnrTimeout() time.Duration {
	if c.RNRTimeout == 0 {
		return 5 * time.Second
	}
	return c.RNRTimeout
}

func (c CostModel) transferDelay(bytes int) time.Duration {
	d := c.OpBaseDelay
	if c.BytesPerSecond > 0 {
		d += time.Duration(float64(bytes) / c.BytesPerSecond * 1e9)
	}
	return d
}

// Fabric is the emulated RDMA network: a registry of devices that can reach
// each other. One Fabric stands for one InfiniBand subnet.
type Fabric struct {
	mu      sync.Mutex
	devices map[string]*Device
	cost    CostModel
}

// NewFabric creates an empty fabric with the given cost model.
func NewFabric(cost CostModel) *Fabric {
	return &Fabric{devices: map[string]*Device{}, cost: cost}
}

// NewDevice registers a new RNIC on the fabric under a unique name
// (typically one per emulated machine).
func (f *Fabric) NewDevice(name string) (*Device, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.devices[name]; dup {
		return nil, fmt.Errorf("rdma: device %q already exists", name)
	}
	d := &Device{
		name:   name,
		fabric: f,
		mrs:    map[uint32]*MR{},
	}
	f.devices[name] = d
	return d, nil
}

// Device looks up a registered device by name.
func (f *Fabric) Device(name string) (*Device, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.devices[name]
	return d, ok
}

// Device is an emulated RNIC. All exported methods are safe for concurrent
// use.
type Device struct {
	name    string
	fabric  *Fabric
	mu      sync.Mutex
	mrs     map[uint32]*MR
	nextKey uint32
	nextQP  uint32
	closed  bool
}

// Name returns the device's fabric-unique name.
func (d *Device) Name() string { return d.name }

// AllocPD allocates a protection domain on the device.
func (d *Device) AllocPD() *PD { return &PD{dev: d} }

// lookupMR resolves an rkey on this device.
func (d *Device) lookupMR(rkey uint32) (*MR, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	mr, ok := d.mrs[rkey]
	if !ok {
		return nil, fmt.Errorf("rdma: device %s has no MR with rkey %d", d.name, rkey)
	}
	return mr, nil
}

// PD is a protection domain: memory regions and queue pairs created under
// different PDs cannot be mixed (enforced on post, as real verbs do).
type PD struct {
	dev *Device
}

// Device returns the PD's device.
func (p *PD) Device() *Device { return p.dev }
