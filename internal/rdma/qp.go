package rdma

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Typed sentinels for the verb posting paths, so callers (send retry
// loops in particular) can tell transient backpressure from fatal
// teardown with errors.Is. Each sentinel's text is the tail of the
// wrapped message, keeping the full error strings identical to the
// historical fmt.Errorf ones.
var (
	// ErrQPClosed: the queue pair was closed; posting can never succeed
	// again. Fatal.
	ErrQPClosed = errors.New("closed")
	// ErrSQFull: the send queue is at capacity. Transient backpressure —
	// retry after the RNIC drains.
	ErrSQFull = errors.New("send queue full")
	// ErrRQFull: the receive queue is at capacity. Transient.
	ErrRQFull = errors.New("receive queue full")
	// ErrNotConnected: the queue pair was never connected. Fatal until
	// ConnectPair runs.
	ErrNotConnected = errors.New("not connected")
)

// Opcode identifies the operation a work request performs.
type Opcode int

const (
	// OpSend is a two-sided send, consuming a posted receive at the peer.
	OpSend Opcode = iota
	// OpRecv completes when a peer's send lands in the posted buffer.
	OpRecv
	// OpWrite is a one-sided RDMA write into remote memory.
	OpWrite
	// OpRead is a one-sided RDMA read from remote memory.
	OpRead
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpWrite:
		return "WRITE"
	case OpRead:
		return "READ"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Status of a completed work request.
type Status int

const (
	// StatusOK means success.
	StatusOK Status = iota
	// StatusRNR means the peer had no receive posted within the timeout.
	StatusRNR
	// StatusErr covers protection/addressing failures.
	StatusErr
	// StatusFlush means the QP was torn down with the request outstanding.
	StatusFlush
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusRNR:
		return "RNR"
	case StatusErr:
		return "ERR"
	case StatusFlush:
		return "FLUSH"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// WC is a work completion.
type WC struct {
	WRID   uint64
	Op     Opcode
	Status Status
	// Bytes transferred (for OpRecv, the received length).
	Bytes int
	// Err carries detail when Status != StatusOK.
	Err error
}

// CQ is a completion queue. Completions are delivered in generation order;
// Poll drains without blocking, Wait blocks for at least one.
type CQ struct {
	ch chan WC
}

// NewCQ creates a completion queue with the given depth. The RNIC engine
// blocks when the CQ is full (a real RNIC would raise a fatal overflow
// error; blocking gives backpressure instead, which is kinder in tests and
// documented behaviour here).
func NewCQ(depth int) *CQ {
	if depth < 1 {
		depth = 1
	}
	return &CQ{ch: make(chan WC, depth)}
}

// Poll drains up to max completions without blocking.
func (c *CQ) Poll(max int) []WC {
	var out []WC
	for len(out) < max {
		select {
		case wc := <-c.ch:
			out = append(out, wc)
		default:
			return out
		}
	}
	return out
}

// Wait blocks until one completion arrives or the timeout elapses; ok is
// false on timeout.
func (c *CQ) Wait(timeout time.Duration) (WC, bool) {
	select {
	case wc := <-c.ch:
		return wc, true
	case <-time.After(timeout):
		return WC{}, false
	}
}

func (c *CQ) push(wc WC) { c.ch <- wc }

// SGE is a scatter/gather element referencing a slice of a local MR.
type SGE struct {
	MR     *MR
	Offset int
	Length int
}

// RemoteAddr names a window of a peer's registered memory.
type RemoteAddr struct {
	RKey   uint32
	Offset int
}

// WR is a work request.
type WR struct {
	WRID   uint64
	Op     Opcode
	Local  SGE        // local buffer (source for SEND/WRITE, sink for READ/RECV)
	Remote RemoteAddr // for one-sided ops
	// Inline carries payload by value for small SENDs (like IBV_SEND_INLINE);
	// when non-nil it takes precedence over Local.
	Inline []byte
}

// recvSlot is a posted receive awaiting a peer SEND.
type recvSlot struct {
	wr WR
}

// QP is a reliably-connected queue pair. Work requests post without
// blocking (up to the send-queue depth) and execute in order on the QP's
// engine goroutine, which is the emulated RNIC.
type QP struct {
	pd      *PD
	num     uint32
	sendCQ  *CQ
	recvCQ  *CQ
	sq      chan WR
	rq      chan recvSlot
	remote  *QP
	mu      sync.Mutex
	started bool
	closed  bool
	done    chan struct{}
}

// QPCap sets queue depths.
type QPCap struct {
	SendDepth int
	RecvDepth int
}

func (c QPCap) withDefaults() QPCap {
	if c.SendDepth <= 0 {
		c.SendDepth = 128
	}
	if c.RecvDepth <= 0 {
		c.RecvDepth = 128
	}
	return c
}

// CreateQP creates a queue pair under pd with separate send and receive
// completion queues.
func CreateQP(pd *PD, sendCQ, recvCQ *CQ, cap QPCap) *QP {
	cap = cap.withDefaults()
	d := pd.dev
	d.mu.Lock()
	d.nextQP++
	num := d.nextQP
	d.mu.Unlock()
	return &QP{
		pd:     pd,
		num:    num,
		sendCQ: sendCQ,
		recvCQ: recvCQ,
		sq:     make(chan WR, cap.SendDepth),
		rq:     make(chan recvSlot, cap.RecvDepth),
		done:   make(chan struct{}),
	}
}

// Num returns the queue pair number (unique per device).
func (q *QP) Num() uint32 { return q.num }

// ConnectPair transitions two queue pairs into RTS connected to each other,
// emulating the out-of-band (e.g. TCP or CM) QP exchange. It starts both
// RNIC engines.
func ConnectPair(a, b *QP) error {
	// Acquire the two instance locks in QP-number order: two concurrent
	// ConnectPair calls with swapped arguments would otherwise deadlock on
	// the a/b pair (the classic two-account problem). lockorder cannot see
	// instance identity, so the ordered second acquisition is waived below.
	first, second := a, b
	if second.num < first.num {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	if a != b {
		//lint:ignore lockorder same lock class on two instances, ordered by QP number above
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	if a.remote != nil || b.remote != nil {
		return fmt.Errorf("rdma: QP already connected")
	}
	a.remote, b.remote = b, a
	a.start()
	b.start()
	return nil
}

// start launches the engine goroutine; callers hold q.mu.
func (q *QP) start() {
	if q.started {
		return
	}
	q.started = true
	//lint:ignore gospawn engine exits when done closes; joining it here could deadlock against an undrained CQ
	go q.engine()
}

// PostSend posts a work request to the send queue. It returns an error if
// the queue pair is not connected, closed, or the send queue is full — it
// never blocks, mirroring ibv_post_send.
func (q *QP) PostSend(wr WR) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return fmt.Errorf("rdma: QP %d %w", q.num, ErrQPClosed)
	}
	if q.remote == nil {
		q.mu.Unlock()
		return fmt.Errorf("rdma: QP %d %w", q.num, ErrNotConnected)
	}
	q.mu.Unlock()
	if wr.Inline == nil && wr.Local.MR != nil && wr.Local.MR.pd != q.pd {
		return fmt.Errorf("rdma: MR and QP protection domains differ")
	}
	select {
	case q.sq <- wr:
		return nil
	default:
		return fmt.Errorf("rdma: QP %d %w", q.num, ErrSQFull)
	}
}

// PostRecv posts a receive buffer. Like PostSend it never blocks.
func (q *QP) PostRecv(wr WR) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return fmt.Errorf("rdma: QP %d %w", q.num, ErrQPClosed)
	}
	q.mu.Unlock()
	if wr.Local.MR != nil && wr.Local.MR.pd != q.pd {
		return fmt.Errorf("rdma: MR and QP protection domains differ")
	}
	select {
	case q.rq <- recvSlot{wr: wr}:
		return nil
	default:
		return fmt.Errorf("rdma: QP %d %w", q.num, ErrRQFull)
	}
}

// Close tears the QP down, flushing outstanding requests.
func (q *QP) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.done)
}

// engine is the emulated RNIC: it executes send-queue work requests in
// order, imposing the fabric cost model.
func (q *QP) engine() {
	cost := q.pd.dev.fabric.cost
	for {
		var wr WR
		select {
		case wr = <-q.sq:
		case <-q.done:
			q.flushSQ()
			q.flushRQ()
			return
		}
		if d := cost.transferDelay(q.wrLen(wr)); d > 0 {
			time.Sleep(d)
		}
		switch wr.Op {
		case OpSend:
			q.execSend(wr, cost)
		case OpWrite:
			q.execWrite(wr)
		case OpRead:
			q.execRead(wr)
		default:
			q.sendCQ.push(WC{WRID: wr.WRID, Op: wr.Op, Status: StatusErr,
				Err: fmt.Errorf("rdma: cannot post %v to send queue", wr.Op)})
		}
	}
}

func (q *QP) wrLen(wr WR) int {
	if wr.Inline != nil {
		return len(wr.Inline)
	}
	return wr.Local.Length
}

func (q *QP) flushSQ() {
	for {
		select {
		case wr := <-q.sq:
			q.sendCQ.push(WC{WRID: wr.WRID, Op: wr.Op, Status: StatusFlush})
		default:
			return
		}
	}
}

func (q *QP) flushRQ() {
	for {
		select {
		case slot := <-q.rq:
			q.recvCQ.push(WC{WRID: slot.wr.WRID, Op: OpRecv, Status: StatusFlush})
		default:
			return
		}
	}
}

// payload materialises the source bytes of a SEND/WRITE work request.
func (q *QP) payload(wr WR) ([]byte, error) {
	if wr.Inline != nil {
		return wr.Inline, nil
	}
	if wr.Local.MR == nil {
		return nil, fmt.Errorf("rdma: WR %d has neither inline data nor an MR", wr.WRID)
	}
	buf := make([]byte, wr.Local.Length)
	if err := wr.Local.MR.ReadAt(buf, wr.Local.Offset); err != nil {
		return nil, err
	}
	return buf, nil
}

func (q *QP) execSend(wr WR, cost CostModel) {
	if d := cost.TwoSidedExtraDelay; d > 0 {
		time.Sleep(d)
	}
	data, err := q.payload(wr)
	if err != nil {
		q.sendCQ.push(WC{WRID: wr.WRID, Op: OpSend, Status: StatusErr, Err: err})
		return
	}
	peer := q.remote
	var slot recvSlot
	select {
	case slot = <-peer.rq:
	case <-time.After(cost.rnrTimeout()):
		q.sendCQ.push(WC{WRID: wr.WRID, Op: OpSend, Status: StatusRNR,
			Err: fmt.Errorf("rdma: peer QP %d receiver not ready", peer.num)})
		return
	case <-q.done:
		q.sendCQ.push(WC{WRID: wr.WRID, Op: OpSend, Status: StatusFlush})
		return
	case <-peer.done:
		q.sendCQ.push(WC{WRID: wr.WRID, Op: OpSend, Status: StatusErr,
			Err: fmt.Errorf("rdma: peer QP %d closed", peer.num)})
		return
	}
	if slot.wr.Local.MR == nil || slot.wr.Local.Length < len(data) {
		err := fmt.Errorf("rdma: receive buffer too small (%d < %d)", slot.wr.Local.Length, len(data))
		q.sendCQ.push(WC{WRID: wr.WRID, Op: OpSend, Status: StatusErr, Err: err})
		peer.recvCQ.push(WC{WRID: slot.wr.WRID, Op: OpRecv, Status: StatusErr, Err: err})
		return
	}
	if err := slot.wr.Local.MR.WriteAt(data, slot.wr.Local.Offset); err != nil {
		q.sendCQ.push(WC{WRID: wr.WRID, Op: OpSend, Status: StatusErr, Err: err})
		peer.recvCQ.push(WC{WRID: slot.wr.WRID, Op: OpRecv, Status: StatusErr, Err: err})
		return
	}
	// Completing the peer's receive from the sender's engine keeps receive
	// completions in send order — the RC ordering guarantee.
	peer.recvCQ.push(WC{WRID: slot.wr.WRID, Op: OpRecv, Status: StatusOK, Bytes: len(data)})
	q.sendCQ.push(WC{WRID: wr.WRID, Op: OpSend, Status: StatusOK, Bytes: len(data)})
}

func (q *QP) execWrite(wr WR) {
	data, err := q.payload(wr)
	if err == nil {
		var mr *MR
		mr, err = q.remote.pd.dev.lookupMR(wr.Remote.RKey)
		if err == nil {
			err = mr.remoteWrite(data, wr.Remote.Offset)
		}
	}
	st := StatusOK
	if err != nil {
		st = StatusErr
	}
	q.sendCQ.push(WC{WRID: wr.WRID, Op: OpWrite, Status: st, Bytes: len(data), Err: err})
}

func (q *QP) execRead(wr WR) {
	var err error
	n := 0
	if wr.Local.MR == nil {
		err = fmt.Errorf("rdma: READ WR %d has no local MR", wr.WRID)
	} else {
		buf := make([]byte, wr.Local.Length)
		var mr *MR
		mr, err = q.remote.pd.dev.lookupMR(wr.Remote.RKey)
		if err == nil {
			err = mr.remoteRead(buf, wr.Remote.Offset)
		}
		if err == nil {
			err = wr.Local.MR.WriteAt(buf, wr.Local.Offset)
			n = len(buf)
		}
	}
	st := StatusOK
	if err != nil {
		st = StatusErr
	}
	q.sendCQ.push(WC{WRID: wr.WRID, Op: OpRead, Status: st, Bytes: n, Err: err})
}
