package rdma

import (
	"encoding/binary"
	"fmt"
)

// Ring layout constants: the first 16 bytes of the region are control words
// (head and tail cumulative byte counters), the rest is the data area.
const (
	ringHeadOff = 0
	ringTailOff = 8
	ringDataOff = 16
)

// ErrRingFull is returned when a frame does not fit in the ring's free
// space. The caller's transfer queue is expected to hold the tuple and
// retry — this is precisely the "transfer queue blocking" condition the
// paper's non-blocking tree is designed to avoid.
var ErrRingFull = fmt.Errorf("rdma: ring full")

// Ring is the producer-side view of Whale's ring memory region (paper §4):
// a single registered region reused for every message, so the RNIC's memory
// is registered once and multiplexed instead of per-message. The head
// counter (written by the producer) and tail counter (written by the
// consumer, possibly via one-sided WRITE from the remote side) live in the
// first 16 bytes of the same MR so a remote peer can READ/WRITE them.
type Ring struct {
	mr   *MR
	size int // data area size
	head uint64
	tail uint64 // producer's cached view; authoritative value is in the MR
}

// NewRing wraps an MR as a ring. The MR must be at least 64 bytes.
func NewRing(mr *MR) (*Ring, error) {
	if mr.Len() < 64 {
		return nil, fmt.Errorf("rdma: MR too small for a ring (%d bytes)", mr.Len())
	}
	r := &Ring{mr: mr, size: mr.Len() - ringDataOff}
	// Zero the control words.
	var zero [16]byte
	if err := mr.WriteAt(zero[:], 0); err != nil {
		return nil, err
	}
	return r, nil
}

// MR returns the underlying region (to export its rkey).
func (r *Ring) MR() *MR { return r.mr }

// DataSize returns the usable data-area size.
func (r *Ring) DataSize() int { return r.size }

// refreshTail re-reads the tail counter, which the consumer advances.
func (r *Ring) refreshTail() error {
	var b [8]byte
	if err := r.mr.ReadAt(b[:], ringTailOff); err != nil {
		return err
	}
	r.tail = binary.LittleEndian.Uint64(b[:])
	return nil
}

// Occupancy returns the bytes currently published but not yet known to be
// consumed, from the producer's cached view of the tail (an upper bound:
// the consumer may have advanced further). Callers must serialise with the
// producer (the owning channel holds its send lock).
func (r *Ring) Occupancy() int {
	// A failed refresh leaves the cached tail, which is still a valid
	// upper bound on occupancy.
	_ = r.refreshTail()
	return int(r.head - r.tail)
}

// Free returns the bytes currently available for appending.
func (r *Ring) Free() (int, error) {
	if err := r.refreshTail(); err != nil {
		return 0, err
	}
	return r.size - int(r.head-r.tail), nil
}

// Append writes one length-prefixed frame into the ring and publishes it by
// advancing the head counter. It returns ErrRingFull when the frame does
// not fit. Publishing after the data write means a concurrent reader never
// observes a partial frame.
//
//whale:hotpath
func (r *Ring) Append(frame []byte) error {
	need := 4 + len(frame)
	if need > r.size {
		return fmt.Errorf("rdma: frame of %d bytes exceeds ring data size %d", len(frame), r.size)
	}
	free, err := r.Free()
	if err != nil {
		return err
	}
	if need > free {
		return ErrRingFull
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	if err := r.writeWrapped(r.head, hdr[:]); err != nil {
		return err
	}
	if err := r.writeWrapped(r.head+4, frame); err != nil {
		return err
	}
	r.head += uint64(need)
	var hb [8]byte
	binary.LittleEndian.PutUint64(hb[:], r.head)
	return r.mr.WriteAt(hb[:], ringHeadOff)
}

// writeWrapped writes p at the cumulative position pos, wrapping around the
// data area.
func (r *Ring) writeWrapped(pos uint64, p []byte) error {
	off := int(pos % uint64(r.size))
	n := len(p)
	if off+n <= r.size {
		return r.mr.WriteAt(p, ringDataOff+off)
	}
	first := r.size - off
	if err := r.mr.WriteAt(p[:first], ringDataOff+off); err != nil {
		return err
	}
	return r.mr.WriteAt(p[first:], ringDataOff)
}

// LocalConsume reads all complete frames currently published (for the
// one-sided WRITE mode, where the consumer owns the ring and reads it with
// plain local access), advances the tail, and invokes fn per frame.
func (r *Ring) LocalConsume(fn func(frame []byte)) (int, error) {
	var hb [8]byte
	if err := r.mr.ReadAt(hb[:], ringHeadOff); err != nil {
		return 0, err
	}
	head := binary.LittleEndian.Uint64(hb[:])
	count := 0
	for r.tail < head {
		var lb [4]byte
		if err := r.readWrapped(r.tail, lb[:]); err != nil {
			return count, err
		}
		n := binary.LittleEndian.Uint32(lb[:])
		frame := make([]byte, n)
		if err := r.readWrapped(r.tail+4, frame); err != nil {
			return count, err
		}
		r.tail += uint64(4 + n)
		fn(frame)
		count++
	}
	var tb [8]byte
	binary.LittleEndian.PutUint64(tb[:], r.tail)
	if err := r.mr.WriteAt(tb[:], ringTailOff); err != nil {
		return count, err
	}
	return count, nil
}

// readWrapped reads into p from cumulative position pos.
func (r *Ring) readWrapped(pos uint64, p []byte) error {
	off := int(pos % uint64(r.size))
	n := len(p)
	if off+n <= r.size {
		return r.mr.ReadAt(p, ringDataOff+off)
	}
	first := r.size - off
	if err := r.mr.ReadAt(p[:first], ringDataOff+off); err != nil {
		return err
	}
	return r.mr.ReadAt(p[first:], ringDataOff)
}

// RemoteRing is the consumer-side view of a peer's ring region, accessed
// purely with one-sided READ (data and head) and WRITE (tail feedback), so
// the producer's CPU is never involved in the transfer — the property the
// paper exploits for the multicast data path.
type RemoteRing struct {
	qp       *QP
	stage    *MR // local staging buffer for READ results
	rkey     uint32
	dataSize int
	tail     uint64
	wrid     uint64
}

// NewRemoteRing prepares a consumer for the remote ring behind rkey with
// the given data-area size. stage must be a local MR at least as large as
// the remote data area.
func NewRemoteRing(qp *QP, stage *MR, rkey uint32, dataSize int) (*RemoteRing, error) {
	if stage.Len() < dataSize {
		return nil, fmt.Errorf("rdma: staging MR %d bytes < remote data area %d", stage.Len(), dataSize)
	}
	return &RemoteRing{qp: qp, stage: stage, rkey: rkey, dataSize: dataSize}, nil
}

// readRemote issues a one-sided READ of [off, off+n) in the remote MR into
// the staging MR at stageOff and waits for its completion on the QP's send
// CQ. The channel owns the CQ, so no other requests race with it.
func (rr *RemoteRing) readRemote(stageOff, off, n int, cq *CQ) error {
	rr.wrid++
	err := rr.qp.PostSend(WR{
		WRID:   rr.wrid,
		Op:     OpRead,
		Local:  SGE{MR: rr.stage, Offset: stageOff, Length: n},
		Remote: RemoteAddr{RKey: rr.rkey, Offset: off},
	})
	if err != nil {
		return err
	}
	wc, ok := cq.Wait(rnrWait)
	if !ok {
		return fmt.Errorf("rdma: READ completion timed out")
	}
	if wc.Status != StatusOK {
		return fmt.Errorf("rdma: READ failed: %v (%v)", wc.Status, wc.Err)
	}
	return nil
}

// Poll fetches any newly published frames from the remote ring, invoking fn
// for each, and writes the tail feedback back to the producer. It returns
// the number of frames consumed. cq is the consumer-owned send CQ.
func (rr *RemoteRing) Poll(cq *CQ, fn func(frame []byte)) (int, error) {
	// Read the remote head counter.
	if err := rr.readRemote(0, ringHeadOff, 8, cq); err != nil {
		return 0, err
	}
	var hb [8]byte
	if err := rr.stage.ReadAt(hb[:], 0); err != nil {
		return 0, err
	}
	head := binary.LittleEndian.Uint64(hb[:])
	if head == rr.tail {
		return 0, nil
	}
	if head < rr.tail || head-rr.tail > uint64(rr.dataSize) {
		return 0, fmt.Errorf("rdma: remote ring corrupt (head=%d tail=%d)", head, rr.tail)
	}
	// Read the newly published byte range (up to two segments on wrap) into
	// the staging MR at offset 16 (mirroring the remote layout keeps offset
	// arithmetic identical).
	newBytes := int(head - rr.tail)
	start := int(rr.tail % uint64(rr.dataSize))
	if start+newBytes <= rr.dataSize {
		if err := rr.readRemote(ringDataOff+start, ringDataOff+start, newBytes, cq); err != nil {
			return 0, err
		}
	} else {
		first := rr.dataSize - start
		if err := rr.readRemote(ringDataOff+start, ringDataOff+start, first, cq); err != nil {
			return 0, err
		}
		if err := rr.readRemote(ringDataOff, ringDataOff, newBytes-first, cq); err != nil {
			return 0, err
		}
	}
	// Parse frames out of the staged bytes.
	count := 0
	pos := rr.tail
	for pos < head {
		var lb [4]byte
		if err := rr.stageRead(pos, lb[:]); err != nil {
			return count, err
		}
		n := binary.LittleEndian.Uint32(lb[:])
		if uint64(4+n) > head-pos {
			return count, fmt.Errorf("rdma: frame of %d bytes overruns published range", n)
		}
		frame := make([]byte, n)
		if err := rr.stageRead(pos+4, frame); err != nil {
			return count, err
		}
		pos += uint64(4 + n)
		fn(frame)
		count++
	}
	rr.tail = head
	// One-sided WRITE of the tail feedback into the producer's ring.
	var tb [8]byte
	binary.LittleEndian.PutUint64(tb[:], rr.tail)
	rr.wrid++
	if err := rr.qp.PostSend(WR{
		WRID:   rr.wrid,
		Op:     OpWrite,
		Inline: tb[:],
		Remote: RemoteAddr{RKey: rr.rkey, Offset: ringTailOff},
	}); err != nil {
		return count, err
	}
	wc, ok := cq.Wait(rnrWait)
	if !ok || wc.Status != StatusOK {
		return count, fmt.Errorf("rdma: tail WRITE failed: %+v", wc)
	}
	return count, nil
}

// stageRead reads from the staging MR using ring-wrapped addressing.
func (rr *RemoteRing) stageRead(pos uint64, p []byte) error {
	off := int(pos % uint64(rr.dataSize))
	if off+len(p) <= rr.dataSize {
		return rr.stage.ReadAt(p, ringDataOff+off)
	}
	first := rr.dataSize - off
	if err := rr.stage.ReadAt(p[:first], ringDataOff+off); err != nil {
		return err
	}
	return rr.stage.ReadAt(p[first:], ringDataOff)
}
