package rdma

import (
	"fmt"
	"sync"
)

// Access flags for memory registration.
type Access uint32

const (
	// AccessLocalWrite permits local writes (always implied for recv).
	AccessLocalWrite Access = 1 << iota
	// AccessRemoteRead permits remote one-sided READ.
	AccessRemoteRead
	// AccessRemoteWrite permits remote one-sided WRITE.
	AccessRemoteWrite
)

// MR is a registered memory region. Because this is an in-process emulation
// and Go forbids racy slice access, all access to the region's bytes goes
// through ReadAt/WriteAt, which lock the region. This serialises "DMA" with
// application access — a stricter memory model than hardware, never a
// weaker one, so protocols that are correct here are correct on hardware.
type MR struct {
	pd     *PD
	lkey   uint32
	rkey   uint32
	access Access

	mu  sync.Mutex
	buf []byte
}

// RegisterMemory registers length bytes under the protection domain and
// returns the MR. It corresponds to ibv_reg_mr; Whale registers one large
// region per connection and multiplexes it as a ring (paper §4) precisely
// to avoid calling this in the hot path.
func RegisterMemory(pd *PD, length int, access Access) (*MR, error) {
	if length <= 0 {
		return nil, fmt.Errorf("rdma: RegisterMemory length %d", length)
	}
	d := pd.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("rdma: device %s closed", d.name)
	}
	d.nextKey++
	mr := &MR{
		pd:     pd,
		lkey:   d.nextKey,
		rkey:   d.nextKey,
		access: access,
		buf:    make([]byte, length),
	}
	d.mrs[mr.rkey] = mr
	return mr, nil
}

// Deregister removes the region from the device. Outstanding operations
// that already resolved the MR still complete.
func (m *MR) Deregister() {
	d := m.pd.dev
	d.mu.Lock()
	delete(d.mrs, m.rkey)
	d.mu.Unlock()
}

// LKey returns the local key.
func (m *MR) LKey() uint32 { return m.lkey }

// RKey returns the remote key to hand to peers.
func (m *MR) RKey() uint32 { return m.rkey }

// Len returns the region's size in bytes.
func (m *MR) Len() int { return len(m.buf) }

// ReadAt copies from the region into p, returning an error on out-of-bounds
// access (the emulated equivalent of a local protection fault).
func (m *MR) ReadAt(p []byte, off int) error {
	if off < 0 || off+len(p) > len(m.buf) {
		return fmt.Errorf("rdma: MR read [%d,%d) out of bounds (len %d)", off, off+len(p), len(m.buf))
	}
	m.mu.Lock()
	copy(p, m.buf[off:])
	m.mu.Unlock()
	return nil
}

// WriteAt copies p into the region at off.
func (m *MR) WriteAt(p []byte, off int) error {
	if off < 0 || off+len(p) > len(m.buf) {
		return fmt.Errorf("rdma: MR write [%d,%d) out of bounds (len %d)", off, off+len(p), len(m.buf))
	}
	m.mu.Lock()
	copy(m.buf[off:], p)
	m.mu.Unlock()
	return nil
}

// remoteRead serves a one-sided READ against this region.
func (m *MR) remoteRead(p []byte, off int) error {
	if m.access&AccessRemoteRead == 0 {
		return fmt.Errorf("rdma: MR rkey %d not registered for remote read", m.rkey)
	}
	return m.ReadAt(p, off)
}

// remoteWrite serves a one-sided WRITE against this region.
func (m *MR) remoteWrite(p []byte, off int) error {
	if m.access&AccessRemoteWrite == 0 {
		return fmt.Errorf("rdma: MR rkey %d not registered for remote write", m.rkey)
	}
	return m.WriteAt(p, off)
}
