package sim

import (
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(300, func() { order = append(order, 3) })
	e.At(100, func() { order = append(order, 1) })
	e.At(200, func() { order = append(order, 2) })
	e.At(100, func() { order = append(order, 10) }) // same time: FIFO
	e.Run()
	want := []int{1, 10, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if e.Now() != 300 {
		t.Fatalf("clock %d", e.Now())
	}
}

func TestAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.After(50, func() {
		hits = append(hits, e.Now())
		e.After(25, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 50 || hits[1] != 75 {
		t.Fatalf("hits %v", hits)
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 || e.Now() != 20 {
		t.Fatalf("fired=%d now=%d", fired, e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("fired=%d", fired)
	}
}

func TestServerFIFOAndBusy(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu", 0)
	var done []Time
	s.Submit(100, func() { done = append(done, e.Now()) })
	s.Submit(50, func() { done = append(done, e.Now()) })
	s.Submit(10, func() { done = append(done, e.Now()) })
	e.Run()
	want := []Time{100, 150, 160}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
	if s.Served != 3 || s.BusyNS != 160 {
		t.Fatalf("served=%d busy=%d", s.Served, s.BusyNS)
	}
	if u := s.Utilization(); u != 1 {
		t.Fatalf("utilization %f", u)
	}
}

func TestServerIdleGap(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu", 0)
	s.Submit(10, nil)
	e.Run() // now = 10
	e.At(100, func() { s.Submit(10, nil) })
	e.Run() // second job runs 100..110
	if e.Now() != 110 {
		t.Fatalf("now %d", e.Now())
	}
	if got := s.Utilization(); math.Abs(got-20.0/110.0) > 1e-9 {
		t.Fatalf("utilization %f", got)
	}
}

func TestServerCapacityDrops(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "q", 2)
	if !s.Submit(100, nil) || !s.Submit(100, nil) {
		t.Fatal("first two submits must fit")
	}
	if s.Submit(100, nil) {
		t.Fatal("third submit must drop")
	}
	if s.Dropped != 1 || s.QueueLen() != 2 {
		t.Fatalf("dropped=%d qlen=%d", s.Dropped, s.QueueLen())
	}
	e.Run()
	// After draining there is room again.
	if !s.Submit(10, nil) {
		t.Fatal("submit after drain dropped")
	}
	if s.PeakQueue() != 2 {
		t.Fatalf("peak %d", s.PeakQueue())
	}
}

func TestServerDelay(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "q", 0)
	if s.Delay() != 0 {
		t.Fatal("idle server has delay")
	}
	s.Submit(100, nil)
	s.Submit(100, nil)
	if s.Delay() != 200 {
		t.Fatalf("delay %d", s.Delay())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Exp(1000) != b.Exp(1000) {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Exp(1000) != c.Exp(1000) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestExpMeanApproximatesRate(t *testing.T) {
	g := NewRNG(7)
	const rate = 10000.0 // 10k/s -> mean 100µs = 1e5 ns
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(g.Exp(rate))
	}
	mean := sum / n
	if math.Abs(mean-1e5) > 0.05e5 {
		t.Fatalf("mean interarrival %f ns, want ~1e5", mean)
	}
}

func TestArrivalsPoissonCount(t *testing.T) {
	e := NewEngine()
	g := NewRNG(1)
	count := 0
	const rate, horizon = 5000.0, Time(1e9)
	Arrivals(e, g, horizon, func(Time) float64 { return rate }, func() { count++ })
	e.RunUntil(horizon)
	// Expect ~5000 arrivals in 1s, within 5 sigma (~353).
	if math.Abs(float64(count)-5000) > 400 {
		t.Fatalf("arrivals %d, want ~5000", count)
	}
}

func TestArrivalsTimeVaryingStops(t *testing.T) {
	e := NewEngine()
	g := NewRNG(2)
	count := 0
	// Rate goes to zero after 0.5s: the process must stop by itself.
	Arrivals(e, g, 1e9, func(now Time) float64 {
		if now > 5e8 {
			return 0
		}
		return 1000
	}, func() { count++ })
	e.Run()
	if count < 400 || count > 600 {
		t.Fatalf("arrivals %d, want ~500", count)
	}
	if e.Pending() != 0 {
		t.Fatal("events left after rate hit zero")
	}
}

func TestNegativeServicePanics(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "x", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Submit(-1, nil)
}
