package sim

import "testing"

// TestServerWaitNS checks the analytic queueing-delay accumulator the DES
// bottleneck report feeds from: jobs arriving at a busy server are charged
// exactly the gap between submission and service start, idle arrivals and
// dropped jobs are charged nothing.
func TestServerWaitNS(t *testing.T) {
	eng := NewEngine()
	s := NewServer(eng, "exec", 0)

	s.Submit(100, nil) // starts immediately: wait 0
	if s.WaitNS != 0 {
		t.Fatalf("idle submit accrued wait %d", s.WaitNS)
	}
	s.Submit(100, nil) // queued behind job 1: waits 100
	s.Submit(100, nil) // queued behind 1+2: waits 200
	if s.WaitNS != 300 {
		t.Fatalf("WaitNS = %d, want 300", s.WaitNS)
	}

	eng.RunUntil(250) // jobs 1 and 2 done; job 3 in service until 300
	s.Submit(100, nil)
	if s.WaitNS != 350 { // nextFree=300, now=250 → +50
		t.Fatalf("WaitNS = %d, want 350", s.WaitNS)
	}
	eng.Run()
	if s.Served != 4 || s.BusyNS != 400 {
		t.Fatalf("served=%d busy=%d", s.Served, s.BusyNS)
	}

	// A capacity overflow is dropped before it ever queues.
	bounded := NewServer(eng, "bounded", 2)
	bounded.Submit(50, nil)
	bounded.Submit(50, nil)
	before := bounded.WaitNS
	if bounded.Submit(50, nil) {
		t.Fatal("over-capacity submit accepted")
	}
	if bounded.WaitNS != before || bounded.Dropped != 1 {
		t.Fatalf("dropped job charged wait: wait=%d dropped=%d", bounded.WaitNS, bounded.Dropped)
	}
}
