// Package sim is a small discrete-event simulation kernel: a virtual clock,
// an event heap, single-server FIFO queues with optional capacity (the
// transfer queues of the paper), and deterministic random processes
// (Poisson arrivals). The benchmark harness uses it to model the paper's
// 30-node cluster at full scale (480 instances) in milliseconds of real
// time, with every cost parameterised by internal/netmodel.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Time is simulated time in nanoseconds.
type Time = int64

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the simulation clock and scheduler. Not safe for concurrent
// use: a simulation runs on one goroutine by design (determinism).
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%d < %d)", t, e.now))
	}
	e.seq++
	heap.Push(&e.heap, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the next event; it returns false when none remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// Server is a single-server FIFO queue: jobs submitted while the server is
// busy wait in order; an optional queue capacity causes overflow drops (the
// paper's "stream input loss", Definition 4).
type Server struct {
	eng      *Engine
	name     string
	capacity int // pending-job cap; 0 = unbounded
	nextFree Time
	pending  int

	// BusyNS accumulates service time (for utilisation).
	BusyNS int64
	// WaitNS accumulates queueing delay: time accepted jobs spent between
	// submission and service start (the stall the bottleneck analyzer
	// attributes to this server).
	WaitNS int64
	// Served counts completed jobs.
	Served int64
	// Dropped counts capacity overflows.
	Dropped int64
	// peakQueue tracks the max pending backlog observed.
	peakQueue int
}

// NewServer creates a server on the engine. capacity bounds the number of
// queued (not yet started) jobs; 0 means unbounded.
func NewServer(eng *Engine, name string, capacity int) *Server {
	return &Server{eng: eng, name: name, capacity: capacity}
}

// Submit enqueues a job with the given service time; onDone (may be nil)
// runs at completion. It returns false if the queue is full (job dropped).
func (s *Server) Submit(service Time, onDone func()) bool {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time on %s", s.name))
	}
	if s.capacity > 0 && s.pending >= s.capacity {
		s.Dropped++
		return false
	}
	s.pending++
	if s.pending > s.peakQueue {
		s.peakQueue = s.pending
	}
	start := s.nextFree
	if start < s.eng.now {
		start = s.eng.now
	}
	s.WaitNS += start - s.eng.now
	done := start + service
	s.nextFree = done
	s.BusyNS += service
	s.eng.At(done, func() {
		s.pending--
		s.Served++
		if onDone != nil {
			onDone()
		}
	})
	return true
}

// Delay returns how long a job submitted now would wait before service.
func (s *Server) Delay() Time {
	if s.nextFree <= s.eng.now {
		return 0
	}
	return s.nextFree - s.eng.now
}

// QueueLen returns the number of jobs submitted but not yet completed.
func (s *Server) QueueLen() int { return s.pending }

// PeakQueue returns the highest backlog observed.
func (s *Server) PeakQueue() int { return s.peakQueue }

// Utilization returns busy time divided by elapsed time.
func (s *Server) Utilization() float64 {
	if s.eng.now == 0 {
		return 0
	}
	u := float64(s.BusyNS) / float64(s.eng.now)
	if u > 1 {
		u = 1
	}
	return u
}

// RNG wraps a seeded source with the distributions the workloads need.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the seed.
func NewRNG(seed int64) *RNG { return &RNG{r: rand.New(rand.NewSource(seed))} }

// Exp draws an exponential interarrival time (ns) for a rate in events/sec.
func (g *RNG) Exp(ratePerSec float64) Time {
	if ratePerSec <= 0 {
		panic("sim: non-positive rate")
	}
	d := -math.Log(1-g.r.Float64()) / ratePerSec * 1e9
	if d < 1 {
		d = 1
	}
	return Time(d)
}

// Uniform draws from [0, n).
func (g *RNG) Uniform(n int) int { return g.r.Intn(n) }

// Float returns a uniform float64 in [0, 1).
func (g *RNG) Float() float64 { return g.r.Float64() }

// Arrivals drives a (possibly time-varying) arrival process: rate(now)
// gives the instantaneous rate in events/sec; each arrival invokes fn. The
// process stops when rate returns 0 or the engine passes stopAt.
func Arrivals(eng *Engine, g *RNG, stopAt Time, rate func(now Time) float64, fn func()) {
	var tick func()
	tick = func() {
		if eng.Now() >= stopAt {
			return
		}
		r := rate(eng.Now())
		if r <= 0 {
			return
		}
		eng.After(g.Exp(r), func() {
			if eng.Now() >= stopAt {
				return
			}
			fn()
			tick()
		})
	}
	tick()
}
