package queueing

import (
	"math"
	"testing"
)

func TestUtilizationN(t *testing.T) {
	cases := []struct {
		lambda, te float64
		n          int
		want       float64
	}{
		{1000, 0.001, 1, 1.0},
		{1000, 0.001, 2, 0.5},
		{1000, 0.001, 4, 0.25},
		{0, 0.001, 3, 0},
		{500, 0, 2, 0}, // instantaneous service: no utilization
	}
	for _, tc := range cases {
		if got := UtilizationN(tc.lambda, tc.te, tc.n); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("UtilizationN(%g, %g, %d) = %g, want %g", tc.lambda, tc.te, tc.n, got, tc.want)
		}
	}
}

func TestUtilizationNPanics(t *testing.T) {
	for _, f := range []func(){
		func() { UtilizationN(1000, 0.001, 0) },
		func() { UtilizationN(-1, 0.001, 1) },
		func() { UtilizationN(1000, -0.001, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid UtilizationN input did not panic")
				}
			}()
			f()
		}()
	}
}

func TestInstancesForRho(t *testing.T) {
	cases := []struct {
		lambda, te, rho float64
		want            int
	}{
		{2000, 0.001, 0.55, 4}, // ceil(2/0.55) = 4
		{2000, 0.001, 0.5, 4},  // exact division: 2/0.5 = 4
		{2001, 0.001, 0.5, 5},  // just past exact: ceil rounds up
		{0, 0.001, 0.5, 1},     // idle sizes to the floor of one
		{100, 0.001, 0.8, 1},
		{64000, 0.001, 0.5, 128},
	}
	for _, tc := range cases {
		if got := InstancesForRho(tc.lambda, tc.te, tc.rho); got != tc.want {
			t.Errorf("InstancesForRho(%g, %g, %g) = %d, want %d", tc.lambda, tc.te, tc.rho, got, tc.want)
		}
	}
	// The returned count always satisfies the band: ρ(n) <= rho < ρ(n-1)
	// checks the "smallest such n" claim across a sweep.
	for lambda := 100.0; lambda <= 100000; lambda *= 3 {
		n := InstancesForRho(lambda, 0.0007, 0.6)
		if rho := UtilizationN(lambda, 0.0007, n); rho > 0.6+1e-9 {
			t.Errorf("λ=%g: ρ(%d) = %g exceeds the target band", lambda, n, rho)
		}
		if n > 1 {
			if rho := UtilizationN(lambda, 0.0007, n-1); rho <= 0.6 {
				t.Errorf("λ=%g: n=%d is not minimal, ρ(%d) = %g already fits", lambda, n, n-1, rho)
			}
		}
	}
}

func TestInstancesForRhoPanics(t *testing.T) {
	for _, f := range []func(){
		func() { InstancesForRho(1000, 0.001, 0) },
		func() { InstancesForRho(1000, 0.001, 1) },
		func() { InstancesForRho(-1, 0.001, 0.5) },
		func() { InstancesForRho(1000, -1, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid InstancesForRho input did not panic")
				}
			}()
			f()
		}()
	}
}

func TestQueueLengthN(t *testing.T) {
	// One instance at λ=500, te=0.001 is an M/D/1 queue at λ=500, μ=1000.
	want := MeanQueueLength(500, 1000)
	if got := QueueLengthN(500, 0.001, 1); got != want {
		t.Errorf("QueueLengthN(500, 0.001, 1) = %g, want %g", got, want)
	}
	// Splitting the same load over two instances halves the per-server λ.
	want = MeanQueueLength(250, 1000)
	if got := QueueLengthN(500, 0.001, 2); got != want {
		t.Errorf("QueueLengthN(500, 0.001, 2) = %g, want %g", got, want)
	}
	// Unstable per-server load predicts an unbounded queue.
	if got := QueueLengthN(3000, 0.001, 2); !math.IsInf(got, 1) {
		t.Errorf("QueueLengthN(3000, 0.001, 2) = %g, want +Inf", got)
	}
	// Adding instances never lengthens the per-server queue.
	prev := math.Inf(1)
	for n := 1; n <= 8; n++ {
		q := QueueLengthN(900, 0.001, n)
		if q > prev {
			t.Errorf("QueueLengthN not monotone: n=%d gives %g after %g", n, q, prev)
		}
		prev = q
	}
}
