package queueing

import (
	"fmt"
	"math"
)

// Operator-parallelism sizing for the autoscale controller
// (internal/dsps/autoscale.go). An operator with n instances behind a
// shuffle/fields split is modelled as n parallel M/D/1 servers fed λ/n
// each, every server deterministic at te seconds per tuple, so the
// per-instance utilization is
//
//	ρ(n) = (λ/n)·te = λ·te/n
//
// and the smallest instance count holding utilization at or below a target
// band point ρt is ceil(λ·te/ρt).

// UtilizationN returns ρ(n) = λ·te/n, the per-instance utilization of an
// operator with n instances sharing arrival rate λ (tuples/s) when one
// tuple costs te seconds to execute. It panics if n < 1 or te < 0 or
// λ < 0; callers validate measurements at the boundary.
func UtilizationN(lambda, te float64, n int) float64 {
	if n < 1 || te < 0 || lambda < 0 {
		panic(fmt.Sprintf("queueing: invalid UtilizationN(λ=%g, te=%g, n=%d)", lambda, te, n))
	}
	return lambda * te / float64(n)
}

// InstancesForRho returns the smallest instance count n >= 1 for which
// ρ(n) = λ·te/n <= rho, i.e. ceil(λ·te/rho). rho must be in (0, 1): at
// rho >= 1 the per-instance queue is unstable by the M/D/1 stability
// condition, so no meaningful sizing exists there. λ = 0 (an idle
// operator) sizes to the minimum of one instance.
func InstancesForRho(lambda, te float64, rho float64) int {
	if lambda < 0 || te < 0 || rho <= 0 || rho >= 1 {
		panic(fmt.Sprintf("queueing: invalid InstancesForRho(λ=%g, te=%g, ρ=%g)", lambda, te, rho))
	}
	n := math.Ceil(lambda * te / rho)
	if n < 1 {
		return 1
	}
	if n >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(n)
}

// QueueLengthN returns the predicted mean M/D/1 queue length at one of n
// instances sharing arrival rate λ with deterministic service time te
// (+Inf when the per-instance queue is unstable). The autoscale decision
// log records it next to the measured queue depth so a decision can be
// audited against the model after the fact.
func QueueLengthN(lambda, te float64, n int) float64 {
	if n < 1 || te <= 0 || lambda < 0 {
		panic(fmt.Sprintf("queueing: invalid QueueLengthN(λ=%g, te=%g, n=%d)", lambda, te, n))
	}
	return MeanQueueLength(lambda/float64(n), 1/te)
}
