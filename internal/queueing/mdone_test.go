package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProcessingRate(t *testing.T) {
	// One replica at 1ms each: 1000 tuples/s.
	if got := ProcessingRate(1, 0.001); got != 1000 {
		t.Fatalf("ProcessingRate(1, 1ms) = %g", got)
	}
	// Doubling the out-degree halves the rate.
	if got := ProcessingRate(2, 0.001); got != 500 {
		t.Fatalf("ProcessingRate(2, 1ms) = %g", got)
	}
}

func TestProcessingRateWOC(t *testing.T) {
	// Serialization dominates: with ts=100µs, td=2µs and d=30 workers the
	// worker-oriented rate is 1/(30*2µs + 100µs) = 6250 tuples/s, far above
	// the instance-oriented rate at the same fan-out.
	woc := ProcessingRateWOC(30, 2e-6, 100e-6)
	inst := ProcessingRate(30, 102e-6)
	if woc <= inst {
		t.Fatalf("WOC rate %g not better than instance-oriented %g", woc, inst)
	}
	if math.Abs(woc-6250) > 1 {
		t.Fatalf("woc = %g, want ~6250", woc)
	}
}

func TestMeanQueueLength(t *testing.T) {
	// Light load: E(L) ~ λ/μ.
	el := MeanQueueLength(1, 1000)
	if el < 0.001 || el > 0.0011 {
		t.Fatalf("E(L) at ρ=0.001: %g", el)
	}
	// Unstable: infinite.
	if !math.IsInf(MeanQueueLength(1000, 1000), 1) {
		t.Fatal("E(L) at λ=μ should be +Inf")
	}
	if !math.IsInf(MeanQueueLength(2000, 1000), 1) {
		t.Fatal("E(L) at λ>μ should be +Inf")
	}
	// Monotone in λ.
	prev := 0.0
	for _, lam := range []float64{100, 300, 500, 700, 900, 990} {
		el := MeanQueueLength(lam, 1000)
		if el <= prev {
			t.Fatalf("E(L) not increasing at λ=%g: %g <= %g", lam, el, prev)
		}
		prev = el
	}
}

func TestMaxOutDegreeConsistentWithMaxAffordableRate(t *testing.T) {
	// d* from Eq. 3 must be the largest degree whose affordable rate (Eq. 5)
	// still covers λ.
	const te, Q = 50e-6, 100.0
	for _, lambda := range []float64{100, 1000, 5000, 20000, 100000} {
		d := MaxOutDegree(lambda, te, Q)
		if MaxAffordableRate(1, te, Q) < lambda {
			// Unaffordable even at out-degree 1: d* clamps to the floor.
			if d != 1 {
				t.Fatalf("λ=%g unaffordable: d*=%d, want clamp to 1", lambda, d)
			}
			continue
		}
		if M := MaxAffordableRate(d, te, Q); M < lambda*(1-1e-9) {
			t.Fatalf("λ=%g: d*=%d but M(d*)=%g < λ", lambda, d, M)
		}
		if d > 1 {
			if M := MaxAffordableRate(d+1, te, Q); M >= lambda {
				t.Fatalf("λ=%g: d*=%d not maximal, M(d*+1)=%g >= λ", lambda, d, M)
			}
		}
	}
}

func TestMaxOutDegreeFloor(t *testing.T) {
	// Even an unaffordable stream yields d* = 1, never 0.
	if d := MaxOutDegree(1e9, 1e-3, 10); d != 1 {
		t.Fatalf("d* = %d, want 1", d)
	}
}

func TestTheorem1InverseProportionality(t *testing.T) {
	// M ∝ 1/d0: M(d)·d is constant.
	const te, Q = 20e-6, 50.0
	base := MaxAffordableRate(1, te, Q)
	for d := 2; d <= 64; d *= 2 {
		m := MaxAffordableRate(d, te, Q)
		if math.Abs(m*float64(d)-base) > 1e-6*base {
			t.Fatalf("M(%d)·%d = %g, want %g", d, d, m*float64(d), base)
		}
	}
}

func TestMeanQueueLengthAtMaxAffordableRate(t *testing.T) {
	// At λ = M the mean queue length equals Q (that is how Eq. 3 and Eq. 5
	// are derived from E(L) <= Q).
	const te = 10e-6
	for _, Q := range []float64{1, 10, 100, 1000} {
		for _, d := range []int{1, 3, 8} {
			m := MaxAffordableRate(d, te, Q)
			mu := ProcessingRate(d, te)
			el := MeanQueueLength(m, mu)
			if math.Abs(el-Q) > 1e-6*Q {
				t.Fatalf("Q=%g d=%d: E(L) at M = %g, want %g", Q, d, el, Q)
			}
		}
	}
}

func TestBinomialSourceDegree(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {15, 4}, {480, 9},
	}
	for _, c := range cases {
		if got := BinomialSourceDegree(c.n); got != c.want {
			t.Fatalf("BinomialSourceDegree(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSourceDegree(t *testing.T) {
	if got := SourceDegree(480, 3); got != 3 {
		t.Fatalf("SourceDegree(480, 3) = %d", got)
	}
	if got := SourceDegree(7, 10); got != 3 {
		t.Fatalf("SourceDegree(7, 10) = %d", got)
	}
}

func TestCapabilityBinomialGrowth(t *testing.T) {
	// Unrestricted (d* >= log2(n+1)): doubles each unit (Eq. 6).
	l := Capability(1000, 30, 20)
	for i := 1; i < len(l); i++ {
		want := int64(1) << i
		if want > 1001 {
			want = 1001
		}
		if l[i] != want {
			t.Fatalf("L(%d) = %d, want %d", i, l[i], want)
		}
	}
}

func TestCapabilityCappedGrowth(t *testing.T) {
	// d*=2, n=7 reproduces the paper's Fig. 6 schedule: layers complete at
	// t=1(1 new), t=2(2), t=3(3), t=4(1) → cumulative 2,4,7,8.
	l := Capability(7, 2, 10)
	want := []int64{1, 2, 4, 7, 8}
	if len(l) != len(want) {
		t.Fatalf("sequence %v, want %v", l, want)
	}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("L = %v, want %v", l, want)
		}
	}
}

func TestTheorem2Monotonicity(t *testing.T) {
	// Larger d* (up to the binomial bound) never covers fewer destinations
	// at any time t.
	const n = 480
	for d1 := 1; d1 < 9; d1++ {
		l1 := Capability(n, d1, 600)
		l2 := Capability(n, d1+1, 600)
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l2[i] < l1[i] {
				t.Fatalf("L_{d*=%d}(%d)=%d < L_{d*=%d}(%d)=%d", d1+1, i, l2[i], d1, i, l1[i])
			}
		}
		if len(l2) > len(l1) {
			t.Fatalf("higher d* (%d) finished later (%d) than d*=%d (%d)", d1+1, len(l2)-1, d1, len(l1)-1)
		}
	}
}

func TestCompletionTime(t *testing.T) {
	if got := CompletionTime(7, 2); got != 4 {
		t.Fatalf("CompletionTime(7,2) = %d, want 4 (paper Fig. 6)", got)
	}
	if got := CompletionTime(7, 3); got != 3 {
		t.Fatalf("CompletionTime(7,3) = %d, want 3 (pure binomial)", got)
	}
	// A chain (d*=1) needs n units.
	if got := CompletionTime(5, 1); got != 5 {
		t.Fatalf("CompletionTime(5,1) = %d, want 5", got)
	}
	if got := CompletionTime(0, 3); got != 0 {
		t.Fatalf("CompletionTime(0,3) = %d, want 0", got)
	}
}

func TestQuickCompletionCoversAll(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r.Seed(seed)
		n := 1 + r.Intn(2000)
		dstar := 1 + r.Intn(12)
		l := Capability(n, dstar, n+1)
		return l[len(l)-1] == int64(n)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSafeSwitchDelay(t *testing.T) {
	// Q=1000, q=400, vin=30000/s: 600/30000 = 20ms.
	if got := SafeSwitchDelay(1000, 400, 30000); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("SafeSwitchDelay = %g, want 0.02", got)
	}
	if got := SafeSwitchDelay(1000, 1000, 30000); got != 0 {
		t.Fatalf("full queue: %g, want 0", got)
	}
	if !math.IsInf(SafeSwitchDelay(1000, 0, 0), 1) {
		t.Fatal("zero input rate: want +Inf")
	}
}

func TestMinTuplesForScaleUp(t *testing.T) {
	// γ'=1000, γ=2000, T=0.1s: X > 2000*1000*0.1/1000 = 200 tuples.
	if got := MinTuplesForScaleUp(2000, 1000, 0.1); math.Abs(got-200) > 1e-9 {
		t.Fatalf("MinTuplesForScaleUp = %g, want 200", got)
	}
	if !math.IsInf(MinTuplesForScaleUp(1000, 1000, 0.1), 1) {
		t.Fatal("no rate gain: want +Inf")
	}
}

func TestPanicsOnInvalidInput(t *testing.T) {
	cases := []func(){
		func() { ProcessingRate(0, 1) },
		func() { ProcessingRate(1, 0) },
		func() { ProcessingRateWOC(1, -1, 1) },
		func() { ProcessingRateWOC(1, 1, 0) },
		func() { MeanQueueLength(-1, 1) },
		func() { MeanQueueLength(1, 0) },
		func() { MaxOutDegree(0, 1, 1) },
		func() { MaxAffordableRate(0, 1, 1) },
		func() { Capability(-1, 1, 1) },
		func() { Capability(1, 0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
