// Package queueing implements the M/D/1 analysis the Whale paper uses to
// size the non-blocking multicast tree (paper §3.2.1, Eqs. 1-5):
//
//   - the processing rate of a source with out-degree d (Eq. 1),
//   - the mean queue length of an M/D/1 queue (Eq. 2),
//   - the maximum out-degree d* that keeps the mean queue length within the
//     transfer-queue capacity Q (Eq. 3),
//   - the maximum affordable input rate M for a given out-degree (Eq. 5,
//     Theorem 1),
//
// plus the multicast-capability recurrences of Theorem 2 (Eqs. 6-7) and the
// worker-oriented rate correction from §4 (μ = 1/(d·t_d + t_s)).
//
// Rates are tuples per second; times are seconds.
package queueing

import (
	"fmt"
	"math"
)

// ProcessingRate returns μ = 1/(d0·te), the service rate of a source
// instance that must emit d0 replicas, each costing te seconds (Eq. 1).
// It panics if d0 < 1 or te <= 0; callers validate inputs at the boundary.
func ProcessingRate(d0 int, te float64) float64 {
	if d0 < 1 || te <= 0 {
		panic(fmt.Sprintf("queueing: invalid ProcessingRate(d0=%d, te=%g)", d0, te))
	}
	return 1 / (float64(d0) * te)
}

// ProcessingRateWOC returns the worker-oriented processing rate
// μ = 1/(d·t_d + t_s) from §4, where the tuple is serialized once (t_s) and
// then scheduled onto d channels at t_d each.
func ProcessingRateWOC(d int, td, ts float64) float64 {
	if d < 0 || td < 0 || ts <= 0 {
		panic(fmt.Sprintf("queueing: invalid ProcessingRateWOC(d=%d, td=%g, ts=%g)", d, td, ts))
	}
	return 1 / (float64(d)*td + ts)
}

// MeanQueueLength returns E(L) = λ²/(2μ(μ-λ)) + λ/μ, the mean number of
// tuples in an M/D/1 system (Eq. 2). It returns +Inf when the queue is
// unstable (λ >= μ).
func MeanQueueLength(lambda, mu float64) float64 {
	if lambda < 0 || mu <= 0 {
		panic(fmt.Sprintf("queueing: invalid MeanQueueLength(λ=%g, μ=%g)", lambda, mu))
	}
	if lambda >= mu {
		return math.Inf(1)
	}
	return lambda*lambda/(2*mu*(mu-lambda)) + lambda/mu
}

// Utilization returns ρ = λ/μ.
func Utilization(lambda, mu float64) float64 { return lambda / mu }

// MeanWaitTime returns W_q = λ/(2μ(μ-λ)), the mean time a tuple waits in
// an M/D/1 queue before service (Little's law over the queueing term of
// Eq. 2). The bottleneck analyzer compares it against measured stall time
// per component. It returns +Inf when the queue is unstable (λ >= μ).
func MeanWaitTime(lambda, mu float64) float64 {
	if lambda < 0 || mu <= 0 {
		panic(fmt.Sprintf("queueing: invalid MeanWaitTime(λ=%g, μ=%g)", lambda, mu))
	}
	if lambda >= mu {
		return math.Inf(1)
	}
	return lambda / (2 * mu * (mu - lambda))
}

// qFactor returns Q+1-sqrt(Q²+1), the term Eq. 3 and Eq. 5 share. It is in
// (0, 1] for Q >= 0 and approaches 1 as Q grows.
func qFactor(Q float64) float64 {
	return Q + 1 - math.Sqrt(Q*Q+1)
}

// MaxOutDegree returns d*, the largest out-degree for which the mean queue
// length stays within the transfer-queue capacity Q:
//
//	d0 <= (Q+1-sqrt(Q²+1)) / (λ·te)
//
// Erratum note: the paper's printed Eq. 3 reads 2Q/(λ·te·(Q+1-sqrt(Q²+1))),
// which equals (Q+1+sqrt(Q²+1))/(λ·te) — the larger root of the quadratic in
// ρ obtained from E(L) <= Q, which violates the stability requirement ρ < 1
// and contradicts the paper's own Eq. 4, Eq. 5 and Theorem 1. Solving
// E(L) <= Q with E(L) from Eq. 2 yields ρ = λ·d0·te <= Q+1-sqrt(Q²+1)
// (the smaller root), which is exactly Eq. 4 rearranged; we implement that
// consistent form, so MaxAffordableRate(MaxOutDegree(λ,..), ..) >= λ holds.
//
// The result is at least 1: a source must always be able to forward to one
// cascading instance, even if the queue model says the stream is already
// unaffordable (the controller will then be shedding via backpressure).
func MaxOutDegree(lambda, te, Q float64) int {
	if lambda <= 0 || te <= 0 || Q <= 0 {
		panic(fmt.Sprintf("queueing: invalid MaxOutDegree(λ=%g, te=%g, Q=%g)", lambda, te, Q))
	}
	d := qFactor(Q) / (lambda * te)
	if d < 1 {
		return 1
	}
	if d >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(d)
}

// MaxAffordableRate returns M = (Q+1-sqrt(Q²+1)) / (d0·te), the largest
// input rate for which E(L) <= Q with out-degree d0 (Eq. 5, Theorem 1).
func MaxAffordableRate(d0 int, te, Q float64) float64 {
	if d0 < 1 || te <= 0 || Q <= 0 {
		panic(fmt.Sprintf("queueing: invalid MaxAffordableRate(d0=%d, te=%g, Q=%g)", d0, te, Q))
	}
	return qFactor(Q) / (float64(d0) * te)
}

// BinomialSourceDegree returns ceil(log2(n+1)), the out-degree of the source
// in an unrestricted binomial multicast tree over n destinations (§3.2.2).
func BinomialSourceDegree(n int) int {
	if n <= 0 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n + 1))))
}

// SourceDegree returns the out-degree the source ends up with in a
// non-blocking multicast tree: min{d*, ceil(log2(n+1))} (§3.2.2).
func SourceDegree(n, dstar int) int {
	b := BinomialSourceDegree(n)
	if dstar < b {
		return dstar
	}
	return b
}

// Capability returns the cumulative multicast capability sequence
// L(1..tmax) for a non-blocking tree with n destinations and out-degree cap
// dstar, following Theorem 2:
//
//	L(t) = 2·L(t-1)                    t <= d*   (binomial growth, Eq. 6)
//	L(t) = 2·L(t-1) - L(t-d*-1)        t >  d*   (capped growth, Eq. 7)
//
// with L(0) = 1 (only the source holds the tuple). Values are clamped at
// n+1 (source plus all destinations); the sequence stops early once every
// destination is covered.
func Capability(n, dstar, tmax int) []int64 {
	if n < 0 || dstar < 1 || tmax < 0 {
		panic(fmt.Sprintf("queueing: invalid Capability(n=%d, d*=%d, tmax=%d)", n, dstar, tmax))
	}
	full := int64(n) + 1
	l := make([]int64, tmax+1)
	l[0] = 1
	for t := 1; t <= tmax; t++ {
		var v int64
		if t <= dstar {
			v = 2 * l[t-1]
		} else {
			v = 2*l[t-1] - l[t-dstar-1]
		}
		if v > full {
			v = full
		}
		l[t] = v
		if v == full {
			return l[:t+1]
		}
	}
	return l
}

// CompletionTime returns the number of time units a non-blocking tree with
// out-degree cap dstar needs until all n destinations hold the tuple.
func CompletionTime(n, dstar int) int {
	if n == 0 {
		return 0
	}
	// The capped recurrence grows at least linearly (one new destination per
	// unit once saturated), so n+1 units always suffice... except for
	// dstar=1 chains, which also finish in exactly n units.
	l := Capability(n, dstar, n+1)
	return len(l) - 1
}

// SafeSwitchDelay returns the largest dynamic-switching delay that avoids
// tuple loss during a negative scale-down (Theorem 4):
//
//	T_switch < (Q - q(t*)) / v_in(t*)
//
// where q is the queue length when the switch triggers and vin the input
// rate. It returns 0 if the queue is already at or beyond capacity.
func SafeSwitchDelay(Q, q, vin float64) float64 {
	if vin <= 0 {
		return math.Inf(1)
	}
	if q >= Q {
		return 0
	}
	return (Q - q) / vin
}

// MinTuplesForScaleUp returns the minimum number of multicast tuples X for
// which an active scale-up pays off (Theorem 5):
//
//	X > γ·γ'·T_switch / (γ - γ')
//
// where γ' and γ are the multicast rates before and after the switch. It
// returns +Inf when the switch does not increase the rate (γ <= γ').
func MinTuplesForScaleUp(gammaAfter, gammaBefore, tswitch float64) float64 {
	if gammaAfter <= gammaBefore {
		return math.Inf(1)
	}
	return gammaAfter * gammaBefore * tswitch / (gammaAfter - gammaBefore)
}
