package queueing

import (
	"math"
	"testing"
)

// TestMeanWaitTime checks the M/D/1 mean waiting time Wq = λ/(2μ(μ−λ))
// the bottleneck analyzer compares measured stalls against.
func TestMeanWaitTime(t *testing.T) {
	// λ=800/s, μ=1000/s: Wq = 800/(2·1000·200) = 2ms.
	if w := MeanWaitTime(800, 1000); math.Abs(w-0.002) > 1e-12 {
		t.Fatalf("MeanWaitTime(800,1000) = %v, want 0.002", w)
	}
	// Little's law consistency: Lq (queueing part of MeanQueueLength minus
	// the in-service term ρ) equals λ·Wq.
	lam, mu := 600.0, 1000.0
	rho := lam / mu
	lq := MeanQueueLength(lam, mu) - rho
	if math.Abs(lq-lam*MeanWaitTime(lam, mu)) > 1e-9 {
		t.Fatalf("Little's law violated: Lq=%v λWq=%v", lq, lam*MeanWaitTime(lam, mu))
	}
	// Wq grows monotonically in λ.
	if !(MeanWaitTime(100, 1000) < MeanWaitTime(500, 1000) && MeanWaitTime(500, 1000) < MeanWaitTime(999, 1000)) {
		t.Fatal("MeanWaitTime not monotone in λ")
	}
	// Saturation and overload diverge.
	if !math.IsInf(MeanWaitTime(1000, 1000), 1) || !math.IsInf(MeanWaitTime(1500, 1000), 1) {
		t.Fatal("λ ≥ μ must yield +Inf")
	}
	// Idle queue waits nothing.
	if w := MeanWaitTime(0, 1000); w != 0 {
		t.Fatalf("MeanWaitTime(0,1000) = %v", w)
	}
	for _, bad := range [][2]float64{{-1, 1000}, {100, 0}, {100, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MeanWaitTime(%v, %v) did not panic", bad[0], bad[1])
				}
			}()
			MeanWaitTime(bad[0], bad[1])
		}()
	}
}
