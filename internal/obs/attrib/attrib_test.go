package attrib

import (
	"strings"
	"testing"
)

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(Input{WindowNS: 1e9})
	if len(rep.Findings) != 0 || rep.TotalStallNS != 0 {
		t.Fatalf("empty input produced findings: %+v", rep)
	}
	if top := rep.Top(); top != (Finding{}) {
		t.Fatalf("Top() on empty report = %+v", top)
	}
	if got := rep.String(); !strings.Contains(got, "no attributable stall") {
		t.Fatalf("String() = %q", got)
	}
}

func TestLinkClassDiagnosis(t *testing.T) {
	cases := []struct {
		name string
		link LinkSample
		want string
	}{
		{"credit dominates", LinkSample{From: 3, To: 7, CreditWaitNS: 100, QueueWaitNS: 10, PausedNS: 5}, ClassCreditLimited},
		{"queue dominates", LinkSample{From: 3, To: 7, CreditWaitNS: 10, QueueWaitNS: 100, PausedNS: 5}, ClassSendQueue},
		{"pause dominates", LinkSample{From: 3, To: 7, CreditWaitNS: 10, QueueWaitNS: 5, PausedNS: 100}, ClassBackpressured},
		// Ties resolve toward credit-limited (the >= arms).
		{"credit ties queue", LinkSample{From: 3, To: 7, CreditWaitNS: 50, QueueWaitNS: 50}, ClassCreditLimited},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Analyze(Input{WindowNS: 1e9, Links: []LinkSample{tc.link}})
			top := rep.Top()
			if top.Class != tc.want {
				t.Fatalf("class = %q, want %q (finding %+v)", top.Class, tc.want, top)
			}
			if top.Component != "link w3→w7" {
				t.Fatalf("component = %q", top.Component)
			}
			if top.Share != 1 {
				t.Fatalf("single finding share = %v, want 1", top.Share)
			}
		})
	}
}

func TestZeroStallComponentsSkipped(t *testing.T) {
	rep := Analyze(Input{
		WindowNS: 1e9,
		Links:    []LinkSample{{From: 0, To: 1, Sent: 1000}},
		Workers:  []WorkerSample{{Worker: 2, Role: RoleExecutor, BusyNS: 5e8}},
	})
	if len(rep.Findings) != 0 {
		t.Fatalf("zero-stall components should be skipped: %+v", rep.Findings)
	}
}

func TestWorkerRoleClasses(t *testing.T) {
	for role, class := range map[string]string{
		RoleExecutor: ClassSlowSubscriber,
		RoleRelay:    ClassHotRelay,
		RoleRing:     ClassRingLimited,
		RoleSource:   ClassReplayLimited,
	} {
		rep := Analyze(Input{WindowNS: 1e9, Workers: []WorkerSample{{Worker: 4, Role: role, StallNS: 10}}})
		if got := rep.Top().Class; got != class {
			t.Errorf("role %s → class %q, want %q", role, got, class)
		}
	}
}

func TestMD1Comparison(t *testing.T) {
	// ρ = 0.8: M/D/1 mean queue = ρ + ρ²/(2(1−ρ)) = 0.8 + 1.6 = 2.4.
	rep := Analyze(Input{WindowNS: 1e9, Workers: []WorkerSample{{
		Worker: 1, Role: RoleExecutor, StallNS: 100,
		ArrivalPerSec: 800, ServicePerSec: 1000, QueueLen: 2.0,
	}}})
	top := rep.Top()
	if top.Utilization != 0.8 {
		t.Fatalf("utilization = %v", top.Utilization)
	}
	if top.PredictedQueue < 2.39 || top.PredictedQueue > 2.41 {
		t.Fatalf("predicted queue = %v, want ≈2.4", top.PredictedQueue)
	}
	if strings.Contains(top.Detail, "excess queueing") {
		t.Fatalf("2.0 measured vs 2.4 predicted flagged as excess: %q", top.Detail)
	}

	// Measured queue far beyond 2·Lq+1 flags external stall.
	rep = Analyze(Input{WindowNS: 1e9, Workers: []WorkerSample{{
		Worker: 1, Role: RoleExecutor, StallNS: 100,
		ArrivalPerSec: 800, ServicePerSec: 1000, QueueLen: 50,
	}}})
	if d := rep.Top().Detail; !strings.Contains(d, "excess queueing") {
		t.Fatalf("measured 50 vs predicted 2.4 not flagged: %q", d)
	}
}

func TestOverloadedWorker(t *testing.T) {
	rep := Analyze(Input{WindowNS: 1e9, Workers: []WorkerSample{{
		Worker: 6, Role: RoleExecutor, StallNS: 100,
		ArrivalPerSec: 1200, ServicePerSec: 1000,
	}}})
	top := rep.Top()
	if top.PredictedQueue != -1 {
		t.Fatalf("overloaded predicted queue = %v, want -1", top.PredictedQueue)
	}
	if !strings.Contains(top.Detail, "overloaded") {
		t.Fatalf("detail = %q", top.Detail)
	}
}

func TestRankingAndTieBreak(t *testing.T) {
	in := Input{
		WindowNS: 1e9,
		Links: []LinkSample{
			{From: 0, To: 2, CreditWaitNS: 300},
			{From: 0, To: 1, CreditWaitNS: 300}, // ties w0→w2 on stall; wins on name
		},
		Workers: []WorkerSample{
			{Worker: 5, Role: RoleExecutor, StallNS: 700},
		},
	}
	rep := Analyze(in)
	if rep.TotalStallNS != 1300 {
		t.Fatalf("total stall = %d", rep.TotalStallNS)
	}
	want := []string{"worker 5 executor", "link w0→w1", "link w0→w2"}
	for i, comp := range want {
		if rep.Findings[i].Component != comp {
			t.Fatalf("rank %d = %q, want %q (report %+v)", i+1, rep.Findings[i].Component, comp, rep.Findings)
		}
	}
	var share float64
	for _, f := range rep.Findings {
		share += f.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("shares sum to %v", share)
	}
	if s := rep.String(); !strings.Contains(s, "#1 worker 5 executor slow-subscriber: 54%") {
		t.Fatalf("String() = %q", s)
	}
}
