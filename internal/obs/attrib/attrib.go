// Package attrib folds the observability layer's span and stall data into
// a per-component utilization profile, compares it against the M/D/1
// predictions of internal/queueing, and emits a ranked bottleneck report
// ("link w3→w7 credit-limited, 41% of attributed stall time").
//
// The package is pure data-in/data-out: producers (the live dsps engine,
// the simulated cluster) build an Input from their own counters and call
// Analyze; nothing here touches the engine, HTTP, or the clock, which
// keeps it trivially testable and free of import cycles.
package attrib

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"whale/internal/queueing"
)

// Input is a point-in-time capture of the stall and utilization signals
// the analyzer folds. All durations are cumulative nanoseconds over the
// observation window.
type Input struct {
	// WindowNS is the observation window the cumulative counters cover.
	WindowNS int64
	// Stages aggregates the tracer's per-stage latency histograms.
	Stages []StageSample
	// Links samples every flow-controlled (or modelled) directed link.
	Links []LinkSample
	// Workers samples per-worker components (executors, relays, rings).
	Workers []WorkerSample
}

// StageSample aggregates one pipeline stage or stall class across the
// cluster, straight from the tracer's histograms.
type StageSample struct {
	Stage string
	Count int64
	SumNS int64
	P99NS int64
}

// LinkSample is one directed sender→receiver link's stall profile.
type LinkSample struct {
	From, To int32
	// CreditWaitNS is sender time blocked on the credit window.
	CreditWaitNS int64
	// QueueWaitNS is sampled residency in the per-destination sender FIFO.
	QueueWaitNS int64
	// PausedNS / ThrottledNS are waterline-state residencies.
	PausedNS, ThrottledNS int64
	// Sent counts deliveries pushed over the link in the window.
	Sent int64
	// Queued is the current sender-FIFO depth.
	Queued int
}

// Worker roles, used to name what kind of component saturated.
const (
	RoleExecutor = "executor"
	RoleRelay    = "relay"
	RoleRing     = "rdma-ring"
	RoleSource   = "source"
)

// WorkerSample is one per-worker component's stall and service profile.
type WorkerSample struct {
	Worker int32
	// Role classifies the component (RoleExecutor, RoleRelay, RoleRing,
	// RoleSource).
	Role string
	// StallNS is waiting attributed to this component: executor-queue
	// residency for executors, relay-queue wait for relays, ring-full
	// blocking for rings, replay/backoff time for sources.
	StallNS int64
	// BusyNS is service time spent by the component in the window.
	BusyNS int64
	// ArrivalPerSec (λ) and ServicePerSec (μ) feed the M/D/1 comparison;
	// zero when unknown.
	ArrivalPerSec, ServicePerSec float64
	// QueueLen is the measured mean or current queue length at the
	// component, compared against the M/D/1 prediction.
	QueueLen float64
}

// Bottleneck classes the analyzer can name.
const (
	ClassCreditLimited  = "credit-limited"
	ClassSendQueue      = "send-queue-limited"
	ClassBackpressured  = "backpressured"
	ClassSlowSubscriber = "slow-subscriber"
	ClassHotRelay       = "hot-relay"
	ClassRingLimited    = "ring-limited"
	ClassReplayLimited  = "replay-limited"
)

// Finding is one ranked bottleneck attribution.
type Finding struct {
	// Component names the bottlenecked element ("link w3→w7",
	// "worker 5 executor", "worker 2 rdma-ring").
	Component string `json:"component"`
	// Class is the diagnosed bottleneck class (Class* constants).
	Class string `json:"class"`
	// StallNS is the waiting attributed to the component.
	StallNS int64 `json:"stall_ns"`
	// Share is StallNS over the report's total attributed stall.
	Share float64 `json:"share"`
	// Utilization is the component's measured (or λ/μ) utilization.
	Utilization float64 `json:"utilization,omitempty"`
	// PredictedQueue is the M/D/1 mean queue length for the component's
	// λ and μ; +Inf (rendered as -1) when overloaded, 0 when unknown.
	PredictedQueue float64 `json:"predicted_queue,omitempty"`
	// MeasuredQueue is the observed queue length.
	MeasuredQueue float64 `json:"measured_queue,omitempty"`
	// Detail is a one-line human-readable diagnosis.
	Detail string `json:"detail"`
}

// Report is the ranked bottleneck analysis.
type Report struct {
	WindowNS     int64     `json:"window_ns"`
	TotalStallNS int64     `json:"total_stall_ns"`
	Findings     []Finding `json:"findings"`
}

// Top returns the highest-ranked finding, or a zero Finding when the
// profile shows no attributable stall.
func (r Report) Top() Finding {
	if len(r.Findings) == 0 {
		return Finding{}
	}
	return r.Findings[0]
}

// String renders the ranked report, one finding per line.
func (r Report) String() string {
	if len(r.Findings) == 0 {
		return "bottleneck: no attributable stall time"
	}
	var b strings.Builder
	for i, f := range r.Findings {
		fmt.Fprintf(&b, "#%d %s %s: %.0f%% of attributed stall (%.2fms)", i+1, f.Component, f.Class,
			f.Share*100, float64(f.StallNS)/1e6)
		if f.Detail != "" {
			fmt.Fprintf(&b, " — %s", f.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Analyze folds the input into a ranked bottleneck report. For every link
// and worker component it sums the attributable stall time, diagnoses the
// dominant class, checks measured queueing against the M/D/1 prediction
// for the component's λ and μ, and ranks by stall share. The analysis is
// deterministic: equal stalls tie-break on component name.
func Analyze(in Input) Report {
	var fs []Finding

	for _, l := range in.Links {
		stall := l.CreditWaitNS + l.QueueWaitNS + l.PausedNS
		if stall <= 0 {
			continue
		}
		class := ClassSendQueue
		detail := "sender FIFO residency dominates"
		switch {
		case l.CreditWaitNS >= l.QueueWaitNS && l.CreditWaitNS >= l.PausedNS:
			class = ClassCreditLimited
			detail = fmt.Sprintf("sender blocked %.2fms on the credit window", float64(l.CreditWaitNS)/1e6)
		case l.PausedNS > l.QueueWaitNS:
			class = ClassBackpressured
			detail = fmt.Sprintf("link paused %.2fms by the waterline state machine", float64(l.PausedNS)/1e6)
		}
		fs = append(fs, Finding{
			Component:     fmt.Sprintf("link w%d→w%d", l.From, l.To),
			Class:         class,
			StallNS:       stall,
			MeasuredQueue: float64(l.Queued),
			Detail:        detail,
		})
	}

	for _, w := range in.Workers {
		if w.StallNS <= 0 {
			continue
		}
		f := Finding{
			Component:     fmt.Sprintf("worker %d %s", w.Worker, w.Role),
			StallNS:       w.StallNS,
			MeasuredQueue: w.QueueLen,
		}
		switch w.Role {
		case RoleRelay:
			f.Class = ClassHotRelay
		case RoleRing:
			f.Class = ClassRingLimited
		case RoleSource:
			f.Class = ClassReplayLimited
		default:
			f.Class = ClassSlowSubscriber
		}
		if w.ArrivalPerSec > 0 && w.ServicePerSec > 0 {
			f.Utilization = queueing.Utilization(w.ArrivalPerSec, w.ServicePerSec)
			lq := queueing.MeanQueueLength(w.ArrivalPerSec, w.ServicePerSec)
			if lq < 0 || math.IsNaN(lq) || math.IsInf(lq, 1) { // overloaded: λ ≥ μ yields +Inf
				f.PredictedQueue = -1
				f.Detail = fmt.Sprintf("overloaded: λ=%.0f/s ≥ μ=%.0f/s, queue grows without bound",
					w.ArrivalPerSec, w.ServicePerSec)
			} else {
				f.PredictedQueue = lq
				f.Detail = fmt.Sprintf("ρ=%.2f, M/D/1 predicts queue %.1f, measured %.1f",
					f.Utilization, lq, w.QueueLen)
				if lq > 0 && w.QueueLen > 2*lq+1 {
					f.Detail += " — excess queueing beyond the M/D/1 prediction points at an external stall"
				}
			}
		} else if in.WindowNS > 0 && w.BusyNS > 0 {
			f.Utilization = float64(w.BusyNS) / float64(in.WindowNS)
		}
		fs = append(fs, f)
	}

	var total int64
	for _, f := range fs {
		total += f.StallNS
	}
	for i := range fs {
		if total > 0 {
			fs[i].Share = float64(fs[i].StallNS) / float64(total)
		}
	}
	sort.SliceStable(fs, func(a, b int) bool {
		if fs[a].StallNS != fs[b].StallNS {
			return fs[a].StallNS > fs[b].StallNS
		}
		return fs[a].Component < fs[b].Component
	})
	return Report{WindowNS: in.WindowNS, TotalStallNS: total, Findings: fs}
}
