package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecordHopMetadata checks hop metadata survives into the retained
// timeline and that stall spans land in the trace.stall.* histograms.
func TestRecordHopMetadata(t *testing.T) {
	reg := NewRegistry()
	tr := newTracer(reg, 1, 8)
	id := tr.Sample()
	base := time.Now()
	tr.RecordHop(id, StageTreeHop, 3, 1, 2, 1, 4, base, 5*time.Microsecond)
	tr.RecordHop(id, StallCreditWait, 3, 7, 0, 0, 0, base.Add(time.Millisecond), 9*time.Microsecond)
	tr.RecordHop(0, StageTreeHop, 3, 1, 2, 1, 4, base, time.Microsecond) // no-op

	spans := tr.Spans()
	if len(spans) != 1 || len(spans[0].Events) != 2 {
		t.Fatalf("spans: %+v", spans)
	}
	hop := spans[0].Events[0]
	if hop.Stage != StageTreeHop || hop.Worker != 3 || hop.Peer != 1 || hop.Version != 2 || hop.Depth != 1 || hop.Fanout != 4 {
		t.Fatalf("hop metadata lost: %+v", hop)
	}
	s := reg.Snapshot()
	if s.Histograms["trace.stall.credit_wait_ns"].Count != 1 {
		t.Fatalf("stall histogram not fed: %+v", s.Histograms)
	}
	if s.Histograms["trace.stage.tree_hop_ns"].Count != 1 {
		t.Fatalf("stage histogram counted the traceID=0 no-op: %+v", s.Histograms)
	}
}

// TestTracerConcurrentStress hammers Sample/Record/RecordHop/Spans from
// many goroutines with a tiny keep bound, so pooled span timelines are
// constantly evicted and reused while readers copy them. Run under -race
// this is the regression test for torn span-buffer reads.
func TestTracerConcurrentStress(t *testing.T) {
	tr := newTracer(NewRegistry(), 1, 4)
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // concurrent reader: deep-copies under the tracer lock
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sp := range tr.Spans() {
				for _, ev := range sp.Events {
					if ev.Stage == "" {
						t.Error("torn span event: empty stage")
						return
					}
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // concurrent exporter
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tr.WriteTraceEvents(io.Discard); err != nil {
				t.Errorf("export: %v", err)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := time.Now()
			for i := 0; i < perWriter; i++ {
				id := tr.Sample()
				tr.Record(id, StageSerialize, int32(w), base, time.Microsecond)
				tr.RecordHop(id, StageTreeHop, int32(w), 1, 1, 1, 2, base, time.Microsecond)
				tr.RecordHop(id, StallSendQueueWait, int32(w), 1, 0, 0, 0, base, time.Microsecond)
				// Also write into traces other goroutines own (and into
				// evicted ids) — cross-trace appends are the contended path.
				tr.Record(int64(i%16+1), StageExecute, int32(w), base, time.Microsecond)
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("retained %d traces, want keep=4", got)
	}
}

// TestRecordDisabledZeroAlloc is the tracing-off half of the overhead
// contract: for an untraced tuple (trace ID 0) Record and RecordHop must
// not allocate at all.
func TestRecordDisabledZeroAlloc(t *testing.T) {
	tr := newTracer(NewRegistry(), 0, 0)
	base := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Sample() != 0 {
			t.Fatal("disabled tracer sampled")
		}
		tr.Record(0, StageSerialize, 0, base, time.Microsecond)
		tr.RecordHop(0, StageTreeHop, 0, 1, 1, 1, 2, base, time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("tracing-off hot path allocated %.2f allocs/op, want 0", allocs)
	}
}

// TestRecordEnabledBoundedAlloc is the tracing-on half: recording into an
// established trace reuses pooled span storage, so steady-state appends
// amortize to (well) under one allocation per record.
func TestRecordEnabledBoundedAlloc(t *testing.T) {
	tr := newTracer(NewRegistry(), 1, 4)
	base := time.Now()
	// Warm the pool: cycle enough traces that evicted timelines with grown
	// event slices are available for reuse.
	for i := 0; i < 64; i++ {
		id := tr.Sample()
		for j := 0; j < 8; j++ {
			tr.Record(id, StageExecute, 0, base, time.Microsecond)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		id := tr.Sample()
		for j := 0; j < 8; j++ {
			tr.Record(id, StageExecute, 0, base, time.Microsecond)
		}
	})
	// 9 tracer calls per run; require well under one allocation per call.
	if allocs > 2 {
		t.Fatalf("tracing-on steady state allocated %.2f allocs per traced tuple (9 calls), want <= 2", allocs)
	}
}

// TestWriteTraceEvents checks the Chrome trace_event export: rebased
// microsecond timestamps, stage vs stall categories, and hop args.
func TestWriteTraceEvents(t *testing.T) {
	tr := newTracer(NewRegistry(), 1, 8)
	id := tr.Sample()
	base := time.Unix(0, 1_000_000_000)
	tr.Record(id, StageSerialize, 0, base, 2*time.Microsecond)
	tr.RecordHop(id, StageTreeHop, 1, 0, 3, 1, 2, base.Add(10*time.Microsecond), 4*time.Microsecond)
	tr.RecordHop(id, StallCreditWait, 1, 2, 0, 0, 0, base.Add(20*time.Microsecond), 6*time.Microsecond)

	var b strings.Builder
	if err := tr.WriteTraceEvents(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  int64          `json:"pid"`
			TID  int32          `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("exported %d events, want 3", len(out.TraceEvents))
	}
	first := out.TraceEvents[0]
	if first.Ph != "X" || first.TS != 0 || first.Name != "serialize" || first.Cat != "stage" {
		t.Fatalf("first event not rebased complete event: %+v", first)
	}
	hop := out.TraceEvents[1]
	if hop.Cat != "stage" || hop.TS != 10 || hop.Dur != 4 {
		t.Fatalf("hop event: %+v", hop)
	}
	if hop.Args["tree_version"] != float64(3) || hop.Args["fanout"] != float64(2) || hop.Args["depth"] != float64(1) {
		t.Fatalf("hop args: %+v", hop.Args)
	}
	stall := out.TraceEvents[2]
	if stall.Cat != "stall" || stall.Name != "credit_wait" || stall.Args["peer"] != float64(2) {
		t.Fatalf("stall event: %+v", stall)
	}
	for _, ev := range out.TraceEvents {
		if ev.PID != id {
			t.Fatalf("pid %d != trace id %d", ev.PID, id)
		}
	}
}

// TestDebugTraceEndpoint checks /debug/trace serves the Chrome JSON.
func TestDebugTraceEndpoint(t *testing.T) {
	scope := NewScope(Config{TraceSampleEvery: 1})
	id := scope.Tracer.Sample()
	scope.Tracer.Record(id, StageExecute, 0, time.Now(), time.Microsecond)

	srv, err := Serve("127.0.0.1:0", scope)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/trace", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != 1 {
		t.Fatalf("served %d events, want 1", len(out.TraceEvents))
	}
}

// TestPrometheusQuantileExposition asserts the histogram summary lines
// (p50/p95/p99 quantiles) are present and that the whole exposition parses
// as Prometheus text format: every non-comment line is `name[{labels}]
// value` with a float value, and every series was preceded by a # TYPE.
func TestPrometheusQuantileExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dsps.processing_latency_ns")
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * 1000)
	}
	r.Counter("dsps.tuples_emitted").Add(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, q := range []string{`quantile="0.5"`, `quantile="0.95"`, `quantile="0.99"`} {
		if !strings.Contains(out, "whale_dsps_processing_latency_ns{"+q+"}") {
			t.Fatalf("exposition missing %s quantile:\n%s", q, out)
		}
	}

	typed := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" {
				typed[f[2]] = f[3]
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("line %q is not `series value`", line)
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			t.Fatalf("line %q: value does not parse: %v", line, err)
		}
		if v < 0 {
			t.Fatalf("line %q: negative sample", line)
		}
		name := f[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %q: unterminated label set", line)
			}
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_count", "_sum", "_max"} {
			if strings.HasSuffix(name, suf) {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("series %q has no preceding # TYPE", f[0])
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if typed["whale_dsps_processing_latency_ns"] != "summary" {
		t.Fatalf("histogram not typed summary: %v", typed)
	}
	if typed["whale_dsps_tuples_emitted_total"] != "counter" {
		t.Fatalf("counter not typed: %v", typed)
	}

	// The quantiles themselves must be ordered and inside the observed range.
	p50 := quantileValue(t, out, "0.5")
	p95 := quantileValue(t, out, "0.95")
	p99 := quantileValue(t, out, "0.99")
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotonic: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p50 < 1000 || p99 > 1000*1000*2 {
		t.Fatalf("quantiles outside observed range: p50=%v p99=%v", p50, p99)
	}
}

func quantileValue(t *testing.T, exposition, q string) float64 {
	t.Helper()
	needle := `whale_dsps_processing_latency_ns{quantile="` + q + `"} `
	i := strings.Index(exposition, needle)
	if i < 0 {
		t.Fatalf("quantile %s line missing", q)
	}
	rest := exposition[i+len(needle):]
	if j := strings.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("quantile %s value: %v", q, err)
	}
	return v
}
