package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whale/internal/metrics"
)

// Stage names one hop of a tuple's path through the system. A full trace
// for a multicast tuple crosses all five pipeline stages: the source
// worker's send thread serializes it once and posts one RDMA slice per
// child, each relay worker forwards it down the tree and dispatches it to
// local executors, and every subscribed executor runs it. Beyond the
// pipeline stages, a traced tuple also accumulates one span per stall
// class it hits (see the Stall* constants): time the tuple spent waiting
// rather than being worked on.
type Stage string

const (
	// StageSerialize is the send thread's one-per-tuple encode (t_s).
	StageSerialize Stage = "serialize"
	// StageTreeHop is a relay worker forwarding the tuple to its children
	// in the active multicast tree.
	StageTreeHop Stage = "tree_hop"
	// StageRDMASlice is one transport send: the tuple entering a channel's
	// pending batch (MMS/WTL slicing) toward one destination worker.
	StageRDMASlice Stage = "rdma_slice"
	// StageDispatch is the receiving worker's dispatcher decoding the
	// message and enqueueing it to local executors.
	StageDispatch Stage = "dispatch"
	// StageExecute is one executor running the tuple through operator code.
	StageExecute Stage = "execute"
)

// Stall classes. Each names a place a traced tuple waited without being
// processed; together with the pipeline stages they partition a trace's
// wall time into work and attributable waiting.
const (
	// StallCreditWait is time a flow-link sender goroutine spent blocked
	// on the credit window before transmitting the tuple's message.
	StallCreditWait Stage = "credit_wait"
	// StallSendQueueWait is residency in a per-destination sender FIFO:
	// from push onto the flow link's queue until the sender goroutine
	// popped it.
	StallSendQueueWait Stage = "send_queue_wait"
	// StallRingWait is time the transport spent blocked on a full RDMA
	// ring memory region while flushing the batch carrying the tuple.
	StallRingWait Stage = "ring_wait"
	// StallExecQueueWait is time the tuple sat in an executor's admission
	// overflow before winning a seat in the input queue.
	StallExecQueueWait Stage = "exec_queue_wait"
	// StallReplay is time lost to transient send failures: the backoff
	// and retransmission delay before the tuple's message went through.
	StallReplay Stage = "replay"
)

// Stages lists the pipeline stages in path order.
var Stages = []Stage{StageSerialize, StageRDMASlice, StageDispatch, StageTreeHop, StageExecute}

// StallStages lists the stall classes a traced tuple can accumulate.
var StallStages = []Stage{StallCreditWait, StallSendQueueWait, StallRingWait, StallExecQueueWait, StallReplay}

// IsStall reports whether st names a stall class rather than a pipeline
// stage.
func IsStall(st Stage) bool {
	switch st {
	case StallCreditWait, StallSendQueueWait, StallRingWait, StallExecQueueWait, StallReplay:
		return true
	}
	return false
}

// SpanEvent is one recorded stage or stall occurrence within a trace. The
// hop-metadata fields are populated only where they mean something: Peer
// is the other worker on the link (the forwarding parent for a tree hop,
// the destination for a send-side stall), Version the multicast tree
// version that routed the hop, Depth the hop's distance from the tree
// source, and Fanout the number of children the tuple was forwarded to.
type SpanEvent struct {
	Stage   Stage `json:"stage"`
	Worker  int32 `json:"worker"`
	Peer    int32 `json:"peer,omitempty"`
	Version int32 `json:"version,omitempty"`
	Depth   int32 `json:"depth,omitempty"`
	Fanout  int32 `json:"fanout,omitempty"`
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// TraceSpans is the full recorded timeline of one sampled tuple.
type TraceSpans struct {
	TraceID int64       `json:"trace_id"`
	Events  []SpanEvent `json:"events"`
}

// spanPool recycles evicted trace timelines so steady-state tracing stops
// allocating once event-slice capacities have grown to the workload's
// span count (the bounded-alloc half of the sampling/overhead contract).
var spanPool = sync.Pool{New: func() any { return &TraceSpans{} }}

// acquireSpans returns a pooled timeline reset for trace id. The timeline
// is owned by the caller until it is parked in the tracer's retention map;
// eviction hands it back to recycleSpans.
//
//whale:acquires
func acquireSpans(id int64) *TraceSpans {
	sp := spanPool.Get().(*TraceSpans)
	sp.TraceID = id
	sp.Events = sp.Events[:0]
	return sp
}

// recycleSpans returns an evicted timeline to the pool. sp must not be
// touched afterwards: the next acquireSpans call reuses its storage.
//
//whale:owns sp
func recycleSpans(sp *TraceSpans) { spanPool.Put(sp) }

// Tracer implements sampled tuple-path tracing: every Nth root tuple
// leaving a spout is assigned a trace ID that rides the tuple's wire
// format; instrumented stages feed per-stage latency histograms (always)
// and a bounded set of full span timelines (most recent traces kept).
// All methods are safe for concurrent use; with sampling disabled every
// call is a cheap no-op, and for an untraced tuple (trace ID 0) Record
// and RecordHop return without locking or allocating.
type Tracer struct {
	sampleEvery int64
	keep        int
	reg         *Registry

	seen   atomic.Int64
	nextID atomic.Int64

	mu    sync.Mutex //whale:lockrank 50
	spans map[int64]*TraceSpans
	order []int64 // trace ids in admission order, oldest first
	hists map[Stage]*metrics.Histogram
}

func newTracer(reg *Registry, sampleEvery, keep int) *Tracer {
	if keep <= 0 {
		keep = 64
	}
	t := &Tracer{
		sampleEvery: int64(sampleEvery),
		keep:        keep,
		reg:         reg,
		spans:       map[int64]*TraceSpans{},
		hists:       map[Stage]*metrics.Histogram{},
	}
	for _, st := range Stages {
		t.hists[st] = reg.Histogram("trace.stage." + string(st) + "_ns")
	}
	for _, st := range StallStages {
		t.hists[st] = reg.Histogram("trace.stall." + string(st) + "_ns")
	}
	return t
}

// Enabled reports whether sampling is configured.
func (t *Tracer) Enabled() bool { return t != nil && t.sampleEvery > 0 }

// Sample decides whether the next root tuple is traced, returning its
// nonzero trace ID if so and 0 otherwise.
func (t *Tracer) Sample() int64 {
	if !t.Enabled() {
		return 0
	}
	if t.seen.Add(1)%t.sampleEvery != 0 {
		return 0
	}
	id := t.nextID.Add(1)
	sp := acquireSpans(id)
	t.mu.Lock()
	t.spans[id] = sp //whale:transfers sp
	t.order = append(t.order, id)
	if len(t.order) > t.keep {
		evict := t.order[0]
		t.order = t.order[1:]
		if old, ok := t.spans[evict]; ok {
			delete(t.spans, evict)
			recycleSpans(old)
		}
	}
	t.mu.Unlock()
	return id
}

// Record notes one stage or stall occurrence for the traced tuple.
// traceID 0 (an untraced tuple) is a no-op, so call sites can record
// unconditionally.
//
//whale:hotpath
func (t *Tracer) Record(traceID int64, stage Stage, worker int32, start time.Time, dur time.Duration) {
	if t == nil || traceID == 0 {
		return
	}
	t.record(traceID, SpanEvent{
		Stage:   stage,
		Worker:  worker,
		StartNS: start.UnixNano(),
		DurNS:   dur.Nanoseconds(),
	})
}

// RecordHop notes one multicast-tree hop (or hop-shaped stall) with its
// link metadata: peer worker, routing tree version, hop depth from the
// tree source, and downstream fan-out. traceID 0 is a no-op.
//
//whale:hotpath
func (t *Tracer) RecordHop(traceID int64, stage Stage, worker, peer, version, depth, fanout int32, start time.Time, dur time.Duration) {
	if t == nil || traceID == 0 {
		return
	}
	t.record(traceID, SpanEvent{
		Stage:   stage,
		Worker:  worker,
		Peer:    peer,
		Version: version,
		Depth:   depth,
		Fanout:  fanout,
		StartNS: start.UnixNano(),
		DurNS:   dur.Nanoseconds(),
	})
}

func (t *Tracer) record(traceID int64, ev SpanEvent) {
	if h, ok := t.hists[ev.Stage]; ok {
		h.Observe(ev.DurNS)
	}
	t.mu.Lock()
	if sp, ok := t.spans[traceID]; ok {
		sp.Events = append(sp.Events, ev)
	}
	t.mu.Unlock()
}

// Spans returns a copy of every retained trace timeline, oldest first,
// with each timeline's events sorted by start time. The copies are made
// under the tracer lock so concurrent Record calls never tear an event.
func (t *Tracer) Spans() []TraceSpans {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TraceSpans, 0, len(t.order))
	for _, id := range t.order {
		sp := t.spans[id]
		cp := TraceSpans{TraceID: sp.TraceID, Events: append([]SpanEvent(nil), sp.Events...)}
		out = append(out, cp)
	}
	t.mu.Unlock()
	for i := range out {
		evs := out[i].Events
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].StartNS < evs[b].StartNS })
	}
	return out
}

// StageHist returns the tracer's histogram for one stage or stall class
// (nil when the tracer is nil or the stage unknown). The bottleneck
// analyzer reads these to fold per-stage latency into its profile.
func (t *Tracer) StageHist(st Stage) *metrics.Histogram {
	if t == nil {
		return nil
	}
	return t.hists[st]
}
