package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whale/internal/metrics"
)

// Stage names one hop of a tuple's path through the system. A full trace
// for a multicast tuple crosses all five: the source worker's send thread
// serializes it once and posts one RDMA slice per child, each relay worker
// forwards it down the tree and dispatches it to local executors, and every
// subscribed executor runs it.
type Stage string

const (
	// StageSerialize is the send thread's one-per-tuple encode (t_s).
	StageSerialize Stage = "serialize"
	// StageTreeHop is a relay worker forwarding the tuple to its children
	// in the active multicast tree.
	StageTreeHop Stage = "tree_hop"
	// StageRDMASlice is one transport send: the tuple entering a channel's
	// pending batch (MMS/WTL slicing) toward one destination worker.
	StageRDMASlice Stage = "rdma_slice"
	// StageDispatch is the receiving worker's dispatcher decoding the
	// message and enqueueing it to local executors.
	StageDispatch Stage = "dispatch"
	// StageExecute is one executor running the tuple through operator code.
	StageExecute Stage = "execute"
)

// Stages lists all stages in path order.
var Stages = []Stage{StageSerialize, StageRDMASlice, StageDispatch, StageTreeHop, StageExecute}

// SpanEvent is one recorded stage occurrence within a trace.
type SpanEvent struct {
	Stage   Stage `json:"stage"`
	Worker  int32 `json:"worker"`
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// TraceSpans is the full recorded timeline of one sampled tuple.
type TraceSpans struct {
	TraceID int64       `json:"trace_id"`
	Events  []SpanEvent `json:"events"`
}

// Tracer implements sampled tuple-path tracing: every Nth root tuple
// leaving a spout is assigned a trace ID that rides the tuple's wire
// format; instrumented stages feed per-stage latency histograms (always)
// and a bounded set of full span timelines (most recent traces kept).
// All methods are safe for concurrent use; with sampling disabled every
// call is a cheap no-op.
type Tracer struct {
	sampleEvery int64
	keep        int
	reg         *Registry

	seen   atomic.Int64
	nextID atomic.Int64

	mu    sync.Mutex
	spans map[int64]*TraceSpans
	order []int64 // trace ids in admission order, oldest first
	hists map[Stage]*metrics.Histogram
}

func newTracer(reg *Registry, sampleEvery, keep int) *Tracer {
	if keep <= 0 {
		keep = 64
	}
	t := &Tracer{
		sampleEvery: int64(sampleEvery),
		keep:        keep,
		reg:         reg,
		spans:       map[int64]*TraceSpans{},
		hists:       map[Stage]*metrics.Histogram{},
	}
	for _, st := range Stages {
		t.hists[st] = reg.Histogram("trace.stage." + string(st) + "_ns")
	}
	return t
}

// Enabled reports whether sampling is configured.
func (t *Tracer) Enabled() bool { return t != nil && t.sampleEvery > 0 }

// Sample decides whether the next root tuple is traced, returning its
// nonzero trace ID if so and 0 otherwise.
func (t *Tracer) Sample() int64 {
	if !t.Enabled() {
		return 0
	}
	if t.seen.Add(1)%t.sampleEvery != 0 {
		return 0
	}
	id := t.nextID.Add(1)
	t.mu.Lock()
	t.spans[id] = &TraceSpans{TraceID: id}
	t.order = append(t.order, id)
	if len(t.order) > t.keep {
		evict := t.order[0]
		t.order = t.order[1:]
		delete(t.spans, evict)
	}
	t.mu.Unlock()
	return id
}

// Record notes one stage occurrence for the traced tuple. traceID 0 (an
// untraced tuple) is a no-op, so call sites can record unconditionally.
func (t *Tracer) Record(traceID int64, stage Stage, worker int32, start time.Time, dur time.Duration) {
	if t == nil || traceID == 0 {
		return
	}
	if h, ok := t.hists[stage]; ok {
		h.Observe(dur.Nanoseconds())
	}
	t.mu.Lock()
	if sp, ok := t.spans[traceID]; ok {
		sp.Events = append(sp.Events, SpanEvent{
			Stage:   stage,
			Worker:  worker,
			StartNS: start.UnixNano(),
			DurNS:   dur.Nanoseconds(),
		})
	}
	t.mu.Unlock()
}

// Spans returns a copy of every retained trace timeline, oldest first,
// with each timeline's events sorted by start time.
func (t *Tracer) Spans() []TraceSpans {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TraceSpans, 0, len(t.order))
	for _, id := range t.order {
		sp := t.spans[id]
		cp := TraceSpans{TraceID: sp.TraceID, Events: append([]SpanEvent(nil), sp.Events...)}
		out = append(out, cp)
	}
	t.mu.Unlock()
	for i := range out {
		evs := out[i].Events
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].StartNS < evs[b].StartNS })
	}
	return out
}
