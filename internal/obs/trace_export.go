package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event JSON format
// (catapult "Trace Event Format", "X" complete events). Each retained
// trace becomes one process row (pid = trace id) and each worker one
// thread row within it, so loading the export in chrome://tracing or
// Perfetto shows every sampled tuple's tree traversal as a swimlane per
// worker, with stall spans in their own category.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	PID  int64          `json:"pid"`
	TID  int32          `json:"tid"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteTraceEvents writes every retained span timeline as Chrome
// trace_event JSON. Timestamps are rebased to the earliest recorded span
// so the viewer opens at the data.
func (t *Tracer) WriteTraceEvents(w io.Writer) error {
	spans := t.Spans()
	var base int64 = 0
	for _, sp := range spans {
		for _, ev := range sp.Events {
			if base == 0 || ev.StartNS < base {
				base = ev.StartNS
			}
		}
	}
	out := chromeTrace{TraceEvents: []chromeEvent{}}
	for _, sp := range spans {
		for _, ev := range sp.Events {
			cat := "stage"
			if IsStall(ev.Stage) {
				cat = "stall"
			}
			ce := chromeEvent{
				Name: string(ev.Stage),
				Cat:  cat,
				Ph:   "X",
				PID:  sp.TraceID,
				TID:  ev.Worker,
				TS:   float64(ev.StartNS-base) / 1e3,
				Dur:  float64(ev.DurNS) / 1e3,
			}
			if ev.Peer != 0 || ev.Version != 0 || ev.Depth != 0 || ev.Fanout != 0 {
				ce.Args = map[string]any{}
				if ev.Peer != 0 {
					ce.Args["peer"] = ev.Peer
				}
				if ev.Version != 0 {
					ce.Args["tree_version"] = ev.Version
				}
				if ev.Depth != 0 {
					ce.Args["depth"] = ev.Depth
				}
				if ev.Fanout != 0 {
					ce.Args["fanout"] = ev.Fanout
				}
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
