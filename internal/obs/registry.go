// Package obs is the engine's unified observability layer: one registry
// every subsystem (engine, workers, executors, acking, multicast tree,
// RDMA channel/ring, kafkalite) feeds, a sampled tuple-path tracer, a
// structured reconfiguration event log, and an HTTP server exposing all of
// it live (/metrics, /debug/whale, /debug/events, /debug/pprof).
//
// It reproduces the role of the paper's statistics-monitoring module (§4)
// as a system-wide facility: the same per-hop, per-event visibility the
// self-adjusting controller consumes internally is exported so a running
// topology can be watched and diagnosed from outside.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"whale/internal/metrics"
)

// Registry is a concurrency-safe collection of named metrics with
// hierarchical dot-separated names ("worker.3.rdma.ring_occupancy").
// Storage-backed metrics (Counter/Gauge/Histogram) are owned by the
// registry's metrics.Family; callers that already own a primitive or want
// a computed readout register functions instead (CounterFunc/GaugeFunc/
// HistogramFunc). Externally owned families attach under a prefix.
type Registry struct {
	fam *metrics.Family

	mu         sync.RWMutex
	counterFns map[string]func() int64
	gaugeFns   map[string]func() int64
	histFns    map[string]func() metrics.Snapshot
	attached   map[string]*metrics.Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		fam:        metrics.NewFamily(),
		counterFns: map[string]func() int64{},
		gaugeFns:   map[string]func() int64{},
		histFns:    map[string]func() metrics.Snapshot{},
		attached:   map[string]*metrics.Family{},
	}
}

// Counter returns the registry-owned counter under name, creating it if
// needed.
//
//lint:ignore metricname API delegation; literal names are enforced at the caller's registration site
func (r *Registry) Counter(name string) *metrics.Counter { return r.fam.Counter(name) }

// Gauge returns the registry-owned gauge under name, creating it if needed.
//
//lint:ignore metricname API delegation; literal names are enforced at the caller's registration site
func (r *Registry) Gauge(name string) *metrics.Gauge { return r.fam.Gauge(name) }

// Histogram returns the registry-owned histogram under name, creating it if
// needed.
//
//lint:ignore metricname API delegation; literal names are enforced at the caller's registration site
func (r *Registry) Histogram(name string) *metrics.Histogram { return r.fam.Histogram(name) }

// CounterFunc registers a computed counter readout (e.g. a subsystem's
// existing atomic counter). The function must be safe for concurrent use.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.counterFns[name] = fn
	r.mu.Unlock()
}

// GaugeFunc registers a computed gauge readout (e.g. a live queue length).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// HistogramFunc registers a computed histogram readout, typically a
// cross-worker Histogram.Merge aggregation snapshotted on demand.
func (r *Registry) HistogramFunc(name string, fn func() metrics.Snapshot) {
	r.mu.Lock()
	r.histFns[name] = fn
	r.mu.Unlock()
}

// Attach includes an externally owned family in snapshots and exports,
// with every name prefixed by prefix + ".".
func (r *Registry) Attach(prefix string, fam *metrics.Family) {
	r.mu.Lock()
	r.attached[prefix] = fam
	r.mu.Unlock()
}

// Snapshot is a point-in-time copy of every registered series.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]int64            `json:"gauges"`
	Histograms map[string]metrics.Snapshot `json:"histograms"`
}

// Snapshot collects every counter, gauge and histogram (registry-owned,
// function-backed, and attached) into one structure.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]metrics.Snapshot{},
	}
	collect := func(prefix string, fam *metrics.Family) {
		fam.EachCounter(func(n string, c *metrics.Counter) { s.Counters[prefix+n] = c.Value() })
		fam.EachGauge(func(n string, g *metrics.Gauge) { s.Gauges[prefix+n] = g.Value() })
		fam.EachHistogram(func(n string, h *metrics.Histogram) { s.Histograms[prefix+n] = h.Snapshot() })
	}
	collect("", r.fam)
	r.mu.RLock()
	attached := make(map[string]*metrics.Family, len(r.attached))
	for p, f := range r.attached {
		attached[p] = f
	}
	counterFns := make(map[string]func() int64, len(r.counterFns))
	for n, fn := range r.counterFns {
		counterFns[n] = fn
	}
	gaugeFns := make(map[string]func() int64, len(r.gaugeFns))
	for n, fn := range r.gaugeFns {
		gaugeFns[n] = fn
	}
	histFns := make(map[string]func() metrics.Snapshot, len(r.histFns))
	for n, fn := range r.histFns {
		histFns[n] = fn
	}
	r.mu.RUnlock()
	for p, f := range attached {
		collect(p+".", f)
	}
	for n, fn := range counterFns {
		s.Counters[n] = fn()
	}
	for n, fn := range gaugeFns {
		s.Gauges[n] = fn()
	}
	for n, fn := range histFns {
		s.Histograms[n] = fn()
	}
	return s
}

// promName sanitises a hierarchical metric name into a Prometheus metric
// name: dots and any other non-identifier characters become underscores,
// and everything is prefixed "whale_".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 6)
	b.WriteString("whale_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: counters as "<name>_total", gauges as plain series, histograms
// as summaries (quantile series plus _count/_sum/_max). Series are sorted
// by name so scrapes are diff-friendly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var err error
	write := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, n := range sortedNames(s.Counters) {
		pn := promName(n) + "_total"
		write("# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}
	for _, n := range sortedNames(s.Gauges) {
		pn := promName(n)
		write("# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		pn := promName(n)
		write("# TYPE %s summary\n", pn)
		write("%s{quantile=\"0.5\"} %d\n", pn, h.P50)
		write("%s{quantile=\"0.95\"} %d\n", pn, h.P95)
		write("%s{quantile=\"0.99\"} %d\n", pn, h.P99)
		write("%s_count %d\n", pn, h.Count)
		write("%s_sum %d\n", pn, h.Sum)
		write("%s_max %d\n", pn, h.Max)
	}
	return err
}

func sortedNames(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
