package obs

import (
	"sync"
	"time"
)

// Event kinds. Tree events carry the multicast group, tree version and the
// M/D/1 inputs (λ, t_e, queue length) that drove the decision, so a
// reconfiguration can be replayed from the log alone.
const (
	// EventTreeRebuild: a multicast tree structure was built or activated.
	EventTreeRebuild = "tree-rebuild"
	// EventScaleUp: the controller initiated an active scale-up (§3.3).
	EventScaleUp = "scale-up"
	// EventScaleDown: the controller initiated a negative scale-down.
	EventScaleDown = "scale-down"
	// EventSwitchSkipped: a scale-up was rejected by the Theorem 5 guard.
	EventSwitchSkipped = "switch-skipped"
	// EventSwitchComplete: every member ACKed and the new tree activated.
	EventSwitchComplete = "switch-complete"
	// EventFlushReason: an RDMA channel's flush trigger transitioned
	// between MMS (size) and WTL (timer).
	EventFlushReason = "flush-reason"
	// EventWorkerSuspect: the failure detector saw no traffic from a worker
	// for the suspicion timeout. Worker carries the suspect's id.
	EventWorkerSuspect = "worker-suspect"
	// EventWorkerRecover: a suspected worker produced traffic again before
	// confirmation.
	EventWorkerRecover = "worker-recover"
	// EventWorkerDead: a suspected worker stayed silent past the
	// confirmation timeout and was declared failed; tree repair follows.
	EventWorkerDead = "worker-dead"
	// EventLinkThrottled: a flow-controlled link crossed the high waterline.
	// Worker is the sender, Peer the congested destination.
	EventLinkThrottled = "link-throttled"
	// EventLinkPaused: a link's sender was starved of credit continuously
	// for the configured pause threshold; the destination is effectively
	// not draining.
	EventLinkPaused = "link-paused"
	// EventLinkOpen: a throttled or paused link drained below the low
	// waterline with credit available and reopened.
	EventLinkOpen = "link-open"
	// EventWorkerDegraded: a link stayed paused past the degraded
	// threshold; Peer names the slow subscriber, reported alongside the
	// failure detector's suspect/dead states.
	EventWorkerDegraded = "worker-degraded"
	// EventDrainTimeout: an engine Stop gave up draining in-flight tuples
	// after its bounded timeout; work may have been lost.
	EventDrainTimeout = "drain-timeout"
	// EventSnapshotComplete: every task acked a snapshot epoch and it was
	// committed to the checkpoint store. Epoch carries the epoch number.
	EventSnapshotComplete = "snapshot-complete"
	// EventSnapshotAbort: a snapshot epoch was discarded (timeout, worker
	// death mid-epoch, or a task-level snapshot/restore error — see Detail).
	EventSnapshotAbort = "snapshot-abort"
	// EventSnapshotRestore: recovery began — restore markers distributed,
	// rewinding every task to the committed epoch in Epoch (0 = reset to
	// initial state).
	EventSnapshotRestore = "snapshot-restore"
	// EventSnapshotRestored: every surviving task acked the restore; the
	// fence is active and sources have rewound.
	EventSnapshotRestored = "snapshot-restored"
	// EventWorkerJoined: the monitor admitted a new worker into the live
	// membership (CtrlJoin/CtrlWelcome handshake). Worker is the joiner.
	EventWorkerJoined = "worker-joined"
	// EventWorkerLeft: a worker left the membership gracefully (no tasks
	// hosted, heartbeats stopped); unlike worker-dead it may rejoin later.
	EventWorkerLeft = "worker-left"
	// EventRescaleStarted: a live operator rescale was requested; Detail
	// names the operator and the old->new parallelism. The rescale applies
	// at the commit of the next rescale-aligned checkpoint epoch.
	EventRescaleStarted = "rescale-started"
	// EventRescaleCommitted: the rescale-aligned checkpoint committed, the
	// new assignment/tree versions were applied, and every task (old and
	// new) acked the post-rescale restore. Epoch carries the aligned epoch.
	EventRescaleCommitted = "rescale-committed"
	// EventRescaleAborted: a pending rescale was rolled back before it ever
	// applied (worker death while the aligned checkpoint was in flight);
	// the pre-rescale assignment stays active — never a half-repartitioned
	// topology. Detail carries the reason.
	EventRescaleAborted = "rescale-aborted"
	// EventAutoscaleUp / EventAutoscaleDown: the M/D/1 autoscale
	// controller issued an operator rescale. Lambda/Te/QueueLen carry the
	// model inputs; Detail the operator, old->new parallelism and ρ.
	EventAutoscaleUp   = "autoscale-up"
	EventAutoscaleDown = "autoscale-down"
	// EventAutoscaleRejected: the controller decided to act but the
	// rescale plane refused the plan (one already in flight, recovery in
	// progress, ...); the operator enters backoff before retrying.
	EventAutoscaleRejected = "autoscale-rejected"
)

// Event is one structured entry in the reconfiguration event log.
type Event struct {
	Seq      int64   `json:"seq"`
	TimeNS   int64   `json:"time_ns"`
	Kind     string  `json:"kind"`
	Group    int32   `json:"group,omitempty"`
	Worker   int32   `json:"worker,omitempty"`
	Peer     int32   `json:"peer,omitempty"`
	Version  int32   `json:"version,omitempty"`
	OldDstar int     `json:"old_dstar,omitempty"`
	NewDstar int     `json:"new_dstar,omitempty"`
	Lambda   float64 `json:"lambda,omitempty"`
	Te       float64 `json:"te,omitempty"`
	QueueLen int     `json:"queue_len,omitempty"`
	Epoch    int64   `json:"epoch,omitempty"`
	Detail   string  `json:"detail,omitempty"`
}

// EventLog is a bounded ring of structured events with a subscriber API.
// Append assigns sequence numbers and timestamps; when the ring is full the
// oldest events are dropped. Safe for concurrent use.
type EventLog struct {
	mu      sync.Mutex
	cap     int
	buf     []Event // ring, ordered oldest..newest via head
	head    int     // index of the oldest event when len(buf) == cap
	nextSeq int64
	subs    map[int]chan Event
	nextSub int
}

// NewEventLog returns a log retaining up to capacity events (default 1024).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &EventLog{cap: capacity, subs: map[int]chan Event{}}
}

// Append stamps ev with the next sequence number and the current time and
// stores it, fanning it out to subscribers (non-blocking: a slow
// subscriber's channel drops events rather than stalling the engine).
// The stamped event is returned.
func (l *EventLog) Append(ev Event) Event {
	l.mu.Lock()
	ev.Seq = l.nextSeq
	l.nextSeq++
	if ev.TimeNS == 0 {
		ev.TimeNS = time.Now().UnixNano()
	}
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[l.head] = ev
		l.head = (l.head + 1) % l.cap
	}
	subs := make([]chan Event, 0, len(l.subs))
	for _, ch := range l.subs {
		subs = append(subs, ch)
	}
	l.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
	return ev
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Recent returns up to n retained events, oldest first (all of them when
// n <= 0).
func (l *EventLog) Recent(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := len(l.buf)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]Event, 0, n)
	for i := total - n; i < total; i++ {
		out = append(out, l.buf[(l.head+i)%len(l.buf)])
	}
	return out
}

// Subscribe returns a channel receiving every event appended from now on,
// buffered to buf entries, and a cancel function that must be called to
// release the subscription. Events are dropped, not blocked on, when the
// buffer is full.
func (l *EventLog) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan Event, buf)
	l.mu.Lock()
	id := l.nextSub
	l.nextSub++
	l.subs[id] = ch
	l.mu.Unlock()
	cancel := func() {
		l.mu.Lock()
		delete(l.subs, id)
		l.mu.Unlock()
	}
	return ch, cancel
}
