package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"whale"
	"whale/internal/obs"
)

// e2eSpout emits n small broadcast tuples then stops.
type e2eSpout struct{ n, i int }

func (s *e2eSpout) Open(*whale.TaskContext) {}
func (s *e2eSpout) Next(c *whale.Collector) bool {
	if s.i >= s.n {
		return false
	}
	s.i++
	c.Emit(int64(s.i), "payload-abcdefghijklmnopqrstuvwxyz")
	return true
}
func (s *e2eSpout) Close() {}

type e2eSink struct{}

func (e2eSink) Prepare(*whale.TaskContext) {}
func (e2eSink) Execute(*whale.Tuple, *whale.Collector) {
	time.Sleep(10 * time.Microsecond) // measurable execute stage
}
func (e2eSink) Cleanup() {}

// TestEndToEndObservability runs a small all-grouping topology on the full
// Whale preset (emulated RDMA transport, non-blocking tree pinned to a
// d*=1 chain so relays happen) with tracing at 1/1, then scrapes the live
// endpoints: /metrics must expose a broad series inventory spanning the
// dsps, multicast and rdma namespaces; /debug/whale must hold at least one
// traced tuple span covering every pipeline stage; /debug/events must show
// the tree deployment.
func TestEndToEndObservability(t *testing.T) {
	b := whale.NewTopologyBuilder()
	b.Spout("src", func() whale.Spout { return &e2eSpout{n: 200} }, 1)
	b.Bolt("sink", func() whale.Bolt { return e2eSink{} }, 8).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := whale.Run(topo, whale.SystemWhale, whale.Options{
		Workers:          4,
		InitialDstar:     1,
		FixedDstar:       true,
		ObsAddr:          "127.0.0.1:0",
		TraceSampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()
	cluster.WaitSources()
	if !cluster.Drain(15 * time.Second) {
		t.Fatal("cluster did not drain")
	}

	addr := cluster.ObsAddr()
	if addr == "" {
		t.Fatal("ObsAddr empty with Options.ObsAddr set")
	}
	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// /metrics: a broad inventory of distinct series across namespaces.
	expo := string(get("/metrics"))
	series := map[string]bool{}
	for _, line := range strings.Split(expo, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		series[name] = true
	}
	if len(series) < 20 {
		t.Fatalf("/metrics exposes %d distinct series, want >= 20:\n%s", len(series), expo)
	}
	for _, want := range []string{
		"whale_dsps_tuples_emitted_total",
		"whale_dsps_tuples_completed_total",
		"whale_dsps_processing_latency_ns_count",
		"whale_multicast_latency_ns_count",
		"whale_multicast_active_dstar",
		"whale_op_sink_executed_total",
		"whale_worker_0_transfer_queue_len",
		"whale_worker_0_rdma_ring_occupancy",
		"whale_worker_0_rdma_work_requests_total",
		"whale_rdma_flushes_mms_total",
		"whale_trace_stage_execute_ns_count",
	} {
		if !strings.Contains(expo, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, expo)
		}
	}

	// /debug/whale: at least one traced span covering every stage.
	var dbg struct {
		Metrics obs.Snapshot     `json:"metrics"`
		Traces  []obs.TraceSpans `json:"traces"`
	}
	if err := json.Unmarshal(get("/debug/whale"), &dbg); err != nil {
		t.Fatalf("/debug/whale: %v", err)
	}
	if dbg.Metrics.Counters["dsps.tuples_completed"] == 0 {
		t.Fatal("/debug/whale snapshot has no completed tuples")
	}
	full := false
	for _, span := range dbg.Traces {
		seen := map[obs.Stage]bool{}
		for _, ev := range span.Events {
			seen[ev.Stage] = true
		}
		all := true
		for _, st := range obs.Stages {
			if !seen[st] {
				all = false
				break
			}
		}
		if all {
			full = true
			break
		}
	}
	if !full {
		t.Fatalf("no traced span covers all stages %v; got %d spans: %+v",
			obs.Stages, len(dbg.Traces), dbg.Traces)
	}

	// /debug/events: the initial tree deployment is on record.
	var evs []obs.Event
	if err := json.Unmarshal(get("/debug/events"), &evs); err != nil {
		t.Fatalf("/debug/events: %v", err)
	}
	found := false
	for _, ev := range evs {
		if ev.Kind == obs.EventTreeRebuild && ev.Version == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/debug/events missing the initial tree-rebuild event: %+v", evs)
	}
}
