package obs

// Config parameterises a Scope.
type Config struct {
	// TraceSampleEvery samples one of every N root tuples for full-path
	// tracing; 0 disables tracing (the per-stage histograms then stay
	// empty and trace checks are single atomic no-ops).
	TraceSampleEvery int
	// TraceKeep bounds retained span timelines (default 64).
	TraceKeep int
	// EventCap bounds the event ring (default 1024).
	EventCap int
}

// Scope bundles the three observability facilities one engine instance
// shares across its subsystems. Every engine owns exactly one Scope
// (creating a default, tracing-disabled one when the caller provides
// none), so registration sites never need nil checks on the scope itself.
type Scope struct {
	Reg    *Registry
	Tracer *Tracer
	Events *EventLog
}

// NewScope builds a scope: a fresh registry, a tracer registered into it,
// and an event log.
func NewScope(cfg Config) *Scope {
	reg := NewRegistry()
	return &Scope{
		Reg:    reg,
		Tracer: newTracer(reg, cfg.TraceSampleEvery, cfg.TraceKeep),
		Events: NewEventLog(cfg.EventCap),
	}
}
