package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"whale/internal/metrics"
)

func TestRegistrySnapshotAndFuncs(t *testing.T) {
	r := NewRegistry()
	r.Counter("dsps.tuples_emitted").Add(5)
	r.Gauge("worker.0.transfer_queue_len").Set(3)
	r.Histogram("dsps.processing_latency_ns").Observe(1000)
	r.CounterFunc("dsps.serializations", func() int64 { return 42 })
	r.GaugeFunc("multicast.active_dstar", func() int64 { return 3 })
	r.HistogramFunc("op.sink.exec_latency_ns", func() metrics.Snapshot {
		var h metrics.Histogram
		h.Observe(7)
		return h.Snapshot()
	})
	fam := metrics.NewFamily()
	fam.Counter("records_appended").Add(9)
	r.Attach("kafkalite", fam)

	s := r.Snapshot()
	if s.Counters["dsps.tuples_emitted"] != 5 {
		t.Fatalf("counter: %+v", s.Counters)
	}
	if s.Counters["dsps.serializations"] != 42 {
		t.Fatalf("counter func: %+v", s.Counters)
	}
	if s.Counters["kafkalite.records_appended"] != 9 {
		t.Fatalf("attached family: %+v", s.Counters)
	}
	if s.Gauges["worker.0.transfer_queue_len"] != 3 || s.Gauges["multicast.active_dstar"] != 3 {
		t.Fatalf("gauges: %+v", s.Gauges)
	}
	if s.Histograms["dsps.processing_latency_ns"].Count != 1 {
		t.Fatalf("histogram: %+v", s.Histograms)
	}
	if s.Histograms["op.sink.exec_latency_ns"].Count != 1 {
		t.Fatalf("histogram func: %+v", s.Histograms)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dsps.tuples_emitted").Add(5)
	r.Gauge("multicast.active_dstar").Set(3)
	h := r.Histogram("rdma.poll_ns")
	h.Observe(100)
	h.Observe(200)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE whale_dsps_tuples_emitted_total counter",
		"whale_dsps_tuples_emitted_total 5",
		"# TYPE whale_multicast_active_dstar gauge",
		"whale_multicast_active_dstar 3",
		"# TYPE whale_rdma_poll_ns summary",
		`whale_rdma_poll_ns{quantile="0.5"}`,
		"whale_rdma_poll_ns_count 2",
		"whale_rdma_poll_ns_sum 300",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTracerSamplingAndSpans(t *testing.T) {
	reg := NewRegistry()
	tr := newTracer(reg, 4, 2)
	var ids []int64
	for i := 0; i < 12; i++ {
		if id := tr.Sample(); id != 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) != 3 {
		t.Fatalf("sampled %d of 12 at 1/4, want 3", len(ids))
	}
	base := time.Now()
	tr.Record(ids[2], StageExecute, 1, base.Add(time.Millisecond), 5*time.Microsecond)
	tr.Record(ids[2], StageSerialize, 0, base, 2*time.Microsecond)
	tr.Record(0, StageSerialize, 0, base, time.Microsecond) // no-op
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("kept %d traces, want 2 (keep bound)", len(spans))
	}
	last := spans[len(spans)-1]
	if last.TraceID != ids[2] || len(last.Events) != 2 {
		t.Fatalf("last trace: %+v", last)
	}
	if last.Events[0].Stage != StageSerialize || last.Events[1].Stage != StageExecute {
		t.Fatalf("events not time-ordered: %+v", last.Events)
	}
	// Stage histograms are registered and fed; the traceID=0 call must
	// not have contributed.
	s := reg.Snapshot()
	if s.Histograms["trace.stage.serialize_ns"].Count != 1 {
		t.Fatalf("serialize stage hist: %+v", s.Histograms["trace.stage.serialize_ns"])
	}
}

func TestTracerDisabled(t *testing.T) {
	tr := newTracer(NewRegistry(), 0, 0)
	if tr.Enabled() {
		t.Fatal("tracer with sampleEvery=0 must be disabled")
	}
	for i := 0; i < 100; i++ {
		if tr.Sample() != 0 {
			t.Fatal("disabled tracer sampled")
		}
	}
}

func TestEventLogRingAndOrder(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 6; i++ {
		l.Append(Event{Kind: EventScaleUp, NewDstar: i})
	}
	evs := l.Recent(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.NewDstar != i+2 {
			t.Fatalf("event %d: %+v (oldest-first order broken)", i, evs)
		}
		if i > 0 && evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-monotonic seq: %+v", evs)
		}
	}
	if got := l.Recent(2); len(got) != 2 || got[1].NewDstar != 5 {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestEventLogSubscribe(t *testing.T) {
	l := NewEventLog(16)
	ch, cancel := l.Subscribe(4)
	defer cancel()
	l.Append(Event{Kind: EventTreeRebuild, Group: 7})
	select {
	case ev := <-ch:
		if ev.Kind != EventTreeRebuild || ev.Group != 7 {
			t.Fatalf("got %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber never received the event")
	}
	cancel()
	l.Append(Event{Kind: EventScaleDown})
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("received %+v after cancel", ev)
		}
	default:
	}
}

func TestServerEndpoints(t *testing.T) {
	scope := NewScope(Config{TraceSampleEvery: 1})
	scope.Reg.Counter("dsps.tuples_emitted").Add(1)
	id := scope.Tracer.Sample()
	scope.Tracer.Record(id, StageExecute, 0, time.Now(), time.Microsecond)
	scope.Events.Append(Event{Kind: EventTreeRebuild, Group: 1, Version: 1})

	srv, err := Serve("127.0.0.1:0", scope)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	if !strings.Contains(string(get("/metrics")), "whale_dsps_tuples_emitted_total 1") {
		t.Fatal("/metrics missing counter")
	}
	var dbg debugSnapshot
	if err := json.Unmarshal(get("/debug/whale"), &dbg); err != nil {
		t.Fatalf("/debug/whale: %v", err)
	}
	if dbg.Metrics.Counters["dsps.tuples_emitted"] != 1 || len(dbg.Traces) != 1 {
		t.Fatalf("/debug/whale: %+v", dbg)
	}
	var evs []Event
	if err := json.Unmarshal(get("/debug/events"), &evs); err != nil {
		t.Fatalf("/debug/events: %v", err)
	}
	if len(evs) != 1 || evs[0].Kind != EventTreeRebuild {
		t.Fatalf("/debug/events: %+v", evs)
	}
	if !strings.Contains(string(get("/debug/pprof/")), "pprof") {
		t.Fatal("/debug/pprof/ not served")
	}
}
