package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// Server exposes a Scope over HTTP:
//
//	/metrics        Prometheus text exposition of the registry
//	/debug/whale    JSON snapshot: metrics, retained trace spans, event count
//	/debug/events   JSON array of recent events (?n= bounds the count)
//	/debug/trace    retained trace spans as Chrome trace_event JSON
//	/debug/pprof/*  the standard net/http/pprof handlers
//
// Additional handlers (e.g. /debug/bottleneck) are attached via Handle.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	mux   *http.ServeMux
	scope *Scope
	wg    sync.WaitGroup
}

// debugSnapshot is the /debug/whale response body.
type debugSnapshot struct {
	TimeNS  int64        `json:"time_ns"`
	Metrics Snapshot     `json:"metrics"`
	Traces  []TraceSpans `json:"traces"`
	Events  int          `json:"events_retained"`
}

// Serve starts an HTTP server for scope on addr (e.g. "127.0.0.1:9090";
// port 0 picks a free port, readable from Addr). The server runs until
// Close.
func Serve(addr string, scope *Scope) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, scope: scope}
	mux := http.NewServeMux()
	s.mux = mux
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/whale", s.handleDebug)
	mux.HandleFunc("/debug/events", s.handleEvents)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Serve returns http.ErrServerClosed after Close; nothing to do.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle registers an additional handler on the server's mux (e.g. the
// engine-backed /debug/bottleneck report, which lives above this package).
// http.ServeMux registration is safe while the server runs.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Close shuts the server down and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.scope.Reg.WritePrometheus(w)
}

func (s *Server) handleDebug(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(debugSnapshot{
		TimeNS:  time.Now().UnixNano(),
		Metrics: s.scope.Reg.Snapshot(),
		Traces:  s.scope.Tracer.Spans(),
		Events:  s.scope.Events.Len(),
	})
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.scope.Tracer.WriteTraceEvents(w)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil {
			n = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.scope.Events.Recent(n))
}
