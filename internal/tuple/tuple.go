// Package tuple defines the data model of the stream processing engine: the
// Tuple carried between operator instances, the BatchTuple / WorkerMessage
// formats introduced by Whale's worker-oriented communication (paper §3.5,
// Figs. 9-10), and the control-plane messages used by the dynamic switching
// mechanism (paper §3.4).
//
// A Tuple is a small, flat record: a list of typed field values plus routing
// metadata. The binary encoding implemented in serialize.go is the unit whose
// cost the paper calls "serialization time" (t_s); it is deliberately a real
// encoder (not a stub) so the live runtime pays a realistic, measurable CPU
// cost per encode.
package tuple

import (
	"fmt"
	"strings"
)

// Value is one field of a tuple. Supported dynamic types are:
// int64, float64, string, []byte, and bool.
type Value = any

// Tuple is the unit of data flowing through a topology.
type Tuple struct {
	// Stream is the logical stream the tuple belongs to (usually the id of
	// the operator that emitted it).
	Stream string
	// Values holds the tuple's fields.
	Values []Value
	// ID is a source-assigned sequence number, unique per producing task.
	ID int64
	// SrcTask is the task id of the producing instance.
	SrcTask int32
	// RootEmitNS is the timestamp (engine clock, nanoseconds) at which the
	// tuple's root ancestor left its spout. It is propagated through the
	// topology so sinks can compute the full processing latency.
	RootEmitNS int64
	// RootID identifies the reliability tree this tuple belongs to (the
	// Storm "anchor"); zero means the tuple is untracked.
	RootID int64
	// AckVal is this tuple's random contribution to the ack XOR register.
	AckVal int64
	// TraceID identifies the sampled tuple-path trace this tuple belongs
	// to; zero means the tuple is untraced. It is assigned at the spout by
	// the observability layer's sampler and inherited by every descendant,
	// so one trace spans serialize, tree hops, RDMA slices, dispatch and
	// execute across workers.
	TraceID int64
	// Epoch is the checkpoint epoch the tuple was emitted in: every tuple a
	// task emits after processing (or injecting) the barrier for epoch N is
	// stamped N+1. Zero means checkpointing is off (or the tuple predates
	// the first barrier) and the tuple is never fenced. Barrier frames
	// themselves travel as data-plane tuples on StreamBarrier with Epoch set
	// to the epoch they conclude, keeping per-link FIFO with the data ahead
	// of them.
	Epoch int64
}

// Clone returns a shallow copy of t with its own Values slice. Field values
// themselves are immutable by convention ([]byte fields must not be mutated
// by receivers), so sharing them is safe.
func (t *Tuple) Clone() *Tuple {
	cp := *t
	cp.Values = append([]Value(nil), t.Values...)
	return &cp
}

// Int returns field i as an int64. It panics if the field has another type;
// operator code is expected to know its schema.
func (t *Tuple) Int(i int) int64 { return t.Values[i].(int64) }

// Float returns field i as a float64.
func (t *Tuple) Float(i int) float64 { return t.Values[i].(float64) }

// String returns field i as a string.
func (t *Tuple) StringAt(i int) string { return t.Values[i].(string) }

// Bytes returns field i as a []byte.
func (t *Tuple) Bytes(i int) []byte { return t.Values[i].([]byte) }

// Bool returns field i as a bool.
func (t *Tuple) Bool(i int) bool { return t.Values[i].(bool) }

// String renders the tuple for debugging.
func (t *Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tuple{stream=%s id=%d src=%d fields=[", t.Stream, t.ID, t.SrcTask)
	for i, v := range t.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v", v)
	}
	b.WriteString("]}")
	return b.String()
}

// BatchTuple is Whale's worker-oriented unit (paper Fig. 9b): one data item
// plus the ids of every destination instance hosted on the same worker.
// The data item is serialized exactly once regardless of len(DstIDs).
type BatchTuple struct {
	DstIDs []int32
	Data   *Tuple
}

// AddressedTuple is the unit a worker-side dispatcher hands to a local
// executor after unpacking a WorkerMessage: destination task id + data item.
// Src records the worker the enclosing message arrived from; LocalSrc marks
// tuples that never crossed a transport link.
type AddressedTuple struct {
	TaskID int32
	Src    int32
	Data   *Tuple
}

// LocalSrc is the AddressedTuple.Src sentinel for locally produced tuples
// (spout emits, intra-worker emits, timer events): no credit is owed.
const LocalSrc int32 = -1

// Expand fans a BatchTuple out into one AddressedTuple per destination id.
// The data item is shared, not copied: this is the whole point of the
// worker-oriented design.
func (b *BatchTuple) Expand() []AddressedTuple {
	out := make([]AddressedTuple, len(b.DstIDs))
	for i, id := range b.DstIDs {
		out[i] = AddressedTuple{TaskID: id, Src: LocalSrc, Data: b.Data}
	}
	return out
}
