package tuple

import "testing"

func tracedTuple(id int64) *Tuple {
	return &Tuple{
		Stream:     "requests",
		ID:         991,
		SrcTask:    4,
		RootEmitNS: 7,
		TraceID:    id,
		Values:     []Value{int64(1), "abc", 2.5, true},
	}
}

// TestPeekTraceID checks the fixed-offset peek agrees with a full decode
// for traced and untraced tuples, and degrades to 0 on truncation.
func TestPeekTraceID(t *testing.T) {
	for _, id := range []int64{0, 1, 1 << 40} {
		buf, err := AppendTuple(nil, tracedTuple(id))
		if err != nil {
			t.Fatal(err)
		}
		if got := PeekTraceID(buf); got != id {
			t.Fatalf("PeekTraceID = %d, want %d", got, id)
		}
		dec, _, err := DecodeTuple(buf)
		if err != nil {
			t.Fatal(err)
		}
		if dec.TraceID != id {
			t.Fatalf("decoded TraceID = %d, want %d", dec.TraceID, id)
		}
		// Prefixes too short to contain the id must peek as untraced (not
		// panic or read out of bounds); prefixes that do contain it peek it.
		idEnd := 2 + len("requests") + 8 + 4 + 8 + 8 + 8 + 8
		for n := 0; n <= len(buf); n++ {
			want := id
			if n < idEnd {
				want = 0
			}
			if got := PeekTraceID(buf[:n]); got != want {
				t.Fatalf("truncated to %d bytes: peek = %d, want %d", n, got, want)
			}
		}
	}
}

// TestPeekWorkerMessageTraceID checks the envelope-level peek across the
// message kinds: data kinds reach through to the payload's trace ID, the
// multicast kind skips its relay header, control frames peek as untraced.
func TestPeekWorkerMessageTraceID(t *testing.T) {
	payload, err := AppendTuple(nil, tracedTuple(777))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []byte{KindWorkerMessage, KindInstanceMessage, KindMulticastMessage} {
		m := &WorkerMessage{Kind: kind, DstIDs: []int32{1, 2, 3}, Payload: payload}
		if kind == KindMulticastMessage {
			m.Group, m.TreeVersion, m.SrcWorker = 2, 5, 1
		}
		buf := AppendWorkerMessage(nil, m)
		if got := PeekWorkerMessageTraceID(buf); got != 777 {
			t.Fatalf("kind %d: peek = %d, want 777", kind, got)
		}
		for n := 0; n < 12 && n < len(buf); n++ {
			if got := PeekWorkerMessageTraceID(buf[:n]); got != 0 {
				t.Fatalf("kind %d truncated to %d bytes peeked %d", kind, n, got)
			}
		}
	}
	ctrl := AppendWorkerMessage(nil, &WorkerMessage{Kind: KindControl, Payload: payload})
	if got := PeekWorkerMessageTraceID(ctrl); got != 0 {
		t.Fatalf("control frame peeked trace id %d", got)
	}
	if got := PeekWorkerMessageTraceID(nil); got != 0 {
		t.Fatalf("nil buffer peeked %d", got)
	}
}
