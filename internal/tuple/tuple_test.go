package tuple

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTuple() *Tuple {
	return &Tuple{
		Stream:     "locations",
		ID:         42,
		SrcTask:    7,
		RootEmitNS: 123456789,
		RootID:     555,
		AckVal:     -777,
		Values:     []Value{int64(-5), float64(3.25), "driver-001", []byte{1, 2, 3}, true},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := sampleTuple()
	buf, err := AppendTuple(nil, in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, n, err := DecodeTuple(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%v\nout=%v", in, out)
	}
}

func TestEncodedSizeMatchesEncoding(t *testing.T) {
	in := sampleTuple()
	buf, err := AppendTuple(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := EncodedSize(in), len(buf); got != want {
		t.Fatalf("EncodedSize=%d, encoding is %d bytes", got, want)
	}
}

func TestEncoderReusesBuffer(t *testing.T) {
	e := NewEncoder()
	a, err := e.EncodeTuple(sampleTuple())
	if err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), a...)
	b, err := e.EncodeTuple(sampleTuple())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, b) {
		t.Fatal("second encoding differs from first for identical tuple")
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf, err := AppendTuple(nil, sampleTuple())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeTuple(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded, want error", cut, len(buf))
		}
	}
}

func TestEncodeUnsupportedType(t *testing.T) {
	in := &Tuple{Stream: "s", Values: []Value{complex(1, 2)}}
	if _, err := AppendTuple(nil, in); err == nil {
		t.Fatal("expected error for unsupported field type")
	}
}

func TestEmptyTuple(t *testing.T) {
	in := &Tuple{}
	buf, err := AppendTuple(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stream != "" || len(out.Values) != 0 {
		t.Fatalf("empty tuple round trip: %v", out)
	}
}

func TestSpecialFloats(t *testing.T) {
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, 0, math.Copysign(0, -1)} {
		in := &Tuple{Stream: "f", Values: []Value{f}}
		buf, err := AppendTuple(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := DecodeTuple(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Values[0].(float64); math.Float64bits(got) != math.Float64bits(f) {
			t.Fatalf("float %v round-tripped to %v", f, got)
		}
	}
	// NaN compares unequal to itself; check bit pattern explicitly.
	in := &Tuple{Stream: "f", Values: []Value{math.NaN()}}
	buf, _ := AppendTuple(nil, in)
	out, _, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.Values[0].(float64)) {
		t.Fatal("NaN did not round trip")
	}
}

// randomTuple builds an arbitrary valid tuple from a rand source.
func randomTuple(r *rand.Rand) *Tuple {
	nf := r.Intn(8)
	vals := make([]Value, nf)
	for i := range vals {
		switch r.Intn(5) {
		case 0:
			vals[i] = r.Int63() - r.Int63()
		case 1:
			vals[i] = r.NormFloat64()
		case 2:
			b := make([]byte, r.Intn(32))
			r.Read(b)
			vals[i] = string(b)
		case 3:
			b := make([]byte, r.Intn(32))
			r.Read(b)
			vals[i] = b
		case 4:
			vals[i] = r.Intn(2) == 0
		}
	}
	name := make([]byte, r.Intn(12))
	for i := range name {
		name[i] = byte('a' + r.Intn(26))
	}
	return &Tuple{
		Stream:     string(name),
		ID:         r.Int63(),
		SrcTask:    int32(r.Intn(1 << 20)),
		RootEmitNS: r.Int63(),
		RootID:     r.Int63() - r.Int63(),
		AckVal:     r.Int63() - r.Int63(),
		Values:     vals,
	}
}

func TestQuickTupleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r.Seed(seed)
		in := randomTuple(r)
		buf, err := AppendTuple(nil, in)
		if err != nil {
			return false
		}
		if EncodedSize(in) != len(buf) {
			return false
		}
		out, n, err := DecodeTuple(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return tuplesEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func tuplesEqual(a, b *Tuple) bool {
	if a.Stream != b.Stream || a.ID != b.ID || a.SrcTask != b.SrcTask || a.RootEmitNS != b.RootEmitNS || a.RootID != b.RootID || a.AckVal != b.AckVal || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		av, bv := a.Values[i], b.Values[i]
		if ab, ok := av.([]byte); ok {
			bb, ok2 := bv.([]byte)
			if !ok2 || !bytes.Equal(ab, bb) {
				return false
			}
			continue
		}
		if av != bv {
			return false
		}
	}
	return true
}

func TestCloneIndependence(t *testing.T) {
	a := sampleTuple()
	b := a.Clone()
	b.Values[0] = int64(99)
	if a.Values[0].(int64) == 99 {
		t.Fatal("Clone shares the Values slice")
	}
}

func TestAccessors(t *testing.T) {
	tp := sampleTuple()
	if tp.Int(0) != -5 {
		t.Fatal("Int")
	}
	if tp.Float(1) != 3.25 {
		t.Fatal("Float")
	}
	if tp.StringAt(2) != "driver-001" {
		t.Fatal("StringAt")
	}
	if !bytes.Equal(tp.Bytes(3), []byte{1, 2, 3}) {
		t.Fatal("Bytes")
	}
	if !tp.Bool(4) {
		t.Fatal("Bool")
	}
}
