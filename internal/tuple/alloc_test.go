package tuple

import (
	"bytes"
	"sync"
	"testing"
)

// The zero-allocation guarantees of the hot path (DESIGN §11): once an
// encoder or decode scratch is warm, steady-state encode/decode performs no
// per-message allocation. These tests enforce the acceptance criteria with
// testing.AllocsPerRun so a regression fails `go test`, not just a benchmark
// eyeball.

func allocTestTuple() *Tuple {
	return &Tuple{
		Stream:     "requests",
		ID:         12345,
		SrcTask:    3,
		RootEmitNS: 1,
		Values:     []Value{int64(42), "drv-001234", 30.65, 104.06, true},
	}
}

func TestEncodeTupleZeroAlloc(t *testing.T) {
	enc := NewEncoder()
	tp := allocTestTuple()
	if _, err := enc.EncodeTuple(tp); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := enc.EncodeTuple(tp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeTuple steady state allocates %.1f/op, want 0", allocs)
	}
}

func TestAppendWorkerMessageZeroAlloc(t *testing.T) {
	payload, err := AppendTuple(nil, allocTestTuple())
	if err != nil {
		t.Fatal(err)
	}
	msg := &WorkerMessage{Kind: KindWorkerMessage, DstIDs: []int32{1, 2, 3, 4, 5, 6, 7, 8}, Payload: payload}
	buf := AppendWorkerMessage(nil, msg) // warm the scratch
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendWorkerMessage(buf[:0], msg)
	})
	if allocs != 0 {
		t.Fatalf("AppendWorkerMessage steady state allocates %.1f/op, want 0", allocs)
	}
}

func TestDecodeWorkerMessageIntoZeroAlloc(t *testing.T) {
	payload, err := AppendTuple(nil, allocTestTuple())
	if err != nil {
		t.Fatal(err)
	}
	raw := AppendWorkerMessage(nil, &WorkerMessage{
		Kind: KindWorkerMessage, DstIDs: []int32{1, 2, 3, 4}, Payload: payload,
	})
	var scratch WorkerMessage
	if _, err := DecodeWorkerMessageInto(&scratch, raw); err != nil { // warm DstIDs
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeWorkerMessageInto(&scratch, raw); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeWorkerMessageInto steady state allocates %.1f/op, want 0", allocs)
	}
}

func TestEncodeControlEnvelopeZeroAlloc(t *testing.T) {
	enc := NewEncoder()
	cm := &ControlMessage{Type: CtrlCredit, Node: 7, Credits: 12345}
	enc.EncodeControlEnvelope(cm) // warm both scratches
	allocs := testing.AllocsPerRun(200, func() {
		enc.EncodeControlEnvelope(cm)
	})
	if allocs != 0 {
		t.Fatalf("EncodeControlEnvelope steady state allocates %.1f/op, want 0", allocs)
	}
}

// TestDecodeWorkerMessageIntoReuse checks the scratch is fully overwritten
// between messages: relay header fields from a multicast message must not
// leak into the next (non-multicast) decode.
func TestDecodeWorkerMessageIntoReuse(t *testing.T) {
	mc := AppendWorkerMessage(nil, &WorkerMessage{
		Kind: KindMulticastMessage, DstIDs: []int32{9, 10, 11},
		Group: 5, TreeVersion: 3, SrcWorker: 2, Payload: []byte("multi"),
	})
	plain := AppendWorkerMessage(nil, &WorkerMessage{
		Kind: KindWorkerMessage, DstIDs: []int32{1}, Payload: []byte("plain"),
	})
	var m WorkerMessage
	if _, err := DecodeWorkerMessageInto(&m, mc); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWorkerMessageInto(&m, plain); err != nil {
		t.Fatal(err)
	}
	if m.Group != 0 || m.TreeVersion != 0 || m.SrcWorker != 0 {
		t.Fatalf("stale relay header after reuse: %+v", m)
	}
	if len(m.DstIDs) != 1 || m.DstIDs[0] != 1 || string(m.Payload) != "plain" {
		t.Fatalf("bad reused decode: %+v", m)
	}
}

// TestDecodeTupleBytesAlias pins the tagBytes copy elision: decoded []byte
// values alias the input buffer (receive-path buffers are handler-owned, so
// the alias is the point — no per-field copy).
func TestDecodeTupleBytesAlias(t *testing.T) {
	blob := []byte{0xde, 0xad, 0xbe, 0xef}
	buf, err := AppendTuple(nil, &Tuple{Stream: "s", Values: []Value{blob}})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.Values[0].([]byte)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("decoded %v, want %v", out.Values[0], blob)
	}
	// Mutating the input must show through the decoded value — the alias
	// contract (and why receive buffers must never be recycled).
	buf[len(buf)-1] ^= 0xff
	if got[len(got)-1] == 0xef {
		t.Fatal("decoded []byte does not alias the input buffer")
	}
}

// TestPooledEncoderConcurrent hammers the encoder pool from many goroutines
// (run under -race by `make race`): concurrent acquire/encode/decode/release
// must never share live scratch.
func TestPooledEncoderConcurrent(t *testing.T) {
	const goroutines = 8
	const rounds = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tp := allocTestTuple()
			tp.ID = int64(g)
			for i := 0; i < rounds; i++ {
				enc := AcquireEncoder()
				raw, err := enc.EncodeTuple(tp)
				if err != nil {
					t.Error(err)
					ReleaseEncoder(enc)
					return
				}
				out, _, err := DecodeTuple(raw)
				if err != nil || out.ID != int64(g) {
					t.Errorf("goroutine %d round %d: decode %v id=%v", g, i, err, out)
					ReleaseEncoder(enc)
					return
				}
				cm := &ControlMessage{Type: CtrlCredit, Node: int32(g), Credits: int64(i)}
				env := enc.EncodeControlEnvelope(cm)
				m, _, err := DecodeWorkerMessage(env)
				if err != nil || m.Kind != KindControl {
					t.Errorf("goroutine %d round %d: envelope decode %v", g, i, err)
					ReleaseEncoder(enc)
					return
				}
				ReleaseEncoder(enc)
			}
		}(g)
	}
	wg.Wait()
}
