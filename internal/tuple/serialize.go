package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Field type tags used by the binary encoding.
const (
	tagInt64 byte = iota + 1
	tagFloat64
	tagString
	tagBytes
	tagBool
)

// ErrTruncated is returned when a buffer ends before a complete value.
var ErrTruncated = fmt.Errorf("tuple: truncated buffer")

// Encoder serializes tuples and message envelopes into reusable scratch
// buffers. It is not safe for concurrent use; each executor owns one, and
// transient users borrow one from the pool via AcquireEncoder.
type Encoder struct {
	buf []byte
	aux []byte // nested-payload scratch for EncodeControlEnvelope
}

// NewEncoder returns an encoder with an initial buffer capacity.
func NewEncoder() *Encoder { return &Encoder{buf: make([]byte, 0, 256)} }

// EncodeTuple serializes t and returns the encoded bytes. The returned slice
// aliases the encoder's internal buffer and is only valid until the next
// call; callers that need to keep it must copy.
func (e *Encoder) EncodeTuple(t *Tuple) ([]byte, error) {
	e.buf = e.buf[:0]
	var err error
	e.buf, err = AppendTuple(e.buf, t)
	return e.buf, err
}

// AppendTuple appends the binary encoding of t to dst and returns the
// extended slice.
//
// Layout (all integers little-endian):
//
//	u16 len(stream) | stream bytes
//	i64 id | i32 srcTask | i64 rootEmitNS | i64 rootID | i64 ackVal | i64 traceID
//	i64 epoch | u16 nfields | nfields * (tag u8, value)
//
//whale:hotpath
func AppendTuple(dst []byte, t *Tuple) ([]byte, error) {
	dst = appendU16(dst, uint16(len(t.Stream)))
	dst = append(dst, t.Stream...)
	dst = appendU64(dst, uint64(t.ID))
	dst = appendU32(dst, uint32(t.SrcTask))
	dst = appendU64(dst, uint64(t.RootEmitNS))
	dst = appendU64(dst, uint64(t.RootID))
	dst = appendU64(dst, uint64(t.AckVal))
	dst = appendU64(dst, uint64(t.TraceID))
	dst = appendU64(dst, uint64(t.Epoch))
	dst = appendU16(dst, uint16(len(t.Values)))
	for _, v := range t.Values {
		var err error
		dst, err = appendValue(dst, v)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

//whale:hotpath
func appendValue(dst []byte, v Value) ([]byte, error) {
	switch x := v.(type) {
	case int64:
		dst = append(dst, tagInt64)
		dst = appendU64(dst, uint64(x))
	case float64:
		dst = append(dst, tagFloat64)
		dst = appendU64(dst, math.Float64bits(x))
	case string:
		dst = append(dst, tagString)
		dst = appendU32(dst, uint32(len(x)))
		dst = append(dst, x...)
	case []byte:
		dst = append(dst, tagBytes)
		dst = appendU32(dst, uint32(len(x)))
		dst = append(dst, x...)
	case bool:
		dst = append(dst, tagBool)
		if x {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	default:
		return dst, fmt.Errorf("tuple: unsupported field type %T", v)
	}
	return dst, nil
}

// DecodeTuple parses one tuple from buf, returning the tuple and the number
// of bytes consumed. []byte field values alias buf — the caller must not
// recycle buf while the decoded tuple is live (see DESIGN §11: receive-path
// buffers transfer to the receiver and are never reused, which makes the
// alias free).
//
//whale:hotpath
func DecodeTuple(buf []byte) (*Tuple, int, error) {
	off := 0
	slen, off, err := readU16(buf, off)
	if err != nil {
		return nil, 0, err
	}
	if off+int(slen) > len(buf) {
		return nil, 0, ErrTruncated
	}
	t := &Tuple{Stream: string(buf[off : off+int(slen)])}
	off += int(slen)
	id, off, err := readU64(buf, off)
	if err != nil {
		return nil, 0, err
	}
	t.ID = int64(id)
	src, off, err := readU32(buf, off)
	if err != nil {
		return nil, 0, err
	}
	t.SrcTask = int32(src)
	emit, off, err := readU64(buf, off)
	if err != nil {
		return nil, 0, err
	}
	t.RootEmitNS = int64(emit)
	root, off, err := readU64(buf, off)
	if err != nil {
		return nil, 0, err
	}
	t.RootID = int64(root)
	av, off, err := readU64(buf, off)
	if err != nil {
		return nil, 0, err
	}
	t.AckVal = int64(av)
	tid, off, err := readU64(buf, off)
	if err != nil {
		return nil, 0, err
	}
	t.TraceID = int64(tid)
	ep, off, err := readU64(buf, off)
	if err != nil {
		return nil, 0, err
	}
	t.Epoch = int64(ep)
	nf, off, err := readU16(buf, off)
	if err != nil {
		return nil, 0, err
	}
	t.Values = make([]Value, nf)
	for i := 0; i < int(nf); i++ {
		t.Values[i], off, err = readValue(buf, off)
		if err != nil {
			return nil, 0, err
		}
	}
	return t, off, nil
}

//whale:hotpath
func readValue(buf []byte, off int) (Value, int, error) {
	if off >= len(buf) {
		return nil, off, ErrTruncated
	}
	tag := buf[off]
	off++
	switch tag {
	case tagInt64:
		u, off, err := readU64(buf, off)
		return int64(u), off, err
	case tagFloat64:
		u, off, err := readU64(buf, off)
		return math.Float64frombits(u), off, err
	case tagString:
		n, off, err := readU32(buf, off)
		if err != nil {
			return nil, off, err
		}
		if off+int(n) > len(buf) {
			return nil, off, ErrTruncated
		}
		return string(buf[off : off+int(n)]), off + int(n), nil
	case tagBytes:
		n, off, err := readU32(buf, off)
		if err != nil {
			return nil, off, err
		}
		if off+int(n) > len(buf) {
			return nil, off, ErrTruncated
		}
		// Alias the input instead of copying: decode buffers are owned by the
		// receive path (every transport delivers a private buffer) and Tuple
		// []byte fields are immutable by convention, so the sub-slice is safe
		// to hand out and the per-field copy is pure overhead.
		return buf[off : off+int(n) : off+int(n)], off + int(n), nil
	case tagBool:
		if off >= len(buf) {
			return nil, off, ErrTruncated
		}
		// Strict: only the two bytes the encoder emits are valid. Accepting
		// arbitrary nonzero bytes as false made corrupt frames decode
		// silently instead of failing (found by FuzzDecodeTuple).
		switch buf[off] {
		case 0:
			return false, off + 1, nil
		case 1:
			return true, off + 1, nil
		}
		return nil, off, fmt.Errorf("tuple: invalid bool encoding %d", buf[off])
	default:
		return nil, off, fmt.Errorf("tuple: unknown field tag %d", tag)
	}
}

// PeekTraceID reads the trace ID straight out of an encoded tuple without
// decoding it (the id sits at a fixed offset past the variable-length
// stream name). It returns 0 — untraced — for buffers too short to hold
// the header; the caller is expected to decode (and fail) anyway. Stall
// instrumentation on the send path uses this to attribute queue residency
// to sampled traces without paying a full decode per queued item.
//
//whale:hotpath
func PeekTraceID(buf []byte) int64 {
	if len(buf) < 2 {
		return 0
	}
	off := 2 + int(binary.LittleEndian.Uint16(buf)) + 8 + 4 + 8 + 8 + 8
	if off+8 > len(buf) {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(buf[off:]))
}

// EncodedSize returns the exact number of bytes AppendTuple would produce,
// without encoding. The simulated cluster uses it to derive message sizes.
//
//whale:hotpath
func EncodedSize(t *Tuple) int {
	n := 2 + len(t.Stream) + 8 + 4 + 8 + 8 + 8 + 8 + 8 + 2
	for _, v := range t.Values {
		switch x := v.(type) {
		case int64, float64:
			n += 1 + 8
		case string:
			n += 1 + 4 + len(x)
		case []byte:
			n += 1 + 4 + len(x)
		case bool:
			n += 1 + 1
		}
	}
	return n
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func readU16(buf []byte, off int) (uint16, int, error) {
	if off+2 > len(buf) {
		return 0, off, ErrTruncated
	}
	return binary.LittleEndian.Uint16(buf[off:]), off + 2, nil
}

func readU32(buf []byte, off int) (uint32, int, error) {
	if off+4 > len(buf) {
		return 0, off, ErrTruncated
	}
	return binary.LittleEndian.Uint32(buf[off:]), off + 4, nil
}

func readU64(buf []byte, off int) (uint64, int, error) {
	if off+8 > len(buf) {
		return 0, off, ErrTruncated
	}
	return binary.LittleEndian.Uint64(buf[off:]), off + 8, nil
}
