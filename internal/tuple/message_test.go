package tuple

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWorkerMessageRoundTrip(t *testing.T) {
	payload, err := AppendTuple(nil, sampleTuple())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []byte{KindWorkerMessage, KindInstanceMessage, KindMulticastMessage} {
		m := &WorkerMessage{
			Kind:    kind,
			DstIDs:  []int32{3, 17, 255},
			Payload: payload,
		}
		if kind == KindMulticastMessage {
			m.Group, m.TreeVersion, m.SrcWorker = 2, 9, 4
		}
		buf := AppendWorkerMessage(nil, m)
		if got, want := len(buf), EncodedWorkerMessageSize(kind, len(m.DstIDs), len(payload)); got != want {
			t.Fatalf("kind %d: size %d, EncodedWorkerMessageSize says %d", kind, got, want)
		}
		out, n, err := DecodeWorkerMessage(buf)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if n != len(buf) {
			t.Fatalf("kind %d: consumed %d of %d", kind, n, len(buf))
		}
		if !reflect.DeepEqual(m.DstIDs, out.DstIDs) || !bytes.Equal(m.Payload, out.Payload) {
			t.Fatalf("kind %d: round trip mismatch", kind)
		}
		if kind == KindMulticastMessage {
			if out.Group != 2 || out.TreeVersion != 9 || out.SrcWorker != 4 {
				t.Fatalf("relay header mismatch: %+v", out)
			}
		}
	}
}

func TestWorkerMessageTruncated(t *testing.T) {
	m := &WorkerMessage{Kind: KindMulticastMessage, DstIDs: []int32{1, 2}, Payload: []byte("abcdef"), Group: 1}
	buf := AppendWorkerMessage(nil, m)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeWorkerMessage(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestBatchTupleExpand(t *testing.T) {
	b := &BatchTuple{DstIDs: []int32{5, 6, 7}, Data: sampleTuple()}
	ats := b.Expand()
	if len(ats) != 3 {
		t.Fatalf("expanded to %d", len(ats))
	}
	for i, at := range ats {
		if at.TaskID != b.DstIDs[i] {
			t.Fatalf("dst %d: got task %d", i, at.TaskID)
		}
		if at.Data != b.Data {
			t.Fatal("Expand must share the data item, not copy it")
		}
	}
}

func TestControlMessageRoundTrip(t *testing.T) {
	msgs := []*ControlMessage{
		{Type: CtrlStatus, Direction: SwitchScaleDown, Group: 1, Version: 2},
		{Type: CtrlStatus, Direction: SwitchScaleUp, Group: 1, Version: 3},
		{Type: CtrlReconnect, Group: 4, Version: 5, Node: 10, OldParent: 2, NewParent: 3},
		{Type: CtrlAck, Group: 4, Version: 5, Node: 10},
		{Type: CtrlHeartbeat, Node: 3, Version: 41},
		{Type: CtrlCredit, Node: 2, Credits: 1 << 40},
		{Type: CtrlTree, Group: 0, Version: 7,
			Nodes: []int32{0, 1, 2, 3}, Parents: []int32{-1, 0, 0, 1}},
		{Type: CtrlSnapAck, Direction: SnapAckSnapshot, Node: 7, Epoch: 12},
		{Type: CtrlSnapAck, Direction: SnapAckRestore, Node: 9, Epoch: 3},
	}
	for _, in := range msgs {
		buf := AppendControlMessage(nil, in)
		out, n, err := DecodeControlMessage(buf)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d", in, n, len(buf))
		}
		if in.Nodes == nil {
			in.Nodes, in.Parents = []int32{}, []int32{}
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
		}
		if out.String() == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestControlMessageTruncated(t *testing.T) {
	in := &ControlMessage{Type: CtrlTree, Version: 1, Nodes: []int32{0, 1}, Parents: []int32{-1, 0}}
	buf := AppendControlMessage(nil, in)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeControlMessage(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestControlMessageBogusCount(t *testing.T) {
	// A corrupted node count must not cause a huge allocation or panic.
	// The count is the u32 preceding the trailing credits + epoch u64s.
	in := &ControlMessage{Type: CtrlTree}
	buf := AppendControlMessage(nil, in)
	buf[len(buf)-20] = 0xff
	buf[len(buf)-19] = 0xff
	buf[len(buf)-18] = 0xff
	buf[len(buf)-17] = 0x7f
	if _, _, err := DecodeControlMessage(buf); err == nil {
		t.Fatal("expected error for bogus count")
	}
}

func TestQuickWorkerMessageRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r.Seed(seed)
		payload := make([]byte, r.Intn(256))
		r.Read(payload)
		ids := make([]int32, r.Intn(20))
		for i := range ids {
			ids[i] = int32(r.Intn(1 << 16))
		}
		kinds := []byte{KindWorkerMessage, KindInstanceMessage, KindMulticastMessage}
		m := &WorkerMessage{Kind: kinds[r.Intn(3)], DstIDs: ids, Payload: payload,
			Group: int32(r.Intn(100)), TreeVersion: int32(r.Intn(100)), SrcWorker: int32(r.Intn(100))}
		buf := AppendWorkerMessage(nil, m)
		out, n, err := DecodeWorkerMessage(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if len(out.DstIDs) != len(ids) || !bytes.Equal(out.Payload, payload) {
			return false
		}
		for i := range ids {
			if out.DstIDs[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
