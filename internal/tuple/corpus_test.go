package tuple

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// corpusSeeds enumerates the committed fuzz seed corpus: one well-formed
// frame per interesting shape, including the checkpoint-plane frames
// (barrier tuples with a non-zero epoch, CtrlSnapAck in both directions).
// TestFuzzCorpusDecodes asserts every one of them still decodes cleanly —
// a committed seed that no longer parses means the wire format changed
// without regenerating the corpus. Run with WHALE_REGEN_CORPUS=1 to rewrite
// the files under testdata/fuzz/ after an intentional format change.
func corpusSeeds(t testing.TB) map[string]map[string][]byte {
	full, err := AppendTuple(nil, sampleTuple())
	if err != nil {
		t.Fatal(err)
	}
	barrier, err := AppendTuple(nil, &Tuple{Stream: "__barrier", SrcTask: 3, Epoch: 12})
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := AppendTuple(nil, &Tuple{Stream: "words", ID: 9, SrcTask: 1, Epoch: 4,
		Values: []Value{int64(7), "hi"}})
	if err != nil {
		t.Fatal(err)
	}
	wm := func(kind byte) []byte {
		m := &WorkerMessage{Kind: kind, DstIDs: []int32{3, 17}, Payload: full}
		if kind == KindMulticastMessage {
			m.Group, m.TreeVersion, m.SrcWorker = 2, 9, 4
		}
		return AppendWorkerMessage(nil, m)
	}
	cm := func(c *ControlMessage) []byte { return AppendControlMessage(nil, c) }
	return map[string]map[string][]byte{
		"FuzzDecodeTuple": {
			"seed-full":    full,
			"seed-barrier": barrier,
			"seed-epoch":   epoch,
		},
		"FuzzDecodeWorkerMessage": {
			"seed-worker":    wm(KindWorkerMessage),
			"seed-instance":  wm(KindInstanceMessage),
			"seed-multicast": wm(KindMulticastMessage),
		},
		"FuzzDecodeControlMessage": {
			"seed-status":           cm(&ControlMessage{Type: CtrlStatus, Direction: SwitchScaleUp, Group: 1, Version: 2}),
			"seed-reconnect":        cm(&ControlMessage{Type: CtrlReconnect, Group: 4, Version: 5, Node: 10, OldParent: 2, NewParent: 3}),
			"seed-tree":             cm(&ControlMessage{Type: CtrlTree, Version: 7, Nodes: []int32{0, 1, 2}, Parents: []int32{-1, 0, 0}}),
			"seed-credit":           cm(&ControlMessage{Type: CtrlCredit, Node: 2, Credits: 1 << 40}),
			"seed-snapack-snapshot": cm(&ControlMessage{Type: CtrlSnapAck, Direction: SnapAckSnapshot, Node: 7, Epoch: 12}),
			"seed-snapack-restore":  cm(&ControlMessage{Type: CtrlSnapAck, Direction: SnapAckRestore, Node: 9, Epoch: 3}),
		},
	}
}

func TestFuzzCorpusDecodes(t *testing.T) {
	if os.Getenv("WHALE_REGEN_CORPUS") != "" {
		for fuzzName, seeds := range corpusSeeds(t) {
			dir := filepath.Join("testdata", "fuzz", fuzzName)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for name, enc := range seeds {
				body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", enc)
				if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for fuzzName, seeds := range corpusSeeds(t) {
		for name, enc := range seeds {
			var err error
			switch fuzzName {
			case "FuzzDecodeTuple":
				_, _, err = DecodeTuple(enc)
			case "FuzzDecodeWorkerMessage":
				_, _, err = DecodeWorkerMessage(enc)
			case "FuzzDecodeControlMessage":
				_, _, err = DecodeControlMessage(enc)
			}
			if err != nil {
				t.Errorf("%s/%s: committed seed no longer decodes: %v", fuzzName, name, err)
			}
		}
	}
}
