package tuple

import (
	"fmt"
)

// Message kinds on the worker-to-worker wire.
const (
	// KindWorkerMessage carries one serialized data item plus the ids of the
	// destination instances hosted on the receiving worker (Whale's
	// worker-oriented format, paper Fig. 9b).
	KindWorkerMessage byte = iota + 1
	// KindInstanceMessage carries one serialized data item addressed to a
	// single destination instance (the instance-oriented baseline format,
	// paper Fig. 9a).
	KindInstanceMessage
	// KindMulticastMessage is a WorkerMessage that additionally participates
	// in tree relay: it carries the multicast group, tree version and the
	// source worker so receiving workers can forward it to their children.
	KindMulticastMessage
	// KindControl carries a control-plane message (tree switching).
	KindControl
)

// WorkerMessage is the unit Whale ships between workers: a header of
// destination task ids plus the once-serialized data item. For multicast
// messages the relay header fields are populated as well.
type WorkerMessage struct {
	Kind    byte
	DstIDs  []int32
	Payload []byte // serialized Tuple

	// Relay header, used only when Kind == KindMulticastMessage.
	Group       int32 // multicast group id (one per source task)
	TreeVersion int32 // version of the multicast tree this was routed with
	SrcWorker   int32 // worker hosting the multicast source
}

// AppendWorkerMessage appends the wire encoding of m to dst.
//
// Layout:
//
//	u8 kind | u16 ndst | ndst * i32 | [group i32 | version i32 | srcWorker i32]
//	u32 len(payload) | payload
func AppendWorkerMessage(dst []byte, m *WorkerMessage) []byte {
	dst = append(dst, m.Kind)
	dst = appendU16(dst, uint16(len(m.DstIDs)))
	for _, id := range m.DstIDs {
		dst = appendU32(dst, uint32(id))
	}
	if m.Kind == KindMulticastMessage {
		dst = appendU32(dst, uint32(m.Group))
		dst = appendU32(dst, uint32(m.TreeVersion))
		dst = appendU32(dst, uint32(m.SrcWorker))
	}
	dst = appendU32(dst, uint32(len(m.Payload)))
	dst = append(dst, m.Payload...)
	return dst
}

// MessageKind peeks the wire kind of an encoded WorkerMessage without
// decoding it (the kind is always byte 0). Returns 0 for an empty buffer;
// the caller is expected to decode (and fail) anyway.
func MessageKind(buf []byte) byte {
	if len(buf) == 0 {
		return 0
	}
	return buf[0]
}

// PeekWorkerMessageTraceID reads the trace ID of the tuple payload inside
// an encoded data-plane WorkerMessage without decoding either envelope or
// payload. It returns 0 for control messages, truncated buffers, or an
// untraced payload — the trace piggyback is best-effort by design.
//
//whale:hotpath
func PeekWorkerMessageTraceID(buf []byte) int64 {
	if len(buf) < 3 {
		return 0
	}
	kind := buf[0]
	switch kind {
	case KindWorkerMessage, KindInstanceMessage, KindMulticastMessage:
	default:
		return 0
	}
	ndst := int(buf[1]) | int(buf[2])<<8
	off := 3 + 4*ndst
	if kind == KindMulticastMessage {
		off += 12
	}
	off += 4 // payload length
	if off > len(buf) {
		return 0
	}
	return PeekTraceID(buf[off:])
}

// DecodeWorkerMessage parses one WorkerMessage from buf, returning the
// message and bytes consumed. The returned Payload aliases buf.
func DecodeWorkerMessage(buf []byte) (*WorkerMessage, int, error) {
	m := &WorkerMessage{}
	n, err := DecodeWorkerMessageInto(m, buf)
	if err != nil {
		return nil, 0, err
	}
	return m, n, nil
}

// DecodeWorkerMessageInto parses one WorkerMessage from buf into m, reusing
// m's DstIDs capacity, and returns the bytes consumed. m.Payload aliases
// buf: the decoded message is only valid while buf is; reusing m for the
// next decode invalidates the previous contents (single-owner scratch —
// see DESIGN §11). On error m is left in an unspecified state.
func DecodeWorkerMessageInto(m *WorkerMessage, buf []byte) (int, error) {
	if len(buf) < 1 {
		return 0, ErrTruncated
	}
	*m = WorkerMessage{Kind: buf[0], DstIDs: m.DstIDs[:0]}
	off := 1
	ndst, off, err := readU16(buf, off)
	if err != nil {
		return 0, err
	}
	if cap(m.DstIDs) < int(ndst) {
		m.DstIDs = make([]int32, ndst)
	} else {
		m.DstIDs = m.DstIDs[:ndst]
	}
	for i := range m.DstIDs {
		var u uint32
		u, off, err = readU32(buf, off)
		if err != nil {
			return 0, err
		}
		m.DstIDs[i] = int32(u)
	}
	if m.Kind == KindMulticastMessage {
		var u uint32
		u, off, err = readU32(buf, off)
		if err != nil {
			return 0, err
		}
		m.Group = int32(u)
		u, off, err = readU32(buf, off)
		if err != nil {
			return 0, err
		}
		m.TreeVersion = int32(u)
		u, off, err = readU32(buf, off)
		if err != nil {
			return 0, err
		}
		m.SrcWorker = int32(u)
	}
	plen, off, err := readU32(buf, off)
	if err != nil {
		return 0, err
	}
	if off+int(plen) > len(buf) {
		return 0, ErrTruncated
	}
	m.Payload = buf[off : off+int(plen)]
	return off + int(plen), nil
}

// EncodedWorkerMessageSize returns the wire size of a worker message with
// ndst destination ids, a payload of payloadLen bytes and the given kind.
func EncodedWorkerMessageSize(kind byte, ndst, payloadLen int) int {
	n := 1 + 2 + 4*ndst + 4 + payloadLen
	if kind == KindMulticastMessage {
		n += 12
	}
	return n
}

// Control-plane message types for the dynamic switching protocol (§3.4).
const (
	// CtrlStatus announces that a switch (scale-up or scale-down) is about
	// to happen; it precedes the ControlMessages carrying the new structure.
	CtrlStatus byte = iota + 1
	// CtrlReconnect instructs one instance/worker to disconnect from its
	// current parent and reconnect to a new one.
	CtrlReconnect
	// CtrlTree distributes the full new tree (adjacency) so relay nodes can
	// route; the paper's relay instances "store the structure of the
	// multicast tree with ControlMessage".
	CtrlTree
	// CtrlAck acknowledges completion of a reconnect.
	CtrlAck
	// CtrlHeartbeat is a liveness beacon piggybacked on the control plane:
	// Node carries the sender's worker id, Version a monotonically
	// increasing sequence number. The failure detector treats any control
	// or data message as implicit liveness, so heartbeats only matter on
	// otherwise-idle links.
	CtrlHeartbeat
	// CtrlCredit is the flow-control grant: the receiver reports, per
	// directed link, the cumulative number of tuple deliveries it has
	// drained from the sender identified by Node. Credits is cumulative and
	// idempotent — receivers re-broadcast it periodically, and the sender
	// max-merges, so lost or duplicated grants never corrupt the window.
	CtrlCredit
	// CtrlSnapAck reports checkpoint progress to the coordinator on worker
	// 0: Node carries the acking task id, Epoch the checkpoint epoch, and
	// Direction distinguishes a snapshot ack (SnapAckSnapshot — the task
	// aligned, serialized its state and forwarded the barrier) from a
	// restore ack (SnapAckRestore — the task reinstalled its epoch-N state
	// during recovery). Duplicates are harmless: the coordinator tracks
	// acked tasks in a set per epoch.
	CtrlSnapAck
	// CtrlJoin asks the monitor (worker 0) to admit the sending worker into
	// the live membership: Node carries the joiner's worker id, Version a
	// per-attempt sequence number. The joiner retries with bounded backoff
	// until a CtrlWelcome arrives; duplicates are idempotent at the monitor
	// (admission happens once, the welcome is simply re-sent).
	CtrlJoin
	// CtrlWelcome is the monitor's admission reply: Node echoes the admitted
	// worker id, Version the CtrlJoin attempt it answers. Duplicated or
	// reordered welcomes are harmless — the joiner completes its handshake
	// exactly once.
	CtrlWelcome
)

// CtrlSnapAck directions.
const (
	SnapAckSnapshot byte = 1
	SnapAckRestore  byte = 2
)

// Switch directions carried by CtrlStatus.
const (
	SwitchScaleDown byte = 1
	SwitchScaleUp   byte = 2
)

// ControlMessage is the control-plane unit for dynamic switching.
type ControlMessage struct {
	Type      byte
	Direction byte  // for CtrlStatus
	Group     int32 // multicast group
	Version   int32 // tree version this message installs/acks

	// For CtrlReconnect: the node being moved and its new parent.
	Node      int32
	OldParent int32
	NewParent int32

	// For CtrlTree: flattened adjacency; Parents[i] is the parent of node
	// Nodes[i]. The source has parent -1.
	Nodes   []int32
	Parents []int32

	// For CtrlCredit: the cumulative count of tuple deliveries the sender
	// (Node) has drained at the granting worker.
	Credits int64

	// For CtrlSnapAck: the checkpoint epoch being acknowledged.
	Epoch int64
}

// AppendControlMessage appends the wire encoding of c to dst.
func AppendControlMessage(dst []byte, c *ControlMessage) []byte {
	dst = append(dst, c.Type, c.Direction)
	dst = appendU32(dst, uint32(c.Group))
	dst = appendU32(dst, uint32(c.Version))
	dst = appendU32(dst, uint32(c.Node))
	dst = appendU32(dst, uint32(c.OldParent))
	dst = appendU32(dst, uint32(c.NewParent))
	dst = appendU32(dst, uint32(len(c.Nodes)))
	for i := range c.Nodes {
		dst = appendU32(dst, uint32(c.Nodes[i]))
		dst = appendU32(dst, uint32(c.Parents[i]))
	}
	dst = appendU64(dst, uint64(c.Credits))
	dst = appendU64(dst, uint64(c.Epoch))
	return dst
}

// DecodeControlMessage parses a ControlMessage from buf.
func DecodeControlMessage(buf []byte) (*ControlMessage, int, error) {
	if len(buf) < 2 {
		return nil, 0, ErrTruncated
	}
	c := &ControlMessage{Type: buf[0], Direction: buf[1]}
	off := 2
	var u uint32
	var err error
	if u, off, err = readU32(buf, off); err != nil {
		return nil, 0, err
	}
	c.Group = int32(u)
	if u, off, err = readU32(buf, off); err != nil {
		return nil, 0, err
	}
	c.Version = int32(u)
	if u, off, err = readU32(buf, off); err != nil {
		return nil, 0, err
	}
	c.Node = int32(u)
	if u, off, err = readU32(buf, off); err != nil {
		return nil, 0, err
	}
	c.OldParent = int32(u)
	if u, off, err = readU32(buf, off); err != nil {
		return nil, 0, err
	}
	c.NewParent = int32(u)
	var n uint32
	if n, off, err = readU32(buf, off); err != nil {
		return nil, 0, err
	}
	if int(n) > (len(buf)-off)/8 {
		return nil, 0, ErrTruncated
	}
	c.Nodes = make([]int32, n)
	c.Parents = make([]int32, n)
	for i := 0; i < int(n); i++ {
		if u, off, err = readU32(buf, off); err != nil {
			return nil, 0, err
		}
		c.Nodes[i] = int32(u)
		if u, off, err = readU32(buf, off); err != nil {
			return nil, 0, err
		}
		c.Parents[i] = int32(u)
	}
	var cr uint64
	if cr, off, err = readU64(buf, off); err != nil {
		return nil, 0, err
	}
	c.Credits = int64(cr)
	if cr, off, err = readU64(buf, off); err != nil {
		return nil, 0, err
	}
	c.Epoch = int64(cr)
	return c, off, nil
}

func (c *ControlMessage) String() string {
	switch c.Type {
	case CtrlStatus:
		dir := "scale-up"
		if c.Direction == SwitchScaleDown {
			dir = "scale-down"
		}
		return fmt.Sprintf("Status{%s group=%d v=%d}", dir, c.Group, c.Version)
	case CtrlReconnect:
		return fmt.Sprintf("Reconnect{group=%d v=%d node=%d %d->%d}", c.Group, c.Version, c.Node, c.OldParent, c.NewParent)
	case CtrlTree:
		return fmt.Sprintf("Tree{group=%d v=%d n=%d}", c.Group, c.Version, len(c.Nodes))
	case CtrlAck:
		return fmt.Sprintf("Ack{group=%d v=%d node=%d}", c.Group, c.Version, c.Node)
	case CtrlHeartbeat:
		return fmt.Sprintf("Heartbeat{worker=%d seq=%d}", c.Node, c.Version)
	case CtrlCredit:
		return fmt.Sprintf("Credit{sender=%d drained=%d}", c.Node, c.Credits)
	case CtrlSnapAck:
		dir := "snapshot"
		if c.Direction == SnapAckRestore {
			dir = "restore"
		}
		return fmt.Sprintf("SnapAck{%s task=%d epoch=%d}", dir, c.Node, c.Epoch)
	case CtrlJoin:
		return fmt.Sprintf("Join{worker=%d attempt=%d}", c.Node, c.Version)
	case CtrlWelcome:
		return fmt.Sprintf("Welcome{worker=%d attempt=%d}", c.Node, c.Version)
	}
	return fmt.Sprintf("Control{type=%d}", c.Type)
}
