package tuple

import "sync"

// Encoder pooling. Long-lived owners (one per worker send thread) hold their
// own Encoder; transient encode sites — control-plane grants, heartbeats,
// acks — borrow one here instead of encoding into a fresh slice per message.
// The pooled scratch amortizes to zero allocations once warm.
var encoderPool = sync.Pool{New: func() any { return NewEncoder() }}

// AcquireEncoder returns a pooled encoder. Callers must pass it to
// ReleaseEncoder once every slice obtained from it is dead or copied: the
// encoder's buffers are recycled on release, so a retained EncodeTuple /
// EncodeControlEnvelope result would be clobbered by the next borrower.
//
//whale:acquires
func AcquireEncoder() *Encoder { return encoderPool.Get().(*Encoder) }

// ReleaseEncoder returns e to the pool. e must not be used afterwards.
//
//whale:owns e
func ReleaseEncoder(e *Encoder) {
	if e == nil {
		return
	}
	// Don't let one giant message pin a giant scratch in the pool forever.
	const maxRetained = 1 << 20
	if cap(e.buf) > maxRetained {
		e.buf = nil
	}
	if cap(e.aux) > maxRetained {
		e.aux = nil
	}
	encoderPool.Put(e)
}

// EncodeControlEnvelope serializes cm wrapped in a KindControl WorkerMessage,
// using the encoder's scratch buffers. The returned slice aliases the
// encoder's internal buffer and is only valid until the next call (or until
// the encoder is released); the transports' Send contract — payload copied
// before Send returns — makes send-then-release safe.
func (e *Encoder) EncodeControlEnvelope(cm *ControlMessage) []byte {
	e.aux = AppendControlMessage(e.aux[:0], cm)
	e.buf = AppendWorkerMessage(e.buf[:0], &WorkerMessage{
		Kind:    KindControl,
		Payload: e.aux,
	})
	return e.buf
}
