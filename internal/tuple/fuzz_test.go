package tuple

import (
	"bytes"
	"testing"
)

// Fuzz harnesses for the three wire decoders. Frames arrive from the
// network, so the decoders must never panic or over-allocate on arbitrary
// bytes; and whenever a decode succeeds, re-encoding the result must
// reproduce exactly the bytes consumed (the encodings are canonical).
// Seed corpora live in testdata/fuzz/<FuzzName>/.

func FuzzDecodeTuple(f *testing.F) {
	enc, _ := AppendTuple(nil, sampleTuple())
	f.Add(enc)
	// Checkpoint barrier frame: no fields, non-zero epoch.
	barrier, _ := AppendTuple(nil, &Tuple{Stream: "__barrier", SrcTask: 3, Epoch: 12})
	f.Add(barrier)
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, n, err := DecodeTuple(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if got := EncodedSize(tp); got != n {
			t.Fatalf("EncodedSize %d != consumed %d", got, n)
		}
		re, err := AppendTuple(nil, tp)
		if err != nil {
			t.Fatalf("re-encode of decoded tuple failed: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in=%x\nout=%x", data[:n], re)
		}
	})
}

func FuzzDecodeWorkerMessage(f *testing.F) {
	payload, _ := AppendTuple(nil, sampleTuple())
	for _, kind := range []byte{KindWorkerMessage, KindInstanceMessage, KindMulticastMessage} {
		f.Add(AppendWorkerMessage(nil, &WorkerMessage{
			Kind: kind, DstIDs: []int32{3, 17}, Payload: payload,
			Group: 2, TreeVersion: 9, SrcWorker: 4,
		}))
	}
	f.Add([]byte{})
	f.Add([]byte{KindControl, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeWorkerMessage(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if got := EncodedWorkerMessageSize(m.Kind, len(m.DstIDs), len(m.Payload)); got != n {
			t.Fatalf("EncodedWorkerMessageSize %d != consumed %d", got, n)
		}
		re := AppendWorkerMessage(nil, m)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in=%x\nout=%x", data[:n], re)
		}
	})
}

func FuzzDecodeControlMessage(f *testing.F) {
	for _, cm := range []*ControlMessage{
		{Type: CtrlStatus, Direction: SwitchScaleDown, Group: 1, Version: 2},
		{Type: CtrlReconnect, Group: 4, Version: 5, Node: 10, OldParent: 2, NewParent: 3},
		{Type: CtrlTree, Version: 7, Nodes: []int32{0, 1, 2}, Parents: []int32{-1, 0, 0}},
		{Type: CtrlHeartbeat, Node: 3, Version: 41},
		{Type: CtrlCredit, Node: 2, Credits: 1 << 40},
		{Type: CtrlSnapAck, Direction: SnapAckSnapshot, Node: 7, Epoch: 12},
		{Type: CtrlSnapAck, Direction: SnapAckRestore, Node: 9, Epoch: 3},
	} {
		f.Add(AppendControlMessage(nil, cm))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, n, err := DecodeControlMessage(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(c.Nodes) != len(c.Parents) {
			t.Fatalf("nodes/parents length skew: %d vs %d", len(c.Nodes), len(c.Parents))
		}
		re := AppendControlMessage(nil, c)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in=%x\nout=%x", data[:n], re)
		}
		if c.String() == "" {
			t.Fatal("empty String()")
		}
	})
}
