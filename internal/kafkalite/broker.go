// Package kafkalite is a minimal in-process stand-in for the Apache Kafka
// deployment the paper uses as the stream source (§5.1, artifact appendix:
// "Kafka 0.10.1 to serve as the data source"): topics split into
// partitions, append-only logs with offsets, polling consumers, consumer
// groups with partition assignment, and committed offsets.
//
// It preserves the properties the evaluation relies on — partitioned
// parallel consumption, offset-based replay (at-least-once sources), and
// producer/consumer decoupling — without the network or on-disk format.
package kafkalite

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"whale/internal/metrics"
)

// ErrOffsetOutOfRange is returned by SeekCommitted when the requested
// offset is outside the partition's valid range [log start, end]: below it
// the records have been trimmed by retention, above it they don't exist
// yet.
var ErrOffsetOutOfRange = errors.New("kafkalite: offset out of range")

// Record is one log entry.
type Record struct {
	// Offset is the record's position in its partition.
	Offset int64
	// Key is the optional partitioning key.
	Key []byte
	// Value is the payload.
	Value []byte
}

// partition is one append-only log.
type partition struct {
	mu      sync.Mutex
	base    int64 // offset of records[0] (> 0 after retention trimming)
	records []Record
}

func (p *partition) append(key, value []byte, retain int) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	off := p.base + int64(len(p.records))
	p.records = append(p.records, Record{Offset: off, Key: key, Value: value})
	if retain > 0 && len(p.records) > retain {
		drop := len(p.records) - retain
		p.base += int64(drop)
		p.records = append([]Record(nil), p.records[drop:]...)
	}
	return off
}

// fetch returns up to max records from offset, and the next offset to poll.
func (p *partition) fetch(offset int64, max int) ([]Record, int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	end := p.base + int64(len(p.records))
	if offset < p.base {
		return nil, 0, fmt.Errorf("kafkalite: offset %d below log start %d (retention)", offset, p.base)
	}
	if offset >= end {
		return nil, offset, nil
	}
	n := int(end - offset)
	if n > max {
		n = max
	}
	i := int(offset - p.base)
	out := make([]Record, n)
	copy(out, p.records[i:i+n])
	return out, offset + int64(n), nil
}

func (p *partition) endOffset() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base + int64(len(p.records))
}

// topic is a set of partitions.
type topic struct {
	parts  []*partition
	retain int
}

// Broker hosts topics and consumer-group state. All methods are safe for
// concurrent use.
type Broker struct {
	mu      sync.Mutex
	topics  map[string]*topic
	groups  map[string]*group
	nextGen int64
	fam     *metrics.Family
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{topics: map[string]*topic{}, groups: map[string]*group{}, fam: metrics.NewFamily()}
}

// MetricsFamily exposes the broker's counters (records_appended,
// records_fetched, offsets_committed) for attachment to an observability
// registry (obs.Registry.Attach with a "kafkalite" prefix).
func (b *Broker) MetricsFamily() *metrics.Family { return b.fam }

// CreateTopic declares a topic with the given partition count. retain
// bounds each partition's in-memory record count (0 = unbounded).
func (b *Broker) CreateTopic(name string, partitions, retain int) error {
	if partitions < 1 {
		return fmt.Errorf("kafkalite: topic %q with %d partitions", name, partitions)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.topics[name]; dup {
		return fmt.Errorf("kafkalite: topic %q exists", name)
	}
	t := &topic{retain: retain}
	for i := 0; i < partitions; i++ {
		t.parts = append(t.parts, &partition{})
	}
	b.topics[name] = t
	return nil
}

func (b *Broker) topicOf(name string) (*topic, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("kafkalite: unknown topic %q", name)
	}
	return t, nil
}

// Partitions returns a topic's partition count.
func (b *Broker) Partitions(name string) (int, error) {
	t, err := b.topicOf(name)
	if err != nil {
		return 0, err
	}
	return len(t.parts), nil
}

// Produce appends a record. A nil key round-robins... rather: the key
// hashes to a partition (Kafka semantics); nil keys go to partition 0's
// sibling chosen by the caller via ProduceTo.
func (b *Broker) Produce(topicName string, key, value []byte) (partitionIdx int, offset int64, err error) {
	t, err := b.topicOf(topicName)
	if err != nil {
		return 0, 0, err
	}
	idx := int(fnv32(key)) % len(t.parts)
	if idx < 0 {
		idx += len(t.parts)
	}
	off := t.parts[idx].append(key, value, t.retain)
	b.fam.Counter("records_appended").Inc()
	return idx, off, nil
}

// ProduceTo appends a record to an explicit partition.
func (b *Broker) ProduceTo(topicName string, partitionIdx int, key, value []byte) (int64, error) {
	t, err := b.topicOf(topicName)
	if err != nil {
		return 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return 0, fmt.Errorf("kafkalite: partition %d of %q out of range", partitionIdx, topicName)
	}
	off := t.parts[partitionIdx].append(key, value, t.retain)
	b.fam.Counter("records_appended").Inc()
	return off, nil
}

// Fetch reads up to max records from (topic, partition) starting at offset.
// It returns the records and the next offset to poll.
func (b *Broker) Fetch(topicName string, partitionIdx int, offset int64, max int) ([]Record, int64, error) {
	t, err := b.topicOf(topicName)
	if err != nil {
		return nil, 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return nil, 0, fmt.Errorf("kafkalite: partition %d of %q out of range", partitionIdx, topicName)
	}
	recs, next, err := t.parts[partitionIdx].fetch(offset, max)
	if err == nil {
		b.fam.Counter("records_fetched").Add(int64(len(recs)))
	}
	return recs, next, err
}

// LogStartOffset returns the oldest offset still held by the partition
// (> 0 once retention has trimmed the log head).
func (b *Broker) LogStartOffset(topicName string, partitionIdx int) (int64, error) {
	t, err := b.topicOf(topicName)
	if err != nil {
		return 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return 0, fmt.Errorf("kafkalite: partition %d of %q out of range", partitionIdx, topicName)
	}
	p := t.parts[partitionIdx]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base, nil
}

// SeekCommitted rewinds (or fast-forwards) a group's committed offset for
// one partition to an arbitrary position — the first-class seek API behind
// checkpoint recovery (a snapshot records the offsets of epoch N; restore
// seeks back to them so replay re-reads exactly the post-snapshot suffix).
// Unlike CommitOffset, which only ever advances, SeekCommitted sets the
// committed offset unconditionally — after validating it against the
// partition's live range: offsets below the log start (trimmed by
// retention) or above the end (not yet produced) are rejected with
// ErrOffsetOutOfRange, so a corrupt snapshot can never silently pin a
// consumer to records that don't exist. Seeking exactly to the end offset
// is valid: it means "resume at live head".
func (b *Broker) SeekCommitted(groupID, topicName string, partitionIdx int, offset int64) error {
	t, err := b.topicOf(topicName)
	if err != nil {
		return err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return fmt.Errorf("kafkalite: partition %d of %q out of range", partitionIdx, topicName)
	}
	p := t.parts[partitionIdx]
	p.mu.Lock()
	base, end := p.base, p.base+int64(len(p.records))
	p.mu.Unlock()
	if offset < base || offset > end {
		return fmt.Errorf("%w: %d outside [%d, %d] of %s/%d", ErrOffsetOutOfRange, offset, base, end, topicName, partitionIdx)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[groupID]
	if !ok {
		return fmt.Errorf("kafkalite: unknown group %q", groupID)
	}
	tc, ok := g.commits[topicName]
	if !ok {
		tc = map[int]int64{}
		g.commits[topicName] = tc
	}
	tc[partitionIdx] = offset
	b.fam.Counter("offsets_committed").Inc()
	return nil
}

// EndOffset returns the next offset that would be written.
func (b *Broker) EndOffset(topicName string, partitionIdx int) (int64, error) {
	t, err := b.topicOf(topicName)
	if err != nil {
		return 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return 0, fmt.Errorf("kafkalite: partition %d of %q out of range", partitionIdx, topicName)
	}
	return t.parts[partitionIdx].endOffset(), nil
}

// group is consumer-group state: member ids and committed offsets.
type group struct {
	members map[string]bool
	commits map[string]map[int]int64 // topic -> partition -> offset
	gen     int64
}

// JoinGroup registers a member and returns its partition assignment for
// the topic (range assignment over sorted member ids, like Kafka's range
// assignor) plus a generation number that changes on every membership
// change.
func (b *Broker) JoinGroup(groupID, memberID, topicName string) ([]int, int64, error) {
	t, err := b.topicOf(topicName)
	if err != nil {
		return nil, 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[groupID]
	if !ok {
		g = &group{members: map[string]bool{}, commits: map[string]map[int]int64{}}
		b.groups[groupID] = g
	}
	if !g.members[memberID] {
		g.members[memberID] = true
		b.nextGen++
		g.gen = b.nextGen
	}
	return assignRange(sortedKeys(g.members), memberID, len(t.parts)), g.gen, nil
}

// LeaveGroup removes a member (its partitions are reassigned on the next
// JoinGroup of any member).
func (b *Broker) LeaveGroup(groupID, memberID string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if g, ok := b.groups[groupID]; ok {
		delete(g.members, memberID)
		b.nextGen++
		g.gen = b.nextGen
	}
}

// Assignment recomputes a member's partitions (call after a generation
// change).
func (b *Broker) Assignment(groupID, memberID, topicName string) ([]int, int64, error) {
	t, err := b.topicOf(topicName)
	if err != nil {
		return nil, 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[groupID]
	if !ok || !g.members[memberID] {
		return nil, 0, fmt.Errorf("kafkalite: member %q not in group %q", memberID, groupID)
	}
	return assignRange(sortedKeys(g.members), memberID, len(t.parts)), g.gen, nil
}

// CommitOffset records the group's progress on a partition.
func (b *Broker) CommitOffset(groupID, topicName string, partitionIdx int, offset int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[groupID]
	if !ok {
		return fmt.Errorf("kafkalite: unknown group %q", groupID)
	}
	tc, ok := g.commits[topicName]
	if !ok {
		tc = map[int]int64{}
		g.commits[topicName] = tc
	}
	if offset > tc[partitionIdx] {
		tc[partitionIdx] = offset
	}
	b.fam.Counter("offsets_committed").Inc()
	return nil
}

// CommittedOffset returns the group's committed offset for a partition
// (0 when never committed).
func (b *Broker) CommittedOffset(groupID, topicName string, partitionIdx int) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if g, ok := b.groups[groupID]; ok {
		return g.commits[topicName][partitionIdx]
	}
	return 0
}

// assignRange gives member its contiguous partition range.
func assignRange(members []string, memberID string, partitions int) []int {
	idx := -1
	for i, m := range members {
		if m == memberID {
			idx = i
			break
		}
	}
	if idx < 0 || len(members) == 0 {
		return nil
	}
	per := partitions / len(members)
	extra := partitions % len(members)
	start := idx*per + min(idx, extra)
	count := per
	if idx < extra {
		count++
	}
	out := make([]int, 0, count)
	for p := start; p < start+count && p < partitions; p++ {
		out = append(out, p)
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
