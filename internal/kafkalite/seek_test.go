package kafkalite

import (
	"bytes"
	"errors"
	"testing"
)

// seekFixture builds a topic with one partition retaining the last retain
// records, produces n records, and joins a group.
func seekFixture(t *testing.T, n, retain int) *Broker {
	t.Helper()
	b := NewBroker()
	if err := b.CreateTopic("t", 1, retain); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := b.ProduceTo("t", 0, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.JoinGroup("g", "m", "t"); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSeekCommittedRewinds(t *testing.T) {
	b := seekFixture(t, 10, 0)
	if err := b.CommitOffset("g", "t", 0, 8); err != nil {
		t.Fatal(err)
	}
	// CommitOffset is forward-only; SeekCommitted is not.
	if err := b.CommitOffset("g", "t", 0, 3); err != nil {
		t.Fatal(err)
	}
	if got := b.CommittedOffset("g", "t", 0); got != 8 {
		t.Fatalf("CommitOffset rewound: %d", got)
	}
	if err := b.SeekCommitted("g", "t", 0, 3); err != nil {
		t.Fatal(err)
	}
	if got := b.CommittedOffset("g", "t", 0); got != 3 {
		t.Fatalf("SeekCommitted = %d, want 3", got)
	}
	recs, _, err := b.Fetch("t", 0, b.CommittedOffset("g", "t", 0), 100)
	if err != nil || len(recs) != 7 || recs[0].Offset != 3 {
		t.Fatalf("fetch after seek: %d recs err=%v", len(recs), err)
	}
}

func TestSeekCommittedPastRetention(t *testing.T) {
	// retain=4 over 10 records: log start is 6.
	b := seekFixture(t, 10, 4)
	start, err := b.LogStartOffset("t", 0)
	if err != nil || start != 6 {
		t.Fatalf("LogStartOffset = %d, %v", start, err)
	}
	if err := b.SeekCommitted("g", "t", 0, 5); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("seek below log start: err=%v, want ErrOffsetOutOfRange", err)
	}
	// Exactly the log start is the oldest valid rewind.
	if err := b.SeekCommitted("g", "t", 0, 6); err != nil {
		t.Fatal(err)
	}
	if got := b.CommittedOffset("g", "t", 0); got != 6 {
		t.Fatalf("committed = %d", got)
	}
}

func TestSeekCommittedToLiveHead(t *testing.T) {
	b := seekFixture(t, 10, 0)
	end, err := b.EndOffset("t", 0)
	if err != nil || end != 10 {
		t.Fatalf("EndOffset = %d, %v", end, err)
	}
	// Seeking exactly to the end is "resume at live head" and is valid.
	if err := b.SeekCommitted("g", "t", 0, end); err != nil {
		t.Fatal(err)
	}
	recs, next, err := b.Fetch("t", 0, end, 100)
	if err != nil || len(recs) != 0 || next != end {
		t.Fatalf("fetch at head: %d recs next=%d err=%v", len(recs), next, err)
	}
	// One past the end does not exist yet.
	if err := b.SeekCommitted("g", "t", 0, end+1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("seek past end: err=%v, want ErrOffsetOutOfRange", err)
	}
	// After more production the same offset becomes valid.
	if _, err := b.ProduceTo("t", 0, nil, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := b.SeekCommitted("g", "t", 0, end+1); err != nil {
		t.Fatal(err)
	}
}

func TestSeekCommittedValidation(t *testing.T) {
	b := seekFixture(t, 3, 0)
	if err := b.SeekCommitted("nope", "t", 0, 0); err == nil {
		t.Fatal("unknown group accepted")
	}
	if err := b.SeekCommitted("g", "nope", 0, 0); err == nil {
		t.Fatal("unknown topic accepted")
	}
	if err := b.SeekCommitted("g", "t", 7, 0); err == nil {
		t.Fatal("bad partition accepted")
	}
	if err := b.SeekCommitted("g", "t", 0, -1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("negative offset: err=%v", err)
	}
}

func TestSpoutSnapshotRestore(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 2, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for part := 0; part < 2; part++ {
			if _, err := b.ProduceTo("t", part, nil, []byte{byte(10*part + i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := &Spout{Broker: b, Topic: "t", Group: "g", MaxPoll: 2,
		Decode: func(rec Record) []interface{} { return []interface{}{rec.Value} }}
	s.memberID = "m"
	assigned, gen, err := b.JoinGroup("g", "m", "t")
	if err != nil {
		t.Fatal(err)
	}
	s.inflight = map[int64]pending{}
	s.adoptAssignment(assigned, gen)
	if !s.poll() {
		t.Fatal("poll buffered nothing")
	}
	// Cursor has advanced past the fetched batch, but nothing was emitted:
	// the snapshot must point at the buffered records' smallest offsets.
	snap, err := s.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic encoding.
	snap2, _ := s.SnapshotState()
	if !bytes.Equal(snap, snap2) {
		t.Fatal("snapshot not deterministic")
	}
	// Drain the buffer (simulating emission), then restore: the cursors
	// must rewind to the snapshot's resume points and replay everything
	// that was buffered at snapshot time.
	nBuffered := len(s.buffered)
	s.buffered = nil
	if err := s.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if !s.poll() {
		t.Fatal("poll after restore buffered nothing")
	}
	if len(s.buffered) != nBuffered {
		t.Fatalf("replayed %d records, want %d", len(s.buffered), nBuffered)
	}
	for _, p := range s.buffered {
		if p.rec.Offset != 0 && p.rec.Offset != 1 {
			t.Fatalf("unexpected replay offset %d on partition %d", p.rec.Offset, p.part)
		}
	}
	// A nil snapshot resets to committed offsets.
	if err := s.RestoreState(nil); err != nil {
		t.Fatal(err)
	}
	if len(s.buffered) != 0 || len(s.inflight) != 0 {
		t.Fatal("nil restore left residue")
	}
	// A snapshot pointing below retention is rejected, not silently
	// clamped: effectively-once can't be faked over missing records.
	if err := b.CreateTopic("small", 1, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := b.ProduceTo("small", 0, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s2 := &Spout{Broker: b, Topic: "small", Group: "g2",
		Decode: func(rec Record) []interface{} { return []interface{}{rec.Value} }}
	s2.memberID = "m2"
	a2, g2, err := b.JoinGroup("g2", "m2", "small")
	if err != nil {
		t.Fatal(err)
	}
	s2.inflight = map[int64]pending{}
	s2.adoptAssignment(a2, g2)
	stale := []byte{1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0} // part 0 -> offset 1, trimmed
	if err := s2.RestoreState(stale); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("restore below retention: err=%v", err)
	}
}
