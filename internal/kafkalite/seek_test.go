package kafkalite

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// seekFixture builds a topic with one partition retaining the last retain
// records, produces n records, and joins a group.
func seekFixture(t *testing.T, n, retain int) *Broker {
	t.Helper()
	b := NewBroker()
	if err := b.CreateTopic("t", 1, retain); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := b.ProduceTo("t", 0, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.JoinGroup("g", "m", "t"); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSeekCommittedRewinds(t *testing.T) {
	b := seekFixture(t, 10, 0)
	if err := b.CommitOffset("g", "t", 0, 8); err != nil {
		t.Fatal(err)
	}
	// CommitOffset is forward-only; SeekCommitted is not.
	if err := b.CommitOffset("g", "t", 0, 3); err != nil {
		t.Fatal(err)
	}
	if got := b.CommittedOffset("g", "t", 0); got != 8 {
		t.Fatalf("CommitOffset rewound: %d", got)
	}
	if err := b.SeekCommitted("g", "t", 0, 3); err != nil {
		t.Fatal(err)
	}
	if got := b.CommittedOffset("g", "t", 0); got != 3 {
		t.Fatalf("SeekCommitted = %d, want 3", got)
	}
	recs, _, err := b.Fetch("t", 0, b.CommittedOffset("g", "t", 0), 100)
	if err != nil || len(recs) != 7 || recs[0].Offset != 3 {
		t.Fatalf("fetch after seek: %d recs err=%v", len(recs), err)
	}
}

func TestSeekCommittedPastRetention(t *testing.T) {
	// retain=4 over 10 records: log start is 6.
	b := seekFixture(t, 10, 4)
	start, err := b.LogStartOffset("t", 0)
	if err != nil || start != 6 {
		t.Fatalf("LogStartOffset = %d, %v", start, err)
	}
	if err := b.SeekCommitted("g", "t", 0, 5); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("seek below log start: err=%v, want ErrOffsetOutOfRange", err)
	}
	// Exactly the log start is the oldest valid rewind.
	if err := b.SeekCommitted("g", "t", 0, 6); err != nil {
		t.Fatal(err)
	}
	if got := b.CommittedOffset("g", "t", 0); got != 6 {
		t.Fatalf("committed = %d", got)
	}
}

func TestSeekCommittedToLiveHead(t *testing.T) {
	b := seekFixture(t, 10, 0)
	end, err := b.EndOffset("t", 0)
	if err != nil || end != 10 {
		t.Fatalf("EndOffset = %d, %v", end, err)
	}
	// Seeking exactly to the end is "resume at live head" and is valid.
	if err := b.SeekCommitted("g", "t", 0, end); err != nil {
		t.Fatal(err)
	}
	recs, next, err := b.Fetch("t", 0, end, 100)
	if err != nil || len(recs) != 0 || next != end {
		t.Fatalf("fetch at head: %d recs next=%d err=%v", len(recs), next, err)
	}
	// One past the end does not exist yet.
	if err := b.SeekCommitted("g", "t", 0, end+1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("seek past end: err=%v, want ErrOffsetOutOfRange", err)
	}
	// After more production the same offset becomes valid.
	if _, err := b.ProduceTo("t", 0, nil, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := b.SeekCommitted("g", "t", 0, end+1); err != nil {
		t.Fatal(err)
	}
}

func TestSeekCommittedValidation(t *testing.T) {
	b := seekFixture(t, 3, 0)
	if err := b.SeekCommitted("nope", "t", 0, 0); err == nil {
		t.Fatal("unknown group accepted")
	}
	if err := b.SeekCommitted("g", "nope", 0, 0); err == nil {
		t.Fatal("unknown topic accepted")
	}
	if err := b.SeekCommitted("g", "t", 7, 0); err == nil {
		t.Fatal("bad partition accepted")
	}
	if err := b.SeekCommitted("g", "t", 0, -1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("negative offset: err=%v", err)
	}
}

func TestSpoutSnapshotRestore(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 2, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for part := 0; part < 2; part++ {
			if _, err := b.ProduceTo("t", part, nil, []byte{byte(10*part + i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := &Spout{Broker: b, Topic: "t", Group: "g", MaxPoll: 2,
		Decode: func(rec Record) []interface{} { return []interface{}{rec.Value} }}
	s.memberID = "m"
	assigned, gen, err := b.JoinGroup("g", "m", "t")
	if err != nil {
		t.Fatal(err)
	}
	s.inflight = map[int64]pending{}
	s.adoptAssignment(assigned, gen)
	if !s.poll() {
		t.Fatal("poll buffered nothing")
	}
	// Cursor has advanced past the fetched batch, but nothing was emitted:
	// the snapshot must point at the buffered records' smallest offsets.
	snap, err := s.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic encoding.
	snap2, _ := s.SnapshotState()
	if !bytes.Equal(snap, snap2) {
		t.Fatal("snapshot not deterministic")
	}
	// Drain the buffer (simulating emission), then restore: the cursors
	// must rewind to the snapshot's resume points and replay everything
	// that was buffered at snapshot time.
	nBuffered := len(s.buffered)
	s.buffered = nil
	if err := s.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if !s.poll() {
		t.Fatal("poll after restore buffered nothing")
	}
	if len(s.buffered) != nBuffered {
		t.Fatalf("replayed %d records, want %d", len(s.buffered), nBuffered)
	}
	for _, p := range s.buffered {
		if p.rec.Offset != 0 && p.rec.Offset != 1 {
			t.Fatalf("unexpected replay offset %d on partition %d", p.rec.Offset, p.part)
		}
	}
	// A nil snapshot resets to the first-adopted (initial) offsets.
	if err := s.RestoreState(nil); err != nil {
		t.Fatal(err)
	}
	if len(s.buffered) != 0 || len(s.inflight) != 0 {
		t.Fatal("nil restore left residue")
	}
	// A snapshot pointing below retention is rejected, not silently
	// clamped: effectively-once can't be faked over missing records.
	if err := b.CreateTopic("small", 1, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := b.ProduceTo("small", 0, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s2 := &Spout{Broker: b, Topic: "small", Group: "g2",
		Decode: func(rec Record) []interface{} { return []interface{}{rec.Value} }}
	s2.memberID = "m2"
	a2, g2, err := b.JoinGroup("g2", "m2", "small")
	if err != nil {
		t.Fatal(err)
	}
	s2.inflight = map[int64]pending{}
	s2.adoptAssignment(a2, g2)
	stale := []byte{1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0} // part 0 -> offset 1, trimmed
	if err := s2.RestoreState(stale); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("restore below retention: err=%v", err)
	}
}

// TestSpoutSnapshotExcludesInflight: records emitted reliably but not yet
// acked were emitted before the snapshot's barrier, so per-link FIFO has
// already carried them into the downstream epoch state — the resume point
// must not rewind to them (re-emitting them after a restore would carry
// fresh post-fence epoch stamps and double-count into restored state).
// Fail-requeued and still-buffered records, by contrast, have not been
// absorbed and must lower the resume point.
func TestSpoutSnapshotExcludesInflight(t *testing.T) {
	b := seekFixture(t, 10, 0)
	s := &Spout{Broker: b, Topic: "t", Group: "g", MaxPoll: 4,
		Decode: func(rec Record) []interface{} { return []interface{}{rec.Value} }}
	s.memberID = "m"
	s.inflight = map[int64]pending{}
	assigned, gen, err := b.Assignment("g", "m", "t")
	if err != nil {
		t.Fatal(err)
	}
	s.adoptAssignment(assigned, gen)
	if !s.poll() {
		t.Fatal("poll buffered nothing")
	}
	// Simulate reliable emission of the first two records (what Next does
	// minus the Collector): they move from buffered to inflight.
	for i := 0; i < 2; i++ {
		p := s.buffered[0]
		s.buffered = s.buffered[1:]
		s.nextMsg++
		s.inflight[s.nextMsg] = p
	}
	// Decode the resume point without restoring (RestoreState would clear
	// the in-flight set the next step depends on). Layout: uint32 count,
	// then (uint32 partition, uint64 offset) pairs.
	resumeOf := func(snap []byte) int64 {
		t.Helper()
		if n := binary.LittleEndian.Uint32(snap); n != 1 {
			t.Fatalf("snapshot has %d partitions, want 1", n)
		}
		return int64(binary.LittleEndian.Uint64(snap[8:]))
	}
	snap, err := s.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	// Resume point is the first unemitted record (offset 2), not the
	// in-flight records' offsets 0..1.
	if got := resumeOf(snap); got != 2 {
		t.Fatalf("resume point = %d, want 2 (inflight must not lower it)", got)
	}

	// A Fail-requeued record re-enters the buffer and DOES lower the
	// resume point: its delivery never completed, so it is not part of the
	// absorbed prefix.
	s.Fail(1) // requeues offset 0
	if len(s.buffered) == 0 || s.buffered[len(s.buffered)-1].rec.Offset != 0 {
		t.Fatalf("Fail did not requeue offset 0: %+v", s.buffered)
	}
	snap, err = s.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if got := resumeOf(snap); got != 0 {
		t.Fatalf("resume point = %d, want 0 (requeued record must lower it)", got)
	}
	if err := s.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if got := s.cursor[0]; got != 0 {
		t.Fatalf("restored cursor = %d, want 0", got)
	}
	if got := b.CommittedOffset("g", "t", 0); got != 0 {
		t.Fatalf("committed after restore = %d, want 0", got)
	}
	if len(s.inflight) != 0 || len(s.buffered) != 0 {
		t.Fatal("restore left buffered/inflight residue")
	}
}

// TestSpoutNilRestoreRewindsToInitial: a reset-to-initial-state restore
// (no epoch ever committed) must rewind to the offsets the partitions were
// first adopted at — the group's committed offsets have been advanced by
// eager (unreliable) or ack-time (reliable) commits for records whose
// effects the reset just erased downstream.
func TestSpoutNilRestoreRewindsToInitial(t *testing.T) {
	b := seekFixture(t, 10, 0)
	s := &Spout{Broker: b, Topic: "t", Group: "g", MaxPoll: 10,
		Decode: func(rec Record) []interface{} { return []interface{}{rec.Value} }}
	s.memberID = "m"
	s.inflight = map[int64]pending{}
	assigned, gen, err := b.Assignment("g", "m", "t")
	if err != nil {
		t.Fatal(err)
	}
	s.adoptAssignment(assigned, gen)
	if !s.poll() {
		t.Fatal("poll buffered nothing")
	}
	// Simulate unreliable emission of 5 records: eager per-record commits.
	for i := 0; i < 5; i++ {
		p := s.buffered[0]
		s.buffered = s.buffered[1:]
		if err := b.CommitOffset("g", "t", p.part, p.rec.Offset+1); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.CommittedOffset("g", "t", 0); got != 5 {
		t.Fatalf("eager commits = %d, want 5", got)
	}
	if err := s.RestoreState(nil); err != nil {
		t.Fatal(err)
	}
	if got := s.cursor[0]; got != 0 {
		t.Fatalf("nil restore cursor = %d, want initial offset 0", got)
	}
	if got := b.CommittedOffset("g", "t", 0); got != 0 {
		t.Fatalf("nil restore committed = %d, want 0", got)
	}
	// Replay re-fetches from the initial offset.
	if !s.poll() {
		t.Fatal("poll after nil restore buffered nothing")
	}
	if s.buffered[0].rec.Offset != 0 {
		t.Fatalf("first replayed offset = %d, want 0", s.buffered[0].rec.Offset)
	}

	// When retention has trimmed past the initial position, the rewind
	// clamps forward to the retained log start instead of failing.
	if err := b.CreateTopic("trim", 1, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.ProduceTo("trim", 0, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s2 := &Spout{Broker: b, Topic: "trim", Group: "g2", MaxPoll: 10,
		Decode: func(rec Record) []interface{} { return []interface{}{rec.Value} }}
	s2.memberID = "m2"
	s2.inflight = map[int64]pending{}
	a2, g2, err := b.JoinGroup("g2", "m2", "trim")
	if err != nil {
		t.Fatal(err)
	}
	s2.adoptAssignment(a2, g2) // initial offset 0
	for i := 3; i < 10; i++ {  // retention trims the head to offset 6
		if _, err := b.ProduceTo("trim", 0, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	start, err := b.LogStartOffset("trim", 0)
	if err != nil || start != 6 {
		t.Fatalf("LogStartOffset = %d, %v", start, err)
	}
	if err := s2.RestoreState(nil); err != nil {
		t.Fatal(err)
	}
	if got := s2.cursor[0]; got != 6 {
		t.Fatalf("trimmed nil restore cursor = %d, want log start 6", got)
	}
}
